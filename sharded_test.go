package churnreg

import (
	"fmt"
	"testing"

	"churnreg/internal/core"
	"churnreg/internal/shard"
)

// shardedOpts builds the deterministic sharded cluster configuration the
// tests share: N bootstrap processes, S shards, R replicas (R < N is the
// point — capacity, not just redundancy).
func shardedOpts(p Protocol, n int, s, r int, seed uint64, extra ...Option) []Option {
	opts := []Option{
		WithN(n),
		WithDelta(5),
		WithSeed(seed),
		WithProtocol(p),
		WithShards(s, r),
		WithInitialValue(100),
	}
	return append(opts, extra...)
}

// TestShardedBasic: reads and writes on many keys through a sharded
// cluster return the written values and pass the regularity checker,
// for both dynamic protocols.
func TestShardedBasic(t *testing.T) {
	for _, p := range []Protocol{Synchronous, EventuallySynchronous} {
		t.Run(p.String(), func(t *testing.T) {
			c, err := NewSimCluster(shardedOpts(p, 6, 8, 3, 1)...)
			if err != nil {
				t.Fatal(err)
			}
			const nKeys = 20
			for k := RegisterID(0); k < nKeys; k++ {
				if err := c.WriteKey(k, int64(1000+k)); err != nil {
					t.Fatalf("write %v: %v", k, err)
				}
			}
			c.Run(20) // let the last writes settle everywhere
			for k := RegisterID(0); k < nKeys; k++ {
				for _, id := range c.ActiveIDs() {
					v, err := c.ReadKeyAt(id, k)
					if err != nil {
						t.Fatalf("read %v at %v: %v", k, id, err)
					}
					if v != int64(1000+k) {
						t.Fatalf("read %v at %v = %d, want %d", k, id, v, 1000+k)
					}
				}
			}
			rep := c.Check()
			if !rep.OK() {
				t.Fatalf("regularity violated:\n%v", rep)
			}
			if rep.Reads == 0 || rep.Writes != nKeys {
				t.Fatalf("history: %d reads, %d writes", rep.Reads, rep.Writes)
			}
		})
	}
}

// TestShardedCapacity is the scaling claim in test form: with S shards
// over R replicas, a write's dissemination reaches only the key's
// replica group, so a non-replica's store never sees the key. Every key
// must be held by AT MOST R+1 nodes (the R replicas, plus at most the
// designated writer, whose sequence-number bookkeeping keeps a local
// copy when it coordinates a key it does not own) — not by all N.
func TestShardedCapacity(t *testing.T) {
	const (
		n = 8
		s = 16
		r = 2
	)
	c, err := NewSimCluster(shardedOpts(Synchronous, n, s, r, 3)...)
	if err != nil {
		t.Fatal(err)
	}
	const nKeys = 40
	for k := RegisterID(1); k <= nKeys; k += 2 {
		if err := c.WriteKey(k, int64(k)); err != nil {
			t.Fatalf("write %v: %v", k, err)
		}
	}
	// The other half via batches: multi-shard batches must decompose
	// into group-scoped writes, not broadcast the union of groups (which
	// would store every key on every union member).
	for k := RegisterID(2); k <= nKeys; k += 4 {
		kvs := map[RegisterID]int64{k: int64(k)}
		if k+2 <= nKeys {
			kvs[k+2] = int64(k + 2)
		}
		if err := c.WriteBatch(kvs); err != nil {
			t.Fatalf("batch write %v: %v", k, err)
		}
	}
	c.Run(20)
	holders := make(map[RegisterID]int)
	c.sys.ForEachNode(func(_ ProcessID, node core.Node) {
		sn, ok := node.(core.KeyedSnapshotter)
		if !ok {
			t.Fatal("node is not a KeyedSnapshotter")
		}
		for _, k := range sn.Keys() {
			holders[k]++
		}
	})
	for k := RegisterID(1); k <= nKeys; k++ {
		if holders[k] == 0 {
			t.Fatalf("key %v held by nobody", k)
		}
		if holders[k] > r+1 {
			t.Fatalf("key %v held by %d nodes, want <= R+1 = %d (sharding is not scoping writes)", k, holders[k], r+1)
		}
	}
}

// TestShardedHandoffChurn is the acceptance scenario: a sharded cluster
// with R < N keeps per-key regularity across shard handoff during a
// join, a graceful leave (the simulator's departures are immediate —
// the paper's model has no crash/leave distinction), and a
// kill-and-replace, all interleaved with reads and writes on many keys.
// Reads pipeline ACROSS the membership events; writes are awaited before
// each event so the single-sequence-number authority moves with the
// primary via handoff, never concurrently with it.
func TestShardedHandoffChurn(t *testing.T) {
	for _, p := range []Protocol{Synchronous, EventuallySynchronous} {
		for _, seed := range []uint64{1, 2, 7} {
			t.Run(fmt.Sprintf("%s/seed=%d", p, seed), func(t *testing.T) {
				c, err := NewSimCluster(shardedOpts(p, 6, 8, 3, seed)...)
				if err != nil {
					t.Fatal(err)
				}
				const nKeys = 12
				val := int64(0)
				writeAll := func() {
					for k := RegisterID(0); k < nKeys; k++ {
						val++
						if err := c.WriteKey(k, val*100+int64(k)); err != nil {
							t.Fatalf("write %v: %v", k, err)
						}
					}
				}
				readBurst := func() []*PendingOp {
					var pops []*PendingOp
					for _, id := range c.ActiveIDs() {
						for k := RegisterID(0); k < nKeys; k += 3 {
							pops = append(pops, c.StartReadKeyAt(id, k))
						}
					}
					return pops
				}

				writeAll()

				// Phase 1: join mid-reads — the joiner gains shards and
				// must hand off state before serving them.
				pops := readBurst()
				joined, err := c.Join()
				if err != nil {
					t.Fatalf("join: %v", err)
				}
				if err := c.Await(pops...); err != nil {
					t.Fatalf("reads across join: %v", err)
				}
				writeAll()
				c.Run(50) // let handoff rounds complete

				// Phase 2: a (non-writer) process leaves; survivors gain
				// its shards.
				var victim ProcessID
				for _, id := range c.ActiveIDs() {
					if id != joined {
						victim = id
						break
					}
				}
				pops = readBurst()
				c.Leave(victim)
				_ = c.Await(pops...)
				// Reads in flight AT the leaver die with it — legal.
				// Reads invoked on any surviving node must complete.
				for _, op := range pops {
					if op.proc != victim && op.Err() != nil {
						t.Fatalf("read on surviving node %v failed across leave: %v", op.proc, op.Err())
					}
				}
				writeAll()
				c.Run(50)

				// Phase 3: kill-and-replace — another leave plus a fresh
				// join, mid-reads again.
				var victim2 ProcessID
				for _, id := range c.ActiveIDs() {
					if id != joined {
						victim2 = id
						break
					}
				}
				pops = readBurst()
				c.Leave(victim2)
				if _, err := c.Join(); err != nil {
					t.Fatalf("replacement join: %v", err)
				}
				_ = c.Await(pops...) // reads at the victim legitimately fail
				writeAll()
				c.Run(50)

				// Convergence: every active node serves every key's last
				// written value.
				for k := RegisterID(0); k < nKeys; k++ {
					want, seen := int64(0), false
					for _, id := range c.ActiveIDs() {
						v, err := c.ReadKeyAt(id, k)
						if err != nil {
							t.Fatalf("final read %v at %v: %v", k, id, err)
						}
						if !seen {
							want, seen = v, true
						} else if v != want {
							t.Fatalf("key %v diverged: %d vs %d", k, v, want)
						}
					}
				}

				rep := c.Check()
				if !rep.OK() {
					t.Fatalf("regularity violated (%s seed=%d):\n%v", p, seed, rep)
				}
				if rep.Reads < 20 || rep.Writes < 4*nKeys {
					t.Fatalf("too few ops checked: %d reads, %d writes", rep.Reads, rep.Writes)
				}
			})
		}
	}
}

// TestShardedHandoffTransfersState pins the handoff mechanism itself: a
// joiner that gains shards ends up holding the previously written values
// of exactly those shards' keys, received via handoff snapshots (the
// wrapper's stats prove the mechanism ran, not just the outcome).
func TestShardedHandoffTransfersState(t *testing.T) {
	c, err := NewSimCluster(shardedOpts(Synchronous, 5, 8, 2, 9)...)
	if err != nil {
		t.Fatal(err)
	}
	const nKeys = 30
	for k := RegisterID(1); k <= nKeys; k++ {
		if err := c.WriteKey(k, int64(7000+k)); err != nil {
			t.Fatalf("write %v: %v", k, err)
		}
	}
	id, err := c.Join()
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	c.Run(100) // handoff rounds
	node := c.sys.Node(id)
	w, ok := node.(*shard.Node)
	if !ok {
		t.Fatalf("node is %T, want *shard.Node", node)
	}
	st := w.Stats()
	if st.HandoffsStarted == 0 || st.HandoffsComplete == 0 || st.HandoffSnapshots == 0 {
		t.Fatalf("joiner ran no handoff: %+v", st)
	}
	view := w.Placement()
	if view == nil {
		t.Fatal("joiner has no placement view")
	}
	// Every key of every shard the joiner owns must now be readable AT
	// the joiner with its written value.
	owned := 0
	for k := RegisterID(1); k <= nKeys; k++ {
		if !view.IsReplica(k, id) {
			continue
		}
		owned++
		v, err := c.ReadKeyAt(id, k)
		if err != nil {
			t.Fatalf("read owned key %v at joiner: %v", k, err)
		}
		if v != int64(7000+k) {
			t.Fatalf("owned key %v at joiner = %d, want %d", k, v, 7000+k)
		}
	}
	if owned == 0 {
		t.Skip("joiner owns none of the written keys under this seed (raise nKeys)")
	}
	if rep := c.Check(); !rep.OK() {
		t.Fatalf("regularity violated:\n%v", rep)
	}
}

// TestShardedQuorumIsGroupScoped: with the eventually synchronous
// protocol sharded at R=3 over N=9, a write must complete with acks from
// its replica group alone — after isolating the write path we assert the
// inner esync node's op table drains, which it can only do with a
// majority of R (2 acks), never a majority of N (5), since only R nodes
// ever saw the WRITE.
func TestShardedQuorumIsGroupScoped(t *testing.T) {
	c, err := NewSimCluster(shardedOpts(EventuallySynchronous, 9, 4, 3, 5)...)
	if err != nil {
		t.Fatal(err)
	}
	for k := RegisterID(0); k < 10; k++ {
		if err := c.WriteKey(k, int64(k)*11); err != nil {
			t.Fatalf("write %v: %v", k, err)
		}
	}
	c.Run(50)
	if got := c.PendingOps(); got != 0 {
		t.Fatalf("op tables not reclaimed at quiescence: %d pending", got)
	}
	if rep := c.Check(); !rep.OK() {
		t.Fatalf("regularity violated:\n%v", rep)
	}
}

// TestUnshardedUnchanged guards the default: without WithShards the
// factory is NOT wrapped, so the pre-sharding behavior is bit-for-bit
// identical (the determinism suite pins exact traces separately).
func TestUnshardedUnchanged(t *testing.T) {
	c, err := NewSimCluster(WithN(5), WithDelta(5), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(42); err != nil {
		t.Fatal(err)
	}
	c.sys.ForEachNode(func(_ ProcessID, node core.Node) {
		if _, ok := node.(*shard.Node); ok {
			t.Fatal("unsharded cluster built sharded nodes")
		}
	})
	v, err := c.Read()
	if err != nil || v != 42 {
		t.Fatalf("read = %d, %v", v, err)
	}
}
