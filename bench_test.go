package churnreg_test

// One benchmark per experiment table (E1-E10, DESIGN.md §5): running
// `go test -bench=.` regenerates every figure/claim of the paper and
// reports the experiment's headline quantity as a custom metric. Use
// -v to also see the rendered tables (b.Logf). The micro-benchmarks at
// the bottom characterize the simulator and protocol hot paths.

import (
	"fmt"
	"strconv"
	"testing"

	"churnreg"
	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/esyncreg"
	"churnreg/internal/harness"
	"churnreg/internal/metrics"
	"churnreg/internal/netsim"
	"churnreg/internal/sim"
	"churnreg/internal/syncreg"
)

const benchSeed = 42

// benchTable runs one experiment per iteration and logs its table.
func benchTable(b *testing.B, f func(uint64) *metrics.Table) *metrics.Table {
	b.Helper()
	var last *metrics.Table
	for i := 0; i < b.N; i++ {
		last = f(benchSeed + uint64(i))
	}
	b.Logf("\n%s", last.Render())
	return last
}

func BenchmarkE1Fig3WhyWait(b *testing.B) {
	tb := benchTable(b, harness.Fig3WhyWait)
	// Headline: the no-wait variant must violate, the wait variant not.
	if len(tb.Rows) == 2 && tb.Rows[1][4] == "OK" {
		b.ReportMetric(1, "fig3b-ok")
	}
}

func BenchmarkE2NewOldInversion(b *testing.B) {
	benchTable(b, harness.NewOldInversion)
}

func BenchmarkE3Lemma2ActiveSet(b *testing.B) {
	tb := benchTable(b, harness.Lemma2ActiveSet)
	holds := 0.0
	for _, row := range tb.Rows {
		if row[4] == "true" && row[7] == "true" {
			holds++
		}
	}
	b.ReportMetric(holds/float64(len(tb.Rows)), "bounds-hold-ratio")
}

func BenchmarkE4Theorem1SafetySweep(b *testing.B) {
	tb := benchTable(b, harness.Theorem1SafetySweep)
	below := 0.0
	for _, row := range tb.Rows[:3] {
		v, _ := strconv.Atoi(row[5])
		below += float64(v)
	}
	b.ReportMetric(below, "violations-below-bound")
}

func BenchmarkE5Theorem2Impossibility(b *testing.B) {
	tb := benchTable(b, harness.Theorem2Impossibility)
	v, _ := strconv.Atoi(tb.Rows[0][4])
	b.ReportMetric(float64(v), "async-safety-violations")
}

func BenchmarkE6ESyncGSTSweep(b *testing.B) {
	tb := benchTable(b, harness.ESyncGSTSweep)
	viol := 0.0
	for _, row := range tb.Rows {
		v, _ := strconv.Atoi(row[6])
		viol += float64(v)
	}
	b.ReportMetric(viol, "violations-any-GST")
}

func BenchmarkE7ChurnBoundScaling(b *testing.B) {
	benchTable(b, harness.ChurnBoundScaling)
}

func BenchmarkE8ProtocolComparison(b *testing.B) {
	tb := benchTable(b, harness.ProtocolComparison)
	// Headline: sync read cost (messages) is zero.
	v, _ := strconv.ParseFloat(tb.Rows[0][4], 64)
	b.ReportMetric(v, "sync-msgs-per-read")
}

func BenchmarkE9DLPrevAblation(b *testing.B) {
	benchTable(b, harness.DLPrevAblation)
}

func BenchmarkE10LatencyScaling(b *testing.B) {
	benchTable(b, harness.LatencyScaling)
}

func BenchmarkE11AtomicUpgrade(b *testing.B) {
	tb := benchTable(b, harness.AtomicUpgrade)
	inv, _ := strconv.Atoi(tb.Rows[1][4])
	b.ReportMetric(float64(inv), "atomic-inversions")
}

func BenchmarkE12BurstyChurn(b *testing.B) {
	tb := benchTable(b, harness.BurstyChurn)
	v, _ := strconv.Atoi(tb.Rows[1][5])
	b.ReportMetric(float64(v), "bursty-violations")
}

// --- micro-benchmarks ---

// BenchmarkSimulatedOpsSync measures end-to-end simulated write+read pairs
// per second through the public API (synchronous protocol).
func BenchmarkSimulatedOpsSync(b *testing.B) {
	c, err := churnreg.NewSimCluster(
		churnreg.WithN(20),
		churnreg.WithDelta(5),
		churnreg.WithChurnRate(0.01),
		churnreg.WithSeed(benchSeed),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Write(int64(i)); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedOpsESync is the same for the quorum protocol.
func BenchmarkSimulatedOpsESync(b *testing.B) {
	c, err := churnreg.NewSimCluster(
		churnreg.WithN(20),
		churnreg.WithDelta(5),
		churnreg.WithProtocol(churnreg.EventuallySynchronous),
		churnreg.WithSeed(benchSeed),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Write(int64(i)); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiKeyThroughput measures keyed-namespace scaling: write+read
// pairs spread round-robin over K registers of one cluster, under churn,
// so the per-process join cost (one INQUIRY, ever) is amortized across
// every key. The headline is that ns/op stays roughly flat as K grows —
// per-op cost is sublinear in key count, because only per-key state
// multiplies while membership work does not. Run with -bench
// MultiKeyThroughput and compare ns/op across the sub-benchmarks.
func BenchmarkMultiKeyThroughput(b *testing.B) {
	for _, keys := range []int{1, 4, 16, 64, 256} {
		b.Run(fmt.Sprintf("keys=%d", keys), func(b *testing.B) {
			c, err := churnreg.NewSimCluster(
				churnreg.WithN(20),
				churnreg.WithDelta(5),
				churnreg.WithChurnRate(0.01),
				churnreg.WithSeed(benchSeed),
			)
			if err != nil {
				b.Fatal(err)
			}
			start := c.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := churnreg.RegisterID(i % keys)
				if err := c.WriteKey(k, int64(i)); err != nil {
					b.Fatal(err)
				}
				if _, err := c.ReadKey(k); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if rep := c.Check(); !rep.OK() {
				b.Fatalf("regularity violated during bench: %s", rep)
			}
			elapsed := c.Now() - start
			if elapsed > 0 {
				b.ReportMetric(float64(2*b.N)/float64(elapsed), "simops/tick")
			}
		})
	}
}

// BenchmarkChurnSimulationTick measures raw simulation throughput: a
// 50-process synchronous system under churn (no workload, no checker),
// cost per simulated tick.
func BenchmarkChurnSimulationTick(b *testing.B) {
	sys, err := dynsys.New(dynsys.Config{
		N:         50,
		Delta:     5,
		Model:     netsim.SynchronousModel{Delta: 5},
		Factory:   syncreg.Factory(syncreg.Options{}),
		Seed:      benchSeed,
		ChurnRate: 0.02,
		Initial:   core.VersionedValue{Val: 0, SN: 0},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := sys.RunFor(sim.Duration(b.N)); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(sys.Network().Stats().Sent)/float64(b.N), "msgs/tick")
}

// BenchmarkQuorumJoin measures the full join path of the eventually
// synchronous protocol (INQUIRY broadcast → majority replies → deferred
// reply flush) in a 30-process system.
func BenchmarkQuorumJoin(b *testing.B) {
	c, err := churnreg.NewSimCluster(
		churnreg.WithN(30),
		churnreg.WithDelta(5),
		churnreg.WithProtocol(churnreg.EventuallySynchronous),
		churnreg.WithSeed(benchSeed),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := c.Join()
		if err != nil {
			b.Fatal(err)
		}
		c.Leave(id) // keep the population from growing unboundedly
	}
}

// BenchmarkCheckerRegular measures the regularity checker on a recorded
// 2000-tick history.
func BenchmarkCheckerRegular(b *testing.B) {
	res, err := harness.Run(harness.Trial{
		N: 30, Delta: 5, Churn: 0.02,
		Factory:  syncreg.Factory(syncreg.Options{}),
		Duration: 2000,
		Seed:     benchSeed,
		Workload: harness.WorkloadMix(20, 5, 2, true),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := res.History.CheckRegular(); len(v) != 0 {
			b.Fatal("unexpected violation")
		}
	}
	b.ReportMetric(float64(res.History.Len()), "ops-checked")
}

// BenchmarkESyncMessagePath measures the esync node's message handling hot
// path directly (no network): one INQUIRY against an active node.
func BenchmarkESyncMessagePath(b *testing.B) {
	env := &nullEnv{n: 30}
	node := esyncreg.New(env, coreBootstrap(), esyncreg.Options{})
	node.Start()
	inq := coreInquiry(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node.Deliver(7, inq)
	}
}
