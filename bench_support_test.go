package churnreg_test

// Support types for the micro-benchmarks: a no-op Env for driving protocol
// nodes without a network.

import (
	"churnreg/internal/core"
	"churnreg/internal/sim"
)

type nullEnv struct {
	n int
}

func (e *nullEnv) ID() core.ProcessID                { return 1 }
func (e *nullEnv) Now() sim.Time                     { return 0 }
func (e *nullEnv) Send(core.ProcessID, core.Message) {}
func (e *nullEnv) Broadcast(core.Message)            {}
func (e *nullEnv) After(sim.Duration, func())        {}
func (e *nullEnv) Delta() sim.Duration               { return 5 }
func (e *nullEnv) SystemSize() int                   { return e.n }
func (e *nullEnv) MarkActive()                       {}

var _ core.Env = (*nullEnv)(nil)

func coreBootstrap() core.SpawnContext {
	return core.SpawnContext{Bootstrap: true, Initial: core.VersionedValue{Val: 0, SN: 0}}
}

func coreInquiry(from core.ProcessID) core.InquiryMsg {
	return core.InquiryMsg{From: from}
}
