package churnreg

import (
	"fmt"
	"sort"
	"time"

	"churnreg/internal/core"
	"churnreg/internal/livenet"
	"churnreg/internal/sim"
)

// LiveCluster runs the chosen protocol in real time: one goroutine per
// process, channels as links, wall-clock δ. It is safe for concurrent
// use, and concurrency is the point: any number of goroutines may call
// ReadKeyAt/WriteKey/WriteKeyAt at once — each call is its own pipelined
// operation on the target node (the protocols keep an operation table,
// not a single pending slot), across keys and on the same key. Writes to
// one key should keep flowing through one process (the designated writer,
// as WriteKey does) — the paper's per-key discipline across nodes; a
// single node orders its own pipelined writes by invocation.
//
// Unlike SimCluster there is no churn engine — the caller drives
// membership with Join and Leave (see examples/socialprofile for a churn
// loop) — and no built-in history checking (real-time response instants
// are not exact enough to adjudicate boundary cases).
type LiveCluster struct {
	opts    options
	cluster *livenet.Cluster
	writer  core.ProcessID
}

// NewLiveCluster builds and starts a real-time cluster of n processes.
func NewLiveCluster(opt ...Option) (*LiveCluster, error) {
	o := defaults()
	for _, f := range opt {
		f(&o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	cl, err := livenet.New(livenet.Config{
		N:         o.n,
		Delta:     sim.Duration(o.delta),
		Tick:      o.tick,
		Factory:   o.factory(),
		Seed:      o.seed,
		Initial:   core.VersionedValue{Val: core.Value(o.initial), SN: 0},
		Initials:  o.initialKeys,
		Placement: o.placement,
	})
	if err != nil {
		return nil, err
	}
	lc := &LiveCluster{opts: o, cluster: cl}
	if ids := cl.IDs(); len(ids) > 0 {
		lc.writer = ids[0]
	}
	return lc, nil
}

// Close shuts the cluster down and waits for every process goroutine.
func (c *LiveCluster) Close() { c.cluster.Close() }

// Size returns the number of present processes.
func (c *LiveCluster) Size() int { return c.cluster.Size() }

// IDs returns the present processes' identities.
func (c *LiveCluster) IDs() []ProcessID { return c.cluster.IDs() }

// Join adds a fresh process and blocks until its join operation returns.
func (c *LiveCluster) Join() (ProcessID, error) {
	id, err := c.cluster.Spawn()
	if err != nil {
		return id, err
	}
	if err := c.cluster.WaitActive(id, c.opts.opTimeout); err != nil {
		return id, fmt.Errorf("churnreg: live join %v: %w", id, err)
	}
	return id, nil
}

// Leave removes the process immediately and forever.
func (c *LiveCluster) Leave(id ProcessID) error { return c.cluster.Kill(id) }

// WriterID returns the currently designated writer process.
func (c *LiveCluster) WriterID() ProcessID { return c.writer }

// Write stores v in register 0 via the designated writer process — sugar
// for WriteKey(DefaultRegister, v).
func (c *LiveCluster) Write(v int64) error {
	return c.WriteKey(core.DefaultRegister, v)
}

// WriteKey stores v in one register via the designated writer process.
// Concurrent calls — same key or not — pipeline on the writer, which
// assigns their sequence numbers in arrival order.
func (c *LiveCluster) WriteKey(k RegisterID, v int64) error {
	_, err := c.cluster.WriteKey(c.writer, k, core.Value(v), c.opts.opTimeout)
	if err == livenet.ErrAbsent {
		// The writer left; adopt another process and retry once. Before
		// the successor writes it must hold the departed writer's last
		// value, or it would mint a new value under an already-used
		// sequence number (two different values with one sn — a permanent
		// split). The last write returned at most δ after its broadcast,
		// so in a timing-honest run the value reaches everyone within δ
		// of the departure; wait several δ of real time to also absorb
		// scheduler slop.
		time.Sleep(5 * time.Duration(c.opts.delta) * c.opts.tick)
		ids := c.cluster.IDs()
		if len(ids) == 0 {
			return ErrNoActiveProcess
		}
		c.writer = ids[0]
		_, err = c.cluster.WriteKey(c.writer, k, core.Value(v), c.opts.opTimeout)
	}
	if err != nil {
		return fmt.Errorf("churnreg: live write %v: %w", k, err)
	}
	return nil
}

// WriteBatch stores several keys' values via the designated writer
// process: one broadcast covers the whole batch for batching protocols
// (the synchronous one), concurrent per-key writes otherwise.
func (c *LiveCluster) WriteBatch(kvs map[RegisterID]int64) error {
	if len(kvs) == 0 {
		return nil
	}
	ks := make([]RegisterID, 0, len(kvs))
	for k := range kvs {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	entries := make([]core.KeyedWrite, len(ks))
	for i, k := range ks {
		entries[i] = core.KeyedWrite{Reg: k, Val: core.Value(kvs[k])}
	}
	if _, err := c.cluster.WriteBatch(c.writer, entries, c.opts.opTimeout); err != nil {
		return fmt.Errorf("churnreg: live write batch: %w", err)
	}
	return nil
}

// WriteAt stores v in register 0 via a specific process.
func (c *LiveCluster) WriteAt(id ProcessID, v int64) error {
	return c.WriteKeyAt(id, core.DefaultRegister, v)
}

// WriteKeyAt stores v in one register via a specific process.
func (c *LiveCluster) WriteKeyAt(id ProcessID, k RegisterID, v int64) error {
	if _, err := c.cluster.WriteKey(id, k, core.Value(v), c.opts.opTimeout); err != nil {
		return fmt.Errorf("churnreg: live write %v at %v: %w", k, id, err)
	}
	return nil
}

// ReadAt reads register 0 via a specific process.
func (c *LiveCluster) ReadAt(id ProcessID) (int64, error) {
	return c.ReadKeyAt(id, core.DefaultRegister)
}

// ReadKeyAt reads one register via a specific process.
func (c *LiveCluster) ReadKeyAt(id ProcessID, k RegisterID) (int64, error) {
	v, err := c.cluster.ReadKey(id, k, c.opts.opTimeout)
	if err != nil {
		return 0, fmt.Errorf("churnreg: live read %v at %v: %w", k, id, err)
	}
	if v.IsBottom() {
		return 0, ErrValueUnavailable
	}
	return int64(v.Val), nil
}

// Read reads register 0 via any present process (first listed).
func (c *LiveCluster) Read() (int64, error) {
	return c.ReadKey(core.DefaultRegister)
}

// ReadKey reads one register via any present process, preferring a
// process that is not the writer, mirroring how a client would
// load-balance reads.
func (c *LiveCluster) ReadKey(k RegisterID) (int64, error) {
	ids := c.cluster.IDs()
	if len(ids) == 0 {
		return 0, ErrNoActiveProcess
	}
	for _, id := range ids {
		if id != c.writer {
			if v, err := c.ReadKeyAt(id, k); err == nil {
				return v, nil
			}
		}
	}
	return c.ReadKeyAt(c.writer, k)
}
