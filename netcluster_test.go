package churnreg

import (
	"testing"
	"time"
)

// TestNetClusterEndToEnd drives the TCP-backed cluster through the same
// journey the quickstart takes on the simulator: write, read everywhere,
// batch, join (the joiner must have learned every key), graceful leave,
// crash, and writer failover.
func TestNetClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP cluster; skipped in -short")
	}
	c, err := NewNetCluster(
		WithN(3),
		WithProtocol(EventuallySynchronous),
		WithDelta(5),
		WithTick(time.Millisecond),
		WithOperationTimeout(15*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Write(41); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := c.WriteBatch(map[RegisterID]int64{1: 10, 2: 20}); err != nil {
		t.Fatalf("write batch: %v", err)
	}
	for _, id := range c.IDs() {
		v, err := c.ReadKeyAt(id, 2)
		if err != nil {
			t.Fatalf("read key 2 at %v: %v", id, err)
		}
		if v != 20 {
			t.Fatalf("read key 2 at %v = %d, want 20", id, v)
		}
	}

	joined, err := c.Join()
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	v, err := c.ReadKeyAt(joined, 1)
	if err != nil {
		t.Fatalf("read at joiner: %v", err)
	}
	if v != 10 {
		t.Fatalf("joiner read key 1 = %d, want 10 (snapshot join must cover every key)", v)
	}

	// Graceful departure of a non-writer, then a crash of the writer:
	// WriteKey adopts a successor and the system keeps serving.
	if err := c.Leave(joined); err != nil {
		t.Fatalf("leave: %v", err)
	}
	writer := c.WriterID()
	if err := c.Kill(writer); err != nil {
		t.Fatalf("kill writer: %v", err)
	}
	if err := c.Write(99); err != nil {
		t.Fatalf("write after writer crash: %v", err)
	}
	got, err := c.Read()
	if err != nil {
		t.Fatalf("read after failover: %v", err)
	}
	if got != 99 {
		t.Fatalf("read after failover = %d, want 99", got)
	}
	if c.Size() != 2 {
		t.Fatalf("size = %d, want 2", c.Size())
	}
}

// TestNetClusterSyncProtocol runs the synchronous protocol over TCP with
// a δ budget generous enough for loopback sockets plus timer slop.
func TestNetClusterSyncProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP cluster; skipped in -short")
	}
	c, err := NewNetCluster(
		WithN(3),
		WithProtocol(Synchronous),
		WithDelta(40),
		WithTick(time.Millisecond),
		WithOperationTimeout(15*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(7); err != nil {
		t.Fatalf("write: %v", err)
	}
	for _, id := range c.IDs() {
		v, err := c.ReadAt(id)
		if err != nil {
			t.Fatalf("read at %v: %v", id, err)
		}
		if v != 7 {
			t.Fatalf("read at %v = %d, want 7", id, v)
		}
	}
}

// TestNetClusterSharded drives the sharded keyspace over real TCP: R=2
// of N=4, many keys, reads from every node (non-replicas forward over
// the FORWARD/FORWARDED frames), a join that triggers shard handoff, and
// a graceful leave that reshuffles placement.
func TestNetClusterSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP cluster; skipped in -short")
	}
	c, err := NewNetCluster(
		WithN(4),
		WithProtocol(Synchronous),
		WithDelta(40),
		WithTick(time.Millisecond),
		WithShards(8, 2),
		WithOperationTimeout(20*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const nKeys = 10
	for k := RegisterID(0); k < nKeys; k++ {
		if err := c.WriteKey(k, int64(500+k)); err != nil {
			t.Fatalf("write %v: %v", k, err)
		}
	}
	time.Sleep(200 * time.Millisecond) // > δ: scoped broadcasts settled
	for _, id := range c.IDs() {
		for k := RegisterID(0); k < nKeys; k++ {
			v, err := c.ReadKeyAt(id, k)
			if err != nil {
				t.Fatalf("read %v at %v: %v", k, id, err)
			}
			if v != int64(500+k) {
				t.Fatalf("read %v at %v = %d, want %d", k, id, v, 500+k)
			}
		}
	}

	// Join: the newcomer gains shards, hands off state, and must then
	// serve every key (owned ones locally, the rest by forwarding).
	joined, err := c.Join()
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for k := RegisterID(0); k < nKeys; k++ {
		for {
			v, err := c.ReadKeyAt(joined, k)
			if err == nil && v == int64(500+k) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("joiner never served key %v: v=%d err=%v", k, v, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Graceful leave reshuffles placement; writes and reads keep working.
	victim := c.IDs()[len(c.IDs())-2]
	if victim == c.WriterID() {
		victim = c.IDs()[len(c.IDs())-1]
	}
	if err := c.Leave(victim); err != nil {
		t.Fatalf("leave: %v", err)
	}
	time.Sleep(300 * time.Millisecond)
	for k := RegisterID(0); k < nKeys; k++ {
		if err := c.WriteKey(k, int64(900+k)); err != nil {
			t.Fatalf("post-leave write %v: %v", k, err)
		}
	}
	time.Sleep(200 * time.Millisecond)
	for _, id := range c.IDs() {
		for k := RegisterID(0); k < nKeys; k++ {
			v, err := c.ReadKeyAt(id, k)
			if err != nil {
				t.Fatalf("post-leave read %v at %v: %v", k, id, err)
			}
			if v != int64(900+k) {
				t.Fatalf("post-leave read %v at %v = %d, want %d", k, id, v, 900+k)
			}
		}
	}
}
