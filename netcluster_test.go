package churnreg

import (
	"testing"
	"time"
)

// TestNetClusterEndToEnd drives the TCP-backed cluster through the same
// journey the quickstart takes on the simulator: write, read everywhere,
// batch, join (the joiner must have learned every key), graceful leave,
// crash, and writer failover.
func TestNetClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP cluster; skipped in -short")
	}
	c, err := NewNetCluster(
		WithN(3),
		WithProtocol(EventuallySynchronous),
		WithDelta(5),
		WithTick(time.Millisecond),
		WithOperationTimeout(15*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Write(41); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := c.WriteBatch(map[RegisterID]int64{1: 10, 2: 20}); err != nil {
		t.Fatalf("write batch: %v", err)
	}
	for _, id := range c.IDs() {
		v, err := c.ReadKeyAt(id, 2)
		if err != nil {
			t.Fatalf("read key 2 at %v: %v", id, err)
		}
		if v != 20 {
			t.Fatalf("read key 2 at %v = %d, want 20", id, v)
		}
	}

	joined, err := c.Join()
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	v, err := c.ReadKeyAt(joined, 1)
	if err != nil {
		t.Fatalf("read at joiner: %v", err)
	}
	if v != 10 {
		t.Fatalf("joiner read key 1 = %d, want 10 (snapshot join must cover every key)", v)
	}

	// Graceful departure of a non-writer, then a crash of the writer:
	// WriteKey adopts a successor and the system keeps serving.
	if err := c.Leave(joined); err != nil {
		t.Fatalf("leave: %v", err)
	}
	writer := c.WriterID()
	if err := c.Kill(writer); err != nil {
		t.Fatalf("kill writer: %v", err)
	}
	if err := c.Write(99); err != nil {
		t.Fatalf("write after writer crash: %v", err)
	}
	got, err := c.Read()
	if err != nil {
		t.Fatalf("read after failover: %v", err)
	}
	if got != 99 {
		t.Fatalf("read after failover = %d, want 99", got)
	}
	if c.Size() != 2 {
		t.Fatalf("size = %d, want 2", c.Size())
	}
}

// TestNetClusterSyncProtocol runs the synchronous protocol over TCP with
// a δ budget generous enough for loopback sockets plus timer slop.
func TestNetClusterSyncProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP cluster; skipped in -short")
	}
	c, err := NewNetCluster(
		WithN(3),
		WithProtocol(Synchronous),
		WithDelta(40),
		WithTick(time.Millisecond),
		WithOperationTimeout(15*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(7); err != nil {
		t.Fatalf("write: %v", err)
	}
	for _, id := range c.IDs() {
		v, err := c.ReadAt(id)
		if err != nil {
			t.Fatalf("read at %v: %v", id, err)
		}
		if v != 7 {
			t.Fatalf("read at %v = %d, want 7", id, v)
		}
	}
}
