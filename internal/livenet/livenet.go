// Package livenet runs the register protocols in real time: one
// goroutine-confined event loop per process, channels as mailboxes, and
// wall-clock message delays. It implements the same core.Env contract as
// the deterministic simulator, so protocol state machines run unmodified.
//
// The simulator remains the source of every number in EXPERIMENTS.md; the
// live runtime exists to show the protocols are deployable outside virtual
// time (examples/socialprofile uses it) and to exercise them under real
// concurrency in tests.
//
// Caveat for the synchronous protocol: its correctness rests on δ really
// bounding delivery. In real time, delivery latency includes Go timer
// scheduling slop (time.AfterFunc granularity is on the order of
// milliseconds under load), so configure Delta×Tick comfortably above it
// — δ of at least a few tens of milliseconds. The quorum-based eventually
// synchronous protocol needs no such budget (it is time-free), which is
// exactly the paper's point about asynchrony.
//
// Concurrency design: a node's handlers only ever run on its own loop
// goroutine. Everything that touches a node — deliveries, timer callbacks,
// user operations — is enqueued as a closure on the node's mailbox. The
// cluster's shared state (membership) is guarded by one mutex; message
// transfer uses time.AfterFunc goroutines, so senders never block on
// receivers' processing.
package livenet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"churnreg/internal/core"
	"churnreg/internal/nodeops"
	"churnreg/internal/placement"
	"churnreg/internal/sim"
)

// ErrClosed is returned once the cluster has been shut down.
var ErrClosed = errors.New("livenet: cluster closed")

// ErrAbsent is returned when addressing a process that is not present.
var ErrAbsent = errors.New("livenet: process not in the system")

// ErrTimeout is returned when an operation misses its real-time deadline.
// It aliases the shared nodeops sentinel so callers can compare against
// either package's name.
var ErrTimeout = nodeops.ErrTimeout

// Config assembles a live cluster.
type Config struct {
	// N is the bootstrap population and the n every process knows.
	N int
	// Delta is δ in ticks: messages take [1, Delta] ticks.
	Delta sim.Duration
	// Tick is the real duration of one tick (default 1ms).
	Tick time.Duration
	// Factory builds protocol nodes.
	Factory core.NodeFactory
	// Seed feeds the delay RNG.
	Seed uint64
	// Initial is register 0's initial value.
	Initial core.VersionedValue
	// Initials optionally pre-provisions further registers of the keyed
	// namespace on the bootstrap population (ascending Reg order, no
	// DefaultRegister entry).
	Initials []core.KeyedValue
	// Placement, when enabled, shards the keyspace over the present
	// processes: the cluster rebuilds the view on every Spawn/Kill and
	// notifies placement-aware nodes on their loops. Pair it with a
	// shard.Factory-wrapped protocol factory.
	Placement placement.Config
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("livenet: N = %d, want > 0", c.N)
	}
	if c.Delta < 1 {
		return fmt.Errorf("livenet: Delta = %d, want >= 1", c.Delta)
	}
	if c.Factory == nil {
		return fmt.Errorf("livenet: nil factory")
	}
	if err := c.Placement.Validate(); err != nil {
		return fmt.Errorf("livenet: %w", err)
	}
	return nil
}

// Cluster is a running real-time system.
type Cluster struct {
	cfg   Config
	start time.Time

	mu     sync.Mutex
	procs  map[core.ProcessID]*proc
	nextID core.ProcessID
	rng    *sim.RNG
	closed bool
	// view is the current placement over the present processes (nil when
	// sharding is disabled); viewSeq stamps successive views so node
	// loops can discard out-of-order deliveries. Both guarded by mu.
	view    *placement.View
	viewSeq uint64

	wg sync.WaitGroup
}

// New builds the cluster and starts its n bootstrap processes.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	c := &Cluster{
		cfg:   cfg,
		start: time.Now(),
		procs: make(map[core.ProcessID]*proc),
		rng:   sim.NewRNG(cfg.Seed),
	}
	for i := 0; i < cfg.N; i++ {
		c.spawnLocked(core.SpawnContext{Bootstrap: true, Initial: cfg.Initial, InitialKeys: cfg.Initials})
	}
	c.mu.Lock()
	c.refreshPlacementLocked()
	c.mu.Unlock()
	return c, nil
}

// refreshPlacementLocked rebuilds the view over the present processes
// and posts PlacementChanged to every node's loop. Caller holds mu.
func (c *Cluster) refreshPlacementLocked() {
	if !c.cfg.Placement.Enabled() {
		return
	}
	members := make([]core.ProcessID, 0, len(c.procs))
	for id := range c.procs {
		members = append(members, id)
	}
	view := placement.Build(c.cfg.Placement, members)
	c.viewSeq++
	if view != nil {
		view.SetVersion(c.viewSeq)
	}
	c.view = view
	// Posted from goroutines so a full mailbox cannot deadlock against
	// mu; the version stamp makes out-of-order arrival harmless.
	for _, p := range c.procs {
		p := p
		go p.enqueue(func() {
			if pa, ok := p.node.(core.PlacementAware); ok {
				pa.PlacementChanged(view)
			}
		})
	}
}

// Close shuts down every process and waits for their loops to exit.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for id, p := range c.procs {
		p.stop()
		delete(c.procs, id)
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// Placement returns the cluster's current placement view (nil when
// sharding is disabled) — clients use it for smart routing: sending a
// key's writes straight to its shard primary skips the forwarding hop.
func (c *Cluster) Placement() *placement.View {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view
}

// Spawn adds a fresh process (its join starts immediately) and returns its
// identity.
func (c *Cluster) Spawn() (core.ProcessID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return core.NoProcess, ErrClosed
	}
	p := c.spawnLocked(core.SpawnContext{})
	c.refreshPlacementLocked()
	return p.id, nil
}

func (c *Cluster) spawnLocked(sc core.SpawnContext) *proc {
	c.nextID++
	p := &proc{
		c:       c,
		id:      c.nextID,
		mailbox: make(chan func(), 64),
		quit:    make(chan struct{}),
	}
	c.procs[p.id] = p
	p.node = c.cfg.Factory(p, sc)
	c.wg.Add(1)
	go p.loop(&c.wg)
	p.enqueue(func() { p.node.Start() })
	return p
}

// Kill removes a process: it stops sending, receiving, and firing timers.
func (c *Cluster) Kill(id core.ProcessID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.procs[id]
	if !ok {
		return ErrAbsent
	}
	p.stop()
	delete(c.procs, id)
	c.refreshPlacementLocked()
	return nil
}

// Size returns the number of present processes.
func (c *Cluster) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.procs)
}

// IDs returns the present process identities (unordered).
func (c *Cluster) IDs() []core.ProcessID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]core.ProcessID, 0, len(c.procs))
	for id := range c.procs {
		out = append(out, id)
	}
	return out
}

// Invoke runs fn on the process's loop goroutine — the only legal way to
// touch a node. It returns without waiting for fn to run.
func (c *Cluster) Invoke(id core.ProcessID, fn func(core.Node)) error {
	c.mu.Lock()
	p, ok := c.procs[id]
	c.mu.Unlock()
	if !ok {
		return ErrAbsent
	}
	p.enqueue(func() { fn(p.node) })
	return nil
}

// invoker adapts one process's Invoke to the nodeops contract.
func (c *Cluster) invoker(id core.ProcessID) nodeops.Invoke {
	return func(fn func(core.Node)) error { return c.Invoke(id, fn) }
}

// WaitActive blocks until the process's join has returned, polling on its
// loop goroutine, or until timeout.
func (c *Cluster) WaitActive(id core.ProcessID, timeout time.Duration) error {
	return nodeops.WaitActive(c.invoker(id), c.cfg.Tick, timeout)
}

// Read runs a read of register 0 on the process and waits for its result.
func (c *Cluster) Read(id core.ProcessID, timeout time.Duration) (core.VersionedValue, error) {
	return c.ReadKey(id, core.DefaultRegister, timeout)
}

// ReadKey runs a read of one register on the process and waits for its
// result, routing to the protocol's local or quorum read as available.
func (c *Cluster) ReadKey(id core.ProcessID, reg core.RegisterID, timeout time.Duration) (core.VersionedValue, error) {
	return nodeops.ReadKey(c.invoker(id), reg, timeout)
}

// Write runs a write of register 0 on the process and waits for it to
// return ok, reporting the ⟨v, sn⟩ it stored.
func (c *Cluster) Write(id core.ProcessID, v core.Value, timeout time.Duration) (core.VersionedValue, error) {
	return c.WriteKey(id, core.DefaultRegister, v, timeout)
}

// WriteKey runs a write of one register on the process, waits for it to
// return ok, and reports the exact ⟨v, sn⟩ it stored (see
// nodeops.WriteKey). Safe to call from many goroutines at once: each call
// is its own pipelined operation on the node.
func (c *Cluster) WriteKey(id core.ProcessID, reg core.RegisterID, v core.Value, timeout time.Duration) (core.VersionedValue, error) {
	return nodeops.WriteKey(c.invoker(id), reg, v, timeout)
}

// WriteBatch stores several keys' values via one process and waits for all
// of them: one broadcast for batching protocols, concurrent per-key
// writes otherwise. It reports the stored ⟨v, sn⟩ per entry. Entries must
// be sorted by Reg, no duplicates.
func (c *Cluster) WriteBatch(id core.ProcessID, entries []core.KeyedWrite, timeout time.Duration) ([]core.KeyedValue, error) {
	return nodeops.WriteBatch(c.invoker(id), entries, timeout)
}

// Snapshot returns the node's local register-0 copy (scheduled on its loop).
func (c *Cluster) Snapshot(id core.ProcessID, timeout time.Duration) (core.VersionedValue, error) {
	return c.SnapshotKey(id, core.DefaultRegister, timeout)
}

// SnapshotKey returns the node's local copy of one register.
func (c *Cluster) SnapshotKey(id core.ProcessID, reg core.RegisterID, timeout time.Duration) (core.VersionedValue, error) {
	return nodeops.SnapshotKey(c.invoker(id), reg, timeout)
}

// deliver schedules m's arrival at dest after delay ticks of real time.
func (c *Cluster) deliver(from, to core.ProcessID, m core.Message, delay sim.Duration) {
	d := time.Duration(delay) * c.cfg.Tick
	time.AfterFunc(d, func() {
		c.mu.Lock()
		p, ok := c.procs[to]
		c.mu.Unlock()
		if !ok {
			return // destination left before delivery
		}
		p.enqueue(func() { p.node.Deliver(from, m) })
	})
}

// randDelay draws a delay in [1, Delta] ticks under the cluster lock.
func (c *Cluster) randDelay() sim.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.DurationBetween(1, c.cfg.Delta)
}

// proc is one live process: mailbox-confined node plus env plumbing.
type proc struct {
	c       *Cluster
	id      core.ProcessID
	node    core.Node
	mailbox chan func()
	quit    chan struct{}
	stopped sync.Once
}

var (
	_ core.Env    = (*proc)(nil)
	_ core.Placed = (*proc)(nil)
)

// Placement implements core.Placed: the cluster's current view, nil
// when sharding is disabled.
func (p *proc) Placement() core.PlacementView {
	p.c.mu.Lock()
	defer p.c.mu.Unlock()
	if v := p.c.view; v != nil {
		return v
	}
	return nil
}

func (p *proc) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case fn := <-p.mailbox:
			fn()
		case <-p.quit:
			return
		}
	}
}

// enqueue posts fn to the loop, giving up if the process stops first.
func (p *proc) enqueue(fn func()) {
	select {
	case p.mailbox <- fn:
	case <-p.quit:
	}
}

func (p *proc) stop() {
	p.stopped.Do(func() { close(p.quit) })
}

// ID implements core.Env.
func (p *proc) ID() core.ProcessID { return p.id }

// Now implements core.Env: ticks elapsed since cluster start.
func (p *proc) Now() sim.Time {
	return sim.Time(time.Since(p.c.start) / p.c.cfg.Tick)
}

// Send implements core.Env.
func (p *proc) Send(to core.ProcessID, m core.Message) {
	select {
	case <-p.quit:
		return // departed processes do not send
	default:
	}
	p.c.deliver(p.id, to, m, p.c.randDelay())
}

// Broadcast implements core.Env: snapshot-at-send semantics, loopback to
// self in one tick — the same contract as the simulator.
func (p *proc) Broadcast(m core.Message) {
	select {
	case <-p.quit:
		return
	default:
	}
	p.c.mu.Lock()
	ids := make([]core.ProcessID, 0, len(p.c.procs))
	for id := range p.c.procs {
		ids = append(ids, id)
	}
	p.c.mu.Unlock()
	for _, id := range ids {
		delay := netDelayLoopbackAware(p, id)
		p.c.deliver(p.id, id, m, delay)
	}
}

func netDelayLoopbackAware(p *proc, to core.ProcessID) sim.Duration {
	if to == p.id {
		return 1
	}
	return p.c.randDelay()
}

// After implements core.Env: fn runs on the loop goroutine after d ticks,
// suppressed once the process has left.
func (p *proc) After(d sim.Duration, fn func()) {
	time.AfterFunc(time.Duration(d)*p.c.cfg.Tick, func() {
		p.enqueue(fn)
	})
}

// Delta implements core.Env.
func (p *proc) Delta() sim.Duration { return p.c.cfg.Delta }

// SystemSize implements core.Env.
func (p *proc) SystemSize() int { return p.c.cfg.N }

// MarkActive implements core.Env (membership accounting is the cluster's
// user's concern in the live runtime; nothing to record here).
func (p *proc) MarkActive() {}
