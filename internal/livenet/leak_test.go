package livenet_test

import (
	"runtime"
	"testing"
	"time"

	"churnreg/internal/esyncreg"
	"churnreg/internal/livenet"
)

// TestCloseLeavesNoGoroutines drives a cluster through operations, a
// spawn, a kill, and a timed-out wait, then closes it and requires the
// goroutine count to return to baseline — the shutdown-review companion
// to nettransport's chaos leak checks. Operation waits use stoppable
// timers (internal/nodeops), so even the timed-out path leaves nothing
// behind beyond timers that fire and find the cluster gone.
func TestCloseLeavesNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()

	c, err := livenet.New(cfg(esyncreg.Factory(esyncreg.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	ids := c.IDs()
	if _, err := c.WriteKey(ids[0], 3, 9, opTimeout); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := c.ReadKey(ids[1], 3, opTimeout); err != nil {
		t.Fatalf("read: %v", err)
	}
	id, err := c.Spawn()
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if err := c.WaitActive(id, opTimeout); err != nil {
		t.Fatalf("wait active: %v", err)
	}
	if err := c.Kill(ids[2]); err != nil {
		t.Fatalf("kill: %v", err)
	}
	// A wait that times out must not leave its poll loop behind.
	if err := c.WaitActive(id, time.Millisecond); err != nil && err != livenet.ErrTimeout {
		t.Fatalf("short wait: %v", err)
	}
	c.Close()
	c.Close() // idempotent

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutine leak after Close: %d goroutines, baseline %d\n%s",
		runtime.NumGoroutine(), base, buf)
}
