package livenet_test

import (
	"testing"
	"time"

	"churnreg/internal/core"
	"churnreg/internal/esyncreg"
	"churnreg/internal/livenet"
	"churnreg/internal/syncreg"
)

// Real-time parameters: 1ms ticks, δ = 40 ticks = 40ms. δ must budget for
// time.AfterFunc scheduling slop — with a δ close to the timer
// granularity, the synchronous protocol's wait windows genuinely miss
// replies (the δ-trust the paper's asynchronous-impossibility warns
// about). On a loaded CI machine even 40ms can be violated, so tests of
// the δ-trusting protocol poll for eventual propagation or retry joins
// rather than assuming the bound held.
func cfg(factory core.NodeFactory) livenet.Config {
	return livenet.Config{
		N:       5,
		Delta:   40,
		Tick:    time.Millisecond,
		Factory: factory,
		Seed:    1,
		Initial: core.VersionedValue{Val: 0, SN: 0},
	}
}

const opTimeout = 10 * time.Second

// pollRead reads repeatedly until the register at id reaches sn (messages
// eventually arrive even when real delays exceeded δ) or the deadline.
func pollRead(t *testing.T, c *livenet.Cluster, id core.ProcessID, sn core.SeqNum) core.VersionedValue {
	t.Helper()
	deadline := time.Now().Add(opTimeout)
	for {
		v, err := c.Read(id, opTimeout)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		if v.SN >= sn || time.Now().After(deadline) {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []livenet.Config{
		{N: 0, Delta: 5, Factory: syncreg.Factory(syncreg.Options{})},
		{N: 5, Delta: 0, Factory: syncreg.Factory(syncreg.Options{})},
		{N: 5, Delta: 5},
	}
	for i, c := range bad {
		if _, err := livenet.New(c); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}

func TestSyncWriteReadLive(t *testing.T) {
	c, err := livenet.New(cfg(syncreg.Factory(syncreg.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids := c.IDs()
	if _, err := c.Write(ids[0], 42, opTimeout); err != nil {
		t.Fatalf("Write: %v", err)
	}
	v := pollRead(t, c, ids[1], 1)
	if v.Val != 42 || v.SN != 1 {
		t.Fatalf("read %v, want ⟨42,#1⟩", v)
	}
}

func TestESyncQuorumOpsLive(t *testing.T) {
	c, err := livenet.New(cfg(esyncreg.Factory(esyncreg.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids := c.IDs()
	if _, err := c.Write(ids[0], 7, opTimeout); err != nil {
		t.Fatalf("Write: %v", err)
	}
	v, err := c.Read(ids[2], opTimeout)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if v.Val != 7 || v.SN != 1 {
		t.Fatalf("read %v, want ⟨7,#1⟩", v)
	}
}

func TestJoinerBecomesActiveLive(t *testing.T) {
	c, err := livenet.New(cfg(syncreg.Factory(syncreg.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A loaded machine can stretch real delays past δ, starving one
	// join's reply window (the δ-trust hazard); retry with fresh joiners
	// before declaring failure.
	for attempt := 0; attempt < 5; attempt++ {
		id, err := c.Spawn()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.WaitActive(id, opTimeout); err != nil {
			t.Fatalf("WaitActive: %v", err)
		}
		v, err := c.Snapshot(id, opTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if !v.IsBottom() {
			return // success
		}
		t.Logf("attempt %d: joiner activated with ⊥ (real delays exceeded δ); retrying", attempt)
	}
	t.Fatal("every joiner activated with ⊥ across 5 attempts")
}

func TestJoinerAdoptsWrittenValueLive(t *testing.T) {
	c, err := livenet.New(cfg(esyncreg.Factory(esyncreg.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids := c.IDs()
	if _, err := c.Write(ids[0], 9, opTimeout); err != nil {
		t.Fatal(err)
	}
	id, err := c.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitActive(id, opTimeout); err != nil {
		t.Fatal(err)
	}
	v, err := c.Read(id, opTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if v.Val != 9 || v.SN != 1 {
		t.Fatalf("joiner read %v, want ⟨9,#1⟩", v)
	}
}

func TestKillSuppressesProcess(t *testing.T) {
	c, err := livenet.New(cfg(syncreg.Factory(syncreg.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids := c.IDs()
	if err := c.Kill(ids[0]); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 4 {
		t.Fatalf("size = %d, want 4", c.Size())
	}
	if err := c.Kill(ids[0]); err != livenet.ErrAbsent {
		t.Fatalf("double kill = %v, want ErrAbsent", err)
	}
	if _, err := c.Read(ids[0], opTimeout); err != livenet.ErrAbsent {
		t.Fatalf("read on departed = %v, want ErrAbsent", err)
	}
	// The survivors still function.
	if _, err := c.Write(ids[1], 5, opTimeout); err != nil {
		t.Fatalf("write after kill: %v", err)
	}
}

func TestChurnWhileOperatingLive(t *testing.T) {
	c, err := livenet.New(cfg(syncreg.Factory(syncreg.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids := c.IDs()
	writer := ids[0]
	// Replace two processes while writing continuously.
	for round := 0; round < 5; round++ {
		if _, err := c.Write(writer, core.Value(100+round), opTimeout); err != nil {
			t.Fatalf("write %d: %v", round, err)
		}
		if round == 1 || round == 3 {
			victim := ids[round]
			if victim == writer {
				victim = ids[4]
			}
			_ = c.Kill(victim)
			id, err := c.Spawn()
			if err != nil {
				t.Fatal(err)
			}
			if err := c.WaitActive(id, opTimeout); err != nil {
				t.Fatalf("join after churn: %v", err)
			}
			ids = append(ids, id)
		}
	}
	// Any surviving process eventually reads the last value.
	last := ids[len(ids)-1]
	v := pollRead(t, c, last, 5)
	if v.Val != 104 {
		t.Fatalf("read %v after churn, want value 104", v)
	}
}

func TestCloseIsIdempotentAndStopsOps(t *testing.T) {
	c, err := livenet.New(cfg(syncreg.Factory(syncreg.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	ids := c.IDs()
	c.Close()
	c.Close()
	if _, err := c.Spawn(); err != livenet.ErrClosed {
		t.Fatalf("Spawn after close = %v, want ErrClosed", err)
	}
	if _, err := c.Read(ids[0], time.Second); err != livenet.ErrAbsent {
		t.Fatalf("Read after close = %v, want ErrAbsent", err)
	}
}
