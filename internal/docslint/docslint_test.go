// Package docslint is the repository's documentation lint, enforced as
// an ordinary test so CI needs no external linter binary: every package
// must carry a package doc comment, and the foundational API surfaces —
// internal/core, internal/wire, and the public churnreg package — must
// document every exported symbol. It uses only go/parser, so the rules
// it enforces and the code enforcing them version together.
package docslint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from this package's directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above", dir)
		}
		dir = parent
	}
}

// packageDirs returns every directory under root containing non-test Go
// files, skipping vendor-ish and hidden directories.
func packageDirs(t *testing.T, root string) []string {
	t.Helper()
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

// parseDir parses every non-test Go file in dir.
func parseDir(t *testing.T, dir string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", filepath.Join(dir, e.Name()), err)
		}
		files = append(files, f)
	}
	return fset, files
}

// TestEveryPackageHasDocComment: each package in the module (main
// commands and examples included) carries a package-level doc comment on
// at least one of its files.
func TestEveryPackageHasDocComment(t *testing.T) {
	root := moduleRoot(t)
	for _, dir := range packageDirs(t, root) {
		_, files := parseDir(t, dir)
		if len(files) == 0 {
			continue
		}
		documented := false
		for _, f := range files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			rel, _ := filepath.Rel(root, dir)
			t.Errorf("package %s (%s) has no package doc comment", files[0].Name.Name, rel)
		}
	}
}

// TestFoundationalAPIsDocumentExportedSymbols: internal/core and
// internal/wire (the contracts every layer builds on) and the public
// churnreg package document every exported top-level declaration.
func TestFoundationalAPIsDocumentExportedSymbols(t *testing.T) {
	root := moduleRoot(t)
	for _, dir := range []string{root, filepath.Join(root, "internal/core"), filepath.Join(root, "internal/wire")} {
		fset, files := parseDir(t, dir)
		rel, _ := filepath.Rel(root, dir)
		if rel == "." {
			rel = "churnreg"
		}
		for _, f := range files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() {
						continue
					}
					if d.Doc == nil || strings.TrimSpace(d.Doc.Text()) == "" {
						t.Errorf("%s: exported %s %s lacks a doc comment (%s)",
							rel, declKind(d), d.Name.Name, fset.Position(d.Pos()))
					}
				case *ast.GenDecl:
					checkGenDecl(t, fset, rel, d)
				}
			}
		}
	}
}

func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "func"
}

// checkGenDecl flags undocumented exported types, consts, and vars. A
// doc comment on the grouped declaration covers its members (standard
// godoc practice for const/var blocks).
func checkGenDecl(t *testing.T, fset *token.FileSet, rel string, d *ast.GenDecl) {
	groupDocumented := d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != ""
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !groupDocumented && (s.Doc == nil || strings.TrimSpace(s.Doc.Text()) == "") {
				t.Errorf("%s: exported type %s lacks a doc comment (%s)",
					rel, s.Name.Name, fset.Position(s.Pos()))
			}
		case *ast.ValueSpec:
			exported := ""
			for _, name := range s.Names {
				if name.IsExported() {
					exported = name.Name
					break
				}
			}
			if exported == "" {
				continue
			}
			if !groupDocumented && (s.Doc == nil || strings.TrimSpace(s.Doc.Text()) == "") &&
				(s.Comment == nil || strings.TrimSpace(s.Comment.Text()) == "") {
				t.Errorf("%s: exported const/var %s lacks a doc comment (%s)",
					rel, exported, fset.Position(s.Pos()))
			}
		}
	}
}
