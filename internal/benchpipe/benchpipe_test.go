package benchpipe

import (
	"testing"
	"time"
)

// TestPipelineScalesWithDepth is the benchmark's own acceptance floor: a
// tiny configuration must still show pipelining beating depth 1 — if the
// engine ever re-serializes per key, depth stops helping and this fails
// long before anyone reads a BENCH artifact.
func TestPipelineScalesWithDepth(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up live clusters; skipped in -short")
	}
	rep, err := Run(Config{
		N:            5,
		Delta:        5,
		Tick:         time.Millisecond,
		Depths:       []int{1, 16},
		OpsPerWorker: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Depths) != 2 {
		t.Fatalf("depths measured = %d", len(rep.Depths))
	}
	d1, d16 := rep.Depths[0], rep.Depths[1]
	if d1.Ops != 12 || d16.Ops != 16*12 {
		t.Fatalf("op counts = %d, %d", d1.Ops, d16.Ops)
	}
	// The acceptance bar is 5x on a quiet machine; 3x keeps CI immune to
	// noisy neighbours while still catching a re-serialized engine (which
	// yields ~1x).
	if d16.OpsPerSec < 3*d1.OpsPerSec {
		t.Fatalf("depth 16 = %.1f ops/s vs depth 1 = %.1f ops/s: pipelining gain below 3x",
			d16.OpsPerSec, d1.OpsPerSec)
	}
}
