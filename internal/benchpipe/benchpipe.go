// Package benchpipe measures what the concurrent operation engine buys:
// single-node operation throughput as a function of in-flight depth. It
// runs the quorum-based eventually synchronous protocol on the live
// (goroutine, wall-clock) runtime, drives one node with D concurrent
// client workers — every operation targeting the SAME key, the hardest
// case, since pipelined writes to one key must still be assigned
// sequence numbers in order — and reports ops/sec per depth.
//
// Before the operation-table refactor a node served one operation per
// key at a time, so depth beyond 1 bought nothing (callers just queued
// on ErrOpInProgress). With pipelining, throughput scales with depth
// until quorum round-trips saturate: the BENCH_pipeline.json artifact
// this package feeds (via cmd/benchjson) tracks that curve per PR.
package benchpipe

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"churnreg/internal/core"
	"churnreg/internal/esyncreg"
	"churnreg/internal/livenet"
	"churnreg/internal/sim"
)

// Config parameterizes one run.
type Config struct {
	// N is the cluster size (default 5).
	N int
	// Delta is δ in ticks (default 5); Tick its real duration (default
	// 1ms). Message delay is uniform in [1, Delta] ticks.
	Delta sim.Duration
	Tick  time.Duration
	// Depths are the in-flight depths to measure (default 1, 16, 128).
	Depths []int
	// OpsPerWorker is how many operations each concurrent worker issues
	// per depth (default 25); total ops at depth D is D×OpsPerWorker.
	OpsPerWorker int
	// OpTimeout bounds one operation (default 30s).
	OpTimeout time.Duration
}

func (c *Config) fillDefaults() {
	if c.N <= 0 {
		c.N = 5
	}
	if c.Delta <= 0 {
		c.Delta = 5
	}
	if c.Tick <= 0 {
		c.Tick = time.Millisecond
	}
	if len(c.Depths) == 0 {
		c.Depths = []int{1, 16, 128}
	}
	if c.OpsPerWorker <= 0 {
		c.OpsPerWorker = 25
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 30 * time.Second
	}
}

// DepthResult is the measurement at one in-flight depth.
type DepthResult struct {
	Depth     int     `json:"depth"`
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// Report is the artifact serialized as BENCH_pipeline.json.
type Report struct {
	Name     string        `json:"name"`
	Protocol string        `json:"protocol"`
	Runtime  string        `json:"runtime"`
	Mix      string        `json:"mix"`
	N        int           `json:"n"`
	Delta    int64         `json:"delta_ticks"`
	TickMS   float64       `json:"tick_ms"`
	Depths   []DepthResult `json:"depths"`
	// Speedups relate each depth's throughput to depth 1 (0 when depth 1
	// was not measured).
	Speedup map[string]float64 `json:"speedup_vs_depth1"`
}

// Run measures pipelined single-node throughput at each configured depth
// on a fresh live cluster (fresh per run so depths don't warm each other).
func Run(cfg Config) (Report, error) {
	cfg.fillDefaults()
	rep := Report{
		Name:     "pipeline",
		Protocol: "esync",
		Runtime:  "livenet",
		Mix:      "50/50 read/write, one hot key, one node",
		N:        cfg.N,
		Delta:    int64(cfg.Delta),
		TickMS:   float64(cfg.Tick) / float64(time.Millisecond),
		Speedup:  map[string]float64{},
	}
	for _, depth := range cfg.Depths {
		res, err := runDepth(cfg, depth)
		if err != nil {
			return rep, fmt.Errorf("depth %d: %w", depth, err)
		}
		rep.Depths = append(rep.Depths, res)
	}
	if len(rep.Depths) > 0 && rep.Depths[0].Depth == 1 && rep.Depths[0].OpsPerSec > 0 {
		base := rep.Depths[0].OpsPerSec
		for _, d := range rep.Depths[1:] {
			rep.Speedup[fmt.Sprintf("%d", d.Depth)] = d.OpsPerSec / base
		}
	}
	return rep, nil
}

func runDepth(cfg Config, depth int) (DepthResult, error) {
	cl, err := livenet.New(livenet.Config{
		N:       cfg.N,
		Delta:   cfg.Delta,
		Tick:    cfg.Tick,
		Factory: esyncreg.Factory(esyncreg.Options{}),
		Seed:    uint64(depth) + 1,
	})
	if err != nil {
		return DepthResult{}, err
	}
	defer cl.Close()
	target := cl.IDs()[0]
	const hotKey = core.RegisterID(1)

	// Warm the key so the first reads don't race the very first write.
	if _, err := cl.WriteKey(target, hotKey, 1, cfg.OpTimeout); err != nil {
		return DepthResult{}, err
	}

	var (
		wg       sync.WaitGroup
		firstErr atomic.Value
		valSeq   atomic.Int64
	)
	total := depth * cfg.OpsPerWorker
	start := time.Now()
	for w := 0; w < depth; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < cfg.OpsPerWorker; i++ {
				var err error
				if (worker+i)%2 == 0 {
					_, err = cl.WriteKey(target, hotKey, core.Value(valSeq.Add(1)), cfg.OpTimeout)
				} else {
					_, err = cl.ReadKey(target, hotKey, cfg.OpTimeout)
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return DepthResult{}, err
	}
	return DepthResult{
		Depth:     depth,
		Ops:       total,
		Seconds:   elapsed.Seconds(),
		OpsPerSec: float64(total) / elapsed.Seconds(),
	}, nil
}
