package syncreg_test

import (
	"errors"
	"testing"

	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/netsim"
	"churnreg/internal/sim"
	"churnreg/internal/syncreg"
)

const delta = 10

func newSystem(t *testing.T, n int, model netsim.DelayModel, opts syncreg.Options, churnRate float64) *dynsys.System {
	t.Helper()
	sys, err := dynsys.New(dynsys.Config{
		N:         n,
		Delta:     delta,
		Model:     model,
		Factory:   syncreg.Factory(opts),
		Seed:      1,
		ChurnRate: churnRate,
		Initial:   core.VersionedValue{Val: 0, SN: 0},
	})
	if err != nil {
		t.Fatalf("dynsys.New: %v", err)
	}
	return sys
}

func syncNode(t *testing.T, sys *dynsys.System, id core.ProcessID) *syncreg.Node {
	t.Helper()
	n, ok := sys.Node(id).(*syncreg.Node)
	if !ok {
		t.Fatalf("node %v is %T, want *syncreg.Node", id, sys.Node(id))
	}
	return n
}

func TestBootstrapNodesActiveWithInitialValue(t *testing.T) {
	sys := newSystem(t, 3, netsim.SynchronousModel{Delta: delta}, syncreg.Options{}, 0)
	for _, id := range sys.ActiveIDs() {
		n := syncNode(t, sys, id)
		if !n.Active() {
			t.Fatalf("bootstrap node %v not active", id)
		}
		v, err := n.ReadLocal()
		if err != nil {
			t.Fatalf("ReadLocal: %v", err)
		}
		if v.SN != 0 || v.Val != 0 {
			t.Fatalf("initial value = %v, want ⟨0,#0⟩", v)
		}
	}
	if len(sys.ActiveIDs()) != 3 {
		t.Fatalf("active = %d, want 3", len(sys.ActiveIDs()))
	}
}

func TestJoinWithoutConcurrentWriteAdoptsCurrentValue(t *testing.T) {
	sys := newSystem(t, 3, netsim.SynchronousModel{Delta: delta}, syncreg.Options{}, 0)
	id, node := sys.Spawn()
	joined := false
	node.(*syncreg.Node).OnJoined(func() { joined = true })

	// Join takes at most 3δ: δ pre-wait + 2δ inquiry round.
	if err := sys.RunFor(3*delta + 1); err != nil {
		t.Fatal(err)
	}
	if !joined {
		t.Fatal("join did not complete within 3δ")
	}
	n := syncNode(t, sys, id)
	v, err := n.ReadLocal()
	if err != nil {
		t.Fatal(err)
	}
	if v.SN != 0 {
		t.Fatalf("joiner adopted %v, want initial ⟨0,#0⟩", v)
	}
	rec := sys.Tracker().Record(id)
	if got := rec.Activated.Sub(rec.Entered); got > 3*delta {
		t.Fatalf("join latency %d > 3δ", got)
	}
}

func TestWritePropagatesWithinDelta(t *testing.T) {
	sys := newSystem(t, 5, netsim.SynchronousModel{Delta: delta}, syncreg.Options{}, 0)
	ids := sys.ActiveIDs()
	writer := syncNode(t, sys, ids[0])
	done := false
	if err := writer.Write(42, func() { done = true }); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := sys.RunFor(delta); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("write did not return after δ")
	}
	for _, id := range ids {
		v, err := syncNode(t, sys, id).ReadLocal()
		if err != nil {
			t.Fatal(err)
		}
		if v.Val != 42 || v.SN != 1 {
			t.Fatalf("node %v holds %v after write completed, want ⟨42,#1⟩", id, v)
		}
	}
}

func TestReadIsLocalAndFast(t *testing.T) {
	sys := newSystem(t, 4, netsim.SynchronousModel{Delta: delta}, syncreg.Options{}, 0)
	before := sys.Network().Stats().Sent
	n := syncNode(t, sys, sys.ActiveIDs()[0])
	if _, err := n.ReadLocal(); err != nil {
		t.Fatal(err)
	}
	if after := sys.Network().Stats().Sent; after != before {
		t.Fatalf("fast read sent %d messages, want 0", after-before)
	}
}

func TestReadBeforeJoinCompletesErrors(t *testing.T) {
	sys := newSystem(t, 3, netsim.SynchronousModel{Delta: delta}, syncreg.Options{}, 0)
	_, node := sys.Spawn()
	n := node.(*syncreg.Node)
	if _, err := n.ReadLocal(); !errors.Is(err, core.ErrNotActive) {
		t.Fatalf("ReadLocal before join = %v, want ErrNotActive", err)
	}
	if err := n.Write(1, nil); !errors.Is(err, core.ErrNotActive) {
		t.Fatalf("Write before join = %v, want ErrNotActive", err)
	}
}

// TestPipelinedWritesOnSameNode pins the relaxed sequentiality contract:
// several writes to ONE key may be in flight on one node; each draws the
// next sequence number at invocation, each completes on its own δ timer,
// and the op table drains to empty.
func TestPipelinedWritesOnSameNode(t *testing.T) {
	sys := newSystem(t, 3, netsim.SynchronousModel{Delta: delta}, syncreg.Options{}, 0)
	n := syncNode(t, sys, sys.ActiveIDs()[0])
	var sns []core.SeqNum
	for i := 1; i <= 3; i++ {
		if err := n.WriteKeySN(core.DefaultRegister, core.Value(i*10), func(vv core.VersionedValue) {
			sns = append(sns, vv.SN)
		}); err != nil {
			t.Fatalf("pipelined write %d = %v, want nil", i, err)
		}
	}
	if got := n.PendingOps(); got != 3 {
		t.Fatalf("PendingOps mid-flight = %d, want 3", got)
	}
	if err := sys.RunFor(2 * delta); err != nil {
		t.Fatal(err)
	}
	if len(sns) != 3 || sns[0] != 1 || sns[1] != 2 || sns[2] != 3 {
		t.Fatalf("assigned sns = %v, want [1 2 3] (invocation order)", sns)
	}
	if got := n.PendingOps(); got != 0 {
		t.Fatalf("PendingOps after completion = %d, want 0 (leak)", got)
	}
	v, _ := n.ReadLocal()
	if v.SN != 3 || v.Val != 30 {
		t.Fatalf("after pipelined writes value = %v, want ⟨30,#3⟩", v)
	}
}

func TestSequentialWritesIncrementSN(t *testing.T) {
	sys := newSystem(t, 3, netsim.SynchronousModel{Delta: delta}, syncreg.Options{}, 0)
	n := syncNode(t, sys, sys.ActiveIDs()[0])
	for i := 1; i <= 5; i++ {
		if err := n.Write(core.Value(i*100), nil); err != nil {
			t.Fatal(err)
		}
		if err := sys.RunFor(delta); err != nil {
			t.Fatal(err)
		}
	}
	v, _ := n.ReadLocal()
	if v.SN != 5 || v.Val != 500 {
		t.Fatalf("after 5 writes value = %v, want ⟨500,#5⟩", v)
	}
}

func TestStaleWriteIgnored(t *testing.T) {
	sys := newSystem(t, 3, netsim.SynchronousModel{Delta: delta}, syncreg.Options{}, 0)
	ids := sys.ActiveIDs()
	n := syncNode(t, sys, ids[0])
	// Hand-deliver a stale WRITE (sn 0 when node already has sn 0).
	n.Deliver(ids[1], core.WriteMsg{From: ids[1], Value: core.VersionedValue{Val: 99, SN: 0}})
	v, _ := n.ReadLocal()
	if v.Val != 0 {
		t.Fatalf("stale write applied: %v", v)
	}
	if n.Stats().StaleWritesSeen != 1 {
		t.Fatalf("StaleWritesSeen = %d, want 1", n.Stats().StaleWritesSeen)
	}
}

func TestJoinerAppliesWriteWhileListening(t *testing.T) {
	// A WRITE delivered during the pre-wait is applied in listening mode,
	// and the join still broadcasts its single INQUIRY: the keyed
	// namespace removed the register≠⊥ fast path (a write on one key says
	// nothing about the others), so one-join-one-inquiry is an invariant.
	sys := newSystem(t, 3, netsim.SynchronousModel{Delta: delta}, syncreg.Options{}, 0)
	writer := syncNode(t, sys, sys.ActiveIDs()[0])

	id, node := sys.Spawn()
	n := node.(*syncreg.Node)
	_ = id
	// Write immediately: the joiner is present (listening) and included in
	// the broadcast snapshot.
	if err := writer.Write(7, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(3*delta + 1); err != nil {
		t.Fatal(err)
	}
	if !n.Active() {
		t.Fatal("join did not complete")
	}
	if got := n.Stats().JoinInquiries; got != 1 {
		t.Fatalf("join inquiries = %d, want exactly 1", got)
	}
	v, _ := n.ReadLocal()
	if v.Val != 7 || v.SN != 1 {
		t.Fatalf("joiner value = %v, want ⟨7,#1⟩", v)
	}
}

func TestConcurrentJoinersDeferReplies(t *testing.T) {
	// Two processes join simultaneously; each receives the other's INQUIRY
	// while not active and must defer its reply to join completion
	// (Figure 1 lines 15, 10-11).
	sys := newSystem(t, 2, netsim.SynchronousModel{Delta: delta}, syncreg.Options{}, 0)
	_, na := sys.Spawn()
	_, nb := sys.Spawn()
	a := na.(*syncreg.Node)
	b := nb.(*syncreg.Node)
	if err := sys.RunFor(4 * delta); err != nil {
		t.Fatal(err)
	}
	if !a.Active() || !b.Active() {
		t.Fatal("concurrent joins did not complete")
	}
	if a.Stats().InquiriesDelayed == 0 && b.Stats().InquiriesDelayed == 0 {
		t.Fatal("no inquiry was deferred; concurrency not exercised")
	}
	va, _ := a.ReadLocal()
	vb, _ := b.ReadLocal()
	if va.IsBottom() || vb.IsBottom() {
		t.Fatalf("joiner returned ⊥: a=%v b=%v", va, vb)
	}
}

// TestFigure3aWithoutWaitReturnsStaleValue reproduces Figure 3a: without
// the wait(δ) at join line 02, a process joining just after a write can
// adopt the OLD value even though the write completes before its join does
// — its next read violates regularity.
func TestFigure3aWithoutWaitReturnsStaleValue(t *testing.T) {
	// Script: WRITEs crawl (exactly δ), INQUIRY/REPLY sprint (1 tick) —
	// except the joiner's INQUIRY to the writer p1, which takes the full δ
	// (all delays remain within the synchronous bound) and so lands after
	// the writer has departed. The joiner is p4 (IDs 1..3 bootstrap).
	model := netsim.ScriptedDelayModel{
		Base: netsim.FixedDelayModel{D: 1},
		Overrides: map[netsim.Route]sim.Duration{
			{Kind: core.KindWrite}:                   delta,
			{From: 4, To: 1, Kind: core.KindInquiry}: delta,
		},
	}
	sys := newSystem(t, 3, model, syncreg.Options{SkipInitialWait: true}, 0)
	writerID := sys.ActiveIDs()[0]
	writer := syncNode(t, sys, writerID)

	writeDone := false
	if err := writer.Write(1, func() { writeDone = true }); err != nil {
		t.Fatal(err)
	}
	// p_i enters just after the write started: it is not in the WRITE
	// broadcast snapshot.
	if err := sys.RunFor(1); err != nil {
		t.Fatal(err)
	}
	_, node := sys.Spawn()
	joiner := node.(*syncreg.Node)

	// The writer departs the moment its write returns (t = δ): churn in
	// action. The joiner's fast inquiry round has already collected stale
	// replies from p2/p3 (they deliver the slow WRITE only at t = δ), and
	// the only process that could contradict them is gone.
	if err := sys.RunUntil(delta); err != nil {
		t.Fatal(err)
	}
	if !writeDone {
		t.Fatal("write did not return by δ")
	}
	sys.KillProcess(writerID)

	if err := sys.RunFor(4 * delta); err != nil {
		t.Fatal(err)
	}
	if !joiner.Active() {
		t.Fatal("join did not complete")
	}
	v, err := joiner.ReadLocal()
	if err != nil {
		t.Fatal(err)
	}
	// The read happens strictly after write(1) returned, yet returns the
	// old value 0 — the violation Figure 3a depicts.
	if v.SN != 0 {
		t.Fatalf("expected the Figure 3a staleness (sn=0), got %v — scenario broken", v)
	}
}

// TestFigure3bWithWaitReturnsFreshValue is the same scenario with the
// paper's wait(δ) restored: the joiner's inquiry now reaches processes
// after they delivered the WRITE, so the join adopts the new value.
func TestFigure3bWithWaitReturnsFreshValue(t *testing.T) {
	model := netsim.ScriptedDelayModel{
		Base: netsim.FixedDelayModel{D: 1},
		Overrides: map[netsim.Route]sim.Duration{
			{Kind: core.KindWrite}:                   delta,
			{From: 4, To: 1, Kind: core.KindInquiry}: delta,
		},
	}
	sys := newSystem(t, 3, model, syncreg.Options{}, 0)
	writerID := sys.ActiveIDs()[0]
	writer := syncNode(t, sys, writerID)
	if err := writer.Write(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(1); err != nil {
		t.Fatal(err)
	}
	_, node := sys.Spawn()
	joiner := node.(*syncreg.Node)
	// Same departure as the 3a scenario: the writer leaves once its write
	// returns. With the wait(δ) in place the joiner's inquiry reaches
	// p2/p3 only after they delivered the WRITE, so correctness survives.
	if err := sys.RunUntil(delta); err != nil {
		t.Fatal(err)
	}
	sys.KillProcess(writerID)
	if err := sys.RunFor(4 * delta); err != nil {
		t.Fatal(err)
	}
	if !joiner.Active() {
		t.Fatal("join did not complete")
	}
	v, err := joiner.ReadLocal()
	if err != nil {
		t.Fatal(err)
	}
	if v.SN != 1 || v.Val != 1 {
		t.Fatalf("with wait(δ) joiner read %v, want ⟨1,#1⟩", v)
	}
}

func TestJoinerServesInquiriesAfterActivation(t *testing.T) {
	sys := newSystem(t, 2, netsim.SynchronousModel{Delta: delta}, syncreg.Options{}, 0)
	_, first := sys.Spawn()
	a := first.(*syncreg.Node)
	if err := sys.RunFor(3*delta + 1); err != nil {
		t.Fatal(err)
	}
	if !a.Active() {
		t.Fatal("first joiner not active")
	}
	// Second joiner: the now-active first joiner must answer.
	_, second := sys.Spawn()
	b := second.(*syncreg.Node)
	if err := sys.RunFor(3*delta + 1); err != nil {
		t.Fatal(err)
	}
	if !b.Active() {
		t.Fatal("second joiner not active")
	}
	if a.Stats().InquiriesServed == 0 {
		t.Fatal("activated joiner never served an inquiry")
	}
}

func TestDeliverUnknownKindPanics(t *testing.T) {
	sys := newSystem(t, 1, netsim.SynchronousModel{Delta: delta}, syncreg.Options{}, 0)
	n := syncNode(t, sys, sys.ActiveIDs()[0])
	defer func() {
		if recover() == nil {
			t.Fatal("Deliver of esync-only message did not panic")
		}
	}()
	n.Deliver(99, core.ReadMsg{From: 99})
}

func TestOnJoinedImmediateWhenActive(t *testing.T) {
	sys := newSystem(t, 1, netsim.SynchronousModel{Delta: delta}, syncreg.Options{}, 0)
	n := syncNode(t, sys, sys.ActiveIDs()[0])
	called := false
	n.OnJoined(func() { called = true })
	if !called {
		t.Fatal("OnJoined on active node did not fire immediately")
	}
	n.OnJoined(nil) // must not panic
}

func TestChurnRunAllJoinsCompleteUnderBound(t *testing.T) {
	// c < 1/(3δ) = 1/30; use c = 0.02 with n = 30.
	sys := newSystem(t, 30, netsim.SynchronousModel{Delta: delta}, syncreg.Options{}, 0.02)
	if err := sys.RunFor(600); err != nil {
		t.Fatal(err)
	}
	completed, pending, abandoned := sys.Tracker().JoinStats()
	if completed == 0 {
		t.Fatal("no join completed under churn")
	}
	// Joins take 3δ; any pending join must be younger than 3δ.
	for _, r := range sys.Tracker().Records() {
		if r.Activated == 1<<62 {
			continue
		}
	}
	t.Logf("joins: completed=%d pending=%d abandoned=%d", completed, pending, abandoned)
	// Every process that stayed 3δ must have activated.
	for _, r := range sys.Tracker().Records() {
		if r.Activated != churnNeverActivated && r.Activated.Sub(r.Entered) > 3*delta {
			t.Fatalf("process %v join took %d > 3δ", r.ID, r.Activated.Sub(r.Entered))
		}
	}
}

// churnNeverActivated mirrors churn.NeverActivated without importing it in
// every assertion.
const churnNeverActivated = sim.Time(1<<63 - 1)

func TestWriterValueSurvivesTotalTurnover(t *testing.T) {
	// Run long enough that every bootstrap process has been replaced; the
	// register value must still be readable by current actives.
	sys := newSystem(t, 20, netsim.SynchronousModel{Delta: delta}, syncreg.Options{}, 0.02)
	writerID := sys.ActiveIDs()[0]
	writer := syncNode(t, sys, writerID)
	if err := writer.Write(1234, nil); err != nil {
		t.Fatal(err)
	}
	// Protect nothing; run 3000 ticks — expected turnover 0.02*20*3000 =
	// 1200 replacements over a population of 20.
	if err := sys.RunFor(3000); err != nil {
		t.Fatal(err)
	}
	// The original writer is almost surely gone; find any active process.
	ids := sys.ActiveIDs()
	if len(ids) == 0 {
		t.Fatal("no active processes after churn")
	}
	bootstrapGone := !sys.Present(writerID)
	v, err := syncNode(t, sys, ids[len(ids)-1]).ReadLocal()
	if err != nil {
		t.Fatal(err)
	}
	if v.SN != 1 || v.Val != 1234 {
		t.Fatalf("value lost after turnover: %v (bootstrap writer gone: %v)", v, bootstrapGone)
	}
}
