package syncreg

// Unit tests drive a Node directly through a timer-capturing fake Env,
// pinning Figure 1/2 behaviour line by line without a network.

import (
	"testing"

	"churnreg/internal/core"
	"churnreg/internal/sim"
)

type timer struct {
	d  sim.Duration
	fn func()
}

type fakeEnv struct {
	id    core.ProcessID
	n     int
	delta sim.Duration
	now   sim.Time
	sent  []struct {
		to  core.ProcessID
		msg core.Message
	}
	bcasts []core.Message
	timers []timer
	active bool
}

func (e *fakeEnv) ID() core.ProcessID { return e.id }
func (e *fakeEnv) Now() sim.Time      { return e.now }

func (e *fakeEnv) Send(to core.ProcessID, m core.Message) {
	e.sent = append(e.sent, struct {
		to  core.ProcessID
		msg core.Message
	}{to, m})
}

func (e *fakeEnv) Broadcast(m core.Message) { e.bcasts = append(e.bcasts, m) }

func (e *fakeEnv) After(d sim.Duration, fn func()) {
	e.timers = append(e.timers, timer{d: d, fn: fn})
}

func (e *fakeEnv) Delta() sim.Duration { return e.delta }
func (e *fakeEnv) SystemSize() int     { return e.n }
func (e *fakeEnv) MarkActive()         { e.active = true }

// fire pops and runs the oldest pending timer, advancing the clock.
func (e *fakeEnv) fire(t *testing.T) {
	t.Helper()
	if len(e.timers) == 0 {
		t.Fatal("no pending timer")
	}
	tm := e.timers[0]
	e.timers = e.timers[1:]
	e.now = e.now.Add(tm.d)
	tm.fn()
}

var _ core.Env = (*fakeEnv)(nil)

func newJoining(opts Options) (*Node, *fakeEnv) {
	env := &fakeEnv{id: 100, n: 5, delta: 10}
	node := New(env, core.SpawnContext{}, opts)
	node.Start()
	return node, env
}

func TestJoinTimerSequence(t *testing.T) {
	n, env := newJoining(Options{})
	// Line 02: exactly one pending timer of δ (the pre-wait).
	if len(env.timers) != 1 || env.timers[0].d != 10 {
		t.Fatalf("pre-wait timer = %+v, want one of δ=10", env.timers)
	}
	env.fire(t) // pre-wait elapses; register still ⊥ → INQUIRY + 2δ wait
	if len(env.bcasts) != 1 || env.bcasts[0].Kind() != core.KindInquiry {
		t.Fatalf("no INQUIRY after pre-wait: %v", env.bcasts)
	}
	if len(env.timers) != 1 || env.timers[0].d != 20 {
		t.Fatalf("inquiry window timer = %+v, want 2δ=20", env.timers)
	}
	env.fire(t) // window closes: join completes even with zero replies
	if !n.Active() || !env.active {
		t.Fatal("join did not complete at window close")
	}
	if !n.Snapshot().IsBottom() {
		t.Fatal("no replies, yet register is not ⊥ (where did a value come from?)")
	}
}

func TestJoinStillInquiresWhenWriteArrived(t *testing.T) {
	// A WRITE observed during the pre-wait used to short-circuit the
	// INQUIRY (sound for a single register: any observed write supersedes
	// every earlier one). In the keyed namespace a write on one key says
	// nothing about other keys, so the joiner must inquire regardless —
	// exactly once — while still adopting the value it overheard.
	n, env := newJoining(Options{})
	n.Deliver(1, core.WriteMsg{From: 1, Value: core.VersionedValue{Val: 6, SN: 3}})
	env.fire(t) // pre-wait ends → INQUIRY despite the adopted value
	if len(env.bcasts) != 1 || env.bcasts[0].Kind() != core.KindInquiry {
		t.Fatalf("broadcasts after pre-wait = %v, want exactly one INQUIRY", env.bcasts)
	}
	env.fire(t) // inquiry window closes
	if !n.Active() {
		t.Fatal("join did not activate at window close")
	}
	if v := n.Snapshot(); v.SN != 3 || v.Val != 6 {
		t.Fatalf("adopted %v, want the overheard ⟨6,#3⟩", v)
	}
	if got := n.Stats().JoinInquiries; got != 1 {
		t.Fatalf("join inquiries = %d, want exactly 1", got)
	}
}

func TestJoinAdoptsHighestReply(t *testing.T) {
	n, env := newJoining(Options{})
	env.fire(t) // pre-wait
	n.Deliver(1, core.ReplyMsg{From: 1, Value: core.VersionedValue{Val: 10, SN: 1}})
	n.Deliver(2, core.ReplyMsg{From: 2, Value: core.VersionedValue{Val: 30, SN: 3}})
	n.Deliver(3, core.ReplyMsg{From: 3, Value: core.VersionedValue{Val: 20, SN: 2}})
	env.fire(t) // window closes
	if v := n.Snapshot(); v.SN != 3 || v.Val != 30 {
		t.Fatalf("adopted %v, want the highest-sn reply ⟨30,#3⟩", v)
	}
}

func TestDuplicateReplierKeepsMax(t *testing.T) {
	n, env := newJoining(Options{})
	env.fire(t)
	// Same process replies twice (e.g. deferred + direct); the max wins
	// regardless of arrival order.
	n.Deliver(1, core.ReplyMsg{From: 1, Value: core.VersionedValue{Val: 50, SN: 5}})
	n.Deliver(1, core.ReplyMsg{From: 1, Value: core.VersionedValue{Val: 10, SN: 1}})
	env.fire(t)
	if v := n.Snapshot(); v.SN != 5 {
		t.Fatalf("adopted %v, want sn 5", v)
	}
}

func TestReplyToDedupes(t *testing.T) {
	n, env := newJoining(Options{})
	n.Deliver(7, core.InquiryMsg{From: 7})
	n.Deliver(7, core.InquiryMsg{From: 7})
	n.Deliver(8, core.InquiryMsg{From: 8})
	env.fire(t) // pre-wait
	env.fire(t) // window — completion flushes deferred replies
	replies := 0
	for _, s := range env.sent {
		if s.msg.Kind() == core.KindReply {
			replies++
		}
	}
	if replies != 2 {
		t.Fatalf("deferred replies = %d, want 2 (p7 deduped)", replies)
	}
}

func TestLateReplyAfterJoinDoesNotChangeRegister(t *testing.T) {
	n, env := newJoining(Options{})
	env.fire(t)
	n.Deliver(1, core.ReplyMsg{From: 1, Value: core.VersionedValue{Val: 1, SN: 1}})
	env.fire(t) // join completes with sn 1
	n.Deliver(2, core.ReplyMsg{From: 2, Value: core.VersionedValue{Val: 9, SN: 9}})
	if v := n.Snapshot(); v.SN != 1 {
		t.Fatalf("late REPLY mutated the register: %v (only WRITEs may)", v)
	}
}

func TestWriteUsesAdoptedSN(t *testing.T) {
	env := &fakeEnv{id: 1, n: 5, delta: 10}
	n := New(env, core.SpawnContext{Bootstrap: true, Initial: core.VersionedValue{Val: 0, SN: 0}}, Options{})
	n.Start()
	// The node learns sn 7 via a WRITE, then writes: new sn must be 8.
	n.Deliver(2, core.WriteMsg{From: 2, Value: core.VersionedValue{Val: 70, SN: 7}})
	if err := n.Write(80, nil); err != nil {
		t.Fatal(err)
	}
	w, ok := env.bcasts[len(env.bcasts)-1].(core.WriteMsg)
	if !ok || w.Value.SN != 8 || w.Value.Val != 80 {
		t.Fatalf("WRITE = %#v, want ⟨80,#8⟩", env.bcasts[len(env.bcasts)-1])
	}
	// Completion is exactly one δ timer.
	if len(env.timers) != 1 || env.timers[0].d != 10 {
		t.Fatalf("write completion timer = %+v, want δ", env.timers)
	}
}

func TestInquiryEchoIgnoredWhileJoining(t *testing.T) {
	// A joiner receives its own INQUIRY loopback: it defers a reply to
	// itself, which is harmless but must not break activation.
	n, env := newJoining(Options{})
	env.fire(t)
	n.Deliver(100, core.InquiryMsg{From: 100}) // own loopback
	env.fire(t)
	if !n.Active() {
		t.Fatal("self-inquiry broke the join")
	}
}

func TestSkipInitialWaitGoesStraightToInquiry(t *testing.T) {
	_, env := newJoining(Options{SkipInitialWait: true})
	// The pre-wait timer exists but with zero duration.
	if len(env.timers) != 1 || env.timers[0].d != 0 {
		t.Fatalf("skip-wait timer = %+v, want 0", env.timers)
	}
	env.fire(t)
	if len(env.bcasts) != 1 || env.bcasts[0].Kind() != core.KindInquiry {
		t.Fatal("no immediate INQUIRY in skip-wait mode")
	}
}
