// Package syncreg implements the paper's synchronous-system regular
// register protocol (§3, Figures 1 and 2), generalized from one register
// to a keyed register namespace served by a single join.
//
// Protocol shape:
//
//   - join (Figure 1): initialize, wait δ (the pre-wait Figure 3 motivates),
//     broadcast INQUIRY and wait 2δ (a broadcast round plus a point-to-point
//     reply round); adopt, per key, the highest sequence number received;
//     become active; answer inquiries deferred while joining.
//   - read (Figure 2): purely local — return the local copy of the key.
//     This is the protocol's "fast reads" design point.
//   - write (Figure 2): increment the key's sequence number, update the
//     local copy, broadcast WRITE, wait δ so the broadcast's timely
//     delivery property has taken effect everywhere, then return. A batch
//     write updates several keys with the same single broadcast and δ wait.
//
// Concurrency: the paper's processes are sequential; this node is not.
// Every write is an entry in an operation table (core.OpTable) with its
// own δ timer, so one node can have many writes in flight — across keys
// AND pipelined on one key. Sequence numbers are assigned at invocation
// (the local copy advances immediately), so pipelined writes to one key
// from this node carry strictly increasing sequence numbers in invocation
// order; the no-concurrent-writes discipline the paper needs survives per
// key ACROSS nodes, which is the workload's (or the §7 token's) concern.
//
// Membership vs. register state: the join, the active flag, and the
// deferred-inquiry bookkeeping are maintained once per process; everything
// register-valued lives in a map keyed by core.RegisterID, instantiated
// lazily when a WRITE or read first names a key. A join reply carries the
// replier's whole register space in one message (batch dissemination), so
// joining once suffices no matter how many keys exist.
//
// The seed's "register ≠ ⊥ ⇒ skip the INQUIRY" fast path (Figure 1 line
// 03) is gone: it was sound only for a single register (any observed WRITE
// supersedes every earlier one), but in a namespace a WRITE on key A says
// nothing about a write on key B the joiner missed, so a joiner that
// skipped its inquiry could serve stale reads on keys it never heard of.
// Every join now broadcasts exactly one INQUIRY — which also gives the
// membership layer a clean one-join-one-inquiry invariant to assert.
//
// Correctness requires the churn bound c < 1/(3δ) (Theorem 1); the package
// does not enforce the bound — experiments explore both sides of it.
package syncreg

import (
	"fmt"

	"churnreg/internal/core"
)

// Options tune the protocol for experiments.
type Options struct {
	// SkipInitialWait disables the wait(δ) at Figure 1 line 02. This is
	// the broken variant of Figure 3a; it exists so experiment E1 can
	// demonstrate the violation the wait prevents.
	SkipInitialWait bool
}

// Node is one process running the synchronous protocol. It must only be
// driven by a single-threaded runtime (core.Env guarantees this).
type Node struct {
	env  core.Env
	opts Options

	// regs holds (register_i, sn_i) per key; a key is absent until a value
	// for it is learned (⊥ in the paper's terms, or the implicit initial
	// for keys other than 0 once active — see core.RegStore.Value).
	regs *core.RegStore
	// active is active_i: true once join returned.
	active bool
	// replyTo is reply_to_i: processes whose INQUIRY arrived while we were
	// joining, in arrival order.
	replyTo []core.ProcessID
	// replyToSeen dedupes replyTo.
	replyToSeen map[core.ProcessID]bool
	// ops tracks in-flight writes (lone and batched), one entry per client
	// operation, each completed by its own δ timer.
	ops *core.OpTable[writeOp]

	joining  bool
	joinDone []func()

	stats Stats
}

// Stats counts protocol activity at this node.
type Stats struct {
	Reads            uint64
	Writes           uint64
	BatchWrites      uint64 // batched broadcasts (each covering >= 1 key)
	JoinInquiries    uint64 // INQUIRY broadcasts sent by this node's join (0 or 1)
	InquiriesServed  uint64
	InquiriesDelayed uint64
	StaleWritesSeen  uint64 // WRITE deliveries with sn <= local sn
}

// New builds a node. Bootstrap nodes hold the initial values and are
// active immediately; all others start the join operation when Start is
// called.
func New(env core.Env, sc core.SpawnContext, opts Options) *Node {
	n := &Node{
		env:         env,
		opts:        opts,
		regs:        core.NewRegStore(sc),
		replyToSeen: make(map[core.ProcessID]bool),
		ops:         core.NewOpTable[writeOp](0),
	}
	n.active = sc.Bootstrap
	return n
}

// Factory returns a core.NodeFactory building nodes with opts.
func Factory(opts Options) core.NodeFactory {
	return func(env core.Env, sc core.SpawnContext) core.Node {
		return New(env, sc, opts)
	}
}

// writeOp is one in-flight write operation: the values it stored (one for
// a lone write, several for a batch) and the callback its δ timer runs.
type writeOp struct {
	entries []core.KeyedValue
	done    func([]core.KeyedValue)
}

// Compile-time interface checks.
var (
	_ core.Node             = (*Node)(nil)
	_ core.LocalReader      = (*Node)(nil)
	_ core.Writer           = (*Node)(nil)
	_ core.Joiner           = (*Node)(nil)
	_ core.KeyedLocalReader = (*Node)(nil)
	_ core.KeyedWriter      = (*Node)(nil)
	_ core.SNWriter         = (*Node)(nil)
	_ core.BatchWriter      = (*Node)(nil)
	_ core.SNBatchWriter    = (*Node)(nil)
	_ core.KeyedSnapshotter = (*Node)(nil)
	_ core.OpAccountant     = (*Node)(nil)
)

// value and merge are per-key store accessors threading the node's
// activation state (see core.RegStore.Value for the ⊥/implicit-initial
// rules).
func (n *Node) value(k core.RegisterID) core.VersionedValue { return n.regs.Value(k, n.active) }

func (n *Node) merge(k core.RegisterID, v core.VersionedValue) bool {
	return n.regs.Merge(k, v, n.active)
}

// Start implements core.Node: bootstrap nodes are active at once; others
// run the join operation of Figure 1.
func (n *Node) Start() {
	if n.active {
		n.env.MarkActive()
		return
	}
	n.startJoin()
}

// startJoin is operation join(i), Figure 1 lines 01-12.
func (n *Node) startJoin() {
	n.joining = true
	// Line 01: initialization happened in New (regs empty, sets empty).
	preWait := n.env.Delta()
	if n.opts.SkipInitialWait {
		preWait = 0
	}
	// Line 02: wait(δ). A write concurrent with the start of this join is
	// guaranteed to have reached us by the end of the wait (its broadcast
	// happened before we entered only if it also terminates before we
	// finish waiting — see Figure 3b).
	n.env.After(preWait, func() {
		// Lines 04-06: broadcast INQUIRY(i) and wait 2δ (the broadcast
		// dissemination bound plus the point-to-point reply bound). This
		// is the process's one and only join inquiry, whatever number of
		// registers the namespace holds.
		n.stats.JoinInquiries++
		n.env.Broadcast(core.InquiryMsg{From: n.env.ID(), RSN: core.JoinReadSeq})
		n.env.After(2*n.env.Delta(), n.completeJoin)
	})
}

// completeJoin is Figure 1 lines 07-12. Reply values were merged on
// arrival (per key), so only the activation and deferred replies remain.
func (n *Node) completeJoin() {
	if !n.joining {
		return
	}
	n.joining = false
	// Line 10: become active.
	n.active = true
	n.env.MarkActive()
	// Line 11: answer inquiries deferred while we were joining — each
	// answer carries our full register space.
	for _, j := range n.replyTo {
		n.env.Send(j, n.snapshotReply())
	}
	n.replyTo = nil
	n.replyToSeen = make(map[core.ProcessID]bool)
	// Line 12: return ok.
	done := n.joinDone
	n.joinDone = nil
	for _, f := range done {
		f()
	}
}

// snapshotReply builds a REPLY carrying this node's entire register space
// (see core.RegStore.SnapshotReply). The synchronous protocol leaves RSN
// at its zero value.
func (n *Node) snapshotReply() core.ReplyMsg {
	return n.regs.SnapshotReply(n.env.ID(), core.JoinReadSeq, n.active)
}

// OnJoined implements core.Joiner: done runs when the join returns ok (or
// immediately if it already has).
func (n *Node) OnJoined(done func()) {
	if done == nil {
		return
	}
	if n.active {
		done()
		return
	}
	n.joinDone = append(n.joinDone, done)
}

// Active implements core.Node.
func (n *Node) Active() bool { return n.active }

// Snapshot implements core.Node (key 0's local copy).
func (n *Node) Snapshot() core.VersionedValue { return n.value(core.DefaultRegister) }

// SnapshotKey implements core.KeyedSnapshotter.
func (n *Node) SnapshotKey(k core.RegisterID) core.VersionedValue { return n.value(k) }

// Keys implements core.KeyedSnapshotter.
func (n *Node) Keys() []core.RegisterID { return n.regs.Keys() }

// Stats returns a copy of this node's counters.
func (n *Node) Stats() Stats { return n.stats }

// ReadLocal implements core.LocalReader — key-0 sugar for ReadLocalKey.
func (n *Node) ReadLocal() (core.VersionedValue, error) {
	return n.ReadLocalKey(core.DefaultRegister)
}

// ReadLocalKey implements core.KeyedLocalReader — operation read(),
// Figure 2: the read is fast, returning the local copy of the key with no
// communication and no wait.
func (n *Node) ReadLocalKey(k core.RegisterID) (core.VersionedValue, error) {
	if !n.active {
		return core.Bottom(), core.ErrNotActive
	}
	n.stats.Reads++
	return n.value(k), nil
}

// Write implements core.Writer — key-0 sugar for WriteKey.
func (n *Node) Write(v core.Value, done func()) error {
	return n.WriteKey(core.DefaultRegister, v, done)
}

// WriteKey implements core.KeyedWriter — sugar over WriteKeySN for
// callers that do not need the assigned sequence number.
func (n *Node) WriteKey(k core.RegisterID, v core.Value, done func()) error {
	return n.WriteKeySN(k, v, func(core.VersionedValue) {
		if done != nil {
			done()
		}
	})
}

// WriteKeySN implements core.SNWriter — operation write(v), Figure 2
// lines 01-02, on one key. done receives the exact ⟨v, sn⟩ this write
// stored when the write returns ok. Writes may be in flight concurrently
// on this node — across keys and pipelined on this key (each is its own
// op-table entry with its own δ timer); the paper's no-concurrent-writes
// discipline applies per key across nodes.
func (n *Node) WriteKeySN(k core.RegisterID, v core.Value, done func(core.VersionedValue)) error {
	if !n.active {
		return core.ErrNotActive
	}
	if n.ops.Full() {
		return core.ErrOpInProgress
	}
	id, o := n.ops.Begin()
	n.stats.Writes++
	// Line 01: sn_w := sn_w + 1; register := v; broadcast WRITE(v, sn_w).
	// The local copy advances NOW, so a pipelined successor write on this
	// key builds on this sequence number: invocation order = sn order.
	next := core.VersionedValue{Val: v, SN: n.value(k).SN + 1}
	n.regs.Store(k, next)
	o.entries = []core.KeyedValue{{Reg: k, Value: next}}
	if done != nil {
		o.done = func(kvs []core.KeyedValue) { done(kvs[0].Value) }
	}
	// Sharded runtimes scope the dissemination to the key's replica
	// group (R sends instead of a full broadcast — the capacity dividend);
	// unsharded ones broadcast exactly as Figure 2 prescribes.
	core.ScopedBroadcast(n.env, k, core.WriteMsg{From: n.env.ID(), Value: next, Reg: k, Op: id})
	// Line 02: wait(δ); return ok. After δ every process present at the
	// broadcast that has not left holds the value. Each write waits on its
	// OWN timer: the waits overlap, which is the pipelining dividend.
	n.env.After(n.env.Delta(), func() { n.finishWrite(id) })
	return nil
}

// finishWrite reclaims one write's op-table entry and runs its callback.
func (n *Node) finishWrite(id core.OpID) {
	o, ok := n.ops.Get(id)
	if !ok {
		return
	}
	n.ops.Finish(id)
	if o.done != nil {
		o.done(o.entries)
	}
}

// WriteBatch implements core.BatchWriter — sugar over WriteBatchSN.
func (n *Node) WriteBatch(entries []core.KeyedWrite, done func()) error {
	return n.WriteBatchSN(entries, func([]core.KeyedValue) {
		if done != nil {
			done()
		}
	})
}

// WriteBatchSN implements core.SNBatchWriter: one broadcast carries
// updates for every named key, and the single δ wait covers them all —
// the synchronous model's batching dividend. done receives the stored
// ⟨v, sn⟩ per entry, in entry order. Entries must be sorted by Reg with
// no duplicates. The whole batch is ONE op-table entry.
func (n *Node) WriteBatchSN(entries []core.KeyedWrite, done func([]core.KeyedValue)) error {
	if !n.active {
		return core.ErrNotActive
	}
	if len(entries) == 0 {
		return fmt.Errorf("syncreg: empty batch")
	}
	for i, e := range entries {
		if i > 0 && entries[i-1].Reg >= e.Reg {
			return fmt.Errorf("syncreg: batch entries not sorted/unique at %v", e.Reg)
		}
	}
	if n.ops.Full() {
		return core.ErrOpInProgress
	}
	id, o := n.ops.Begin()
	n.stats.BatchWrites++
	n.stats.Writes += uint64(len(entries))
	out := make([]core.KeyedValue, len(entries))
	for i, e := range entries {
		next := core.VersionedValue{Val: e.Val, SN: n.value(e.Reg).SN + 1}
		n.regs.Store(e.Reg, next)
		out[i] = core.KeyedValue{Reg: e.Reg, Value: next}
	}
	o.entries = out
	o.done = done
	regs := make([]core.RegisterID, len(out))
	for i, kv := range out {
		regs[i] = kv.Reg
	}
	// One message to the union of the entries' replica groups (the whole
	// membership when unsharded) — the batching dividend survives sharding
	// whenever a batch stays within one group.
	core.ScopedBroadcastMulti(n.env, regs, core.WriteBatchMsg{From: n.env.ID(), Op: id, Entries: out})
	n.env.After(n.env.Delta(), func() { n.finishWrite(id) })
	return nil
}

// PendingOps implements core.OpAccountant.
func (n *Node) PendingOps() int { return n.ops.Len() }

// Deliver implements core.Node, dispatching the message handlers of
// Figures 1 and 2.
func (n *Node) Deliver(from core.ProcessID, m core.Message) {
	switch msg := m.(type) {
	case core.InquiryMsg:
		n.handleInquiry(msg)
	case core.ReplyMsg:
		n.handleReply(msg)
	case core.WriteMsg:
		n.handleWrite(msg)
	case core.WriteBatchMsg:
		n.handleWriteBatch(msg)
	default:
		// Other kinds belong to the eventually synchronous protocol; a
		// mixed deployment is a configuration bug we surface loudly in
		// simulation rather than mask.
		panic("syncreg: unexpected message kind " + m.Kind().String())
	}
}

// handleInquiry is Figure 1 lines 13-16.
func (n *Node) handleInquiry(m core.InquiryMsg) {
	if n.active {
		// Line 14: active processes answer immediately, with their whole
		// register space in one message.
		n.stats.InquiriesServed++
		n.env.Send(m.From, n.snapshotReply())
		return
	}
	// Line 15: postpone the answer until our own join completes.
	n.stats.InquiriesDelayed++
	if !n.replyToSeen[m.From] {
		n.replyToSeen[m.From] = true
		n.replyTo = append(n.replyTo, m.From)
	}
}

// handleReply is Figure 1 line 17, merged eagerly per key: keeping only
// the per-key maximum is equivalent to the paper's replies set because
// the line 07 fold is a max anyway. Replies landing after the inquiry
// window closed are ignored, exactly as the seed's set was discarded at
// join completion — after the join, only WRITEs mutate register state.
func (n *Node) handleReply(m core.ReplyMsg) {
	if !n.joining {
		return
	}
	m.Entries(func(k core.RegisterID, v core.VersionedValue) {
		n.merge(k, v)
	})
}

// handleWrite is Figure 2 lines 03-04 — runs at any process, active or
// joining (a joining process is in listening mode and applies writes).
func (n *Node) handleWrite(m core.WriteMsg) {
	if !n.merge(m.Reg, m.Value) {
		n.stats.StaleWritesSeen++
	}
}

// handleWriteBatch applies each entry exactly as a lone WRITE would be.
func (n *Node) handleWriteBatch(m core.WriteBatchMsg) {
	for _, kv := range m.Entries {
		if !n.merge(kv.Reg, kv.Value) {
			n.stats.StaleWritesSeen++
		}
	}
}
