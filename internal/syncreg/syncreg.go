// Package syncreg implements the paper's synchronous-system regular
// register protocol (§3, Figures 1 and 2).
//
// Protocol shape:
//
//   - join (Figure 1): initialize, wait δ (the pre-wait Figure 3 motivates),
//     and if no WRITE arrived meanwhile, broadcast INQUIRY and wait 2δ (a
//     broadcast round plus a point-to-point reply round); adopt the highest
//     sequence number received; become active; answer inquiries deferred
//     while joining.
//   - read (Figure 2): purely local — return the local copy. This is the
//     protocol's "fast reads" design point.
//   - write (Figure 2): increment the sequence number, update the local
//     copy, broadcast WRITE, wait δ so the broadcast's timely delivery
//     property has taken effect everywhere, then return.
//
// Correctness requires the churn bound c < 1/(3δ) (Theorem 1); the package
// does not enforce the bound — experiments explore both sides of it.
package syncreg

import (
	"churnreg/internal/core"
	"churnreg/internal/sim"
)

// Options tune the protocol for experiments.
type Options struct {
	// SkipInitialWait disables the wait(δ) at Figure 1 line 02. This is
	// the broken variant of Figure 3a; it exists so experiment E1 can
	// demonstrate the violation the wait prevents.
	SkipInitialWait bool
}

// Node is one process running the synchronous protocol. It must only be
// driven by a single-threaded runtime (core.Env guarantees this).
type Node struct {
	env  core.Env
	opts Options

	// register is the pair (register_i, sn_i); ⊥ while joining.
	register core.VersionedValue
	// active is active_i: true once join returned.
	active bool
	// replies is replies_i: best value received per replying process.
	replies map[core.ProcessID]core.VersionedValue
	// replyTo is reply_to_i: processes whose INQUIRY arrived while we were
	// joining, in arrival order.
	replyTo []core.ProcessID
	// replyToSeen dedupes replyTo.
	replyToSeen map[core.ProcessID]bool

	joining      bool
	joinDone     []func()
	writing      bool
	writeStarted sim.Time

	stats Stats
}

// Stats counts protocol activity at this node.
type Stats struct {
	Reads            uint64
	Writes           uint64
	InquiriesServed  uint64
	InquiriesDelayed uint64
	StaleWritesSeen  uint64 // WRITE deliveries with sn <= local sn
	JoinSkippedWait  bool   // join found register != ⊥ after the pre-wait
}

// New builds a node. Bootstrap nodes hold the initial value and are active
// immediately; all others start the join operation when Start is called.
func New(env core.Env, sc core.SpawnContext, opts Options) *Node {
	n := &Node{
		env:         env,
		opts:        opts,
		register:    core.Bottom(),
		replies:     make(map[core.ProcessID]core.VersionedValue),
		replyToSeen: make(map[core.ProcessID]bool),
	}
	if sc.Bootstrap {
		n.register = sc.Initial
		n.active = true
	}
	return n
}

// Factory returns a core.NodeFactory building nodes with opts.
func Factory(opts Options) core.NodeFactory {
	return func(env core.Env, sc core.SpawnContext) core.Node {
		return New(env, sc, opts)
	}
}

// Compile-time interface checks.
var (
	_ core.Node        = (*Node)(nil)
	_ core.LocalReader = (*Node)(nil)
	_ core.Writer      = (*Node)(nil)
	_ core.Joiner      = (*Node)(nil)
)

// Start implements core.Node: bootstrap nodes are active at once; others
// run the join operation of Figure 1.
func (n *Node) Start() {
	if n.active {
		n.env.MarkActive()
		return
	}
	n.startJoin()
}

// startJoin is operation join(i), Figure 1 lines 01-12.
func (n *Node) startJoin() {
	n.joining = true
	// Line 01: initialization happened in New (register=⊥, sets empty).
	preWait := n.env.Delta()
	if n.opts.SkipInitialWait {
		preWait = 0
	}
	// Line 02: wait(δ). A write concurrent with the start of this join is
	// guaranteed to have reached us by the end of the wait (its broadcast
	// happened before we entered only if it also terminates before we
	// finish waiting — see Figure 3b).
	n.env.After(preWait, func() {
		// Line 03: if register_i = ⊥ then inquire.
		if !n.register.IsBottom() {
			n.stats.JoinSkippedWait = true
			n.completeJoin()
			return
		}
		// Lines 04-06: broadcast INQUIRY(i) and wait 2δ (the broadcast
		// dissemination bound plus the point-to-point reply bound).
		n.replies = make(map[core.ProcessID]core.VersionedValue)
		n.env.Broadcast(core.InquiryMsg{From: n.env.ID(), RSN: core.JoinReadSeq})
		n.env.After(2*n.env.Delta(), n.completeJoin)
	})
}

// completeJoin is Figure 1 lines 07-12.
func (n *Node) completeJoin() {
	if !n.joining {
		return
	}
	n.joining = false
	// Lines 07-08: adopt the most up-to-date value among the replies.
	for _, v := range n.replies {
		if v.MoreRecent(n.register) {
			n.register = v
		}
	}
	// Line 10: become active.
	n.active = true
	n.env.MarkActive()
	// Line 11: answer inquiries deferred while we were joining.
	for _, j := range n.replyTo {
		n.env.Send(j, core.ReplyMsg{From: n.env.ID(), Value: n.register})
	}
	n.replyTo = nil
	n.replyToSeen = make(map[core.ProcessID]bool)
	// Line 12: return ok.
	done := n.joinDone
	n.joinDone = nil
	for _, f := range done {
		f()
	}
}

// OnJoined implements core.Joiner: done runs when the join returns ok (or
// immediately if it already has).
func (n *Node) OnJoined(done func()) {
	if done == nil {
		return
	}
	if n.active {
		done()
		return
	}
	n.joinDone = append(n.joinDone, done)
}

// Active implements core.Node.
func (n *Node) Active() bool { return n.active }

// Snapshot implements core.Node.
func (n *Node) Snapshot() core.VersionedValue { return n.register }

// Stats returns a copy of this node's counters.
func (n *Node) Stats() Stats { return n.stats }

// ReadLocal implements core.LocalReader — operation read(), Figure 2: the
// read is fast, returning the local copy with no communication and no wait.
func (n *Node) ReadLocal() (core.VersionedValue, error) {
	if !n.active {
		return core.Bottom(), core.ErrNotActive
	}
	n.stats.Reads++
	return n.register, nil
}

// Write implements core.Writer — operation write(v), Figure 2 lines 01-02.
// The paper assumes writes are not concurrent with one another (one writer,
// or coordinated writers); done runs when the write returns ok.
func (n *Node) Write(v core.Value, done func()) error {
	if !n.active {
		return core.ErrNotActive
	}
	if n.writing {
		return core.ErrOpInProgress
	}
	n.writing = true
	n.writeStarted = n.env.Now()
	n.stats.Writes++
	// Line 01: sn_w := sn_w + 1; register := v; broadcast WRITE(v, sn_w).
	n.register = core.VersionedValue{Val: v, SN: n.register.SN + 1}
	n.env.Broadcast(core.WriteMsg{From: n.env.ID(), Value: n.register})
	// Line 02: wait(δ); return ok. After δ every process present at the
	// broadcast that has not left holds the value.
	n.env.After(n.env.Delta(), func() {
		n.writing = false
		if done != nil {
			done()
		}
	})
	return nil
}

// Deliver implements core.Node, dispatching the message handlers of
// Figures 1 and 2.
func (n *Node) Deliver(from core.ProcessID, m core.Message) {
	switch msg := m.(type) {
	case core.InquiryMsg:
		n.handleInquiry(msg)
	case core.ReplyMsg:
		n.handleReply(msg)
	case core.WriteMsg:
		n.handleWrite(msg)
	default:
		// Other kinds belong to the eventually synchronous protocol; a
		// mixed deployment is a configuration bug we surface loudly in
		// simulation rather than mask.
		panic("syncreg: unexpected message kind " + m.Kind().String())
	}
}

// handleInquiry is Figure 1 lines 13-16.
func (n *Node) handleInquiry(m core.InquiryMsg) {
	if n.active {
		// Line 14: active processes answer immediately.
		n.stats.InquiriesServed++
		n.env.Send(m.From, core.ReplyMsg{From: n.env.ID(), Value: n.register})
		return
	}
	// Line 15: postpone the answer until our own join completes.
	n.stats.InquiriesDelayed++
	if !n.replyToSeen[m.From] {
		n.replyToSeen[m.From] = true
		n.replyTo = append(n.replyTo, m.From)
	}
}

// handleReply is Figure 1 line 17.
func (n *Node) handleReply(m core.ReplyMsg) {
	if cur, ok := n.replies[m.From]; !ok || m.Value.MoreRecent(cur) {
		n.replies[m.From] = m.Value
	}
}

// handleWrite is Figure 2 lines 03-04 — runs at any process, active or
// joining (a joining process is in listening mode and applies writes).
func (n *Node) handleWrite(m core.WriteMsg) {
	if m.Value.MoreRecent(n.register) {
		n.register = m.Value
	} else {
		n.stats.StaleWritesSeen++
	}
}
