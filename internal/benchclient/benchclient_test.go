package benchclient

import (
	"testing"
	"time"
)

// TestDirectRoutingSpeedupFloor is the artifact's own acceptance floor:
// against the same sharded cluster, the wire client routing direct must
// move at least 1.5x the ops/sec of the naive single-node HTTP path —
// and the forward-relay scrapes must show WHY (the naive leg relays,
// the smart leg does not). The checked-in BENCH_client.json shows well
// above 1.5x; the floor keeps CI immune to noisy neighbours while
// catching a client that silently degrades to relayed routing (which
// yields ~1x).
func TestDirectRoutingSpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("builds regserve and spawns an OS-process cluster; skipped in -short")
	}
	rep, err := Run(Config{
		Inflight: 48,
		Duration: 1500 * time.Millisecond,
		Rate:     600,
		OpenOps:  800,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HTTPNaive.OpsPerSec <= 0 || rep.WireDirect.OpsPerSec <= 0 {
		t.Fatalf("degenerate measurement: %+v", rep)
	}
	if rep.DirectSpeedup < 1.5 {
		t.Fatalf("direct-routing speedup = %.2fx (%.0f vs %.0f ops/sec), want >= 1.5x",
			rep.DirectSpeedup, rep.WireDirect.OpsPerSec, rep.HTTPNaive.OpsPerSec)
	}
	// The mechanism, not just the number: the naive path relays (most
	// keys are not served by the one entry node), the smart path does
	// not (every op lands on a member of the owning group).
	if rep.HTTPNaive.ForwardRelays == 0 {
		t.Fatal("naive HTTP leg caused no forward relays — the comparison is not measuring the relay hop")
	}
	if limit := uint64(rep.WireDirect.Ops / 50); rep.WireDirect.ForwardRelays > limit {
		t.Fatalf("smart client caused %d forward relays over %d ops (allowing <= %d for placement races)",
			rep.WireDirect.ForwardRelays, rep.WireDirect.Ops, limit)
	}
	// The open-loop legs measured real latencies for both classes in
	// both mixes.
	if len(rep.OpenLoop) != 2 {
		t.Fatalf("open-loop results = %d mixes, want 2", len(rep.OpenLoop))
	}
	for _, ol := range rep.OpenLoop {
		if ol.Errors > ol.Ops/20 {
			t.Fatalf("mix %s: %d/%d open-loop ops failed", ol.Mix.Name, ol.Errors, ol.Ops)
		}
		if ol.ReadP50Ms <= 0 || ol.WriteP50Ms <= 0 {
			t.Fatalf("mix %s: empty latency percentiles: %+v", ol.Mix.Name, ol)
		}
		if ol.ReadP99Ms < ol.ReadP50Ms || ol.WriteP99Ms < ol.WriteP50Ms {
			t.Fatalf("mix %s: percentiles not monotone: %+v", ol.Mix.Name, ol)
		}
	}
}

// TestOpenLoopMeasuresFromScheduledArrival pins the coordinated-omission
// defence in the engine itself: with an op func that stalls, the tail
// latency must reflect the queued arrivals' waiting time — far above the
// per-op service time a closed loop would report.
func TestOpenLoopMeasuresFromScheduledArrival(t *testing.T) {
	const stall = 50 * time.Millisecond
	res, err := RunOpenLoop(OpenLoopConfig{
		Rate: 1000, Ops: 100, Keys: 4, WriteFraction: 0, Seed: 1,
		Do: func(int64, bool) error { time.Sleep(stall); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	// Every op takes 50ms of service time; arrivals come every 1ms. In an
	// open loop each op's latency is its own service time (they run
	// concurrently from their scheduled arrivals), so p50 sits near the
	// stall — but never below it, and never near zero.
	if res.ReadP50Ms < float64(stall)/float64(time.Millisecond) {
		t.Fatalf("p50 = %.1fms, below the %.0fms service time — latency not measured from scheduled arrival",
			res.ReadP50Ms, float64(stall)/float64(time.Millisecond))
	}
}
