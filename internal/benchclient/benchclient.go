// Package benchclient measures what the wire-native smart client buys,
// producing the BENCH_client.json artifact (via cmd/benchjson or
// cmd/regbench -compare):
//
//   - Closed-loop throughput of the naive path (HTTP API on one node of
//     a sharded cluster, so most operations pay a server-side FORWARD
//     relay to the owning replica group) against the smart path (the
//     client/ package routing every operation straight to a server that
//     serves it locally). The ratio is the edge+relay overhead the
//     direct-routing client eliminates; the scraped
//     regserve_forward_total deltas prove WHERE the difference comes
//     from (relays ≈ 0 under the smart client).
//   - Open-loop latency per operation mix: arrivals at a fixed rate with
//     each op's latency measured from its SCHEDULED arrival time, so a
//     stalled server inflates the tail instead of silently slowing the
//     arrival process (the coordinated-omission trap a closed loop
//     cannot avoid).
//
// The cluster is real: regserve OS processes over TCP, spawned the same
// way internal/benchnet's macro leg spawns them.
package benchclient

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"churnreg/client"
)

// Config parameterizes one Run.
type Config struct {
	// Nodes is the regserve cluster size (default 5); Shards and
	// Replication the placement constants (defaults 8 and 3 — with 5
	// nodes most keys are NOT replicated on any single chosen node, so
	// the naive path genuinely relays).
	Nodes       int
	Shards      int
	Replication int
	// Keys is the keyspace the workload spreads over (default 64).
	Keys int
	// Inflight is the closed-loop worker count per comparison leg
	// (default 64); Duration how long each leg runs (default 3s).
	Inflight int
	Duration time.Duration
	// Rate is the open-loop arrival rate in ops/sec (default 1000);
	// OpenOps the number of scheduled arrivals per mix (default 3000).
	Rate    float64
	OpenOps int
	// Mixes are the open-loop operation mixes (default read-heavy 90/10
	// and write-heavy 50/50).
	Mixes []Mix
	// BinPath points at a prebuilt regserve binary; empty means build one.
	BinPath string
	// SkipOpenLoop omits the latency legs (the floor test trims to the
	// throughput comparison).
	SkipOpenLoop bool
}

// Mix names one open-loop operation mix.
type Mix struct {
	Name          string  `json:"name"`
	WriteFraction float64 `json:"write_fraction"`
}

func (c *Config) fillDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 5
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.Keys <= 0 {
		c.Keys = 64
	}
	if c.Inflight <= 0 {
		c.Inflight = 64
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.Rate <= 0 {
		c.Rate = 1000
	}
	if c.OpenOps <= 0 {
		c.OpenOps = 3000
	}
	if len(c.Mixes) == 0 {
		c.Mixes = []Mix{{Name: "read_heavy", WriteFraction: 0.1}, {Name: "write_heavy", WriteFraction: 0.5}}
	}
}

// LegResult is one closed-loop throughput measurement.
type LegResult struct {
	// Mode is "http_naive" (HTTP API on one node, server-side FORWARD
	// relays) or "wire_direct" (the client/ package routing direct).
	Mode      string  `json:"mode"`
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// ForwardRelays is the cluster-wide regserve_forward_total delta over
	// the leg: operations some node had to relay instead of serving
	// where they arrived. The naive leg relays most operations; the
	// smart leg's count stays ≈ 0.
	ForwardRelays uint64 `json:"forward_relays"`
}

// OpenLoopResult is one open-loop latency measurement.
type OpenLoopResult struct {
	Mix           Mix     `json:"mix"`
	RateOpsPerSec float64 `json:"rate_ops_per_sec"`
	Ops           int     `json:"ops"`
	Errors        int     `json:"errors"`
	Seconds       float64 `json:"seconds"`
	// Latencies are measured from each op's SCHEDULED arrival time
	// (open-loop: queueing delay counts, coordinated omission does not
	// hide).
	ReadP50Ms  float64 `json:"read_p50_ms"`
	ReadP95Ms  float64 `json:"read_p95_ms"`
	ReadP99Ms  float64 `json:"read_p99_ms"`
	WriteP50Ms float64 `json:"write_p50_ms"`
	WriteP95Ms float64 `json:"write_p95_ms"`
	WriteP99Ms float64 `json:"write_p99_ms"`
}

// Report is the artifact serialized as BENCH_client.json.
type Report struct {
	Name        string `json:"name"`
	Nodes       int    `json:"nodes"`
	Shards      int    `json:"shards"`
	Replication int    `json:"replication"`
	Keys        int    `json:"keys"`
	Inflight    int    `json:"inflight"`

	HTTPNaive  LegResult `json:"http_naive"`
	WireDirect LegResult `json:"wire_direct"`
	// DirectSpeedup is wire_direct ÷ http_naive ops/sec — the number the
	// ≥1.5x acceptance floor guards.
	DirectSpeedup float64 `json:"direct_speedup"`

	// OpenLoop is one latency measurement per configured mix, through
	// the wire client (omitted by SkipOpenLoop).
	OpenLoop []OpenLoopResult `json:"open_loop,omitempty"`
}

// Run spawns the cluster and produces the full report.
func Run(cfg Config) (Report, error) {
	cfg.fillDefaults()
	rep := Report{Name: "client", Nodes: cfg.Nodes, Shards: cfg.Shards,
		Replication: cfg.Replication, Keys: cfg.Keys, Inflight: cfg.Inflight}

	cl, err := spawnCluster(cfg)
	if err != nil {
		return rep, err
	}
	defer cl.stop()

	// Warm the keyspace so reads in both legs observe real values and no
	// leg pays first-write costs the other skipped.
	c, err := client.Dial(client.Config{Seeds: cl.wireAddrs()})
	if err != nil {
		return rep, fmt.Errorf("dialing warmup client: %w", err)
	}
	defer c.Close()
	for k := 0; k < cfg.Keys; k++ {
		if _, err := c.Write(int64(k), int64(k)); err != nil {
			return rep, fmt.Errorf("warmup write key %d: %w", k, err)
		}
	}

	if rep.HTTPNaive, err = cl.runClosedLoop(cfg, "http_naive", HTTPOpFunc(cl.nodes[0].api)); err != nil {
		return rep, fmt.Errorf("http leg: %w", err)
	}
	if rep.WireDirect, err = cl.runClosedLoop(cfg, "wire_direct", wireOpFunc(c)); err != nil {
		return rep, fmt.Errorf("wire leg: %w", err)
	}
	if rep.HTTPNaive.OpsPerSec > 0 {
		rep.DirectSpeedup = rep.WireDirect.OpsPerSec / rep.HTTPNaive.OpsPerSec
	}

	if !cfg.SkipOpenLoop {
		for _, mix := range cfg.Mixes {
			res, err := RunOpenLoop(OpenLoopConfig{
				Rate: cfg.Rate, Ops: cfg.OpenOps, Keys: cfg.Keys,
				WriteFraction: mix.WriteFraction, Seed: 1, Do: wireOpFunc(c),
			})
			if err != nil {
				return rep, fmt.Errorf("open-loop mix %s: %w", mix.Name, err)
			}
			res.Mix = mix
			rep.OpenLoop = append(rep.OpenLoop, res)
		}
	}
	return rep, nil
}

// OpFunc performs one operation; the engines only see success or failure.
type OpFunc func(key int64, write bool) error

// wireOpFunc drives the smart client.
func wireOpFunc(c *client.Client) OpFunc {
	return func(key int64, write bool) error {
		if write {
			_, err := c.Write(key, key)
			return err
		}
		_, err := c.Read(key)
		return err
	}
}

// HTTPOpFunc drives one node's HTTP API — the naive path: every op
// enters at that node regardless of placement, and the node relays what
// it cannot serve. Exported so cmd/regbench can point its open loop at
// an existing cluster's API without duplicating the HTTP plumbing.
func HTTPOpFunc(api string) OpFunc {
	hc := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 512,
		},
	}
	return func(key int64, write bool) error {
		var req *http.Request
		var err error
		if write {
			req, err = http.NewRequest("POST",
				fmt.Sprintf("http://%s/write?key=%d&val=%d", api, key, key), nil)
		} else {
			req, err = http.NewRequest("GET",
				fmt.Sprintf("http://%s/read?key=%d", api, key), nil)
		}
		if err != nil {
			return err
		}
		resp, err := hc.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("http %d", resp.StatusCode)
		}
		return nil
	}
}

// runClosedLoop hammers do with cfg.Inflight workers for cfg.Duration and
// brackets the run with forward-relay scrapes.
func (cl *cluster) runClosedLoop(cfg Config, mode string, do OpFunc) (LegResult, error) {
	res := LegResult{Mode: mode}
	before, err := cl.forwardRelays()
	if err != nil {
		return res, err
	}
	var (
		ops      atomic.Int64
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	stop := time.Now().Add(cfg.Duration)
	start := time.Now()
	for w := 0; w < cfg.Inflight; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(worker) + 1))
			for i := 0; time.Now().Before(stop); i++ {
				key := int64(rng.Intn(cfg.Keys))
				if err := do(key, (worker+i)%2 == 0); err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("worker %d op %d: %w", worker, i, err))
					return
				}
				ops.Add(1)
			}
		}(w)
	}
	wg.Wait()
	res.Seconds = time.Since(start).Seconds()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return res, err
	}
	res.Ops = int(ops.Load())
	res.OpsPerSec = float64(res.Ops) / res.Seconds
	after, err := cl.forwardRelays()
	if err != nil {
		return res, err
	}
	res.ForwardRelays = after - before
	return res, nil
}

// OpenLoopConfig parameterizes one RunOpenLoop.
type OpenLoopConfig struct {
	// Rate is the arrival rate (ops/sec); Ops the number of scheduled
	// arrivals; Keys the keyspace; WriteFraction the probability an
	// arrival is a write; Seed the workload's deterministic seed.
	Rate          float64
	Ops           int
	Keys          int
	WriteFraction float64
	Seed          int64
	// Do performs one operation.
	Do OpFunc
}

// RunOpenLoop fires cfg.Ops arrivals at the fixed rate and reports
// latency percentiles per op class. The loop is OPEN: arrival i is due at
// start + i/rate whether or not earlier ops finished, each op runs in its
// own goroutine, and its latency is measured from the scheduled arrival —
// a stalled server accumulates queued arrivals whose waiting time lands
// in the tail, exactly what a closed loop hides by pausing the arrivals.
func RunOpenLoop(cfg OpenLoopConfig) (OpenLoopResult, error) {
	if cfg.Rate <= 0 || cfg.Ops <= 0 || cfg.Keys <= 0 || cfg.Do == nil {
		return OpenLoopResult{}, fmt.Errorf("open loop needs rate, ops, keys, and an op func")
	}
	res := OpenLoopResult{RateOpsPerSec: cfg.Rate, Ops: cfg.Ops}
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	rng := rand.New(rand.NewSource(cfg.Seed))

	type op struct {
		key   int64
		write bool
	}
	plan := make([]op, cfg.Ops)
	for i := range plan {
		plan[i] = op{key: int64(rng.Intn(cfg.Keys)), write: rng.Float64() < cfg.WriteFraction}
	}

	var (
		mu       sync.Mutex
		readLat  []time.Duration
		writeLat []time.Duration
		errs     atomic.Int64
		wg       sync.WaitGroup
	)
	start := time.Now()
	for i, o := range plan {
		sched := start.Add(time.Duration(i) * interval)
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(o op, sched time.Time) {
			defer wg.Done()
			if err := cfg.Do(o.key, o.write); err != nil {
				errs.Add(1)
				return
			}
			lat := time.Since(sched)
			mu.Lock()
			if o.write {
				writeLat = append(writeLat, lat)
			} else {
				readLat = append(readLat, lat)
			}
			mu.Unlock()
		}(o, sched)
	}
	wg.Wait()
	res.Seconds = time.Since(start).Seconds()
	res.Errors = int(errs.Load())
	res.ReadP50Ms, res.ReadP95Ms, res.ReadP99Ms = percentilesMs(readLat)
	res.WriteP50Ms, res.WriteP95Ms, res.WriteP99Ms = percentilesMs(writeLat)
	return res, nil
}

// percentilesMs reports p50/p95/p99 of lat in milliseconds (zeros when
// empty).
func percentilesMs(lat []time.Duration) (p50, p95, p99 float64) {
	if len(lat) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(q float64) float64 {
		idx := int(q * float64(len(lat)-1))
		return float64(lat[idx]) / float64(time.Millisecond)
	}
	return at(0.50), at(0.95), at(0.99)
}

// ---- cluster: regserve OS processes ----

// node is one spawned regserve.
type node struct {
	cmd    *exec.Cmd
	listen string
	api    string
}

type cluster struct {
	nodes  []*node
	tmpDir string
}

func (cl *cluster) stop() {
	for _, nd := range cl.nodes {
		nd.cmd.Process.Kill()
		nd.cmd.Wait()
	}
	if cl.tmpDir != "" {
		os.RemoveAll(cl.tmpDir)
	}
}

func (cl *cluster) wireAddrs() []string {
	out := make([]string, len(cl.nodes))
	for i, nd := range cl.nodes {
		out[i] = nd.listen
	}
	return out
}

// forwardRelays sums regserve_forward_total{op="read"|"write"} across
// every node's /metrics.
func (cl *cluster) forwardRelays() (uint64, error) {
	var sum uint64
	for _, nd := range cl.nodes {
		resp, err := http.Get(fmt.Sprintf("http://%s/metrics", nd.api))
		if err != nil {
			return 0, err
		}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "regserve_forward_total{") {
				continue
			}
			fields := strings.Fields(line)
			v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
			if err != nil {
				resp.Body.Close()
				return 0, fmt.Errorf("bad metric line %q: %w", line, err)
			}
			sum += v
		}
		resp.Body.Close()
		if err := sc.Err(); err != nil {
			return 0, err
		}
	}
	return sum, nil
}

// spawnCluster builds regserve (unless cfg.BinPath is set) and boots the
// sharded bootstrap cluster, meshed via the first node's listen address.
func spawnCluster(cfg Config) (*cluster, error) {
	cl := &cluster{}
	bin := cfg.BinPath
	if bin == "" {
		dir, err := os.MkdirTemp("", "benchclient-*")
		if err != nil {
			return nil, err
		}
		cl.tmpDir = dir
		bin = filepath.Join(dir, "regserve")
		build := exec.Command("go", "build", "-o", bin, "churnreg/cmd/regserve")
		if out, err := build.CombinedOutput(); err != nil {
			cl.stop()
			return nil, fmt.Errorf("building regserve: %v\n%s", err, out)
		}
	}
	var seed string
	for i := 1; i <= cfg.Nodes; i++ {
		args := []string{
			"-id", fmt.Sprint(i),
			"-listen", "127.0.0.1:0",
			"-api", "127.0.0.1:0",
			"-protocol", "esync",
			"-n", fmt.Sprint(cfg.Nodes),
			"-delta", "5",
			"-tick", "1ms",
			"-shards", fmt.Sprint(cfg.Shards),
			"-replication", fmt.Sprint(cfg.Replication),
			"-bootstrap",
		}
		if seed != "" {
			args = append(args, "-peers", seed)
		}
		nd, err := startNode(bin, args)
		if err != nil {
			cl.stop()
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
		cl.nodes = append(cl.nodes, nd)
		if seed == "" {
			seed = nd.listen
		}
	}
	for _, nd := range cl.nodes {
		if err := waitHealthy(nd, cfg.Nodes-1, 30*time.Second); err != nil {
			cl.stop()
			return nil, err
		}
	}
	return cl, nil
}

// startNode launches one regserve and parses its REGSERVE announce line
// for the bound addresses.
func startNode(bin string, args []string) (*node, error) {
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	lineCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "REGSERVE ") {
				lineCh <- line
				break
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		for sc.Scan() {
		}
	}()
	select {
	case line := <-lineCh:
		nd := &node{cmd: cmd}
		for _, field := range strings.Fields(line) {
			if v, ok := strings.CutPrefix(field, "listen="); ok {
				nd.listen = v
			}
			if v, ok := strings.CutPrefix(field, "api="); ok {
				nd.api = v
			}
		}
		if nd.listen == "" || nd.api == "" {
			cmd.Process.Kill()
			return nil, fmt.Errorf("bad announce line %q", line)
		}
		return nd, nil
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		return nil, fmt.Errorf("regserve never announced its addresses")
	}
}

// waitHealthy polls /health until the node reports active with wantPeers
// identified peers.
func waitHealthy(nd *node, wantPeers int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("http://%s/health", nd.api))
		if err == nil {
			var h struct {
				Active bool `json:"active"`
				Peers  int  `json:"peers"`
			}
			dec := json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if dec == nil && h.Active && h.Peers >= wantPeers {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("cluster never became healthy")
}
