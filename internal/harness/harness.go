// Package harness defines the repository's experiments: one per figure,
// lemma, or theorem of the paper (DESIGN.md §5 maps them). Each experiment
// builds a simulated dynamic system, drives a workload, checks the
// recorded history against the register specification, and renders a
// metrics.Table — the repository's equivalent of regenerating the paper's
// figures. cmd/experiments prints them; bench_test.go wraps them as
// benchmarks; EXPERIMENTS.md records their output.
package harness

import (
	"fmt"

	"churnreg/internal/churn"
	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/metrics"
	"churnreg/internal/netsim"
	"churnreg/internal/sim"
	"churnreg/internal/spec"
	"churnreg/internal/workload"
)

// Trial is one simulated run.
type Trial struct {
	// N is the constant system size.
	N int
	// Delta is δ (used by the synchronous protocol and as the default
	// network bound).
	Delta sim.Duration
	// Churn is the churn rate c.
	Churn float64
	// ChurnAt makes churn time-varying (requires Churn > 0 to enable the
	// engine; the per-tick rate then comes from this function).
	ChurnAt func(now sim.Time) float64
	// Policy selects churn victims (default random).
	Policy churn.RemovePolicy
	// MinLifetime exempts young processes from churn (0 = none).
	MinLifetime sim.Duration
	// Model overrides the network model (default SynchronousModel{Delta}).
	Model netsim.DelayModel
	// Factory builds protocol nodes.
	Factory core.NodeFactory
	// Duration is the simulated run length.
	Duration sim.Duration
	// Seed makes the run reproducible.
	Seed uint64
	// Workload drives operations.
	Workload workload.Config
	// UnprotectedWriter exposes the designated writer to churn (default:
	// protected, matching the paper's "the invoker does not leave").
	UnprotectedWriter bool
	// Configure, when non-nil, runs on the assembled system before the
	// workload starts (tracing, fault injection).
	Configure func(*dynsys.System)
}

// TrialResult aggregates everything the experiments report on.
type TrialResult struct {
	History    *spec.History
	Violations []spec.Violation
	Inversions []spec.Inversion
	SafeViols  []spec.Violation
	// MonotoneViols are per-process session violations (reads going
	// backwards) — an implementation invariant both protocols provide.
	MonotoneViols []spec.Violation
	Counts        spec.Counts

	JoinCompleted, JoinPending, JoinAbandoned int
	JoinLatency                               metrics.Sample
	ReadLatency                               metrics.Sample
	WriteLatency                              metrics.Sample

	// MinActive / MaxActive are over instants in [warmup, end].
	MinActive, MaxActive int
	// MinActiveWindow is min over τ of |A(τ, τ+3δ)| — Lemma 2's quantity.
	MinActiveWindow int

	Net      netsim.Stats
	Workload workload.Stats
	Sys      *dynsys.System
}

// Run executes the trial to completion and checks the history.
func Run(tr Trial) (*TrialResult, error) {
	if tr.Model == nil {
		tr.Model = netsim.SynchronousModel{Delta: tr.Delta}
	}
	guard := &workload.Guard{}
	var protect func(core.ProcessID) bool
	if !tr.UnprotectedWriter {
		protect = guard.Protects
	}
	initial := core.VersionedValue{Val: 0, SN: 0}
	sys, err := dynsys.New(dynsys.Config{
		N:           tr.N,
		Delta:       tr.Delta,
		Model:       tr.Model,
		Factory:     tr.Factory,
		Seed:        tr.Seed,
		ChurnRate:   tr.Churn,
		ChurnRateAt: tr.ChurnAt,
		ChurnPolicy: tr.Policy,
		MinLifetime: tr.MinLifetime,
		Protect:     protect,
		Initial:     initial,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	if tr.Configure != nil {
		tr.Configure(sys)
	}
	history := spec.NewHistory(initial)
	runner := workload.New(sys, history, guard, tr.Workload)
	runner.Start()
	if err := sys.RunFor(tr.Duration); err != nil {
		return nil, fmt.Errorf("harness: run: %w", err)
	}
	return Collect(sys, history, runner, tr)
}

// Collect assembles a TrialResult from a finished system (exposed so
// scenario scripts that drive systems manually can reuse the reporting).
func Collect(sys *dynsys.System, history *spec.History, runner *workload.Runner, tr Trial) (*TrialResult, error) {
	res := &TrialResult{
		History:       history,
		Violations:    history.CheckRegular(),
		Inversions:    history.FindInversions(),
		SafeViols:     history.CheckSafe(),
		MonotoneViols: history.CheckMonotoneReads(),
		Counts:        history.Counts(),
		Net:           sys.Network().Stats(),
		Sys:           sys,
	}
	if runner != nil {
		res.Workload = runner.Stats()
	}
	if err := history.ValidateWrites(); err != nil {
		return nil, fmt.Errorf("harness: workload broke the write discipline: %w", err)
	}
	res.JoinCompleted, res.JoinPending, res.JoinAbandoned = sys.Tracker().JoinStats()
	for _, d := range sys.Tracker().JoinLatencies() {
		res.JoinLatency.AddInt(int64(d))
	}
	for _, op := range history.Ops() {
		if !op.Completed {
			continue
		}
		switch op.Kind {
		case spec.OpRead:
			res.ReadLatency.AddInt(int64(op.End - op.Start))
		case spec.OpWrite:
			res.WriteLatency.AddInt(int64(op.End - op.Start))
		}
	}
	// Active-set extrema after a warmup of 3δ (the initial joins settle).
	warmup := sim.Time(3 * tr.Delta)
	end := sim.Time(tr.Duration)
	if end > warmup {
		res.MinActive, res.MaxActive = sys.Tracker().WindowScan(warmup, end, 0)
		if end > warmup+sim.Time(3*tr.Delta) {
			res.MinActiveWindow, _ = sys.Tracker().WindowScan(warmup, end-sim.Time(3*tr.Delta), 3*tr.Delta)
		}
	}
	return res, nil
}

// SyncChurnBound returns the synchronous protocol's churn bound 1/(3δ).
func SyncChurnBound(delta sim.Duration) float64 { return 1.0 / (3.0 * float64(delta)) }

// ESyncChurnBound returns the eventually synchronous protocol's churn
// bound 1/(3δn).
func ESyncChurnBound(delta sim.Duration, n int) float64 {
	return 1.0 / (3.0 * float64(delta) * float64(n))
}

// Experiment couples an id/title with a table generator, for cmd/experiments.
type Experiment struct {
	ID    string
	Title string
	Run   func(seed uint64) []*metrics.Table
}

// All returns every experiment in DESIGN.md §5 order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Figure 3: why the join pre-wait is required", Run: one(Fig3WhyWait)},
		{ID: "E2", Title: "Intro figure: new/old inversion (regular ≠ atomic)", Run: one(NewOldInversion)},
		{ID: "E3", Title: "Lemma 2: active-set lower bound under churn", Run: one(Lemma2ActiveSet)},
		{ID: "E4", Title: "Theorem 1: synchronous safety/liveness across the churn bound", Run: one(Theorem1SafetySweep)},
		{ID: "E5", Title: "Theorem 2: impossibility in a fully asynchronous system", Run: one(Theorem2Impossibility)},
		{ID: "E6", Title: "Theorems 3-4: eventually synchronous protocol across GST", Run: one(ESyncGSTSweep)},
		{ID: "E7", Title: "Churn bound scaling: 1/(3δ) vs 1/(3δn)", Run: one(ChurnBoundScaling)},
		{ID: "E8", Title: "Protocol comparison: latency and message cost", Run: one(ProtocolComparison)},
		{ID: "E9", Title: "DL_PREV ablation: the deferred-reply rescue chain", Run: one(DLPrevAblation)},
		{ID: "E10", Title: "Latency scaling with churn and δ", Run: one(LatencyScaling)},
		{ID: "E11", Title: "Extension: atomic upgrade via read write-back", Run: one(AtomicUpgrade)},
		{ID: "E12", Title: "Extension: bursty churn at constant mean (the open c question)", Run: one(BurstyChurn)},
	}
}

func one(f func(seed uint64) *metrics.Table) func(uint64) []*metrics.Table {
	return func(seed uint64) []*metrics.Table { return []*metrics.Table{f(seed)} }
}
