package harness

// Failure-injection suite: break the model's axioms on purpose and verify
// the checkers catch the damage (or the system degrades the way theory
// says it must). A checker that never fires on broken runs proves nothing
// about clean ones.

import (
	"testing"

	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/esyncreg"
	"churnreg/internal/netsim"
	"churnreg/internal/sim"
	"churnreg/internal/syncreg"
)

// TestLostWritesAreCaught breaks the reliable-network axiom: WRITE
// messages silently vanish. The synchronous protocol's writes still
// "complete" (its timer fires regardless), so reads elsewhere go stale —
// and the checker must say so.
func TestLostWritesAreCaught(t *testing.T) {
	const delta = 5
	res, err := Run(Trial{
		N: 10, Delta: delta, Churn: 0,
		Duration: 500, Seed: 3,
		Factory:  syncreg.Factory(syncreg.Options{}),
		Workload: WorkloadMix(4*delta, delta, 2, false),
		Configure: func(sys *dynsys.System) {
			sys.Network().SetDropRule(func(from, to core.ProcessID, m core.Message, _ sim.Time) bool {
				return m.Kind() == core.KindWrite && from != to
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("all WRITEs lost, yet the checker saw a legal regular register")
	}
	if res.Counts.WritesCompleted == 0 {
		t.Fatal("sync writes must still 'complete' (they are timer-driven) — scenario broken")
	}
}

// TestLostRepliesStallQuorumJoins breaks delivery of REPLYs to joiners in
// the quorum protocol without churn: joins must hang (liveness loss), but
// nothing unsafe may be recorded.
func TestLostRepliesStallQuorumJoins(t *testing.T) {
	const delta = 5
	res, err := Run(Trial{
		N: 8, Delta: delta, Churn: 0,
		Duration: 400, Seed: 3,
		Factory: esyncreg.Factory(esyncreg.Options{}),
		Configure: func(sys *dynsys.System) {
			sys.Network().SetDropRule(func(from, to core.ProcessID, m core.Message, _ sim.Time) bool {
				return m.Kind() == core.KindReply && to > 8 // bootstrap is 1..8
			})
			sys.Scheduler().After(10, func() { sys.Spawn() })
			sys.Scheduler().After(50, func() { sys.Spawn() })
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.JoinPending != 2 {
		t.Fatalf("pending joins = %d, want both spawned joiners stuck", res.JoinPending)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("liveness fault caused a safety violation: %v", res.Violations[0])
	}
}

// TestMinorityPartitionStallsButStaysSafe splits an esync system so a
// minority is isolated: reads and writes issued by the minority hang;
// the majority side keeps operating; safety holds everywhere.
func TestMinorityPartitionStallsButStaysSafe(t *testing.T) {
	const delta = 5
	const n = 9 // majority = 5; minority side = {1, 2, 3}
	minority := map[core.ProcessID]bool{1: true, 2: true, 3: true}

	sys, err := dynsys.New(dynsys.Config{
		N:       n,
		Delta:   delta,
		Model:   netsim.SynchronousModel{Delta: delta},
		Factory: esyncreg.Factory(esyncreg.Options{}),
		Seed:    4,
		Initial: core.VersionedValue{Val: 0, SN: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Network().SetDropRule(func(from, to core.ProcessID, m core.Message, _ sim.Time) bool {
		return minority[from] != minority[to]
	})

	// Majority-side write completes.
	maj := sys.Node(5).(*esyncreg.Node)
	majWrote := false
	if err := maj.Write(77, func() { majWrote = true }); err != nil {
		t.Fatal(err)
	}
	// Minority-side read hangs.
	min3 := sys.Node(1).(*esyncreg.Node)
	minRead := false
	if err := min3.Read(func(core.VersionedValue) { minRead = true }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(100 * delta); err != nil {
		t.Fatal(err)
	}
	if !majWrote {
		t.Fatal("majority-side write did not complete")
	}
	if minRead {
		t.Fatal("minority-side read completed without a quorum")
	}

	// Heal the partition: the stalled read completes with a fresh value.
	sys.Network().SetDropRule(nil)
	// Nothing retransmits dropped traffic, so issue a probe that makes the
	// minority reader's quorum achievable again: the read is still
	// pending, and REPLYs flow once any majority node answers a new READ…
	// the pending read's broadcast is gone, though — the paper's reliable
	// network never loses messages, so healing cannot resurrect them.
	// What must still work: NEW operations after the heal.
	min2 := sys.Node(2).(*esyncreg.Node)
	var healed core.VersionedValue
	if err := min2.Read(func(v core.VersionedValue) { healed = v }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(20 * delta); err != nil {
		t.Fatal(err)
	}
	if healed.Val != 77 || healed.SN != 1 {
		t.Fatalf("post-heal read = %v, want ⟨77,#1⟩", healed)
	}
}

// TestDepartedProcessStaysSilent verifies the leave semantics: after a
// process leaves, none of its queued timers fire and no message it
// "sends" reaches anyone — the paper's "does not longer send or receive".
func TestDepartedProcessStaysSilent(t *testing.T) {
	const delta = 5
	sys, err := dynsys.New(dynsys.Config{
		N:       4,
		Delta:   delta,
		Model:   netsim.SynchronousModel{Delta: delta},
		Factory: syncreg.Factory(syncreg.Options{}),
		Seed:    1,
		Initial: core.VersionedValue{Val: 0, SN: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A joiner departs mid-join: its INQUIRY timer must not fire.
	id, _ := sys.Spawn()
	sentBefore := sys.Network().Stats().SentByKind[core.KindInquiry]
	sys.KillProcess(id)
	if err := sys.RunFor(10 * delta); err != nil {
		t.Fatal(err)
	}
	if got := sys.Network().Stats().SentByKind[core.KindInquiry]; got != sentBefore {
		t.Fatalf("departed joiner broadcast %d INQUIRYs", got-sentBefore)
	}
	if sys.Tracker().Record(id).IsActive() {
		t.Fatal("departed joiner became active")
	}
}
