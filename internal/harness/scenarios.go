package harness

// Scenario experiments: deterministic, hand-scheduled executions that
// regenerate the paper's figures (E1, E2) and the mechanism ablations
// (E9); plus the Theorem 2 adversary runs (E5).

import (
	"fmt"

	"churnreg/internal/adversary"
	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/esyncreg"
	"churnreg/internal/metrics"
	"churnreg/internal/netsim"
	"churnreg/internal/sim"
	"churnreg/internal/spec"
	"churnreg/internal/syncreg"
)

// fig3Delta is the δ used by the scripted figure scenarios.
const fig3Delta = 10

// fig3Run executes the Figure 3 scenario with or without the join
// pre-wait and reports the joiner's post-join read and whether it violates
// regularity.
func fig3Run(seed uint64, withWait bool) (readSN core.SeqNum, writeReturned, joined bool, violation bool) {
	// WRITEs crawl (exactly δ); the joiner's INQUIRY to the writer takes
	// the full δ too (and the writer departs first); everything else is
	// fast. IDs: p1 writer, p2-p3 replicas, p4 joiner.
	model := netsim.ScriptedDelayModel{
		Base: netsim.FixedDelayModel{D: 1},
		Overrides: map[netsim.Route]sim.Duration{
			{Kind: core.KindWrite}:                   fig3Delta,
			{From: 4, To: 1, Kind: core.KindInquiry}: fig3Delta,
		},
	}
	sys, err := dynsys.New(dynsys.Config{
		N:       3,
		Delta:   fig3Delta,
		Model:   model,
		Factory: syncreg.Factory(syncreg.Options{SkipInitialWait: !withWait}),
		Seed:    seed,
		Initial: core.VersionedValue{Val: 0, SN: 0},
	})
	if err != nil {
		panic(err)
	}
	history := spec.NewHistory(core.VersionedValue{Val: 0, SN: 0})

	writer := sys.Node(1).(*syncreg.Node)
	wOp := history.BeginWrite(1, sys.Now())
	_ = writer.Write(1, func() {
		history.CompleteWrite(wOp, sys.Now(), writer.Snapshot())
		writeReturned = true
	})
	_ = sys.RunFor(1)
	_, node := sys.Spawn() // p4 enters just after the write began
	joiner := node.(*syncreg.Node)
	// The writer departs the moment its write returns (t = δ).
	_ = sys.RunUntil(fig3Delta)
	sys.KillProcess(1)
	_ = sys.RunFor(4 * fig3Delta)
	joined = joiner.Active()
	if joined {
		rOp := history.BeginRead(4, sys.Now())
		v, _ := joiner.ReadLocal()
		history.CompleteRead(rOp, sys.Now(), v)
		readSN = v.SN
	}
	return readSN, writeReturned, joined, len(history.CheckRegular()) > 0
}

// Fig3WhyWait regenerates Figure 3: the same timed scenario with and
// without the wait(δ) at join line 02.
func Fig3WhyWait(seed uint64) *metrics.Table {
	t := metrics.NewTable("E1 — Figure 3: join pre-wait",
		"variant", "write(1) returned", "join completed", "post-join read", "regular?")
	for _, withWait := range []bool{false, true} {
		sn, wrote, joined, violated := fig3Run(seed, withWait)
		variant := "no wait (Fig 3a)"
		if withWait {
			variant = "wait δ (Fig 3b)"
		}
		verdict := "OK"
		if violated {
			verdict = "VIOLATION (stale)"
		}
		t.AddRow(variant, fmt.Sprintf("%v", wrote), fmt.Sprintf("%v", joined),
			fmt.Sprintf("sn=%d", sn), verdict)
	}
	t.AddNote("paper: without the wait the joiner returns the old value after write(1) completed")
	return t
}

// NewOldInversion regenerates the introduction's figure: two sequential
// reads inside a write's window observe new-then-old — legal for a regular
// register, impossible for an atomic one.
func NewOldInversion(seed uint64) *metrics.Table {
	// p1 writer; p2 near (WRITE arrives in 1 tick); p3 far (δ).
	const delta = 10
	model := netsim.ScriptedDelayModel{
		Base: netsim.FixedDelayModel{D: 1},
		Overrides: map[netsim.Route]sim.Duration{
			{From: 1, To: 3, Kind: core.KindWrite}: delta,
		},
	}
	sys, err := dynsys.New(dynsys.Config{
		N:       3,
		Delta:   delta,
		Model:   model,
		Factory: syncreg.Factory(syncreg.Options{}),
		Seed:    seed,
		Initial: core.VersionedValue{Val: 0, SN: 0},
	})
	if err != nil {
		panic(err)
	}
	history := spec.NewHistory(core.VersionedValue{Val: 0, SN: 0})
	writer := sys.Node(1).(*syncreg.Node)
	wOp := history.BeginWrite(1, sys.Now())
	_ = writer.Write(1, func() { history.CompleteWrite(wOp, sys.Now(), writer.Snapshot()) })

	read := func(id core.ProcessID) core.VersionedValue {
		n := sys.Node(id).(*syncreg.Node)
		op := history.BeginRead(id, sys.Now())
		v, _ := n.ReadLocal()
		history.CompleteRead(op, sys.Now(), v)
		return v
	}
	_ = sys.RunFor(2)
	r1 := read(2) // near reader: already has the new value
	_ = sys.RunFor(3)
	r2 := read(3) // far reader: still holds the old value
	_ = sys.RunFor(2 * delta)

	t := metrics.NewTable("E2 — new/old inversion (regular ≠ atomic)",
		"operation", "interval", "returned", "comment")
	ops := history.Ops()
	t.AddRow("write(1) by p1", fmt.Sprintf("[%d,%d]", ops[0].Start, ops[0].End), "—", "broadcast reaches p2 fast, p3 at δ")
	t.AddRow("read by p2 (r1)", fmt.Sprintf("[%d,%d]", ops[1].Start, ops[1].End), fmt.Sprintf("sn=%d", r1.SN), "sees the NEW value")
	t.AddRow("read by p3 (r2)", fmt.Sprintf("[%d,%d]", ops[2].Start, ops[2].End), fmt.Sprintf("sn=%d", r2.SN), "sees the OLD value, after r1 finished")
	regOK := len(history.CheckRegular()) == 0
	invs := history.FindInversions()
	t.AddRow("verdict", "", "",
		fmt.Sprintf("regular: %v, inversions (atomicity failures): %d", regOK, len(invs)))
	t.AddNote("the execution is a legal regular-register behaviour yet not atomic — the paper's definitional figure")
	return t
}

// Theorem2Impossibility runs the two faces of Theorem 2 under a fully
// asynchronous adversary: safety collapse for the δ-trusting synchronous
// protocol, liveness collapse for the quorum protocol once delays exceed
// population turnover.
func Theorem2Impossibility(seed uint64) *metrics.Table {
	const (
		delta = 5
		n     = 20
		c     = 0.02
		dur   = 1500
	)
	t := metrics.NewTable("E5 — Theorem 2: fully asynchronous dynamic system",
		"protocol under adversary", "joins done", "reads done", "writes done", "regular violations", "min active")

	// Face 1: the synchronous protocol with its δ assumption broken
	// (WRITEs stretched 10×δ) — writes "return" before anyone hears them.
	res1, err := Run(Trial{
		N: n, Delta: delta, Churn: c, Duration: dur, Seed: seed,
		Model:    adversary.BrokenDeltaDelays(delta, 10),
		Factory:  syncreg.Factory(syncreg.Options{}),
		Workload: WorkloadMix(4*delta, delta, 2, true),
	})
	if err != nil {
		panic(err)
	}
	t.AddRow("syncreg, WRITEs delayed 10δ (safety face)",
		metrics.D(int64(res1.JoinCompleted)),
		metrics.D(int64(res1.Counts.ReadsCompleted)),
		metrics.D(int64(res1.Counts.WritesCompleted)),
		metrics.D(int64(len(res1.Violations))),
		metrics.D(int64(res1.MinActive)))

	// Face 2: the quorum protocol with every delay beyond full population
	// turnover — nobody ever assembles a quorum again.
	res2, err := Run(Trial{
		N: n, Delta: delta, Churn: c, Duration: dur, Seed: seed,
		Model:    adversary.TurnoverDelays(c, 2),
		Factory:  esyncreg.Factory(esyncreg.Options{}),
		Workload: WorkloadMix(4*delta, delta, 2, false),
	})
	if err != nil {
		panic(err)
	}
	t.AddRow("esyncreg, delays > 1/c turnover (liveness face)",
		metrics.D(int64(res2.JoinCompleted-n)), // joins beyond bootstrap
		metrics.D(int64(res2.Counts.ReadsCompleted)),
		metrics.D(int64(res2.Counts.WritesCompleted)),
		metrics.D(int64(len(res2.Violations))),
		metrics.D(int64(res2.MinActive)))
	t.AddNote("paper: no protocol implements a regular register in a fully asynchronous dynamic system")
	t.AddNote("safety face: stale reads appear; liveness face: no join/read/write completes and the active set dies out")
	return t
}

// DLPrevAblation regenerates the Lemma 5 rescue chain as a table: a joiner
// one reply short of a quorum is rescued by a later joiner if and only if
// DL_PREV is enabled.
func DLPrevAblation(seed uint64) *metrics.Table {
	const delta = 5
	run := func(opts esyncreg.Options) (rescued bool, rescueTime sim.Time) {
		sys, err := dynsys.New(dynsys.Config{
			N:       5,
			Delta:   delta,
			Model:   netsim.SynchronousModel{Delta: delta},
			Factory: esyncreg.Factory(opts),
			Seed:    seed,
			Initial: core.VersionedValue{Val: 0, SN: 0},
		})
		if err != nil {
			panic(err)
		}
		// p6's INQUIRY reaches only p4, p5: p1-p3 "departed first".
		sys.Network().SetDropRule(func(from, to core.ProcessID, m core.Message, _ sim.Time) bool {
			return from == 6 && m.Kind() == core.KindInquiry && to >= 1 && to <= 3
		})
		_, starved := sys.Spawn()
		_ = sys.RunFor(10 * delta)
		sys.Network().SetDropRule(nil)
		sys.Spawn() // the rescuer
		var at sim.Time
		starved.(*esyncreg.Node).OnJoined(func() { at = sys.Now() })
		_ = sys.RunFor(20 * delta)
		return starved.Active(), at
	}
	t := metrics.NewTable("E9 — DL_PREV ablation (Lemma 5 rescue chain)",
		"variant", "starved joiner rescued", "rescue time")
	on, atOn := run(esyncreg.Options{})
	off, _ := run(esyncreg.Options{DisableDLPrev: true})
	t.AddRow("DL_PREV enabled", fmt.Sprintf("%v", on), fmt.Sprintf("t=%d", atOn))
	t.AddRow("DL_PREV disabled", fmt.Sprintf("%v", off), "—")
	t.AddNote("scenario: a joiner with 2/3 of its reply quorum lost to departures; a later joiner completes and must answer it")
	return t
}
