package harness

// Multi-seed sweeps: the theorems quantify over all executions; these
// tests quantify over a batch of seeded runs per configuration, which is
// as close as testing gets. Every run below the relevant churn bound must
// be violation-free; atomic runs additionally inversion-free.

import (
	"testing"

	"churnreg/internal/atomicreg"
	"churnreg/internal/churn"
	"churnreg/internal/esyncreg"
	"churnreg/internal/syncreg"
)

const sweepSeeds = 12

func TestSyncRegularAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	const delta = 5
	for seed := uint64(1); seed <= sweepSeeds; seed++ {
		res, err := Run(Trial{
			N: 25, Delta: delta, Churn: SyncChurnBound(delta) * 0.7,
			Policy:   churn.RemoveOldestActive,
			Duration: 1500, Seed: seed,
			Factory:  syncreg.Factory(syncreg.Options{}),
			Workload: WorkloadMix(3*delta, delta, 3, true),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: %d violations below the bound; first: %v",
				seed, len(res.Violations), res.Violations[0])
		}
		if len(res.MonotoneViols) != 0 {
			t.Fatalf("seed %d: session guarantee broke: %v", seed, res.MonotoneViols[0])
		}
		if res.Counts.ReadsCompleted < 100 {
			t.Fatalf("seed %d: only %d reads; run too quiet to mean anything",
				seed, res.Counts.ReadsCompleted)
		}
	}
}

func TestESyncRegularAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	const delta = 5
	const n = 12
	for seed := uint64(1); seed <= sweepSeeds; seed++ {
		res, err := Run(Trial{
			N: n, Delta: delta, Churn: ESyncChurnBound(delta, n),
			MinLifetime: 3 * delta,
			Duration:    2000, Seed: seed,
			Factory:  esyncreg.Factory(esyncreg.Options{}),
			Workload: WorkloadMix(10*delta, 3*delta, 2, false),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: esync violated regularity below its bound: %v",
				seed, res.Violations[0])
		}
		if res.MinActive <= n/2 {
			t.Fatalf("seed %d: majority-active assumption broke (min %d of %d)",
				seed, res.MinActive, n)
		}
	}
}

func TestAtomicNoInversionsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	const delta = 5
	const n = 10
	for seed := uint64(1); seed <= sweepSeeds; seed++ {
		res, err := Run(Trial{
			N: n, Delta: delta, Churn: ESyncChurnBound(delta, n),
			MinLifetime: 3 * delta,
			Duration:    1500, Seed: seed,
			Factory:  atomicreg.Factory(esyncreg.Options{}),
			Workload: WorkloadMix(8*delta, 3*delta, 2, false),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: atomic register violated regularity: %v", seed, res.Violations[0])
		}
		if len(res.Inversions) != 0 {
			t.Fatalf("seed %d: atomic register inverted: %v", seed, res.Inversions[0])
		}
		// Guard against vacuity: a workload/protocol interface mismatch
		// that issues zero ops would pass the checks above trivially.
		if c := res.History.Counts(); c.WritesCompleted == 0 || c.ReadsCompleted == 0 {
			t.Fatalf("seed %d: no ops driven (writes=%d reads=%d); sweep is vacuous",
				seed, c.WritesCompleted, c.ReadsCompleted)
		}
	}
}

func TestVerdictsStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	// The E1/E2/E9 scenario verdicts are scripted and must not depend on
	// the seed at all.
	for seed := uint64(1); seed <= 5; seed++ {
		tb := Fig3WhyWait(seed)
		if tb.Rows[0][4] == "OK" || tb.Rows[1][4] != "OK" {
			t.Fatalf("seed %d flipped the Figure 3 verdicts: %v", seed, tb.Rows)
		}
		inv := NewOldInversion(seed)
		verdict := inv.Rows[len(inv.Rows)-1][3]
		if verdict != "regular: true, inversions (atomicity failures): 1" {
			t.Fatalf("seed %d flipped the inversion verdict: %q", seed, verdict)
		}
		dl := DLPrevAblation(seed)
		if dl.Rows[0][1] != "true" || dl.Rows[1][1] != "false" {
			t.Fatalf("seed %d flipped the DL_PREV verdicts: %v", seed, dl.Rows)
		}
	}
}
