package harness

import (
	"fmt"
	"strings"
	"testing"

	"churnreg/internal/syncreg"
)

const testSeed = 42

func TestRunTrialBasics(t *testing.T) {
	res, err := Run(Trial{
		N: 10, Delta: 5, Churn: 0.01, Duration: 500, Seed: testSeed,
		Factory:  syncreg.Factory(syncreg.Options{}),
		Workload: WorkloadMix(20, 5, 2, true),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.WritesCompleted == 0 || res.Counts.ReadsCompleted == 0 {
		t.Fatalf("no ops completed: %+v", res.Counts)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations below the bound: %v", res.Violations[0])
	}
	if res.JoinCompleted == 0 {
		t.Fatal("no join completed")
	}
	if res.MinActive <= 0 {
		t.Fatalf("min active = %d", res.MinActive)
	}
}

func TestChurnBounds(t *testing.T) {
	if got := SyncChurnBound(5); got != 1.0/15 {
		t.Fatalf("SyncChurnBound(5) = %v", got)
	}
	if got := ESyncChurnBound(5, 10); got != 1.0/150 {
		t.Fatalf("ESyncChurnBound(5,10) = %v", got)
	}
}

func TestFig3WhyWait(t *testing.T) {
	tb := Fig3WhyWait(testSeed)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if !strings.Contains(tb.Rows[0][4], "VIOLATION") {
		t.Fatalf("Fig 3a row did not violate: %v", tb.Rows[0])
	}
	if tb.Rows[1][4] != "OK" {
		t.Fatalf("Fig 3b row not OK: %v", tb.Rows[1])
	}
}

func TestNewOldInversion(t *testing.T) {
	tb := NewOldInversion(testSeed)
	verdict := tb.Rows[len(tb.Rows)-1][3]
	if !strings.Contains(verdict, "regular: true") {
		t.Fatalf("execution not regular: %q", verdict)
	}
	if !strings.Contains(verdict, "inversions (atomicity failures): 1") {
		t.Fatalf("inversion not observed: %q", verdict)
	}
}

func TestLemma2ActiveSet(t *testing.T) {
	if testing.Short() {
		t.Skip("active-set sweep is slow")
	}
	tb := Lemma2ActiveSet(testSeed)
	for _, row := range tb.Rows {
		if row[4] != "true" {
			t.Fatalf("Lemma 2 paper bound violated at the initial window: row %v", row)
		}
		if row[7] != "true" {
			t.Fatalf("steady-state bound n(1−6δc) violated: row %v", row)
		}
	}
}

func TestTheorem1SafetySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("churn-rate safety sweep is slow")
	}
	tb := Theorem1SafetySweep(testSeed)
	// Below the bound: zero violations.
	for _, row := range tb.Rows[:3] {
		if row[5] != "0" {
			t.Fatalf("violations below the churn bound: row %v", row)
		}
	}
	// Far above the bound the guarantee must visibly degrade: stale reads
	// or ⊥-holding actives appear.
	degraded := false
	for _, row := range tb.Rows[3:] {
		if row[5] != "0" || row[3] != "0" {
			degraded = true
		}
	}
	if !degraded {
		t.Fatal("runs far above the churn bound showed no degradation; experiment not discriminating")
	}
}

func TestTheorem2Impossibility(t *testing.T) {
	tb := Theorem2Impossibility(testSeed)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Safety face: violations > 0.
	if tb.Rows[0][4] == "0" {
		t.Fatalf("async adversary produced no safety violations: %v", tb.Rows[0])
	}
	// Liveness face: essentially no join completes and the active set
	// collapses (the protected writer may survive as the last active).
	if tb.Rows[1][1] != "0" {
		t.Fatalf("joins completed under turnover delays: %v", tb.Rows[1])
	}
	if tb.Rows[1][5] != "0" && tb.Rows[1][5] != "1" {
		t.Fatalf("active set did not collapse: %v", tb.Rows[1])
	}
}

func TestESyncGSTSweep(t *testing.T) {
	tb := ESyncGSTSweep(testSeed)
	for _, row := range tb.Rows {
		if row[6] != "0" {
			t.Fatalf("esync violated regularity (GST=%s): %v", row[0], row)
		}
		if row[3] == "0" || row[4] == "0" {
			t.Fatalf("no ops completed (GST=%s): %v", row[0], row)
		}
	}
}

func TestChurnBoundScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("bound scaling sweep is slow")
	}
	tb := ChurnBoundScaling(testSeed)
	if len(tb.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(tb.Rows))
	}
	// sync rows (the last two) must be healthy: no stuck joins.
	for _, row := range tb.Rows[9:] {
		if row[0] != "sync" {
			t.Fatalf("row layout changed: %v", row)
		}
		if row[7] != "0" {
			t.Fatalf("sync protocol violated regularity: %v", row)
		}
	}
}

func TestProtocolComparison(t *testing.T) {
	tb := ProtocolComparison(testSeed)
	// sync reads: zero latency, zero messages.
	for _, row := range tb.Rows[:3] {
		if row[2] != "0.0" {
			t.Fatalf("sync read latency nonzero: %v", row)
		}
		if row[4] != "0.0" {
			t.Fatalf("sync read sent messages: %v", row)
		}
	}
	// esync and ABD reads cost at least n messages each.
	for _, row := range tb.Rows[3:] {
		if row[4] == "0.0" {
			t.Fatalf("quorum read free?: %v", row)
		}
	}
}

func TestDLPrevAblationTable(t *testing.T) {
	tb := DLPrevAblation(testSeed)
	if tb.Rows[0][1] != "true" {
		t.Fatalf("DL_PREV on: joiner not rescued: %v", tb.Rows[0])
	}
	if tb.Rows[1][1] != "false" {
		t.Fatalf("DL_PREV off: joiner rescued anyway: %v", tb.Rows[1])
	}
}

func TestLatencyScaling(t *testing.T) {
	tb := LatencyScaling(testSeed)
	// sync join p50 ≈ 3δ for each δ row.
	for i, delta := range []float64{2, 5, 10, 20} {
		row := tb.Rows[i]
		var p50 float64
		if _, err := sscan(row[3], &p50); err != nil {
			t.Fatalf("bad p50 cell %q", row[3])
		}
		if p50 < 3*delta-1 || p50 > 3*delta+1 {
			t.Fatalf("sync join p50 = %v for δ=%v, want ≈ %v", p50, delta, 3*delta)
		}
	}
}

func TestAllExperimentsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite is slow")
	}
	for _, e := range All() {
		tables := e.Run(testSeed)
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", e.ID)
		}
		for _, tb := range tables {
			out := tb.Render()
			if len(out) == 0 || !strings.Contains(out, "==") {
				t.Fatalf("%s rendered empty table", e.ID)
			}
			t.Logf("\n%s", out)
		}
	}
}

// sscan parses a single float table cell.
func sscan(s string, out *float64) (int, error) {
	return fmt.Sscanf(s, "%f", out)
}
