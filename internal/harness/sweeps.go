package harness

// Sweep experiments: parameterized trials across churn rates, system
// sizes, GST values, and δ (E3, E4, E6, E7, E8, E10).

import (
	"fmt"

	"churnreg/internal/abd"
	"churnreg/internal/churn"
	"churnreg/internal/core"
	"churnreg/internal/esyncreg"
	"churnreg/internal/metrics"
	"churnreg/internal/netsim"
	"churnreg/internal/sim"
	"churnreg/internal/syncreg"
	"churnreg/internal/workload"
)

// WorkloadMix builds the standard workload: one protected writer writing
// every writeEvery, readFanout random readers every readEvery, optional
// post-join read probes.
func WorkloadMix(writeEvery, readEvery sim.Duration, readFanout int, joinProbe bool) workload.Config {
	return workload.Config{
		WritePeriod:   writeEvery,
		ReadPeriod:    readEvery,
		ReadFanout:    readFanout,
		JoinReadProbe: joinProbe,
		FirstValue:    1,
	}
}

// Lemma2ActiveSet sweeps the churn rate and compares the measured minimum
// of |A(τ, τ+3δ)| against two bounds: the paper's n(1 − 3δc), which its
// proof establishes from the initial configuration (where all n present
// processes are active), and the steady-state bound n(1 − 6δc), which
// additionally accounts for the up-to-3δcn processes that are mid-join at
// any window's start. Reproduction finding: the paper's "∀τ"
// generalization implicitly assumes |A(τ)| = n; with joins taking 3δ the
// steady-state constant is 6δ, not 3δ.
func Lemma2ActiveSet(seed uint64) *metrics.Table {
	const (
		n     = 60
		delta = 5
		dur   = 1500
	)
	bound := SyncChurnBound(delta) // 1/(3δ)
	t := metrics.NewTable("E3 — Lemma 2: min |A(τ,τ+3δ)| under churn",
		"c", "c/(1/3δ)", "initial window", "paper bound n(1−3δc)", "holds@τ=0",
		"steady min", "steady bound n(1−6δc)", "holds steady")
	for _, frac := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		c := bound * frac
		res, err := Run(Trial{
			N: n, Delta: delta, Churn: c, Duration: dur, Seed: seed,
			Policy:  churn.RemoveOldestActive, // the lemma's worst case
			Factory: syncreg.Factory(syncreg.Options{}),
		})
		if err != nil {
			panic(err)
		}
		// The paper's bound, checked where its proof constructs it: the
		// window starting at the initial configuration.
		initialWindow := res.Sys.Tracker().ActiveWindow(0, 3*delta)
		paperBound := float64(n) * (1 - 3*float64(delta)*c)
		holdsInitial := float64(initialWindow) >= paperBound-1e-9
		// Steady state: min over every window in the run.
		steadyBound := float64(n) * (1 - 6*float64(delta)*c)
		holdsSteady := float64(res.MinActiveWindow) >= steadyBound-1.0 // ±1: fractional churn accumulator
		t.AddRow(metrics.F(c, 4), metrics.F(frac, 2),
			metrics.D(int64(initialWindow)), metrics.F(paperBound, 1), fmt.Sprintf("%v", holdsInitial),
			metrics.D(int64(res.MinActiveWindow)), metrics.F(steadyBound, 1), fmt.Sprintf("%v", holdsSteady))
	}
	t.AddNote("n=%d, δ=%d, oldest-active removal (worst case of the lemma's proof)", n, delta)
	t.AddNote("reproduction finding: in steady state up to 3δcn present processes are mid-join, so the achievable bound is n(1−6δc)")
	return t
}

// Theorem1SafetySweep runs the synchronous protocol across churn rates on
// both sides of c = 1/(3δ) and reports safety and liveness.
func Theorem1SafetySweep(seed uint64) *metrics.Table {
	const (
		n     = 30
		delta = 5
		dur   = 2000
	)
	bound := SyncChurnBound(delta)
	t := metrics.NewTable("E4 — Theorem 1: synchronous protocol across the churn bound",
		"c/bound", "c", "joins done", "⊥ joins", "reads done", "regular violations", "inversions")
	for _, frac := range []float64{0.3, 0.6, 0.9, 1.5, 3.0, 6.0} {
		c := bound * frac
		res, err := Run(Trial{
			N: n, Delta: delta, Churn: c, Duration: dur, Seed: seed,
			Policy:   churn.RemoveOldestActive,
			Factory:  syncreg.Factory(syncreg.Options{}),
			Workload: WorkloadMix(4*delta, delta, 2, true),
		})
		if err != nil {
			panic(err)
		}
		// ⊥ joins: processes that activated while still holding ⊥.
		bottoms := 0
		for _, id := range res.Sys.ActiveIDs() {
			if res.Sys.Node(id).Snapshot().IsBottom() {
				bottoms++
			}
		}
		t.AddRow(metrics.F(frac, 2), metrics.F(c, 4),
			metrics.D(int64(res.JoinCompleted)),
			metrics.D(int64(bottoms)),
			metrics.D(int64(res.Counts.ReadsCompleted)),
			metrics.D(int64(len(res.Violations))),
			metrics.D(int64(len(res.Inversions))))
	}
	t.AddNote("n=%d, δ=%d, bound 1/(3δ)=%.4f; theorem: zero violations for c below the bound", n, delta, bound)
	t.AddNote("inversions are legal for a regular register (they mark where atomicity would fail)")
	return t
}

// ESyncGSTSweep runs the eventually synchronous protocol with different
// stabilization times: operations invoked during the asynchronous period
// must terminate after GST, and safety must hold throughout.
func ESyncGSTSweep(seed uint64) *metrics.Table {
	const (
		n     = 10
		delta = 5
		dur   = 4000
	)
	c := ESyncChurnBound(delta, n) / 4 // well inside the bound
	t := metrics.NewTable("E6 — Theorems 3-4: eventually synchronous protocol across GST",
		"GST", "joins done", "joins stuck", "reads done", "writes done", "max op latency", "regular violations")
	for _, gst := range []sim.Time{0, 500, 1500} {
		res, err := Run(Trial{
			N: n, Delta: delta, Churn: c, Duration: dur, Seed: seed,
			MinLifetime: 3 * delta,
			Model: netsim.EventuallySynchronousModel{
				GST: gst, Delta: delta, PreGSTMax: 60,
			},
			Factory:  esyncreg.Factory(esyncreg.Options{}),
			Workload: WorkloadMix(20*delta, 4*delta, 1, false),
		})
		if err != nil {
			panic(err)
		}
		maxLat := res.ReadLatency.Max()
		if res.WriteLatency.Max() > maxLat {
			maxLat = res.WriteLatency.Max()
		}
		t.AddRow(fmt.Sprintf("%d", gst),
			metrics.D(int64(res.JoinCompleted)),
			metrics.D(int64(res.JoinPending)),
			metrics.D(int64(res.Counts.ReadsCompleted)),
			metrics.D(int64(res.Counts.WritesCompleted)),
			metrics.F(maxLat, 0),
			metrics.D(int64(len(res.Violations))))
	}
	t.AddNote("n=%d, δ=%d, c=%.5f (¼ of 1/(3δn)), pre-GST delays up to 12δ; safety must hold at every GST", n, delta, c)
	return t
}

// ChurnBoundScaling contrasts how much churn each protocol sustains as n
// grows: the synchronous bound 1/(3δ) is size-independent; the eventually
// synchronous protocol degrades once c exceeds ~1/(3δn).
func ChurnBoundScaling(seed uint64) *metrics.Table {
	const (
		delta = 5
		dur   = 2500
	)
	t := metrics.NewTable("E7 — churn tolerance: sync (c vs 1/3δ) vs esync (c vs 1/3δn)",
		"protocol", "n", "c", "c·3δn", "joins done", "joins stuck", "min active", "regular violations")
	for _, n := range []int{10, 20, 40} {
		for _, mult := range []float64{1, 8, 32} {
			c := ESyncChurnBound(delta, n) * mult
			res, err := Run(Trial{
				N: n, Delta: delta, Churn: c, Duration: dur, Seed: seed,
				MinLifetime: 3 * delta,
				Factory:     esyncreg.Factory(esyncreg.Options{}),
				Workload:    WorkloadMix(20*delta, 4*delta, 1, false),
			})
			if err != nil {
				panic(err)
			}
			t.AddRow("esync", metrics.D(int64(n)), metrics.F(c, 5), metrics.F(mult, 0),
				metrics.D(int64(res.JoinCompleted)),
				metrics.D(int64(res.JoinPending)),
				metrics.D(int64(res.MinActive)),
				metrics.D(int64(len(res.Violations))))
		}
	}
	// The synchronous protocol at the same absolute churn rates stays
	// healthy regardless of n (its bound does not involve n).
	for _, n := range []int{10, 40} {
		c := SyncChurnBound(delta) * 0.5
		res, err := Run(Trial{
			N: n, Delta: delta, Churn: c, Duration: dur, Seed: seed,
			Factory:  syncreg.Factory(syncreg.Options{}),
			Workload: WorkloadMix(20*delta, 4*delta, 1, false),
		})
		if err != nil {
			panic(err)
		}
		t.AddRow("sync", metrics.D(int64(n)), metrics.F(c, 5),
			metrics.F(c*3*float64(delta)*float64(n), 0),
			metrics.D(int64(res.JoinCompleted)),
			metrics.D(int64(res.JoinPending)),
			metrics.D(int64(res.MinActive)),
			metrics.D(int64(len(res.Violations))))
	}
	t.AddNote("δ=%d; esync rows sweep multiples of 1/(3δn); sync rows run at 0.5/(3δ) — far above esync tolerance for large n", delta)
	return t
}

// ProtocolComparison measures operation latency and message cost for the
// three implementations in a quiet (no-churn) system — the paper's design
// point "fast reads" made quantitative.
func ProtocolComparison(seed uint64) *metrics.Table {
	const (
		delta = 5
		dur   = 3000
	)
	type proto struct {
		name    string
		factory core.NodeFactory
	}
	protos := []proto{
		{"sync (§3)", syncreg.Factory(syncreg.Options{})},
		{"esync (§5)", esyncreg.Factory(esyncreg.Options{})},
		{"ABD static [3]", abd.Factory()},
	}
	t := metrics.NewTable("E8 — protocol comparison (no churn)",
		"protocol", "n", "read latency", "write latency", "msgs/read", "msgs/write")
	for _, p := range protos {
		for _, n := range []int{10, 30, 100} {
			// Reads-only trial for clean read attribution.
			rRes, err := Run(Trial{
				N: n, Delta: delta, Duration: dur, Seed: seed,
				Factory:  p.factory,
				Workload: WorkloadMix(0, 4*delta, 1, false),
			})
			if err != nil {
				panic(err)
			}
			// Writes-only trial.
			wRes, err := Run(Trial{
				N: n, Delta: delta, Duration: dur, Seed: seed,
				Factory:  p.factory,
				Workload: WorkloadMix(8*delta, 0, 1, false),
			})
			if err != nil {
				panic(err)
			}
			msgsPerRead := safeDiv(float64(rRes.Net.Sent), float64(rRes.Counts.ReadsCompleted))
			msgsPerWrite := safeDiv(float64(wRes.Net.Sent), float64(wRes.Counts.WritesCompleted))
			t.AddRow(p.name, metrics.D(int64(n)),
				metrics.F(rRes.ReadLatency.Mean(), 1),
				metrics.F(wRes.WriteLatency.Mean(), 1),
				metrics.F(msgsPerRead, 1),
				metrics.F(msgsPerWrite, 1))
		}
	}
	t.AddNote("δ=%d; sync reads are local (0 latency, 0 messages) — the protocol's design point", delta)
	t.AddNote("esync writes pay an embedded read (Figure 6 line 01), hence ~2× ABD's write cost")
	return t
}

// LatencyScaling reports join and write latency as churn and δ scale.
func LatencyScaling(seed uint64) *metrics.Table {
	const dur = 2500
	t := metrics.NewTable("E10 — latency scaling",
		"protocol", "δ", "c", "join p50", "join p99", "write mean", "read mean")
	for _, delta := range []sim.Duration{2, 5, 10, 20} {
		c := SyncChurnBound(delta) * 0.5
		res, err := Run(Trial{
			N: 20, Delta: delta, Churn: c, Duration: dur, Seed: seed,
			Factory:  syncreg.Factory(syncreg.Options{}),
			Workload: WorkloadMix(6*delta, 2*delta, 2, false),
		})
		if err != nil {
			panic(err)
		}
		t.AddRow("sync", metrics.D(int64(delta)), metrics.F(c, 4),
			metrics.F(res.JoinLatency.Quantile(0.5), 0),
			metrics.F(res.JoinLatency.Quantile(0.99), 0),
			metrics.F(res.WriteLatency.Mean(), 1),
			metrics.F(res.ReadLatency.Mean(), 1))
	}
	for _, delta := range []sim.Duration{2, 5, 10, 20} {
		c := ESyncChurnBound(delta, 20) / 2
		res, err := Run(Trial{
			N: 20, Delta: delta, Churn: c, Duration: dur, Seed: seed,
			MinLifetime: 3 * delta,
			Factory:     esyncreg.Factory(esyncreg.Options{}),
			Workload:    WorkloadMix(6*delta, 2*delta, 2, false),
		})
		if err != nil {
			panic(err)
		}
		t.AddRow("esync", metrics.D(int64(delta)), metrics.F(c, 5),
			metrics.F(res.JoinLatency.Quantile(0.5), 0),
			metrics.F(res.JoinLatency.Quantile(0.99), 0),
			metrics.F(res.WriteLatency.Mean(), 1),
			metrics.F(res.ReadLatency.Mean(), 1))
	}
	t.AddNote("n=20; sync joins are timer-driven (≈3δ regardless of churn); esync joins are quorum-driven (≈2 delays)")
	t.AddNote("sync write = exactly δ; esync write = embedded read + WRITE round (≈4 delays)")
	return t
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
