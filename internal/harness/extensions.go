package harness

// Extension experiments (E11, E12): the paper's §7 open directions made
// executable — upgrading the regular register to an atomic one, and
// probing the "greatest sustainable churn" question with bursty churn.

import (
	"fmt"

	"churnreg/internal/atomicreg"
	"churnreg/internal/churn"
	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/esyncreg"
	"churnreg/internal/metrics"
	"churnreg/internal/netsim"
	"churnreg/internal/sim"
	"churnreg/internal/spec"
	"churnreg/internal/syncreg"
)

// AtomicUpgrade contrasts the regular quorum register with its write-back
// upgrade on a schedule engineered to produce a new/old inversion, and
// reports the upgrade's message cost.
func AtomicUpgrade(seed uint64) *metrics.Table {
	t := metrics.NewTable("E11 — atomic upgrade: read write-back closes the inversion gap",
		"register", "read A", "read B (after A)", "regular?", "inversions", "msgs total")

	type outcome struct {
		a, b       core.SeqNum
		regularOK  bool
		inversions int
		msgs       uint64
	}
	run := func(factory core.NodeFactory) outcome {
		history, sys := scriptedInversionSchedule(seed, factory)
		reads := []*spec.Op{}
		for _, op := range history.Ops() {
			if op.Kind == spec.OpRead && op.Completed {
				reads = append(reads, op)
			}
		}
		return outcome{
			a:          reads[0].Value.SN,
			b:          reads[1].Value.SN,
			regularOK:  len(history.CheckRegular()) == 0,
			inversions: len(history.FindInversions()),
			msgs:       sys.Network().Stats().Sent,
		}
	}

	reg := run(esyncreg.Factory(esyncreg.Options{}))
	atom := run(atomicreg.Factory(esyncreg.Options{}))
	t.AddRow("regular (§5)",
		fmt.Sprintf("sn=%d", reg.a), fmt.Sprintf("sn=%d", reg.b),
		fmt.Sprintf("%v", reg.regularOK), metrics.D(int64(reg.inversions)), metrics.D(int64(reg.msgs)))
	t.AddRow("atomic (write-back)",
		fmt.Sprintf("sn=%d", atom.a), fmt.Sprintf("sn=%d", atom.b),
		fmt.Sprintf("%v", atom.regularOK), metrics.D(int64(atom.inversions)), metrics.D(int64(atom.msgs)))
	t.AddNote("schedule: write propagates fast to reader A only; A then B read sequentially during the write")
	t.AddNote("both runs are regular; only the write-back variant is inversion-free (atomic), at ~1 extra broadcast round per read")
	return t
}

// scriptedInversionSchedule builds the shared E11 execution: p1 writes
// while its WRITE reaches only reader A (p2) quickly; A reads, then B (p3)
// reads, with reply routes arranged so B's quorum is stale-first.
func scriptedInversionSchedule(seed uint64, factory core.NodeFactory) (*spec.History, *dynsys.System) {
	const (
		delta = 5
		slow  = 200
	)
	model := netsim.ScriptedDelayModel{
		Base: netsim.FixedDelayModel{D: 1},
		Overrides: map[netsim.Route]sim.Duration{
			{From: 1, Kind: core.KindWrite}:        slow,
			{From: 1, To: 2, Kind: core.KindWrite}: 1,
			{From: 3, To: 2, Kind: core.KindReply}: slow,
			{From: 5, To: 2, Kind: core.KindReply}: slow,
			{From: 1, To: 3, Kind: core.KindReply}: slow,
			{From: 2, To: 3, Kind: core.KindReply}: slow,
		},
	}
	sys, err := dynsys.New(dynsys.Config{
		N:       5,
		Delta:   delta,
		Model:   model,
		Factory: factory,
		Seed:    seed,
		Initial: core.VersionedValue{Val: 0, SN: 0},
	})
	if err != nil {
		panic(err)
	}
	history := spec.NewHistory(core.VersionedValue{Val: 0, SN: 0})
	writer := sys.Node(1).(core.Writer)
	wOp := history.BeginWrite(1, sys.Now())
	if err := writer.Write(1, func() {
		history.CompleteWrite(wOp, sys.Now(), sys.Node(1).Snapshot())
	}); err != nil {
		panic(err)
	}
	_ = sys.RunFor(6)
	read := func(id core.ProcessID) {
		op := history.BeginRead(id, sys.Now())
		r := sys.Node(id).(core.Reader)
		if err := r.Read(func(v core.VersionedValue) {
			history.CompleteRead(op, sys.Now(), v)
		}); err != nil {
			panic(err)
		}
		for i := 0; i < 4*slow && !op.Completed; i++ {
			_ = sys.RunFor(1)
		}
	}
	read(2)
	_ = sys.RunFor(2)
	read(3)
	_ = sys.RunFor(2 * slow)
	return history, sys
}

// BurstyChurn probes the paper's open question ("is it possible to
// characterize the greatest value of c?") empirically: two runs with the
// SAME mean churn, one constant and one bursty. The constant run sits
// safely below 1/(3δ); the bursty run exceeds the bound within individual
// 3δ windows and loses the register even though its mean is identical —
// evidence that the right characterization is per-window, not mean rate.
func BurstyChurn(seed uint64) *metrics.Table {
	const (
		n     = 30
		delta = 5
		dur   = 3000
	)
	bound := SyncChurnBound(delta)
	// Bursty profile: 4×bound for 5 ticks, quiet for 33 — mean ≈
	// 4×bound×5/38 ≈ 0.53×bound, same as the constant run. Each burst
	// refreshes 4·(1/3δ)·n·5 = 20/15·n > n processes: a full population
	// turnover inside a single 3δ window.
	const burstLen, period = 5, 38
	burstRate := 4 * bound
	meanRate := burstRate * burstLen / period

	t := metrics.NewTable("E12 — bursty vs constant churn at equal mean rate",
		"profile", "mean c", "peak c", "min |A(τ,τ+3δ)|", "⊥ joins", "regular violations")

	type result struct {
		minWindow int
		bottoms   int
		viols     int
	}
	runProfile := func(rateAt func(sim.Time) float64) result {
		res, err := Run(Trial{
			N: n, Delta: delta, Churn: meanRate, ChurnAt: rateAt,
			Policy:   churn.RemoveOldestActive, // worst case, as in E3/E4
			Duration: dur, Seed: seed,
			Factory:  syncreg.Factory(syncreg.Options{}),
			Workload: WorkloadMix(4*delta, delta, 2, true),
		})
		if err != nil {
			panic(err)
		}
		bottoms := 0
		for _, id := range res.Sys.ActiveIDs() {
			if res.Sys.Node(id).Snapshot().IsBottom() {
				bottoms++
			}
		}
		return result{minWindow: res.MinActiveWindow, bottoms: bottoms, viols: len(res.Violations)}
	}

	constant := runProfile(nil) // Trial.Churn == meanRate applies
	bursty := runProfile(func(now sim.Time) float64 {
		if int64(now)%period < burstLen {
			return burstRate
		}
		return 0
	})
	t.AddRow("constant", metrics.F(meanRate, 4), metrics.F(meanRate, 4),
		metrics.D(int64(constant.minWindow)), metrics.D(int64(constant.bottoms)), metrics.D(int64(constant.viols)))
	t.AddRow("bursty (4/(3δ) for 5 of 38 ticks)", metrics.F(meanRate, 4), metrics.F(burstRate, 4),
		metrics.D(int64(bursty.minWindow)), metrics.D(int64(bursty.bottoms)), metrics.D(int64(bursty.viols)))
	t.AddNote("n=%d, δ=%d, bound 1/(3δ)=%.4f; both profiles refresh the same number of processes over the run", n, delta, bound)
	t.AddNote("the paper's open question: the sustainable-churn characterization must be per 3δ window, not mean rate")
	return t
}
