package harness

import (
	"strconv"
	"testing"
)

func TestAtomicUpgrade(t *testing.T) {
	tb := AtomicUpgrade(testSeed)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	reg, atom := tb.Rows[0], tb.Rows[1]
	// Both runs must be regular.
	if reg[3] != "true" || atom[3] != "true" {
		t.Fatalf("a run was not regular: %v / %v", reg, atom)
	}
	// The regular register inverts on this schedule; the atomic one must
	// not, and its read B must see the new value.
	if reg[4] != "1" {
		t.Fatalf("regular register did not invert: %v", reg)
	}
	if atom[4] != "0" {
		t.Fatalf("atomic register inverted: %v", atom)
	}
	if atom[2] != "sn=1" {
		t.Fatalf("atomic read B = %s, want sn=1", atom[2])
	}
	// The upgrade costs messages.
	regMsgs, _ := strconv.Atoi(reg[5])
	atomMsgs, _ := strconv.Atoi(atom[5])
	if atomMsgs <= regMsgs {
		t.Fatalf("write-back was free? regular=%d atomic=%d msgs", regMsgs, atomMsgs)
	}
}

func TestBurstyChurn(t *testing.T) {
	tb := BurstyChurn(testSeed)
	constant, bursty := tb.Rows[0], tb.Rows[1]
	// Same mean rate in both rows.
	if constant[1] != bursty[1] {
		t.Fatalf("mean rates differ: %s vs %s", constant[1], bursty[1])
	}
	// The constant profile, below the bound, stays safe.
	if constant[5] != "0" {
		t.Fatalf("constant profile violated regularity: %v", constant)
	}
	// The bursty profile — same mean — must visibly degrade.
	cv, _ := strconv.Atoi(bursty[5])
	cb, _ := strconv.Atoi(bursty[4])
	if cv == 0 && cb == 0 {
		t.Fatalf("bursty profile showed no degradation: %v", bursty)
	}
}
