package netsim

import (
	"churnreg/internal/core"
	"churnreg/internal/sim"
)

// SynchronousModel implements the synchronous system of §3.2: every message
// is delivered within δ of its send time. Delays are drawn uniformly from
// [Min, Delta]; Min defaults to 1 tick.
type SynchronousModel struct {
	// Delta is the bound δ on communication delays, known to processes.
	Delta sim.Duration
	// Min is the smallest transit delay (>= 1).
	Min sim.Duration
}

// Delay implements DelayModel.
func (m SynchronousModel) Delay(rng *sim.RNG, _, _ core.ProcessID, _ sim.Time, _ core.MsgKind) sim.Duration {
	lo := m.Min
	if lo < 1 {
		lo = 1
	}
	return rng.DurationBetween(lo, m.Delta)
}

// EventuallySynchronousModel implements the eventually synchronous system
// of §5.1: there exist a time GST and a bound δ, both unknown to processes,
// such that any message sent at or after GST is delivered within δ.
// Messages sent before GST experience finite but unbounded delays, drawn
// uniformly from [Min, PreGSTMax].
type EventuallySynchronousModel struct {
	// GST is the global stabilization time after which timing holds.
	GST sim.Time
	// Delta is the post-GST delivery bound.
	Delta sim.Duration
	// Min is the smallest transit delay (>= 1).
	Min sim.Duration
	// PreGSTMax bounds the (finite) delays before GST. It can be
	// arbitrarily large relative to Delta; it exists because a simulation
	// must terminate. Defaults to 100×Delta when zero.
	PreGSTMax sim.Duration
}

// Delay implements DelayModel.
func (m EventuallySynchronousModel) Delay(rng *sim.RNG, _, _ core.ProcessID, at sim.Time, _ core.MsgKind) sim.Duration {
	lo := m.Min
	if lo < 1 {
		lo = 1
	}
	if at >= m.GST {
		return rng.DurationBetween(lo, m.Delta)
	}
	hi := m.PreGSTMax
	if hi <= 0 {
		hi = 100 * m.Delta
	}
	// A pre-GST message may still arrive quickly; only the bound is absent.
	return rng.DurationBetween(lo, hi)
}

// AsynchronousModel implements the fully asynchronous system of §4: no
// bound on transfer delays exists at any time. Choose selects each delay;
// if nil, delays are drawn from a heavy-tailed distribution over
// [Min, Max]. The adversary package builds Choose functions that realize
// the Theorem 2 impossibility schedule.
type AsynchronousModel struct {
	// Min is the smallest transit delay (>= 1).
	Min sim.Duration
	// Max caps delays so simulations terminate (the "finite" part of
	// finite-but-unbounded). Defaults to 10000 when zero.
	Max sim.Duration
	// Choose, when non-nil, overrides the default distribution.
	Choose func(rng *sim.RNG, from, to core.ProcessID, at sim.Time, kind core.MsgKind) sim.Duration
}

// Delay implements DelayModel.
func (m AsynchronousModel) Delay(rng *sim.RNG, from, to core.ProcessID, at sim.Time, kind core.MsgKind) sim.Duration {
	if m.Choose != nil {
		d := m.Choose(rng, from, to, at, kind)
		if d < 1 {
			d = 1
		}
		return d
	}
	lo := m.Min
	if lo < 1 {
		lo = 1
	}
	hi := m.Max
	if hi <= 0 {
		hi = 10000
	}
	// Heavy tail: square a uniform draw so most messages are quick but a
	// constant fraction take a large fraction of Max.
	u := rng.Float64()
	d := lo + sim.Duration(float64(hi-lo)*u*u)
	if d > hi {
		d = hi
	}
	return d
}

// FixedDelayModel delivers every message after exactly D ticks. Used by
// scenario scripts (Figure 3, new/old inversion) that need exact timing.
type FixedDelayModel struct {
	D sim.Duration
}

// Delay implements DelayModel.
func (m FixedDelayModel) Delay(*sim.RNG, core.ProcessID, core.ProcessID, sim.Time, core.MsgKind) sim.Duration {
	if m.D < 1 {
		return 1
	}
	return m.D
}

// Route identifies message traffic for ScriptedDelayModel overrides. Zero
// fields are wildcards: {Kind: KindWrite} matches every WRITE, {To: 5}
// matches everything addressed to p5.
type Route struct {
	From core.ProcessID
	To   core.ProcessID
	Kind core.MsgKind
}

// ScriptedDelayModel assigns exact delays to matching routes, consulting
// the most specific match first (all three fields set, then two, then one)
// and falling back to Base. Scenario scripts (Figure 3a, the new/old
// inversion figure) are built from it.
type ScriptedDelayModel struct {
	// Base applies when no override matches.
	Base DelayModel
	// Overrides maps routes to exact delays.
	Overrides map[Route]sim.Duration
}

// Delay implements DelayModel.
func (m ScriptedDelayModel) Delay(rng *sim.RNG, from, to core.ProcessID, at sim.Time, kind core.MsgKind) sim.Duration {
	candidates := []Route{
		{From: from, To: to, Kind: kind},
		{From: from, To: to},
		{From: from, Kind: kind},
		{To: to, Kind: kind},
		{From: from},
		{To: to},
		{Kind: kind},
	}
	for _, r := range candidates {
		if d, ok := m.Overrides[r]; ok {
			if d < 1 {
				d = 1
			}
			return d
		}
	}
	return m.Base.Delay(rng, from, to, at, kind)
}

// Compile-time interface checks.
var (
	_ DelayModel = SynchronousModel{}
	_ DelayModel = EventuallySynchronousModel{}
	_ DelayModel = AsynchronousModel{}
	_ DelayModel = FixedDelayModel{}
	_ DelayModel = ScriptedDelayModel{}
)
