// Package netsim simulates the paper's communication substrate: a reliable
// point-to-point network plus the broadcast service of §3.2/§5.1, with
// pluggable timing models for the three system classes the paper studies
// (synchronous, eventually synchronous, fully asynchronous).
//
// Semantics implemented exactly as the paper defines them:
//
//   - Reliability: the network neither loses, creates, nor modifies
//     messages; a message is dropped only when its destination has left the
//     system before delivery (a departed process "does not longer send or
//     receive messages"), or when a test injects a fault on purpose.
//   - Timely delivery (synchronous): a message sent at τ is received by
//     τ+δ if the destination has not left by then.
//   - Broadcast timely delivery: the processes that are in the system at
//     broadcast time τ and do not leave by τ+δ deliver the message by τ+δ.
//     Processes that enter after τ are NOT guaranteed delivery — the
//     snapshot-at-send semantics Figure 3a depends on.
//   - Eventual timely delivery (eventually synchronous): there is a time
//     GST and bound δ such that messages sent at or after GST are delivered
//     within δ; earlier messages are delivered after a finite but
//     unbounded delay.
package netsim

import (
	"fmt"
	"sort"

	"churnreg/internal/core"
	"churnreg/internal/sim"
)

// Endpoint receives messages on behalf of one process.
type Endpoint interface {
	ID() core.ProcessID
	Deliver(from core.ProcessID, m core.Message)
}

// DelayModel decides the transit delay of each message. Implementations
// draw from the supplied RNG only, keeping runs deterministic. The message
// kind is exposed so scripted scenarios and message adversaries can target
// specific protocol traffic (e.g. slow WRITEs with fast INQUIRYs realize
// Figure 3a).
type DelayModel interface {
	// Delay returns the transit time for a message of the given kind sent
	// at 'at' from 'from' to 'to'.
	Delay(rng *sim.RNG, from, to core.ProcessID, at sim.Time, kind core.MsgKind) sim.Duration
}

// LoopbackDelay is the fixed delay for a process delivering its own
// broadcast to itself: local delivery is one tick regardless of the model.
const LoopbackDelay sim.Duration = 1

// DropRule lets tests inject message loss or partitions. Returning true
// drops the message. A nil rule drops nothing (the paper's network is
// reliable; injection exists to prove the checkers catch violations when
// the model's axioms are broken).
type DropRule func(from, to core.ProcessID, m core.Message, at sim.Time) bool

// TraceFunc observes message lifecycle events when tracing is enabled.
type TraceFunc func(ev TraceEvent)

// TraceEvent describes one message send or delivery.
type TraceEvent struct {
	At        sim.Time
	From, To  core.ProcessID
	Kind      core.MsgKind
	Delivered bool // false = sent, true = delivered
	Dropped   bool // delivery suppressed (departed destination or injected)
}

// Stats aggregates network accounting for the metrics layer.
type Stats struct {
	Sent             uint64
	Delivered        uint64
	DroppedDeparted  uint64
	DroppedInjected  uint64
	BytesSent        uint64
	Broadcasts       uint64
	SentByKind       map[core.MsgKind]uint64
	DeliveredByKind  map[core.MsgKind]uint64
	MaxObservedDelay sim.Duration
}

// Network is the simulated message-passing system. It is driven entirely by
// the scheduler, so it is single-threaded and needs no locking.
type Network struct {
	sched     *sim.Scheduler
	rng       *sim.RNG
	model     DelayModel
	endpoints map[core.ProcessID]Endpoint
	drop      DropRule
	trace     TraceFunc
	stats     Stats
}

// New creates a network over sched using model for timing. rng must be a
// dedicated stream (fork it from the run's root RNG).
func New(sched *sim.Scheduler, rng *sim.RNG, model DelayModel) *Network {
	return &Network{
		sched:     sched,
		rng:       rng,
		model:     model,
		endpoints: make(map[core.ProcessID]Endpoint),
		stats: Stats{
			SentByKind:      make(map[core.MsgKind]uint64),
			DeliveredByKind: make(map[core.MsgKind]uint64),
		},
	}
}

// SetModel swaps the delay model (used by adversarial schedules that change
// behaviour mid-run). Takes effect for subsequently sent messages.
func (n *Network) SetModel(model DelayModel) { n.model = model }

// SetDropRule installs a fault-injection rule (tests only; nil clears).
func (n *Network) SetDropRule(r DropRule) { n.drop = r }

// SetTrace installs a trace observer (nil disables).
func (n *Network) SetTrace(f TraceFunc) { n.trace = f }

// Stats returns a copy of the accumulated counters.
func (n *Network) Stats() Stats {
	cp := n.stats
	cp.SentByKind = make(map[core.MsgKind]uint64, len(n.stats.SentByKind))
	for k, v := range n.stats.SentByKind {
		cp.SentByKind[k] = v
	}
	cp.DeliveredByKind = make(map[core.MsgKind]uint64, len(n.stats.DeliveredByKind))
	for k, v := range n.stats.DeliveredByKind {
		cp.DeliveredByKind[k] = v
	}
	return cp
}

// Attach registers ep as present in the system. From this instant the
// process is in listening mode: it receives point-to-point messages and is
// included in broadcast snapshots.
func (n *Network) Attach(ep Endpoint) {
	n.endpoints[ep.ID()] = ep
}

// Detach removes the process from the system. In-flight messages to it are
// dropped at their delivery instant.
func (n *Network) Detach(id core.ProcessID) {
	delete(n.endpoints, id)
}

// Present reports whether id is currently in the system.
func (n *Network) Present(id core.ProcessID) bool {
	_, ok := n.endpoints[id]
	return ok
}

// PresentIDs returns the sorted identities currently in the system.
func (n *Network) PresentIDs() []core.ProcessID {
	ids := make([]core.ProcessID, 0, len(n.endpoints))
	for id := range n.endpoints {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Size returns the number of processes currently in the system.
func (n *Network) Size() int { return len(n.endpoints) }

// Send transmits m from 'from' to 'to' over the point-to-point network.
// If the sender has already left the system the message is not sent (a
// departed process no longer sends).
func (n *Network) Send(from, to core.ProcessID, m core.Message) {
	if !n.Present(from) {
		return
	}
	d := n.model.Delay(n.rng, from, to, n.sched.Now(), m.Kind())
	n.transmit(from, to, m, d)
}

// Broadcast disseminates m to every process present at the send instant,
// including the sender (local loopback, one tick). This is the broadcast
// operation of §3.2: the snapshot is taken at send time, so processes that
// enter later may never deliver the message.
func (n *Network) Broadcast(from core.ProcessID, m core.Message) {
	if !n.Present(from) {
		return
	}
	n.stats.Broadcasts++
	// Deterministic iteration: deliveries are scheduled in ID order so the
	// run is independent of map iteration order.
	for _, id := range n.PresentIDs() {
		var d sim.Duration
		if id == from {
			d = LoopbackDelay
		} else {
			d = n.model.Delay(n.rng, from, id, n.sched.Now(), m.Kind())
		}
		n.transmit(from, id, m, d)
	}
}

func (n *Network) transmit(from, to core.ProcessID, m core.Message, d sim.Duration) {
	if d < 1 {
		d = 1
	}
	at := n.sched.Now()
	n.stats.Sent++
	n.stats.BytesSent += uint64(m.WireSize())
	n.stats.SentByKind[m.Kind()]++
	if d > n.stats.MaxObservedDelay {
		n.stats.MaxObservedDelay = d
	}
	if n.trace != nil {
		n.trace(TraceEvent{At: at, From: from, To: to, Kind: m.Kind()})
	}
	if n.drop != nil && n.drop(from, to, m, at) {
		n.stats.DroppedInjected++
		if n.trace != nil {
			n.trace(TraceEvent{At: at, From: from, To: to, Kind: m.Kind(), Delivered: true, Dropped: true})
		}
		return
	}
	n.sched.After(d, func() {
		ep, ok := n.endpoints[to]
		if !ok {
			// Destination left the system before delivery.
			n.stats.DroppedDeparted++
			if n.trace != nil {
				n.trace(TraceEvent{At: n.sched.Now(), From: from, To: to, Kind: m.Kind(), Delivered: true, Dropped: true})
			}
			return
		}
		n.stats.Delivered++
		n.stats.DeliveredByKind[m.Kind()]++
		if n.trace != nil {
			n.trace(TraceEvent{At: n.sched.Now(), From: from, To: to, Kind: m.Kind(), Delivered: true})
		}
		ep.Deliver(from, m)
	})
}

// String summarizes the network state for debugging.
func (n *Network) String() string {
	return fmt.Sprintf("netsim{present=%d sent=%d delivered=%d}", n.Size(), n.stats.Sent, n.stats.Delivered)
}
