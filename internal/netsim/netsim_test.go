package netsim

import (
	"testing"
	"testing/quick"

	"churnreg/internal/core"
	"churnreg/internal/sim"
)

// recorder is a test Endpoint that records deliveries.
type recorder struct {
	id   core.ProcessID
	got  []delivery
	hook func(from core.ProcessID, m core.Message)
}

type delivery struct {
	from core.ProcessID
	msg  core.Message
	at   sim.Time
}

func (r *recorder) ID() core.ProcessID { return r.id }

func (r *recorder) Deliver(from core.ProcessID, m core.Message) {
	r.got = append(r.got, delivery{from: from, msg: m})
	if r.hook != nil {
		r.hook(from, m)
	}
}

func newNet(model DelayModel) (*sim.Scheduler, *Network) {
	sched := sim.NewScheduler()
	return sched, New(sched, sim.NewRNG(1), model)
}

func TestSendDeliversWithinDelta(t *testing.T) {
	const delta = 10
	sched, net := newNet(SynchronousModel{Delta: delta})
	a := &recorder{id: 1}
	b := &recorder{id: 2}
	net.Attach(a)
	net.Attach(b)

	var deliveredAt sim.Time
	b.hook = func(core.ProcessID, core.Message) { deliveredAt = sched.Now() }
	net.Send(1, 2, core.InquiryMsg{From: 1})
	if err := sched.RunUntil(100); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(b.got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(b.got))
	}
	if deliveredAt < 1 || deliveredAt > delta {
		t.Fatalf("delivered at %v, want within (0, %d]", deliveredAt, delta)
	}
	if b.got[0].from != 1 {
		t.Fatalf("from = %v, want p1", b.got[0].from)
	}
}

func TestSendFromDepartedProcessIsSuppressed(t *testing.T) {
	sched, net := newNet(SynchronousModel{Delta: 5})
	b := &recorder{id: 2}
	net.Attach(b)
	// Process 1 never attached (equivalently: already departed).
	net.Send(1, 2, core.InquiryMsg{From: 1})
	if err := sched.RunUntil(100); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(b.got) != 0 {
		t.Fatal("message from absent sender was delivered")
	}
	if net.Stats().Sent != 0 {
		t.Fatal("suppressed send was counted as sent")
	}
}

func TestSendToDepartedProcessIsDropped(t *testing.T) {
	sched, net := newNet(SynchronousModel{Delta: 10})
	a := &recorder{id: 1}
	b := &recorder{id: 2}
	net.Attach(a)
	net.Attach(b)
	net.Send(1, 2, core.InquiryMsg{From: 1})
	net.Detach(2) // leaves before any delivery can occur (min delay 1)
	if err := sched.RunUntil(100); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(b.got) != 0 {
		t.Fatal("departed process received a message")
	}
	st := net.Stats()
	if st.DroppedDeparted != 1 {
		t.Fatalf("DroppedDeparted = %d, want 1", st.DroppedDeparted)
	}
}

func TestBroadcastReachesSnapshotOnly(t *testing.T) {
	const delta = 10
	sched, net := newNet(SynchronousModel{Delta: delta})
	src := &recorder{id: 1}
	in := &recorder{id: 2}
	late := &recorder{id: 3}
	net.Attach(src)
	net.Attach(in)

	net.Broadcast(1, core.WriteMsg{From: 1, Value: core.VersionedValue{Val: 9, SN: 1}})
	// Process 3 enters right after the broadcast: the paper's timely
	// delivery property gives it no delivery guarantee, and snapshot
	// semantics give it nothing.
	net.Attach(late)
	if err := sched.RunUntil(100); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(in.got) != 1 {
		t.Fatalf("present process deliveries = %d, want 1", len(in.got))
	}
	if len(late.got) != 0 {
		t.Fatal("late joiner received a broadcast sent before it entered")
	}
	if len(src.got) != 1 {
		t.Fatalf("sender self-delivery count = %d, want 1", len(src.got))
	}
}

func TestBroadcastSelfDeliveryIsLoopbackDelay(t *testing.T) {
	sched, net := newNet(SynchronousModel{Delta: 50})
	src := &recorder{id: 1}
	var at sim.Time
	src.hook = func(core.ProcessID, core.Message) { at = sched.Now() }
	net.Attach(src)
	net.Broadcast(1, core.WriteMsg{From: 1})
	if err := sched.RunUntil(100); err != nil {
		t.Fatalf("run: %v", err)
	}
	if at != sim.Time(LoopbackDelay) {
		t.Fatalf("self delivery at %v, want %v", at, LoopbackDelay)
	}
}

func TestBroadcastAllWithinDelta(t *testing.T) {
	const delta = 7
	sched, net := newNet(SynchronousModel{Delta: delta})
	eps := make([]*recorder, 20)
	latest := sim.Time(0)
	for i := range eps {
		eps[i] = &recorder{id: core.ProcessID(i + 1)}
		eps[i].hook = func(core.ProcessID, core.Message) {
			if sched.Now() > latest {
				latest = sched.Now()
			}
		}
		net.Attach(eps[i])
	}
	net.Broadcast(1, core.WriteMsg{From: 1})
	if err := sched.RunUntil(1000); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, ep := range eps {
		if len(ep.got) != 1 {
			t.Fatalf("endpoint %d deliveries = %d, want 1", i+1, len(ep.got))
		}
	}
	if latest > delta {
		t.Fatalf("latest delivery at %v, want <= %d", latest, delta)
	}
}

func TestDropRuleInjection(t *testing.T) {
	sched, net := newNet(SynchronousModel{Delta: 5})
	a := &recorder{id: 1}
	b := &recorder{id: 2}
	net.Attach(a)
	net.Attach(b)
	net.SetDropRule(func(from, to core.ProcessID, m core.Message, _ sim.Time) bool {
		return to == 2 && m.Kind() == core.KindWrite
	})
	net.Send(1, 2, core.WriteMsg{From: 1})
	net.Send(1, 2, core.AckMsg{From: 1})
	if err := sched.RunUntil(100); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(b.got) != 1 || b.got[0].msg.Kind() != core.KindAck {
		t.Fatalf("drop rule not applied: got %v", b.got)
	}
	if net.Stats().DroppedInjected != 1 {
		t.Fatalf("DroppedInjected = %d, want 1", net.Stats().DroppedInjected)
	}
}

func TestStatsAccounting(t *testing.T) {
	sched, net := newNet(SynchronousModel{Delta: 5})
	a := &recorder{id: 1}
	b := &recorder{id: 2}
	net.Attach(a)
	net.Attach(b)
	net.Send(1, 2, core.InquiryMsg{From: 1})
	net.Send(2, 1, core.ReplyMsg{From: 2})
	net.Broadcast(1, core.WriteMsg{From: 1})
	if err := sched.RunUntil(100); err != nil {
		t.Fatalf("run: %v", err)
	}
	st := net.Stats()
	if st.Sent != 4 { // 2 sends + broadcast to 2 endpoints
		t.Fatalf("Sent = %d, want 4", st.Sent)
	}
	if st.Delivered != 4 {
		t.Fatalf("Delivered = %d, want 4", st.Delivered)
	}
	if st.Broadcasts != 1 {
		t.Fatalf("Broadcasts = %d, want 1", st.Broadcasts)
	}
	if st.SentByKind[core.KindWrite] != 2 {
		t.Fatalf("SentByKind[WRITE] = %d, want 2", st.SentByKind[core.KindWrite])
	}
	if st.BytesSent == 0 {
		t.Fatal("BytesSent = 0")
	}
}

func TestTraceObserver(t *testing.T) {
	sched, net := newNet(SynchronousModel{Delta: 5})
	a := &recorder{id: 1}
	b := &recorder{id: 2}
	net.Attach(a)
	net.Attach(b)
	var events []TraceEvent
	net.SetTrace(func(ev TraceEvent) { events = append(events, ev) })
	net.Send(1, 2, core.InquiryMsg{From: 1})
	if err := sched.RunUntil(100); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("trace events = %d, want 2 (send + deliver)", len(events))
	}
	if events[0].Delivered || !events[1].Delivered {
		t.Fatalf("trace order wrong: %+v", events)
	}
}

func TestPresentAndSize(t *testing.T) {
	_, net := newNet(SynchronousModel{Delta: 5})
	if net.Present(1) {
		t.Fatal("empty network claims presence")
	}
	net.Attach(&recorder{id: 1})
	net.Attach(&recorder{id: 2})
	if !net.Present(1) || !net.Present(2) || net.Size() != 2 {
		t.Fatal("attach bookkeeping wrong")
	}
	net.Detach(1)
	if net.Present(1) || net.Size() != 1 {
		t.Fatal("detach bookkeeping wrong")
	}
	ids := net.PresentIDs()
	if len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("PresentIDs = %v, want [p2]", ids)
	}
}

func TestSynchronousModelBounds(t *testing.T) {
	m := SynchronousModel{Delta: 9, Min: 3}
	rng := sim.NewRNG(2)
	for i := 0; i < 5000; i++ {
		d := m.Delay(rng, 1, 2, 0, core.KindWrite)
		if d < 3 || d > 9 {
			t.Fatalf("delay %d out of [3,9]", d)
		}
	}
}

func TestSynchronousModelDefaultMin(t *testing.T) {
	m := SynchronousModel{Delta: 4}
	rng := sim.NewRNG(2)
	for i := 0; i < 1000; i++ {
		if d := m.Delay(rng, 1, 2, 0, core.KindWrite); d < 1 || d > 4 {
			t.Fatalf("delay %d out of [1,4]", d)
		}
	}
}

func TestEventuallySynchronousModelBeforeAndAfterGST(t *testing.T) {
	m := EventuallySynchronousModel{GST: 100, Delta: 5, PreGSTMax: 50}
	rng := sim.NewRNG(3)
	sawSlow := false
	for i := 0; i < 5000; i++ {
		d := m.Delay(rng, 1, 2, 10, core.KindWrite) // before GST
		if d < 1 || d > 50 {
			t.Fatalf("pre-GST delay %d out of [1,50]", d)
		}
		if d > 5 {
			sawSlow = true
		}
	}
	if !sawSlow {
		t.Fatal("pre-GST delays never exceeded delta; asynchrony not exercised")
	}
	for i := 0; i < 5000; i++ {
		if d := m.Delay(rng, 1, 2, 100, core.KindWrite); d < 1 || d > 5 {
			t.Fatalf("post-GST delay %d violates delta bound", d)
		}
	}
}

func TestEventuallySynchronousModelDefaultPreGSTMax(t *testing.T) {
	m := EventuallySynchronousModel{GST: 100, Delta: 5}
	rng := sim.NewRNG(4)
	for i := 0; i < 2000; i++ {
		if d := m.Delay(rng, 1, 2, 0, core.KindWrite); d < 1 || d > 500 {
			t.Fatalf("pre-GST default-capped delay %d out of [1,500]", d)
		}
	}
}

func TestAsynchronousModelUnbounded(t *testing.T) {
	m := AsynchronousModel{Max: 1000}
	rng := sim.NewRNG(5)
	sawLarge := false
	for i := 0; i < 5000; i++ {
		d := m.Delay(rng, 1, 2, 0, core.KindWrite)
		if d < 1 || d > 1000 {
			t.Fatalf("delay %d out of [1,1000]", d)
		}
		if d > 500 {
			sawLarge = true
		}
	}
	if !sawLarge {
		t.Fatal("async model produced no long delays")
	}
}

func TestAsynchronousModelChoose(t *testing.T) {
	m := AsynchronousModel{Choose: func(_ *sim.RNG, _, _ core.ProcessID, _ sim.Time, _ core.MsgKind) sim.Duration {
		return 0 // must be clamped to 1
	}}
	if d := m.Delay(sim.NewRNG(1), 1, 2, 0, core.KindWrite); d != 1 {
		t.Fatalf("Choose result not clamped: %d", d)
	}
}

func TestFixedDelayModel(t *testing.T) {
	if d := (FixedDelayModel{D: 7}).Delay(nil, 1, 2, 0, core.KindWrite); d != 7 {
		t.Fatalf("fixed delay = %d, want 7", d)
	}
	if d := (FixedDelayModel{}).Delay(nil, 1, 2, 0, core.KindWrite); d != 1 {
		t.Fatalf("zero fixed delay = %d, want clamp to 1", d)
	}
}

func TestScriptedDelayModelPrecedence(t *testing.T) {
	m := ScriptedDelayModel{
		Base: FixedDelayModel{D: 3},
		Overrides: map[Route]sim.Duration{
			{Kind: core.KindWrite}:                 20,
			{To: 5}:                                30,
			{From: 1, To: 5, Kind: core.KindWrite}: 40,
		},
	}
	rng := sim.NewRNG(1)
	// Exact (from,to,kind) match wins.
	if d := m.Delay(rng, 1, 5, 0, core.KindWrite); d != 40 {
		t.Fatalf("exact-route delay = %d, want 40", d)
	}
	// Kind wildcard applies to other destinations... but {To:5} is also a
	// candidate for WRITEs to p5 from other senders; kind-specific
	// (To+Kind) outranks destination-only.
	if d := m.Delay(rng, 2, 6, 0, core.KindWrite); d != 20 {
		t.Fatalf("kind-route delay = %d, want 20", d)
	}
	if d := m.Delay(rng, 2, 5, 0, core.KindAck); d != 30 {
		t.Fatalf("to-route delay = %d, want 30", d)
	}
	if d := m.Delay(rng, 2, 6, 0, core.KindAck); d != 3 {
		t.Fatalf("base delay = %d, want 3", d)
	}
}

func TestScriptedDelayModelClampsToOne(t *testing.T) {
	m := ScriptedDelayModel{
		Base:      FixedDelayModel{D: 3},
		Overrides: map[Route]sim.Duration{{Kind: core.KindAck}: 0},
	}
	if d := m.Delay(sim.NewRNG(1), 1, 2, 0, core.KindAck); d != 1 {
		t.Fatalf("scripted zero delay = %d, want clamp to 1", d)
	}
}

// Property: the synchronous model never violates the paper's timely
// delivery bound for any (seed, delta).
func TestSynchronousTimelyDeliveryProperty(t *testing.T) {
	f := func(seed uint64, deltaRaw uint8) bool {
		delta := sim.Duration(deltaRaw%50) + 1
		m := SynchronousModel{Delta: delta}
		rng := sim.NewRNG(seed)
		for i := 0; i < 200; i++ {
			d := m.Delay(rng, 1, 2, 0, core.KindWrite)
			if d < 1 || d > delta {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: deliveries never occur before their send instant + 1.
func TestCausalDeliveryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		sched := sim.NewScheduler()
		net := New(sched, sim.NewRNG(seed), SynchronousModel{Delta: 10})
		ok := true
		var sentAt sim.Time
		b := &recorder{id: 2}
		b.hook = func(core.ProcessID, core.Message) {
			if sched.Now() <= sentAt {
				ok = false
			}
		}
		net.Attach(&recorder{id: 1})
		net.Attach(b)
		for i := 0; i < 50; i++ {
			sentAt = sched.Now()
			net.Send(1, 2, core.AckMsg{From: 1})
			if err := sched.RunFor(3); err != nil {
				return false
			}
		}
		if err := sched.RunUntil(10000); err != nil {
			return false
		}
		return ok && len(b.got) == 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
