package churn

import (
	"testing"
	"testing/quick"

	"churnreg/internal/core"
	"churnreg/internal/sim"
)

// fakeHost spawns/kills against the tracker only.
type fakeHost struct {
	t        *Tracker
	sched    *sim.Scheduler
	joinLag  sim.Duration // time from spawn to activation
	spawned  int
	killed   int
	lastKill core.ProcessID
	killHook func(core.ProcessID) // invoked before the departure is recorded
}

func (h *fakeHost) SpawnProcess() core.ProcessID {
	id := h.t.AllocateID()
	h.t.Entered(id, h.sched.Now())
	h.spawned++
	lag := h.joinLag
	h.sched.After(lag, func() {
		// Mimic a join completing if the process is still present.
		if r := h.t.Record(id); r != nil && r.Departed == NeverDeparted {
			h.t.Activated(id, h.sched.Now())
		}
	})
	return id
}

func (h *fakeHost) KillProcess(id core.ProcessID) {
	if h.killHook != nil {
		h.killHook(id)
	}
	h.t.Departed(id, h.sched.Now())
	h.killed++
	h.lastKill = id
}

func bootstrapped(tr *Tracker, n int) {
	for i := 0; i < n; i++ {
		id := tr.AllocateID()
		tr.Entered(id, 0)
		tr.Activated(id, 0)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{N: 10, Rate: 0.05}, true},
		{"zero churn valid", Config{N: 10, Rate: 0}, true},
		{"zero n", Config{N: 0, Rate: 0.1}, false},
		{"negative rate", Config{N: 10, Rate: -0.1}, false},
		{"rate one", Config{N: 10, Rate: 1.0}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestEnginePreservesPopulation(t *testing.T) {
	sched := sim.NewScheduler()
	tr := NewTracker()
	const n = 50
	bootstrapped(tr, n)
	host := &fakeHost{t: tr, sched: sched, joinLag: 3}
	eng, err := NewEngine(Config{N: n, Rate: 0.04}, sched, sim.NewRNG(1), host, tr)
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	if err := sched.RunUntil(500); err != nil {
		t.Fatal(err)
	}
	if got := tr.PresentCount(); got != n {
		t.Fatalf("population = %d, want %d", got, n)
	}
	// 0.04 * 50 = 2 churn events per tick over 500 ticks.
	if host.killed < 900 || host.killed > 1000 {
		t.Fatalf("kills = %d, want ~1000", host.killed)
	}
	if host.spawned != host.killed {
		t.Fatalf("spawned %d != killed %d", host.spawned, host.killed)
	}
}

func TestEngineFractionalAccumulator(t *testing.T) {
	sched := sim.NewScheduler()
	tr := NewTracker()
	const n = 10
	bootstrapped(tr, n)
	host := &fakeHost{t: tr, sched: sched}
	// c·n = 0.25 per tick: one churn event every 4 ticks.
	eng, err := NewEngine(Config{N: n, Rate: 0.025}, sched, sim.NewRNG(1), host, tr)
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	if err := sched.RunUntil(400); err != nil {
		t.Fatal(err)
	}
	if host.killed < 98 || host.killed > 102 {
		t.Fatalf("kills = %d, want ~100 (0.25/tick × 400)", host.killed)
	}
}

func TestEngineRateAtOverridesConstantRate(t *testing.T) {
	sched := sim.NewScheduler()
	tr := NewTracker()
	const n = 10
	bootstrapped(tr, n)
	host := &fakeHost{t: tr, sched: sched}
	// Bursty: 0.2 for the first 50 ticks, 0 afterwards.
	eng, err := NewEngine(Config{N: n, Rate: 0.05, RateAt: func(now sim.Time) float64 {
		if now <= 50 {
			return 0.2
		}
		return 0
	}}, sched, sim.NewRNG(4), host, tr)
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	if err := sched.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	burstKills := host.killed
	if burstKills < 95 || burstKills > 105 {
		t.Fatalf("burst kills = %d, want ~100 (0.2×10×50)", burstKills)
	}
	if err := sched.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	if host.killed > burstKills+1 {
		t.Fatalf("quiet phase churned: %d -> %d", burstKills, host.killed)
	}
}

func TestEngineZeroRateIsInert(t *testing.T) {
	sched := sim.NewScheduler()
	tr := NewTracker()
	bootstrapped(tr, 5)
	host := &fakeHost{t: tr, sched: sched}
	eng, err := NewEngine(Config{N: 5, Rate: 0}, sched, sim.NewRNG(1), host, tr)
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	if err := sched.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	if host.killed != 0 || host.spawned != 0 {
		t.Fatal("zero-rate engine churned")
	}
}

func TestEngineStop(t *testing.T) {
	sched := sim.NewScheduler()
	tr := NewTracker()
	bootstrapped(tr, 10)
	host := &fakeHost{t: tr, sched: sched}
	eng, err := NewEngine(Config{N: 10, Rate: 0.1}, sched, sim.NewRNG(1), host, tr)
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	if err := sched.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	killedAtStop := host.killed
	eng.Stop()
	if err := sched.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	if host.killed != killedAtStop {
		t.Fatalf("engine churned after Stop: %d -> %d", killedAtStop, host.killed)
	}
}

func TestEngineMinLifetimeExemptsYoung(t *testing.T) {
	sched := sim.NewScheduler()
	tr := NewTracker()
	const n = 10
	bootstrapped(tr, n)
	host := &fakeHost{t: tr, sched: sched, joinLag: 2}
	eng, err := NewEngine(Config{N: n, Rate: 0.1, MinLifetime: 50}, sched, sim.NewRNG(3), host, tr)
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	if err := sched.RunUntil(300); err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Records() {
		if r.Departed == NeverDeparted {
			continue
		}
		if r.Departed.Sub(r.Entered) < 50 {
			t.Fatalf("process %v removed after only %d ticks (< MinLifetime)", r.ID, r.Departed.Sub(r.Entered))
		}
	}
}

func TestEngineProtectExemptsProcess(t *testing.T) {
	sched := sim.NewScheduler()
	tr := NewTracker()
	bootstrapped(tr, 5)
	host := &fakeHost{t: tr, sched: sched}
	protected := core.ProcessID(1)
	eng, err := NewEngine(Config{N: 5, Rate: 0.2, Protect: func(id core.ProcessID) bool {
		return id == protected
	}}, sched, sim.NewRNG(7), host, tr)
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	if err := sched.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	if r := tr.Record(protected); r.Departed != NeverDeparted {
		t.Fatal("protected process was removed")
	}
}

func TestEngineSkipsWhenNoVictim(t *testing.T) {
	sched := sim.NewScheduler()
	tr := NewTracker()
	bootstrapped(tr, 3)
	host := &fakeHost{t: tr, sched: sched}
	eng, err := NewEngine(Config{N: 3, Rate: 0.34, Protect: func(core.ProcessID) bool { return true }},
		sched, sim.NewRNG(1), host, tr)
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	if err := sched.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	if host.killed != 0 {
		t.Fatal("engine killed a fully protected population")
	}
	if eng.Stats().SkippedRemoves == 0 {
		t.Fatal("skipped removals not counted")
	}
}

func TestRemoveOldestActivePolicy(t *testing.T) {
	sched := sim.NewScheduler()
	tr := NewTracker()
	bootstrapped(tr, 4) // ids 1..4 active at 0
	host := &fakeHost{t: tr, sched: sched, joinLag: 1}
	eng, err := NewEngine(Config{N: 4, Rate: 0.25, Policy: RemoveOldestActive}, sched, sim.NewRNG(1), host, tr)
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	if err := sched.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	// First churn event must take one of the time-0 actives.
	if host.lastKill < 1 || host.lastKill > 4 {
		t.Fatalf("oldest-active policy removed %v, want one of p1..p4", host.lastKill)
	}
}

func TestRemoveNewestPolicy(t *testing.T) {
	sched := sim.NewScheduler()
	tr := NewTracker()
	bootstrapped(tr, 4)
	host := &fakeHost{t: tr, sched: sched, joinLag: 100} // joiners never activate in window
	eng, err := NewEngine(Config{N: 4, Rate: 0.25, Policy: RemoveNewest}, sched, sim.NewRNG(1), host, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Check the invariant at kill time: the victim is the newest entrant
	// among the processes present at that instant.
	host.killHook = func(victim core.ProcessID) {
		v := tr.Record(victim)
		for _, r := range tr.presentFiltered(func(*Record) bool { return true }) {
			if r.Entered > v.Entered {
				t.Errorf("newest policy removed %v (entered %v) while %v (entered %v) was present",
					v.ID, v.Entered, r.ID, r.Entered)
			}
		}
	}
	eng.Start()
	if err := sched.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	if host.killed == 0 {
		t.Fatal("no churn events occurred")
	}
}

func TestPolicyString(t *testing.T) {
	if RemoveRandom.String() != "random" || RemoveOldestActive.String() != "oldest-active" ||
		RemoveNewest.String() != "newest" {
		t.Fatal("policy names wrong")
	}
	if RemovePolicy(9).String() != "RemovePolicy(9)" {
		t.Fatal("unknown policy name wrong")
	}
}

func TestTrackerLifecycle(t *testing.T) {
	tr := NewTracker()
	id := tr.AllocateID()
	tr.Entered(id, 10)
	r := tr.Record(id)
	if r.IsActive() {
		t.Fatal("listening process claims active")
	}
	tr.Activated(id, 15)
	if !r.IsActive() {
		t.Fatal("activated process not active")
	}
	if tr.ActiveCount() != 1 {
		t.Fatalf("ActiveCount = %d, want 1", tr.ActiveCount())
	}
	tr.Departed(id, 20)
	if r.IsActive() || tr.ActiveCount() != 0 || tr.PresentCount() != 0 {
		t.Fatal("departed process still counted")
	}
	completed, pending, abandoned := tr.JoinStats()
	if completed != 1 || pending != 0 || abandoned != 0 {
		t.Fatalf("JoinStats = %d,%d,%d", completed, pending, abandoned)
	}
}

func TestTrackerDoubleEventsAreIdempotent(t *testing.T) {
	tr := NewTracker()
	id := tr.AllocateID()
	tr.Entered(id, 0)
	tr.Activated(id, 5)
	tr.Activated(id, 9) // ignored
	if tr.Record(id).Activated != 5 {
		t.Fatal("second Activated overwrote first")
	}
	tr.Departed(id, 10)
	tr.Departed(id, 20) // ignored
	if tr.Record(id).Departed != 10 {
		t.Fatal("second Departed overwrote first")
	}
}

func TestActiveAtAndWindow(t *testing.T) {
	tr := NewTracker()
	// p1 active [0, 100); p2 active [10, 30); p3 never activates.
	a := tr.AllocateID()
	tr.Entered(a, 0)
	tr.Activated(a, 0)
	tr.Departed(a, 100)
	b := tr.AllocateID()
	tr.Entered(b, 5)
	tr.Activated(b, 10)
	tr.Departed(b, 30)
	c := tr.AllocateID()
	tr.Entered(c, 8)
	tr.Departed(c, 60)

	if got := tr.ActiveAt(20); got != 2 {
		t.Fatalf("ActiveAt(20) = %d, want 2", got)
	}
	if got := tr.ActiveAt(40); got != 1 {
		t.Fatalf("ActiveAt(40) = %d, want 1", got)
	}
	// Window [20, 35]: p2 leaves at 30, so only p1 covers it.
	if got := tr.ActiveWindow(20, 15); got != 1 {
		t.Fatalf("ActiveWindow(20,15) = %d, want 1", got)
	}
	// Window [15, 25] fully inside both.
	if got := tr.ActiveWindow(15, 10); got != 2 {
		t.Fatalf("ActiveWindow(15,10) = %d, want 2", got)
	}
}

func TestWindowScanMatchesBruteForce(t *testing.T) {
	tr := NewTracker()
	rng := sim.NewRNG(42)
	for i := 0; i < 40; i++ {
		id := tr.AllocateID()
		enter := sim.Time(rng.Int63n(200))
		tr.Entered(id, enter)
		if rng.Bool(0.8) {
			tr.Activated(id, enter.Add(sim.Duration(rng.Int63n(10))))
		}
		if rng.Bool(0.7) {
			tr.Departed(id, enter.Add(sim.Duration(10+rng.Int63n(150))))
		}
	}
	const w = 15
	minFast, maxFast := tr.WindowScan(0, 250, w)
	minSlow, maxSlow := 1<<30, 0
	for tau := sim.Time(0); tau <= 250; tau++ {
		v := tr.ActiveWindow(tau, w)
		if v < minSlow {
			minSlow = v
		}
		if v > maxSlow {
			maxSlow = v
		}
	}
	if minFast != minSlow || maxFast != maxSlow {
		t.Fatalf("WindowScan = (%d,%d), brute force = (%d,%d)", minFast, maxFast, minSlow, maxSlow)
	}
}

// Property: WindowScan agrees with ActiveWindow point queries on random
// lifecycles.
func TestWindowScanProperty(t *testing.T) {
	f := func(seed uint64) bool {
		tr := NewTracker()
		rng := sim.NewRNG(seed)
		n := 5 + rng.Intn(30)
		for i := 0; i < n; i++ {
			id := tr.AllocateID()
			enter := sim.Time(rng.Int63n(100))
			tr.Entered(id, enter)
			if rng.Bool(0.9) {
				tr.Activated(id, enter.Add(sim.Duration(rng.Int63n(5))))
			}
			if rng.Bool(0.6) {
				tr.Departed(id, enter.Add(sim.Duration(5+rng.Int63n(80))))
			}
		}
		w := sim.Duration(rng.Int63n(20))
		minFast, _ := tr.WindowScan(0, 150, w)
		for tau := sim.Time(0); tau <= 150; tau += 7 {
			if tr.ActiveWindow(tau, w) < minFast {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the engine keeps |present| = n at every tick boundary for any
// (seed, rate).
func TestPopulationInvariantProperty(t *testing.T) {
	f := func(seed uint64, rateRaw uint8) bool {
		rate := float64(rateRaw%50) / 100.0 // 0 .. 0.49
		sched := sim.NewScheduler()
		tr := NewTracker()
		const n = 20
		bootstrapped(tr, n)
		host := &fakeHost{t: tr, sched: sched, joinLag: 2}
		eng, err := NewEngine(Config{N: n, Rate: rate}, sched, sim.NewRNG(seed), host, tr)
		if err != nil {
			return false
		}
		eng.Start()
		for i := 0; i < 50; i++ {
			if err := sched.RunFor(1); err != nil {
				return false
			}
			if tr.PresentCount() != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinLatencies(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 3; i++ {
		id := tr.AllocateID()
		tr.Entered(id, sim.Time(i*10))
		tr.Activated(id, sim.Time(i*10+5))
	}
	lat := tr.JoinLatencies()
	if len(lat) != 3 {
		t.Fatalf("latencies = %d, want 3", len(lat))
	}
	for _, d := range lat {
		if d != 5 {
			t.Fatalf("latency = %d, want 5", d)
		}
	}
}

func TestAllocateIDNeverReuses(t *testing.T) {
	tr := NewTracker()
	seen := make(map[core.ProcessID]bool)
	for i := 0; i < 1000; i++ {
		id := tr.AllocateID()
		if seen[id] {
			t.Fatalf("ID %v reused", id)
		}
		seen[id] = true
	}
}
