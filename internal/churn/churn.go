// Package churn implements the paper's constant-churn dynamicity model
// (§2.1): the system size stays n while, at every time unit, c·n processes
// leave and c·n new processes enter (infinite-arrival model — fresh
// identities, never reused). It also provides the active-set accounting
// used to check Lemma 2 (|A(τ, τ+3δ)| ≥ n(1 − 3δc)).
package churn

import (
	"fmt"

	"churnreg/internal/core"
	"churnreg/internal/sim"
)

// RemovePolicy selects which present process leaves at a churn event.
type RemovePolicy int

const (
	// RemoveRandom removes a uniformly random eligible process.
	RemoveRandom RemovePolicy = iota + 1
	// RemoveOldestActive removes the longest-active eligible process —
	// the worst case Lemma 2 reasons about ("the nc processes that left
	// were present at time τ").
	RemoveOldestActive
	// RemoveNewest removes the most recently entered eligible process,
	// starving joins (adversarial for liveness).
	RemoveNewest
)

// String names the policy.
func (p RemovePolicy) String() string {
	switch p {
	case RemoveRandom:
		return "random"
	case RemoveOldestActive:
		return "oldest-active"
	case RemoveNewest:
		return "newest"
	default:
		return fmt.Sprintf("RemovePolicy(%d)", int(p))
	}
}

// Host is the system the engine drives. internal/dynsys implements it.
type Host interface {
	// SpawnProcess creates a fresh process (new identity), attaches it to
	// the network, and starts its join operation.
	SpawnProcess() core.ProcessID
	// KillProcess makes the process leave the system immediately.
	KillProcess(id core.ProcessID)
}

// Config parameterizes the engine.
type Config struct {
	// N is the constant system size n.
	N int
	// Rate is the churn rate c: the fraction of the n processes refreshed
	// per time unit. c·n may be < 1; a fractional accumulator preserves
	// the long-run rate.
	Rate float64
	// RateAt, when non-nil, makes churn time-varying: it returns the rate
	// for each time unit (Rate is then only used to decide whether the
	// engine runs at all — set it to any positive value). The paper's
	// model is constant churn; the bursty-churn experiment (E12) uses
	// this to probe its open question about the greatest sustainable c:
	// what matters is the rate within each 3δ window, not the mean.
	RateAt func(now sim.Time) float64
	// Policy selects leavers; default RemoveRandom.
	Policy RemovePolicy
	// MinLifetime, when > 0, exempts processes present for less than this
	// from removal. The eventually synchronous proofs (Lemmas 5–7) assume
	// joiners remain for at least 3δ; experiments set this accordingly.
	MinLifetime sim.Duration
	// Protect, when non-nil, exempts specific processes from removal
	// (e.g. a writer mid-write, matching the liveness assumption that the
	// invoking process does not leave).
	Protect func(core.ProcessID) bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("churn: N = %d, want > 0", c.N)
	}
	if c.Rate < 0 || c.Rate >= 1 {
		return fmt.Errorf("churn: rate = %v, want [0, 1)", c.Rate)
	}
	return nil
}

// Stats reports engine activity.
type Stats struct {
	Joins          uint64
	Leaves         uint64
	SkippedRemoves uint64 // churn events with no eligible victim
}

// Engine replaces c·n processes per time unit. It is driven by the
// scheduler (one event per time unit) and is single-threaded.
type Engine struct {
	cfg     Config
	sched   *sim.Scheduler
	rng     *sim.RNG
	host    Host
	tracker *Tracker
	acc     float64
	stats   Stats
	stopped bool
}

// NewEngine builds an engine. tracker may be shared with the host so that
// eligibility checks see entry/activation times.
func NewEngine(cfg Config, sched *sim.Scheduler, rng *sim.RNG, host Host, tracker *Tracker) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == 0 {
		cfg.Policy = RemoveRandom
	}
	return &Engine{cfg: cfg, sched: sched, rng: rng, host: host, tracker: tracker}, nil
}

// Stats returns engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// Start schedules the per-time-unit churn tick. Call once.
func (e *Engine) Start() {
	if e.cfg.Rate == 0 {
		return
	}
	e.sched.After(1, e.tick)
}

// Stop halts future churn events.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) tick() {
	if e.stopped {
		return
	}
	rate := e.cfg.Rate
	if e.cfg.RateAt != nil {
		rate = e.cfg.RateAt(e.sched.Now())
	}
	e.acc += rate * float64(e.cfg.N)
	for e.acc >= 1 {
		e.acc--
		e.churnOne()
	}
	e.sched.After(1, e.tick)
}

// churnOne performs a single refresh: one leave followed by one join,
// keeping the population at n.
func (e *Engine) churnOne() {
	victim, ok := e.pickVictim()
	if !ok {
		e.stats.SkippedRemoves++
		return
	}
	e.host.KillProcess(victim)
	e.stats.Leaves++
	e.host.SpawnProcess()
	e.stats.Joins++
}

func (e *Engine) pickVictim() (core.ProcessID, bool) {
	now := e.sched.Now()
	eligible := e.tracker.presentFiltered(func(r *Record) bool {
		if e.cfg.MinLifetime > 0 && now.Sub(r.Entered) < e.cfg.MinLifetime {
			return false
		}
		if e.cfg.Protect != nil && e.cfg.Protect(r.ID) {
			return false
		}
		return true
	})
	if len(eligible) == 0 {
		return core.NoProcess, false
	}
	switch e.cfg.Policy {
	case RemoveOldestActive:
		best := -1
		for i, r := range eligible {
			if !r.IsActive() {
				continue
			}
			if best == -1 || r.Activated < eligible[best].Activated {
				best = i
			}
		}
		if best >= 0 {
			return eligible[best].ID, true
		}
		// No active process is eligible; fall back to random so churn
		// keeps flowing (the paper's model always finds leavers).
		return eligible[e.rng.Intn(len(eligible))].ID, true
	case RemoveNewest:
		best := 0
		for i, r := range eligible {
			if r.Entered > eligible[best].Entered {
				best = i
			}
		}
		return eligible[best].ID, true
	default:
		return eligible[e.rng.Intn(len(eligible))].ID, true
	}
}
