package churn

import (
	"math"
	"sort"

	"churnreg/internal/core"
	"churnreg/internal/sim"
)

// NeverDeparted marks a process still in the system at the end of a run.
const NeverDeparted sim.Time = math.MaxInt64

// NeverActivated marks a process whose join never completed.
const NeverActivated sim.Time = math.MaxInt64

// Record is the lifecycle of one process.
type Record struct {
	ID        core.ProcessID
	Entered   sim.Time // begin of join (listening mode starts)
	Activated sim.Time // join returned (active mode); NeverActivated if not
	Departed  sim.Time // left the system; NeverDeparted if still present
	Bootstrap bool     // one of the n initial processes (active at time 0)
}

// IsActive reports whether the process completed its join and has not left.
func (r *Record) IsActive() bool {
	return r.Activated != NeverActivated && r.Departed == NeverDeparted
}

// ActiveDuring reports whether the process was active throughout [from, to]
// — the membership test of the paper's A(τ1, τ2).
func (r *Record) ActiveDuring(from, to sim.Time) bool {
	return r.Activated != NeverActivated && r.Activated <= from && r.Departed > to
}

// Tracker records every process lifecycle in a run. It provides the A(τ)
// and A(τ1, τ2) accounting the paper's lemmas are stated in.
type Tracker struct {
	records map[core.ProcessID]*Record
	order   []core.ProcessID // insertion order, for deterministic iteration
	present map[core.ProcessID]*Record
	nextID  core.ProcessID
}

// NewTracker returns an empty tracker. IDs start at 1.
func NewTracker() *Tracker {
	return &Tracker{
		records: make(map[core.ProcessID]*Record),
		present: make(map[core.ProcessID]*Record),
	}
}

// AllocateID returns a fresh never-used identity (infinite arrival model).
func (t *Tracker) AllocateID() core.ProcessID {
	t.nextID++
	return t.nextID
}

// Entered records that id entered the system at now (join begins).
func (t *Tracker) Entered(id core.ProcessID, now sim.Time) {
	r := &Record{ID: id, Entered: now, Activated: NeverActivated, Departed: NeverDeparted}
	t.records[id] = r
	t.order = append(t.order, id)
	t.present[id] = r
}

// Activated records that id's join returned at now.
func (t *Tracker) Activated(id core.ProcessID, now sim.Time) {
	if r, ok := t.records[id]; ok && r.Activated == NeverActivated {
		r.Activated = now
	}
}

// MarkBootstrap flags id as one of the initial processes; its (zero) join
// latency is excluded from JoinLatencies.
func (t *Tracker) MarkBootstrap(id core.ProcessID) {
	if r, ok := t.records[id]; ok {
		r.Bootstrap = true
	}
}

// Departed records that id left the system at now.
func (t *Tracker) Departed(id core.ProcessID, now sim.Time) {
	if r, ok := t.records[id]; ok && r.Departed == NeverDeparted {
		r.Departed = now
		delete(t.present, id)
	}
}

// Record returns the lifecycle record for id (nil if unknown).
func (t *Tracker) Record(id core.ProcessID) *Record {
	return t.records[id]
}

// Records returns all lifecycle records in entry order. The slice is fresh;
// the records it points to are live (do not mutate).
func (t *Tracker) Records() []*Record {
	out := make([]*Record, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, t.records[id])
	}
	return out
}

// PresentCount returns the number of processes currently in the system.
func (t *Tracker) PresentCount() int { return len(t.present) }

// ActiveCount returns |A(now)| for the current instant.
func (t *Tracker) ActiveCount() int {
	n := 0
	for _, r := range t.present {
		if r.IsActive() {
			n++
		}
	}
	return n
}

// ActiveIDs returns the sorted identities of currently active processes.
func (t *Tracker) ActiveIDs() []core.ProcessID {
	ids := make([]core.ProcessID, 0, len(t.present))
	for id, r := range t.present {
		if r.IsActive() {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// presentFiltered returns present records satisfying keep, in entry order.
func (t *Tracker) presentFiltered(keep func(*Record) bool) []*Record {
	out := make([]*Record, 0, len(t.present))
	for _, id := range t.order {
		r, ok := t.present[id]
		if !ok {
			continue
		}
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// ActiveAt returns |A(τ)|: processes whose join had returned by τ and that
// had not left at τ.
func (t *Tracker) ActiveAt(tau sim.Time) int {
	n := 0
	for _, id := range t.order {
		r := t.records[id]
		if r.Activated != NeverActivated && r.Activated <= tau && r.Departed > tau {
			n++
		}
	}
	return n
}

// ActiveWindow returns |A(τ, τ+w)|: processes active during the whole
// window starting at τ.
func (t *Tracker) ActiveWindow(tau sim.Time, w sim.Duration) int {
	n := 0
	for _, id := range t.order {
		if t.records[id].ActiveDuring(tau, tau.Add(w)) {
			n++
		}
	}
	return n
}

// WindowScan computes min and max over τ ∈ [from, to] of |A(τ, τ+w)| with a
// difference-array sweep: a record covers window τ iff
// τ ∈ [Activated, Departed − w). Runs in O(records + horizon).
func (t *Tracker) WindowScan(from, to sim.Time, w sim.Duration) (minA, maxA int) {
	if to < from {
		return 0, 0
	}
	horizon := int64(to-from) + 1
	diff := make([]int64, horizon+1)
	for _, id := range t.order {
		r := t.records[id]
		if r.Activated == NeverActivated {
			continue
		}
		// Window [τ, τ+w] is covered iff Activated <= τ and Departed > τ+w.
		lo := int64(r.Activated - from)
		var hi int64
		if r.Departed == NeverDeparted {
			hi = horizon - 1
		} else {
			hi = int64(r.Departed-from) - int64(w) - 1
		}
		if lo < 0 {
			lo = 0
		}
		if hi >= horizon {
			hi = horizon - 1
		}
		if lo > hi {
			continue
		}
		diff[lo]++
		diff[hi+1]--
	}
	cur := int64(0)
	minA, maxA = math.MaxInt, 0
	for i := int64(0); i < horizon; i++ {
		cur += diff[i]
		if int(cur) < minA {
			minA = int(cur)
		}
		if int(cur) > maxA {
			maxA = int(cur)
		}
	}
	if minA == math.MaxInt {
		minA = 0
	}
	return minA, maxA
}

// MinActiveAt computes the minimum of |A(τ)| over τ ∈ [from, to]; it is
// WindowScan with a zero-width window.
func (t *Tracker) MinActiveAt(from, to sim.Time) int {
	minA, _ := t.WindowScan(from, to, 0)
	return minA
}

// JoinLatencies returns, for every non-bootstrap process that activated,
// the duration from entry to activation. Bootstrap processes are active by
// definition and would skew the distribution with zeros.
func (t *Tracker) JoinLatencies() []sim.Duration {
	var out []sim.Duration
	for _, id := range t.order {
		r := t.records[id]
		if !r.Bootstrap && r.Activated != NeverActivated {
			out = append(out, r.Activated.Sub(r.Entered))
		}
	}
	return out
}

// JoinStats summarizes join outcomes: completed joins, joins still pending
// among present processes, and joins cut short by departure.
func (t *Tracker) JoinStats() (completed, pending, abandoned int) {
	for _, id := range t.order {
		r := t.records[id]
		switch {
		case r.Activated != NeverActivated:
			completed++
		case r.Departed == NeverDeparted:
			pending++
		default:
			abandoned++
		}
	}
	return completed, pending, abandoned
}
