// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate every experiment in this repository runs on:
// a virtual clock whose domain is the set of non-negative integers (matching
// the paper's time model), a binary-heap event scheduler with stable FIFO
// ordering for simultaneous events, and deterministic timers.
//
// All randomness used by simulations comes from the seeded generators in
// rng.go so that every run is exactly reproducible.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Time is a point in virtual time. The paper's time model is the set of
// positive integers; one Time unit corresponds to one paper time unit.
type Time int64

// Duration is a span of virtual time.
type Duration int64

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String renders the time as a plain integer tick count.
func (t Time) String() string { return fmt.Sprintf("t=%d", int64(t)) }

// ErrStopped is returned by Run variants when StopNow interrupted the run.
var ErrStopped = errors.New("sim: stopped")

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant so execution order is the scheduling order.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; protocol code driven by it therefore needs no locks,
// which is what makes simulated runs deterministic.
type Scheduler struct {
	now      Time
	queue    eventQueue
	seq      uint64
	executed uint64
	stopped  bool
}

// NewScheduler returns a scheduler positioned at time 0 with an empty queue.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// Executed returns the total number of events executed so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// At schedules fn to run at time t. Scheduling in the past (before Now) is
// clamped to Now: the event runs as soon as the scheduler resumes, which is
// the only sensible semantics for a causal simulation.
func (s *Scheduler) At(t Time, fn func()) {
	if fn == nil {
		return
	}
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d time units from now. Negative durations are
// clamped to zero.
func (s *Scheduler) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now.Add(d), fn)
}

// StopNow aborts the current Run call after the in-flight event completes.
func (s *Scheduler) StopNow() { s.stopped = true }

// Step executes the single next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*event)
	s.now = ev.at
	s.executed++
	ev.fn()
	return true
}

// RunUntil executes events in timestamp order until the queue would advance
// the clock beyond deadline, leaving later events pending. The clock is left
// at deadline (or at the last executed event if the queue drained first).
// It returns ErrStopped if StopNow was called during execution.
func (s *Scheduler) RunUntil(deadline Time) error {
	s.stopped = false
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
		if s.stopped {
			return ErrStopped
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
	return nil
}

// RunFor executes events for d time units from the current instant.
func (s *Scheduler) RunFor(d Duration) error {
	return s.RunUntil(s.now.Add(d))
}

// Drain executes events until the queue is empty or maxEvents have run.
// It returns the number of events executed and ErrStopped if interrupted.
// A maxEvents of 0 means no cap.
func (s *Scheduler) Drain(maxEvents uint64) (uint64, error) {
	s.stopped = false
	var ran uint64
	for len(s.queue) > 0 {
		if maxEvents > 0 && ran >= maxEvents {
			return ran, nil
		}
		s.Step()
		ran++
		if s.stopped {
			return ran, ErrStopped
		}
	}
	return ran, nil
}

// NextEventTime returns the timestamp of the earliest pending event.
// ok is false when the queue is empty.
func (s *Scheduler) NextEventTime() (t Time, ok bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}
