package sim

// RNG is a deterministic SplitMix64 pseudo-random generator.
//
// Simulations must not use math/rand global state: every source of
// randomness is an explicitly seeded RNG (or a fork of one), so that a run
// is a pure function of its configuration. SplitMix64 passes BigCrush for
// the uses here (delay jitter, victim selection, workload mixing) and forks
// into statistically independent streams.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent streams; the zero seed is valid.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Fork derives a new generator whose stream is independent of the parent's
// subsequent output. Used to give each subsystem (network, churn, workload)
// its own stream so adding draws in one does not perturb the others.
func (r *RNG) Fork() *RNG {
	return &RNG{state: r.Uint64()}
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0,
// matching math/rand semantics; callers validate n at configuration time.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniformly distributed int64 in [0, n).
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// DurationBetween returns a uniformly distributed Duration in [lo, hi].
// If hi <= lo it returns lo.
func (r *RNG) DurationBetween(lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + Duration(r.Int63n(int64(hi-lo)+1))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}
