package sim

import (
	"testing"
	"testing/quick"
)

func TestSchedulerRunsInTimestampOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	if err := s.RunUntil(100); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
}

func TestSchedulerFIFOForSimultaneousEvents(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	if err := s.RunUntil(5); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events ran out of scheduling order: %v", got)
		}
	}
}

func TestSchedulerClockAdvancesToEventTime(t *testing.T) {
	s := NewScheduler()
	var at Time
	s.At(42, func() { at = s.Now() })
	if err := s.RunUntil(100); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if at != 42 {
		t.Fatalf("Now() inside event = %v, want 42", at)
	}
	if s.Now() != 100 {
		t.Fatalf("Now() after RunUntil = %v, want 100", s.Now())
	}
}

func TestSchedulerPastEventClampsToNow(t *testing.T) {
	s := NewScheduler()
	s.At(50, func() {
		s.At(10, func() {
			if s.Now() != 50 {
				t.Errorf("past-scheduled event ran at %v, want 50", s.Now())
			}
		})
	})
	if err := s.RunUntil(60); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if s.Executed() != 2 {
		t.Fatalf("executed %d events, want 2", s.Executed())
	}
}

func TestSchedulerAfterUsesCurrentTime(t *testing.T) {
	s := NewScheduler()
	var ranAt Time
	s.At(10, func() {
		s.After(5, func() { ranAt = s.Now() })
	})
	if err := s.RunUntil(20); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if ranAt != 15 {
		t.Fatalf("After(5) from t=10 ran at %v, want 15", ranAt)
	}
}

func TestSchedulerRunUntilLeavesLaterEventsPending(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.At(100, func() { ran = true })
	if err := s.RunUntil(50); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if ran {
		t.Fatal("event at t=100 ran during RunUntil(50)")
	}
	if s.Len() != 1 {
		t.Fatalf("pending events = %d, want 1", s.Len())
	}
	next, ok := s.NextEventTime()
	if !ok || next != 100 {
		t.Fatalf("NextEventTime = %v, %v; want 100, true", next, ok)
	}
}

func TestSchedulerStopNow(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 0; i < 10; i++ {
		s.At(Time(i), func() {
			count++
			if count == 3 {
				s.StopNow()
			}
		})
	}
	err := s.RunUntil(100)
	if err != ErrStopped {
		t.Fatalf("RunUntil error = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("executed %d events before stop, want 3", count)
	}
}

func TestSchedulerDrain(t *testing.T) {
	s := NewScheduler()
	count := 0
	s.At(5, func() {
		count++
		s.After(5, func() { count++ })
	})
	ran, err := s.Drain(0)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if ran != 2 || count != 2 {
		t.Fatalf("Drain ran %d events (count=%d), want 2", ran, count)
	}
}

func TestSchedulerDrainCap(t *testing.T) {
	s := NewScheduler()
	var reschedule func()
	n := 0
	reschedule = func() {
		n++
		s.After(1, reschedule)
	}
	s.After(1, reschedule)
	ran, err := s.Drain(25)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if ran != 25 || n != 25 {
		t.Fatalf("Drain(25) ran %d events (n=%d), want 25", ran, n)
	}
}

func TestSchedulerNilFuncIgnored(t *testing.T) {
	s := NewScheduler()
	s.At(1, nil)
	if s.Len() != 0 {
		t.Fatal("nil event was enqueued")
	}
}

func TestSchedulerRunFor(t *testing.T) {
	s := NewScheduler()
	if err := s.RunFor(10); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if s.Now() != 10 {
		t.Fatalf("Now = %v after RunFor(10), want 10", s.Now())
	}
	if err := s.RunFor(15); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if s.Now() != 25 {
		t.Fatalf("Now = %v after second RunFor(15), want 25", s.Now())
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(10).Add(5)
	if tm != 15 {
		t.Fatalf("Add = %v, want 15", tm)
	}
	if d := Time(15).Sub(10); d != 5 {
		t.Fatalf("Sub = %v, want 5", d)
	}
	if s := Time(7).String(); s != "t=7" {
		t.Fatalf("String = %q", s)
	}
}

// Property: events always execute in non-decreasing timestamp order, no
// matter the insertion order.
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(stamps []uint16) bool {
		if len(stamps) == 0 {
			return true
		}
		s := NewScheduler()
		var ran []Time
		for _, st := range stamps {
			at := Time(st)
			s.At(at, func() { ran = append(ran, s.Now()) })
		}
		if err := s.RunUntil(Time(1 << 20)); err != nil {
			return false
		}
		if len(ran) != len(stamps) {
			return false
		}
		for i := 1; i < len(ran); i++ {
			if ran[i] < ran[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seeded RNGs diverged")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("differently seeded RNGs collided %d/100 times", same)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Fork()
	// Consuming child output must not affect parent's future stream.
	ref := NewRNG(7)
	ref.Uint64() // account for the fork's draw
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	for i := 0; i < 100; i++ {
		if parent.Uint64() != ref.Uint64() {
			t.Fatal("fork perturbed parent stream")
		}
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGDurationBetween(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		d := r.DurationBetween(3, 9)
		if d < 3 || d > 9 {
			t.Fatalf("DurationBetween(3,9) = %d out of range", d)
		}
	}
	if d := r.DurationBetween(5, 5); d != 5 {
		t.Fatalf("DurationBetween(5,5) = %d, want 5", d)
	}
	if d := r.DurationBetween(9, 3); d != 9 {
		t.Fatalf("DurationBetween(hi<lo) = %d, want lo=9", d)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

// Property: Perm always yields a valid permutation.
func TestRNGPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(99)
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / trials
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("Bool(0.25) frequency = %v, want ~0.25", frac)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(123)
	const buckets = 10
	counts := make([]int, buckets)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[r.Intn(buckets)]++
	}
	want := trials / buckets
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", i, c, want)
		}
	}
}
