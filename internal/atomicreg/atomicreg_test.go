package atomicreg_test

import (
	"testing"

	"churnreg/internal/atomicreg"
	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/esyncreg"
	"churnreg/internal/netsim"
	"churnreg/internal/sim"
	"churnreg/internal/spec"
)

const delta = 5

func newSystem(t *testing.T, n int, model netsim.DelayModel, churnRate float64) *dynsys.System {
	t.Helper()
	if model == nil {
		model = netsim.SynchronousModel{Delta: delta}
	}
	sys, err := dynsys.New(dynsys.Config{
		N:         n,
		Delta:     delta,
		Model:     model,
		Factory:   atomicreg.Factory(esyncreg.Options{}),
		Seed:      5,
		ChurnRate: churnRate,
		Initial:   core.VersionedValue{Val: 0, SN: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func atNode(t *testing.T, sys *dynsys.System, id core.ProcessID) *atomicreg.Node {
	t.Helper()
	n, ok := sys.Node(id).(*atomicreg.Node)
	if !ok {
		t.Fatalf("node %v is %T", id, sys.Node(id))
	}
	return n
}

func TestWriteThenAtomicRead(t *testing.T) {
	sys := newSystem(t, 5, nil, 0)
	ids := sys.ActiveIDs()
	w := atNode(t, sys, ids[0])
	r := atNode(t, sys, ids[2])
	wrote := false
	if err := w.Write(9, func() { wrote = true }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(20 * delta); err != nil {
		t.Fatal(err)
	}
	if !wrote {
		t.Fatal("write incomplete")
	}
	var got core.VersionedValue
	if err := r.Read(func(v core.VersionedValue) { got = v }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(20 * delta); err != nil {
		t.Fatal(err)
	}
	if got.Val != 9 || got.SN != 1 {
		t.Fatalf("read %v, want ⟨9,#1⟩", got)
	}
	if r.Stats().WriteBacks != 1 {
		t.Fatalf("write-backs = %d, want 1", r.Stats().WriteBacks)
	}
}

func TestReadInstallsValueAtMajority(t *testing.T) {
	// After an atomic read returns v, at least a majority must hold ≥ v
	// — the property that forbids inversions.
	sys := newSystem(t, 5, nil, 0)
	ids := sys.ActiveIDs()
	w := atNode(t, sys, ids[0])
	// Suppress the writer's own WRITE round to most nodes so only the
	// reader's write-back can propagate the value.
	sys.Network().SetDropRule(func(from, to core.ProcessID, m core.Message, _ sim.Time) bool {
		return m.Kind() == core.KindWrite && from == ids[0] && to != ids[0] && to != ids[1]
	})
	werr := make(chan struct{}, 1)
	if err := w.Write(3, func() { werr <- struct{}{} }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(20 * delta); err != nil {
		t.Fatal(err)
	}
	// Write cannot complete (only 2 of 3 acks) — that's fine; the value
	// is at {writer, ids[1]} only. Now an atomic read must both see it
	// (quorum intersects) and install it at a majority.
	sys.Network().SetDropRule(nil)
	r := atNode(t, sys, ids[1])
	var got core.VersionedValue
	if err := r.Read(func(v core.VersionedValue) { got = v }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(20 * delta); err != nil {
		t.Fatal(err)
	}
	if got.SN != 1 {
		t.Fatalf("read %v, want the in-flight write's sn 1", got)
	}
	holders := 0
	for _, id := range sys.Network().PresentIDs() {
		if sys.Node(id).Snapshot().SN >= 1 {
			holders++
		}
	}
	if holders < 3 {
		t.Fatalf("write-back reached %d nodes, want majority ≥ 3", holders)
	}
}

func TestAtomicReadGuards(t *testing.T) {
	sys := newSystem(t, 5, nil, 0)
	_, joiner := sys.Spawn()
	j := joiner.(*atomicreg.Node)
	if err := j.Read(nil); err != core.ErrNotActive {
		t.Fatalf("read while joining = %v, want ErrNotActive", err)
	}
	n := atNode(t, sys, sys.ActiveIDs()[0])
	if err := n.Read(nil); err != nil {
		t.Fatal(err)
	}
	if err := n.Read(nil); err != core.ErrOpInProgress {
		t.Fatalf("second read = %v, want ErrOpInProgress", err)
	}
}

func TestJoinDelegates(t *testing.T) {
	sys := newSystem(t, 5, nil, 0)
	_, node := sys.Spawn()
	joined := false
	node.(*atomicreg.Node).OnJoined(func() { joined = true })
	if err := sys.RunFor(10 * delta); err != nil {
		t.Fatal(err)
	}
	if !joined || !node.Active() {
		t.Fatal("join did not complete through the wrapper")
	}
}

func TestNoInversionOnAdversarialSchedule(t *testing.T) {
	// The E11 schedule: a write propagates to one reader fast and to the
	// rest slowly; reader A (fast path) then reader B (slow path) read
	// sequentially. The regular register inverts; the atomic one must not.
	history, invs := runScriptedReaders(t, atomicreg.Factory(esyncreg.Options{}))
	if len(history.CheckRegular()) != 0 {
		t.Fatalf("atomic run not even regular: %v", history.CheckRegular()[0])
	}
	if invs != 0 {
		t.Fatalf("atomic register produced %d new/old inversions", invs)
	}
}

func TestRegularBaselineInvertsOnSameSchedule(t *testing.T) {
	history, invs := runScriptedReaders(t, esyncreg.Factory(esyncreg.Options{}))
	if len(history.CheckRegular()) != 0 {
		t.Fatalf("regular run violated regularity: %v", history.CheckRegular()[0])
	}
	if invs == 0 {
		t.Fatal("schedule failed to invert the regular register; scenario broken")
	}
}

// runScriptedReaders executes the shared E11 schedule against a factory
// and reports the history plus inversion count.
func runScriptedReaders(t *testing.T, factory core.NodeFactory) (*spec.History, int) {
	t.Helper()
	const slow = 200
	// p1 writer; p2 reader A; p3 reader B; p4, p5 replicas.
	model := netsim.ScriptedDelayModel{
		Base: netsim.FixedDelayModel{D: 1},
		Overrides: map[netsim.Route]sim.Duration{
			// The writer's WRITE reaches only A quickly.
			{From: 1, Kind: core.KindWrite}:        slow,
			{From: 1, To: 2, Kind: core.KindWrite}: 1,
			// A's quorum hears updated nodes fast; B's hears stale nodes
			// fast and updated nodes slowly.
			{From: 3, To: 2, Kind: core.KindReply}: slow,
			{From: 5, To: 2, Kind: core.KindReply}: slow,
			{From: 1, To: 3, Kind: core.KindReply}: slow,
			{From: 2, To: 3, Kind: core.KindReply}: slow,
		},
	}
	sys, err := dynsys.New(dynsys.Config{
		N:       5,
		Delta:   delta,
		Model:   model,
		Factory: factory,
		Seed:    5,
		Initial: core.VersionedValue{Val: 0, SN: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	history := spec.NewHistory(core.VersionedValue{Val: 0, SN: 0})

	writer := sys.Node(1).(core.Writer)
	wOp := history.BeginWrite(1, sys.Now())
	if err := writer.Write(1, func() {
		history.CompleteWrite(wOp, sys.Now(), sys.Node(1).Snapshot())
	}); err != nil {
		t.Fatal(err)
	}
	// Let the embedded read + fast WRITE to A land.
	if err := sys.RunFor(6); err != nil {
		t.Fatal(err)
	}
	read := func(id core.ProcessID) {
		op := history.BeginRead(id, sys.Now())
		r := sys.Node(id).(core.Reader)
		if err := r.Read(func(v core.VersionedValue) {
			history.CompleteRead(op, sys.Now(), v)
		}); err != nil {
			t.Fatal(err)
		}
		// Run until this read completes (sequential reads).
		for i := 0; i < 4*slow && !op.Completed; i++ {
			if err := sys.RunFor(1); err != nil {
				t.Fatal(err)
			}
		}
		if !op.Completed {
			t.Fatalf("read by %v never completed", id)
		}
	}
	read(2) // A
	// Strictly separate the reads in real time: an inversion requires
	// r1 to precede r2, not merely abut it at the same instant.
	if err := sys.RunFor(2); err != nil {
		t.Fatal(err)
	}
	read(3) // B
	if err := sys.RunFor(2 * slow); err != nil {
		t.Fatal(err)
	}
	return history, len(history.FindInversions())
}
