// Package atomicreg upgrades the eventually synchronous regular register
// to an ATOMIC one using the classic read-write-back construction (the
// same device that turns ABD's regular reads atomic, cf. the paper's
// references [3],[10]).
//
// The paper builds regular registers because they are achievable under
// churn and cheaper; its introduction spells out the one behaviour that
// separates them from atomic registers — the new/old inversion. This
// package closes that gap: a read first runs the underlying quorum read,
// then WRITES THE VALUE BACK to a majority before returning. Once a read
// returns v, a majority stores at least v, so every later read's quorum
// intersects it and returns ≥ v: no inversion can form. Experiment E11
// demonstrates the difference on a scripted schedule.
//
// The construction piggybacks entirely on the regular protocol's wire
// messages: the write-back is an ordinary WRITE broadcast (same sequence
// number, so it never conflicts with the single writer's discipline), and
// replicas ACK it through the ordinary Figure 6 lines 06-08 path. Cost:
// one extra broadcast round per read.
package atomicreg

import (
	"churnreg/internal/core"
	"churnreg/internal/esyncreg"
)

// Node wraps an eventually synchronous node, upgrading Read to atomic
// semantics via write-back. Writes and joins delegate unchanged.
//
// Unlike the wrapped register — whose operation table pipelines freely —
// this wrapper keeps the paper-era one-read-at-a-time discipline: its
// single write-back slot cannot disambiguate concurrent write-back ACK
// quorums, so a second Read while one is in flight (either phase)
// returns ErrOpInProgress. The pipelined path is the regular register;
// the atomic upgrade is the sequential demonstration of the difference.
type Node struct {
	env   core.Env
	inner *esyncreg.Node

	// reading marks a Read in its quorum phase (before the write-back).
	reading bool
	// Write-back round state.
	wbActive bool
	wbSN     core.SeqNum
	wbAcks   map[core.ProcessID]bool
	wbValue  core.VersionedValue
	wbDone   func(core.VersionedValue)

	stats Stats
}

// Stats counts write-back activity.
type Stats struct {
	Reads          uint64
	WriteBacks     uint64 // write-back rounds started (== reads)
	WriteBackAcked uint64 // ACKs consumed by write-backs
}

// New builds an atomic node over a fresh inner regular node.
func New(env core.Env, sc core.SpawnContext, opts esyncreg.Options) *Node {
	return &Node{
		env:    env,
		inner:  esyncreg.New(env, sc, opts),
		wbAcks: make(map[core.ProcessID]bool),
	}
}

// Factory returns a core.NodeFactory for the atomic register.
func Factory(opts esyncreg.Options) core.NodeFactory {
	return func(env core.Env, sc core.SpawnContext) core.Node {
		return New(env, sc, opts)
	}
}

// Compile-time interface checks.
var (
	_ core.Node   = (*Node)(nil)
	_ core.Reader = (*Node)(nil)
	_ core.Writer = (*Node)(nil)
	_ core.Joiner = (*Node)(nil)
)

func (n *Node) majority() int { return n.env.SystemSize()/2 + 1 }

// Start implements core.Node.
func (n *Node) Start() { n.inner.Start() }

// Active implements core.Node.
func (n *Node) Active() bool { return n.inner.Active() }

// Snapshot implements core.Node.
func (n *Node) Snapshot() core.VersionedValue { return n.inner.Snapshot() }

// OnJoined implements core.Joiner.
func (n *Node) OnJoined(done func()) { n.inner.OnJoined(done) }

// Write implements core.Writer (unchanged from the regular protocol —
// writes already install their value at a majority).
func (n *Node) Write(v core.Value, done func()) error {
	return n.inner.Write(v, done)
}

// Stats returns write-back counters.
func (n *Node) Stats() Stats { return n.stats }

// Read implements core.Reader with atomic semantics: quorum read, then
// write the result back to a majority, then return.
func (n *Node) Read(done func(core.VersionedValue)) error {
	if n.reading || n.wbActive {
		return core.ErrOpInProgress
	}
	err := n.inner.Read(func(v core.VersionedValue) {
		n.reading = false
		n.startWriteBack(v, done)
	})
	if err != nil {
		return err
	}
	n.reading = true
	n.stats.Reads++
	return nil
}

// startWriteBack broadcasts the read value and waits for a majority of
// ACKs before reporting the read complete.
func (n *Node) startWriteBack(v core.VersionedValue, done func(core.VersionedValue)) {
	n.stats.WriteBacks++
	n.wbActive = true
	n.wbSN = v.SN
	n.wbValue = v
	n.wbAcks = make(map[core.ProcessID]bool)
	n.wbDone = done
	// An ordinary WRITE: replicas apply it if newer and ACK it in all
	// cases (Figure 6 lines 06-08), which is exactly what a write-back
	// needs. It reuses the writer's sequence number, so the single-writer
	// ordering is untouched.
	n.env.Broadcast(core.WriteMsg{From: n.env.ID(), Value: v})
}

func (n *Node) checkWriteBack() {
	if !n.wbActive || len(n.wbAcks) < n.majority() {
		return
	}
	n.wbActive = false
	done := n.wbDone
	n.wbDone = nil
	if done != nil {
		done(n.wbValue)
	}
}

// Deliver implements core.Node: write-back ACKs are consumed here; all
// other traffic flows to the inner regular node. The atomic upgrade is
// exposed for the default register only, so only key-0 ACKs are eligible.
// While a write-back is in flight the inner node is neither reading nor
// writing key 0 (this wrapper's operations are sequential), so a key-0
// ACK matching wbSN can only belong to the write-back.
func (n *Node) Deliver(from core.ProcessID, m core.Message) {
	if ack, ok := m.(core.AckMsg); ok && ack.Reg == core.DefaultRegister && n.wbActive && ack.SN == n.wbSN {
		n.stats.WriteBackAcked++
		n.wbAcks[from] = true
		n.checkWriteBack()
		return
	}
	n.inner.Deliver(from, m)
}
