package trace_test

import (
	"strings"
	"testing"

	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/netsim"
	"churnreg/internal/syncreg"
	"churnreg/internal/trace"
)

func newTracedSystem(t *testing.T, log *trace.Log) *dynsys.System {
	t.Helper()
	sys, err := dynsys.New(dynsys.Config{
		N:       3,
		Delta:   5,
		Model:   netsim.SynchronousModel{Delta: 5},
		Factory: syncreg.Factory(syncreg.Options{}),
		Seed:    1,
		Initial: core.VersionedValue{Val: 0, SN: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	trace.Attach(sys, log)
	return sys
}

func TestTimelineCapturesJoinSequence(t *testing.T) {
	log := trace.New(0)
	sys := newTracedSystem(t, log)
	id, _ := sys.Spawn()
	if err := sys.RunFor(20); err != nil {
		t.Fatal(err)
	}
	// The joiner must appear as: enter, INQUIRY sends, REPLY deliveries,
	// active.
	var sawEnter, sawInquiry, sawReply, sawActive bool
	for _, e := range log.Events() {
		switch {
		case e.Kind == trace.KindEnter && e.Proc == id:
			sawEnter = true
		case e.Kind == trace.KindSend && e.Proc == id && e.Msg == core.KindInquiry:
			sawInquiry = true
		case e.Kind == trace.KindDeliver && e.Peer == id && e.Msg == core.KindReply:
			sawReply = true
		case e.Kind == trace.KindActive && e.Proc == id:
			sawActive = true
		}
	}
	if !sawEnter || !sawInquiry || !sawReply || !sawActive {
		t.Fatalf("timeline missing join phases: enter=%v inquiry=%v reply=%v active=%v\n%s",
			sawEnter, sawInquiry, sawReply, sawActive, log.RenderString())
	}
}

func TestTimelineCapturesDeparture(t *testing.T) {
	log := trace.New(0)
	sys := newTracedSystem(t, log)
	sys.KillProcess(2)
	if log.CountKind(trace.KindLeave) != 1 {
		t.Fatalf("leave events = %d, want 1", log.CountKind(trace.KindLeave))
	}
}

func TestTimelineCapturesDrops(t *testing.T) {
	log := trace.New(0)
	sys := newTracedSystem(t, log)
	writer := sys.Node(1).(*syncreg.Node)
	if err := writer.Write(1, nil); err != nil {
		t.Fatal(err)
	}
	sys.KillProcess(3) // in-flight WRITE to p3 drops
	if err := sys.RunFor(20); err != nil {
		t.Fatal(err)
	}
	if log.CountKind(trace.KindDrop) == 0 {
		t.Fatalf("no drop recorded:\n%s", log.RenderString())
	}
}

func TestLogCapTruncates(t *testing.T) {
	log := trace.New(5)
	sys := newTracedSystem(t, log)
	writer := sys.Node(1).(*syncreg.Node)
	for i := 0; i < 5; i++ {
		if err := writer.Write(core.Value(i), nil); err != nil {
			t.Fatal(err)
		}
		if err := sys.RunFor(10); err != nil {
			t.Fatal(err)
		}
	}
	if log.Len() != 5 {
		t.Fatalf("stored = %d, want cap 5", log.Len())
	}
	if log.Truncated() == 0 {
		t.Fatal("no truncation counted")
	}
	if !strings.Contains(log.RenderString(), "truncated") {
		t.Fatal("render does not mention truncation")
	}
}

func TestFilterAndNote(t *testing.T) {
	log := trace.New(0)
	log.Note(7, 3, "checkpoint %d", 1)
	log.Append(trace.Event{At: 8, Kind: trace.KindSend, Proc: 1, Peer: 2, Msg: core.KindAck})
	notes := log.Filter(func(e trace.Event) bool { return e.Kind == trace.KindNote })
	if len(notes) != 1 || notes[0].Detail != "checkpoint 1" {
		t.Fatalf("notes = %+v", notes)
	}
	if !strings.Contains(notes[0].String(), "checkpoint 1") {
		t.Fatalf("note render = %q", notes[0].String())
	}
}

func TestEventStrings(t *testing.T) {
	cases := []trace.Event{
		{At: 1, Kind: trace.KindSend, Proc: 1, Peer: 2, Msg: core.KindWrite},
		{At: 2, Kind: trace.KindDeliver, Proc: 1, Peer: 2, Msg: core.KindWrite},
		{At: 3, Kind: trace.KindDrop, Proc: 1, Peer: 2, Msg: core.KindAck},
		{At: 4, Kind: trace.KindEnter, Proc: 5},
		{At: 5, Kind: trace.KindActive, Proc: 5},
		{At: 6, Kind: trace.KindLeave, Proc: 5, Detail: "churn"},
	}
	for _, e := range cases {
		if e.String() == "" {
			t.Fatalf("empty render for %+v", e)
		}
	}
	if trace.KindSend.String() != "send" || trace.KindNote.String() != "note" {
		t.Fatal("kind names wrong")
	}
}
