package trace

import (
	"churnreg/internal/core"
	"churnreg/internal/dynsys"
)

// Attach wires a system's network and lifecycle events into the log:
// every send/deliver/drop, enter, activation, and departure appears on the
// timeline. Call before running the simulation.
func Attach(sys *dynsys.System, l *Log) {
	sys.Network().SetTrace(NetTap(l))
	sys.OnSpawn(func(id core.ProcessID, _ core.Node) {
		l.Append(Event{At: sys.Now(), Kind: KindEnter, Proc: id})
	})
	sys.OnActivate(func(id core.ProcessID) {
		l.Append(Event{At: sys.Now(), Kind: KindActive, Proc: id})
	})
	sys.OnKill(func(id core.ProcessID) {
		l.Append(Event{At: sys.Now(), Kind: KindLeave, Proc: id})
	})
}
