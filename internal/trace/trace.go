// Package trace records structured timelines of simulated runs: message
// sends/deliveries, process lifecycle transitions, and protocol-level
// annotations, rendered as a per-tick text timeline. It exists for humans
// debugging protocol behaviour (cmd/regsim -trace) and for tests that
// assert on event sequences.
package trace

import (
	"fmt"
	"io"
	"strings"

	"churnreg/internal/core"
	"churnreg/internal/netsim"
	"churnreg/internal/sim"
)

// EventKind classifies timeline entries.
type EventKind int

// Event kinds.
const (
	KindSend EventKind = iota + 1
	KindDeliver
	KindDrop
	KindEnter
	KindActive
	KindLeave
	KindNote
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindDeliver:
		return "deliver"
	case KindDrop:
		return "drop"
	case KindEnter:
		return "enter"
	case KindActive:
		return "active"
	case KindLeave:
		return "leave"
	case KindNote:
		return "note"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one timeline entry.
type Event struct {
	At     sim.Time
	Kind   EventKind
	Proc   core.ProcessID // subject process (sender, joiner, leaver)
	Peer   core.ProcessID // counterparty (receiver) when applicable
	Msg    core.MsgKind   // message kind for send/deliver/drop
	Detail string         // free-form annotation
}

// String renders one event line.
func (e Event) String() string {
	switch e.Kind {
	case KindSend:
		return fmt.Sprintf("%-6s %s %s → %s", e.At, e.Kind, e.Proc, e.Peer) + msgSuffix(e)
	case KindDeliver, KindDrop:
		return fmt.Sprintf("%-6s %s %s ← %s", e.At, e.Kind, e.Peer, e.Proc) + msgSuffix(e)
	case KindNote:
		return fmt.Sprintf("%-6s note  %s: %s", e.At, e.Proc, e.Detail)
	default:
		s := fmt.Sprintf("%-6s %s %s", e.At, e.Kind, e.Proc)
		if e.Detail != "" {
			s += " (" + e.Detail + ")"
		}
		return s
	}
}

func msgSuffix(e Event) string {
	if e.Msg == 0 {
		return ""
	}
	return " " + e.Msg.String()
}

// Log accumulates events. Not safe for concurrent use (simulation runs are
// single-threaded).
type Log struct {
	events []Event
	// Cap bounds memory; once reached, further events are counted but not
	// stored. 0 means unbounded.
	Cap       int
	truncated uint64
}

// New returns a log bounded at cap events (0 = unbounded).
func New(cap int) *Log { return &Log{Cap: cap} }

// Append records an event.
func (l *Log) Append(e Event) {
	if l.Cap > 0 && len(l.events) >= l.Cap {
		l.truncated++
		return
	}
	l.events = append(l.events, e)
}

// Note records a free-form annotation for a process.
func (l *Log) Note(at sim.Time, proc core.ProcessID, format string, args ...any) {
	l.Append(Event{At: at, Kind: KindNote, Proc: proc, Detail: fmt.Sprintf(format, args...)})
}

// Len returns the number of stored events.
func (l *Log) Len() int { return len(l.events) }

// Truncated returns how many events were dropped by the cap.
func (l *Log) Truncated() uint64 { return l.truncated }

// Events returns the stored events (live slice; do not mutate).
func (l *Log) Events() []Event { return l.events }

// Filter returns stored events satisfying keep.
func (l *Log) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range l.events {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// CountKind tallies events of one kind.
func (l *Log) CountKind(k EventKind) int {
	n := 0
	for _, e := range l.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Render writes the timeline to w, one event per line, in recorded order
// (which is timestamp order — the simulator appends monotonically).
func (l *Log) Render(w io.Writer) error {
	for _, e := range l.events {
		if _, err := io.WriteString(w, e.String()+"\n"); err != nil {
			return err
		}
	}
	if l.truncated > 0 {
		if _, err := fmt.Fprintf(w, "... %d further events truncated (cap %d)\n", l.truncated, l.Cap); err != nil {
			return err
		}
	}
	return nil
}

// RenderString renders the timeline into a string.
func (l *Log) RenderString() string {
	var b strings.Builder
	_ = l.Render(&b)
	return b.String()
}

// NetTap adapts the log to netsim's trace hook: install with
// net.SetTrace(trace.NetTap(log)).
func NetTap(l *Log) netsim.TraceFunc {
	return func(ev netsim.TraceEvent) {
		e := Event{At: ev.At, Proc: ev.From, Peer: ev.To, Msg: ev.Kind}
		switch {
		case ev.Dropped:
			e.Kind = KindDrop
		case ev.Delivered:
			e.Kind = KindDeliver
		default:
			e.Kind = KindSend
		}
		l.Append(e)
	}
}
