package wire

import (
	"encoding/binary"
	"errors"
	"testing"

	"churnreg/internal/core"
)

func v1be64(b []byte, v int64) []byte { return binary.BigEndian.AppendUint64(b, uint64(v)) }

// v1Msg hand-builds a FrameMsg payload in the version-1 layout: version
// byte 1, frame type, envelope From, message kind, then the kind's v1
// fields (which carried no OpID). The encoder for that layout is gone;
// these bytes are the frozen history a v2 node may still receive from an
// old peer.
func v1Msg(kind core.MsgKind, fields ...int64) []byte {
	b := []byte{1, byte(FrameMsg)}
	b = v1be64(b, 7) // envelope From
	b = append(b, byte(kind))
	for _, f := range fields {
		b = v1be64(b, f)
	}
	return b
}

// v1Frames enumerates one well-formed version-1 payload per message shape
// that gained an OpID in version 2, plus a control frame whose layout
// never changed (only its version byte differs).
func v1Frames() map[string][]byte {
	frames := map[string][]byte{
		// INQUIRY(from, rsn)
		"inquiry": v1Msg(core.KindInquiry, 7, 3),
		// WRITE(from, val, sn, reg)
		"write": v1Msg(core.KindWrite, 7, 42, 5, 1),
		// ACK(from, sn, reg)
		"ack": v1Msg(core.KindAck, 7, 5, 1),
		// READ(from, rsn, reg)
		"read": v1Msg(core.KindRead, 7, 3, 1),
		// DL_PREV(from, rsn, reg)
		"dlprev": v1Msg(core.KindDLPrev, 7, 3, 1),
	}
	// REPLY(from, val, sn, rsn, reg, count=0) — no Op before the count.
	reply := v1Msg(core.KindReply, 7, 42, 5, 3, 1)
	frames["reply"] = binary.BigEndian.AppendUint32(reply, 0)
	// WRITE_BATCH(from, count=1, entry) — no Op before the count.
	batch := v1Msg(core.KindWriteBatch, 7)
	batch = binary.BigEndian.AppendUint32(batch, 1)
	for _, f := range []int64{1, 42, 5} {
		batch = v1be64(batch, f)
	}
	frames["writebatch"] = batch
	// HELLO is layout-identical across versions; it must STILL be rejected
	// (no mixed-version mesh: the version byte governs the whole stream).
	hello := []byte{1, byte(FrameHello)}
	hello = v1be64(hello, 9)
	hello = binary.BigEndian.AppendUint16(hello, 3)
	frames["hello"] = append(hello, "a:1"...)
	return frames
}

// TestDecodePreviousVersionFailsLoudly pins the compatibility contract:
// a version-1 payload decodes to ErrVersion — a versioned, inspectable
// error, never a panic and never a silently misparsed message. (A node
// receiving it drops the connection; the old peer must upgrade.)
func TestDecodePreviousVersionFailsLoudly(t *testing.T) {
	for name, payload := range v1Frames() {
		_, err := DecodeFrame(payload)
		if err == nil {
			t.Errorf("%s: DecodeFrame accepted a version-1 payload", name)
			continue
		}
		if !errors.Is(err, ErrVersion) {
			t.Errorf("%s: DecodeFrame error = %v, want ErrVersion", name, err)
		}
	}
}

// TestVersionedErrorNamesTheVersion makes the failure actionable: the
// error string carries the offending version so operators of a mixed
// deployment can tell WHICH side is old.
func TestVersionedErrorNamesTheVersion(t *testing.T) {
	_, err := DecodeFrame(v1Frames()["write"])
	if err == nil || !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v", err)
	}
	if got := err.Error(); got != "wire: unsupported codec version: 1" {
		t.Fatalf("error text = %q", got)
	}
}
