package wire

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

// v3Frames enumerates well-formed version-3 payloads. The message-body
// layouts are identical to version 4 (v4 only widened HELLO with a role
// byte and ADDED the VIEW_REQ/VIEW frame types), so a v3 MSG payload is a
// v4 payload with its version byte rewound; the v3 HELLO is hand-built in
// the old role-less layout. Either way the version byte must govern
// acceptance: a v4 decoder fed a v3 HELLO would misread the address
// length's first byte as a role, and a v3 node fed a VIEW frame would
// reject the unknown type only after trusting placement assumptions it
// never negotiated.
func v3Frames(t *testing.T) map[string][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	frames := make(map[string][]byte)
	for _, kind := range allKinds {
		payload, err := EncodeFrame(Frame{Type: FrameMsg, From: 7, Msg: randMessage(rng, kind)})
		if err != nil {
			t.Fatal(err)
		}
		payload[0] = 3
		frames[kind.String()] = payload
	}
	// HELLO(from, addr) — v3 carried no role byte.
	hello := []byte{3, byte(FrameHello)}
	hello = binary.BigEndian.AppendUint64(hello, 9)
	hello = binary.BigEndian.AppendUint16(hello, 14)
	hello = append(hello, "127.0.0.1:7777"...)
	frames["hello"] = hello
	return frames
}

// TestDecodeV3FailsLoudly pins the v3→v4 compatibility contract exactly
// as its v1→v2 and v2→v3 predecessors: every version-3 payload decodes
// to ErrVersion — inspectable, never a panic, never a silent misparse.
func TestDecodeV3FailsLoudly(t *testing.T) {
	for name, payload := range v3Frames(t) {
		_, err := DecodeFrame(payload)
		if err == nil {
			t.Errorf("%s: DecodeFrame accepted a version-3 payload", name)
			continue
		}
		if !errors.Is(err, ErrVersion) {
			t.Errorf("%s: DecodeFrame error = %v, want ErrVersion", name, err)
		}
	}
	// The error names the offending version, so a mixed deployment's
	// operator can tell which side is old.
	_, err := DecodeFrame(v3Frames(t)["hello"])
	if err == nil || err.Error() != "wire: unsupported codec version: 3" {
		t.Fatalf("error = %v, want the versioned message naming 3", err)
	}
}

// TestViewRoundTrip pins the VIEW layout field by field (the property and
// fuzz tests cover random values; this is the readable byte-layout
// contract): version stamp, placement constants, then the member address
// book in PEERS entry format.
func TestViewRoundTrip(t *testing.T) {
	f := Frame{Type: FrameView, ViewVersion: 42, Shards: 8, Replication: 3,
		Peers: []Peer{{ID: 11, Addr: "10.1.2.3:4567"}}}
	payload, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{Version, byte(FrameView)}
	want = binary.BigEndian.AppendUint64(want, 42)
	want = binary.BigEndian.AppendUint32(want, 8)
	want = binary.BigEndian.AppendUint32(want, 3)
	want = binary.BigEndian.AppendUint32(want, 1)
	want = binary.BigEndian.AppendUint64(want, 11)
	want = binary.BigEndian.AppendUint16(want, 13)
	want = append(want, "10.1.2.3:4567"...)
	if string(payload) != string(want) {
		t.Fatalf("VIEW encoding:\n got % x\nwant % x", payload, want)
	}
}

// TestHelloRoleRoundTrip pins the widened HELLO layout: the role byte
// sits between the sender id and the address, zero for peers (so the
// pre-v4 call sites that never set a role still announce processes) and
// one for client sessions.
func TestHelloRoleRoundTrip(t *testing.T) {
	for _, f := range []Frame{
		{Type: FrameHello, From: 9, Addr: "a:1", Role: RolePeer},
		{Type: FrameHello, From: 0, Addr: "", Role: RoleClient},
	} {
		payload, err := EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := Role(payload[10]); got != f.Role {
			t.Fatalf("role byte = %v, want %v", got, f.Role)
		}
		back, err := DecodeFrame(payload)
		if err != nil {
			t.Fatal(err)
		}
		if back.Role != f.Role || back.From != f.From || back.Addr != f.Addr {
			t.Fatalf("round trip mismatch: %+v vs %+v", back, f)
		}
	}
}

// TestHelloRejectsBadRole: the codec stays canonical — an undefined role
// byte is rejected on both sides, not smuggled through.
func TestHelloRejectsBadRole(t *testing.T) {
	if _, err := EncodeFrame(Frame{Type: FrameHello, From: 1, Role: 9}); err == nil {
		t.Fatal("encoder accepted an undefined role")
	}
	payload, err := EncodeFrame(Frame{Type: FrameHello, From: 1, Addr: "a:1"})
	if err != nil {
		t.Fatal(err)
	}
	payload[10] = 9
	if _, err := DecodeFrame(payload); err == nil {
		t.Fatal("decoder accepted an undefined role byte")
	}
}
