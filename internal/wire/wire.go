// Package wire is the binary codec the TCP transport speaks: every
// protocol message of internal/core (the paper's INQUIRY/REPLY/WRITE/ACK/
// READ/DL_PREV plus the multi-writer CLAIM/BEAT/TOKEN and the batched
// WRITE_BATCH) round-trips through a compact fixed-layout encoding, carried
// in length-prefixed frames alongside the transport's own control frames
// (HELLO/PEERS/LEAVE).
//
// Layout. A frame on the wire is
//
//	uint32 big-endian payload length | payload
//
// and a payload is
//
//	byte version | byte frame type | body
//
// Integers inside bodies are fixed-width big-endian (no varints: the
// messages are small and a fixed layout keeps the decoder branch-free and
// fuzz-simple). Strings (peer addresses) are uint16 length + bytes.
// Repeated sections (snapshot entries, peer lists) are uint32 count +
// fixed-size entries; the decoder bounds every count by the bytes actually
// remaining, so a hostile length can never force a large allocation.
//
// The decoder never panics on arbitrary input (FuzzDecodeFrame enforces
// this): every malformed payload yields an error.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"churnreg/internal/core"
)

// Version is the codec version stamped on every payload. A node receiving
// a different version drops the connection — the system has no mixed-
// version story yet, and failing loudly beats corrupting register state.
//
// Version history:
//
//	1: the original layout, no operation tags.
//	2: every request/reply message body carries the sender's (or echoed)
//	   core.OpID — the pipelining tag that lets a node run many
//	   concurrent operations. Version-1 payloads decode to ErrVersion
//	   (see TestDecodePreviousVersionFailsLoudly).
//	3: adds the sharding relay messages FORWARD and FORWARDED (a
//	   non-replica node routing a client operation to its key's replica
//	   group, OpID-routed like every other request/reply pair). Version-2
//	   payloads decode to ErrVersion: a v2 node cannot parse the new
//	   kinds, and silently mixing sharded and unsharded placement
//	   assumptions would corrupt register state.
//	4: client sessions. HELLO carries a role byte (peer vs client) so
//	   an acceptor can tell a meshing process from an external SDK
//	   client that must stay out of the address book and the placement;
//	   the new VIEW_REQ and VIEW frames bootstrap and refresh a client's
//	   cached placement (view version, shard/replication constants, and
//	   the member address book). Version-3 payloads decode to ErrVersion
//	   (TestDecodeV3FailsLoudly): a v3 node would misparse the widened
//	   HELLO body, and a client routing on placement assumptions its
//	   server never agreed to would write to the wrong primary.
const Version = 4

// MaxFrame bounds a payload's length. The largest legitimate frame is a
// join snapshot reply, 24 bytes per key; 1 MiB allows ~43k keys per
// snapshot which is far beyond every workload in the repo, while keeping a
// hostile length prefix from ballooning the read buffer.
const MaxFrame = 1 << 20

// MaxAddr bounds an encoded peer address.
const MaxAddr = 4096

// FrameType discriminates payloads.
type FrameType byte

// Frame types: Msg envelops one core.Message; Hello/Peers/Leave are
// transport control traffic (connection handshake, address-book gossip,
// graceful departure); ViewReq/View are the client-session placement
// bootstrap (a client asks, the server answers — and pushes unasked
// whenever its membership view changes).
const (
	FrameMsg     FrameType = 1
	FrameHello   FrameType = 2
	FramePeers   FrameType = 3
	FrameLeave   FrameType = 4
	FrameViewReq FrameType = 5
	FrameView    FrameType = 6
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameMsg:
		return "MSG"
	case FrameHello:
		return "HELLO"
	case FramePeers:
		return "PEERS"
	case FrameLeave:
		return "LEAVE"
	case FrameViewReq:
		return "VIEW_REQ"
	case FrameView:
		return "VIEW"
	default:
		return fmt.Sprintf("FrameType(%d)", byte(t))
	}
}

// Role is the HELLO role byte: it tells an acceptor whether the dialer
// is a meshing process (to be learned, gossiped, and placed) or an
// external client session (served directly, never part of the system).
type Role byte

// Roles. The zero value is RolePeer, so every pre-existing call site
// that builds a HELLO frame without thinking about roles still
// announces itself as a process.
const (
	RolePeer   Role = 0
	RoleClient Role = 1
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RolePeer:
		return "peer"
	case RoleClient:
		return "client"
	default:
		return fmt.Sprintf("Role(%d)", byte(r))
	}
}

// Peer is one address-book entry carried by HELLO and PEERS frames.
type Peer struct {
	ID   core.ProcessID
	Addr string
}

// Frame is the decoded form of one wire payload.
type Frame struct {
	Type FrameType
	// From identifies the sender (Msg, Hello, Leave).
	From core.ProcessID
	// Addr is the sender's listen address (Hello): the receiver records it
	// so replies can be dialed.
	Addr string
	// Role distinguishes a meshing process from a client session (Hello).
	Role Role
	// Peers is the gossiped address book (Peers) or the placement's member
	// list (View).
	Peers []Peer
	// Msg is the enveloped protocol message (Msg).
	Msg core.Message
	// ViewVersion is the monotone stamp of the sender's placement view
	// (View); a client discards pushes older than what it holds.
	ViewVersion uint64
	// Shards and Replication are the deployment's placement constants
	// (View). Shards == 0 means the keyspace is unsharded: any member
	// serves any key, and the member list is just the live server set.
	Shards      uint32
	Replication uint32
}

// Decode errors.
var (
	ErrShort      = errors.New("wire: truncated payload")
	ErrVersion    = errors.New("wire: unsupported codec version")
	ErrFrameType  = errors.New("wire: unknown frame type")
	ErrMsgKind    = errors.New("wire: unknown message kind")
	ErrTrailing   = errors.New("wire: trailing bytes after payload")
	ErrTooLarge   = errors.New("wire: frame exceeds size bound")
	ErrAddrLength = errors.New("wire: address exceeds size bound")
)

// EncodeFrame renders f as a payload (without the length prefix) into a
// fresh buffer. Hot paths that reuse buffers call AppendFrame instead;
// this wrapper exists for the cold paths and the tests.
func EncodeFrame(f Frame) ([]byte, error) {
	b, err := AppendFrame(make([]byte, 0, 64), f)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// AppendFrame appends f's payload (version byte, frame type byte, body) to
// dst and returns the extended slice. It allocates only when dst lacks
// capacity, so steady-state encoding into a recycled buffer performs zero
// heap allocations (TestAppendFrameZeroAllocs enforces this). On error dst
// is returned unchanged.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	start := len(dst)
	b := append(dst, Version, byte(f.Type))
	switch f.Type {
	case FrameMsg:
		b = be64(b, int64(f.From))
		var err error
		b, err = AppendMessage(b, f.Msg)
		if err != nil {
			return dst[:start], err
		}
	case FrameHello:
		if len(f.Addr) > MaxAddr {
			return dst[:start], ErrAddrLength
		}
		if f.Role > RoleClient {
			return dst[:start], fmt.Errorf("wire: bad hello role %d", byte(f.Role))
		}
		b = be64(b, int64(f.From))
		b = append(b, byte(f.Role))
		b = binary.BigEndian.AppendUint16(b, uint16(len(f.Addr)))
		b = append(b, f.Addr...)
	case FramePeers:
		b = binary.BigEndian.AppendUint32(b, uint32(len(f.Peers)))
		for _, p := range f.Peers {
			if len(p.Addr) > MaxAddr {
				return dst[:start], ErrAddrLength
			}
			b = be64(b, int64(p.ID))
			b = binary.BigEndian.AppendUint16(b, uint16(len(p.Addr)))
			b = append(b, p.Addr...)
		}
	case FrameLeave:
		b = be64(b, int64(f.From))
	case FrameViewReq:
		// Body-less: the request is the frame itself.
	case FrameView:
		b = binary.BigEndian.AppendUint64(b, f.ViewVersion)
		b = binary.BigEndian.AppendUint32(b, f.Shards)
		b = binary.BigEndian.AppendUint32(b, f.Replication)
		b = binary.BigEndian.AppendUint32(b, uint32(len(f.Peers)))
		for _, p := range f.Peers {
			if len(p.Addr) > MaxAddr {
				return dst[:start], ErrAddrLength
			}
			b = be64(b, int64(p.ID))
			b = binary.BigEndian.AppendUint16(b, uint16(len(p.Addr)))
			b = append(b, p.Addr...)
		}
	default:
		return dst[:start], fmt.Errorf("%w: %d", ErrFrameType, byte(f.Type))
	}
	if len(b)-start > MaxFrame {
		return dst[:start], ErrTooLarge
	}
	return b, nil
}

// AppendFrameBytes appends f's complete wire form — length prefix plus
// payload — to dst and returns the extended slice. This is the coalescing
// transport's workhorse: many frames append into one flush buffer, and the
// whole buffer leaves in a single write. On error dst is returned
// unchanged.
func AppendFrameBytes(dst []byte, f Frame) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length backfilled below
	out, err := AppendFrame(dst, f)
	if err != nil {
		return dst[:start], err
	}
	binary.BigEndian.PutUint32(out[start:], uint32(len(out)-start-4))
	return out, nil
}

// AppendPayloadBytes appends an already-encoded payload with its length
// prefix to dst: the coalescing path for pre-encoded frames (the
// transport's per-peer queues carry payloads, not Frames).
func AppendPayloadBytes(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// DecodeFrame parses one payload. It returns an error — never panics — on
// malformed input, and rejects payloads with trailing garbage.
func DecodeFrame(b []byte) (Frame, error) {
	d := decoder{b: b}
	ver := d.u8()
	typ := FrameType(d.u8())
	if d.err != nil {
		return Frame{}, d.err
	}
	if ver != Version {
		return Frame{}, fmt.Errorf("%w: %d", ErrVersion, ver)
	}
	f := Frame{Type: typ}
	switch typ {
	case FrameMsg:
		f.From = core.ProcessID(d.i64())
		f.Msg = d.message()
	case FrameHello:
		f.From = core.ProcessID(d.i64())
		f.Role = d.role()
		f.Addr = d.str()
	case FramePeers:
		f.Peers = d.peerList()
	case FrameLeave:
		f.From = core.ProcessID(d.i64())
	case FrameViewReq:
		// Body-less.
	case FrameView:
		f.ViewVersion = d.u64()
		f.Shards = d.u32()
		f.Replication = d.u32()
		f.Peers = d.peerList()
	default:
		return Frame{}, fmt.Errorf("%w: %d", ErrFrameType, byte(typ))
	}
	if d.err != nil {
		return Frame{}, d.err
	}
	if len(d.b) != d.off {
		return Frame{}, ErrTrailing
	}
	return f, nil
}

// FrameBytes prepends the length prefix to an encoded payload, yielding
// the exact bytes a connection carries. The prefix format has one owner:
// callers that pre-encode payloads (the transport's per-peer queues) use
// this rather than re-deriving the framing.
func FrameBytes(payload []byte) []byte {
	return AppendPayloadBytes(make([]byte, 0, 4+len(payload)), payload)
}

// WriteFrame encodes f and writes it with its length prefix in one Write
// call, so concurrent writers interleave whole frames at worst never
// partial ones (callers still serialize per connection).
func WriteFrame(w io.Writer, f Frame) error {
	payload, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	_, err = w.Write(FrameBytes(payload))
	return err
}

// ReadFrame reads one length-prefixed frame from r and decodes it.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return Frame{}, ErrTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, err
	}
	return DecodeFrame(payload)
}

// AppendMessage appends m's encoding (kind byte + body) to b.
func AppendMessage(b []byte, m core.Message) ([]byte, error) {
	switch msg := m.(type) {
	case core.InquiryMsg:
		b = append(b, byte(core.KindInquiry))
		b = be64(b, int64(msg.From))
		b = be64(b, int64(msg.RSN))
		b = binary.BigEndian.AppendUint64(b, uint64(msg.Op))
	case core.ReplyMsg:
		b = append(b, byte(core.KindReply))
		b = be64(b, int64(msg.From))
		b = be64(b, int64(msg.Value.Val))
		b = be64(b, int64(msg.Value.SN))
		b = be64(b, int64(msg.RSN))
		b = be64(b, int64(msg.Reg))
		b = binary.BigEndian.AppendUint64(b, uint64(msg.Op))
		b = binary.BigEndian.AppendUint32(b, uint32(len(msg.Rest)))
		for _, kv := range msg.Rest {
			b = appendKeyedValue(b, kv)
		}
	case core.WriteMsg:
		b = append(b, byte(core.KindWrite))
		b = be64(b, int64(msg.From))
		b = be64(b, int64(msg.Value.Val))
		b = be64(b, int64(msg.Value.SN))
		b = be64(b, int64(msg.Reg))
		b = binary.BigEndian.AppendUint64(b, uint64(msg.Op))
	case core.AckMsg:
		b = append(b, byte(core.KindAck))
		b = be64(b, int64(msg.From))
		b = be64(b, int64(msg.SN))
		b = be64(b, int64(msg.Reg))
		b = binary.BigEndian.AppendUint64(b, uint64(msg.Op))
	case core.ReadMsg:
		b = append(b, byte(core.KindRead))
		b = be64(b, int64(msg.From))
		b = be64(b, int64(msg.RSN))
		b = be64(b, int64(msg.Reg))
		b = binary.BigEndian.AppendUint64(b, uint64(msg.Op))
	case core.DLPrevMsg:
		b = append(b, byte(core.KindDLPrev))
		b = be64(b, int64(msg.From))
		b = be64(b, int64(msg.RSN))
		b = be64(b, int64(msg.Reg))
		b = binary.BigEndian.AppendUint64(b, uint64(msg.Op))
	case core.ClaimMsg:
		b = append(b, byte(core.KindClaim))
		b = be64(b, int64(msg.From))
		b = be64(b, msg.Stamp)
	case core.BeatMsg:
		b = append(b, byte(core.KindBeat))
		b = be64(b, int64(msg.From))
		if msg.Free {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.BigEndian.AppendUint64(b, msg.Seq)
	case core.TokenMsg:
		b = append(b, byte(core.KindToken))
		b = be64(b, int64(msg.From))
	case core.WriteBatchMsg:
		b = append(b, byte(core.KindWriteBatch))
		b = be64(b, int64(msg.From))
		b = binary.BigEndian.AppendUint64(b, uint64(msg.Op))
		b = binary.BigEndian.AppendUint32(b, uint32(len(msg.Entries)))
		for _, kv := range msg.Entries {
			b = appendKeyedValue(b, kv)
		}
	case core.ForwardMsg:
		b = append(b, byte(core.KindForward))
		b = be64(b, int64(msg.From))
		b = binary.BigEndian.AppendUint64(b, uint64(msg.Op))
		b = be64(b, int64(msg.Reg))
		if msg.IsWrite {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = be64(b, int64(msg.Val))
	case core.ForwardedMsg:
		b = append(b, byte(core.KindForwarded))
		b = be64(b, int64(msg.From))
		b = binary.BigEndian.AppendUint64(b, uint64(msg.Op))
		b = be64(b, int64(msg.Reg))
		b = be64(b, int64(msg.Value.Val))
		b = be64(b, int64(msg.Value.SN))
		b = append(b, byte(msg.Code))
	default:
		return nil, fmt.Errorf("%w: %T", ErrMsgKind, m)
	}
	return b, nil
}

// EncodeMessage renders m alone (kind byte + body), for tests and tools.
func EncodeMessage(m core.Message) ([]byte, error) {
	return AppendMessage(nil, m)
}

// DecodeMessage parses one message occupying the whole of b.
func DecodeMessage(b []byte) (core.Message, error) {
	d := decoder{b: b}
	m := d.message()
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != d.off {
		return nil, ErrTrailing
	}
	return m, nil
}

func appendKeyedValue(b []byte, kv core.KeyedValue) []byte {
	b = be64(b, int64(kv.Reg))
	b = be64(b, int64(kv.Value.Val))
	return be64(b, int64(kv.Value.SN))
}

func be64(b []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(b, uint64(v))
}

// decoder is a cursor over a payload; the first error sticks and every
// later accessor returns zero values, so call sites read linearly and
// check err once.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.off+1 > len(d.b) {
		d.fail(ErrShort)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// forwardCode reads a strict FORWARDED outcome byte: only the defined
// codes are legal, keeping the codec canonical.
func (d *decoder) forwardCode() core.ForwardCode {
	v := d.u8()
	if d.err == nil && v > byte(core.ForwardWrongReplica) {
		d.fail(fmt.Errorf("wire: bad forward code %d", v))
	}
	return core.ForwardCode(v)
}

// role reads a strict HELLO role byte: only the defined roles are legal,
// keeping the codec canonical.
func (d *decoder) role() Role {
	v := d.u8()
	if d.err == nil && v > byte(RoleClient) {
		d.fail(fmt.Errorf("wire: bad hello role %d", v))
	}
	return Role(v)
}

// bool reads a strict boolean byte: only 0 and 1 are legal, keeping the
// codec canonical (decode∘encode is the identity on accepted payloads).
func (d *decoder) bool() bool {
	v := d.u8()
	if d.err == nil && v > 1 {
		d.fail(fmt.Errorf("wire: bad bool byte %d", v))
	}
	return v == 1
}

func (d *decoder) i64() int64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail(ErrShort)
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return int64(v)
}

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.b) {
		d.fail(ErrShort)
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail(ErrShort)
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

// count reads a uint32 element count and verifies the remaining bytes can
// actually hold that many elements of at least minSize bytes each, so a
// forged count cannot drive a huge allocation. The comparison runs in
// uint64: on 32-bit platforms a hostile 0xFFFFFFFF would otherwise wrap
// int negative, slip past the bound, and panic the make() downstream.
func (d *decoder) count(minSize int) int {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.b) {
		d.fail(ErrShort)
		return 0
	}
	n := uint64(binary.BigEndian.Uint32(d.b[d.off:]))
	d.off += 4
	if n*uint64(minSize) > uint64(len(d.b)-d.off) {
		d.fail(ErrShort)
		return 0
	}
	return int(n)
}

func (d *decoder) str() string {
	if d.err != nil {
		return ""
	}
	if d.off+2 > len(d.b) {
		d.fail(ErrShort)
		return ""
	}
	n := int(binary.BigEndian.Uint16(d.b[d.off:]))
	d.off += 2
	if n > MaxAddr {
		d.fail(ErrAddrLength)
		return ""
	}
	if d.off+n > len(d.b) {
		d.fail(ErrShort)
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// peerList reads one address-book section (uint32 count, then id+addr
// entries), shared by PEERS and VIEW.
func (d *decoder) peerList() []Peer {
	n := d.count(10) // 8-byte id + 2-byte length minimum per entry
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]Peer, 0, n)
	for i := 0; i < n; i++ {
		id := core.ProcessID(d.i64())
		addr := d.str()
		if d.err != nil {
			return nil
		}
		out = append(out, Peer{ID: id, Addr: addr})
	}
	return out
}

func (d *decoder) keyedValues() []core.KeyedValue {
	n := d.count(24)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]core.KeyedValue, 0, n)
	for i := 0; i < n; i++ {
		kv := core.KeyedValue{
			Reg: core.RegisterID(d.i64()),
			Value: core.VersionedValue{
				Val: core.Value(d.i64()),
				SN:  core.SeqNum(d.i64()),
			},
		}
		if d.err != nil {
			return nil
		}
		out = append(out, kv)
	}
	return out
}

func (d *decoder) message() core.Message {
	kind := core.MsgKind(d.u8())
	if d.err != nil {
		return nil
	}
	switch kind {
	case core.KindInquiry:
		return core.InquiryMsg{
			From: core.ProcessID(d.i64()),
			RSN:  core.ReadSeq(d.i64()),
			Op:   core.OpID(d.u64()),
		}
	case core.KindReply:
		return core.ReplyMsg{
			From: core.ProcessID(d.i64()),
			Value: core.VersionedValue{
				Val: core.Value(d.i64()),
				SN:  core.SeqNum(d.i64()),
			},
			RSN:  core.ReadSeq(d.i64()),
			Reg:  core.RegisterID(d.i64()),
			Op:   core.OpID(d.u64()),
			Rest: d.keyedValues(),
		}
	case core.KindWrite:
		return core.WriteMsg{
			From: core.ProcessID(d.i64()),
			Value: core.VersionedValue{
				Val: core.Value(d.i64()),
				SN:  core.SeqNum(d.i64()),
			},
			Reg: core.RegisterID(d.i64()),
			Op:  core.OpID(d.u64()),
		}
	case core.KindAck:
		return core.AckMsg{
			From: core.ProcessID(d.i64()),
			SN:   core.SeqNum(d.i64()),
			Reg:  core.RegisterID(d.i64()),
			Op:   core.OpID(d.u64()),
		}
	case core.KindRead:
		return core.ReadMsg{
			From: core.ProcessID(d.i64()),
			RSN:  core.ReadSeq(d.i64()),
			Reg:  core.RegisterID(d.i64()),
			Op:   core.OpID(d.u64()),
		}
	case core.KindDLPrev:
		return core.DLPrevMsg{
			From: core.ProcessID(d.i64()),
			RSN:  core.ReadSeq(d.i64()),
			Reg:  core.RegisterID(d.i64()),
			Op:   core.OpID(d.u64()),
		}
	case core.KindClaim:
		return core.ClaimMsg{
			From:  core.ProcessID(d.i64()),
			Stamp: d.i64(),
		}
	case core.KindBeat:
		return core.BeatMsg{
			From: core.ProcessID(d.i64()),
			Free: d.bool(),
			Seq:  d.u64(),
		}
	case core.KindToken:
		return core.TokenMsg{From: core.ProcessID(d.i64())}
	case core.KindWriteBatch:
		return core.WriteBatchMsg{
			From:    core.ProcessID(d.i64()),
			Op:      core.OpID(d.u64()),
			Entries: d.keyedValues(),
		}
	case core.KindForward:
		return core.ForwardMsg{
			From:    core.ProcessID(d.i64()),
			Op:      core.OpID(d.u64()),
			Reg:     core.RegisterID(d.i64()),
			IsWrite: d.bool(),
			Val:     core.Value(d.i64()),
		}
	case core.KindForwarded:
		return core.ForwardedMsg{
			From: core.ProcessID(d.i64()),
			Op:   core.OpID(d.u64()),
			Reg:  core.RegisterID(d.i64()),
			Value: core.VersionedValue{
				Val: core.Value(d.i64()),
				SN:  core.SeqNum(d.i64()),
			},
			Code: d.forwardCode(),
		}
	default:
		d.fail(fmt.Errorf("%w: %d", ErrMsgKind, int(kind)))
		return nil
	}
}
