package wire

import (
	"errors"
	"math/rand"
	"testing"

	"churnreg/internal/core"
)

// v2Frames enumerates well-formed version-2 payloads: the message-body
// layouts are identical to version 3 (v3 only ADDED the FORWARD and
// FORWARDED kinds), so a v2 payload is a v3 payload with its version
// byte rewound — which is exactly why the version byte must govern
// acceptance: the bytes would parse, but the sender's placement
// assumptions (every node replicates every key) no longer hold.
func v2Frames(t *testing.T) map[string][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	frames := make(map[string][]byte)
	for _, kind := range allKinds {
		if kind == core.KindForward || kind == core.KindForwarded {
			continue // v2 never carried these
		}
		payload, err := EncodeFrame(Frame{Type: FrameMsg, From: 7, Msg: randMessage(rng, kind)})
		if err != nil {
			t.Fatal(err)
		}
		payload[0] = 2
		frames[kind.String()] = payload
	}
	hello, err := EncodeFrame(Frame{Type: FrameHello, From: 9, Addr: "127.0.0.1:7777"})
	if err != nil {
		t.Fatal(err)
	}
	hello[0] = 2
	frames["hello"] = hello
	return frames
}

// TestDecodeV2FailsLoudly pins the v2→v3 compatibility contract exactly
// as TestDecodePreviousVersionFailsLoudly pins v1→v2: every version-2
// payload decodes to ErrVersion — inspectable, never a panic, never a
// silent misparse.
func TestDecodeV2FailsLoudly(t *testing.T) {
	for name, payload := range v2Frames(t) {
		_, err := DecodeFrame(payload)
		if err == nil {
			t.Errorf("%s: DecodeFrame accepted a version-2 payload", name)
			continue
		}
		if !errors.Is(err, ErrVersion) {
			t.Errorf("%s: DecodeFrame error = %v, want ErrVersion", name, err)
		}
	}
	// The error names the offending version, so a mixed deployment's
	// operator can tell which side is old.
	var sample []byte
	for _, payload := range v2Frames(t) {
		sample = payload
		break
	}
	_, err := DecodeFrame(sample)
	if err == nil || err.Error() != "wire: unsupported codec version: 2" {
		t.Fatalf("error = %v, want the versioned message naming 2", err)
	}
}

// TestForwardRoundTrip pins the FORWARD/FORWARDED layouts field by field
// (the property/fuzz tests cover random values; this one is the readable
// byte-layout contract).
func TestForwardRoundTrip(t *testing.T) {
	msgs := []core.Message{
		core.ForwardMsg{From: 3, Op: 17, Reg: 5, IsWrite: true, Val: -42},
		core.ForwardMsg{From: 1, Op: 1, Reg: 0, IsWrite: false, Val: 0},
		core.ForwardedMsg{From: 9, Op: 17, Reg: 5,
			Value: core.VersionedValue{Val: -42, SN: 12}, Code: core.ForwardOK},
		core.ForwardedMsg{From: 2, Op: 99, Reg: 8, Code: core.ForwardWrongReplica},
	}
	for _, m := range msgs {
		enc, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("%v: encode: %v", m.Kind(), err)
		}
		got, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Kind(), err)
		}
		if got != m {
			t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", m, got)
		}
	}
}

// TestForwardedRejectsBadCode: the codec stays canonical — an undefined
// FORWARDED outcome byte is rejected, not smuggled through.
func TestForwardedRejectsBadCode(t *testing.T) {
	enc, err := EncodeMessage(core.ForwardedMsg{From: 1, Op: 2, Reg: 3, Code: core.ForwardOK})
	if err != nil {
		t.Fatal(err)
	}
	enc[len(enc)-1] = 200
	if _, err := DecodeMessage(enc); err == nil {
		t.Fatal("bad forward code accepted")
	}
}
