package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"churnreg/internal/core"
)

// FuzzDecodeFrame asserts the decoder never panics on arbitrary bytes, and
// that every payload it accepts re-encodes to the identical bytes (the
// codec is canonical: one payload per frame, one frame per payload).
func FuzzDecodeFrame(f *testing.F) {
	rng := rand.New(rand.NewSource(3))
	for _, kind := range allKinds {
		payload, err := EncodeFrame(Frame{Type: FrameMsg, From: 7, Msg: randMessage(rng, kind)})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	for _, fr := range []Frame{
		{Type: FrameHello, From: 3, Addr: "127.0.0.1:9999"},
		{Type: FrameHello, From: 0, Role: RoleClient},
		{Type: FramePeers, Peers: []Peer{{ID: 1, Addr: "a:1"}, {ID: 2, Addr: "b:2"}}},
		{Type: FrameLeave, From: 12},
		{Type: FrameViewReq},
		{Type: FrameView, ViewVersion: 5, Shards: 8, Replication: 3,
			Peers: []Peer{{ID: 1, Addr: "a:1"}, {ID: 2, Addr: "b:2"}}},
	} {
		payload, err := EncodeFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version, byte(FrameMsg)})
	// Version-1 payloads (no OpID on message bodies): the decoder must
	// reject them with the versioned error, never misparse them.
	for _, payload := range v1Frames() {
		f.Add(payload)
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := DecodeFrame(b)
		if len(b) >= 2 && b[0] != Version {
			// Previous (or future) codec versions fail loudly: whatever the
			// rest of the payload, the error is the versioned sentinel.
			if !errors.Is(err, ErrVersion) {
				t.Fatalf("foreign version byte %d decoded to err=%v, want ErrVersion", b[0], err)
			}
			return
		}
		if err != nil {
			return
		}
		re, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("decoded frame fails to re-encode: %v (%#v)", err, fr)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("codec not canonical:\n in: % x\nout: % x", b, re)
		}
	})
}

// FuzzMessageRoundTrip drives random field values through the message
// codec: whatever the fields, encode → decode is the identity.
func FuzzMessageRoundTrip(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3), int64(4), int64(5), uint8(1))
	f.Add(int64(-1), int64(0), int64(-1<<62), int64(1<<62), int64(0), uint8(9))
	f.Fuzz(func(t *testing.T, a, b, c, d, e int64, kindByte uint8) {
		kind := allKinds[int(kindByte)%len(allKinds)]
		var m core.Message
		vv := core.VersionedValue{Val: core.Value(b), SN: core.SeqNum(c)}
		switch kind {
		case core.KindInquiry:
			m = core.InquiryMsg{From: core.ProcessID(a), RSN: core.ReadSeq(b), Op: core.OpID(d)}
		case core.KindReply:
			m = core.ReplyMsg{From: core.ProcessID(a), Value: vv, RSN: core.ReadSeq(d), Reg: core.RegisterID(e),
				Op: core.OpID(a), Rest: []core.KeyedValue{{Reg: core.RegisterID(d), Value: vv}}}
		case core.KindWrite:
			m = core.WriteMsg{From: core.ProcessID(a), Value: vv, Reg: core.RegisterID(d), Op: core.OpID(e)}
		case core.KindAck:
			m = core.AckMsg{From: core.ProcessID(a), SN: core.SeqNum(b), Reg: core.RegisterID(c), Op: core.OpID(d)}
		case core.KindRead:
			m = core.ReadMsg{From: core.ProcessID(a), RSN: core.ReadSeq(b), Reg: core.RegisterID(c), Op: core.OpID(b)}
		case core.KindDLPrev:
			m = core.DLPrevMsg{From: core.ProcessID(a), RSN: core.ReadSeq(b), Reg: core.RegisterID(c), Op: core.OpID(b)}
		case core.KindClaim:
			m = core.ClaimMsg{From: core.ProcessID(a), Stamp: b}
		case core.KindBeat:
			m = core.BeatMsg{From: core.ProcessID(a), Free: b&1 == 0, Seq: uint64(c)}
		case core.KindToken:
			m = core.TokenMsg{From: core.ProcessID(a)}
		case core.KindWriteBatch:
			m = core.WriteBatchMsg{From: core.ProcessID(a), Op: core.OpID(d),
				Entries: []core.KeyedValue{{Reg: core.RegisterID(b), Value: vv}}}
		case core.KindForward:
			m = core.ForwardMsg{From: core.ProcessID(a), Op: core.OpID(d),
				Reg: core.RegisterID(e), IsWrite: b&1 == 0, Val: core.Value(c)}
		case core.KindForwarded:
			m = core.ForwardedMsg{From: core.ProcessID(a), Op: core.OpID(d),
				Reg: core.RegisterID(e), Value: vv, Code: core.ForwardCode(uint8(b) % 4)}
		}
		enc, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", m, got)
		}
	})
}
