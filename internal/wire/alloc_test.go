package wire_test

// The allocation-ceiling regression tests behind the zero-alloc codec:
// steady-state encoding into a recycled buffer and the frame-scanning
// machinery must not touch the heap, and decoding an enveloped protocol
// message may allocate exactly the one core.Message interface box (a
// value-typed message moving into an interface is a heap cell; everything
// else — payload buffers, headers, cursors — is reused). CI runs these in
// the main test job; they skip under -race, whose instrumentation
// perturbs allocation counts.

import (
	"bytes"
	"testing"

	"churnreg/internal/core"
	"churnreg/internal/wire"
)

// hotMsgFrame is a representative hot-path frame: a WRITE broadcast, the
// message the coalescing benchmarks push by the hundred-thousand.
func hotMsgFrame() wire.Frame {
	return wire.Frame{
		Type: wire.FrameMsg,
		From: 7,
		Msg: core.WriteMsg{
			From:  7,
			Value: core.VersionedValue{Val: 123456, SN: 42},
			Reg:   9,
			Op:    core.OpID(1337),
		},
	}
}

func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
}

func TestAppendFrameZeroAllocs(t *testing.T) {
	skipIfRace(t)
	f := hotMsgFrame()
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(1000, func() {
		var err error
		buf, err = wire.AppendFrame(buf[:0], f)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendFrame allocs/op = %v, want 0", allocs)
	}
}

func TestAppendFrameBytesZeroAllocs(t *testing.T) {
	skipIfRace(t)
	f := hotMsgFrame()
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(1000, func() {
		var err error
		buf, err = wire.AppendFrameBytes(buf[:0], f)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendFrameBytes allocs/op = %v, want 0", allocs)
	}
}

func TestAppendPayloadBytesZeroAllocs(t *testing.T) {
	skipIfRace(t)
	payload, err := wire.EncodeFrame(hotMsgFrame())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = wire.AppendPayloadBytes(buf[:0], payload)
	})
	if allocs != 0 {
		t.Fatalf("AppendPayloadBytes allocs/op = %v, want 0", allocs)
	}
}

// TestScannerZeroAllocsControlFrames proves the scanning machinery itself
// — header reads, payload buffer reuse, decoding — is allocation-free:
// LEAVE frames carry no message, so nothing needs an interface box.
func TestScannerZeroAllocsControlFrames(t *testing.T) {
	skipIfRace(t)
	const runs = 1000
	var stream []byte
	for i := 0; i < runs+10; i++ {
		var err error
		stream, err = wire.AppendFrameBytes(stream, wire.Frame{Type: wire.FrameLeave, From: 3})
		if err != nil {
			t.Fatal(err)
		}
	}
	s := wire.NewScanner(bytes.NewReader(stream))
	allocs := testing.AllocsPerRun(runs, func() {
		f, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != wire.FrameLeave || f.From != 3 {
			t.Fatalf("scanned %+v", f)
		}
	})
	if allocs != 0 {
		t.Fatalf("Scanner.Next allocs/op = %v on control frames, want 0", allocs)
	}
}

// TestScannerMsgDecodeSingleBox pins enveloped-message decode at its
// theoretical floor: exactly one allocation per frame, the core.Message
// interface box. A regression (payload copies, per-frame buffers) pushes
// the count above 1 and fails here.
func TestScannerMsgDecodeSingleBox(t *testing.T) {
	skipIfRace(t)
	const runs = 1000
	var stream []byte
	for i := 0; i < runs+10; i++ {
		var err error
		stream, err = wire.AppendFrameBytes(stream, hotMsgFrame())
		if err != nil {
			t.Fatal(err)
		}
	}
	s := wire.NewScanner(bytes.NewReader(stream))
	allocs := testing.AllocsPerRun(runs, func() {
		f, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := f.Msg.(core.WriteMsg); !ok {
			t.Fatalf("scanned %T", f.Msg)
		}
	})
	if allocs > 1 {
		t.Fatalf("Scanner.Next allocs/op = %v on message frames, want <= 1 (the interface box)", allocs)
	}
}

// TestBufferPoolRoundTrip exercises the frame-buffer pool contract: a
// recycled buffer comes back empty, and oversized buffers are dropped
// rather than pinned.
func TestBufferPoolRoundTrip(t *testing.T) {
	b := wire.GetBuffer()
	if len(*b) != 0 {
		t.Fatalf("pooled buffer len = %d, want 0", len(*b))
	}
	*b = append(*b, 1, 2, 3)
	wire.PutBuffer(b)
	c := wire.GetBuffer()
	if len(*c) != 0 {
		t.Fatalf("recycled buffer len = %d, want 0", len(*c))
	}
	wire.PutBuffer(c)
	huge := make([]byte, 0, 1<<20)
	wire.PutBuffer(&huge) // must not panic; silently dropped
	wire.PutBuffer(nil)   // nil is a no-op
}

// TestAppendFrameBytesMatchesFrameBytes pins the coalescing append path to
// the canonical one-frame encoding: byte-for-byte identical, so a remote
// cannot tell batched frames from per-frame writes.
func TestAppendFrameBytesMatchesFrameBytes(t *testing.T) {
	frames := []wire.Frame{
		hotMsgFrame(),
		{Type: wire.FrameHello, From: 2, Addr: "127.0.0.1:9999"},
		{Type: wire.FramePeers, Peers: []wire.Peer{{ID: 4, Addr: "10.0.0.1:1"}}},
		{Type: wire.FrameLeave, From: 11},
	}
	var batched []byte
	var canonical []byte
	for _, f := range frames {
		var err error
		batched, err = wire.AppendFrameBytes(batched, f)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := wire.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		canonical = append(canonical, wire.FrameBytes(payload)...)
	}
	if !bytes.Equal(batched, canonical) {
		t.Fatalf("AppendFrameBytes stream differs from FrameBytes stream\n got %x\nwant %x", batched, canonical)
	}
	// And the canonical reader must scan the batched stream unchanged.
	s := wire.NewScanner(bytes.NewReader(batched))
	for i := range frames {
		f, err := s.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != frames[i].Type {
			t.Fatalf("frame %d type = %v, want %v", i, f.Type, frames[i].Type)
		}
	}
}
