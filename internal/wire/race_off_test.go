//go:build !race

package wire_test

// raceEnabled mirrors whether the test binary was built with -race. The
// allocation-ceiling tests skip under the race detector, whose
// instrumentation perturbs allocation counts.
const raceEnabled = false
