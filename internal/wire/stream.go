package wire

import (
	"bufio"
	"encoding/binary"
	"io"
	"sync"
)

// defaultBufCap sizes fresh pooled buffers: comfortably above the largest
// common frame (protocol messages are tens of bytes) and a whole coalesced
// batch of them, without pinning much memory per connection.
const defaultBufCap = 4096

// poolCapLimit bounds what PutBuffer will recycle. A join-snapshot reply
// can legitimately approach MaxFrame; keeping such outliers out of the
// pool stops one huge frame from permanently inflating every pooled
// buffer.
const poolCapLimit = 64 << 10

// bufPool recycles frame buffers across encodes, flushes, and scanners,
// so the steady-state hot path never asks the heap for a buffer.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, defaultBufCap)
		return &b
	},
}

// GetBuffer hands out a zero-length frame buffer from the pool. Return it
// with PutBuffer when done; the pointer form avoids an allocation per
// round-trip (a bare slice would escape into the interface).
func GetBuffer() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuffer recycles a buffer obtained from GetBuffer. Oversized buffers
// (grown past poolCapLimit by an outlier frame) are dropped instead, so
// the pool's steady-state footprint stays bounded.
func PutBuffer(b *[]byte) {
	if b == nil || cap(*b) > poolCapLimit {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// Scanner reads length-prefixed frames from a connection through one
// bufio.Reader and one reusable payload buffer: after warm-up, scanning a
// stream of fixed-field frames performs zero heap allocations per frame
// (TestScannerZeroAllocs). DecodeFrame copies every field it returns, so
// reusing the payload buffer between calls is safe.
//
// A Scanner is owned by a single reader goroutine; it is not safe for
// concurrent use.
type Scanner struct {
	r   *bufio.Reader
	buf []byte
}

// NewScanner builds a Scanner over r.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{r: bufio.NewReaderSize(r, defaultBufCap), buf: make([]byte, 0, defaultBufCap)}
}

// Next reads and decodes one frame. It returns exactly ReadFrame's errors:
// io errors from the connection, ErrTooLarge for a hostile length prefix,
// and DecodeFrame's errors for malformed payloads.
func (s *Scanner) Next() (Frame, error) {
	// The header reads into the reusable payload buffer (not a local
	// array, which would escape through io.ReadFull and cost one heap
	// allocation per frame).
	if cap(s.buf) < 4 {
		s.buf = make([]byte, 0, defaultBufCap)
	}
	hdr := s.buf[:4]
	if _, err := io.ReadFull(s.r, hdr); err != nil {
		return Frame{}, err
	}
	n := int(binary.BigEndian.Uint32(hdr))
	if n == 0 || n > MaxFrame {
		return Frame{}, ErrTooLarge
	}
	if cap(s.buf) < n {
		s.buf = make([]byte, 0, n)
	}
	payload := s.buf[:n]
	if _, err := io.ReadFull(s.r, payload); err != nil {
		return Frame{}, err
	}
	return DecodeFrame(payload)
}
