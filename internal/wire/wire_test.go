package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"churnreg/internal/core"
)

// randMessage draws one message of each kind in rotation with randomized
// fields, including batched join snapshots and multi-key write batches.
func randMessage(rng *rand.Rand, kind core.MsgKind) core.Message {
	vv := func() core.VersionedValue {
		return core.VersionedValue{Val: core.Value(rng.Int63() - rng.Int63()), SN: core.SeqNum(rng.Int63n(1 << 40))}
	}
	kvs := func(n int) []core.KeyedValue {
		if n == 0 {
			return nil
		}
		out := make([]core.KeyedValue, n)
		for i := range out {
			out[i] = core.KeyedValue{Reg: core.RegisterID(rng.Int63n(1 << 20)), Value: vv()}
		}
		return out
	}
	from := core.ProcessID(rng.Int63n(1 << 30))
	op := func() core.OpID { return core.OpID(rng.Uint64() >> rng.Intn(64)) }
	switch kind {
	case core.KindInquiry:
		return core.InquiryMsg{From: from, RSN: core.ReadSeq(rng.Int63n(1 << 30)), Op: op()}
	case core.KindReply:
		return core.ReplyMsg{From: from, Value: vv(), RSN: core.ReadSeq(rng.Int63n(1 << 30)),
			Reg: core.RegisterID(rng.Int63n(1 << 20)), Op: op(), Rest: kvs(rng.Intn(64))}
	case core.KindWrite:
		return core.WriteMsg{From: from, Value: vv(), Reg: core.RegisterID(rng.Int63n(1 << 20)), Op: op()}
	case core.KindAck:
		return core.AckMsg{From: from, SN: core.SeqNum(rng.Int63n(1 << 40)), Reg: core.RegisterID(rng.Int63n(1 << 20)), Op: op()}
	case core.KindRead:
		return core.ReadMsg{From: from, RSN: core.ReadSeq(rng.Int63n(1 << 30)), Reg: core.RegisterID(rng.Int63n(1 << 20)), Op: op()}
	case core.KindDLPrev:
		return core.DLPrevMsg{From: from, RSN: core.ReadSeq(rng.Int63n(1 << 30)), Reg: core.RegisterID(rng.Int63n(1 << 20)), Op: op()}
	case core.KindClaim:
		return core.ClaimMsg{From: from, Stamp: rng.Int63()}
	case core.KindBeat:
		return core.BeatMsg{From: from, Free: rng.Intn(2) == 0, Seq: rng.Uint64()}
	case core.KindToken:
		return core.TokenMsg{From: from}
	case core.KindWriteBatch:
		return core.WriteBatchMsg{From: from, Op: op(), Entries: kvs(1 + rng.Intn(32))}
	case core.KindForward:
		return core.ForwardMsg{From: from, Op: op(), Reg: core.RegisterID(rng.Int63n(1 << 20)),
			IsWrite: rng.Intn(2) == 0, Val: core.Value(rng.Int63() - rng.Int63())}
	case core.KindForwarded:
		return core.ForwardedMsg{From: from, Op: op(), Reg: core.RegisterID(rng.Int63n(1 << 20)),
			Value: vv(), Code: core.ForwardCode(rng.Intn(4))}
	default:
		panic("unknown kind")
	}
}

var allKinds = []core.MsgKind{
	core.KindInquiry, core.KindReply, core.KindWrite, core.KindAck,
	core.KindRead, core.KindDLPrev, core.KindClaim, core.KindBeat,
	core.KindToken, core.KindWriteBatch, core.KindForward, core.KindForwarded,
}

func TestMessageRoundTripEveryKind(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, kind := range allKinds {
		for trial := 0; trial < 200; trial++ {
			m := randMessage(rng, kind)
			b, err := EncodeMessage(m)
			if err != nil {
				t.Fatalf("%v: encode: %v", kind, err)
			}
			got, err := DecodeMessage(b)
			if err != nil {
				t.Fatalf("%v: decode: %v", kind, err)
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("%v: round trip mismatch:\n in: %#v\nout: %#v", kind, m, got)
			}
		}
	}
}

func TestMessageRoundTripBoundaryValues(t *testing.T) {
	// Extremes: negative sentinels (BottomSN, neverBeat-era stamps), zero
	// values, max int64.
	msgs := []core.Message{
		core.InquiryMsg{From: core.NoProcess, RSN: core.JoinReadSeq},
		core.ReplyMsg{From: 1, Value: core.Bottom(), RSN: -1, Reg: core.DefaultRegister},
		core.ReplyMsg{From: 1<<62 - 1, Value: core.VersionedValue{Val: -1 << 62, SN: 1<<62 - 1},
			RSN: 1<<62 - 1, Reg: 1<<62 - 1,
			Rest: []core.KeyedValue{{Reg: -5, Value: core.Bottom()}}},
		core.WriteMsg{From: 3, Value: core.VersionedValue{Val: -9, SN: 0}, Reg: 0, Op: 1<<64 - 1},
		core.AckMsg{From: 2, SN: core.BottomSN, Reg: -1, Op: core.NoOp},
		core.BeatMsg{From: 4, Free: true, Seq: 1<<64 - 1},
		core.ClaimMsg{From: 5, Stamp: -1 << 40},
		core.TokenMsg{From: 6},
		core.WriteBatchMsg{From: 7, Entries: []core.KeyedValue{{Reg: 1, Value: core.VersionedValue{Val: 2, SN: 3}}}},
	}
	for _, m := range msgs {
		b, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("encode %#v: %v", m, err)
		}
		got, err := DecodeMessage(b)
		if err != nil {
			t.Fatalf("decode %#v: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", m, got)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	frames := []Frame{
		{Type: FrameHello, From: 42, Addr: "127.0.0.1:7001"},
		{Type: FrameHello, From: 1, Addr: ""},
		{Type: FrameHello, From: 0, Role: RoleClient},
		{Type: FrameLeave, From: 9},
		{Type: FramePeers},
		{Type: FramePeers, Peers: []Peer{{ID: 1, Addr: "10.0.0.1:9"}, {ID: 2, Addr: "[::1]:80"}}},
		{Type: FrameViewReq},
		{Type: FrameView, ViewVersion: 0, Shards: 0, Replication: 0},
		{Type: FrameView, ViewVersion: 17, Shards: 8, Replication: 3,
			Peers: []Peer{{ID: 1, Addr: "10.0.0.1:9"}, {ID: 2, Addr: "[::1]:80"}, {ID: 3, Addr: "c:3"}}},
	}
	for _, kind := range allKinds {
		frames = append(frames, Frame{Type: FrameMsg, From: core.ProcessID(rng.Int63n(1 << 30)), Msg: randMessage(rng, kind)})
	}
	for _, f := range frames {
		payload, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("encode %+v: %v", f, err)
		}
		got, err := DecodeFrame(payload)
		if err != nil {
			t.Fatalf("decode %+v: %v", f, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Fatalf("frame round trip mismatch:\n in: %#v\nout: %#v", f, got)
		}
	}
}

func TestWriteReadFrameStream(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var buf bytes.Buffer
	var sent []Frame
	for i := 0; i < 100; i++ {
		f := Frame{Type: FrameMsg, From: core.ProcessID(i + 1), Msg: randMessage(rng, allKinds[i%len(allKinds)])}
		sent = append(sent, f)
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("write frame %d: %v", i, err)
		}
	}
	for i, want := range sent {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d mismatch:\n in: %#v\nout: %#v", i, want, got)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("stream has %d trailing bytes", buf.Len())
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid, err := EncodeFrame(Frame{Type: FrameMsg, From: 1, Msg: core.TokenMsg{From: 1}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"version only":     {Version},
		"bad version":      {99, byte(FrameMsg)},
		"bad frame type":   {Version, 99},
		"truncated msg":    valid[:len(valid)-1],
		"trailing bytes":   append(append([]byte{}, valid...), 0),
		"bad msg kind":     {Version, byte(FrameMsg), 0, 0, 0, 0, 0, 0, 0, 1, 99},
		"hello addr short": {Version, byte(FrameHello), 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 50, 'x'},
		"hello bad role":   {Version, byte(FrameHello), 0, 0, 0, 0, 0, 0, 0, 1, 7, 0, 0},
		"peers count lies": {Version, byte(FramePeers), 0, 0, 4, 0},
		"viewreq trailing": {Version, byte(FrameViewReq), 0},
		"view truncated":   {Version, byte(FrameView), 0, 0, 0, 0, 0, 0, 0, 9, 0, 0},
	}
	for name, b := range cases {
		if _, err := DecodeFrame(b); err == nil {
			t.Errorf("%s: DecodeFrame accepted malformed payload % x", name, b)
		}
	}
}

func TestReadFrameRejectsOversizedPrefix(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("ReadFrame accepted a 4 GiB length prefix")
	}
}

// TestForgedCountNoHugeAlloc forges a snapshot reply whose entry count
// claims far more entries than the payload holds; the decoder must reject
// it without allocating for the claimed count.
func TestForgedCountNoHugeAlloc(t *testing.T) {
	b, err := EncodeMessage(core.ReplyMsg{From: 1, Reg: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The last 4 bytes are the Rest count; forge it huge.
	b[len(b)-1] = 0xff
	b[len(b)-2] = 0xff
	b[len(b)-3] = 0xff
	if _, err := DecodeMessage(b); err == nil {
		t.Fatal("decoder accepted forged entry count")
	}
}
