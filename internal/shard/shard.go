// Package shard turns any register protocol into a SHARDED one: a
// placement-aware wrapper node that routes client operations to the
// replica group of each key's shard, answers operations forwarded from
// non-replicas, and runs the shard handoff state exchange when membership
// changes move shards between nodes.
//
// # Division of labor
//
// Sharding has three parts, and this package owns exactly one of them:
//
//   - internal/placement computes WHO replicates each shard (consistent
//     hashing over the membership; runtimes rebuild the view on every
//     membership change and hand it to both the protocols, via
//     core.Placed on their Env, and to this wrapper, via
//     core.PlacementAware).
//   - The protocol engines (syncreg/esyncreg/abd/multiwriter) scope their
//     per-register traffic and quorums to the replica group themselves
//     (core.ScopedBroadcast / core.OpScope): a WRITE for a key reaches R
//     nodes, not n, and its quorum is a majority of R.
//   - This wrapper decides WHERE a client operation runs, keeps
//     non-replicas from serving keys they do not hold, and moves shard
//     state when placement changes.
//
// # Routing
//
// A read of key k is served locally when this node is in k's replica
// group (the synchronous protocol's fast local read stays fast, now on
// 1/S of the keyspace per shard owned); otherwise it is forwarded —
// FORWARD(op, k) to a group member, FORWARDED(op, value) back, routed by
// the wrapper's own operation table exactly like every other
// request/reply pair. Reads are idempotent, so a forward that goes
// unanswered (its target died) retries against the next group member.
//
// A write of key k always runs at the shard's PRIMARY (the group's
// first-priority member), because sequence-number assignment for a key
// must stay in one process's hands at a time — the same per-key
// single-writer discipline the paper's protocols assume, now enforced
// per shard by routing. A node that is not the primary forwards, and a
// node asked to serve a write it is no longer primary for refuses
// (WRONG_REPLICA) rather than minting a conflicting sequence number. An
// unanswered forwarded write is NOT retried: the serving primary may have
// applied it before dying, so the wrapper surfaces core.ErrUnacknowledged
// and lets the client decide — re-issuing blindly could write one value
// under two sequence numbers.
//
// # Handoff
//
// When a view change makes this node a replica of a shard it did not
// hold, the shard is PENDING: operations on it queue while the wrapper
// asks the shard's previous and current replicas (the donors) for their
// state — INQUIRY(HandoffReadSeq, shard) answered by a full snapshot
// REPLY, the same batched-snapshot machinery a join uses, intercepted by
// the donor's wrapper so it works identically over every protocol. The
// snapshot's entries for pending shards are replayed into the inner node
// as synthetic WRITE deliveries (monotone per-key merge — always safe).
// The shard becomes ready once a majority of its donors answered: any
// completed write on the shard reached a majority of the old group, and
// majorities intersect, so the freshest value is in the merged state.
// Donors that die mid-handoff are dropped from the requirement as the
// membership view catches up (each retry round recomputes the donor set
// against current members, and after a few silent rounds the wrapper
// accepts any single answer rather than stalling forever — a liveness/
// completeness trade documented in ARCHITECTURE.md).
//
// Nodes entering the system fresh (a join) run the same handoff for every
// shard they own on their first view: the paper's join INQUIRY collects a
// majority of the WHOLE system, which no longer necessarily intersects a
// per-shard write quorum once R < n — the per-shard handoff restores
// exactly that intersection. Bootstrap processes skip it (they hold the
// initial state by definition).
package shard

import (
	"churnreg/internal/core"
	"churnreg/internal/placement"
	"churnreg/internal/sim"
)

// Tunables (in ticks of the runtime's clock, scaled by δ so one set of
// constants serves both the synchronous and quorum protocols).
const (
	// fwdTimeoutDeltas: a forwarded operation unanswered for this many δ
	// is presumed lost (reads retry, writes fail ErrUnacknowledged).
	fwdTimeoutDeltas = 10
	// fwdTimeoutSlack is added on top, covering quorum round-trips that
	// are not δ-bounded (the eventually synchronous protocol).
	fwdTimeoutSlack = 50
	// maxFwdAttempts bounds read re-routing and explicit-refusal retries.
	maxFwdAttempts = 6
	// retryDelayTicks spaces retries after an explicit refusal.
	retryDelayTicks = 2
	// handoffRetryDeltas spaces handoff re-inquiry rounds.
	handoffRetryDeltas = 3
	// handoffRelaxAfter is the number of silent retry rounds after which
	// a single donor answer marks the shard ready (donors presumed dead
	// but not yet evicted from the membership view).
	handoffRelaxAfter = 3
)

// fwdOp is one forwarded client operation awaiting its FORWARDED answer.
type fwdOp struct {
	reg      core.RegisterID
	isWrite  bool
	val      core.Value
	attempts int
	// sentTo is the replica the current attempt targets (diagnostics).
	sentTo    core.ProcessID
	readDone  func(core.VersionedValue, core.ProcessID, error)
	writeDone func(core.VersionedValue, error)
}

// shardState tracks one owned shard: ready to serve, or pending handoff.
type shardState struct {
	ready  bool
	donors []core.ProcessID
	got    map[core.ProcessID]bool
	rounds int
	// queue holds operations (local client ops and forwarded serves)
	// blocked on this shard becoming ready; flushed in arrival order.
	queue []func()
}

// Node wraps an inner protocol node with shard routing and handoff. It
// is driven by the same single-threaded runtime contract as every
// protocol node — no locks.
type Node struct {
	env   core.Env
	inner core.Node

	// view is the latest placement this node was told about; nil until
	// the runtime pushes one (the wrapper delegates everything until
	// then, so an unsharded runtime pays nothing).
	view        core.PlacementView
	sawView     bool
	viewVersion uint64
	// bootstrap marks one of the initial processes: its first view needs
	// no handoff (it holds the initial state by definition).
	bootstrap bool

	// shards holds state for every owned shard.
	shards map[int]*shardState
	// fwd is the wrapper's own operation table for forwarded ops.
	fwd *core.OpTable[fwdOp]

	stats Stats
}

// Stats counts wrapper activity at this node.
type Stats struct {
	LocalReads       uint64
	ForwardedReads   uint64
	LocalWrites      uint64
	ForwardedWrites  uint64
	ForwardsServed   uint64
	ForwardsRefused  uint64
	HandoffsStarted  uint64 // shards that entered pending state
	HandoffsComplete uint64
	HandoffSnapshots uint64 // donor snapshots merged
}

// Factory wraps a protocol factory: every node the runtime spawns is a
// sharding wrapper around the inner protocol node.
func Factory(inner core.NodeFactory) core.NodeFactory {
	return func(env core.Env, sc core.SpawnContext) core.Node {
		return New(env, sc, inner)
	}
}

// New builds a wrapper around inner's node for this process.
func New(env core.Env, sc core.SpawnContext, inner core.NodeFactory) *Node {
	return &Node{
		env:       env,
		inner:     inner(env, sc),
		bootstrap: sc.Bootstrap,
		shards:    make(map[int]*shardState),
		fwd:       core.NewOpTable[fwdOp](0),
	}
}

// Inner exposes the wrapped protocol node (stats, tests).
func (n *Node) Inner() core.Node { return n.inner }

// Stats returns a copy of the wrapper's counters.
func (n *Node) Stats() Stats { return n.stats }

// Compile-time interface checks.
var (
	_ core.Node                  = (*Node)(nil)
	_ core.KeyedReader           = (*Node)(nil)
	_ core.KeyedWriter           = (*Node)(nil)
	_ core.SNWriter              = (*Node)(nil)
	_ core.ServedReader          = (*Node)(nil)
	_ core.FallibleSNWriter      = (*Node)(nil)
	_ core.FallibleSNBatchWriter = (*Node)(nil)
	_ core.KeyedSnapshotter      = (*Node)(nil)
	_ core.OpAccountant          = (*Node)(nil)
	_ core.Joiner                = (*Node)(nil)
	_ core.PlacementAware        = (*Node)(nil)
)

// ---- core.Node ----

// Start implements core.Node.
func (n *Node) Start() { n.inner.Start() }

// Active implements core.Node.
func (n *Node) Active() bool { return n.inner.Active() }

// Snapshot implements core.Node.
func (n *Node) Snapshot() core.VersionedValue { return n.inner.Snapshot() }

// Deliver implements core.Node: wrapper traffic (forwards, handoff) is
// consumed here; everything else flows to the inner protocol.
func (n *Node) Deliver(from core.ProcessID, m core.Message) {
	switch msg := m.(type) {
	case core.ForwardMsg:
		n.handleForward(msg)
		return
	case core.ForwardedMsg:
		n.handleForwarded(msg)
		return
	case core.InquiryMsg:
		if msg.RSN == core.HandoffReadSeq {
			n.handleHandoffInquiry(msg)
			return
		}
	case core.ReplyMsg:
		if msg.RSN == core.HandoffReadSeq {
			n.handleHandoffReply(msg)
			return
		}
	}
	n.inner.Deliver(from, m)
}

// ---- delegation ----

// OnJoined implements core.Joiner, also flushing shard queues blocked on
// the join (operations gated only on activation, not handoff).
func (n *Node) OnJoined(done func()) {
	if j, ok := n.inner.(core.Joiner); ok {
		j.OnJoined(done)
		return
	}
	if done != nil && n.inner.Active() {
		done()
	}
}

// SnapshotKey implements core.KeyedSnapshotter.
func (n *Node) SnapshotKey(k core.RegisterID) core.VersionedValue {
	return core.SnapshotKey(n.inner, k)
}

// Keys implements core.KeyedSnapshotter.
func (n *Node) Keys() []core.RegisterID {
	if s, ok := n.inner.(core.KeyedSnapshotter); ok {
		return s.Keys()
	}
	return nil
}

// ReadPathCounts implements core.ReadPathCounter by delegation: the
// wrapper adds no read round-trips of its own, so the inner protocol's
// fast/slow split is the node's. Zero for protocols without the counter.
func (n *Node) ReadPathCounts() (fast, slow uint64) {
	if c, ok := n.inner.(core.ReadPathCounter); ok {
		return c.ReadPathCounts()
	}
	return 0, 0
}

// PendingOps implements core.OpAccountant: the inner table plus the
// wrapper's forwarding table plus queued (shard-blocked) operations.
func (n *Node) PendingOps() int {
	total := n.fwd.Len()
	if a, ok := n.inner.(core.OpAccountant); ok {
		total += a.PendingOps()
	}
	for _, st := range n.shards {
		total += len(st.queue)
	}
	return total
}

// ---- placement ----

// PlacementChanged implements core.PlacementAware: adopt the new view,
// start handoff for gained shards, drop state for lost ones. Views
// stamped with a version (placement.View.SetVersion) are applied in
// stamp order; a stale one — possible when a concurrent runtime posts
// views to the node loop asynchronously — is dropped.
func (n *Node) PlacementChanged(view core.PlacementView) {
	if vv, ok := view.(interface{ ViewVersion() uint64 }); ok {
		ver := vv.ViewVersion()
		if ver != 0 {
			if ver <= n.viewVersion {
				return
			}
			n.viewVersion = ver
		}
	}
	old := n.view
	first := !n.sawView
	n.view = view
	n.sawView = true
	if view == nil {
		return
	}
	self := n.env.ID()
	owned := make(map[int]bool)
	for s := 0; s < view.NumShards(); s++ {
		if containsID(view.GroupFor(s), self) {
			owned[s] = true
		}
	}
	// Lost shards: re-dispatch anything queued on them (it forwards now).
	for s, st := range n.shards {
		if !owned[s] {
			q := st.queue
			st.queue = nil
			delete(n.shards, s)
			for _, fn := range q {
				fn()
			}
		}
	}
	for s := range owned {
		st := n.shards[s]
		if st != nil {
			if !st.ready {
				// Pending handoff continues; refresh the donor set
				// against the new view so dead donors stop being
				// required.
				st.donors = donorsFor(old, view, s, self)
				n.checkHandoffReady(s, st)
			}
			continue
		}
		st = &shardState{}
		n.shards[s] = st
		if first && n.bootstrap {
			// Bootstrap population: the initial state is already here.
			st.ready = true
			continue
		}
		st.donors = donorsFor(old, view, s, self)
		st.got = make(map[core.ProcessID]bool)
		if len(st.donors) == 0 {
			// Nobody to ask (first process in, or every holder gone):
			// serve with what we have.
			st.ready = true
			continue
		}
		n.stats.HandoffsStarted++
		n.sendHandoffInquiries(s, st)
		n.scheduleHandoffRetry(s, st)
	}
}

// Placement returns the wrapper's current view (tests).
func (n *Node) Placement() core.PlacementView { return n.view }

// donorsFor computes the processes able to seed shard s: the union of
// the shard's groups under the old and new views, restricted to the new
// view's members, excluding self (placement.Donors).
func donorsFor(old, v core.PlacementView, s int, self core.ProcessID) []core.ProcessID {
	return placement.Donors(old, v, s, self)
}

func (n *Node) sendHandoffInquiries(s int, st *shardState) {
	for _, d := range st.donors {
		if !st.got[d] {
			n.env.Send(d, core.InquiryMsg{From: n.env.ID(), RSN: core.HandoffReadSeq, Op: core.OpID(s)})
		}
	}
}

// scheduleHandoffRetry arms one retry round for the pending shard. The
// timer is bound to THIS shardState by pointer identity: if the shard
// is lost and later regained, the new state starts its own chain and
// the stale timer dies — otherwise two chains would double-count silent
// rounds and reach the single-donor relaxation early.
func (n *Node) scheduleHandoffRetry(s int, st *shardState) {
	n.env.After(handoffRetryDeltas*n.env.Delta()+1, func() {
		if n.shards[s] != st || st.ready {
			return
		}
		st.rounds++
		if n.view != nil {
			st.donors = donorsFor(nil, n.view, s, n.env.ID())
		}
		if n.checkHandoffReady(s, st) {
			return
		}
		n.sendHandoffInquiries(s, st)
		n.scheduleHandoffRetry(s, st)
	})
}

// handoffNeed returns how many donor answers shard s still requires: a
// majority of its (live) donors, relaxed to one answer after several
// silent rounds.
func (st *shardState) handoffNeed() int {
	need := len(st.donors)/2 + 1
	if st.rounds >= handoffRelaxAfter && need > 1 {
		need = 1
	}
	if need > len(st.donors) {
		need = len(st.donors)
	}
	return need
}

// checkHandoffReady marks the shard ready once enough donors answered
// (or none remain to ask), flushing its queue. Reports readiness.
func (n *Node) checkHandoffReady(s int, st *shardState) bool {
	if st.ready {
		return true
	}
	answered := 0
	for _, d := range st.donors {
		if st.got[d] {
			answered++
		}
	}
	if len(st.donors) > 0 && answered < st.handoffNeed() {
		return false
	}
	st.ready = true
	st.got = nil
	n.stats.HandoffsComplete++
	q := st.queue
	st.queue = nil
	for _, fn := range q {
		fn()
	}
	return true
}

// handleHandoffInquiry answers a gaining node's state request with a
// snapshot of the inner node's copies for the REQUESTED shard (m.Op is
// the shard tag; shard counts are deployment constants, so the donor's
// own view computes the same ShardOf) — only when active (a joining
// donor's state is partial; the requester's retry rounds cover the
// silence). Filtering at the donor keeps handoff traffic proportional
// to the keys that moved, not to the whole keyspace; without a view
// yet, the full snapshot goes out and the requester filters instead.
func (n *Node) handleHandoffInquiry(m core.InquiryMsg) {
	if !n.inner.Active() {
		return
	}
	s, ok := n.inner.(core.KeyedSnapshotter)
	if !ok {
		return
	}
	shard := int(m.Op)
	inShard := func(k core.RegisterID) bool {
		return n.view == nil || n.view.ShardOf(k) == shard
	}
	reply := core.ReplyMsg{
		From:  n.env.ID(),
		Value: core.Bottom(),
		RSN:   core.HandoffReadSeq,
		Reg:   core.DefaultRegister,
		Op:    m.Op, // echoes the requester's shard tag
	}
	if inShard(core.DefaultRegister) {
		reply.Value = core.SnapshotKey(n.inner, core.DefaultRegister)
	}
	for _, k := range s.Keys() {
		if k == core.DefaultRegister || !inShard(k) {
			continue
		}
		reply.Rest = append(reply.Rest, core.KeyedValue{Reg: k, Value: s.SnapshotKey(k)})
	}
	n.env.Send(m.From, reply)
}

// handleHandoffReply merges a donor's snapshot into the inner node —
// synthetic WRITE deliveries, a monotone per-key merge every protocol
// already implements — and advances the shard's readiness.
func (n *Node) handleHandoffReply(m core.ReplyMsg) {
	s := int(m.Op)
	st := n.shards[s]
	if st == nil || st.ready {
		return
	}
	n.stats.HandoffSnapshots++
	m.Entries(func(k core.RegisterID, v core.VersionedValue) {
		if v.IsBottom() {
			return
		}
		if n.view != nil && n.view.ShardOf(k) != s && !n.pendingShard(n.view.ShardOf(k)) {
			// Keep the merge to shards this node is (or is becoming) a
			// replica of — storage hygiene, not correctness.
			return
		}
		n.inner.Deliver(m.From, core.WriteMsg{From: m.From, Value: v, Reg: k, Op: core.NoOp})
	})
	st.got[m.From] = true
	n.checkHandoffReady(s, st)
}

// pendingShard reports whether s is owned and still pending handoff.
func (n *Node) pendingShard(s int) bool {
	st := n.shards[s]
	return st != nil && !st.ready
}

// ---- client operations ----

// ReadKey implements core.KeyedReader (compat shim over ReadKeyServed;
// routing failures surface as a ⊥ result).
func (n *Node) ReadKey(reg core.RegisterID, done func(core.VersionedValue)) error {
	return n.ReadKeyServed(reg, func(v core.VersionedValue, _ core.ProcessID, err error) {
		if done == nil {
			return
		}
		if err != nil {
			done(core.Bottom())
			return
		}
		done(v)
	})
}

// ReadKeyServed implements core.ServedReader: serve locally when this
// node replicates the key's shard, else forward to a group member. The
// invocation only fails on backpressure (full forwarding table); every
// later outcome — including routing failure — arrives through done.
func (n *Node) ReadKeyServed(reg core.RegisterID, done func(core.VersionedValue, core.ProcessID, error)) error {
	if n.view == nil {
		return n.serveReadLocal(reg, done)
	}
	if n.fwd.Full() {
		return core.ErrOpInProgress
	}
	n.dispatchRead(reg, 0, done)
	return nil
}

// serveReadLocal runs the read on the inner node.
func (n *Node) serveReadLocal(reg core.RegisterID, done func(core.VersionedValue, core.ProcessID, error)) error {
	self := n.env.ID()
	switch r := n.inner.(type) {
	case core.KeyedLocalReader:
		v, err := r.ReadLocalKey(reg)
		if err != nil {
			return err
		}
		done(v, self, nil)
		return nil
	case core.KeyedReader:
		return r.ReadKey(reg, func(v core.VersionedValue) { done(v, self, nil) })
	default:
		return core.ErrUnroutable
	}
}

// dispatchRead routes one read attempt. Runs on the node loop; never
// returns an error — outcomes flow through done.
func (n *Node) dispatchRead(reg core.RegisterID, attempt int, done func(core.VersionedValue, core.ProcessID, error)) {
	v := n.view
	if v == nil {
		if err := n.serveReadLocal(reg, done); err != nil {
			done(core.Bottom(), core.NoProcess, err)
		}
		return
	}
	g := v.Group(reg)
	if len(g) == 0 {
		done(core.Bottom(), core.NoProcess, core.ErrUnroutable)
		return
	}
	self := n.env.ID()
	shard := v.ShardOf(reg)
	if containsID(g, self) {
		if n.pendingShard(shard) {
			n.queueOnShard(shard, func() { n.dispatchRead(reg, attempt, done) })
			return
		}
		if n.inner.Active() {
			n.stats.LocalReads++
			if err := n.serveReadLocal(reg, done); err != nil {
				done(core.Bottom(), core.NoProcess, err)
			}
			return
		}
		// Not active yet: fall through and forward to another replica
		// (the joiner's clients should not wait out the whole join).
	}
	if attempt >= maxFwdAttempts {
		done(core.Bottom(), core.NoProcess, core.ErrUnroutable)
		return
	}
	// Rotate through the group so a dead primary does not blackhole
	// reads while eviction catches up.
	var target core.ProcessID
	picked := false
	for i := 0; i < len(g); i++ {
		t := g[(attempt+i)%len(g)]
		if t != self {
			target = t
			picked = true
			break
		}
	}
	if !picked {
		done(core.Bottom(), core.NoProcess, core.ErrUnroutable)
		return
	}
	n.stats.ForwardedReads++
	n.forward(reg, attempt, target, fwdOp{reg: reg, readDone: done})
}

// WriteKey implements core.KeyedWriter (compat shim).
func (n *Node) WriteKey(reg core.RegisterID, v core.Value, done func()) error {
	return n.WriteKeySNErr(reg, v, func(_ core.VersionedValue, err error) {
		if done != nil && err == nil {
			done()
		}
	})
}

// WriteKeySN implements core.SNWriter (compat shim; routing failures
// surface as a ⊥ result).
func (n *Node) WriteKeySN(reg core.RegisterID, v core.Value, done func(core.VersionedValue)) error {
	return n.WriteKeySNErr(reg, v, func(vv core.VersionedValue, err error) {
		if done == nil {
			return
		}
		if err != nil {
			done(core.Bottom())
			return
		}
		done(vv)
	})
}

// WriteKeySNErr implements core.FallibleSNWriter: serve locally when
// this node is the key's shard primary, else forward to the primary.
func (n *Node) WriteKeySNErr(reg core.RegisterID, v core.Value, done func(core.VersionedValue, error)) error {
	if n.view == nil {
		return n.serveWriteLocal(reg, v, done)
	}
	if n.fwd.Full() {
		return core.ErrOpInProgress
	}
	n.dispatchWrite(reg, v, 0, done)
	return nil
}

// serveWriteLocal runs the write on the inner node.
func (n *Node) serveWriteLocal(reg core.RegisterID, v core.Value, done func(core.VersionedValue, error)) error {
	switch w := n.inner.(type) {
	case core.SNWriter:
		return w.WriteKeySN(reg, v, func(vv core.VersionedValue) { done(vv, nil) })
	case core.KeyedWriter:
		return w.WriteKey(reg, v, func() { done(core.SnapshotKey(n.inner, reg), nil) })
	default:
		return core.ErrUnroutable
	}
}

// dispatchWrite routes one write attempt to the key's primary.
func (n *Node) dispatchWrite(reg core.RegisterID, v core.Value, attempt int, done func(core.VersionedValue, error)) {
	view := n.view
	if view == nil {
		if err := n.serveWriteLocal(reg, v, done); err != nil {
			done(core.Bottom(), err)
		}
		return
	}
	g := view.Group(reg)
	if len(g) == 0 {
		done(core.Bottom(), core.ErrUnroutable)
		return
	}
	self := n.env.ID()
	shard := view.ShardOf(reg)
	if g[0] == self {
		if n.pendingShard(shard) {
			n.queueOnShard(shard, func() { n.dispatchWrite(reg, v, attempt, done) })
			return
		}
		n.stats.LocalWrites++
		if err := n.serveWriteLocal(reg, v, done); err != nil {
			done(core.Bottom(), err)
		}
		return
	}
	if attempt >= maxFwdAttempts {
		done(core.Bottom(), core.ErrUnroutable)
		return
	}
	n.stats.ForwardedWrites++
	n.forward(reg, attempt, g[0], fwdOp{reg: reg, isWrite: true, val: v, writeDone: done})
}

// WriteBatchSNErr implements core.FallibleSNBatchWriter: a batch whose
// every key lives in ONE shard this node is primary for (and ready)
// keeps the inner protocol's one-broadcast dividend — the broadcast
// reaches exactly that shard's group; any other batch decomposes into
// per-key writes, each routed independently. (Same-primary keys from
// DIFFERENT shards also decompose: one batched broadcast to the union
// of their groups would store every key on every union member, leaking
// the per-shard capacity bound.) done reports the stored ⟨v, sn⟩ per
// entry, or the most severe error.
func (n *Node) WriteBatchSNErr(entries []core.KeyedWrite, done func([]core.KeyedValue, error)) error {
	if n.view != nil {
		allLocal := len(entries) > 0
		firstShard := -1
		for i, e := range entries {
			s := n.view.ShardOf(e.Reg)
			if i == 0 {
				firstShard = s
			}
			if s != firstShard || n.view.Group(e.Reg)[0] != n.env.ID() || n.pendingShard(s) {
				allLocal = false
				break
			}
		}
		if !allLocal {
			// Decompose: each entry routes to its own shard primary.
			// Every entry settles through the one accounting path — a
			// synchronous invocation failure settles its entry too,
			// never orphaning entries already dispatched (their
			// forwards may still be applied). The reported error
			// prefers ErrUnacknowledged over clean refusals: ambiguity
			// dominates, because the caller's safe reaction to "maybe
			// applied" covers "definitely not applied" but not vice
			// versa.
			out := make([]core.KeyedValue, len(entries))
			remaining := len(entries)
			var failed error
			settle := func(i int, reg core.RegisterID, vv core.VersionedValue, err error) {
				if err != nil && (failed == nil || err == core.ErrUnacknowledged) {
					failed = err
				}
				out[i] = core.KeyedValue{Reg: reg, Value: vv}
				if remaining--; remaining == 0 {
					done(out, failed)
				}
			}
			for i, e := range entries {
				i, e := i, e
				err := n.WriteKeySNErr(e.Reg, e.Val, func(vv core.VersionedValue, err error) {
					settle(i, e.Reg, vv, err)
				})
				if err != nil {
					settle(i, e.Reg, core.Bottom(), err)
				}
			}
			return nil
		}
	}
	if bw, ok := n.inner.(core.SNBatchWriter); ok {
		return bw.WriteBatchSN(entries, func(kvs []core.KeyedValue) { done(kvs, nil) })
	}
	out := make([]core.KeyedValue, len(entries))
	remaining := len(entries)
	for i, e := range entries {
		i, e := i, e
		if err := n.serveWriteLocal(e.Reg, e.Val, func(vv core.VersionedValue, err error) {
			out[i] = core.KeyedValue{Reg: e.Reg, Value: vv}
			if remaining--; remaining == 0 {
				done(out, err)
			}
		}); err != nil {
			return err
		}
	}
	return nil
}

// queueOnShard parks an operation until the shard's handoff completes.
func (n *Node) queueOnShard(s int, fn func()) {
	st := n.shards[s]
	if st == nil || st.ready {
		fn()
		return
	}
	st.queue = append(st.queue, fn)
}

// ---- forwarding ----

// forward registers op in the wrapper table and sends FORWARD to target,
// arming the loss timer.
func (n *Node) forward(reg core.RegisterID, attempt int, target core.ProcessID, op fwdOp) {
	id, o := n.fwd.Begin()
	*o = op
	o.attempts = attempt
	o.sentTo = target
	n.env.Send(target, core.ForwardMsg{From: n.env.ID(), Op: id, Reg: reg, IsWrite: o.isWrite, Val: o.val})
	n.armFwdTimer(id)
}

func (n *Node) fwdTimeout() sim.Duration {
	return fwdTimeoutDeltas*n.env.Delta() + fwdTimeoutSlack
}

func (n *Node) armFwdTimer(id core.OpID) {
	n.env.After(n.fwdTimeout(), func() {
		o, ok := n.fwd.Get(id)
		if !ok {
			return
		}
		n.fwd.Finish(id)
		if o.isWrite {
			// The target may have applied the write and died before
			// answering — ambiguous, so no blind retry.
			o.writeDone(core.Bottom(), core.ErrUnacknowledged)
			return
		}
		// Reads are idempotent: try the next replica.
		n.dispatchRead(o.reg, o.attempts+1, o.readDone)
	})
}

// handleForward serves (or refuses) an operation forwarded to this node
// — by a relaying peer with a staler view, or by an external client
// session routing directly (the wire client's operations arrive as
// FORWARDs from the transport's session pseudo-ids). With no view yet
// the node serves unconditionally: an unsharded system replicates every
// key everywhere, so there is no wrong replica to refuse from.
func (n *Node) handleForward(m core.ForwardMsg) {
	refuse := func(code core.ForwardCode) {
		n.stats.ForwardsRefused++
		n.env.Send(m.From, core.ForwardedMsg{From: n.env.ID(), Op: m.Op, Reg: m.Reg, Code: code})
	}
	v := n.view
	if v != nil {
		if !v.IsReplica(m.Reg, n.env.ID()) {
			refuse(core.ForwardWrongReplica)
			return
		}
		if m.IsWrite && v.Group(m.Reg)[0] != n.env.ID() {
			// Only the CURRENT primary assigns a key's sequence numbers; a
			// requester with a stale view must re-route, not split the
			// write stream across two nodes.
			refuse(core.ForwardWrongReplica)
			return
		}
		shard := v.ShardOf(m.Reg)
		if n.pendingShard(shard) {
			n.queueOnShard(shard, func() { n.handleForward(m) })
			return
		}
	}
	if !n.inner.Active() {
		refuse(core.ForwardNotActive)
		return
	}
	reply := func(vv core.VersionedValue) {
		n.stats.ForwardsServed++
		n.env.Send(m.From, core.ForwardedMsg{From: n.env.ID(), Op: m.Op, Reg: m.Reg, Value: vv})
	}
	var err error
	if m.IsWrite {
		err = n.serveWriteLocal(m.Reg, m.Val, func(vv core.VersionedValue, serr error) {
			if serr != nil {
				refuse(core.ForwardBusy)
				return
			}
			reply(vv)
		})
	} else {
		err = n.serveReadLocal(m.Reg, func(vv core.VersionedValue, _ core.ProcessID, serr error) {
			if serr != nil {
				refuse(core.ForwardBusy)
				return
			}
			reply(vv)
		})
	}
	if err != nil {
		switch err {
		case core.ErrNotActive:
			refuse(core.ForwardNotActive)
		case core.ErrOpInProgress:
			refuse(core.ForwardBusy)
		default:
			refuse(core.ForwardWrongReplica)
		}
	}
}

// handleForwarded routes a forward's answer to its waiting operation.
func (n *Node) handleForwarded(m core.ForwardedMsg) {
	o, ok := n.fwd.Get(m.Op)
	if !ok || o.reg != m.Reg {
		return // stale: timed out, retried, or never existed
	}
	n.fwd.Finish(m.Op)
	if m.Code == core.ForwardOK {
		if o.isWrite {
			o.writeDone(m.Value, nil)
		} else {
			o.readDone(m.Value, m.From, nil)
		}
		return
	}
	// Explicit refusal: the operation was NOT applied, so retrying is
	// safe for writes too. Space the retry out and re-resolve routing
	// (the refusal usually means our view lags the server's).
	attempt := o.attempts + 1
	n.env.After(retryDelayTicks, func() {
		if o.isWrite {
			n.dispatchWrite(o.reg, o.val, attempt, o.writeDone)
		} else {
			n.dispatchRead(o.reg, attempt, o.readDone)
		}
	})
}

func containsID(ids []core.ProcessID, id core.ProcessID) bool {
	for _, m := range ids {
		if m == id {
			return true
		}
	}
	return false
}
