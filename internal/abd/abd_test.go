package abd_test

import (
	"testing"

	"churnreg/internal/abd"
	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/netsim"
	"churnreg/internal/sim"
)

const delta = 5

func newSystem(t *testing.T, n int, churnRate float64) *dynsys.System {
	t.Helper()
	sys, err := dynsys.New(dynsys.Config{
		N:         n,
		Delta:     delta,
		Model:     netsim.SynchronousModel{Delta: delta},
		Factory:   abd.Factory(),
		Seed:      3,
		ChurnRate: churnRate,
		Initial:   core.VersionedValue{Val: 0, SN: 0},
	})
	if err != nil {
		t.Fatalf("dynsys.New: %v", err)
	}
	return sys
}

func abdNode(t *testing.T, sys *dynsys.System, id core.ProcessID) *abd.Node {
	t.Helper()
	n, ok := sys.Node(id).(*abd.Node)
	if !ok {
		t.Fatalf("node %v is %T", id, sys.Node(id))
	}
	return n
}

func TestWriteThenRead(t *testing.T) {
	sys := newSystem(t, 5, 0)
	ids := sys.ActiveIDs()
	w := abdNode(t, sys, ids[0])
	r := abdNode(t, sys, ids[2])

	wrote := false
	if err := w.Write(11, func() { wrote = true }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(4 * delta); err != nil {
		t.Fatal(err)
	}
	if !wrote {
		t.Fatal("write did not complete")
	}
	var got core.VersionedValue
	if err := r.Read(func(v core.VersionedValue) { got = v }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(4 * delta); err != nil {
		t.Fatal(err)
	}
	if got.Val != 11 || got.SN != 1 {
		t.Fatalf("read %v, want ⟨11,#1⟩", got)
	}
}

func TestReadQuorumIntersectsWriteQuorum(t *testing.T) {
	// Drop the WRITE to two of five processes: the write still completes
	// (3 acks) and any read quorum (3) must include at least one process
	// holding the new value.
	sys := newSystem(t, 5, 0)
	ids := sys.ActiveIDs()
	w := abdNode(t, sys, ids[0])
	dropTo := map[core.ProcessID]bool{ids[3]: true, ids[4]: true}
	sys.Network().SetDropRule(func(_, to core.ProcessID, m core.Message, _ sim.Time) bool {
		return m.Kind() == core.KindWrite && dropTo[to]
	})
	if err := w.Write(5, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(4 * delta); err != nil {
		t.Fatal(err)
	}
	r := abdNode(t, sys, ids[4])
	var got core.VersionedValue
	if err := r.Read(func(v core.VersionedValue) { got = v }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(4 * delta); err != nil {
		t.Fatal(err)
	}
	if got.SN != 1 {
		t.Fatalf("read %v, want sn 1", got)
	}
}

func TestReplacementsArePassive(t *testing.T) {
	sys := newSystem(t, 4, 0)
	id, node := sys.Spawn()
	if err := sys.RunFor(10 * delta); err != nil {
		t.Fatal(err)
	}
	if node.Active() {
		t.Fatal("ABD replacement became active without a join protocol")
	}
	n := abdNode(t, sys, id)
	if err := n.Read(nil); err != core.ErrNotActive {
		t.Fatalf("Read on passive replica = %v, want ErrNotActive", err)
	}
	if err := n.Write(1, nil); err != core.ErrNotActive {
		t.Fatalf("Write on passive replica = %v, want ErrNotActive", err)
	}
}

func TestPassiveReplicaServesQuorums(t *testing.T) {
	sys := newSystem(t, 4, 0)
	_, _ = sys.Spawn() // p5, passive
	if err := sys.RunFor(2); err != nil {
		t.Fatal(err)
	}
	ids := sys.ActiveIDs()
	r := abdNode(t, sys, ids[0])
	read := false
	if err := r.Read(func(core.VersionedValue) { read = true }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(4 * delta); err != nil {
		t.Fatal(err)
	}
	if !read {
		t.Fatal("read did not complete")
	}
	// The passive p5 must have answered with ⊥ at least once across the
	// quorum query (it was in the broadcast snapshot).
	p5 := abdNode(t, sys, 5)
	if p5.Stats().RepliesSent == 0 {
		t.Fatal("passive replica did not serve the quorum query")
	}
	if p5.Stats().BottomSent == 0 {
		t.Fatal("passive replica reply was not ⊥")
	}
}

func TestStaleValueAfterHeavyTurnover(t *testing.T) {
	// The motivating failure: under churn, informed replicas are replaced
	// by empty ones; eventually a read quorum can consist entirely of
	// replicas that never saw the write, returning the stale/initial
	// value. (With ⊥-holding replicas, merging yields sn=-1 losers, so the
	// reader keeps its own copy — the erosion shows up as BottomSent and,
	// for fresh readers, as stale results.)
	sys := newSystem(t, 10, 0.02)
	ids := sys.ActiveIDs()
	w := abdNode(t, sys, ids[0])
	wrote := false
	if err := w.Write(400, func() { wrote = true }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(3000); err != nil {
		t.Fatal(err)
	}
	if !wrote {
		t.Fatal("write did not complete")
	}
	// After heavy turnover, most replicas hold ⊥.
	bottoms := 0
	for _, id := range sys.Network().PresentIDs() {
		if sys.Node(id).Snapshot().IsBottom() {
			bottoms++
		}
	}
	if bottoms < 5 {
		t.Fatalf("turnover did not erode state: only %d ⊥ replicas of 10", bottoms)
	}
}
