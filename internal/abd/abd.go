// Package abd implements a single-writer majority-quorum register in the
// style of Attiya, Bar-Noy and Dolev ("Sharing Memory Robustly in
// Message-Passing Systems", JACM 1995) — the static-system construction the
// paper cites as [3] and contrasts its dynamic protocols against — over
// the keyed register namespace.
//
// The protocol assumes a fixed membership of n processes of which a
// majority never fails:
//
//   - write(k, v): increment the writer's sequence number for key k, send
//     WRITE to all, wait for ⌊n/2⌋+1 ACKs naming k.
//   - read(k): send READ to all, wait for ⌊n/2⌋+1 REPLYs, and adopt the
//     value with the highest sequence number. If every reply in the
//     quorum reported the SAME ⟨v, sn⟩ the read returns immediately —
//     the one-round fast path of Mostéfaoui & Raynal (arXiv:1601.04820):
//     the whole quorum already stores v, so any later read's quorum
//     intersects it and returns ≥ v, and no write-back is needed. When
//     the replies disagree, the freshest value is written back to a
//     quorum (an ordinary WRITE round tagged with the read's OpID)
//     before the read returns — the classic phase 2 that makes ABD reads
//     atomic (no new/old inversion).
//
// Stats separates the two read paths (FastReads vs SlowReads), and the
// transport surfaces them on regserve /metrics: under read-heavy loads
// with a quiescent writer almost every read should take the fast path.
//
// There is no join operation — the protocol predates dynamic membership.
// When this package is run under churn (experiments E4/E8 do this on
// purpose), replacement processes enter as passive replicas: they answer
// quorum queries with whatever state they have (initially ⊥) and apply the
// WRITEs they observe, which is the naive "just restart the process"
// deployment. The experiments show how regularity erodes as turnover
// replaces informed replicas with empty ones — the motivation for the
// paper's churn-aware joins.
//
// Concurrency mirrors the dynamic protocols: every client operation is an
// entry in one operation table keyed by core.OpID, so reads and writes may
// be in flight concurrently on one node — across keys and pipelined on a
// key. REPLYs route by the OpID they echo; ACKs route by OpID when the
// replica echoed one, else by the ⟨key, sequence number⟩ they name.
// Sequence numbers are assigned at invocation, so pipelined writes to one
// key carry increasing numbers in invocation order.
package abd

import (
	"churnreg/internal/core"
)

// op is one in-flight quorum operation.
type op struct {
	reg core.RegisterID

	// scope/quorum pin the quorum population at invocation: nil scope +
	// ⌊n/2⌋+1 unsharded, the key's replica group + a majority of it
	// sharded (core.OpScope).
	scope  map[core.ProcessID]bool
	quorum int

	reading     bool
	readReplies map[core.ProcessID]core.VersionedValue
	readDone    func(core.VersionedValue)

	// Write-back round of a slow-path read (quorum replies disagreed):
	// wbVal is the adopted value being propagated; its ACKs route here by
	// the read's OpID.
	wb     bool
	wbVal  core.VersionedValue
	wbAcks map[core.ProcessID]bool

	writing   bool
	writeVal  core.VersionedValue
	writeAck  map[core.ProcessID]bool
	writeDone func(core.VersionedValue)
}

// ackKey routes acknowledgments that carry no OpID: an in-flight write is
// also indexed by the ⟨register, sequence number⟩ its ACKs name.
type ackKey struct {
	reg core.RegisterID
	sn  core.SeqNum
}

// Node is one process running the static ABD-style protocol.
type Node struct {
	env core.Env

	vals   *core.RegStore
	active bool // bootstrap processes only; replacements stay passive

	// ops is the operation table; ackRoute indexes in-flight writes by the
	// ⟨reg, sn⟩ their acknowledgments carry.
	ops      *core.OpTable[op]
	ackRoute map[ackKey]core.OpID

	stats Stats
}

// Stats counts protocol activity at this node.
type Stats struct {
	Reads       uint64
	Writes      uint64
	RepliesSent uint64
	AcksSent    uint64
	BottomSent  uint64 // quorum replies carrying ⊥ (passive replacement answering empty)
	// FastReads counts reads whose quorum replies all agreed on one
	// ⟨v, sn⟩ and therefore finished in ONE round; SlowReads counts reads
	// that saw disagreement and paid the write-back round. FastReads +
	// SlowReads == completed reads.
	FastReads uint64
	SlowReads uint64
}

// New builds a node. Only bootstrap processes are usable endpoints; later
// processes are passive replicas (see the package comment).
func New(env core.Env, sc core.SpawnContext) *Node {
	n := &Node{
		env:      env,
		vals:     core.NewRegStore(sc),
		ops:      core.NewOpTable[op](0),
		ackRoute: make(map[ackKey]core.OpID),
	}
	n.active = sc.Bootstrap
	return n
}

// Factory returns a core.NodeFactory for the baseline.
func Factory() core.NodeFactory {
	return func(env core.Env, sc core.SpawnContext) core.Node {
		return New(env, sc)
	}
}

// Compile-time interface checks.
var (
	_ core.Node             = (*Node)(nil)
	_ core.Reader           = (*Node)(nil)
	_ core.Writer           = (*Node)(nil)
	_ core.KeyedReader      = (*Node)(nil)
	_ core.KeyedWriter      = (*Node)(nil)
	_ core.SNWriter         = (*Node)(nil)
	_ core.KeyedSnapshotter = (*Node)(nil)
	_ core.OpAccountant     = (*Node)(nil)
	_ core.ReadPathCounter  = (*Node)(nil)
)

func (n *Node) majority() int { return n.env.SystemSize()/2 + 1 }

// value and merge are per-key store accessors; passive replicas and
// unseen keys fall back to ⊥ / the implicit initial exactly like the
// dynamic protocols (see core.RegStore.Value).
func (n *Node) value(k core.RegisterID) core.VersionedValue { return n.vals.Value(k, n.active) }

func (n *Node) merge(k core.RegisterID, v core.VersionedValue) {
	n.vals.Merge(k, v, n.active)
}

// Start implements core.Node. Bootstrap processes are active; replacements
// have no join protocol to run and stay passive.
func (n *Node) Start() {
	if n.active {
		n.env.MarkActive()
	}
}

// Active implements core.Node.
func (n *Node) Active() bool { return n.active }

// Snapshot implements core.Node (key 0's local copy).
func (n *Node) Snapshot() core.VersionedValue { return n.value(core.DefaultRegister) }

// SnapshotKey implements core.KeyedSnapshotter.
func (n *Node) SnapshotKey(k core.RegisterID) core.VersionedValue { return n.value(k) }

// Keys implements core.KeyedSnapshotter.
func (n *Node) Keys() []core.RegisterID { return n.vals.Keys() }

// PendingOps implements core.OpAccountant.
func (n *Node) PendingOps() int { return n.ops.Len() }

// ReadPathCounts implements core.ReadPathCounter: completed one-round
// fast-path reads vs write-back slow-path reads.
func (n *Node) ReadPathCounts() (fast, slow uint64) {
	return n.stats.FastReads, n.stats.SlowReads
}

// Stats returns a copy of this node's counters.
func (n *Node) Stats() Stats { return n.stats }

// Read implements core.Reader — key-0 sugar for ReadKey.
func (n *Node) Read(done func(core.VersionedValue)) error {
	return n.ReadKey(core.DefaultRegister, done)
}

// ReadKey implements core.KeyedReader: query all, adopt the majority's
// freshest value for the key. Any number of reads may be in flight.
func (n *Node) ReadKey(k core.RegisterID, done func(core.VersionedValue)) error {
	if !n.active {
		return core.ErrNotActive
	}
	if n.ops.Full() {
		return core.ErrOpInProgress
	}
	id, o := n.ops.Begin()
	n.stats.Reads++
	o.reg = k
	o.scope, o.quorum = core.OpScope(n.env, k)
	o.reading = true
	o.readReplies = make(map[core.ProcessID]core.VersionedValue)
	o.readDone = done
	core.ScopedBroadcast(n.env, k, core.ReadMsg{From: n.env.ID(), RSN: core.ReadSeq(id), Reg: k, Op: id})
	return nil
}

func (n *Node) checkRead(id core.OpID, o *op) {
	if !o.reading || len(o.readReplies) < o.quorum {
		return
	}
	o.reading = false
	agreed := true
	var first, freshest core.VersionedValue
	got := false
	for _, v := range o.readReplies {
		n.merge(o.reg, v)
		if !got {
			first, freshest, got = v, v, true
			continue
		}
		if v != first {
			agreed = false
		}
		if v.MoreRecent(freshest) {
			freshest = v
		}
	}
	if agreed {
		// Fast path: the whole quorum already stores ⟨v, sn⟩, so every
		// later read's quorum intersects a node at ≥ sn — atomicity holds
		// with no write-back (arXiv:1601.04820).
		n.stats.FastReads++
		n.ops.Finish(id)
		if o.readDone != nil {
			o.readDone(freshest)
		}
		return
	}
	// Slow path: before returning the freshest value, propagate it to a
	// quorum (phase 2). Until a quorum stores it, a later read could miss
	// it and return an older value — the new/old inversion.
	n.stats.SlowReads++
	o.wb = true
	o.wbVal = freshest
	o.wbAcks = make(map[core.ProcessID]bool)
	core.ScopedBroadcast(n.env, o.reg, core.WriteMsg{From: n.env.ID(), Value: freshest, Reg: o.reg, Op: id})
}

func (n *Node) checkWriteBack(id core.OpID, o *op) {
	if !o.wb || len(o.wbAcks) < o.quorum {
		return
	}
	n.ops.Finish(id)
	if o.readDone != nil {
		o.readDone(o.wbVal)
	}
}

// Write implements core.Writer — key-0 sugar for WriteKey.
func (n *Node) Write(v core.Value, done func()) error {
	return n.WriteKey(core.DefaultRegister, v, done)
}

// WriteKey implements core.KeyedWriter — sugar over WriteKeySN.
func (n *Node) WriteKey(k core.RegisterID, v core.Value, done func()) error {
	return n.WriteKeySN(k, v, func(core.VersionedValue) {
		if done != nil {
			done()
		}
	})
}

// WriteKeySN implements core.SNWriter. Single-writer: the writer's own
// sequence number for the key is authoritative, so no read phase is
// needed; it is assigned at invocation, so pipelined writes to one key
// from this node number themselves in invocation order. done receives
// the exact ⟨v, sn⟩ stored.
func (n *Node) WriteKeySN(k core.RegisterID, v core.Value, done func(core.VersionedValue)) error {
	if !n.active {
		return core.ErrNotActive
	}
	if n.ops.Full() {
		return core.ErrOpInProgress
	}
	id, o := n.ops.Begin()
	n.stats.Writes++
	next := core.VersionedValue{Val: v, SN: n.value(k).SN + 1}
	n.vals.Store(k, next)
	o.reg = k
	o.scope, o.quorum = core.OpScope(n.env, k)
	o.writing = true
	o.writeVal = next
	o.writeAck = make(map[core.ProcessID]bool)
	o.writeDone = done
	n.ackRoute[ackKey{reg: k, sn: next.SN}] = id
	core.ScopedBroadcast(n.env, k, core.WriteMsg{From: n.env.ID(), Value: next, Reg: k, Op: id})
	return nil
}

func (n *Node) checkWrite(id core.OpID, o *op) {
	if !o.writing || len(o.writeAck) < o.quorum {
		return
	}
	delete(n.ackRoute, ackKey{reg: o.reg, sn: o.writeVal.SN})
	n.ops.Finish(id)
	if o.writeDone != nil {
		o.writeDone(o.writeVal)
	}
}

// writeFor resolves the in-flight write an ACK feeds: by the OpID the
// replica echoed when present, else by the ⟨reg, sn⟩ index.
func (n *Node) writeFor(m core.AckMsg) (core.OpID, *op, bool) {
	id := m.Op
	if id == core.NoOp {
		var ok bool
		id, ok = n.ackRoute[ackKey{reg: m.Reg, sn: m.SN}]
		if !ok {
			return core.NoOp, nil, false
		}
	}
	o, ok := n.ops.Get(id)
	if !ok || !o.writing || o.reg != m.Reg || o.writeVal.SN != m.SN {
		return core.NoOp, nil, false
	}
	return id, o, true
}

// Deliver implements core.Node.
func (n *Node) Deliver(from core.ProcessID, m core.Message) {
	switch msg := m.(type) {
	case core.ReadMsg:
		// Every replica answers — including passive replacements, which
		// may only have ⊥. That is the naive-membership failure mode the
		// experiments measure.
		v := n.value(msg.Reg)
		if v.IsBottom() {
			n.stats.BottomSent++
		}
		n.stats.RepliesSent++
		n.env.Send(msg.From, core.ReplyMsg{From: n.env.ID(), Value: v, RSN: msg.RSN, Reg: msg.Reg, Op: msg.Op})
	case core.ReplyMsg:
		o, ok := n.ops.Get(msg.Op)
		if !ok || !o.reading || o.reg != msg.Reg {
			return // stale: the read completed (or never was)
		}
		if !core.InScope(o.scope, msg.From) {
			return // sharded: only replica-group replies feed the quorum
		}
		if cur, ok := o.readReplies[msg.From]; !ok || msg.Value.MoreRecent(cur) {
			o.readReplies[msg.From] = msg.Value
		}
		n.checkRead(msg.Op, o)
	case core.WriteMsg:
		n.merge(msg.Reg, msg.Value)
		n.stats.AcksSent++
		n.env.Send(msg.From, core.AckMsg{From: n.env.ID(), SN: msg.Value.SN, Reg: msg.Reg, Op: msg.Op})
	case core.AckMsg:
		if id, o, ok := n.writeFor(msg); ok {
			if !core.InScope(o.scope, msg.From) {
				return // sharded: only replica-group acks feed the quorum
			}
			o.writeAck[msg.From] = true
			n.checkWrite(id, o)
			return
		}
		// Not a write's ACK: maybe a slow-path read's write-back round
		// (the replica echoed the read's OpID).
		if o, ok := n.ops.Get(msg.Op); ok && o.wb && o.reg == msg.Reg && o.wbVal.SN == msg.SN {
			if !core.InScope(o.scope, msg.From) {
				return
			}
			o.wbAcks[msg.From] = true
			n.checkWriteBack(msg.Op, o)
		}
	default:
		panic("abd: unexpected message kind " + m.Kind().String())
	}
}
