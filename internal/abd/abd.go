// Package abd implements a single-writer majority-quorum register in the
// style of Attiya, Bar-Noy and Dolev ("Sharing Memory Robustly in
// Message-Passing Systems", JACM 1995) — the static-system construction the
// paper cites as [3] and contrasts its dynamic protocols against.
//
// The protocol assumes a fixed membership of n processes of which a
// majority never fails:
//
//   - write(v): increment the writer's sequence number, send WRITE to all,
//     wait for ⌊n/2⌋+1 ACKs.
//   - read: send READ to all, wait for ⌊n/2⌋+1 REPLYs, return the value
//     with the highest sequence number. (No write-back phase: a regular
//     register does not need one; the write-back is what upgrades ABD
//     reads to atomic.)
//
// There is no join operation — the protocol predates dynamic membership.
// When this package is run under churn (experiments E4/E8 do this on
// purpose), replacement processes enter as passive replicas: they answer
// quorum queries with whatever state they have (initially ⊥) and apply the
// WRITEs they observe, which is the naive "just restart the process"
// deployment. The experiments show how regularity erodes as turnover
// replaces informed replicas with empty ones — the motivation for the
// paper's churn-aware joins.
package abd

import (
	"churnreg/internal/core"
)

// Node is one process running the static ABD-style protocol.
type Node struct {
	env core.Env

	register core.VersionedValue
	active   bool // bootstrap processes only; replacements stay passive

	reading  bool
	readSN   core.ReadSeq
	replies  map[core.ProcessID]core.VersionedValue
	readDone func(core.VersionedValue)

	writing   bool
	writeSN   core.SeqNum
	writeAck  map[core.ProcessID]bool
	writeDone func()

	stats Stats
}

// Stats counts protocol activity at this node.
type Stats struct {
	Reads       uint64
	Writes      uint64
	RepliesSent uint64
	AcksSent    uint64
	BottomSent  uint64 // quorum replies carrying ⊥ (passive replacement answering empty)
}

// New builds a node. Only bootstrap processes are usable endpoints; later
// processes are passive replicas (see the package comment).
func New(env core.Env, sc core.SpawnContext) *Node {
	n := &Node{
		env:      env,
		register: core.Bottom(),
		replies:  make(map[core.ProcessID]core.VersionedValue),
		writeAck: make(map[core.ProcessID]bool),
	}
	if sc.Bootstrap {
		n.register = sc.Initial
		n.active = true
	}
	return n
}

// Factory returns a core.NodeFactory for the baseline.
func Factory() core.NodeFactory {
	return func(env core.Env, sc core.SpawnContext) core.Node {
		return New(env, sc)
	}
}

// Compile-time interface checks.
var (
	_ core.Node   = (*Node)(nil)
	_ core.Reader = (*Node)(nil)
	_ core.Writer = (*Node)(nil)
)

func (n *Node) majority() int { return n.env.SystemSize()/2 + 1 }

// Start implements core.Node. Bootstrap processes are active; replacements
// have no join protocol to run and stay passive.
func (n *Node) Start() {
	if n.active {
		n.env.MarkActive()
	}
}

// Active implements core.Node.
func (n *Node) Active() bool { return n.active }

// Snapshot implements core.Node.
func (n *Node) Snapshot() core.VersionedValue { return n.register }

// Stats returns a copy of this node's counters.
func (n *Node) Stats() Stats { return n.stats }

// Read implements core.Reader: query all, adopt the majority's freshest
// value.
func (n *Node) Read(done func(core.VersionedValue)) error {
	if !n.active {
		return core.ErrNotActive
	}
	if n.reading || n.writing {
		return core.ErrOpInProgress
	}
	n.stats.Reads++
	n.readSN++
	n.replies = make(map[core.ProcessID]core.VersionedValue)
	n.reading = true
	n.readDone = done
	n.env.Broadcast(core.ReadMsg{From: n.env.ID(), RSN: n.readSN})
	return nil
}

func (n *Node) checkRead() {
	if !n.reading || len(n.replies) < n.majority() {
		return
	}
	for _, v := range n.replies {
		if v.MoreRecent(n.register) {
			n.register = v
		}
	}
	n.reading = false
	done := n.readDone
	n.readDone = nil
	if done != nil {
		done(n.register)
	}
}

// Write implements core.Writer. Single-writer: the writer's own sequence
// number is authoritative, so no read phase is needed.
func (n *Node) Write(v core.Value, done func()) error {
	if !n.active {
		return core.ErrNotActive
	}
	if n.reading || n.writing {
		return core.ErrOpInProgress
	}
	n.stats.Writes++
	n.register = core.VersionedValue{Val: v, SN: n.register.SN + 1}
	n.writeSN = n.register.SN
	n.writeAck = make(map[core.ProcessID]bool)
	n.writing = true
	n.writeDone = done
	n.env.Broadcast(core.WriteMsg{From: n.env.ID(), Value: n.register})
	return nil
}

func (n *Node) checkWrite() {
	if !n.writing || len(n.writeAck) < n.majority() {
		return
	}
	n.writing = false
	done := n.writeDone
	n.writeDone = nil
	if done != nil {
		done()
	}
}

// Deliver implements core.Node.
func (n *Node) Deliver(from core.ProcessID, m core.Message) {
	switch msg := m.(type) {
	case core.ReadMsg:
		// Every replica answers — including passive replacements, which
		// may only have ⊥. That is the naive-membership failure mode the
		// experiments measure.
		if n.register.IsBottom() {
			n.stats.BottomSent++
		}
		n.stats.RepliesSent++
		n.env.Send(msg.From, core.ReplyMsg{From: n.env.ID(), Value: n.register, RSN: msg.RSN})
	case core.ReplyMsg:
		if msg.RSN != n.readSN {
			return
		}
		if cur, ok := n.replies[msg.From]; !ok || msg.Value.MoreRecent(cur) {
			n.replies[msg.From] = msg.Value
		}
		n.checkRead()
	case core.WriteMsg:
		if msg.Value.MoreRecent(n.register) {
			n.register = msg.Value
		}
		n.stats.AcksSent++
		n.env.Send(msg.From, core.AckMsg{From: n.env.ID(), SN: msg.Value.SN})
	case core.AckMsg:
		if n.writing && msg.SN == n.writeSN {
			n.writeAck[msg.From] = true
			n.checkWrite()
		}
	default:
		panic("abd: unexpected message kind " + m.Kind().String())
	}
}
