// Package abd implements a single-writer majority-quorum register in the
// style of Attiya, Bar-Noy and Dolev ("Sharing Memory Robustly in
// Message-Passing Systems", JACM 1995) — the static-system construction the
// paper cites as [3] and contrasts its dynamic protocols against — over
// the keyed register namespace.
//
// The protocol assumes a fixed membership of n processes of which a
// majority never fails:
//
//   - write(k, v): increment the writer's sequence number for key k, send
//     WRITE to all, wait for ⌊n/2⌋+1 ACKs naming k.
//   - read(k): send READ to all, wait for ⌊n/2⌋+1 REPLYs, return the value
//     with the highest sequence number. (No write-back phase: a regular
//     register does not need one; the write-back is what upgrades ABD
//     reads to atomic.)
//
// There is no join operation — the protocol predates dynamic membership.
// When this package is run under churn (experiments E4/E8 do this on
// purpose), replacement processes enter as passive replicas: they answer
// quorum queries with whatever state they have (initially ⊥) and apply the
// WRITEs they observe, which is the naive "just restart the process"
// deployment. The experiments show how regularity erodes as turnover
// replaces informed replicas with empty ones — the motivation for the
// paper's churn-aware joins.
//
// Per-key state mirrors the dynamic protocols: one map of local copies,
// one map of in-flight quorum operations, instantiated lazily. Operations
// on distinct keys may run concurrently on one node.
package abd

import (
	"churnreg/internal/core"
)

// kop is one key's in-flight quorum operation state.
type kop struct {
	reading     bool
	readRSN     core.ReadSeq
	readReplies map[core.ProcessID]core.VersionedValue
	readDone    func(core.VersionedValue)

	writing   bool
	writeSN   core.SeqNum
	writeAck  map[core.ProcessID]bool
	writeDone func()
}

func (o *kop) busy() bool { return o.reading || o.writing }

// Node is one process running the static ABD-style protocol.
type Node struct {
	env core.Env

	vals   *core.RegStore
	active bool // bootstrap processes only; replacements stay passive

	readSN core.ReadSeq
	ops    map[core.RegisterID]*kop
	rsnReg map[core.ReadSeq]core.RegisterID

	stats Stats
}

// Stats counts protocol activity at this node.
type Stats struct {
	Reads       uint64
	Writes      uint64
	RepliesSent uint64
	AcksSent    uint64
	BottomSent  uint64 // quorum replies carrying ⊥ (passive replacement answering empty)
}

// New builds a node. Only bootstrap processes are usable endpoints; later
// processes are passive replicas (see the package comment).
func New(env core.Env, sc core.SpawnContext) *Node {
	n := &Node{
		env:    env,
		vals:   core.NewRegStore(sc),
		ops:    make(map[core.RegisterID]*kop),
		rsnReg: make(map[core.ReadSeq]core.RegisterID),
	}
	n.active = sc.Bootstrap
	return n
}

// Factory returns a core.NodeFactory for the baseline.
func Factory() core.NodeFactory {
	return func(env core.Env, sc core.SpawnContext) core.Node {
		return New(env, sc)
	}
}

// Compile-time interface checks.
var (
	_ core.Node             = (*Node)(nil)
	_ core.Reader           = (*Node)(nil)
	_ core.Writer           = (*Node)(nil)
	_ core.KeyedReader      = (*Node)(nil)
	_ core.KeyedWriter      = (*Node)(nil)
	_ core.KeyedSnapshotter = (*Node)(nil)
)

func (n *Node) majority() int { return n.env.SystemSize()/2 + 1 }

// value and merge are per-key store accessors; passive replicas and
// unseen keys fall back to ⊥ / the implicit initial exactly like the
// dynamic protocols (see core.RegStore.Value).
func (n *Node) value(k core.RegisterID) core.VersionedValue { return n.vals.Value(k, n.active) }

func (n *Node) merge(k core.RegisterID, v core.VersionedValue) {
	n.vals.Merge(k, v, n.active)
}

func (n *Node) op(k core.RegisterID) *kop {
	o, ok := n.ops[k]
	if !ok {
		o = &kop{}
		n.ops[k] = o
	}
	return o
}

// Start implements core.Node. Bootstrap processes are active; replacements
// have no join protocol to run and stay passive.
func (n *Node) Start() {
	if n.active {
		n.env.MarkActive()
	}
}

// Active implements core.Node.
func (n *Node) Active() bool { return n.active }

// Snapshot implements core.Node (key 0's local copy).
func (n *Node) Snapshot() core.VersionedValue { return n.value(core.DefaultRegister) }

// SnapshotKey implements core.KeyedSnapshotter.
func (n *Node) SnapshotKey(k core.RegisterID) core.VersionedValue { return n.value(k) }

// Keys implements core.KeyedSnapshotter.
func (n *Node) Keys() []core.RegisterID { return n.vals.Keys() }

// Stats returns a copy of this node's counters.
func (n *Node) Stats() Stats { return n.stats }

// Read implements core.Reader — key-0 sugar for ReadKey.
func (n *Node) Read(done func(core.VersionedValue)) error {
	return n.ReadKey(core.DefaultRegister, done)
}

// ReadKey implements core.KeyedReader: query all, adopt the majority's
// freshest value for the key.
func (n *Node) ReadKey(k core.RegisterID, done func(core.VersionedValue)) error {
	if !n.active {
		return core.ErrNotActive
	}
	o := n.op(k)
	if o.busy() {
		return core.ErrOpInProgress
	}
	n.stats.Reads++
	n.readSN++
	o.reading = true
	o.readRSN = n.readSN
	o.readReplies = make(map[core.ProcessID]core.VersionedValue)
	o.readDone = done
	n.rsnReg[o.readRSN] = k
	n.env.Broadcast(core.ReadMsg{From: n.env.ID(), RSN: o.readRSN, Reg: k})
	return nil
}

func (n *Node) checkRead(k core.RegisterID, o *kop) {
	if !o.reading || len(o.readReplies) < n.majority() {
		return
	}
	for _, v := range o.readReplies {
		n.merge(k, v)
	}
	o.reading = false
	delete(n.rsnReg, o.readRSN)
	o.readReplies = nil
	done := o.readDone
	o.readDone = nil
	if done != nil {
		done(n.value(k))
	}
}

// Write implements core.Writer — key-0 sugar for WriteKey.
func (n *Node) Write(v core.Value, done func()) error {
	return n.WriteKey(core.DefaultRegister, v, done)
}

// WriteKey implements core.KeyedWriter. Single-writer: the writer's own
// sequence number for the key is authoritative, so no read phase is
// needed.
func (n *Node) WriteKey(k core.RegisterID, v core.Value, done func()) error {
	if !n.active {
		return core.ErrNotActive
	}
	o := n.op(k)
	if o.busy() {
		return core.ErrOpInProgress
	}
	n.stats.Writes++
	next := core.VersionedValue{Val: v, SN: n.value(k).SN + 1}
	n.vals.Store(k, next)
	o.writing = true
	o.writeSN = next.SN
	o.writeAck = make(map[core.ProcessID]bool)
	o.writeDone = done
	n.env.Broadcast(core.WriteMsg{From: n.env.ID(), Value: next, Reg: k})
	return nil
}

func (n *Node) checkWrite(o *kop) {
	if !o.writing || len(o.writeAck) < n.majority() {
		return
	}
	o.writing = false
	o.writeAck = nil
	done := o.writeDone
	o.writeDone = nil
	if done != nil {
		done()
	}
}

// Deliver implements core.Node.
func (n *Node) Deliver(from core.ProcessID, m core.Message) {
	switch msg := m.(type) {
	case core.ReadMsg:
		// Every replica answers — including passive replacements, which
		// may only have ⊥. That is the naive-membership failure mode the
		// experiments measure.
		v := n.value(msg.Reg)
		if v.IsBottom() {
			n.stats.BottomSent++
		}
		n.stats.RepliesSent++
		n.env.Send(msg.From, core.ReplyMsg{From: n.env.ID(), Value: v, RSN: msg.RSN, Reg: msg.Reg})
	case core.ReplyMsg:
		k, open := n.rsnReg[msg.RSN]
		if !open {
			return
		}
		o := n.ops[k]
		if cur, ok := o.readReplies[msg.From]; !ok || msg.Value.MoreRecent(cur) {
			o.readReplies[msg.From] = msg.Value
		}
		n.checkRead(k, o)
	case core.WriteMsg:
		n.merge(msg.Reg, msg.Value)
		n.stats.AcksSent++
		n.env.Send(msg.From, core.AckMsg{From: n.env.ID(), SN: msg.Value.SN, Reg: msg.Reg})
	case core.AckMsg:
		o, ok := n.ops[msg.Reg]
		if !ok {
			return
		}
		if o.writing && msg.SN == o.writeSN {
			o.writeAck[msg.From] = true
			n.checkWrite(o)
		}
	default:
		panic("abd: unexpected message kind " + m.Kind().String())
	}
}
