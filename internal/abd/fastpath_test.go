package abd_test

// Deterministic simulator tests for the one-round read fast path: when a
// read's quorum replies all agree, the write-back round is skipped
// (arXiv:1601.04820); when they disagree, the freshest value is written
// back to a quorum before the read returns, so no later read can observe
// an older value than one already returned (no new/old inversion).

import (
	"testing"

	"churnreg/internal/core"
	"churnreg/internal/sim"
)

func TestReadFastPathWhenQuorumAgrees(t *testing.T) {
	sys := newSystem(t, 5, 0)
	ids := sys.ActiveIDs()
	w := abdNode(t, sys, ids[0])
	if err := w.Write(21, nil); err != nil {
		t.Fatal(err)
	}
	// Run well past the write: the broadcast reaches every present
	// process within δ, so all five replicas store ⟨21, 1⟩.
	if err := sys.RunFor(4 * delta); err != nil {
		t.Fatal(err)
	}
	r := abdNode(t, sys, ids[3])
	var got core.VersionedValue
	if err := r.Read(func(v core.VersionedValue) { got = v }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(4 * delta); err != nil {
		t.Fatal(err)
	}
	if got.Val != 21 || got.SN != 1 {
		t.Fatalf("read %v, want ⟨21,#1⟩", got)
	}
	fast, slow := r.ReadPathCounts()
	if fast != 1 || slow != 0 {
		t.Fatalf("read paths = (fast %d, slow %d), want the agreed quorum to skip the write-back (1, 0)", fast, slow)
	}
}

func TestReadHeavyWorkloadIsAllFastPath(t *testing.T) {
	// The acceptance workload for the fast-path counter: a read-heavy
	// phase over a settled value must be served entirely in one round.
	sys := newSystem(t, 5, 0)
	ids := sys.ActiveIDs()
	if err := abdNode(t, sys, ids[0]).Write(99, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(4 * delta); err != nil {
		t.Fatal(err)
	}
	const reads = 20
	completed := 0
	for i := 0; i < reads; i++ {
		r := abdNode(t, sys, ids[i%len(ids)])
		if err := r.Read(func(v core.VersionedValue) {
			completed++
			if v.Val != 99 {
				t.Errorf("read %d: %v, want 99", i, v)
			}
		}); err != nil {
			t.Fatal(err)
		}
		if err := sys.RunFor(3 * delta); err != nil {
			t.Fatal(err)
		}
	}
	if completed != reads {
		t.Fatalf("completed %d/%d reads", completed, reads)
	}
	var fast, slow uint64
	for _, id := range ids {
		f, s := abdNode(t, sys, id).ReadPathCounts()
		fast, slow = fast+f, slow+s
	}
	if fast != reads || slow != 0 {
		t.Fatalf("read paths = (fast %d, slow %d), want all %d reads one-round", fast, slow, reads)
	}
}

func TestReadDisagreementPaysWriteBack(t *testing.T) {
	// Force a mixed quorum: the WRITE reaches three of five replicas, and
	// the reader is one of the two it missed. Its quorum disagrees, so
	// the read must run the write-back round — and afterwards a quorum
	// stores the returned value.
	sys := newSystem(t, 5, 0)
	ids := sys.ActiveIDs()
	w := abdNode(t, sys, ids[0])
	dropTo := map[core.ProcessID]bool{ids[3]: true, ids[4]: true}
	sys.Network().SetDropRule(func(from, to core.ProcessID, m core.Message, _ sim.Time) bool {
		return m.Kind() == core.KindWrite && from == ids[0] && dropTo[to]
	})
	if err := w.Write(5, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(4 * delta); err != nil {
		t.Fatal(err)
	}
	r := abdNode(t, sys, ids[4])
	var got core.VersionedValue
	if err := r.Read(func(v core.VersionedValue) { got = v }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(6 * delta); err != nil {
		t.Fatal(err)
	}
	if got.SN != 1 {
		t.Fatalf("read %v, want sn 1", got)
	}
	fast, slow := r.ReadPathCounts()
	if slow != 1 || fast != 0 {
		t.Fatalf("read paths = (fast %d, slow %d), want the mixed quorum to write back (0, 1)", fast, slow)
	}
	// The write-back must have installed ⟨5, 1⟩ at a majority: the two
	// dropped replicas learn it from the reader's WRITE round.
	have := 0
	for _, id := range sys.ActiveIDs() {
		if sys.Node(id).Snapshot().SN >= 1 {
			have++
		}
	}
	if have < 3 {
		t.Fatalf("only %d replicas store the read value after write-back, want a majority", have)
	}
}

func TestNoNewOldInversionWithIncompleteWrite(t *testing.T) {
	// The schedule that separates atomic from regular: a WRITE that
	// reaches exactly ONE replica and never completes. Reader A's quorum
	// includes that replica, so A returns the new value via the slow
	// path; reader B reads after A completes and must NOT see the old
	// value (new/old inversion) — the write-back is what forbids it.
	sys := newSystem(t, 5, 0)
	ids := sys.ActiveIDs()
	writer, holder := ids[0], ids[2]
	readerA, readerB := ids[1], ids[4]
	sys.Network().SetDropRule(func(from, to core.ProcessID, m core.Message, _ sim.Time) bool {
		// The writer's WRITE round reaches only `holder`...
		if m.Kind() == core.KindWrite && from == writer && to != holder {
			return true
		}
		// ...and reader A hears REPLYs only from {A, writer, holder}, so
		// its quorum is exactly those three — a mixed quorum by
		// construction (the writer stored locally at invocation).
		if m.Kind() == core.KindReply && to == readerA && (from == ids[3] || from == ids[4]) {
			return true
		}
		return false
	})
	if err := abdNode(t, sys, writer).Write(9, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(3 * delta); err != nil {
		t.Fatal(err)
	}
	a := abdNode(t, sys, readerA)
	var gotA core.VersionedValue
	doneA := false
	if err := a.Read(func(v core.VersionedValue) { gotA, doneA = v, true }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(6 * delta); err != nil {
		t.Fatal(err)
	}
	if !doneA {
		t.Fatal("reader A did not complete")
	}
	if gotA.SN != 1 || gotA.Val != 9 {
		t.Fatalf("reader A got %v, want the incomplete write's ⟨9,#1⟩", gotA)
	}
	if fast, slow := a.ReadPathCounts(); slow != 1 || fast != 0 {
		t.Fatalf("reader A paths = (fast %d, slow %d), want slow-path write-back", fast, slow)
	}
	// B starts strictly after A returned. Its quorum is unconstrained —
	// any 3 of 5 — and every choice must now contain ⟨9,#1⟩.
	b := abdNode(t, sys, readerB)
	var gotB core.VersionedValue
	doneB := false
	if err := b.Read(func(v core.VersionedValue) { gotB, doneB = v, true }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(6 * delta); err != nil {
		t.Fatal(err)
	}
	if !doneB {
		t.Fatal("reader B did not complete")
	}
	if gotB.SN < gotA.SN {
		t.Fatalf("new/old inversion: read after ⟨%v⟩ returned ⟨%v⟩", gotA, gotB)
	}
}

func TestReadMonotonicityUnderChurnAndConcurrentWrites(t *testing.T) {
	// Atomicity's observable face under churn: across rounds, a read that
	// starts after another read returned must not return an older value,
	// even with a write in flight and processes being replaced. Seeded,
	// so the schedule (and any failure) is deterministic.
	sys := newSystem(t, 10, 0.005)
	val := core.Value(100)
	var lastReturned core.VersionedValue
	rounds, completedPairs := 8, 0
	for round := 0; round < rounds; round++ {
		ids := sys.ActiveIDs()
		if len(ids) < 3 {
			break // churn consumed the bootstrap population
		}
		w, ra, rb := ids[0], ids[1%len(ids)], ids[2%len(ids)]
		val++
		// Kick off a write and read WHILE it is in flight.
		_ = abdNode(t, sys, w).Write(val, nil)
		if err := sys.RunFor(2); err != nil {
			t.Fatal(err)
		}
		var gotA core.VersionedValue
		doneA := false
		_ = abdNode(t, sys, ra).Read(func(v core.VersionedValue) { gotA, doneA = v, true })
		if err := sys.RunFor(6 * delta); err != nil {
			t.Fatal(err)
		}
		if !doneA {
			continue // reader churned out mid-operation; nothing to compare
		}
		if gotA.SN < lastReturned.SN {
			t.Fatalf("round %d: read A returned %v after an earlier read returned %v", round, gotA, lastReturned)
		}
		lastReturned = gotA
		var gotB core.VersionedValue
		doneB := false
		_ = abdNode(t, sys, rb).Read(func(v core.VersionedValue) { gotB, doneB = v, true })
		if err := sys.RunFor(6 * delta); err != nil {
			t.Fatal(err)
		}
		if !doneB {
			continue
		}
		if gotB.SN < gotA.SN {
			t.Fatalf("round %d: new/old inversion under churn: B read %v after A read %v", round, gotB, gotA)
		}
		lastReturned = gotB
		completedPairs++
	}
	if completedPairs == 0 {
		t.Fatal("no read pair completed; the schedule exercised nothing")
	}
	// Both paths should have been exercised across the run: concurrent
	// writes force disagreement somewhere, settled rounds agree.
	var fast, slow uint64
	sys.ForEachNode(func(_ core.ProcessID, n core.Node) {
		if c, ok := n.(core.ReadPathCounter); ok {
			f, s := c.ReadPathCounts()
			fast, slow = fast+f, slow+s
		}
	})
	if fast+slow == 0 {
		t.Fatal("no reads counted")
	}
	t.Logf("read paths under churn: fast %d, slow %d (pairs %d)", fast, slow, completedPairs)
}
