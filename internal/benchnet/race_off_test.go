//go:build !race

package benchnet

// raceEnabled mirrors whether the test binary was built with -race; the
// allocation-count assertions skip under its instrumentation.
const raceEnabled = false
