// Package benchnet measures what the wire-level hot-path overhaul buys,
// producing the BENCH_net.json artifact (via cmd/benchjson):
//
//   - Micro, frames/sec over one real TCP connection: the per-frame-
//     syscall baseline (encode each frame fresh, one conn.Write per
//     frame, raw unbuffered reads — the pre-overhaul wire path) against
//     the coalesced path (append-encode into one flush buffer, one write
//     per batch, buffered scanner with a reused payload buffer). The
//     ratio is the syscall amortization the transport's peer writers get.
//   - Allocations/op of the codec, measured with testing.AllocsPerRun:
//     append-encode into a recycled buffer (0), the scan/decode machinery
//     on control frames (0), and enveloped protocol messages (1 — the
//     unavoidable core.Message interface box).
//   - The ABD read-path split under a read-heavy deterministic sim
//     workload: fast (one-round) vs slow (write-back) read counts.
//   - Macro, client-observed regserve throughput: several regserve OS
//     processes over real TCP, one node driven by many concurrent HTTP
//     clients (the pipelined engine keeps them all in flight).
package benchnet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"churnreg/internal/abd"
	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/netsim"
	"churnreg/internal/wire"
)

// Config parameterizes one Run.
type Config struct {
	// Frames per micro measurement (default 100000).
	Frames int
	// BatchFrames is the coalescing budget, mirroring the transport's
	// default (default 64).
	BatchFrames int
	// AllocRuns is the AllocsPerRun iteration count (default 2000).
	AllocRuns int
	// MacroNodes is the regserve cluster size for the macro measurement
	// (default 6); MacroInflight the number of concurrent HTTP clients
	// (default 128); MacroDuration how long they hammer (default 3s).
	MacroNodes    int
	MacroInflight int
	MacroDuration time.Duration
	// SkipMacro omits the macro measurement (it builds cmd/regserve with
	// the go toolchain and spawns OS processes).
	SkipMacro bool
	// BinPath points at a prebuilt regserve binary; empty means build one.
	BinPath string
}

func (c *Config) fillDefaults() {
	if c.Frames <= 0 {
		c.Frames = 100000
	}
	if c.BatchFrames <= 0 {
		c.BatchFrames = 64
	}
	if c.AllocRuns <= 0 {
		c.AllocRuns = 2000
	}
	if c.MacroNodes <= 0 {
		c.MacroNodes = 6
	}
	if c.MacroInflight <= 0 {
		c.MacroInflight = 128
	}
	if c.MacroDuration <= 0 {
		c.MacroDuration = 3 * time.Second
	}
}

// MicroResult is one frames/sec measurement over a real TCP connection.
type MicroResult struct {
	Mode         string  `json:"mode"` // "per_frame_syscall" or "coalesced"
	Frames       int     `json:"frames"`
	Seconds      float64 `json:"seconds"`
	FramesPerSec float64 `json:"frames_per_sec"`
}

// MacroResult is the OS-process cluster measurement.
type MacroResult struct {
	Nodes     int     `json:"nodes"`
	Inflight  int     `json:"inflight"`
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// Report is the artifact serialized as BENCH_net.json.
type Report struct {
	Name        string      `json:"name"`
	BatchFrames int         `json:"batch_frames"`
	Baseline    MicroResult `json:"baseline"`
	Coalesced   MicroResult `json:"coalesced"`
	// CoalescingSpeedup is coalesced ÷ baseline frames/sec — the number
	// the ≥2x acceptance floor guards.
	CoalescingSpeedup float64 `json:"coalescing_speedup"`
	// Codec allocations per operation (testing.AllocsPerRun): encoding
	// into a recycled buffer and the scan/decode machinery are 0;
	// enveloped messages cost exactly the one interface box.
	EncodeAllocsPerOp      float64 `json:"encode_allocs_per_op"`
	DecodeCodecAllocsPerOp float64 `json:"decode_codec_allocs_per_op"`
	DecodeMsgAllocsPerOp   float64 `json:"decode_msg_allocs_per_op"`
	// ABD read-path split under a read-heavy deterministic sim workload.
	ABDFastReads uint64 `json:"abd_fast_reads"`
	ABDSlowReads uint64 `json:"abd_slow_reads"`
	// Macro is nil when skipped.
	Macro *MacroResult `json:"macro,omitempty"`
}

// hotFrame is the representative hot-path frame the micro benchmarks
// push: a WRITE broadcast, a few dozen bytes like all quorum traffic.
func hotFrame(i int) wire.Frame {
	return wire.Frame{
		Type: wire.FrameMsg,
		From: 1,
		Msg: core.WriteMsg{
			From:  1,
			Value: core.VersionedValue{Val: core.Value(i), SN: core.SeqNum(i)},
			Reg:   7,
			Op:    core.OpID(i + 1),
		},
	}
}

// Run produces the full report.
func Run(cfg Config) (Report, error) {
	cfg.fillDefaults()
	rep := Report{Name: "net", BatchFrames: cfg.BatchFrames}

	var err error
	if rep.Baseline, err = runMicro(cfg.Frames, 1); err != nil {
		return rep, fmt.Errorf("baseline micro: %w", err)
	}
	if rep.Coalesced, err = runMicro(cfg.Frames, cfg.BatchFrames); err != nil {
		return rep, fmt.Errorf("coalesced micro: %w", err)
	}
	if rep.Baseline.FramesPerSec > 0 {
		rep.CoalescingSpeedup = rep.Coalesced.FramesPerSec / rep.Baseline.FramesPerSec
	}
	rep.EncodeAllocsPerOp, rep.DecodeCodecAllocsPerOp, rep.DecodeMsgAllocsPerOp = measureAllocs(cfg.AllocRuns)
	if rep.ABDFastReads, rep.ABDSlowReads, err = runReadPathSim(); err != nil {
		return rep, fmt.Errorf("abd read-path sim: %w", err)
	}
	if !cfg.SkipMacro {
		macro, err := runMacro(cfg)
		if err != nil {
			return rep, fmt.Errorf("macro: %w", err)
		}
		rep.Macro = &macro
	}
	return rep, nil
}

// runMicro pushes frames through one real TCP connection. batch == 1 is
// the pre-overhaul path: encode each frame into a fresh buffer, write it
// with its own syscall, read it with raw unbuffered reads (wire.ReadFrame
// straight off the conn). batch > 1 is the overhauled path: append-encode
// into one reused flush buffer, one write per batch, buffered Scanner on
// the read side. The measurement spans first byte written to last frame
// decoded.
func runMicro(frames, batch int) (MicroResult, error) {
	mode := "per_frame_syscall"
	if batch > 1 {
		mode = "coalesced"
	}
	res := MicroResult{Mode: mode, Frames: frames}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer ln.Close()
	readerDone := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			readerDone <- err
			return
		}
		defer conn.Close()
		if batch > 1 {
			sc := wire.NewScanner(conn)
			for i := 0; i < frames; i++ {
				if _, err := sc.Next(); err != nil {
					readerDone <- fmt.Errorf("frame %d: %w", i, err)
					return
				}
			}
		} else {
			for i := 0; i < frames; i++ {
				if _, err := wire.ReadFrame(conn); err != nil {
					readerDone <- fmt.Errorf("frame %d: %w", i, err)
					return
				}
			}
		}
		readerDone <- nil
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return res, err
	}
	defer conn.Close()

	start := time.Now()
	if batch > 1 {
		buf := make([]byte, 0, 64*batch)
		n := 0
		for i := 0; i < frames; i++ {
			buf, err = wire.AppendFrameBytes(buf, hotFrame(i))
			if err != nil {
				return res, err
			}
			if n++; n == batch || i == frames-1 {
				if _, err := conn.Write(buf); err != nil {
					return res, err
				}
				buf, n = buf[:0], 0
			}
		}
	} else {
		for i := 0; i < frames; i++ {
			payload, err := wire.EncodeFrame(hotFrame(i))
			if err != nil {
				return res, err
			}
			if _, err := conn.Write(wire.FrameBytes(payload)); err != nil {
				return res, err
			}
		}
	}
	if err := <-readerDone; err != nil {
		return res, err
	}
	res.Seconds = time.Since(start).Seconds()
	res.FramesPerSec = float64(frames) / res.Seconds
	return res, nil
}

// measureAllocs reports the codec's steady-state allocations per
// operation: append-encode, the scanner on control frames (the machinery
// alone), and the scanner on enveloped messages (machinery + the one
// interface box).
func measureAllocs(runs int) (encode, decodeCodec, decodeMsg float64) {
	f := hotFrame(1)
	buf := make([]byte, 0, 256)
	encode = testing.AllocsPerRun(runs, func() {
		buf, _ = wire.AppendFrameBytes(buf[:0], f)
	})

	stream := func(fr wire.Frame) *wire.Scanner {
		var b []byte
		for i := 0; i < runs+10; i++ {
			b, _ = wire.AppendFrameBytes(b, fr)
		}
		return wire.NewScanner(bytes.NewReader(b))
	}
	sc := stream(wire.Frame{Type: wire.FrameLeave, From: 3})
	decodeCodec = testing.AllocsPerRun(runs, func() { sc.Next() })
	sm := stream(f)
	decodeMsg = testing.AllocsPerRun(runs, func() { sm.Next() })
	return encode, decodeCodec, decodeMsg
}

// runReadPathSim exercises the ABD one-round read fast path under a
// read-heavy deterministic workload: one settled write, then fifty reads
// round-robin across a five-process system; a concurrent write half-way
// through gives the slow path a cameo.
func runReadPathSim() (fast, slow uint64, err error) {
	const delta = 5
	sys, err := dynsys.New(dynsys.Config{
		N:       5,
		Delta:   delta,
		Model:   netsim.SynchronousModel{Delta: delta},
		Factory: abd.Factory(),
		Seed:    11,
		Initial: core.VersionedValue{Val: 0, SN: 0},
	})
	if err != nil {
		return 0, 0, err
	}
	ids := sys.ActiveIDs()
	write := func(v core.Value) error {
		n, ok := sys.Node(ids[0]).(*abd.Node)
		if !ok {
			return fmt.Errorf("node is %T", sys.Node(ids[0]))
		}
		if err := n.Write(v, nil); err != nil {
			return err
		}
		return sys.RunFor(4 * delta)
	}
	if err := write(1); err != nil {
		return 0, 0, err
	}
	const reads = 50
	for i := 0; i < reads; i++ {
		if i == reads/2 {
			// Mid-workload write, NOT awaited: the next reads race its
			// propagation, so some see mixed quorums and pay the
			// write-back — the slow-path counter's cameo.
			w, ok := sys.Node(ids[0]).(*abd.Node)
			if !ok {
				return 0, 0, fmt.Errorf("node is %T", sys.Node(ids[0]))
			}
			if err := w.Write(2, nil); err != nil {
				return 0, 0, err
			}
		}
		r := sys.Node(ids[i%len(ids)]).(*abd.Node)
		if err := r.Read(nil); err != nil {
			return 0, 0, err
		}
		if err := sys.RunFor(3 * delta); err != nil {
			return 0, 0, err
		}
	}
	for _, id := range ids {
		f, s := sys.Node(id).(*abd.Node).ReadPathCounts()
		fast, slow = fast+f, slow+s
	}
	return fast, slow, nil
}

// ---- macro: regserve OS processes ----

// macroNode is one spawned regserve.
type macroNode struct {
	cmd *exec.Cmd
	api string
}

// runMacro builds regserve (unless cfg.BinPath is set), boots
// cfg.MacroNodes bootstrap processes meshed via the first node's listen
// address, and drives the first node's HTTP API with cfg.MacroInflight
// concurrent clients mixing reads and writes over 16 keys.
func runMacro(cfg Config) (MacroResult, error) {
	res := MacroResult{Nodes: cfg.MacroNodes, Inflight: cfg.MacroInflight}
	bin := cfg.BinPath
	if bin == "" {
		dir, err := os.MkdirTemp("", "benchnet-*")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(dir)
		bin = filepath.Join(dir, "regserve")
		build := exec.Command("go", "build", "-o", bin, "churnreg/cmd/regserve")
		if out, err := build.CombinedOutput(); err != nil {
			return res, fmt.Errorf("building regserve: %v\n%s", err, out)
		}
	}
	nodes := make([]*macroNode, 0, cfg.MacroNodes)
	defer func() {
		for _, nd := range nodes {
			nd.cmd.Process.Kill()
			nd.cmd.Wait()
		}
	}()
	var seed string
	for i := 1; i <= cfg.MacroNodes; i++ {
		args := []string{
			"-id", fmt.Sprint(i),
			"-listen", "127.0.0.1:0",
			"-api", "127.0.0.1:0",
			"-protocol", "esync",
			"-n", fmt.Sprint(cfg.MacroNodes),
			"-delta", "5",
			"-tick", "1ms",
			"-bootstrap",
		}
		if seed != "" {
			args = append(args, "-peers", seed)
		}
		nd, listen, err := startMacroNode(bin, args)
		if err != nil {
			return res, fmt.Errorf("node %d: %w", i, err)
		}
		nodes = append(nodes, nd)
		if seed == "" {
			seed = listen
		}
	}
	target := nodes[0]
	if err := waitMacroHealthy(target, cfg.MacroNodes-1, 30*time.Second); err != nil {
		return res, err
	}

	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.MacroInflight * 2,
			MaxIdleConnsPerHost: cfg.MacroInflight * 2,
		},
	}
	var (
		ops      atomic.Int64
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	stop := time.Now().Add(cfg.MacroDuration)
	start := time.Now()
	for w := 0; w < cfg.MacroInflight; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			key := worker % 16
			for i := 0; time.Now().Before(stop); i++ {
				var url string
				if (worker+i)%2 == 0 {
					url = fmt.Sprintf("http://%s/write?key=%d&val=%d", target.api, key, i)
				} else {
					url = fmt.Sprintf("http://%s/read?key=%d", target.api, key)
				}
				method := "POST"
				if strings.Contains(url, "/read") {
					method = "GET"
				}
				req, err := http.NewRequest(method, url, nil)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				resp, err := client.Do(req)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					firstErr.CompareAndSwap(nil, fmt.Errorf("%s: http %d", url, resp.StatusCode))
					return
				}
				ops.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return res, err
	}
	res.Ops = int(ops.Load())
	res.Seconds = elapsed.Seconds()
	res.OpsPerSec = float64(res.Ops) / res.Seconds
	return res, nil
}

// startMacroNode launches one regserve and parses its REGSERVE announce
// line for the bound addresses.
func startMacroNode(bin string, args []string) (*macroNode, string, error) {
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	lineCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "REGSERVE ") {
				lineCh <- line
				break
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		for sc.Scan() {
		}
	}()
	select {
	case line := <-lineCh:
		var listen, api string
		for _, field := range strings.Fields(line) {
			if v, ok := strings.CutPrefix(field, "listen="); ok {
				listen = v
			}
			if v, ok := strings.CutPrefix(field, "api="); ok {
				api = v
			}
		}
		if listen == "" || api == "" {
			cmd.Process.Kill()
			return nil, "", fmt.Errorf("bad announce line %q", line)
		}
		return &macroNode{cmd: cmd, api: api}, listen, nil
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		return nil, "", fmt.Errorf("regserve never announced its addresses")
	}
}

// waitMacroHealthy polls /health until the node reports active with
// wantPeers identified peers.
func waitMacroHealthy(nd *macroNode, wantPeers int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("http://%s/health", nd.api))
		if err == nil {
			var h struct {
				Active bool `json:"active"`
				Peers  int  `json:"peers"`
			}
			dec := json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if dec == nil && h.Active && h.Peers >= wantPeers {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("macro cluster never became healthy")
}
