package benchnet

import (
	"testing"
)

// TestCoalescingSpeedupFloor is the artifact's own acceptance floor: the
// coalesced wire path must move at least 2x the frames/sec of the
// per-frame-syscall baseline on a small run, the codec must encode and
// scan without touching the heap, decoding an enveloped message must cost
// at most its one interface box, and the ABD fast-path counter must fire
// under the read-heavy sim workload. If the batcher ever degrades to one
// frame per write (or an allocation sneaks into the codec), this fails
// long before anyone reads BENCH_net.json.
func TestCoalescingSpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("pushes frames over real sockets; skipped in -short")
	}
	rep, err := Run(Config{
		Frames:    30000,
		AllocRuns: 500,
		SkipMacro: true, // the OS-process macro belongs to cmd/benchjson
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Baseline.FramesPerSec <= 0 || rep.Coalesced.FramesPerSec <= 0 {
		t.Fatalf("degenerate measurement: %+v", rep)
	}
	// The checked-in artifact shows well above 2x; 2x here keeps CI
	// immune to noisy neighbours while catching a de-coalesced writer
	// (which yields ~1x).
	if rep.CoalescingSpeedup < 2 {
		t.Fatalf("coalescing speedup = %.2fx (%.0f vs %.0f frames/sec), want >= 2x",
			rep.CoalescingSpeedup, rep.Coalesced.FramesPerSec, rep.Baseline.FramesPerSec)
	}
	if !raceEnabled { // the race detector perturbs allocation counts
		if rep.EncodeAllocsPerOp != 0 {
			t.Fatalf("encode allocs/op = %v, want 0", rep.EncodeAllocsPerOp)
		}
		if rep.DecodeCodecAllocsPerOp != 0 {
			t.Fatalf("decode (codec machinery) allocs/op = %v, want 0", rep.DecodeCodecAllocsPerOp)
		}
		if rep.DecodeMsgAllocsPerOp > 1 {
			t.Fatalf("decode (message) allocs/op = %v, want <= 1 (the interface box)", rep.DecodeMsgAllocsPerOp)
		}
	}
	if rep.ABDFastReads == 0 {
		t.Fatal("read-heavy sim workload produced no fast-path reads")
	}
	if rep.ABDFastReads+rep.ABDSlowReads != 50 {
		t.Fatalf("read-path counts %d+%d, want all 50 reads accounted",
			rep.ABDFastReads, rep.ABDSlowReads)
	}
}
