package esyncreg_test

// Integration tests run the eventually synchronous protocol inside the full
// simulated dynamic system: quorum liveness under pre-GST asynchrony, the
// DL_PREV rescue chain of Lemma 5, and writer liveness through joiner ACKs
// (Lemma 7) — plus both ablations showing what breaks without them.

import (
	"testing"

	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/esyncreg"
	"churnreg/internal/netsim"
	"churnreg/internal/sim"
)

const delta = 5

func newSystem(t *testing.T, n int, model netsim.DelayModel, opts esyncreg.Options, churnRate float64, minLifetime sim.Duration) *dynsys.System {
	t.Helper()
	sys, err := dynsys.New(dynsys.Config{
		N:           n,
		Delta:       delta,
		Model:       model,
		Factory:     esyncreg.Factory(opts),
		Seed:        7,
		ChurnRate:   churnRate,
		MinLifetime: minLifetime,
		Initial:     core.VersionedValue{Val: 0, SN: 0},
	})
	if err != nil {
		t.Fatalf("dynsys.New: %v", err)
	}
	return sys
}

func esNode(t *testing.T, sys *dynsys.System, id core.ProcessID) *esyncreg.Node {
	t.Helper()
	n, ok := sys.Node(id).(*esyncreg.Node)
	if !ok {
		t.Fatalf("node %v is %T, want *esyncreg.Node", id, sys.Node(id))
	}
	return n
}

func TestJoinCompletesUnderSynchrony(t *testing.T) {
	sys := newSystem(t, 5, netsim.SynchronousModel{Delta: delta}, esyncreg.Options{}, 0, 0)
	id, node := sys.Spawn()
	if err := sys.RunFor(4 * delta); err != nil {
		t.Fatal(err)
	}
	if !node.Active() {
		t.Fatal("join did not complete")
	}
	v := node.Snapshot()
	if v.SN != 0 || v.Val != 0 {
		t.Fatalf("joiner adopted %v, want initial ⟨0,#0⟩", v)
	}
	_ = id
}

func TestJoinCompletesUnderPreGSTAsynchrony(t *testing.T) {
	// GST far in the future: all traffic is unbounded-but-finite. The
	// quorum protocol must still terminate (no departures here).
	model := netsim.EventuallySynchronousModel{GST: 1 << 40, Delta: delta, PreGSTMax: 200}
	sys := newSystem(t, 5, model, esyncreg.Options{}, 0, 0)
	_, node := sys.Spawn()
	if err := sys.RunFor(1000); err != nil {
		t.Fatal(err)
	}
	if !node.Active() {
		t.Fatal("join never completed despite finite delays")
	}
}

func TestWriteThenReadEndToEnd(t *testing.T) {
	sys := newSystem(t, 7, netsim.SynchronousModel{Delta: delta}, esyncreg.Options{}, 0, 0)
	ids := sys.ActiveIDs()
	writer := esNode(t, sys, ids[0])
	reader := esNode(t, sys, ids[3])

	wrote := false
	if err := writer.Write(99, func() { wrote = true }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(10 * delta); err != nil {
		t.Fatal(err)
	}
	if !wrote {
		t.Fatal("write did not complete")
	}
	var got core.VersionedValue
	read := false
	if err := reader.Read(func(v core.VersionedValue) { got = v; read = true }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(10 * delta); err != nil {
		t.Fatal(err)
	}
	if !read {
		t.Fatal("read did not complete")
	}
	if got.Val != 99 || got.SN != 1 {
		t.Fatalf("read %v, want ⟨99,#1⟩", got)
	}
}

func TestReadMergesFreshValueFromQuorum(t *testing.T) {
	// A reader whose local copy is stale must return the quorum's newer
	// value: read-from-majority intersects write-at-majority.
	sys := newSystem(t, 5, netsim.SynchronousModel{Delta: delta}, esyncreg.Options{}, 0, 0)
	ids := sys.ActiveIDs()
	writer := esNode(t, sys, ids[0])
	if err := writer.Write(55, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(10 * delta); err != nil {
		t.Fatal(err)
	}
	// Join a fresh process — it adopts the value from its join quorum.
	_, node := sys.Spawn()
	if err := sys.RunFor(10 * delta); err != nil {
		t.Fatal(err)
	}
	joiner := node.(*esyncreg.Node)
	if !joiner.Active() {
		t.Fatal("join incomplete")
	}
	var got core.VersionedValue
	if err := joiner.Read(func(v core.VersionedValue) { got = v }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(10 * delta); err != nil {
		t.Fatal(err)
	}
	if got.Val != 55 || got.SN != 1 {
		t.Fatalf("joiner read %v, want ⟨55,#1⟩", got)
	}
}

// TestDLPrevRescuesStarvedJoiner reproduces the Lemma 5 liveness chain: a
// joiner whose INQUIRY was lost to departures (simulated by an injected
// drop) sits one reply short of a quorum; a later joiner completes its own
// join and — because the starved joiner handed it a DL_PREV — sends the
// missing reply.
func TestDLPrevRescuesStarvedJoiner(t *testing.T) {
	runScenario := func(opts esyncreg.Options) (starvedActive bool) {
		sys := newSystem(t, 5, netsim.SynchronousModel{Delta: delta}, opts, 0, 0)
		// IDs 1..5 are bootstrap. The starved joiner is p6.
		sys.Network().SetDropRule(func(from, to core.ProcessID, m core.Message, _ sim.Time) bool {
			// p6's INQUIRY reaches only p4 and p5 (and itself): the other
			// three actives "left before delivery".
			return from == 6 && m.Kind() == core.KindInquiry && to >= 1 && to <= 3
		})
		_, starved := sys.Spawn() // p6
		if err := sys.RunFor(10 * delta); err != nil {
			t.Fatal(err)
		}
		if starved.Active() {
			t.Fatal("scenario broken: starved joiner completed with 2 replies")
		}
		// Lift the drop rule (it only targeted p6's join inquiry anyway)
		// and bring in a fresh joiner p7, which completes normally.
		sys.Network().SetDropRule(nil)
		_, rescuer := sys.Spawn() // p7
		if err := sys.RunFor(20 * delta); err != nil {
			t.Fatal(err)
		}
		if !rescuer.Active() {
			t.Fatal("scenario broken: rescuer did not join")
		}
		return starved.Active()
	}

	if !runScenario(esyncreg.Options{}) {
		t.Fatal("DL_PREV chain did not rescue the starved joiner")
	}
	if runScenario(esyncreg.Options{DisableDLPrev: true}) {
		t.Fatal("ablated protocol rescued the joiner without DL_PREV — ablation ineffective")
	}
}

// TestJoinerAcksUnblockWriter reproduces the Lemma 7 liveness chain: a
// writer whose WRITE broadcast was lost to departures cannot assemble its
// ACK quorum from direct deliveries; joiners that learn the pending value
// through the writer's REPLY contribute the missing ACKs — but only when
// the ACK carries the register sequence number (our DESIGN.md §2 reading).
func TestJoinerAcksUnblockWriter(t *testing.T) {
	runScenario := func(opts esyncreg.Options) (writeCompleted bool) {
		sys := newSystem(t, 5, netsim.SynchronousModel{Delta: delta}, opts, 0, 0)
		ids := sys.ActiveIDs()
		writerID := ids[0]
		writer := esNode(t, sys, writerID)
		// The WRITE broadcast reaches nobody but the writer itself: the
		// other four processes "left before delivery" (injected drop).
		sys.Network().SetDropRule(func(from, to core.ProcessID, m core.Message, _ sim.Time) bool {
			return m.Kind() == core.KindWrite && from == writerID && to != writerID
		})
		done := false
		if err := writer.Write(31, func() { done = true }); err != nil {
			t.Fatal(err)
		}
		if err := sys.RunFor(10 * delta); err != nil {
			t.Fatal(err)
		}
		if done {
			t.Fatal("scenario broken: write completed with one ACK")
		}
		// Two joiners arrive. Each INQUIRY draws a REPLY from the writer
		// carrying the pending ⟨31,#1⟩; their ACKs should complete the
		// quorum (1 self + 2 joiners = 3 of 5).
		sys.Spawn()
		sys.Spawn()
		if err := sys.RunFor(20 * delta); err != nil {
			t.Fatal(err)
		}
		return done
	}

	if !runScenario(esyncreg.Options{}) {
		t.Fatal("joiner ACKs did not unblock the writer")
	}
	if runScenario(esyncreg.Options{LiteralAckRSN: true}) {
		t.Fatal("literal-r_sn ACKs unblocked the writer — the DESIGN.md §2 concern is moot")
	}
}

func TestChurnRunValuePersists(t *testing.T) {
	// c ≤ 1/(3δn): n=10, δ=5 → c ≤ 1/150. Keep joiners around ≥ 3δ as the
	// lemmas assume.
	sys := newSystem(t, 10, netsim.SynchronousModel{Delta: delta}, esyncreg.Options{}, 1.0/200, 3*delta)
	ids := sys.ActiveIDs()
	writer := esNode(t, sys, ids[0])
	wrote := false
	if err := writer.Write(777, func() { wrote = true }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(2000); err != nil {
		t.Fatal(err)
	}
	if !wrote {
		t.Fatal("write did not complete under churn")
	}
	// Substantial turnover happened; a current active must still read 777.
	actives := sys.ActiveIDs()
	if len(actives) < 6 {
		t.Fatalf("majority-active assumption broken: %d active of 10", len(actives))
	}
	reader := esNode(t, sys, actives[len(actives)-1])
	var got core.VersionedValue
	read := false
	if err := reader.Read(func(v core.VersionedValue) { got = v; read = true }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(200); err != nil {
		t.Fatal(err)
	}
	if !read {
		t.Fatal("read did not complete under churn")
	}
	if got.Val != 777 || got.SN != 1 {
		t.Fatalf("value lost under churn: %v", got)
	}
	leaves := sys.Engine().Stats().Leaves
	if leaves < 50 {
		t.Fatalf("churn too weak to be meaningful: %d leaves", leaves)
	}
}

func TestOpsInvokedBeforeGSTCompleteAfterGST(t *testing.T) {
	// Theorem 3 shape: an operation invoked during the asynchronous period
	// terminates once the system stabilizes (here: slow pre-GST traffic
	// may deliver late, but quorums eventually assemble).
	model := netsim.EventuallySynchronousModel{GST: 300, Delta: delta, PreGSTMax: 400}
	sys := newSystem(t, 6, netsim.DelayModel(model), esyncreg.Options{}, 0, 0)
	ids := sys.ActiveIDs()
	writer := esNode(t, sys, ids[0])
	wrote := false
	if err := writer.Write(5, func() { wrote = true }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(250); err != nil { // still pre-GST
		t.Fatal(err)
	}
	preGST := wrote
	if err := sys.RunFor(1000); err != nil {
		t.Fatal(err)
	}
	if !wrote {
		t.Fatal("pre-GST write never completed")
	}
	t.Logf("write completed before GST: %v (legal either way)", preGST)
}
