package esyncreg

// Additional unit coverage for quorum bookkeeping edge paths.

import (
	"testing"

	"churnreg/internal/core"
)

func TestReadMergeUpdatesLocalRegister(t *testing.T) {
	n, _ := newActive(5, Options{})
	if err := n.Read(nil); err != nil {
		t.Fatal(err)
	}
	n.Deliver(1, reply(1, 40, 4, 1))
	n.Deliver(2, reply(2, 0, 0, 1))
	n.Deliver(3, reply(3, 0, 0, 1))
	// Line 06: the read refreshes register_i itself, not just the result.
	if v := n.Snapshot(); v.SN != 4 || v.Val != 40 {
		t.Fatalf("register after read = %v, want merged ⟨40,#4⟩", v)
	}
}

func TestSameReplierUpgradesWithinOneRead(t *testing.T) {
	n, _ := newActive(5, Options{})
	if err := n.Read(nil); err != nil {
		t.Fatal(err)
	}
	// The same process answers twice (direct + deferred): counted once for
	// the quorum, and the max value wins.
	n.Deliver(1, reply(1, 10, 1, 1))
	n.Deliver(1, reply(1, 90, 9, 1))
	rr := opOn(n, core.DefaultRegister).readReplies
	if len(rr) != 1 {
		t.Fatalf("one replier counted %d times", len(rr))
	}
	if rr[1].SN != 9 {
		t.Fatalf("kept %v, want the replier's max", rr[1])
	}
}

func TestListenersAckWrites(t *testing.T) {
	// Even a not-yet-active (listening) process ACKs WRITE deliveries —
	// Figure 6 lines 06-08 run "at any process", which is part of what
	// makes writes live under joins.
	n, env := newJoining(5, Options{})
	env.sent = nil
	n.Deliver(9, core.WriteMsg{From: 9, Value: core.VersionedValue{Val: 1, SN: 1}})
	found := false
	for _, s := range env.sent {
		if a, ok := s.msg.(core.AckMsg); ok && s.to == 9 && a.SN == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("listening process did not ACK the WRITE: %v", env.sent)
	}
}

func TestWriteAckQuorumCountsDistinctProcesses(t *testing.T) {
	n, _ := newActive(5, Options{})
	if err := n.Write(3, nil); err != nil {
		t.Fatal(err)
	}
	for _, p := range []core.ProcessID{1, 2, 3} {
		n.Deliver(p, reply(p, 0, 0, 1)) // embedded read quorum
	}
	// Duplicate ACKs from one process must not satisfy the quorum.
	n.Deliver(1, core.AckMsg{From: 1, SN: 1})
	n.Deliver(1, core.AckMsg{From: 1, SN: 1})
	n.Deliver(1, core.AckMsg{From: 1, SN: 1})
	if opOn(n, core.DefaultRegister) == nil {
		t.Fatal("triplicate ACKs from one process completed the write")
	}
	n.Deliver(2, core.AckMsg{From: 2, SN: 1})
	n.Deliver(3, core.AckMsg{From: 3, SN: 1})
	if opOn(n, core.DefaultRegister) != nil {
		t.Fatal("write did not complete on a true majority")
	}
}

func TestDLPrevDedup(t *testing.T) {
	n, _ := newJoining(5, Options{})
	n.Deliver(7, core.DLPrevMsg{From: 7, RSN: 2})
	n.Deliver(7, core.DLPrevMsg{From: 7, RSN: 2})
	n.Deliver(7, core.DLPrevMsg{From: 7, RSN: 3})
	if len(n.dlPrevList) != 2 {
		t.Fatalf("dl_prev entries = %d, want 2 (distinct rsn)", len(n.dlPrevList))
	}
}

func TestStatsCounters(t *testing.T) {
	n, _ := newActive(5, Options{})
	n.Deliver(7, core.InquiryMsg{From: 7, RSN: 0})
	n.Deliver(8, core.ReadMsg{From: 8, RSN: 1})
	n.Deliver(9, core.WriteMsg{From: 9, Value: core.VersionedValue{Val: 1, SN: 1}})
	s := n.Stats()
	if s.RepliesSent != 2 {
		t.Fatalf("RepliesSent = %d, want 2", s.RepliesSent)
	}
	if s.AcksSent != 1 {
		t.Fatalf("AcksSent = %d, want 1", s.AcksSent)
	}
}
