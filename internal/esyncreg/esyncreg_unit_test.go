package esyncreg

// Unit tests drive a Node directly through a fake Env, pinning the
// line-by-line behaviour of Figures 4-6 — including the property that the
// protocol never consults time (After/Delta panic in the fake).

import (
	"testing"

	"churnreg/internal/core"
	"churnreg/internal/sim"
)

type sent struct {
	to  core.ProcessID
	msg core.Message
}

type fakeEnv struct {
	id     core.ProcessID
	n      int
	sent   []sent
	bcasts []core.Message
	active bool
}

func (e *fakeEnv) ID() core.ProcessID { return e.id }
func (e *fakeEnv) Now() sim.Time      { return 0 }

func (e *fakeEnv) Send(to core.ProcessID, m core.Message) {
	e.sent = append(e.sent, sent{to: to, msg: m})
}

func (e *fakeEnv) Broadcast(m core.Message) { e.bcasts = append(e.bcasts, m) }

func (e *fakeEnv) After(sim.Duration, func()) {
	panic("esyncreg consulted a timer: the protocol must be time-free")
}

func (e *fakeEnv) Delta() sim.Duration {
	panic("esyncreg consulted δ: the protocol must be time-free")
}

func (e *fakeEnv) SystemSize() int { return e.n }
func (e *fakeEnv) MarkActive()     { e.active = true }

var _ core.Env = (*fakeEnv)(nil)

func newJoining(n int, opts Options) (*Node, *fakeEnv) {
	env := &fakeEnv{id: 100, n: n}
	node := New(env, core.SpawnContext{}, opts)
	node.Start()
	return node, env
}

func newActive(n int, opts Options) (*Node, *fakeEnv) {
	env := &fakeEnv{id: 100, n: n}
	node := New(env, core.SpawnContext{Bootstrap: true, Initial: core.VersionedValue{Val: 0, SN: 0}}, opts)
	node.Start()
	return node, env
}

func lastSent(t *testing.T, env *fakeEnv) sent {
	t.Helper()
	if len(env.sent) == 0 {
		t.Fatal("nothing sent")
	}
	return env.sent[len(env.sent)-1]
}

func reply(from core.ProcessID, val core.Value, sn core.SeqNum, rsn core.ReadSeq) core.ReplyMsg {
	// Op mirrors RSN, exactly as the wire codec carries it (one counter
	// feeds both tags).
	return core.ReplyMsg{From: from, Value: core.VersionedValue{Val: val, SN: sn}, RSN: rsn, Op: core.OpID(rsn)}
}

// opOn returns the newest in-flight operation on key k (nil if none) —
// the test-side window into the operation table.
func opOn(n *Node, k core.RegisterID) *op {
	var found *op
	for _, id := range n.ops.IDs() {
		if o, ok := n.ops.Get(id); ok && o.reg == k {
			found = o
		}
	}
	return found
}

func TestJoinBroadcastsInquiryZero(t *testing.T) {
	_, env := newJoining(5, Options{})
	if len(env.bcasts) != 1 {
		t.Fatalf("broadcasts = %d, want 1", len(env.bcasts))
	}
	inq, ok := env.bcasts[0].(core.InquiryMsg)
	if !ok || inq.RSN != core.JoinReadSeq || inq.From != 100 {
		t.Fatalf("join broadcast = %#v, want INQUIRY(p100, 0)", env.bcasts[0])
	}
}

func TestJoinWaitsForMajority(t *testing.T) {
	n, env := newJoining(5, Options{}) // majority = 3
	n.Deliver(1, reply(1, 7, 2, 0))
	n.Deliver(2, reply(2, 5, 1, 0))
	if n.Active() {
		t.Fatal("joined with 2 of 3 required replies")
	}
	n.Deliver(3, reply(3, 5, 1, 0))
	if !n.Active() || !env.active {
		t.Fatal("did not join after majority of replies")
	}
	if v := n.Snapshot(); v.Val != 7 || v.SN != 2 {
		t.Fatalf("adopted %v, want highest-sn ⟨7,#2⟩", v)
	}
}

func TestJoinDuplicateRepliersCountOnce(t *testing.T) {
	n, _ := newJoining(5, Options{})
	n.Deliver(1, reply(1, 1, 1, 0))
	n.Deliver(1, reply(1, 1, 1, 0))
	n.Deliver(1, reply(1, 1, 1, 0))
	if n.Active() {
		t.Fatal("three replies from the same process satisfied a 3-quorum")
	}
}

func TestReplyWithWrongRSNIgnored(t *testing.T) {
	n, env := newJoining(5, Options{})
	before := len(env.sent)
	n.Deliver(1, reply(1, 9, 9, 4)) // r_sn 4 != our read_sn 0
	if len(n.joinReplies) != 0 {
		t.Fatal("stale reply recorded")
	}
	if len(env.sent) != before {
		t.Fatal("stale reply was ACKed")
	}
	if n.Stats().StaleRepliesSeen != 1 {
		t.Fatal("stale reply not counted")
	}
}

func TestReplyAckCarriesRegisterSN(t *testing.T) {
	n, env := newJoining(5, Options{})
	n.Deliver(1, reply(1, 9, 4, 0))
	s := lastSent(t, env)
	ack, ok := s.msg.(core.AckMsg)
	if !ok || s.to != 1 {
		t.Fatalf("reply not ACKed: %#v", s)
	}
	if ack.SN != 4 {
		t.Fatalf("ACK.SN = %d, want the reply's register sn 4", ack.SN)
	}
	_ = n
}

func TestReplyAckLiteralVariantCarriesRSN(t *testing.T) {
	n, env := newJoining(5, Options{LiteralAckRSN: true})
	n.Deliver(1, reply(1, 9, 4, 0))
	ack := lastSent(t, env).msg.(core.AckMsg)
	if ack.SN != core.SeqNum(core.JoinReadSeq) {
		t.Fatalf("literal ACK.SN = %d, want r_sn 0", ack.SN)
	}
	_ = n
}

func TestInquiryWhileActiveRepliesImmediately(t *testing.T) {
	n, env := newActive(5, Options{})
	n.vals.Store(core.DefaultRegister, core.VersionedValue{Val: 3, SN: 2})
	n.Deliver(7, core.InquiryMsg{From: 7, RSN: 0})
	s := lastSent(t, env)
	r, ok := s.msg.(core.ReplyMsg)
	if !ok || s.to != 7 {
		t.Fatalf("no reply to inquiry: %#v", s)
	}
	if r.Value.SN != 2 || r.RSN != 0 {
		t.Fatalf("reply = %#v, want register ⟨3,#2⟩ echoing rsn 0", r)
	}
}

func TestInquiryWhileActiveAndReadingAddsDLPrev(t *testing.T) {
	n, env := newActive(5, Options{})
	if err := n.Read(nil); err != nil {
		t.Fatal(err)
	}
	env.sent = nil
	n.Deliver(7, core.InquiryMsg{From: 7, RSN: 0})
	if len(env.sent) != 2 {
		t.Fatalf("sent %d messages, want REPLY + DL_PREV", len(env.sent))
	}
	dl, ok := env.sent[1].msg.(core.DLPrevMsg)
	if !ok {
		t.Fatalf("second message = %#v, want DL_PREV", env.sent[1].msg)
	}
	if dl.RSN != 1 {
		t.Fatalf("DL_PREV.RSN = %d, want our pending read_sn 1", dl.RSN)
	}
}

func TestInquiryWhileJoiningDefersAndSendsDLPrev(t *testing.T) {
	n, env := newJoining(5, Options{})
	env.sent = nil
	n.Deliver(7, core.InquiryMsg{From: 7, RSN: 0})
	if len(n.replyToList) != 1 || n.replyToList[0] != (reqKey{id: 7, rsn: 0}) {
		t.Fatalf("reply_to = %v, want [(p7,0)]", n.replyToList)
	}
	dl, ok := lastSent(t, env).msg.(core.DLPrevMsg)
	if !ok || dl.RSN != 0 {
		t.Fatalf("DL_PREV = %#v, want rsn 0 (our pending join)", lastSent(t, env).msg)
	}
}

func TestInquiryDLPrevDisabled(t *testing.T) {
	n, env := newJoining(5, Options{DisableDLPrev: true})
	env.sent = nil
	n.Deliver(7, core.InquiryMsg{From: 7, RSN: 0})
	if len(env.sent) != 0 {
		t.Fatalf("ablated node sent %v, want nothing", env.sent)
	}
	if len(n.replyToList) != 1 {
		t.Fatal("deferral must survive the ablation")
	}
}

func TestJoinCompletionFlushesDeferredOnce(t *testing.T) {
	n, env := newJoining(5, Options{})
	// Same requester lands in both reply_to (via INQUIRY) and dl_prev
	// (via DL_PREV): the flush must reply once.
	n.Deliver(7, core.InquiryMsg{From: 7, RSN: 0})
	n.Deliver(7, core.DLPrevMsg{From: 7, RSN: 0})
	n.Deliver(8, core.ReadMsg{From: 8, RSN: 3})
	env.sent = nil
	n.Deliver(1, reply(1, 1, 1, 0))
	n.Deliver(2, reply(2, 1, 1, 0))
	n.Deliver(3, reply(3, 1, 1, 0))
	if !n.Active() {
		t.Fatal("join incomplete")
	}
	var replies []sent
	for _, s := range env.sent {
		if _, ok := s.msg.(core.ReplyMsg); ok {
			replies = append(replies, s)
		}
	}
	if len(replies) != 2 {
		t.Fatalf("deferred replies = %d (%v), want 2 (p7 once, p8 once)", len(replies), replies)
	}
	seen := map[core.ProcessID]core.ReadSeq{}
	for _, s := range replies {
		seen[s.to] = s.msg.(core.ReplyMsg).RSN
	}
	if seen[7] != 0 || seen[8] != 3 {
		t.Fatalf("deferred replies carry wrong rsn: %v", seen)
	}
}

func TestReadBroadcastsAndCompletesOnMajority(t *testing.T) {
	n, env := newActive(5, Options{})
	var got core.VersionedValue
	doneRan := false
	if err := n.Read(func(v core.VersionedValue) { got = v; doneRan = true }); err != nil {
		t.Fatal(err)
	}
	rd, ok := env.bcasts[len(env.bcasts)-1].(core.ReadMsg)
	if !ok || rd.RSN != 1 {
		t.Fatalf("read broadcast = %#v, want READ(_, 1)", env.bcasts[len(env.bcasts)-1])
	}
	n.Deliver(1, reply(1, 50, 5, 1))
	n.Deliver(2, reply(2, 0, 0, 1))
	if doneRan {
		t.Fatal("read returned before majority")
	}
	n.Deliver(3, reply(3, 0, 0, 1))
	if !doneRan {
		t.Fatal("read did not return on majority")
	}
	if got.Val != 50 || got.SN != 5 {
		t.Fatalf("read returned %v, want merged ⟨50,#5⟩", got)
	}
}

func TestSecondReadUsesFreshRSNAndIgnoresOldReplies(t *testing.T) {
	n, _ := newActive(5, Options{})
	if err := n.Read(nil); err != nil {
		t.Fatal(err)
	}
	for _, p := range []core.ProcessID{1, 2, 3} {
		n.Deliver(p, reply(p, 0, 0, 1))
	}
	if err := n.Read(nil); err != nil {
		t.Fatal(err)
	}
	// Replies to read #1 must not count toward read #2.
	n.Deliver(1, reply(1, 0, 0, 1))
	n.Deliver(2, reply(2, 0, 0, 1))
	n.Deliver(3, reply(3, 0, 0, 1))
	if o := opOn(n, core.DefaultRegister); o == nil || !o.reading {
		t.Fatal("read #2 completed on stale replies")
	}
	n.Deliver(1, reply(1, 0, 0, 2))
	n.Deliver(2, reply(2, 0, 0, 2))
	n.Deliver(3, reply(3, 0, 0, 2))
	if opOn(n, core.DefaultRegister) != nil {
		t.Fatal("read #2 did not complete on fresh replies")
	}
}

func TestWriteEmbedsReadThenBroadcastsWrite(t *testing.T) {
	n, env := newActive(5, Options{})
	doneRan := false
	if err := n.Write(77, func() { doneRan = true }); err != nil {
		t.Fatal(err)
	}
	// Phase 1: the embedded read.
	if _, ok := env.bcasts[len(env.bcasts)-1].(core.ReadMsg); !ok {
		t.Fatalf("write did not read first: %#v", env.bcasts[len(env.bcasts)-1])
	}
	n.Deliver(1, reply(1, 5, 3, 1)) // some process knows sn 3
	n.Deliver(2, reply(2, 0, 0, 1))
	n.Deliver(3, reply(3, 0, 0, 1))
	// Phase 2: the WRITE broadcast with sn = 3+1.
	w, ok := env.bcasts[len(env.bcasts)-1].(core.WriteMsg)
	if !ok {
		t.Fatalf("no WRITE broadcast after embedded read: %#v", env.bcasts[len(env.bcasts)-1])
	}
	if w.Value.Val != 77 || w.Value.SN != 4 {
		t.Fatalf("WRITE = %v, want ⟨77,#4⟩", w.Value)
	}
	// ACKs: needs 3.
	n.Deliver(1, core.AckMsg{From: 1, SN: 4})
	n.Deliver(2, core.AckMsg{From: 2, SN: 4})
	if doneRan {
		t.Fatal("write returned before ACK majority")
	}
	n.Deliver(3, core.AckMsg{From: 3, SN: 4})
	if !doneRan {
		t.Fatal("write did not return on ACK majority")
	}
}

func TestAckWithWrongSNIgnored(t *testing.T) {
	n, _ := newActive(5, Options{})
	if err := n.Write(1, nil); err != nil {
		t.Fatal(err)
	}
	for _, p := range []core.ProcessID{1, 2, 3} {
		n.Deliver(p, reply(p, 0, 0, 1))
	}
	n.Deliver(1, core.AckMsg{From: 1, SN: 0}) // stale sn
	n.Deliver(2, core.AckMsg{From: 2, SN: 9}) // future sn
	if wa := opOn(n, core.DefaultRegister).writeAck; len(wa) != 0 {
		t.Fatalf("mismatched ACKs counted: %v", wa)
	}
}

func TestWriteDeliveryUpdatesAndAlwaysAcks(t *testing.T) {
	n, env := newActive(5, Options{})
	env.sent = nil
	n.Deliver(9, core.WriteMsg{From: 9, Value: core.VersionedValue{Val: 8, SN: 2}})
	if v := n.Snapshot(); v.Val != 8 || v.SN != 2 {
		t.Fatalf("WRITE not applied: %v", v)
	}
	ack := lastSent(t, env).msg.(core.AckMsg)
	if ack.SN != 2 {
		t.Fatalf("ACK.SN = %d, want 2", ack.SN)
	}
	// Stale write: not applied, still ACKed (Figure 6 line 08).
	n.Deliver(9, core.WriteMsg{From: 9, Value: core.VersionedValue{Val: 1, SN: 1}})
	if v := n.Snapshot(); v.SN != 2 {
		t.Fatalf("stale WRITE applied: %v", v)
	}
	ack = lastSent(t, env).msg.(core.AckMsg)
	if ack.SN != 1 {
		t.Fatalf("stale WRITE not ACKed with its sn: %d", ack.SN)
	}
}

func TestJoiningProcessAppliesWrites(t *testing.T) {
	n, _ := newJoining(5, Options{})
	n.Deliver(9, core.WriteMsg{From: 9, Value: core.VersionedValue{Val: 8, SN: 2}})
	if v := n.Snapshot(); v.Val != 8 || v.SN != 2 {
		t.Fatalf("listening process did not apply WRITE: %v", v)
	}
}

func TestReadWhileJoiningDefersWithoutDLPrev(t *testing.T) {
	n, env := newJoining(5, Options{})
	env.sent = nil
	n.Deliver(7, core.ReadMsg{From: 7, RSN: 2})
	if len(n.replyToList) != 1 || n.replyToList[0] != (reqKey{id: 7, rsn: 2}) {
		t.Fatalf("READ not deferred: %v", n.replyToList)
	}
	// Figure 5's READ handler sends no DL_PREV (unlike INQUIRY's).
	if len(env.sent) != 0 {
		t.Fatalf("READ handler sent %v, want nothing", env.sent)
	}
}

func TestDLPrevAtActiveNodeAnswersImmediately(t *testing.T) {
	n, env := newActive(5, Options{})
	env.sent = nil
	n.Deliver(7, core.DLPrevMsg{From: 7, RSN: 4})
	r, ok := lastSent(t, env).msg.(core.ReplyMsg)
	if !ok || r.RSN != 4 {
		t.Fatalf("late DL_PREV not answered: %#v", lastSent(t, env).msg)
	}
}

func TestOperationGuards(t *testing.T) {
	joining, _ := newJoining(5, Options{})
	if err := joining.Read(nil); err != core.ErrNotActive {
		t.Fatalf("Read while joining = %v, want ErrNotActive", err)
	}
	if err := joining.Write(1, nil); err != core.ErrNotActive {
		t.Fatalf("Write while joining = %v, want ErrNotActive", err)
	}

	// Sequentiality is relaxed: a second read and a write during a read
	// are pipelined, each its own op-table entry.
	active, _ := newActive(5, Options{})
	if err := active.Read(nil); err != nil {
		t.Fatal(err)
	}
	if err := active.Read(nil); err != nil {
		t.Fatalf("pipelined second Read = %v, want nil", err)
	}
	if err := active.Write(1, nil); err != nil {
		t.Fatalf("Write during reads = %v, want nil", err)
	}
	if got := active.PendingOps(); got != 3 {
		t.Fatalf("PendingOps = %d, want 3", got)
	}
	// ErrOpInProgress survives as backpressure: it fires only when the
	// operation table is full.
	for active.PendingOps() < core.MaxInFlightOps {
		if err := active.Read(nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := active.Read(nil); err != core.ErrOpInProgress {
		t.Fatalf("Read with a full op table = %v, want ErrOpInProgress", err)
	}
}

func TestOnJoinedCallbackOrdering(t *testing.T) {
	n, _ := newJoining(3, Options{}) // majority = 2
	var order []int
	n.OnJoined(func() { order = append(order, 1) })
	n.OnJoined(func() { order = append(order, 2) })
	n.Deliver(1, reply(1, 0, 0, 0))
	n.Deliver(2, reply(2, 0, 0, 0))
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("join callbacks ran %v, want [1 2]", order)
	}
	ran := false
	n.OnJoined(func() { ran = true })
	if !ran {
		t.Fatal("OnJoined after activation did not fire immediately")
	}
}

func TestDeliverUnknownKindPanics(t *testing.T) {
	n, _ := newActive(5, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("unknown message kind did not panic")
		}
	}()
	n.Deliver(1, fakeMsg{})
}

type fakeMsg struct{}

func (fakeMsg) Kind() core.MsgKind { return core.MsgKind(42) }
func (fakeMsg) WireSize() int      { return 1 }
