// Package esyncreg implements the paper's eventually synchronous regular
// register protocol (§5, Figures 4, 5 and 6).
//
// The protocol cannot rely on the passage of time (δ and GST exist but are
// unknown to processes), so every operation is acknowledgment-based:
//
//   - join (Figure 4): broadcast INQUIRY(i, 0) and wait until a majority
//     (⌊n/2⌋+1) of REPLYs arrive; adopt the highest sequence number; then
//     answer every request deferred in reply_to and dl_prev.
//   - read (Figure 5): a simplified join — broadcast READ(i, read_sn), wait
//     for a majority of matching REPLYs, merge, return the local copy.
//   - write (Figure 6): read first (to learn the greatest sequence number),
//     then broadcast WRITE(i, ⟨v, sn+1⟩) and wait for a majority of ACKs.
//
// The DL_PREV mechanism is what makes operations live (Lemmas 5–7): a
// process that sees a request it cannot answer yet — or that has a pending
// read a newcomer can't know about — hands the requester/newcomer an
// obligation to reply later. Without it, concurrent joins starve each other
// under churn; Options.DisableDLPrev exposes that ablation (experiment E9).
//
// Correctness requires a majority of the n processes active at all times
// and c ≤ 1/(3δn) (§5.2); the package does not enforce either — experiments
// explore both sides.
//
// This implementation is deliberately time-free: it never calls env.After
// or env.Delta (asserted by tests), matching the paper's "the date GST and
// the bound δ can never be explicitly known by the processes".
package esyncreg

import (
	"churnreg/internal/core"
)

// Options tune the protocol for experiments.
type Options struct {
	// DisableDLPrev removes the DL_PREV deferred-reply mechanism
	// (Figure 4 lines 14, 16, 22 and the dl_prev part of line 08). The
	// protocol loses join/read liveness under concurrent joins — the E9
	// ablation demonstrates it.
	DisableDLPrev bool
	// LiteralAckRSN makes the REPLY-triggered ACK carry the request's
	// read sequence number, the literal text of Figure 4 line 20, instead
	// of the register sequence number our DESIGN.md §2 interpretation
	// argues Lemma 7 needs. With it, writers can starve (tested).
	LiteralAckRSN bool
}

// reqKey identifies a pending remote request: who asked, and which of
// their requests (read_sn; 0 is the join).
type reqKey struct {
	id  core.ProcessID
	rsn core.ReadSeq
}

// Node is one process running the eventually synchronous protocol. It must
// only be driven by a single-threaded runtime (core.Env guarantees this).
type Node struct {
	env  core.Env
	opts Options

	// register is (register_i, sn_i).
	register core.VersionedValue
	// active is active_i.
	active bool
	// reading is reading_i.
	reading bool
	// readSN is read_sn_i; 0 identifies the join inquiry.
	readSN core.ReadSeq
	// replies is replies_i, keyed by responder, for the current request.
	replies map[core.ProcessID]core.VersionedValue
	// replyTo is reply_to_i; insertion-ordered for determinism.
	replyTo     map[reqKey]bool
	replyToList []reqKey
	// dlPrev is dl_prev_i; insertion-ordered for determinism.
	dlPrev     map[reqKey]bool
	dlPrevList []reqKey
	// writeAck is write_ack_i.
	writeAck map[core.ProcessID]bool

	joining   bool
	joinDone  []func()
	readDone  func(core.VersionedValue)
	writing   bool
	writeDone func()
	// writeBroadcast marks the write's second phase: the WRITE message is
	// out and ACKs may count. The paper's "wait until |write_ack| ≥ ..."
	// (Figure 6 line 05) textually follows the reset+broadcast of lines
	// 03-04; without this gate, stale ACKs arriving during the embedded
	// read of line 01 would match the previous write's state and complete
	// the operation before it broadcast anything.
	writeBroadcast bool
	// writeSN is the sequence number of the in-flight write.
	writeSN core.SeqNum
	// writeVal is the value of the in-flight write, applied between the
	// embedded read completing and the WRITE broadcast.
	writeVal core.Value

	stats Stats
}

// Stats counts protocol activity at this node.
type Stats struct {
	Reads            uint64
	Writes           uint64
	RepliesSent      uint64
	DeferredReplies  uint64 // replies sent at join completion (reply_to ∪ dl_prev)
	DLPrevSent       uint64
	AcksSent         uint64
	StaleRepliesSeen uint64 // REPLYs whose r_sn did not match read_sn
}

// New builds a node. Bootstrap nodes hold the initial value and are active
// immediately; all others start the join operation when Start is called.
func New(env core.Env, sc core.SpawnContext, opts Options) *Node {
	n := &Node{
		env:      env,
		opts:     opts,
		register: core.Bottom(),
		replies:  make(map[core.ProcessID]core.VersionedValue),
		replyTo:  make(map[reqKey]bool),
		dlPrev:   make(map[reqKey]bool),
		writeAck: make(map[core.ProcessID]bool),
	}
	if sc.Bootstrap {
		n.register = sc.Initial
		n.active = true
	}
	return n
}

// Factory returns a core.NodeFactory building nodes with opts.
func Factory(opts Options) core.NodeFactory {
	return func(env core.Env, sc core.SpawnContext) core.Node {
		return New(env, sc, opts)
	}
}

// Compile-time interface checks.
var (
	_ core.Node   = (*Node)(nil)
	_ core.Reader = (*Node)(nil)
	_ core.Writer = (*Node)(nil)
	_ core.Joiner = (*Node)(nil)
)

// majority returns ⌊n/2⌋+1, the quorum size backed by the §5.2 assumption
// that a majority of the n processes is active at every instant.
func (n *Node) majority() int { return n.env.SystemSize()/2 + 1 }

// Start implements core.Node — operation join(i), Figure 4 lines 01-04.
func (n *Node) Start() {
	if n.active {
		n.env.MarkActive()
		return
	}
	n.joining = true
	// Lines 01-02: initialization happened in New; read_sn_i starts at 0,
	// identifying this join's inquiry.
	n.readSN = core.JoinReadSeq
	n.replies = make(map[core.ProcessID]core.VersionedValue)
	// Line 03: broadcast INQUIRY(i, read_sn_i).
	n.env.Broadcast(core.InquiryMsg{From: n.env.ID(), RSN: n.readSN})
	// Line 04 ("wait until |replies_i| ≥ n/2+1") is event-driven: the
	// check runs on every REPLY arrival (checkJoin).
}

// checkJoin completes the join once a majority of replies arrived
// (Figure 4 lines 05-11).
func (n *Node) checkJoin() {
	if !n.joining || len(n.replies) < n.majority() {
		return
	}
	n.joining = false
	// Lines 05-06: adopt the most up-to-date value among the replies.
	for _, v := range n.replies {
		if v.MoreRecent(n.register) {
			n.register = v
		}
	}
	// Line 07: become active.
	n.active = true
	n.env.MarkActive()
	// Lines 08-10: answer everything deferred in reply_to ∪ dl_prev.
	n.flushDeferred()
	// Line 11: return ok.
	done := n.joinDone
	n.joinDone = nil
	for _, f := range done {
		f()
	}
}

// flushDeferred sends the deferred REPLYs of Figure 4 lines 08-10 and
// clears both sets.
func (n *Node) flushDeferred() {
	sent := make(map[reqKey]bool, len(n.replyToList)+len(n.dlPrevList))
	for _, k := range append(append([]reqKey{}, n.replyToList...), n.dlPrevList...) {
		if sent[k] {
			continue
		}
		sent[k] = true
		n.stats.DeferredReplies++
		n.env.Send(k.id, core.ReplyMsg{From: n.env.ID(), Value: n.register, RSN: k.rsn})
	}
	n.replyTo = make(map[reqKey]bool)
	n.replyToList = nil
	n.dlPrev = make(map[reqKey]bool)
	n.dlPrevList = nil
}

// OnJoined implements core.Joiner.
func (n *Node) OnJoined(done func()) {
	if done == nil {
		return
	}
	if n.active {
		done()
		return
	}
	n.joinDone = append(n.joinDone, done)
}

// Active implements core.Node.
func (n *Node) Active() bool { return n.active }

// Snapshot implements core.Node.
func (n *Node) Snapshot() core.VersionedValue { return n.register }

// Stats returns a copy of this node's counters.
func (n *Node) Stats() Stats { return n.stats }

// Read implements core.Reader — operation read(i), Figure 5 lines 01-07.
// done receives the value the read returns.
func (n *Node) Read(done func(core.VersionedValue)) error {
	if !n.active {
		return core.ErrNotActive
	}
	if n.reading || n.writing {
		return core.ErrOpInProgress
	}
	n.stats.Reads++
	n.startRead(done)
	return nil
}

// startRead is the body shared by Read and the write's embedded read.
func (n *Node) startRead(done func(core.VersionedValue)) {
	// Line 01: read_sn_i := read_sn_i + 1.
	n.readSN++
	// Line 02: replies := ∅; reading := true.
	n.replies = make(map[core.ProcessID]core.VersionedValue)
	n.reading = true
	n.readDone = done
	// Line 03: broadcast READ(i, read_sn_i).
	n.env.Broadcast(core.ReadMsg{From: n.env.ID(), RSN: n.readSN})
	// Line 04 is event-driven (checkRead on every REPLY).
}

// checkRead completes the read once a majority of matching replies arrived
// (Figure 5 lines 05-07).
func (n *Node) checkRead() {
	if !n.reading || len(n.replies) < n.majority() {
		return
	}
	// Lines 05-06: merge the most up-to-date value.
	for _, v := range n.replies {
		if v.MoreRecent(n.register) {
			n.register = v
		}
	}
	// Line 07: reading := false; return register_i.
	n.reading = false
	done := n.readDone
	n.readDone = nil
	if done != nil {
		done(n.register)
	}
}

// Write implements core.Writer — operation write(v), Figure 6 lines 01-05.
// The paper assumes no two processes write concurrently.
func (n *Node) Write(v core.Value, done func()) error {
	if !n.active {
		return core.ErrNotActive
	}
	if n.reading || n.writing {
		return core.ErrOpInProgress
	}
	n.stats.Writes++
	n.writing = true
	n.writeBroadcast = false
	n.writeDone = done
	n.writeVal = v
	// Line 01: read() — obtain the greatest sequence number. The embedded
	// read also refreshes register_i, so line 02's increment builds on it.
	n.startRead(func(core.VersionedValue) {
		// Line 02: sn_i := sn_i + 1; register_i := v.
		n.register = core.VersionedValue{Val: n.writeVal, SN: n.register.SN + 1}
		n.writeSN = n.register.SN
		// Line 03: write_ack := ∅.
		n.writeAck = make(map[core.ProcessID]bool)
		n.writeBroadcast = true
		// Line 04: broadcast WRITE(i, ⟨v, sn⟩).
		n.env.Broadcast(core.WriteMsg{From: n.env.ID(), Value: n.register})
		// Line 05 is event-driven (checkWrite on every ACK).
	})
	return nil
}

// checkWrite completes the write once a majority of ACKs arrived
// (Figure 6 line 05).
func (n *Node) checkWrite() {
	if !n.writing || !n.writeBroadcast || len(n.writeAck) < n.majority() {
		return
	}
	n.writing = false
	n.writeBroadcast = false
	done := n.writeDone
	n.writeDone = nil
	if done != nil {
		done()
	}
}

// Deliver implements core.Node, dispatching the handlers of Figures 4-6.
func (n *Node) Deliver(from core.ProcessID, m core.Message) {
	switch msg := m.(type) {
	case core.InquiryMsg:
		n.handleInquiry(msg)
	case core.ReadMsg:
		n.handleRead(msg)
	case core.ReplyMsg:
		n.handleReply(msg)
	case core.WriteMsg:
		n.handleWrite(msg)
	case core.AckMsg:
		n.handleAck(msg)
	case core.DLPrevMsg:
		n.handleDLPrev(msg)
	default:
		panic("esyncreg: unexpected message kind " + m.Kind().String())
	}
}

// handleInquiry is Figure 4 lines 12-17.
func (n *Node) handleInquiry(m core.InquiryMsg) {
	if n.active {
		// Line 13: answer immediately.
		n.stats.RepliesSent++
		n.env.Send(m.From, core.ReplyMsg{From: n.env.ID(), Value: n.register, RSN: m.RSN})
		// Line 14: a reading process also asks the newcomer to answer its
		// in-flight read once active — the newcomer was not in the READ
		// broadcast's snapshot and would otherwise never reply. The
		// DL_PREV carries OUR pending request id (read_sn_i), which is
		// what the newcomer must echo for line 19's match to succeed.
		if n.reading && !n.opts.DisableDLPrev {
			n.stats.DLPrevSent++
			n.env.Send(m.From, core.DLPrevMsg{From: n.env.ID(), RSN: n.readSN})
		}
		return
	}
	// Line 15: we cannot answer yet; remember the request.
	n.defer_(reqKey{id: m.From, rsn: m.RSN})
	// Line 16: and ask the inquirer to answer OUR join (pending request 0)
	// when it becomes active — two concurrent joiners promise each other
	// replies, which is what makes join live (Lemma 5).
	if !n.opts.DisableDLPrev {
		n.stats.DLPrevSent++
		n.env.Send(m.From, core.DLPrevMsg{From: n.env.ID(), RSN: n.readSN})
	}
}

// handleRead is Figure 5 lines 08-11.
func (n *Node) handleRead(m core.ReadMsg) {
	if n.active {
		// Line 09.
		n.stats.RepliesSent++
		n.env.Send(m.From, core.ReplyMsg{From: n.env.ID(), Value: n.register, RSN: m.RSN})
		return
	}
	// Line 10: answer at join completion.
	n.defer_(reqKey{id: m.From, rsn: m.RSN})
}

// handleReply is Figure 4 lines 18-21.
func (n *Node) handleReply(m core.ReplyMsg) {
	// Line 19: only replies to our current request count.
	if m.RSN != n.readSN {
		n.stats.StaleRepliesSeen++
		return
	}
	// Line 20: record the reply and acknowledge it. The ACK carries the
	// register sequence number from the reply (not r_sn): if the replier
	// is a writer with an in-flight write, this ACK is how processes that
	// joined after the WRITE broadcast contribute to its quorum (Lemma 7;
	// see DESIGN.md §2). Options.LiteralAckRSN restores the literal text.
	if cur, ok := n.replies[m.From]; !ok || m.Value.MoreRecent(cur) {
		n.replies[m.From] = m.Value
	}
	ackSN := m.Value.SN
	if n.opts.LiteralAckRSN {
		ackSN = core.SeqNum(m.RSN)
	}
	n.stats.AcksSent++
	n.env.Send(m.From, core.AckMsg{From: n.env.ID(), SN: ackSN})
	// Line 04 of Figures 4/5: re-check quorums.
	n.checkJoin()
	n.checkRead()
}

// handleWrite is Figure 6 lines 06-08 — runs at any process, active or
// joining.
func (n *Node) handleWrite(m core.WriteMsg) {
	// Line 07.
	if m.Value.MoreRecent(n.register) {
		n.register = m.Value
	}
	// Line 08: "In all cases, it sends back an ACK" — even for stale
	// writes, so a slow writer can still terminate.
	n.stats.AcksSent++
	n.env.Send(m.From, core.AckMsg{From: n.env.ID(), SN: m.Value.SN})
}

// handleAck is Figure 6 lines 09-10. ACKs only count once the WRITE is out
// (see the writeBroadcast comment).
func (n *Node) handleAck(m core.AckMsg) {
	if n.writing && n.writeBroadcast && m.SN == n.writeSN {
		n.writeAck[m.From] = true
		n.checkWrite()
	}
}

// handleDLPrev is Figure 4 line 22.
func (n *Node) handleDLPrev(m core.DLPrevMsg) {
	if n.opts.DisableDLPrev {
		return
	}
	k := reqKey{id: m.From, rsn: m.RSN}
	if n.active {
		// We already became active: answer immediately rather than never.
		// (The paper's line 08 flush happens once, at join completion; a
		// DL_PREV arriving after that would otherwise strand the sender,
		// which can only lose liveness — answering now is safe: it is the
		// same REPLY we would have sent a moment earlier.)
		n.stats.RepliesSent++
		n.env.Send(k.id, core.ReplyMsg{From: n.env.ID(), Value: n.register, RSN: k.rsn})
		return
	}
	if !n.dlPrev[k] {
		n.dlPrev[k] = true
		n.dlPrevList = append(n.dlPrevList, k)
	}
}

// defer_ records a request to answer at join completion (reply_to_i).
func (n *Node) defer_(k reqKey) {
	if !n.replyTo[k] {
		n.replyTo[k] = true
		n.replyToList = append(n.replyToList, k)
	}
}
