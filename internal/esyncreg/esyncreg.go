// Package esyncreg implements the paper's eventually synchronous regular
// register protocol (§5, Figures 4, 5 and 6), generalized from one
// register to a keyed register namespace served by a single join.
//
// The protocol cannot rely on the passage of time (δ and GST exist but are
// unknown to processes), so every operation is acknowledgment-based:
//
//   - join (Figure 4): broadcast INQUIRY(i, 0) and wait until a majority
//     (⌊n/2⌋+1) of REPLYs arrive; each reply carries the replier's WHOLE
//     register space in one message (batch dissemination), and the joiner
//     adopts, per key, the highest sequence number; then answer every
//     request deferred in reply_to and dl_prev.
//   - read (Figure 5): a simplified join, per key — broadcast
//     READ(i, read_sn, k), wait for a majority of matching REPLYs, merge,
//     return the local copy of k.
//   - write (Figure 6): read the key first (to learn its greatest sequence
//     number), then broadcast WRITE(i, ⟨v, sn+1⟩, k) and wait for a
//     majority of ACKs carrying (k, sn+1).
//
// Concurrency: the paper's processes are sequential — one operation at a
// time. This node is not: every client operation is an entry in ONE
// operation table keyed by core.OpID (the generalization of the paper's
// read_sn to all operations — both tags are drawn from the same per-node
// counter), so any number of reads and writes may be in flight, across
// keys and pipelined on the same key. Replies route to the exact
// operation whose OpID they echo; acknowledgments route by echoed OpID
// or, for the indirect Lemma-7 acks, by the ⟨key, sequence number⟩ they
// name. The one serialization that remains is SN ASSIGNMENT: pipelined
// writes to one key pass through a per-key FIFO at the moment their
// embedded read completes, so a node's writes to a key carry strictly
// increasing sequence numbers in invocation order. The paper's
// no-concurrent-writes discipline survives per key ACROSS nodes — two
// different nodes must still not write one key concurrently.
//
// Membership vs. register state: the join, the active flag and the
// deferred-request sets are maintained once per process; everything
// register-valued — local copies and the operation table — is keyed by
// core.RegisterID or core.OpID and instantiated lazily.
//
// The DL_PREV mechanism is what makes operations live (Lemmas 5–7): a
// process that sees a request it cannot answer yet — or that has a pending
// read a newcomer can't know about — hands the requester/newcomer an
// obligation to reply later. Without it, concurrent joins starve each other
// under churn; Options.DisableDLPrev exposes that ablation (experiment E9).
//
// Correctness requires a majority of the n processes active at all times
// and c ≤ 1/(3δn) (§5.2); the package does not enforce either — experiments
// explore both sides.
//
// This implementation is deliberately time-free: it never calls env.After
// or env.Delta (asserted by tests), matching the paper's "the date GST and
// the bound δ can never be explicitly known by the processes".
package esyncreg

import (
	"churnreg/internal/core"
)

// Options tune the protocol for experiments.
type Options struct {
	// DisableDLPrev removes the DL_PREV deferred-reply mechanism
	// (Figure 4 lines 14, 16, 22 and the dl_prev part of line 08). The
	// protocol loses join/read liveness under concurrent joins — the E9
	// ablation demonstrates it.
	DisableDLPrev bool
	// LiteralAckRSN makes the REPLY-triggered ACK carry the request's
	// read sequence number, the literal text of Figure 4 line 20, instead
	// of the register sequence number our DESIGN.md §2 interpretation
	// argues Lemma 7 needs. With it, writers can starve (tested).
	LiteralAckRSN bool
}

// reqKey identifies a pending remote request: who asked, which of their
// requests (read_sn, numerically the requester's OpID; 0 is the join),
// and — for reads — which register. A join request (rsn == JoinReadSeq)
// is answered with a full snapshot, so its reg is irrelevant and left
// zero.
type reqKey struct {
	id  core.ProcessID
	rsn core.ReadSeq
	reg core.RegisterID
}

// op is one in-flight client operation — a read, or a write with its
// embedded read phase. Its OpID tags every request it broadcasts, which
// is how replies and acks find it among arbitrarily many concurrent
// operations (the per-key single pending slot this table replaced).
type op struct {
	reg core.RegisterID

	// scope/quorum pin the operation's quorum population at invocation:
	// unsharded, scope is nil and quorum is ⌊n/2⌋+1; sharded, scope is
	// the key's replica group and quorum a majority of it — replies and
	// acks from outside the scope (DL_PREV answerers that joined after
	// the broadcast, say) never count, preserving the per-shard quorum
	// intersection (core.OpScope).
	scope  map[core.ProcessID]bool
	quorum int

	// Read phase: Figure 5's reading_i / replies_i for a client read, or
	// Figure 6 line 01's embedded read for a write.
	reading     bool
	readReplies map[core.ProcessID]core.VersionedValue
	readDone    func(core.VersionedValue)

	// Write phase (Figure 6). writeReadDone marks the embedded read
	// complete while the op waits its turn in the key's SN-assignment
	// FIFO; writeBroadcast marks the WRITE out, which gates ACK counting
	// (without it, stale ACKs arriving during the embedded read would
	// complete the operation before it broadcast anything).
	isWrite        bool
	writeVal       core.Value
	writeReadDone  bool
	writeBroadcast bool
	writeSN        core.SeqNum
	writeAck       map[core.ProcessID]bool
	writeDone      func(core.VersionedValue)
}

// ackKey routes acknowledgments that carry no OpID — the Lemma-7 reply
// acks, whose sender cannot know the writer's OpID — to the in-flight
// write whose ⟨register, sequence number⟩ they name.
type ackKey struct {
	reg core.RegisterID
	sn  core.SeqNum
}

// Node is one process running the eventually synchronous protocol. It must
// only be driven by a single-threaded runtime (core.Env guarantees this).
type Node struct {
	env  core.Env
	opts Options

	// vals holds (register_i, sn_i) per key; a key is absent until a
	// value for it is learned.
	vals *core.RegStore
	// active is active_i.
	active bool
	// joining marks the window between Start and the join quorum.
	joining bool
	// joinReplies is replies_i for the join: the distinct repliers whose
	// snapshots were merged (values fold into vals on arrival; only the
	// replier set is needed for the majority test).
	joinReplies map[core.ProcessID]bool
	// ops is the operation table. Its counter doubles as read_sn_i: 0
	// identifies the join inquiry, every operation draws the next value.
	ops *core.OpTable[op]
	// writeQ orders SN assignment per key: write OpIDs in invocation
	// order, popped as their embedded reads complete (head first).
	writeQ map[core.RegisterID][]core.OpID
	// ackRoute indexes broadcast writes by the ⟨reg, sn⟩ their acks name.
	ackRoute map[ackKey]core.OpID
	// replyTo is reply_to_i; insertion-ordered for determinism.
	replyTo     map[reqKey]bool
	replyToList []reqKey
	// dlPrev is dl_prev_i; insertion-ordered for determinism.
	dlPrev     map[reqKey]bool
	dlPrevList []reqKey

	joinDone []func()

	stats Stats
}

// Stats counts protocol activity at this node.
type Stats struct {
	Reads            uint64
	Writes           uint64
	JoinInquiries    uint64 // INQUIRY broadcasts sent by this node's join (0 or 1)
	RepliesSent      uint64
	DeferredReplies  uint64 // replies sent at join completion (reply_to ∪ dl_prev)
	DLPrevSent       uint64
	AcksSent         uint64
	StaleRepliesSeen uint64 // REPLYs whose op tag matched no open request
}

// New builds a node. Bootstrap nodes hold the initial values and are
// active immediately; all others start the join operation when Start is
// called.
func New(env core.Env, sc core.SpawnContext, opts Options) *Node {
	n := &Node{
		env:         env,
		opts:        opts,
		vals:        core.NewRegStore(sc),
		joinReplies: make(map[core.ProcessID]bool),
		ops:         core.NewOpTable[op](0),
		writeQ:      make(map[core.RegisterID][]core.OpID),
		ackRoute:    make(map[ackKey]core.OpID),
		replyTo:     make(map[reqKey]bool),
		dlPrev:      make(map[reqKey]bool),
	}
	n.active = sc.Bootstrap
	return n
}

// Factory returns a core.NodeFactory building nodes with opts.
func Factory(opts Options) core.NodeFactory {
	return func(env core.Env, sc core.SpawnContext) core.Node {
		return New(env, sc, opts)
	}
}

// Compile-time interface checks.
var (
	_ core.Node             = (*Node)(nil)
	_ core.Reader           = (*Node)(nil)
	_ core.Writer           = (*Node)(nil)
	_ core.Joiner           = (*Node)(nil)
	_ core.KeyedReader      = (*Node)(nil)
	_ core.KeyedWriter      = (*Node)(nil)
	_ core.SNWriter         = (*Node)(nil)
	_ core.KeyedSnapshotter = (*Node)(nil)
	_ core.OpAccountant     = (*Node)(nil)
)

// majority returns ⌊n/2⌋+1, the quorum size backed by the §5.2 assumption
// that a majority of the n processes is active at every instant.
func (n *Node) majority() int { return n.env.SystemSize()/2 + 1 }

// value and merge are per-key store accessors threading the node's
// activation state (see core.RegStore.Value for the ⊥/implicit-initial
// rules).
func (n *Node) value(k core.RegisterID) core.VersionedValue { return n.vals.Value(k, n.active) }

func (n *Node) merge(k core.RegisterID, v core.VersionedValue) {
	n.vals.Merge(k, v, n.active)
}

// Start implements core.Node — operation join(i), Figure 4 lines 01-04.
func (n *Node) Start() {
	if n.active {
		n.env.MarkActive()
		return
	}
	n.joining = true
	// Lines 01-02: initialization happened in New; read_sn_i starts at 0
	// (the op counter's NoOp), identifying this join's inquiry.
	// Line 03: broadcast INQUIRY(i, read_sn_i) — the process's one and
	// only join inquiry, whatever number of registers the namespace holds.
	n.stats.JoinInquiries++
	n.env.Broadcast(core.InquiryMsg{From: n.env.ID(), RSN: core.JoinReadSeq, Op: core.NoOp})
	// Line 04 ("wait until |replies_i| ≥ n/2+1") is event-driven: the
	// check runs on every REPLY arrival (checkJoin).
}

// checkJoin completes the join once a majority of snapshot replies arrived
// (Figure 4 lines 05-11). Per-key values were merged on arrival.
func (n *Node) checkJoin() {
	if !n.joining || len(n.joinReplies) < n.majority() {
		return
	}
	n.joining = false
	// Line 07: become active.
	n.active = true
	n.env.MarkActive()
	// Lines 08-10: answer everything deferred in reply_to ∪ dl_prev.
	n.flushDeferred()
	// Line 11: return ok.
	done := n.joinDone
	n.joinDone = nil
	for _, f := range done {
		f()
	}
}

// flushDeferred sends the deferred REPLYs of Figure 4 lines 08-10 and
// clears both sets. Join requests get a full snapshot; reads get their
// key's copy.
func (n *Node) flushDeferred() {
	sent := make(map[reqKey]bool, len(n.replyToList)+len(n.dlPrevList))
	for _, k := range append(append([]reqKey{}, n.replyToList...), n.dlPrevList...) {
		if sent[k] {
			continue
		}
		sent[k] = true
		n.stats.DeferredReplies++
		n.env.Send(k.id, n.replyFor(k))
	}
	n.replyTo = make(map[reqKey]bool)
	n.replyToList = nil
	n.dlPrev = make(map[reqKey]bool)
	n.dlPrevList = nil
}

// replyFor builds the REPLY answering one deferred request, echoing the
// requester's operation id (numerically its read_sn).
func (n *Node) replyFor(k reqKey) core.ReplyMsg {
	if k.rsn == core.JoinReadSeq {
		return n.snapshotReply(k.rsn)
	}
	return core.ReplyMsg{From: n.env.ID(), Value: n.value(k.reg), RSN: k.rsn, Reg: k.reg, Op: core.OpID(k.rsn)}
}

// snapshotReply builds a REPLY carrying this node's entire register space
// (see core.RegStore.SnapshotReply).
func (n *Node) snapshotReply(rsn core.ReadSeq) core.ReplyMsg {
	return n.vals.SnapshotReply(n.env.ID(), rsn, n.active)
}

// OnJoined implements core.Joiner.
func (n *Node) OnJoined(done func()) {
	if done == nil {
		return
	}
	if n.active {
		done()
		return
	}
	n.joinDone = append(n.joinDone, done)
}

// Active implements core.Node.
func (n *Node) Active() bool { return n.active }

// Snapshot implements core.Node (key 0's local copy).
func (n *Node) Snapshot() core.VersionedValue { return n.value(core.DefaultRegister) }

// SnapshotKey implements core.KeyedSnapshotter.
func (n *Node) SnapshotKey(k core.RegisterID) core.VersionedValue { return n.value(k) }

// Keys implements core.KeyedSnapshotter.
func (n *Node) Keys() []core.RegisterID { return n.vals.Keys() }

// PendingOps implements core.OpAccountant.
func (n *Node) PendingOps() int { return n.ops.Len() }

// Stats returns a copy of this node's counters.
func (n *Node) Stats() Stats { return n.stats }

// Read implements core.Reader — key-0 sugar for ReadKey.
func (n *Node) Read(done func(core.VersionedValue)) error {
	return n.ReadKey(core.DefaultRegister, done)
}

// ReadKey implements core.KeyedReader — operation read(i), Figure 5 lines
// 01-07, on one key. done receives the value the read returns. Any number
// of reads may be in flight concurrently, on this key or others;
// ErrOpInProgress only signals a full operation table.
func (n *Node) ReadKey(k core.RegisterID, done func(core.VersionedValue)) error {
	if !n.active {
		return core.ErrNotActive
	}
	if n.ops.Full() {
		return core.ErrOpInProgress
	}
	// Line 01: read_sn_i := read_sn_i + 1 — the op counter, so every
	// in-flight request (join or any operation) has a unique tag.
	id, o := n.ops.Begin()
	n.stats.Reads++
	o.reg = k
	o.scope, o.quorum = core.OpScope(n.env, k)
	o.readDone = done
	n.startReadPhase(id, o)
	return nil
}

// startReadPhase is Figure 5 lines 02-03, shared by client reads and the
// write's embedded read: the broadcast READ carries the operation's id.
func (n *Node) startReadPhase(id core.OpID, o *op) {
	// Line 02: replies := ∅; reading := true.
	o.reading = true
	o.readReplies = make(map[core.ProcessID]core.VersionedValue)
	// Line 03: broadcast READ(i, read_sn_i) — to the key's replica group
	// when sharded, the full membership otherwise.
	core.ScopedBroadcast(n.env, o.reg, core.ReadMsg{From: n.env.ID(), RSN: core.ReadSeq(id), Reg: o.reg, Op: id})
	// Line 04 is event-driven (checkRead on every REPLY).
}

// checkRead completes an operation's read phase once a majority of
// matching replies arrived (Figure 5 lines 05-07): a client read returns;
// a write proceeds to SN assignment through its key's FIFO.
func (n *Node) checkRead(id core.OpID, o *op) {
	if !o.reading || len(o.readReplies) < o.quorum {
		return
	}
	// Lines 05-06: merge the most up-to-date value.
	for _, v := range o.readReplies {
		n.merge(o.reg, v)
	}
	// Line 07: reading := false; return register_i.
	o.reading = false
	o.readReplies = nil
	if o.isWrite {
		o.writeReadDone = true
		n.pumpWrites(o.reg)
		return
	}
	n.ops.Finish(id)
	if o.readDone != nil {
		o.readDone(n.value(o.reg))
	}
}

// Write implements core.Writer — key-0 sugar for WriteKey.
func (n *Node) Write(v core.Value, done func()) error {
	return n.WriteKey(core.DefaultRegister, v, done)
}

// WriteKey implements core.KeyedWriter — sugar over WriteKeySN.
func (n *Node) WriteKey(k core.RegisterID, v core.Value, done func()) error {
	return n.WriteKeySN(k, v, func(core.VersionedValue) {
		if done != nil {
			done()
		}
	})
}

// WriteKeySN implements core.SNWriter — operation write(v), Figure 6
// lines 01-05, on one key. done receives the exact ⟨v, sn⟩ this write
// stored. Writes may be in flight concurrently on this node — across
// keys, and pipelined on one key: each runs its own embedded read, and
// the key's FIFO assigns sequence numbers in invocation order. The
// paper's no-concurrent-writes discipline applies per key across nodes.
func (n *Node) WriteKeySN(k core.RegisterID, v core.Value, done func(core.VersionedValue)) error {
	if !n.active {
		return core.ErrNotActive
	}
	if n.ops.Full() {
		return core.ErrOpInProgress
	}
	id, o := n.ops.Begin()
	n.stats.Writes++
	o.reg = k
	o.scope, o.quorum = core.OpScope(n.env, k)
	o.isWrite = true
	o.writeVal = v
	o.writeDone = done
	// Invocation order is FIFO order: this is what keeps pipelined writes
	// to one key numbered in the order the client issued them.
	n.writeQ[k] = append(n.writeQ[k], id)
	// Line 01: read() — obtain the key's greatest sequence number. The
	// embedded read also refreshes the local copy, so line 02's increment
	// builds on it.
	n.startReadPhase(id, o)
	return nil
}

// pumpWrites advances one key's SN-assignment FIFO: while the oldest
// pending write has finished its embedded read, assign it the next
// sequence number and broadcast its WRITE (Figure 6 lines 02-04). Later
// writes whose reads finished early wait for the head — that is the one
// serialization pipelining keeps, and it is local bookkeeping only (no
// messages, no waits).
func (n *Node) pumpWrites(k core.RegisterID) {
	q := n.writeQ[k]
	for len(q) > 0 {
		id := q[0]
		o, ok := n.ops.Get(id)
		if !ok {
			q = q[1:]
			continue
		}
		if !o.writeReadDone {
			break
		}
		// Line 02: sn_i := sn_i + 1; register_i := v — building on the
		// local copy, which already reflects every earlier pipelined
		// write on this key.
		next := core.VersionedValue{Val: o.writeVal, SN: n.value(k).SN + 1}
		n.vals.Store(k, next)
		o.writeSN = next.SN
		// Line 03: write_ack := ∅.
		o.writeAck = make(map[core.ProcessID]bool)
		o.writeBroadcast = true
		n.ackRoute[ackKey{reg: k, sn: next.SN}] = id
		// Line 04: broadcast WRITE(i, ⟨v, sn⟩) — scoped to the key's
		// replica group when sharded.
		core.ScopedBroadcast(n.env, k, core.WriteMsg{From: n.env.ID(), Value: next, Reg: k, Op: id})
		q = q[1:]
	}
	if len(q) == 0 {
		delete(n.writeQ, k)
	} else {
		n.writeQ[k] = q
	}
}

// checkWrite completes a write once a majority of ACKs arrived (Figure 6
// line 05).
func (n *Node) checkWrite(id core.OpID, o *op) {
	if !o.writeBroadcast || len(o.writeAck) < o.quorum {
		return
	}
	delete(n.ackRoute, ackKey{reg: o.reg, sn: o.writeSN})
	n.ops.Finish(id)
	if o.writeDone != nil {
		o.writeDone(core.VersionedValue{Val: o.writeVal, SN: o.writeSN})
	}
}

// Deliver implements core.Node, dispatching the handlers of Figures 4-6.
func (n *Node) Deliver(from core.ProcessID, m core.Message) {
	switch msg := m.(type) {
	case core.InquiryMsg:
		n.handleInquiry(msg)
	case core.ReadMsg:
		n.handleRead(msg)
	case core.ReplyMsg:
		n.handleReply(msg)
	case core.WriteMsg:
		n.handleWrite(msg)
	case core.AckMsg:
		n.handleAck(msg)
	case core.DLPrevMsg:
		n.handleDLPrev(msg)
	default:
		panic("esyncreg: unexpected message kind " + m.Kind().String())
	}
}

// handleInquiry is Figure 4 lines 12-17.
func (n *Node) handleInquiry(m core.InquiryMsg) {
	if n.active {
		// Line 13: answer immediately — with the whole register space.
		n.stats.RepliesSent++
		n.env.Send(m.From, n.snapshotReply(m.RSN))
		// Line 14: a reading process also asks the newcomer to answer its
		// in-flight reads once active — the newcomer was not in those READ
		// broadcasts' snapshots and would otherwise never reply. One
		// DL_PREV per operation in its read phase (client reads and
		// writes' embedded reads alike), each carrying OUR pending
		// request id, which is what the newcomer must echo for line 19's
		// match to succeed. Ascending OpID keeps the fan-out order
		// deterministic.
		if !n.opts.DisableDLPrev {
			for _, id := range n.ops.IDs() {
				o, ok := n.ops.Get(id)
				if !ok || !o.reading {
					continue
				}
				n.stats.DLPrevSent++
				n.env.Send(m.From, core.DLPrevMsg{From: n.env.ID(), RSN: core.ReadSeq(id), Reg: o.reg, Op: id})
			}
		}
		return
	}
	// Line 15: we cannot answer yet; remember the request.
	n.defer_(reqKey{id: m.From, rsn: m.RSN})
	// Line 16: and ask the inquirer to answer OUR join (pending request 0)
	// when it becomes active — two concurrent joiners promise each other
	// replies, which is what makes join live (Lemma 5).
	if !n.opts.DisableDLPrev {
		n.stats.DLPrevSent++
		n.env.Send(m.From, core.DLPrevMsg{From: n.env.ID(), RSN: core.JoinReadSeq, Op: core.NoOp})
	}
}

// handleRead is Figure 5 lines 08-11.
func (n *Node) handleRead(m core.ReadMsg) {
	if n.active {
		// Line 09.
		n.stats.RepliesSent++
		n.env.Send(m.From, core.ReplyMsg{From: n.env.ID(), Value: n.value(m.Reg), RSN: m.RSN, Reg: m.Reg, Op: m.Op})
		return
	}
	// Line 10: answer at join completion.
	n.defer_(reqKey{id: m.From, rsn: m.RSN, reg: m.Reg})
}

// handleReply is Figure 4 lines 18-21, routing the reply to the open
// operation whose id it echoes: the join (NoOp), or any in-flight read
// phase.
func (n *Node) handleReply(m core.ReplyMsg) {
	if m.Op == core.NoOp {
		n.handleJoinReply(m)
		return
	}
	o, open := n.ops.Get(m.Op)
	if !open || !o.reading || o.reg != m.Reg {
		// Line 19: only replies to an open request count.
		n.stats.StaleRepliesSeen++
		return
	}
	if !core.InScope(o.scope, m.From) {
		// Sharded: a replier outside the key's replica group (a DL_PREV
		// answerer that joined after the broadcast) must not dilute the
		// per-shard quorum.
		return
	}
	// Line 20: record the reply and acknowledge it. The ACK carries the
	// register sequence number from the reply (not r_sn): if the replier
	// is a writer with an in-flight write on this key, this ACK is how
	// processes that joined after the WRITE broadcast contribute to its
	// quorum (Lemma 7; see DESIGN.md §2). Options.LiteralAckRSN restores
	// the literal text.
	if cur, ok := o.readReplies[m.From]; !ok || m.Value.MoreRecent(cur) {
		o.readReplies[m.From] = m.Value
	}
	n.ack(m.From, m.Reg, m.Value.SN, m.RSN)
	// Line 04 of Figure 5: re-check the quorum.
	n.checkRead(m.Op, o)
}

// handleJoinReply consumes a snapshot reply to our join inquiry: merge
// every carried key, count the replier, acknowledge, re-check the quorum.
// After the join completed, op 0 stays "open" until the first operation
// bumps the counter (seed parity): such late snapshots are acknowledged —
// their ACKs may feed in-flight write quorums (Lemma 7) — but no longer
// merged, because after the join only WRITEs mutate register state.
func (n *Node) handleJoinReply(m core.ReplyMsg) {
	if !n.joining && n.ops.LastIssued() != core.NoOp {
		n.stats.StaleRepliesSeen++
		return
	}
	if n.joining {
		m.Entries(func(k core.RegisterID, v core.VersionedValue) {
			n.merge(k, v)
		})
		n.joinReplies[m.From] = true
	}
	if n.opts.LiteralAckRSN {
		n.stats.AcksSent++
		n.env.Send(m.From, core.AckMsg{From: n.env.ID(), SN: core.SeqNum(m.RSN), Reg: m.Reg})
	} else {
		m.Entries(func(k core.RegisterID, v core.VersionedValue) {
			n.stats.AcksSent++
			n.env.Send(m.From, core.AckMsg{From: n.env.ID(), SN: v.SN, Reg: k})
		})
	}
	n.checkJoin()
}

// ack acknowledges one reply entry (see handleReply's Lemma 7 note). It
// carries no OpID: the sender cannot know which of the replier's writes —
// if any — it feeds; the writer routes it by ⟨Reg, SN⟩.
func (n *Node) ack(to core.ProcessID, reg core.RegisterID, sn core.SeqNum, rsn core.ReadSeq) {
	if n.opts.LiteralAckRSN {
		sn = core.SeqNum(rsn)
	}
	n.stats.AcksSent++
	n.env.Send(to, core.AckMsg{From: n.env.ID(), SN: sn, Reg: reg, Op: core.NoOp})
}

// handleWrite is Figure 6 lines 06-08 — runs at any process, active or
// joining.
func (n *Node) handleWrite(m core.WriteMsg) {
	// Line 07.
	n.merge(m.Reg, m.Value)
	// Line 08: "In all cases, it sends back an ACK" — even for stale
	// writes, so a slow writer can still terminate. The ACK echoes the
	// WRITE's operation id, routing it straight to the write it answers.
	n.stats.AcksSent++
	n.env.Send(m.From, core.AckMsg{From: n.env.ID(), SN: m.Value.SN, Reg: m.Reg, Op: m.Op})
}

// handleAck is Figure 6 lines 09-10: route by echoed OpID when present
// (direct WRITE acks), else by the ⟨reg, sn⟩ index (Lemma-7 reply-acks).
// ACKs only count once the write's WRITE is out (writeBroadcast), and
// only toward the write whose ⟨reg, sn⟩ they name.
func (n *Node) handleAck(m core.AckMsg) {
	id := m.Op
	if id == core.NoOp {
		var ok bool
		id, ok = n.ackRoute[ackKey{reg: m.Reg, sn: m.SN}]
		if !ok {
			return
		}
	}
	o, ok := n.ops.Get(id)
	if !ok || !o.isWrite || !o.writeBroadcast || o.reg != m.Reg || o.writeSN != m.SN {
		return
	}
	if !core.InScope(o.scope, m.From) {
		return // sharded: only replica-group acks feed the quorum
	}
	o.writeAck[m.From] = true
	n.checkWrite(id, o)
}

// handleDLPrev is Figure 4 line 22.
func (n *Node) handleDLPrev(m core.DLPrevMsg) {
	if n.opts.DisableDLPrev {
		return
	}
	k := reqKey{id: m.From, rsn: m.RSN, reg: m.Reg}
	if k.rsn == core.JoinReadSeq {
		k.reg = core.DefaultRegister
	}
	if n.active {
		// We already became active: answer immediately rather than never.
		// (The paper's line 08 flush happens once, at join completion; a
		// DL_PREV arriving after that would otherwise strand the sender,
		// which can only lose liveness — answering now is safe: it is the
		// same REPLY we would have sent a moment earlier.)
		n.stats.RepliesSent++
		n.env.Send(k.id, n.replyFor(k))
		return
	}
	if !n.dlPrev[k] {
		n.dlPrev[k] = true
		n.dlPrevList = append(n.dlPrevList, k)
	}
}

// defer_ records a request to answer at join completion (reply_to_i).
func (n *Node) defer_(k reqKey) {
	if k.rsn == core.JoinReadSeq {
		k.reg = core.DefaultRegister
	}
	if !n.replyTo[k] {
		n.replyTo[k] = true
		n.replyToList = append(n.replyToList, k)
	}
}
