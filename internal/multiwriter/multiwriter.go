// Package multiwriter answers the paper's §7 question "how to permit any
// process to write at any time" for the synchronous model: a write token
// with heartbeats and deterministic claim resolution, layered over the §3
// register. The register protocol itself already supports many writers as
// long as writes are never concurrent (the paper's footnote 1); this
// package provides that mutual exclusion under churn.
//
// Mechanism (all in the synchronous model, δ known):
//
//   - The token holder broadcasts BEAT every δ. Every process tracks the
//     last beat it heard.
//   - A process wanting the token and hearing no beat for 4δ broadcasts
//     CLAIM(i, now) and waits 2δ. It wins unless it observed a better
//     claim (smaller timestamp, ties by smaller id) or a beat. The winner
//     starts beating immediately.
//   - A holder can Transfer the token point-to-point, or Release it by
//     broadcasting a "free" beat that resets everyone's staleness clock,
//     making the token immediately claimable.
//   - Writes are accepted only while holding the token.
//
// Why at most one holder: two claims with stamps within 2δ of each other
// reach one another within δ (both claimants were present when the other
// broadcast — a claimant must be ACTIVE, and becoming active takes 3δ, so
// a process that entered after a claim was sent cannot itself claim before
// that claim's winner has been beating for over a δ). The claim windows
// therefore always overlap enough for the loser to observe the better bid
// or the winner's first beat.
//
// If the holder leaves, its beats stop; 4δ later the token is claimable —
// the register loses availability for writes during that gap (bounded by
// 4δ + 2δ resolution), never safety.
package multiwriter

import (
	"errors"

	"churnreg/internal/core"
	"churnreg/internal/sim"
	"churnreg/internal/syncreg"
)

// ErrNotHolder is returned by Write when the node lacks the token.
var ErrNotHolder = errors.New("multiwriter: process does not hold the write token")

// neverBeat marks "no beat heard"; any claim-staleness test passes.
const neverBeat = sim.Time(-1 << 40)

// Node layers write-token coordination over the synchronous register
// protocol. Lock messages are consumed here; everything else flows to the
// embedded register node.
type Node struct {
	env core.Env
	reg *syncreg.Node

	holder   bool
	lastBeat sim.Time // most recent valid holder beat heard (neverBeat if none/freed)
	// beatSeq numbers this node's own beats; freeSeq records, per remote
	// process, the Seq of the last free-beat seen, so stale pre-release
	// beats that overtake the release (channels are not FIFO) are dropped.
	beatSeq uint64
	freeSeq map[core.ProcessID]uint64

	claiming   bool
	claimStamp sim.Time
	claimLost  bool
	claimDone  func(won bool)

	// bestClaim remembers the strongest foreign claim heard recently —
	// including claims heard BEFORE this node started its own (a claimant
	// that only compared against claims arriving mid-window would miss an
	// earlier rival and mint a second token).
	bestClaimStamp sim.Time
	bestClaimFrom  core.ProcessID
	bestClaimAt    sim.Time
	haveBestClaim  bool

	stats Stats
}

// Stats counts token activity at this node.
type Stats struct {
	ClaimsWon    uint64
	ClaimsLost   uint64
	BeatsSent    uint64
	Transfers    uint64
	TokenReceipt uint64
}

// New builds a node. Exactly like the underlying register, bootstrap
// nodes start active; no process starts holding the token.
func New(env core.Env, sc core.SpawnContext) *Node {
	return &Node{
		env:      env,
		reg:      syncreg.New(env, sc, syncreg.Options{}),
		lastBeat: neverBeat,
		freeSeq:  make(map[core.ProcessID]uint64),
	}
}

// Factory returns a core.NodeFactory for the multi-writer register.
func Factory() core.NodeFactory {
	return func(env core.Env, sc core.SpawnContext) core.Node {
		return New(env, sc)
	}
}

// Compile-time interface checks.
var (
	_ core.Node             = (*Node)(nil)
	_ core.LocalReader      = (*Node)(nil)
	_ core.Writer           = (*Node)(nil)
	_ core.Joiner           = (*Node)(nil)
	_ core.KeyedLocalReader = (*Node)(nil)
	_ core.KeyedWriter      = (*Node)(nil)
	_ core.SNWriter         = (*Node)(nil)
	_ core.BatchWriter      = (*Node)(nil)
	_ core.SNBatchWriter    = (*Node)(nil)
	_ core.KeyedSnapshotter = (*Node)(nil)
	_ core.OpAccountant     = (*Node)(nil)
)

// Start implements core.Node.
func (n *Node) Start() { n.reg.Start() }

// Active implements core.Node.
func (n *Node) Active() bool { return n.reg.Active() }

// Snapshot implements core.Node.
func (n *Node) Snapshot() core.VersionedValue { return n.reg.Snapshot() }

// OnJoined implements core.Joiner.
func (n *Node) OnJoined(done func()) { n.reg.OnJoined(done) }

// ReadLocal implements core.LocalReader — reads stay fast and tokenless.
func (n *Node) ReadLocal() (core.VersionedValue, error) { return n.reg.ReadLocal() }

// ReadLocalKey implements core.KeyedLocalReader — every key of the
// namespace reads locally, tokenless.
func (n *Node) ReadLocalKey(k core.RegisterID) (core.VersionedValue, error) {
	return n.reg.ReadLocalKey(k)
}

// SnapshotKey implements core.KeyedSnapshotter.
func (n *Node) SnapshotKey(k core.RegisterID) core.VersionedValue { return n.reg.SnapshotKey(k) }

// Keys implements core.KeyedSnapshotter.
func (n *Node) Keys() []core.RegisterID { return n.reg.Keys() }

// PendingOps implements core.OpAccountant (the register's op table; token
// claims are not register operations).
func (n *Node) PendingOps() int { return n.reg.PendingOps() }

// Stats returns token counters.
func (n *Node) Stats() Stats { return n.stats }

// Holder reports whether this node currently holds the write token.
func (n *Node) Holder() bool { return n.holder }

// TokenFresh reports whether some holder's beat was heard recently enough
// that a claim would be futile.
func (n *Node) TokenFresh() bool {
	return n.lastBeat != neverBeat && n.env.Now().Sub(n.lastBeat) <= n.staleAfter()
}

func (n *Node) beatEvery() sim.Duration  { return n.env.Delta() }
func (n *Node) staleAfter() sim.Duration { return 4 * n.env.Delta() }

// Acquire bids for the write token. done(true) runs when this node wins;
// done(false) when it observes a better claim or a live holder. Only
// active processes may claim.
func (n *Node) Acquire(done func(won bool)) error {
	if !n.reg.Active() {
		return core.ErrNotActive
	}
	if n.holder {
		if done != nil {
			done(true)
		}
		return nil
	}
	if n.claiming {
		return core.ErrOpInProgress
	}
	if n.TokenFresh() {
		// A live holder exists; fail fast rather than wait out a doomed
		// claim window.
		if done != nil {
			done(false)
		}
		return nil
	}
	n.claiming = true
	n.claimLost = false
	n.claimStamp = n.env.Now()
	n.claimDone = done
	n.env.Broadcast(core.ClaimMsg{From: n.env.ID(), Stamp: int64(n.claimStamp)})
	n.env.After(2*n.env.Delta(), n.resolveClaim)
	return nil
}

func (n *Node) resolveClaim() {
	if !n.claiming {
		return
	}
	n.claiming = false
	done := n.claimDone
	n.claimDone = nil
	if n.claimLost || n.TokenFresh() || n.beatenByRememberedClaim() {
		n.stats.ClaimsLost++
		if done != nil {
			done(false)
		}
		return
	}
	n.becomeHolder()
	if done != nil {
		done(true)
	}
}

// beatenByRememberedClaim reports whether a foreign claim heard recently —
// possibly before this node's own claim began — outranks ours.
func (n *Node) beatenByRememberedClaim() bool {
	if !n.haveBestClaim || n.env.Now().Sub(n.bestClaimAt) > n.staleAfter() {
		return false
	}
	if n.bestClaimStamp != n.claimStamp {
		return n.bestClaimStamp < n.claimStamp
	}
	return n.bestClaimFrom < n.env.ID()
}

func (n *Node) becomeHolder() {
	n.holder = true
	n.stats.ClaimsWon++
	n.beat()
}

// beat broadcasts the holder heartbeat and reschedules itself.
func (n *Node) beat() {
	if !n.holder {
		return
	}
	n.stats.BeatsSent++
	n.beatSeq++
	n.env.Broadcast(core.BeatMsg{From: n.env.ID(), Seq: n.beatSeq})
	n.env.After(n.beatEvery(), n.beat)
}

// Release gives the token up voluntarily, broadcasting a "free" beat so
// the next claimant need not wait out the staleness timeout. The free
// beat's Seq supersedes every beat this holder ever sent, so stragglers
// that overtake it are discarded by recipients.
func (n *Node) Release() {
	if !n.holder {
		return
	}
	n.holder = false
	n.beatSeq++
	n.env.Broadcast(core.BeatMsg{From: n.env.ID(), Free: true, Seq: n.beatSeq})
}

// Transfer hands the token directly to a successor. The caller must hold
// the token and must first drain its own pipeline (PendingOps() == 0):
// a write still in flight at transfer time would race the successor's
// first write for a sequence number — two values under one sn, a
// permanent split — so an undrained Transfer is refused with
// ErrOpInProgress. A completed write's value propagated within δ <
// token transit + claim times, so continuity is preserved for drained
// holders.
func (n *Node) Transfer(to core.ProcessID) error {
	if !n.holder {
		return core.ErrNotActive
	}
	if n.reg.PendingOps() > 0 {
		return core.ErrOpInProgress
	}
	n.holder = false
	n.stats.Transfers++
	n.env.Send(to, core.TokenMsg{From: n.env.ID()})
	return nil
}

// Write implements core.Writer, gated on token ownership.
func (n *Node) Write(v core.Value, done func()) error {
	if !n.holder {
		return ErrNotHolder
	}
	return n.reg.Write(v, done)
}

// WriteKey implements core.KeyedWriter. One token guards the whole
// namespace: the holder may write any key (per-key tokens would shrink
// contention further; the coarse token keeps the §7 mechanism intact).
// The holder's writes pipeline exactly like the underlying register's —
// the token excludes OTHER writers, not this node's own in-flight ops.
func (n *Node) WriteKey(k core.RegisterID, v core.Value, done func()) error {
	if !n.holder {
		return ErrNotHolder
	}
	return n.reg.WriteKey(k, v, done)
}

// WriteKeySN implements core.SNWriter, token-gated like WriteKey.
func (n *Node) WriteKeySN(k core.RegisterID, v core.Value, done func(core.VersionedValue)) error {
	if !n.holder {
		return ErrNotHolder
	}
	return n.reg.WriteKeySN(k, v, done)
}

// WriteBatch implements core.BatchWriter, token-gated like WriteKey.
func (n *Node) WriteBatch(entries []core.KeyedWrite, done func()) error {
	if !n.holder {
		return ErrNotHolder
	}
	return n.reg.WriteBatch(entries, done)
}

// WriteBatchSN implements core.SNBatchWriter, token-gated like WriteKey.
func (n *Node) WriteBatchSN(entries []core.KeyedWrite, done func([]core.KeyedValue)) error {
	if !n.holder {
		return ErrNotHolder
	}
	return n.reg.WriteBatchSN(entries, done)
}

// Deliver implements core.Node: token traffic is handled here, the rest
// delegates to the register.
func (n *Node) Deliver(from core.ProcessID, m core.Message) {
	switch msg := m.(type) {
	case core.ClaimMsg:
		n.handleClaim(msg)
	case core.BeatMsg:
		n.handleBeat(msg)
	case core.TokenMsg:
		n.stats.TokenReceipt++
		n.becomeHolder()
	default:
		n.reg.Deliver(from, m)
	}
}

func (n *Node) handleClaim(m core.ClaimMsg) {
	if m.From == n.env.ID() {
		return // own broadcast loopback
	}
	if n.holder {
		// A live holder refutes any claim just by beating; beat now so
		// the claimant learns within δ.
		n.stats.BeatsSent++
		n.beatSeq++
		n.env.Broadcast(core.BeatMsg{From: n.env.ID(), Seq: n.beatSeq})
		return
	}
	theirs := sim.Time(m.Stamp)
	// Remember the strongest recent claim, whether or not we are claiming
	// yet — a later claim of ours must still yield to it.
	expired := n.haveBestClaim && n.env.Now().Sub(n.bestClaimAt) > n.staleAfter()
	if !n.haveBestClaim || expired ||
		theirs < n.bestClaimStamp ||
		(theirs == n.bestClaimStamp && m.From < n.bestClaimFrom) {
		n.haveBestClaim = true
		n.bestClaimStamp = theirs
		n.bestClaimFrom = m.From
		n.bestClaimAt = n.env.Now()
	}
	if n.claiming {
		if theirs < n.claimStamp || (theirs == n.claimStamp && m.From < n.env.ID()) {
			n.claimLost = true
		}
	}
}

func (n *Node) handleBeat(m core.BeatMsg) {
	if m.Free {
		if m.Seq >= n.freeSeq[m.From] {
			n.freeSeq[m.From] = m.Seq
			n.lastBeat = neverBeat
			// The released token also clears remembered contention: the
			// claim that won is done with it.
			n.haveBestClaim = false
		}
		return
	}
	if m.Seq <= n.freeSeq[m.From] {
		return // stale pre-release beat that overtook the free-beat
	}
	n.lastBeat = n.env.Now()
	if n.claiming && m.From != n.env.ID() {
		n.claimLost = true
	}
}
