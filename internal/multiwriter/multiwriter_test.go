package multiwriter_test

import (
	"errors"
	"testing"

	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/multiwriter"
	"churnreg/internal/netsim"
	"churnreg/internal/sim"
	"churnreg/internal/spec"
)

const delta = 5

func newSystem(t *testing.T, n int, churnRate float64) *dynsys.System {
	t.Helper()
	sys, err := dynsys.New(dynsys.Config{
		N:         n,
		Delta:     delta,
		Model:     netsim.SynchronousModel{Delta: delta},
		Factory:   multiwriter.Factory(),
		Seed:      9,
		ChurnRate: churnRate,
		Initial:   core.VersionedValue{Val: 0, SN: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func mwNode(t *testing.T, sys *dynsys.System, id core.ProcessID) *multiwriter.Node {
	t.Helper()
	n, ok := sys.Node(id).(*multiwriter.Node)
	if !ok {
		t.Fatalf("node %v is %T", id, sys.Node(id))
	}
	return n
}

func holders(sys *dynsys.System) []core.ProcessID {
	var out []core.ProcessID
	for _, id := range sys.Network().PresentIDs() {
		if n, ok := sys.Node(id).(*multiwriter.Node); ok && n.Holder() {
			out = append(out, id)
		}
	}
	return out
}

func TestFirstAcquireWins(t *testing.T) {
	sys := newSystem(t, 5, 0)
	n := mwNode(t, sys, 1)
	won := false
	if err := n.Acquire(func(w bool) { won = w }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(3 * delta); err != nil {
		t.Fatal(err)
	}
	if !won || !n.Holder() {
		t.Fatal("uncontended claim did not win")
	}
	if got := holders(sys); len(got) != 1 {
		t.Fatalf("holders = %v, want exactly p1", got)
	}
}

func TestWriteRequiresToken(t *testing.T) {
	sys := newSystem(t, 5, 0)
	n := mwNode(t, sys, 2)
	if err := n.Write(1, nil); !errors.Is(err, multiwriter.ErrNotHolder) {
		t.Fatalf("tokenless write = %v, want ErrNotHolder", err)
	}
	if err := n.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(3 * delta); err != nil {
		t.Fatal(err)
	}
	if err := n.Write(1, nil); err != nil {
		t.Fatalf("holder write = %v", err)
	}
}

func TestContendedClaimHasOneWinner(t *testing.T) {
	sys := newSystem(t, 5, 0)
	a := mwNode(t, sys, 1)
	b := mwNode(t, sys, 2)
	var aWon, bWon bool
	if err := a.Acquire(func(w bool) { aWon = w }); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire(func(w bool) { bWon = w }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(4 * delta); err != nil {
		t.Fatal(err)
	}
	// Same-tick claims: the smaller ID must win.
	if !aWon || bWon {
		t.Fatalf("contention outcome aWon=%v bWon=%v, want p1 only", aWon, bWon)
	}
	if got := holders(sys); len(got) != 1 || got[0] != 1 {
		t.Fatalf("holders = %v, want [p1]", got)
	}
}

func TestEarlierStampBeatsSmallerID(t *testing.T) {
	sys := newSystem(t, 5, 0)
	a := mwNode(t, sys, 1)
	b := mwNode(t, sys, 2)
	// p2 claims first; p1 claims one tick later: p2's stamp wins despite
	// the larger ID.
	var aWon, bWon bool
	if err := b.Acquire(func(w bool) { bWon = w }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(1); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(func(w bool) { aWon = w }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(4 * delta); err != nil {
		t.Fatal(err)
	}
	if !bWon || aWon {
		t.Fatalf("stamp priority broken: aWon=%v bWon=%v", aWon, bWon)
	}
}

func TestAcquireAgainstLiveHolderFailsFast(t *testing.T) {
	sys := newSystem(t, 5, 0)
	a := mwNode(t, sys, 1)
	if err := a.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(4 * delta); err != nil { // holder beats reached all
		t.Fatal(err)
	}
	b := mwNode(t, sys, 2)
	won, called := false, false
	if err := b.Acquire(func(w bool) { won, called = w, true }); err != nil {
		t.Fatal(err)
	}
	if !called || won {
		t.Fatalf("claim against live holder: called=%v won=%v, want immediate loss", called, won)
	}
}

func TestReleaseMakesTokenClaimable(t *testing.T) {
	sys := newSystem(t, 5, 0)
	a := mwNode(t, sys, 1)
	if err := a.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(3 * delta); err != nil {
		t.Fatal(err)
	}
	a.Release()
	if err := sys.RunFor(delta); err != nil { // free-beat propagates
		t.Fatal(err)
	}
	b := mwNode(t, sys, 2)
	won := false
	if err := b.Acquire(func(w bool) { won = w }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(3 * delta); err != nil {
		t.Fatal(err)
	}
	if !won {
		t.Fatal("claim after release did not win")
	}
	if got := holders(sys); len(got) != 1 || got[0] != 2 {
		t.Fatalf("holders = %v, want [p2]", got)
	}
}

// TestTransferRefusedWhileWritesInFlight: a holder must drain its own
// pipeline before handing the token over — an in-flight write would race
// the successor's first write for a sequence number.
func TestTransferRefusedWhileWritesInFlight(t *testing.T) {
	sys := newSystem(t, 5, 0)
	a := mwNode(t, sys, 1)
	if err := a.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(3 * delta); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteKey(1, 42, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Transfer(3); !errors.Is(err, core.ErrOpInProgress) {
		t.Fatalf("Transfer with a write in flight = %v, want ErrOpInProgress", err)
	}
	if err := sys.RunFor(2 * delta); err != nil { // the write's δ elapses
		t.Fatal(err)
	}
	if got := a.PendingOps(); got != 0 {
		t.Fatalf("PendingOps after drain = %d", got)
	}
	if err := a.Transfer(3); err != nil {
		t.Fatalf("Transfer after drain = %v, want nil", err)
	}
}

func TestTransferHandsTokenDirectly(t *testing.T) {
	sys := newSystem(t, 5, 0)
	a := mwNode(t, sys, 1)
	if err := a.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(3 * delta); err != nil {
		t.Fatal(err)
	}
	if err := a.Transfer(3); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(delta); err != nil {
		t.Fatal(err)
	}
	if a.Holder() {
		t.Fatal("transferrer still holds")
	}
	if !mwNode(t, sys, 3).Holder() {
		t.Fatal("successor did not receive the token")
	}
	if err := mwNode(t, sys, 3).Write(5, nil); err != nil {
		t.Fatalf("successor write: %v", err)
	}
}

func TestHolderDeathRecovers(t *testing.T) {
	sys := newSystem(t, 5, 0)
	a := mwNode(t, sys, 1)
	if err := a.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(3 * delta); err != nil {
		t.Fatal(err)
	}
	sys.KillProcess(1)
	// Beats stop; after 4δ staleness + 2δ claim the token is recoverable.
	if err := sys.RunFor(5 * delta); err != nil {
		t.Fatal(err)
	}
	b := mwNode(t, sys, 2)
	won := false
	if err := b.Acquire(func(w bool) { won = w }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(3 * delta); err != nil {
		t.Fatal(err)
	}
	if !won {
		t.Fatal("token not recovered after holder death")
	}
}

func TestJoinerCannotClaimBeforeActive(t *testing.T) {
	sys := newSystem(t, 3, 0)
	_, node := sys.Spawn()
	j := node.(*multiwriter.Node)
	if err := j.Acquire(nil); !errors.Is(err, core.ErrNotActive) {
		t.Fatalf("joining claim = %v, want ErrNotActive", err)
	}
}

// TestRotatingWritersStayRegular is the end-to-end multi-writer story:
// several processes take turns acquiring the token and writing; the
// recorded history must satisfy the write discipline and regularity.
func TestRotatingWritersStayRegular(t *testing.T) {
	sys := newSystem(t, 6, 0)
	history := spec.NewHistory(core.VersionedValue{Val: 0, SN: 0})

	for round := 0; round < 8; round++ {
		writerID := core.ProcessID(round%6 + 1)
		w := mwNode(t, sys, writerID)
		won := false
		if err := w.Acquire(func(ok bool) { won = ok }); err != nil {
			t.Fatal(err)
		}
		if err := sys.RunFor(3 * delta); err != nil {
			t.Fatal(err)
		}
		if !won {
			t.Fatalf("round %d: %v failed to acquire", round, writerID)
		}
		op := history.BeginWrite(writerID, sys.Now())
		if err := w.Write(core.Value(1000+round), func() {
			history.CompleteWrite(op, sys.Now(), w.Snapshot())
		}); err != nil {
			t.Fatal(err)
		}
		if err := sys.RunFor(delta); err != nil {
			t.Fatal(err)
		}
		// A random other process reads after the write completed.
		readerID := core.ProcessID((round+3)%6 + 1)
		r := mwNode(t, sys, readerID)
		rOp := history.BeginRead(readerID, sys.Now())
		v, err := r.ReadLocal()
		if err != nil {
			t.Fatal(err)
		}
		history.CompleteRead(rOp, sys.Now(), v)
		if v.Val != core.Value(1000+round) {
			t.Fatalf("round %d: read %v, want value %d", round, v, 1000+round)
		}
		w.Release()
		if err := sys.RunFor(2 * delta); err != nil {
			t.Fatal(err)
		}
	}
	if err := history.ValidateWrites(); err != nil {
		t.Fatalf("rotating writers broke the write discipline: %v", err)
	}
	if viols := history.CheckRegular(); len(viols) != 0 {
		t.Fatalf("multi-writer run violated regularity: %v", viols[0])
	}
}

// TestNeverTwoHolders sweeps contention timings and asserts the safety
// invariant at every instant: at most one holder.
func TestNeverTwoHolders(t *testing.T) {
	for offset := 0; offset <= 3*delta; offset++ {
		sys := newSystem(t, 5, 0)
		a := mwNode(t, sys, 1)
		b := mwNode(t, sys, 2)
		if err := a.Acquire(nil); err != nil {
			t.Fatal(err)
		}
		if err := sys.RunFor(sim.Duration(offset)); err != nil {
			t.Fatal(err)
		}
		_ = b.Acquire(nil) // may fail fast; that's fine
		for step := 0; step < 8*delta; step++ {
			if err := sys.RunFor(1); err != nil {
				t.Fatal(err)
			}
			if h := holders(sys); len(h) > 1 {
				t.Fatalf("offset %d, step %d: two holders %v", offset, step, h)
			}
		}
	}
}
