package workload_test

import (
	"testing"

	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/esyncreg"
	"churnreg/internal/netsim"
	"churnreg/internal/spec"
	"churnreg/internal/syncreg"
	"churnreg/internal/workload"
)

const delta = 5

func build(t *testing.T, factory core.NodeFactory, churnRate float64, cfg workload.Config) (*dynsys.System, *spec.History, *workload.Runner) {
	t.Helper()
	guard := &workload.Guard{}
	sys, err := dynsys.New(dynsys.Config{
		N:         10,
		Delta:     delta,
		Model:     netsim.SynchronousModel{Delta: delta},
		Factory:   factory,
		Seed:      11,
		ChurnRate: churnRate,
		Protect:   guard.Protects,
		Initial:   core.VersionedValue{Val: 0, SN: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := spec.NewHistory(core.VersionedValue{Val: 0, SN: 0})
	r := workload.New(sys, h, guard, cfg)
	r.Start()
	return sys, h, r
}

func TestWriterIssuesPeriodicWrites(t *testing.T) {
	sys, h, r := build(t, syncreg.Factory(syncreg.Options{}), 0, workload.Config{
		WritePeriod: 20,
		FirstValue:  100,
	})
	if err := sys.RunFor(200); err != nil {
		t.Fatal(err)
	}
	c := h.Counts()
	if c.WritesBegun < 9 || c.WritesBegun > 11 {
		t.Fatalf("writes begun = %d, want ~10", c.WritesBegun)
	}
	if c.WritesCompleted < c.WritesBegun-1 {
		t.Fatalf("writes completed = %d of %d", c.WritesCompleted, c.WritesBegun)
	}
	if err := h.ValidateWrites(); err != nil {
		t.Fatalf("write discipline broken: %v", err)
	}
	if r.Stats().WriteRounds == 0 {
		t.Fatal("no write rounds counted")
	}
}

func TestReadersRecordLocalReads(t *testing.T) {
	sys, h, _ := build(t, syncreg.Factory(syncreg.Options{}), 0, workload.Config{
		WritePeriod: 25,
		ReadPeriod:  10,
		ReadFanout:  3,
	})
	if err := sys.RunFor(300); err != nil {
		t.Fatal(err)
	}
	c := h.Counts()
	if c.ReadsCompleted < 80 {
		t.Fatalf("reads completed = %d, want ~90", c.ReadsCompleted)
	}
	if v := h.CheckRegular(); len(v) != 0 {
		t.Fatalf("sync protocol under no churn violated regularity: %v", v[0])
	}
}

func TestQuorumReadsComplete(t *testing.T) {
	sys, h, _ := build(t, esyncreg.Factory(esyncreg.Options{}), 0, workload.Config{
		WritePeriod: 50,
		ReadPeriod:  25,
		ReadFanout:  2,
	})
	if err := sys.RunFor(500); err != nil {
		t.Fatal(err)
	}
	c := h.Counts()
	if c.ReadsCompleted == 0 {
		t.Fatal("no quorum read completed")
	}
	if c.ReadsPending() > 2 {
		t.Fatalf("pending reads = %d at quiescence", c.ReadsPending())
	}
	if v := h.CheckRegular(); len(v) != 0 {
		t.Fatalf("esync protocol under no churn violated regularity: %v", v[0])
	}
}

func TestWriterProtectedFromChurn(t *testing.T) {
	sys, h, r := build(t, syncreg.Factory(syncreg.Options{}), 0.02, workload.Config{
		WritePeriod: 15,
		ReadPeriod:  10,
		ReadFanout:  2,
	})
	if err := sys.RunFor(1500); err != nil {
		t.Fatal(err)
	}
	if r.Stats().WriterHandoffs != 0 {
		t.Fatalf("protected writer was churned out %d times", r.Stats().WriterHandoffs)
	}
	if err := h.ValidateWrites(); err != nil {
		t.Fatalf("write discipline broken: %v", err)
	}
	c := h.Counts()
	if c.WritesCompleted < 90 {
		t.Fatalf("writes completed = %d, want ~100", c.WritesCompleted)
	}
}

func TestJoinReadProbesFire(t *testing.T) {
	sys, h, r := build(t, syncreg.Factory(syncreg.Options{}), 0.02, workload.Config{
		WritePeriod:   30,
		JoinReadProbe: true,
	})
	if err := sys.RunFor(1000); err != nil {
		t.Fatal(err)
	}
	if r.Stats().JoinProbes == 0 {
		t.Fatal("no join probes fired under churn")
	}
	c := h.Counts()
	if c.ReadsCompleted == 0 {
		t.Fatal("join probes recorded no reads")
	}
	if v := h.CheckRegular(); len(v) != 0 {
		t.Fatalf("join probes found violations below the churn bound: %v", v[0])
	}
}

func TestDepartingReaderAbandonsPendingRead(t *testing.T) {
	// Slow quorum reads + churn: some readers leave mid-read; their ops
	// must be abandoned, not counted as liveness failures.
	sys, h, _ := build(t, esyncreg.Factory(esyncreg.Options{}), 0.05, workload.Config{
		ReadPeriod: 5,
		ReadFanout: 3,
	})
	if err := sys.RunFor(2000); err != nil {
		t.Fatal(err)
	}
	c := h.Counts()
	if c.ReadsAbandoned == 0 {
		t.Skip("no reader departed mid-read at this seed; scenario not exercised")
	}
	if c.ReadsPending() > 5 {
		t.Fatalf("non-abandoned pending reads = %d", c.ReadsPending())
	}
}

func TestNoActiveReadersCounted(t *testing.T) {
	// A 1-process system where the only process is the writer: fanout
	// reads exclude the writer, so rounds find nobody.
	guard := &workload.Guard{}
	sys, err := dynsys.New(dynsys.Config{
		N:       1,
		Delta:   delta,
		Model:   netsim.SynchronousModel{Delta: delta},
		Factory: syncreg.Factory(syncreg.Options{}),
		Seed:    1,
		Protect: guard.Protects,
		Initial: core.VersionedValue{},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := spec.NewHistory(core.VersionedValue{})
	r := workload.New(sys, h, guard, workload.Config{ReadPeriod: 10})
	r.Start()
	if err := sys.RunFor(100); err != nil {
		t.Fatal(err)
	}
	if r.Stats().NoActiveReaders == 0 {
		t.Fatal("empty reader pool not counted")
	}
}
