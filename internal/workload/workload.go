// Package workload drives operations against a running dynamic system and
// records them into a spec.History: a single designated writer issuing
// periodic writes (the paper's one-writer discipline, per key), random
// active readers, and optional read probes fired the moment a join
// completes — the access pattern that makes Figure 3a-style staleness
// observable.
//
// Multi-key workloads: Config.Keys spreads the same op stream over a
// keyed register namespace, with each op's key drawn from a Zipf rank
// distribution (Config.ZipfS; 0 = uniform) — the canonical skew of
// production key-value traffic, where a few hot keys absorb most ops and
// a long tail stays cold.
package workload

import (
	"math"

	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/sim"
	"churnreg/internal/spec"
)

// Config parameterizes a workload.
type Config struct {
	// WritePeriod is the time between write invocations (0 = no writes).
	WritePeriod sim.Duration
	// ReadPeriod is the time between read rounds (0 = no periodic reads).
	ReadPeriod sim.Duration
	// ReadFanout is how many random active processes read per round.
	ReadFanout int
	// JoinReadProbe issues a read on every process the moment its join
	// completes — the post-join read of Figure 3.
	JoinReadProbe bool
	// FirstValue seeds the written value sequence (values increment).
	FirstValue core.Value
	// Keys is the number of registers the workload spreads over (keys
	// 0..Keys-1). 0 or 1 keeps the seed's single-register behaviour —
	// and, crucially, an identical RNG draw sequence, so single-key runs
	// replay byte-for-byte.
	Keys int
	// ZipfS is the Zipf exponent of the key popularity distribution:
	// P(rank r) ∝ 1/(r+1)^s. 0 selects keys uniformly. Only meaningful
	// when Keys > 1.
	ZipfS float64
}

// Stats counts workload outcomes.
type Stats struct {
	WriteRounds     uint64
	WriteBusy       uint64 // writer still had an op outstanding
	WriterHandoffs  uint64 // designated writer left; a new one was elected
	ReadRounds      uint64
	ReadBusy        uint64
	JoinProbes      uint64
	NoActiveReaders uint64
}

// Guard lets the churn engine protect the current designated writer before
// the Runner exists: pass (*Guard).Protects as dynsys.Config.Protect, then
// hand the Guard to New.
type Guard struct {
	id core.ProcessID
}

// Protects reports whether id is the protected writer.
func (g *Guard) Protects(id core.ProcessID) bool { return id == g.id }

// set updates the protected process.
func (g *Guard) set(id core.ProcessID) { g.id = id }

// Runner drives the workload. Single-threaded (scheduler-driven).
type Runner struct {
	sys     *dynsys.System
	history *spec.History
	cfg     Config
	guard   *Guard

	writerID core.ProcessID
	nextVal  core.Value
	keyCum   []float64
	stats    Stats

	// pending maps a process to its in-flight recorded op, so departures
	// can abandon it.
	pending map[core.ProcessID]*spec.Op
	stopped bool
}

// New wires a runner to a system. guard may be nil (writer unprotected).
// Call Start to begin.
func New(sys *dynsys.System, history *spec.History, guard *Guard, cfg Config) *Runner {
	if cfg.ReadFanout <= 0 {
		cfg.ReadFanout = 1
	}
	r := &Runner{
		sys:     sys,
		history: history,
		cfg:     cfg,
		guard:   guard,
		nextVal: cfg.FirstValue,
		pending: make(map[core.ProcessID]*spec.Op),
	}
	if cfg.Keys > 1 {
		// Precompute the cumulative Zipf weights once; sampling is a
		// single uniform draw plus a scan.
		r.keyCum = make([]float64, cfg.Keys)
		total := 0.0
		for i := 0; i < cfg.Keys; i++ {
			w := 1.0
			if cfg.ZipfS > 0 {
				w = 1.0 / math.Pow(float64(i+1), cfg.ZipfS)
			}
			total += w
			r.keyCum[i] = total
		}
	}
	return r
}

// pickKey draws the next op's register. Single-key configurations return
// key 0 without consuming randomness (seed-replay compatibility).
func (r *Runner) pickKey() core.RegisterID {
	if len(r.keyCum) == 0 {
		return core.DefaultRegister
	}
	u := r.sys.Rand().Float64() * r.keyCum[len(r.keyCum)-1]
	for i, c := range r.keyCum {
		if u < c {
			return core.RegisterID(i)
		}
	}
	return core.RegisterID(len(r.keyCum) - 1)
}

// Stats returns workload counters.
func (r *Runner) Stats() Stats { return r.stats }

// WriterID returns the current designated writer.
func (r *Runner) WriterID() core.ProcessID { return r.writerID }

// Start elects the first writer, installs lifecycle hooks, and schedules
// the periodic rounds.
func (r *Runner) Start() {
	r.electWriter()
	r.sys.OnKill(r.onKill)
	if r.cfg.JoinReadProbe {
		r.sys.OnSpawn(func(id core.ProcessID, node core.Node) {
			j, ok := node.(core.Joiner)
			if !ok {
				return
			}
			j.OnJoined(func() {
				r.stats.JoinProbes++
				r.readOn(id, r.pickKey())
			})
		})
	}
	if r.cfg.WritePeriod > 0 {
		r.sys.Scheduler().After(r.cfg.WritePeriod, r.writeTick)
	}
	if r.cfg.ReadPeriod > 0 {
		r.sys.Scheduler().After(r.cfg.ReadPeriod, r.readTick)
	}
}

// Stop halts future rounds (in-flight operations still complete).
func (r *Runner) Stop() { r.stopped = true }

func (r *Runner) onKill(id core.ProcessID) {
	if op, ok := r.pending[id]; ok {
		r.history.Abandon(op)
		delete(r.pending, id)
	}
	if id == r.writerID {
		r.electWriter()
		r.stats.WriterHandoffs++
	}
}

// electWriter designates a live active process as the writer.
func (r *Runner) electWriter() {
	if id, ok := r.sys.RandomActive(); ok {
		r.writerID = id
	} else {
		r.writerID = core.NoProcess
	}
	if r.guard != nil {
		r.guard.set(r.writerID)
	}
}

func (r *Runner) writeTick() {
	if r.stopped {
		return
	}
	defer r.sys.Scheduler().After(r.cfg.WritePeriod, r.writeTick)
	r.stats.WriteRounds++
	if r.writerID == core.NoProcess || !r.sys.Present(r.writerID) {
		r.electWriter()
		if r.writerID == core.NoProcess {
			return
		}
	}
	if _, busy := r.pending[r.writerID]; busy {
		// The previous write (possibly on another key, where the node's
		// per-key discipline would admit a second one) has not returned:
		// issuing now would clobber its pending record, leaving an op
		// neither completed nor abandoned. The runner records one op per
		// process at a time.
		r.stats.WriteBusy++
		return
	}
	node := r.sys.Node(r.writerID)
	k := r.pickKey()
	// Protocols without the keyed interfaces (e.g. the atomicreg wrapper)
	// still serve the default register through the legacy Writer.
	if _, keyed := node.(core.KeyedWriter); !keyed {
		k = core.DefaultRegister
	}
	v := r.nextVal
	op := r.history.BeginWriteKey(r.writerID, k, r.sys.Now())
	id := r.writerID
	done := func() {
		r.history.CompleteWrite(op, r.sys.Now(), core.SnapshotKey(node, k))
		delete(r.pending, id)
	}
	var err error
	switch w := node.(type) {
	case core.KeyedWriter:
		err = w.WriteKey(k, v, done)
	case core.Writer:
		err = w.Write(v, done)
	default:
		r.history.Abandon(op)
		return
	}
	if err != nil {
		// Busy or not active: withdraw the record entirely — the
		// operation was never invoked.
		r.history.Abandon(op)
		r.stats.WriteBusy++
		return
	}
	r.nextVal++
	r.pending[id] = op
}

func (r *Runner) readTick() {
	if r.stopped {
		return
	}
	defer r.sys.Scheduler().After(r.cfg.ReadPeriod, r.readTick)
	r.stats.ReadRounds++
	for i := 0; i < r.cfg.ReadFanout; i++ {
		id, ok := r.sys.RandomActive(r.writerID)
		if !ok {
			r.stats.NoActiveReaders++
			return
		}
		r.readOn(id, r.pickKey())
	}
}

// readOn issues one read of register k on process id, recording it in the
// history. Protocols with local reads complete instantaneously; quorum
// protocols complete via callback.
func (r *Runner) readOn(id core.ProcessID, k core.RegisterID) {
	node := r.sys.Node(id)
	if node == nil {
		return
	}
	if _, busy := r.pending[id]; busy {
		r.stats.ReadBusy++
		return
	}
	switch n := node.(type) {
	case core.KeyedLocalReader:
		op := r.history.BeginReadKey(id, k, r.sys.Now())
		v, err := n.ReadLocalKey(k)
		if err != nil {
			r.history.Abandon(op)
			r.stats.ReadBusy++
			return
		}
		r.history.CompleteRead(op, r.sys.Now(), v)
	case core.KeyedReader:
		op := r.history.BeginReadKey(id, k, r.sys.Now())
		err := n.ReadKey(k, func(v core.VersionedValue) {
			r.history.CompleteRead(op, r.sys.Now(), v)
			delete(r.pending, id)
		})
		if err != nil {
			r.history.Abandon(op)
			r.stats.ReadBusy++
			return
		}
		r.pending[id] = op
	case core.LocalReader:
		// Legacy single-register protocols: serve key 0 only.
		op := r.history.BeginRead(id, r.sys.Now())
		v, err := n.ReadLocal()
		if err != nil {
			r.history.Abandon(op)
			r.stats.ReadBusy++
			return
		}
		r.history.CompleteRead(op, r.sys.Now(), v)
	case core.Reader:
		op := r.history.BeginRead(id, r.sys.Now())
		err := n.Read(func(v core.VersionedValue) {
			r.history.CompleteRead(op, r.sys.Now(), v)
			delete(r.pending, id)
		})
		if err != nil {
			r.history.Abandon(op)
			r.stats.ReadBusy++
			return
		}
		r.pending[id] = op
	}
}
