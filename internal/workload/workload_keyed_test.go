package workload_test

// Multi-key workload coverage: ops spread over the namespace under a Zipf
// popularity skew, with per-key regularity holding below the churn bound.

import (
	"testing"

	"churnreg/internal/core"
	"churnreg/internal/spec"
	"churnreg/internal/syncreg"
	"churnreg/internal/workload"
)

func TestMultiKeyWorkloadSpreadsOverNamespace(t *testing.T) {
	sys, h, _ := build(t, syncreg.Factory(syncreg.Options{}), 0.01, workload.Config{
		WritePeriod: 10,
		ReadPeriod:  5,
		ReadFanout:  2,
		Keys:        16,
		ZipfS:       1.0,
	})
	if err := sys.RunFor(2000); err != nil {
		t.Fatal(err)
	}
	if err := h.ValidateWrites(); err != nil {
		t.Fatalf("per-key write discipline broken: %v", err)
	}
	if v := h.CheckRegular(); len(v) != 0 {
		t.Fatalf("multi-key run below the churn bound violated regularity: %v", v[0])
	}
	// The Zipf skew must actually spread ops: several distinct keys
	// written, with key 0 (rank 1) the hottest.
	writesPerKey := make(map[core.RegisterID]int)
	for _, op := range h.Ops() {
		if op.Kind == spec.OpWrite {
			writesPerKey[op.Reg]++
		}
	}
	if len(writesPerKey) < 5 {
		t.Fatalf("writes touched %d keys, want a spread over the namespace", len(writesPerKey))
	}
	for k, n := range writesPerKey {
		if k != core.DefaultRegister && n > writesPerKey[core.DefaultRegister] {
			t.Fatalf("Zipf rank 1 (key 0, %d writes) outdrawn by %v (%d writes)",
				writesPerKey[core.DefaultRegister], k, n)
		}
	}
}

func TestSingleKeyConfigKeepsSeedBehaviour(t *testing.T) {
	// Keys <= 1 must not consume workload randomness, so a single-key run
	// replays the seed's op sequence exactly: every recorded op is key 0.
	sys, h, _ := build(t, syncreg.Factory(syncreg.Options{}), 0.01, workload.Config{
		WritePeriod: 10,
		ReadPeriod:  5,
	})
	if err := sys.RunFor(500); err != nil {
		t.Fatal(err)
	}
	for _, op := range h.Ops() {
		if op.Reg != core.DefaultRegister {
			t.Fatalf("single-key workload issued op on %v", op.Reg)
		}
	}
	if h.Counts().WritesCompleted == 0 {
		t.Fatal("no writes completed")
	}
}
