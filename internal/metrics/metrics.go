// Package metrics provides the small statistics and table-rendering
// toolkit every experiment uses: exact-quantile samples, counters, and
// aligned plain-text tables (the repository's equivalent of the paper's
// figures, rendered as rows).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates float64 observations and answers exact order
// statistics (experiments are small enough that keeping every observation
// is cheaper than being clever).
type Sample struct {
	values []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddInt records an integer observation.
func (s *Sample) AddInt(v int64) { s.Add(float64(v)) }

// Count returns the number of observations.
func (s *Sample) Count() int { return len(s.values) }

// Sum returns the sum of observations.
func (s *Sample) Sum() float64 {
	var t float64
	for _, v := range s.values {
		t += v
	}
	return t
}

// Mean returns the average (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.values))
}

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[0]
}

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[len(s.values)-1]
}

// Quantile returns the q-th exact quantile (nearest-rank), q in [0, 1].
func (s *Sample) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	if q <= 0 {
		return s.values[0]
	}
	if q >= 1 {
		return s.values[len(s.values)-1]
	}
	idx := int(math.Ceil(q*float64(len(s.values)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s.values[idx]
}

// Stddev returns the population standard deviation (0 when < 2 samples).
func (s *Sample) Stddev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Table is an aligned plain-text table with a title and footnotes.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells render empty, extra cells are kept
// (and widen the table).
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render produces the aligned text form.
func (t *Table) Render() string {
	ncols := len(t.Columns)
	for _, r := range t.Rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	cell := func(row []string, i int) string {
		if i < len(row) {
			return row[i]
		}
		return ""
	}
	for i := 0; i < ncols; i++ {
		w := len([]rune(cell(t.Columns, i)))
		for _, r := range t.Rows {
			if l := len([]rune(cell(r, i))); l > w {
				w = l
			}
		}
		widths[i] = w
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(row []string) {
		for i := 0; i < ncols; i++ {
			if i > 0 {
				b.WriteString("  ")
			}
			c := cell(row, i)
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(ncols-1)))
	b.WriteString("\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// RenderMarkdown produces a GitHub-flavoured markdown table.
func (t *Table) RenderMarkdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string, ncols int) {
		b.WriteString("|")
		for i := 0; i < ncols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			b.WriteString(" " + strings.ReplaceAll(c, "|", "\\|") + " |")
		}
		b.WriteString("\n")
	}
	ncols := len(t.Columns)
	for _, r := range t.Rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	writeRow(t.Columns, ncols)
	b.WriteString("|")
	for i := 0; i < ncols; i++ {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		writeRow(r, ncols)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*note: %s*\n", n)
	}
	return b.String()
}

// F formats a float with prec decimals.
func F(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// D formats an integer.
func D(v int64) string { return fmt.Sprintf("%d", v) }

// Pct formats a ratio as a percentage with one decimal.
func Pct(num, den float64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*num/den)
}
