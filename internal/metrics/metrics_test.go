package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Count() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty sample must answer zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.Count() != 5 || s.Sum() != 15 || s.Mean() != 3 {
		t.Fatalf("count/sum/mean = %d/%v/%v", s.Count(), s.Sum(), s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Quantile(0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 5 {
		t.Fatalf("q1 = %v, want 5", got)
	}
}

func TestSampleAddAfterQuantile(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Quantile(0.5)
	s.Add(1)
	if s.Min() != 1 {
		t.Fatal("sample did not re-sort after Add")
	}
}

func TestSampleStddev(t *testing.T) {
	var s Sample
	s.Add(2)
	if s.Stddev() != 0 {
		t.Fatal("stddev of one sample must be 0")
	}
	s.Add(4)
	if got := s.Stddev(); got != 1 {
		t.Fatalf("stddev = %v, want 1", got)
	}
}

// Property: quantile is monotone in q and bounded by [Min, Max].
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		var s Sample
		for _, v := range vals {
			if v != v { // NaN breaks ordering; irrelevant for metrics
				return true
			}
			s.Add(v)
		}
		prev := s.Quantile(0)
		for q := 0.1; q <= 1.0; q += 0.1 {
			cur := s.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return s.Quantile(0) == s.Min() && s.Quantile(1) == s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "23")
	tb.AddNote("n=%d", 2)
	out := tb.Render()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, header, rule, 2 rows, note
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[5], "note: n=2") {
		t.Fatalf("note missing: %q", lines[5])
	}
	// Columns align: "value" column starts at the same offset in each row.
	hdr := strings.Index(lines[1], "value")
	for _, ln := range lines[3:5] {
		cell := strings.TrimSpace(ln[hdr:])
		if cell != "1" && cell != "23" {
			t.Fatalf("misaligned row %q (offset %d)", ln, hdr)
		}
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1")
	tb.AddRow("1", "2", "3")
	out := tb.Render()
	if !strings.Contains(out, "3") {
		t.Fatalf("extra cell dropped:\n%s", out)
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("a|b", "1")
	tb.AddNote("footnote")
	out := tb.RenderMarkdown()
	for _, want := range []string{
		"**demo**",
		"| name | value |",
		"|---|---|",
		`| a\|b | 1 |`,
		"*note: footnote*",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if F(1.2345, 2) != "1.23" {
		t.Fatal("F wrong")
	}
	if D(42) != "42" {
		t.Fatal("D wrong")
	}
	if Pct(1, 4) != "25.0%" {
		t.Fatal("Pct wrong")
	}
	if Pct(1, 0) != "n/a" {
		t.Fatal("Pct zero-div wrong")
	}
}
