package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Histogram buckets for operation latency, in seconds: sub-millisecond to
// ~8s in powers of two, then +Inf. Fixed bounds keep the exposition
// format stable and the hot path allocation-free.
var latencyBounds = []float64{
	0.0005, 0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064,
	0.128, 0.256, 0.512, 1.024, 2.048, 4.096, 8.192,
}

// LatencyHist is a fixed-bucket latency histogram in the Prometheus
// cumulative style. The zero value is NOT usable; histograms are created
// by OpMetrics.
type LatencyHist struct {
	counts []uint64 // one per bound, non-cumulative; rendered cumulative
	sum    float64
	count  uint64
}

func newLatencyHist() *LatencyHist {
	return &LatencyHist{counts: make([]uint64, len(latencyBounds)+1)}
}

// observe records one latency (callers hold the owning OpMetrics lock).
func (h *LatencyHist) observe(seconds float64) {
	i := sort.SearchFloat64s(latencyBounds, seconds)
	h.counts[i]++
	h.sum += seconds
	h.count++
}

// Count returns the number of observations.
func (h *LatencyHist) Count() uint64 { return h.count }

// opGauge identifies one in-flight gauge series: operation kind × key.
type opGauge struct {
	op  string
	key int64
}

// OpMetrics aggregates a serving node's client-operation metrics: an
// in-flight gauge per ⟨operation, key⟩ and a latency histogram per
// operation kind. It is safe for concurrent use — HTTP handlers call
// Begin from arbitrary goroutines — and renders itself in the Prometheus
// text exposition format.
type OpMetrics struct {
	mu       sync.Mutex
	inflight map[opGauge]int
	hists    map[string]*LatencyHist
	now      func() time.Time // injectable clock for tests
}

// NewOpMetrics builds an empty registry.
func NewOpMetrics() *OpMetrics {
	return &OpMetrics{
		inflight: make(map[opGauge]int),
		hists:    make(map[string]*LatencyHist),
		now:      time.Now,
	}
}

// Begin marks one operation of the given kind on the given key as in
// flight and returns the completion func: call it exactly once when the
// operation responds (success or failure) to decrement the gauge and
// record the latency.
func (m *OpMetrics) Begin(op string, key int64) func() {
	g := opGauge{op: op, key: key}
	m.mu.Lock()
	m.inflight[g]++
	start := m.now()
	m.mu.Unlock()
	return func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.inflight[g]--; m.inflight[g] <= 0 {
			delete(m.inflight, g) // keep the exposition bounded by live series
		}
		h, ok := m.hists[op]
		if !ok {
			h = newLatencyHist()
			m.hists[op] = h
		}
		h.observe(m.now().Sub(start).Seconds())
	}
}

// InFlight returns the current gauge for one ⟨operation, key⟩ series.
func (m *OpMetrics) InFlight(op string, key int64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inflight[opGauge{op: op, key: key}]
}

// Hist returns the latency histogram for one operation kind (nil if that
// kind never completed an operation).
func (m *OpMetrics) Hist(op string) *LatencyHist {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hists[op]
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered.
func (m *OpMetrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP regserve_op_inflight Client operations currently in flight, per operation kind and register key.")
	fmt.Fprintln(w, "# TYPE regserve_op_inflight gauge")
	gauges := make([]opGauge, 0, len(m.inflight))
	for g := range m.inflight {
		gauges = append(gauges, g)
	}
	sort.Slice(gauges, func(i, j int) bool {
		if gauges[i].op != gauges[j].op {
			return gauges[i].op < gauges[j].op
		}
		return gauges[i].key < gauges[j].key
	})
	for _, g := range gauges {
		fmt.Fprintf(w, "regserve_op_inflight{op=%q,key=\"%d\"} %d\n", g.op, g.key, m.inflight[g])
	}

	fmt.Fprintln(w, "# HELP regserve_op_seconds Client operation latency, per operation kind.")
	fmt.Fprintln(w, "# TYPE regserve_op_seconds histogram")
	kinds := make([]string, 0, len(m.hists))
	for k := range m.hists {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		h := m.hists[k]
		cum := uint64(0)
		for i, bound := range latencyBounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "regserve_op_seconds_bucket{op=%q,le=\"%s\"} %d\n", k, trimFloat(bound), cum)
		}
		fmt.Fprintf(w, "regserve_op_seconds_bucket{op=%q,le=\"+Inf\"} %d\n", k, h.count)
		fmt.Fprintf(w, "regserve_op_seconds_sum{op=%q} %g\n", k, h.sum)
		fmt.Fprintf(w, "regserve_op_seconds_count{op=%q} %d\n", k, h.count)
	}
}

// trimFloat renders a bucket bound without trailing zeros (0.0005, 1.024).
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
