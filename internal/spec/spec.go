// Package spec checks executions against register specifications.
//
// Experiments record every operation's invocation/response times and
// result into a History; the checkers then decide, post hoc, whether the
// execution is a legal behaviour of a regular register (§2.2), whether it
// would also pass for an atomic register (no new/old inversions), and
// whether it at least satisfies safety in Lamport's "safe register" sense.
//
// The checkers assume the paper's write discipline per key ACROSS
// processes: two different processes never write one register
// concurrently. ONE process may pipeline several writes to a key (the
// operation-table protocols assign their sequence numbers in invocation
// order), so same-process overlap is legal. ValidateWrites verifies the
// recorded history respects exactly that. Multiple outstanding
// operations per process — reads and writes alike — are ordinary
// histories here: every checker already reasons per key over intervals,
// so pipelining adds concurrency, not new machinery.
package spec

import (
	"fmt"
	"sort"

	"churnreg/internal/core"
	"churnreg/internal/sim"
)

// OpKind distinguishes recorded operations.
type OpKind int

// Operation kinds.
const (
	OpWrite OpKind = iota + 1
	OpRead
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one recorded operation.
type Op struct {
	Kind OpKind
	Proc core.ProcessID
	// Server is the process that actually SERVED the operation when it
	// differs from the invoking Proc — a sharded cluster forwards an
	// operation invoked at a non-replica to a replica of the key's
	// shard, and attribution must name the replica that produced the
	// value, not the relay. NoProcess means "served by Proc itself".
	// Recorded via History.SetServer.
	Server core.ProcessID
	// Reg is the register the operation addressed (DefaultRegister for
	// the single-register API). Every checker partitions by Reg: each key
	// of the namespace is its own regular register, and a violation on
	// one key is never masked — or manufactured — by another key's ops.
	Reg core.RegisterID
	// Start is the invocation instant; End the response instant.
	Start, End sim.Time
	// Value: for a write, the value written (with its sequence number);
	// for a completed read, the value returned.
	Value core.VersionedValue
	// Completed is false for operations still pending when the run ended
	// (e.g. the invoker left, or liveness failed).
	Completed bool
	// Abandoned marks a pending operation whose invoker left the system.
	// The paper's liveness property only covers invokers that stay, so
	// abandoned operations are excluded from liveness accounting.
	Abandoned bool
}

// ServedBy returns the process whose local state produced the
// operation's result: Server when recorded, else the invoking Proc.
func (o *Op) ServedBy() core.ProcessID {
	if o.Server != core.NoProcess {
		return o.Server
	}
	return o.Proc
}

// overlaps reports whether the operation's interval intersects [s, e].
// Incomplete operations extend to infinity.
func (o *Op) overlaps(s, e sim.Time) bool {
	if o.Start > e {
		return false
	}
	return !o.Completed || o.End >= s
}

// History is an append-only record of operations over the keyed register
// namespace. It is not safe for concurrent use; the simulator is
// single-threaded and the live runtime wraps it in a lock.
type History struct {
	ops []*Op
	// initial is register 0's initial value (the paper's virtual write
	// with sequence number 0 completing at time 0).
	initial core.VersionedValue
	// initials holds explicitly configured baselines for other keys;
	// keys absent here baseline at the implicit initial ⟨0,#0⟩.
	initials map[core.RegisterID]core.VersionedValue
}

// NewHistory returns a history whose register-0 baseline is the initial
// value (sequence number 0 at time 0). Every other key baselines at the
// implicit initial ⟨0,#0⟩ unless SetInitialKey overrides it.
func NewHistory(initial core.VersionedValue) *History {
	return &History{initial: initial}
}

// SetInitialKey overrides the baseline of one register (pre-provisioned
// namespaces record their configured initial values here).
func (h *History) SetInitialKey(reg core.RegisterID, v core.VersionedValue) {
	if reg == core.DefaultRegister {
		h.initial = v
		return
	}
	if h.initials == nil {
		h.initials = make(map[core.RegisterID]core.VersionedValue)
	}
	h.initials[reg] = v
}

// initialFor returns the baseline of one register.
func (h *History) initialFor(reg core.RegisterID) core.VersionedValue {
	if reg == core.DefaultRegister {
		return h.initial
	}
	if v, ok := h.initials[reg]; ok {
		return v
	}
	return core.ImplicitInitial()
}

// BeginWrite records a register-0 write invocation. The value's sequence
// number is the one the protocol assigned (recorded at completion for
// protocols that assign it late — pass Bottom here and fill it in
// Complete).
func (h *History) BeginWrite(proc core.ProcessID, now sim.Time) *Op {
	return h.BeginWriteKey(proc, core.DefaultRegister, now)
}

// BeginWriteKey records a write invocation on one register.
func (h *History) BeginWriteKey(proc core.ProcessID, reg core.RegisterID, now sim.Time) *Op {
	op := &Op{Kind: OpWrite, Proc: proc, Reg: reg, Start: now}
	h.ops = append(h.ops, op)
	return op
}

// BeginRead records a register-0 read invocation.
func (h *History) BeginRead(proc core.ProcessID, now sim.Time) *Op {
	return h.BeginReadKey(proc, core.DefaultRegister, now)
}

// BeginReadKey records a read invocation on one register.
func (h *History) BeginReadKey(proc core.ProcessID, reg core.RegisterID, now sim.Time) *Op {
	op := &Op{Kind: OpRead, Proc: proc, Reg: reg, Start: now}
	h.ops = append(h.ops, op)
	return op
}

// CompleteWrite records the write's response with the value it wrote.
func (h *History) CompleteWrite(op *Op, now sim.Time, v core.VersionedValue) {
	op.End = now
	op.Value = v
	op.Completed = true
}

// CompleteRead records the read's response with the value it returned.
func (h *History) CompleteRead(op *Op, now sim.Time, v core.VersionedValue) {
	op.End = now
	op.Value = v
	op.Completed = true
}

// ResolveValue records the ⟨v, sn⟩ a still-PENDING write is later known
// to have stored, without completing it. This is the post-hoc resolution
// for AMBIGUOUS writes: a forwarded write whose serving replica died
// before acknowledging may or may not have been applied
// (core.ErrUnacknowledged), and the client learns the outcome only by
// observing the value in subsequent reads. Recording the observed
// ⟨v, sn⟩ keeps the op incomplete — concurrent with everything after its
// invocation, exactly a regular register's semantics for a write that
// never returned — while giving the checker the sequence number those
// reads legitimately returned (allowedSNs admits incomplete writes with
// recorded values). An ambiguous write whose value is NEVER observed
// needs no resolution: no read returned it, so no read needs it allowed.
func (h *History) ResolveValue(op *Op, v core.VersionedValue) {
	if op == nil || op.Completed || op.Abandoned {
		return
	}
	op.Value = v
}

// SetServer records the replica that actually served op (see Op.Server).
// Under forwarding, attributing the result to the relay would make the
// per-process monotone-reads check unsound: one client's successive
// reads may legally be served by different replicas whose local copies
// advance independently, so "reads never go backwards" is a property of
// the SERVING replica's copy, not of the relay.
func (h *History) SetServer(op *Op, server core.ProcessID) {
	if op == nil || server == op.Proc {
		return
	}
	op.Server = server
}

// Abandon marks a pending operation as abandoned (its invoker left).
// Completed operations are unaffected.
func (h *History) Abandon(op *Op) {
	if !op.Completed {
		op.Abandoned = true
	}
}

// Ops returns the recorded operations (live pointers; do not mutate).
func (h *History) Ops() []*Op { return h.ops }

// Initial returns register 0's baseline value.
func (h *History) Initial() core.VersionedValue { return h.initial }

// Keys returns every register the history names (always including 0),
// ascending.
func (h *History) Keys() []core.RegisterID {
	set := map[core.RegisterID]bool{core.DefaultRegister: true}
	for _, op := range h.ops {
		set[op.Reg] = true
	}
	for k := range h.initials {
		set[k] = true
	}
	out := make([]core.RegisterID, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of recorded operations.
func (h *History) Len() int { return len(h.ops) }

// Counts summarizes operation liveness.
type Counts struct {
	WritesBegun, WritesCompleted, WritesAbandoned int
	ReadsBegun, ReadsCompleted, ReadsAbandoned    int
}

// WritesPending returns writes neither completed nor abandoned — the
// number the liveness theorems say must be 0 at quiescence.
func (c Counts) WritesPending() int { return c.WritesBegun - c.WritesCompleted - c.WritesAbandoned }

// ReadsPending returns reads neither completed nor abandoned.
func (c Counts) ReadsPending() int { return c.ReadsBegun - c.ReadsCompleted - c.ReadsAbandoned }

// Counts tallies operation liveness.
func (h *History) Counts() Counts {
	var c Counts
	for _, op := range h.ops {
		switch op.Kind {
		case OpWrite:
			c.WritesBegun++
			if op.Completed {
				c.WritesCompleted++
			} else if op.Abandoned {
				c.WritesAbandoned++
			}
		case OpRead:
			c.ReadsBegun++
			if op.Completed {
				c.ReadsCompleted++
			} else if op.Abandoned {
				c.ReadsAbandoned++
			}
		}
	}
	return c
}

// writesByKey returns, per register, the completed and pending writes
// sorted by start time, with each key's virtual initial write prepended —
// one pass over the history, not one per key. Abandoned writes are
// skipped: they were either never invoked (rejected at invocation) or cut
// short by the invoker leaving; in the latter case their value, if it
// propagated at all, carries a sequence number a later writer will
// supersede, and their recorded value is ⊥ (allowedSNs guards it).
func (h *History) writesByKey() map[core.RegisterID][]*Op {
	out := make(map[core.RegisterID][]*Op)
	for _, k := range h.Keys() {
		out[k] = []*Op{{
			Kind:      OpWrite,
			Reg:       k,
			Start:     -1,
			End:       0,
			Value:     h.initialFor(k),
			Completed: true,
		}}
	}
	for _, op := range h.ops {
		if op.Kind == OpWrite && !op.Abandoned {
			out[op.Reg] = append(out[op.Reg], op)
		}
	}
	// Ops are recorded at invocation, so each key's slice is already
	// start-ordered except for histories assembled out of order by hand;
	// the stable sort is cheap on sorted input and keeps those correct.
	for _, ws := range out {
		sort.SliceStable(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
	}
	return out
}

// ValidateWrites verifies the history respects the write discipline PER
// KEY: writes to one register from DIFFERENT processes never overlap in
// time, and sequence numbers respect real-time order (a write starting
// after another completed carries a larger sn). Writes from ONE process
// may overlap — that is pipelining. Overlapping writes are concurrent, so
// no order is imposed between their sns (a client-observed history can
// legitimately see them settle in either order: two pipelined requests
// may arrive at the node reversed); they must merely be distinct — the
// node assigns each write its own sn. The node-side guarantee that sns
// follow ARRIVAL order is asserted where arrival order is observable
// (the simulator tests). Writes to distinct registers overlap freely —
// they are independent objects. A violation here means the workload (not
// the protocol) is broken, so it is an error, not a Violation.
func (h *History) ValidateWrites() error {
	wsByKey := h.writesByKey()
	for _, reg := range h.Keys() {
		ws := wsByKey[reg]
		// ws is start-ordered. One sweep with an active window: a write
		// stays active while later starts can still overlap it; once it
		// completed before the current start it retires into the rolling
		// maxDone. Cost is O(n·depth) per key, depth being the pipeline
		// width — the old adjacent-pair check's linearity preserved.
		var active []*Op
		var maxDone SeqNumBefore
		for _, cur := range ws {
			kept := active[:0]
			for _, prev := range active {
				if prev.Completed && cur.Start >= prev.End {
					maxDone.observe(prev.Value.SN)
					continue
				}
				kept = append(kept, prev)
			}
			active = kept
			for _, prev := range active {
				// prev overlaps cur (it survived retirement above).
				if prev.Proc != cur.Proc {
					if !prev.Completed {
						return fmt.Errorf("spec: %v write %v(#%d) never completed but %v started later",
							reg, prev.Proc, prev.Value.SN, cur.Proc)
					}
					return fmt.Errorf("spec: %v cross-process writes overlap: %v(#%d) [%d,%d] and %v(#%d) starting %d",
						reg, prev.Proc, prev.Value.SN, prev.Start, prev.End, cur.Proc, cur.Value.SN, cur.Start)
				}
				// Same-process pipelined overlap: concurrent, hence
				// unordered — but never the SAME sn (one sn per write).
				if cur.Completed && prev.Completed && cur.Value.SN == prev.Value.SN {
					return fmt.Errorf("spec: %v pipelined writes share sn #%d ([%d,%d] and [%d,%d])",
						reg, cur.Value.SN, prev.Start, prev.End, cur.Start, cur.End)
				}
			}
			// Real-time order: cur supersedes everything that completed
			// before it started.
			if cur.Completed && maxDone.seen && cur.Value.SN <= maxDone.max {
				return fmt.Errorf("spec: %v write sequence numbers not increasing: #%d completed before %v(#%d) started",
					reg, maxDone.max, cur.Proc, cur.Value.SN)
			}
			active = append(active, cur)
		}
	}
	return nil
}

// SeqNumBefore folds the largest sequence number among writes completed
// before an instant.
type SeqNumBefore struct {
	seen bool
	max  core.SeqNum
}

func (m *SeqNumBefore) observe(sn core.SeqNum) {
	if !m.seen || sn > m.max {
		m.seen = true
		m.max = sn
	}
}

// Violation describes a read that no regular register could return.
type Violation struct {
	Read *Op
	// Reg is the register the offending read addressed — the checker
	// attributes every violation to its key.
	Reg core.RegisterID
	// LastCompleted is the sequence number of the last write to Reg
	// completed before the read's invocation.
	LastCompleted core.SeqNum
	// Allowed lists the sequence numbers a regular register could return.
	Allowed []core.SeqNum
	// Reason is a human-readable diagnosis.
	Reason string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("read of %v by %v [%d,%d] returned #%d: %s (allowed %v)",
		v.Reg, v.Read.Proc, v.Read.Start, v.Read.End, v.Read.Value.SN, v.Reason, v.Allowed)
}

// CheckRegular returns every completed read that violates regularity: the
// read must return the last value written TO ITS REGISTER before its
// invocation, or a value written to that register by a write concurrent
// with it. Each key is checked against its own write history, so a
// violation on key A is reported even when key B's ops are spotless.
func (h *History) CheckRegular() []Violation {
	wsByKey := h.writesByKey()
	var out []Violation
	for _, r := range h.ops {
		if r.Kind != OpRead || !r.Completed {
			continue
		}
		ws := wsByKey[r.Reg]
		allowed := allowedSNs(ws, r)
		ok := false
		for _, sn := range allowed {
			if r.Value.SN == sn {
				ok = true
				break
			}
		}
		if !ok {
			reason := "stale value"
			if r.Value.IsBottom() {
				reason = "returned ⊥"
			} else if len(allowed) > 0 && r.Value.SN > allowed[len(allowed)-1] {
				reason = "value from the future (sequence number never written in window)"
			}
			out = append(out, Violation{
				Read:          r,
				Reg:           r.Reg,
				LastCompleted: lastCompletedSN(ws, r),
				Allowed:       allowed,
				Reason:        reason,
			})
		}
	}
	return out
}

// lastCompletedSN returns the sequence number of the last write completed
// strictly before the read's invocation. A write whose response lands at
// the same virtual instant as the read's invocation has no defined order
// (events within one integer instant are unordered), so it counts as
// concurrent instead — overlaps() picks it up.
func lastCompletedSN(ws []*Op, r *Op) core.SeqNum {
	last := core.BottomSN
	for _, w := range ws {
		if w.Completed && w.End < r.Start && w.Value.SN > last {
			last = w.Value.SN
		}
	}
	return last
}

// allowedSNs computes the sequence numbers a regular register may return
// for read r: the last write completed before r's invocation plus every
// write concurrent with r. The result is sorted ascending.
func allowedSNs(ws []*Op, r *Op) []core.SeqNum {
	set := make(map[core.SeqNum]bool)
	if last := lastCompletedSN(ws, r); last != core.BottomSN {
		set[last] = true
	}
	for _, w := range ws {
		if w.overlaps(r.Start, r.End) {
			// A write concurrent with the read. Incomplete writes have no
			// recorded value when the workload recorded nothing; guard.
			if w.Completed || !w.Value.IsBottom() {
				set[w.Value.SN] = true
			}
		}
	}
	out := make([]core.SeqNum, 0, len(set))
	for sn := range set {
		out = append(out, sn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Inversion is a new/old inversion: two non-overlapping reads of the SAME
// register where the later read returns an older value — legal for a
// regular register, forbidden for an atomic one. The paper's introduction
// figure depicts exactly this.
type Inversion struct {
	First, Second *Op
	// Reg is the register both reads addressed.
	Reg core.RegisterID
}

// String renders the inversion.
func (iv Inversion) String() string {
	return fmt.Sprintf("read of %v by %v [%d,%d]=#%d precedes read by %v [%d,%d]=#%d",
		iv.Reg, iv.First.Proc, iv.First.Start, iv.First.End, iv.First.Value.SN,
		iv.Second.Proc, iv.Second.Start, iv.Second.End, iv.Second.Value.SN)
}

// FindInversions returns every new/old inversion among completed reads,
// per register — reads of distinct keys are unordered by definition and
// can never invert. An execution with zero regularity violations and zero
// inversions is a legal atomic-register behaviour.
func (h *History) FindInversions() []Inversion {
	readsByKey := make(map[core.RegisterID][]*Op)
	for _, op := range h.ops {
		if op.Kind == OpRead && op.Completed {
			readsByKey[op.Reg] = append(readsByKey[op.Reg], op)
		}
	}
	regs := make([]core.RegisterID, 0, len(readsByKey))
	for reg := range readsByKey {
		regs = append(regs, reg)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	var out []Inversion
	for _, reg := range regs {
		reads := readsByKey[reg]
		sort.SliceStable(reads, func(i, j int) bool { return reads[i].End < reads[j].End })
		for i, r1 := range reads {
			for _, r2 := range reads[i+1:] {
				if r1.End < r2.Start && r1.Value.SN > r2.Value.SN {
					out = append(out, Inversion{First: r1, Second: r2, Reg: reg})
				}
			}
		}
	}
	return out
}

// CheckMonotoneReads returns violations of the per-process session
// guarantee: a single process's successive reads never observe a smaller
// sequence number. The paper does not require this (regularity is a
// global property), but both of its protocols provide it for free — the
// local copy register_i only ever advances — so the checker verifies it
// as an additional implementation invariant. "Successive" is judged in
// RESPONSE order: with pipelined reads, two overlapping reads from one
// process are unordered (the later-invoked one may legally respond first
// with an older value), but whatever a read returned, every read
// responding after it must return at least as new a value.
func (h *History) CheckMonotoneReads() []Violation {
	// Reads are grouped by the process that SERVED them (Op.ServedBy):
	// under forwarding, one client's reads may be served by different
	// replicas, and the monotone invariant belongs to each replica's
	// local copy.
	type procKey struct {
		proc core.ProcessID
		reg  core.RegisterID
	}
	byProc := make(map[procKey][]*Op)
	keys := make([]procKey, 0)
	for _, r := range h.ops {
		if r.Kind != OpRead || !r.Completed {
			continue
		}
		pk := procKey{proc: r.ServedBy(), reg: r.Reg}
		if _, ok := byProc[pk]; !ok {
			keys = append(keys, pk)
		}
		byProc[pk] = append(byProc[pk], r)
	}
	var out []Violation
	for _, pk := range keys {
		reads := byProc[pk]
		sort.SliceStable(reads, func(i, j int) bool { return reads[i].End < reads[j].End })
		// Events within one instant are unordered (the history's own
		// convention — see lastCompletedSN), so reads responding at the
		// SAME End are mutually unconstrained: each is judged only
		// against the max of STRICTLY earlier responses, and a whole
		// same-End group folds into the max together.
		maxSN := core.BottomSN
		var maxOp *Op
		for i := 0; i < len(reads); {
			j := i
			for j < len(reads) && reads[j].End == reads[i].End {
				j++
			}
			groupMax := maxSN
			groupMaxOp := maxOp
			for _, r := range reads[i:j] {
				if maxOp != nil && r.Value.SN < maxSN {
					out = append(out, Violation{
						Read:          r,
						Reg:           r.Reg,
						LastCompleted: maxSN,
						Allowed:       []core.SeqNum{maxSN},
						Reason:        "process read went backwards (session violation)",
					})
				}
				if groupMaxOp == nil || r.Value.SN > groupMax {
					groupMax = r.Value.SN
					groupMaxOp = r
				}
			}
			maxSN, maxOp = groupMax, groupMaxOp
			i = j
		}
	}
	return out
}

// CheckSafe returns the reads violating Lamport's safe-register contract:
// only reads NOT concurrent with any write are constrained (they must
// return the last completed write's value); concurrent reads may return
// anything.
func (h *History) CheckSafe() []Violation {
	wsByKey := h.writesByKey()
	var out []Violation
	for _, r := range h.ops {
		if r.Kind != OpRead || !r.Completed {
			continue
		}
		ws := wsByKey[r.Reg]
		concurrent := false
		for _, w := range ws[1:] { // skip the virtual initial write
			if w.overlaps(r.Start, r.End) {
				concurrent = true
				break
			}
		}
		if concurrent {
			continue
		}
		last := lastCompletedSN(ws, r)
		if r.Value.SN != last {
			out = append(out, Violation{
				Read:          r,
				Reg:           r.Reg,
				LastCompleted: last,
				Allowed:       []core.SeqNum{last},
				Reason:        "non-concurrent read returned wrong value",
			})
		}
	}
	return out
}
