// Package spec checks executions against register specifications.
//
// Experiments record every operation's invocation/response times and
// result into a History; the checkers then decide, post hoc, whether the
// execution is a legal behaviour of a regular register (§2.2), whether it
// would also pass for an atomic register (no new/old inversions), and
// whether it at least satisfies safety in Lamport's "safe register" sense.
//
// The checkers assume the paper's write discipline: writes are not
// concurrent with one another (single writer, or coordinated writers).
// ValidateWrites verifies the recorded history actually respects it.
package spec

import (
	"fmt"
	"sort"

	"churnreg/internal/core"
	"churnreg/internal/sim"
)

// OpKind distinguishes recorded operations.
type OpKind int

// Operation kinds.
const (
	OpWrite OpKind = iota + 1
	OpRead
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one recorded operation.
type Op struct {
	Kind OpKind
	Proc core.ProcessID
	// Start is the invocation instant; End the response instant.
	Start, End sim.Time
	// Value: for a write, the value written (with its sequence number);
	// for a completed read, the value returned.
	Value core.VersionedValue
	// Completed is false for operations still pending when the run ended
	// (e.g. the invoker left, or liveness failed).
	Completed bool
	// Abandoned marks a pending operation whose invoker left the system.
	// The paper's liveness property only covers invokers that stay, so
	// abandoned operations are excluded from liveness accounting.
	Abandoned bool
}

// overlaps reports whether the operation's interval intersects [s, e].
// Incomplete operations extend to infinity.
func (o *Op) overlaps(s, e sim.Time) bool {
	if o.Start > e {
		return false
	}
	return !o.Completed || o.End >= s
}

// History is an append-only record of operations. It is not safe for
// concurrent use; the simulator is single-threaded and the live runtime
// wraps it in a lock.
type History struct {
	ops []*Op
	// initial is the register's initial value (the paper's virtual write
	// with sequence number 0 completing at time 0).
	initial core.VersionedValue
}

// NewHistory returns a history whose baseline is the initial value
// (sequence number 0 at time 0).
func NewHistory(initial core.VersionedValue) *History {
	return &History{initial: initial}
}

// BeginWrite records a write invocation. The value's sequence number is
// the one the protocol assigned (recorded at completion for protocols that
// assign it late — pass Bottom here and fill it in Complete).
func (h *History) BeginWrite(proc core.ProcessID, now sim.Time) *Op {
	op := &Op{Kind: OpWrite, Proc: proc, Start: now}
	h.ops = append(h.ops, op)
	return op
}

// BeginRead records a read invocation.
func (h *History) BeginRead(proc core.ProcessID, now sim.Time) *Op {
	op := &Op{Kind: OpRead, Proc: proc, Start: now}
	h.ops = append(h.ops, op)
	return op
}

// CompleteWrite records the write's response with the value it wrote.
func (h *History) CompleteWrite(op *Op, now sim.Time, v core.VersionedValue) {
	op.End = now
	op.Value = v
	op.Completed = true
}

// CompleteRead records the read's response with the value it returned.
func (h *History) CompleteRead(op *Op, now sim.Time, v core.VersionedValue) {
	op.End = now
	op.Value = v
	op.Completed = true
}

// Abandon marks a pending operation as abandoned (its invoker left).
// Completed operations are unaffected.
func (h *History) Abandon(op *Op) {
	if !op.Completed {
		op.Abandoned = true
	}
}

// Ops returns the recorded operations (live pointers; do not mutate).
func (h *History) Ops() []*Op { return h.ops }

// Initial returns the baseline value.
func (h *History) Initial() core.VersionedValue { return h.initial }

// Len returns the number of recorded operations.
func (h *History) Len() int { return len(h.ops) }

// Counts summarizes operation liveness.
type Counts struct {
	WritesBegun, WritesCompleted, WritesAbandoned int
	ReadsBegun, ReadsCompleted, ReadsAbandoned    int
}

// WritesPending returns writes neither completed nor abandoned — the
// number the liveness theorems say must be 0 at quiescence.
func (c Counts) WritesPending() int { return c.WritesBegun - c.WritesCompleted - c.WritesAbandoned }

// ReadsPending returns reads neither completed nor abandoned.
func (c Counts) ReadsPending() int { return c.ReadsBegun - c.ReadsCompleted - c.ReadsAbandoned }

// Counts tallies operation liveness.
func (h *History) Counts() Counts {
	var c Counts
	for _, op := range h.ops {
		switch op.Kind {
		case OpWrite:
			c.WritesBegun++
			if op.Completed {
				c.WritesCompleted++
			} else if op.Abandoned {
				c.WritesAbandoned++
			}
		case OpRead:
			c.ReadsBegun++
			if op.Completed {
				c.ReadsCompleted++
			} else if op.Abandoned {
				c.ReadsAbandoned++
			}
		}
	}
	return c
}

// writes returns completed and pending writes sorted by start time, with
// the virtual initial write prepended. Abandoned writes are skipped: they
// were either never invoked (rejected at invocation) or cut short by the
// invoker leaving; in the latter case their value, if it propagated at
// all, carries a sequence number a later writer will supersede, and their
// recorded value is ⊥ (allowedSNs guards it).
func (h *History) writes() []*Op {
	ws := []*Op{{
		Kind:      OpWrite,
		Start:     -1,
		End:       0,
		Value:     h.initial,
		Completed: true,
	}}
	for _, op := range h.ops {
		if op.Kind == OpWrite && !op.Abandoned {
			ws = append(ws, op)
		}
	}
	sort.SliceStable(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
	return ws
}

// ValidateWrites verifies the history respects the paper's write
// discipline: no two writes overlap in time, and sequence numbers increase
// with real-time order. A violation here means the workload (not the
// protocol) is broken, so it is an error, not a Violation.
func (h *History) ValidateWrites() error {
	ws := h.writes()
	for i := 1; i < len(ws); i++ {
		prev, cur := ws[i-1], ws[i]
		if prev.Completed && cur.Start < prev.End {
			return fmt.Errorf("spec: writes overlap: %v(#%d) [%d,%d] and %v(#%d) starting %d",
				prev.Proc, prev.Value.SN, prev.Start, prev.End, cur.Proc, cur.Value.SN, cur.Start)
		}
		if !prev.Completed {
			return fmt.Errorf("spec: write %v(#%d) never completed but %v started later",
				prev.Proc, prev.Value.SN, cur.Proc)
		}
		if cur.Completed && cur.Value.SN <= prev.Value.SN {
			return fmt.Errorf("spec: write sequence numbers not increasing: #%d then #%d",
				prev.Value.SN, cur.Value.SN)
		}
	}
	return nil
}

// Violation describes a read that no regular register could return.
type Violation struct {
	Read *Op
	// LastCompleted is the sequence number of the last write completed
	// before the read's invocation.
	LastCompleted core.SeqNum
	// Allowed lists the sequence numbers a regular register could return.
	Allowed []core.SeqNum
	// Reason is a human-readable diagnosis.
	Reason string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("read by %v [%d,%d] returned #%d: %s (allowed %v)",
		v.Read.Proc, v.Read.Start, v.Read.End, v.Read.Value.SN, v.Reason, v.Allowed)
}

// CheckRegular returns every completed read that violates regularity: the
// read must return the last value written before its invocation, or a
// value written by a write concurrent with it.
func (h *History) CheckRegular() []Violation {
	ws := h.writes()
	var out []Violation
	for _, r := range h.ops {
		if r.Kind != OpRead || !r.Completed {
			continue
		}
		allowed := allowedSNs(ws, r)
		ok := false
		for _, sn := range allowed {
			if r.Value.SN == sn {
				ok = true
				break
			}
		}
		if !ok {
			reason := "stale value"
			if r.Value.IsBottom() {
				reason = "returned ⊥"
			} else if len(allowed) > 0 && r.Value.SN > allowed[len(allowed)-1] {
				reason = "value from the future (sequence number never written in window)"
			}
			out = append(out, Violation{
				Read:          r,
				LastCompleted: lastCompletedSN(ws, r),
				Allowed:       allowed,
				Reason:        reason,
			})
		}
	}
	return out
}

// lastCompletedSN returns the sequence number of the last write completed
// strictly before the read's invocation. A write whose response lands at
// the same virtual instant as the read's invocation has no defined order
// (events within one integer instant are unordered), so it counts as
// concurrent instead — overlaps() picks it up.
func lastCompletedSN(ws []*Op, r *Op) core.SeqNum {
	last := core.BottomSN
	for _, w := range ws {
		if w.Completed && w.End < r.Start && w.Value.SN > last {
			last = w.Value.SN
		}
	}
	return last
}

// allowedSNs computes the sequence numbers a regular register may return
// for read r: the last write completed before r's invocation plus every
// write concurrent with r. The result is sorted ascending.
func allowedSNs(ws []*Op, r *Op) []core.SeqNum {
	set := make(map[core.SeqNum]bool)
	if last := lastCompletedSN(ws, r); last != core.BottomSN {
		set[last] = true
	}
	for _, w := range ws {
		if w.overlaps(r.Start, r.End) {
			// A write concurrent with the read. Incomplete writes have no
			// recorded value when the workload recorded nothing; guard.
			if w.Completed || !w.Value.IsBottom() {
				set[w.Value.SN] = true
			}
		}
	}
	out := make([]core.SeqNum, 0, len(set))
	for sn := range set {
		out = append(out, sn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Inversion is a new/old inversion: two non-overlapping reads where the
// later read returns an older value — legal for a regular register,
// forbidden for an atomic one. The paper's introduction figure depicts
// exactly this.
type Inversion struct {
	First, Second *Op
}

// String renders the inversion.
func (iv Inversion) String() string {
	return fmt.Sprintf("read by %v [%d,%d]=#%d precedes read by %v [%d,%d]=#%d",
		iv.First.Proc, iv.First.Start, iv.First.End, iv.First.Value.SN,
		iv.Second.Proc, iv.Second.Start, iv.Second.End, iv.Second.Value.SN)
}

// FindInversions returns every new/old inversion among completed reads.
// An execution with zero regularity violations and zero inversions is a
// legal atomic-register behaviour.
func (h *History) FindInversions() []Inversion {
	var reads []*Op
	for _, op := range h.ops {
		if op.Kind == OpRead && op.Completed {
			reads = append(reads, op)
		}
	}
	sort.SliceStable(reads, func(i, j int) bool { return reads[i].End < reads[j].End })
	var out []Inversion
	for i, r1 := range reads {
		for _, r2 := range reads[i+1:] {
			if r1.End < r2.Start && r1.Value.SN > r2.Value.SN {
				out = append(out, Inversion{First: r1, Second: r2})
			}
		}
	}
	return out
}

// CheckMonotoneReads returns violations of the per-process session
// guarantee: a single process's successive reads never observe a smaller
// sequence number. The paper does not require this (regularity is a
// global property), but both of its protocols provide it for free — the
// local copy register_i only ever advances — so the checker verifies it
// as an additional implementation invariant.
func (h *History) CheckMonotoneReads() []Violation {
	lastByProc := make(map[core.ProcessID]*Op)
	var out []Violation
	for _, r := range h.ops {
		if r.Kind != OpRead || !r.Completed {
			continue
		}
		if prev, ok := lastByProc[r.Proc]; ok && r.Value.SN < prev.Value.SN {
			out = append(out, Violation{
				Read:          r,
				LastCompleted: prev.Value.SN,
				Allowed:       []core.SeqNum{prev.Value.SN},
				Reason:        "process read went backwards (session violation)",
			})
		}
		lastByProc[r.Proc] = r
	}
	return out
}

// CheckSafe returns the reads violating Lamport's safe-register contract:
// only reads NOT concurrent with any write are constrained (they must
// return the last completed write's value); concurrent reads may return
// anything.
func (h *History) CheckSafe() []Violation {
	ws := h.writes()
	var out []Violation
	for _, r := range h.ops {
		if r.Kind != OpRead || !r.Completed {
			continue
		}
		concurrent := false
		for _, w := range ws[1:] { // skip the virtual initial write
			if w.overlaps(r.Start, r.End) {
				concurrent = true
				break
			}
		}
		if concurrent {
			continue
		}
		last := lastCompletedSN(ws, r)
		if r.Value.SN != last {
			out = append(out, Violation{
				Read:          r,
				LastCompleted: last,
				Allowed:       []core.SeqNum{last},
				Reason:        "non-concurrent read returned wrong value",
			})
		}
	}
	return out
}
