package spec

import (
	"testing"
	"testing/quick"

	"churnreg/internal/core"
	"churnreg/internal/sim"
)

func initial() core.VersionedValue { return core.VersionedValue{Val: 0, SN: 0} }

func vv(val core.Value, sn core.SeqNum) core.VersionedValue {
	return core.VersionedValue{Val: val, SN: sn}
}

// write appends a completed write [s, e] with value #sn.
func write(h *History, proc core.ProcessID, s, e sim.Time, sn core.SeqNum) *Op {
	op := h.BeginWrite(proc, s)
	h.CompleteWrite(op, e, vv(core.Value(sn*10), sn))
	return op
}

// read appends a completed read [s, e] returning #sn.
func read(h *History, proc core.ProcessID, s, e sim.Time, sn core.SeqNum) *Op {
	op := h.BeginRead(proc, s)
	h.CompleteRead(op, e, vv(core.Value(sn*10), sn))
	return op
}

func TestReadOfInitialValueIsLegal(t *testing.T) {
	h := NewHistory(initial())
	read(h, 5, 10, 10, 0)
	if v := h.CheckRegular(); len(v) != 0 {
		t.Fatalf("violations = %v, want none", v)
	}
}

func TestReadAfterCompletedWriteMustSeeIt(t *testing.T) {
	h := NewHistory(initial())
	write(h, 1, 10, 20, 1)
	read(h, 2, 30, 30, 1) // fine
	read(h, 3, 40, 40, 0) // stale!
	vs := h.CheckRegular()
	if len(vs) != 1 {
		t.Fatalf("violations = %d (%v), want 1", len(vs), vs)
	}
	if vs[0].Read.Proc != 3 || vs[0].Reason != "stale value" {
		t.Fatalf("wrong violation: %v", vs[0])
	}
	if vs[0].LastCompleted != 1 {
		t.Fatalf("LastCompleted = %d, want 1", vs[0].LastCompleted)
	}
}

func TestReadConcurrentWithWriteMayReturnEither(t *testing.T) {
	h := NewHistory(initial())
	write(h, 1, 10, 20, 1)
	read(h, 2, 12, 15, 0) // old value during write: legal
	read(h, 3, 14, 18, 1) // new value during write: legal
	if v := h.CheckRegular(); len(v) != 0 {
		t.Fatalf("violations = %v, want none", v)
	}
}

func TestReadConcurrentWithTwoWritesMayReturnAnyOfThree(t *testing.T) {
	h := NewHistory(initial())
	write(h, 1, 10, 20, 1)
	write(h, 1, 25, 35, 2)
	// Read spans both writes: may return #0 (last before), #1, or #2.
	for sn := core.SeqNum(0); sn <= 2; sn++ {
		read(h, 2, 5, 40, sn)
	}
	if v := h.CheckRegular(); len(v) != 0 {
		t.Fatalf("violations = %v, want none", v)
	}
	// But #0 is NOT legal for a read that starts after write #1 ended.
	read(h, 3, 22, 23, 0)
	vs := h.CheckRegular()
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly the stale one", vs)
	}
}

func TestValueNeverWrittenIsViolation(t *testing.T) {
	h := NewHistory(initial())
	write(h, 1, 10, 20, 1)
	read(h, 2, 30, 31, 7) // sn 7 never written
	vs := h.CheckRegular()
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1", len(vs))
	}
}

func TestBottomReadIsViolation(t *testing.T) {
	h := NewHistory(initial())
	op := h.BeginRead(2, 5)
	h.CompleteRead(op, 6, core.Bottom())
	vs := h.CheckRegular()
	if len(vs) != 1 || vs[0].Reason != "returned ⊥" {
		t.Fatalf("violations = %v, want one ⊥ read", vs)
	}
}

func TestIncompleteWriteCountsAsConcurrent(t *testing.T) {
	h := NewHistory(initial())
	op := h.BeginWrite(1, 10)
	op.Value = vv(10, 1) // value known, response never arrived
	read(h, 2, 50, 51, 1)
	if v := h.CheckRegular(); len(v) != 0 {
		t.Fatalf("read of in-flight write flagged: %v", v)
	}
	// The old value is also still legal (write never completed).
	read(h, 3, 60, 61, 0)
	if v := h.CheckRegular(); len(v) != 0 {
		t.Fatalf("old value during incomplete write flagged: %v", v)
	}
}

func TestPendingReadsAreNotChecked(t *testing.T) {
	h := NewHistory(initial())
	h.BeginRead(2, 5)
	if v := h.CheckRegular(); len(v) != 0 {
		t.Fatalf("pending read flagged: %v", v)
	}
	c := h.Counts()
	if c.ReadsBegun != 1 || c.ReadsCompleted != 0 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestNewOldInversionDetected(t *testing.T) {
	h := NewHistory(initial())
	write(h, 1, 10, 30, 1)
	// r1 (ends first) sees the new value; r2 (starts after r1 ends) sees
	// the old one. Regular: legal. Atomic: inversion.
	read(h, 2, 12, 14, 1)
	read(h, 3, 20, 22, 0)
	if v := h.CheckRegular(); len(v) != 0 {
		t.Fatalf("regular violations = %v, want none", v)
	}
	invs := h.FindInversions()
	if len(invs) != 1 {
		t.Fatalf("inversions = %d (%v), want 1", len(invs), invs)
	}
	if invs[0].First.Proc != 2 || invs[0].Second.Proc != 3 {
		t.Fatalf("wrong inversion pair: %v", invs[0])
	}
}

func TestOverlappingReadsAreNotInversions(t *testing.T) {
	h := NewHistory(initial())
	write(h, 1, 10, 30, 1)
	read(h, 2, 12, 25, 1)
	read(h, 3, 20, 22, 0) // overlaps r1: no real-time order
	if invs := h.FindInversions(); len(invs) != 0 {
		t.Fatalf("overlapping reads flagged as inversion: %v", invs)
	}
}

func TestCheckSafeIgnoresConcurrentReads(t *testing.T) {
	h := NewHistory(initial())
	write(h, 1, 10, 20, 1)
	// Concurrent read returning garbage sn=99: fine for safe.
	read(h, 2, 12, 15, 99)
	// Non-concurrent read returning stale: safe violation.
	read(h, 3, 30, 31, 0)
	vs := h.CheckSafe()
	if len(vs) != 1 || vs[0].Read.Proc != 3 {
		t.Fatalf("safe violations = %v, want p3's read only", vs)
	}
}

func TestValidateWritesAcceptsSequential(t *testing.T) {
	h := NewHistory(initial())
	write(h, 1, 10, 20, 1)
	write(h, 2, 25, 30, 2) // another writer, later: allowed
	if err := h.ValidateWrites(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateWritesRejectsOverlap(t *testing.T) {
	h := NewHistory(initial())
	write(h, 1, 10, 20, 1)
	write(h, 2, 15, 25, 2)
	if err := h.ValidateWrites(); err == nil {
		t.Fatal("overlapping writes accepted")
	}
}

func TestValidateWritesRejectsNonMonotonicSN(t *testing.T) {
	h := NewHistory(initial())
	write(h, 1, 10, 20, 2)
	write(h, 1, 25, 30, 1)
	if err := h.ValidateWrites(); err == nil {
		t.Fatal("non-monotonic sequence numbers accepted")
	}
}

func TestCheckMonotoneReads(t *testing.T) {
	h := NewHistory(initial())
	write(h, 1, 10, 30, 1)
	// p2's reads go 1 then 0: session violation. p3 reading 0 after p2's
	// 1 is NOT one (different processes).
	read(h, 2, 12, 13, 1)
	read(h, 3, 15, 16, 0)
	read(h, 2, 18, 19, 0)
	vs := h.CheckMonotoneReads()
	if len(vs) != 1 || vs[0].Read.Proc != 2 {
		t.Fatalf("monotone violations = %v, want exactly p2's second read", vs)
	}
}

func TestCheckMonotoneReadsCleanHistory(t *testing.T) {
	h := NewHistory(initial())
	write(h, 1, 10, 20, 1)
	read(h, 2, 5, 6, 0)
	read(h, 2, 25, 26, 1)
	read(h, 2, 30, 31, 1)
	if vs := h.CheckMonotoneReads(); len(vs) != 0 {
		t.Fatalf("clean session flagged: %v", vs)
	}
}

func TestCountsTally(t *testing.T) {
	h := NewHistory(initial())
	write(h, 1, 1, 2, 1)
	h.BeginWrite(1, 3)
	read(h, 2, 4, 5, 1)
	read(h, 2, 6, 7, 1)
	h.BeginRead(3, 8)
	c := h.Counts()
	want := Counts{WritesBegun: 2, WritesCompleted: 1, ReadsBegun: 3, ReadsCompleted: 2}
	if c != want {
		t.Fatalf("counts = %+v, want %+v", c, want)
	}
}

// Property: a history generated by a faithful sequential register (reads
// return the value of the last write completed or started before them)
// never triggers regular violations.
func TestCheckRegularSoundnessProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		h := NewHistory(initial())
		now := sim.Time(1)
		cur := core.SeqNum(0)
		for i := 0; i < 40; i++ {
			if rng.Bool(0.4) {
				// Sequential write.
				cur++
				s := now
				e := s + sim.Time(1+rng.Int63n(5))
				op := h.BeginWrite(1, s)
				h.CompleteWrite(op, e, vv(core.Value(cur), cur))
				now = e + 1
			} else {
				// Read strictly between writes: must return cur.
				s := now
				e := s + sim.Time(rng.Int63n(3))
				op := h.BeginRead(core.ProcessID(2+rng.Intn(5)), s)
				h.CompleteRead(op, e, vv(core.Value(cur), cur))
				now = e + 1
			}
		}
		return len(h.CheckRegular()) == 0 && len(h.CheckSafe()) == 0 && h.ValidateWrites() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: corrupting any strictly-between-writes read to an older
// sequence number is always flagged.
func TestCheckRegularCompletenessProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		h := NewHistory(initial())
		now := sim.Time(1)
		var cur core.SeqNum
		for cur = 1; cur <= 5; cur++ {
			op := h.BeginWrite(1, now)
			h.CompleteWrite(op, now+2, vv(core.Value(cur), cur))
			now += 3
		}
		// A read after all writes, corrupted to a random older sn.
		stale := core.SeqNum(rng.Int63n(5)) // 0..4 < 5
		op := h.BeginRead(2, now)
		h.CompleteRead(op, now+1, vv(core.Value(stale), stale))
		return len(h.CheckRegular()) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestViolationAndInversionStrings(t *testing.T) {
	h := NewHistory(initial())
	write(h, 1, 10, 20, 1)
	read(h, 3, 40, 41, 0)
	vs := h.CheckRegular()
	if len(vs) != 1 || vs[0].String() == "" {
		t.Fatalf("violation string empty: %v", vs)
	}
	read(h, 4, 50, 51, 1)
	read(h, 5, 60, 61, 0)
	invs := h.FindInversions()
	for _, iv := range invs {
		if iv.String() == "" {
			t.Fatal("inversion string empty")
		}
	}
	if OpWrite.String() != "write" || OpRead.String() != "read" {
		t.Fatal("OpKind names wrong")
	}
}
