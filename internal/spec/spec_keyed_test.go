package spec

// Per-key checker coverage: each register of the namespace is its own
// regular register, so a misbehaving key must be flagged — and attributed
// to that key — no matter how clean the other keys' histories are, and a
// clean key must never be incriminated by a neighbour's writes.

import (
	"testing"

	"churnreg/internal/core"
)

const (
	keyA = core.RegisterID(7)
	keyB = core.RegisterID(9)
)

// keyedHistory builds: key A suffers a new/old inversion (and the stale
// read behind it) while key B's history is spotless, with the two keys'
// operations fully interleaved in time.
func keyedHistory() *History {
	h := NewHistory(core.VersionedValue{})
	// Key A: one write #1, then two non-overlapping reads that invert —
	// the second returns the implicit initial #0 after #1 was read.
	wa := h.BeginWriteKey(1, keyA, 0)
	h.CompleteWrite(wa, 5, vv(10, 1))
	ra1 := h.BeginReadKey(2, keyA, 10)
	h.CompleteRead(ra1, 12, vv(10, 1))
	ra2 := h.BeginReadKey(3, keyA, 14)
	h.CompleteRead(ra2, 16, vv(0, 0))
	// Key B, interleaved: two writes and two fresh reads, all legal.
	wb1 := h.BeginWriteKey(4, keyB, 1)
	h.CompleteWrite(wb1, 6, vv(70, 1))
	rb1 := h.BeginReadKey(5, keyB, 11)
	h.CompleteRead(rb1, 13, vv(70, 1))
	wb2 := h.BeginWriteKey(4, keyB, 14)
	h.CompleteWrite(wb2, 18, vv(71, 2))
	rb2 := h.BeginReadKey(5, keyB, 20)
	h.CompleteRead(rb2, 22, vv(71, 2))
	return h
}

func TestPerKeyInversionAttributedToItsKey(t *testing.T) {
	h := keyedHistory()
	ivs := h.FindInversions()
	if len(ivs) != 1 {
		t.Fatalf("inversions = %d (%v), want exactly the key-A one", len(ivs), ivs)
	}
	if ivs[0].Reg != keyA {
		t.Fatalf("inversion attributed to %v, want %v", ivs[0].Reg, keyA)
	}
	if ivs[0].First.Value.SN != 1 || ivs[0].Second.Value.SN != 0 {
		t.Fatalf("inversion pairs #%d then #%d, want #1 then #0",
			ivs[0].First.Value.SN, ivs[0].Second.Value.SN)
	}
}

func TestPerKeyViolationAttributedToItsKey(t *testing.T) {
	h := keyedHistory()
	if err := h.ValidateWrites(); err != nil {
		t.Fatalf("interleaved writes on distinct keys must be legal: %v", err)
	}
	vs := h.CheckRegular()
	if len(vs) != 1 {
		t.Fatalf("violations = %d (%v), want exactly the stale key-A read", len(vs), vs)
	}
	if vs[0].Reg != keyA || vs[0].Read.Proc != 3 {
		t.Fatalf("violation attributed to %v at %v, want %v at p3", vs[0].Reg, vs[0].Read.Proc, keyA)
	}
	if vs[0].LastCompleted != 1 {
		t.Fatalf("LastCompleted = %d, want key A's #1 (not key B's #2)", vs[0].LastCompleted)
	}
}

func TestViolationNotMaskedByOtherKeysWrites(t *testing.T) {
	// A read of key A returns sequence number 2 — a value key A never
	// held, but key B DID write #2. A checker that pooled all writes
	// would accept the read; the per-key checker must flag it as a
	// from-the-future value on key A.
	h := NewHistory(core.VersionedValue{})
	wa := h.BeginWriteKey(1, keyA, 0)
	h.CompleteWrite(wa, 5, vv(10, 1))
	wb1 := h.BeginWriteKey(2, keyB, 1)
	h.CompleteWrite(wb1, 6, vv(70, 1))
	wb2 := h.BeginWriteKey(2, keyB, 7)
	h.CompleteWrite(wb2, 12, vv(71, 2))
	ra := h.BeginReadKey(3, keyA, 20)
	h.CompleteRead(ra, 22, vv(99, 2))
	vs := h.CheckRegular()
	if len(vs) != 1 || vs[0].Reg != keyA {
		t.Fatalf("violations = %v, want one on %v", vs, keyA)
	}
	if vs[0].Reason != "value from the future (sequence number never written in window)" {
		t.Fatalf("reason = %q, want from-the-future diagnosis", vs[0].Reason)
	}
}

func TestCleanKeyNotIncriminatedByNeighbourHistory(t *testing.T) {
	h := keyedHistory()
	for _, v := range h.CheckRegular() {
		if v.Reg == keyB {
			t.Fatalf("clean key %v flagged: %v", keyB, v)
		}
	}
	for _, iv := range h.FindInversions() {
		if iv.Reg == keyB {
			t.Fatalf("clean key %v flagged: %v", keyB, iv)
		}
	}
	// The per-process session check is per (process, key) too: p5's #1
	// read on B after p2's #1 on A must not read as a regression.
	if ms := h.CheckMonotoneReads(); len(ms) != 0 {
		t.Fatalf("monotone-read violations on a per-key-clean history: %v", ms)
	}
}

func TestSetInitialKeyBaselinesNonZeroKey(t *testing.T) {
	h := NewHistory(core.VersionedValue{})
	h.SetInitialKey(keyA, vv(42, 3))
	// A read of key A returning the configured baseline is legal...
	r1 := h.BeginReadKey(1, keyA, 5)
	h.CompleteRead(r1, 6, vv(42, 3))
	// ...and one returning the implicit ⟨0,#0⟩ is stale.
	r2 := h.BeginReadKey(1, keyA, 8)
	h.CompleteRead(r2, 9, vv(0, 0))
	vs := h.CheckRegular()
	if len(vs) != 1 || vs[0].Read != r2 {
		t.Fatalf("violations = %v, want only the pre-baseline read", vs)
	}
}
