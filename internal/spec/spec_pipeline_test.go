package spec

import (
	"strings"
	"testing"

	"churnreg/internal/core"
)

// TestValidateWritesAllowsSameProcessPipelining: one process's writes to
// one key may overlap; sns in invocation order pass.
func TestValidateWritesAllowsSameProcessPipelining(t *testing.T) {
	h := NewHistory(core.VersionedValue{})
	w1 := h.BeginWriteKey(1, 5, 10)
	w2 := h.BeginWriteKey(1, 5, 12) // overlaps w1, same proc
	w3 := h.BeginWriteKey(1, 5, 14) // overlaps both
	h.CompleteWrite(w2, 30, core.VersionedValue{Val: 2, SN: 2})
	h.CompleteWrite(w1, 32, core.VersionedValue{Val: 1, SN: 1})
	h.CompleteWrite(w3, 40, core.VersionedValue{Val: 3, SN: 3})
	if err := h.ValidateWrites(); err != nil {
		t.Fatalf("pipelined same-process writes rejected: %v", err)
	}
}

// TestValidateWritesRejectsCrossProcessOverlap: the paper's discipline
// survives across processes.
func TestValidateWritesRejectsCrossProcessOverlap(t *testing.T) {
	h := NewHistory(core.VersionedValue{})
	w1 := h.BeginWriteKey(1, 5, 10)
	w2 := h.BeginWriteKey(2, 5, 12) // overlaps w1, DIFFERENT proc
	h.CompleteWrite(w1, 20, core.VersionedValue{Val: 1, SN: 1})
	h.CompleteWrite(w2, 22, core.VersionedValue{Val: 2, SN: 2})
	err := h.ValidateWrites()
	if err == nil || !strings.Contains(err.Error(), "cross-process") {
		t.Fatalf("cross-process overlap accepted: %v", err)
	}
}

// TestValidateWritesPipelineOverlapUnordered: overlapping same-process
// writes are concurrent — either sn order is legal (two pipelined client
// requests may reach the node reversed) — but sns must be distinct.
func TestValidateWritesPipelineOverlapUnordered(t *testing.T) {
	h := NewHistory(core.VersionedValue{})
	w1 := h.BeginWriteKey(1, 5, 10)
	w2 := h.BeginWriteKey(1, 5, 12)
	h.CompleteWrite(w1, 20, core.VersionedValue{Val: 1, SN: 2})
	h.CompleteWrite(w2, 22, core.VersionedValue{Val: 2, SN: 1}) // later invocation, smaller sn: arrived first
	if err := h.ValidateWrites(); err != nil {
		t.Fatalf("reversed-arrival pipelined sns rejected: %v", err)
	}
	// The same sn twice is a genuine bug whatever the order.
	h2 := NewHistory(core.VersionedValue{})
	d1 := h2.BeginWriteKey(1, 5, 10)
	d2 := h2.BeginWriteKey(1, 5, 12)
	h2.CompleteWrite(d1, 20, core.VersionedValue{Val: 1, SN: 1})
	h2.CompleteWrite(d2, 22, core.VersionedValue{Val: 2, SN: 1})
	if err := h2.ValidateWrites(); err == nil {
		t.Fatal("duplicate pipelined sn accepted")
	}
}

// TestValidateWritesRealTimeOrderAcrossPipelines: a write starting after
// another COMPLETED must carry a larger sn, pipelining or not.
func TestValidateWritesRealTimeOrderAcrossPipelines(t *testing.T) {
	h := NewHistory(core.VersionedValue{})
	w1 := h.BeginWriteKey(1, 5, 10)
	h.CompleteWrite(w1, 20, core.VersionedValue{Val: 1, SN: 7})
	w2 := h.BeginWriteKey(1, 5, 30) // strictly after w1
	h.CompleteWrite(w2, 40, core.VersionedValue{Val: 2, SN: 3})
	if err := h.ValidateWrites(); err == nil {
		t.Fatal("sn regression across real-time order accepted")
	}
}

// TestValidateWritesDistinctKeysStillFree: overlap across keys is not
// constrained at all.
func TestValidateWritesDistinctKeysStillFree(t *testing.T) {
	h := NewHistory(core.VersionedValue{})
	w1 := h.BeginWriteKey(1, 5, 10)
	w2 := h.BeginWriteKey(2, 6, 11) // different key, different proc
	h.CompleteWrite(w1, 20, core.VersionedValue{Val: 1, SN: 1})
	h.CompleteWrite(w2, 21, core.VersionedValue{Val: 2, SN: 1})
	if err := h.ValidateWrites(); err != nil {
		t.Fatalf("cross-key overlap rejected: %v", err)
	}
}

// TestMonotoneReadsJudgedInResponseOrder: with pipelined reads, the
// session guarantee binds response order, not invocation order — a
// later-invoked read may respond first with an older value.
func TestMonotoneReadsJudgedInResponseOrder(t *testing.T) {
	h := NewHistory(core.VersionedValue{})
	r1 := h.BeginReadKey(1, 0, 10)
	r2 := h.BeginReadKey(1, 0, 11) // pipelined with r1
	// r2 responds FIRST with the older value; r1 later with the newer.
	h.CompleteRead(r2, 15, core.VersionedValue{Val: 1, SN: 1})
	h.CompleteRead(r1, 20, core.VersionedValue{Val: 2, SN: 2})
	if v := h.CheckMonotoneReads(); len(v) != 0 {
		t.Fatalf("response-ordered reads flagged: %v", v)
	}
	// A genuine regression in response order is still caught.
	r3 := h.BeginReadKey(1, 0, 30)
	h.CompleteRead(r3, 35, core.VersionedValue{Val: 1, SN: 1})
	if v := h.CheckMonotoneReads(); len(v) != 1 {
		t.Fatalf("session regression not flagged: %v", v)
	}
}

// TestCheckRegularAttributesPipelinedWritesPerKey: a read overlapping a
// pipelined burst may return any of the concurrent writes' values — and
// violations still name their key.
func TestCheckRegularAttributesPipelinedWritesPerKey(t *testing.T) {
	h := NewHistory(core.VersionedValue{})
	w1 := h.BeginWriteKey(1, 5, 10)
	w2 := h.BeginWriteKey(1, 5, 11)
	r := h.BeginReadKey(2, 5, 12) // concurrent with both writes
	h.CompleteWrite(w1, 20, core.VersionedValue{Val: 1, SN: 1})
	h.CompleteWrite(w2, 21, core.VersionedValue{Val: 2, SN: 2})
	h.CompleteRead(r, 25, core.VersionedValue{Val: 1, SN: 1})
	if v := h.CheckRegular(); len(v) != 0 {
		t.Fatalf("concurrent-write value rejected: %v", v)
	}
	// A value never written to THIS key is still a violation on this key.
	r2 := h.BeginReadKey(2, 5, 40)
	h.CompleteRead(r2, 41, core.VersionedValue{Val: 9, SN: 9})
	vs := h.CheckRegular()
	if len(vs) != 1 || vs[0].Reg != 5 {
		t.Fatalf("violation not attributed to key 5: %v", vs)
	}
}
