package placement

import (
	"testing"

	"churnreg/internal/core"
)

func ids(ns ...int64) []core.ProcessID {
	out := make([]core.ProcessID, len(ns))
	for i, n := range ns {
		out[i] = core.ProcessID(n)
	}
	return out
}

// TestBuildDeterministic: the same member set yields the same view,
// whatever order (or duplication) the members arrive in.
func TestBuildDeterministic(t *testing.T) {
	cfg := Config{Shards: 16, Replication: 3}
	a := Build(cfg, ids(1, 2, 3, 4, 5))
	b := Build(cfg, ids(5, 3, 1, 4, 2, 3))
	for s := 0; s < cfg.Shards; s++ {
		ga, gb := a.GroupFor(s), b.GroupFor(s)
		if len(ga) != len(gb) {
			t.Fatalf("shard %d: group sizes differ: %v vs %v", s, ga, gb)
		}
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("shard %d: groups differ: %v vs %v", s, ga, gb)
			}
		}
	}
}

// TestGroupSizeAndMembership: groups have size min(R, |members|), contain
// no duplicates, and IsReplica agrees with GroupFor.
func TestGroupSizeAndMembership(t *testing.T) {
	cfg := Config{Shards: 8, Replication: 3}
	for _, members := range [][]core.ProcessID{ids(1, 2), ids(1, 2, 3, 4, 5, 6)} {
		v := Build(cfg, members)
		want := cfg.Replication
		if want > len(members) {
			want = len(members)
		}
		for s := 0; s < cfg.Shards; s++ {
			g := v.GroupFor(s)
			if len(g) != want {
				t.Fatalf("members=%v shard %d: group size %d, want %d", members, s, len(g), want)
			}
			seen := map[core.ProcessID]bool{}
			for _, id := range g {
				if seen[id] {
					t.Fatalf("shard %d: duplicate member %v in %v", s, id, g)
				}
				seen[id] = true
			}
		}
	}
	v := Build(cfg, ids(1, 2, 3, 4))
	for reg := core.RegisterID(0); reg < 50; reg++ {
		g := v.Group(reg)
		for _, id := range ids(1, 2, 3, 4) {
			if v.IsReplica(reg, id) != contains(g, id) {
				t.Fatalf("reg %v: IsReplica(%v) disagrees with group %v", reg, id, g)
			}
		}
	}
}

// TestMinimalMovement: adding one member to a 10-member system must not
// reshuffle everything — rendezvous hashing moves only the shards the
// newcomer's score wins, about S·R/(n+1) of the S·R replica slots.
func TestMinimalMovement(t *testing.T) {
	cfg := Config{Shards: 64, Replication: 3}
	before := Build(cfg, ids(1, 2, 3, 4, 5, 6, 7, 8, 9, 10))
	after := Build(cfg, ids(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11))
	moved := 0
	for s := 0; s < cfg.Shards; s++ {
		was := map[core.ProcessID]bool{}
		for _, id := range before.GroupFor(s) {
			was[id] = true
		}
		for _, id := range after.GroupFor(s) {
			if !was[id] && id != 11 {
				moved++ // a survivor slot changed hands: NOT minimal
			}
		}
	}
	if moved != 0 {
		t.Fatalf("%d replica slots moved between surviving members (rendezvous must only hand slots to the newcomer)", moved)
	}
	gainedByNew := after.OwnedCount(11)
	if gainedByNew == 0 {
		t.Fatalf("newcomer owns no shards across %d shards", cfg.Shards)
	}
	if gainedByNew > cfg.Shards {
		t.Fatalf("newcomer owns %d > S shards", gainedByNew)
	}
}

// TestBalance: shard ownership spreads over members (no member owns more
// than ~3x its fair share on this configuration).
func TestBalance(t *testing.T) {
	cfg := Config{Shards: 128, Replication: 3}
	members := ids(1, 2, 3, 4, 5, 6, 7, 8)
	v := Build(cfg, members)
	fair := cfg.Shards * cfg.Replication / len(members)
	for _, id := range members {
		got := v.OwnedCount(id)
		if got == 0 {
			t.Fatalf("member %v owns nothing", id)
		}
		if got > 3*fair {
			t.Fatalf("member %v owns %d shards, fair share %d", id, got, fair)
		}
	}
}

// TestGainedAndDonors: a joiner gains exactly the shards it now
// replicates; donors for a gained shard cover its previous holders.
func TestGainedAndDonors(t *testing.T) {
	cfg := Config{Shards: 32, Replication: 2}
	old := Build(cfg, ids(1, 2, 3))
	now := Build(cfg, ids(1, 2, 3, 4))
	gained := Gained(old, now, 4)
	if len(gained) == 0 {
		t.Fatal("joiner gained nothing over 32 shards")
	}
	for _, s := range gained {
		if !contains(now.GroupFor(s), 4) {
			t.Fatalf("gained shard %d not owned by 4 in new view", s)
		}
		donors := Donors(old, now, s, 4)
		if len(donors) == 0 {
			t.Fatalf("shard %d: no donors", s)
		}
		oldHolders := old.GroupFor(s)
		found := false
		for _, d := range donors {
			if contains(oldHolders, d) {
				found = true
			}
			if d == 4 {
				t.Fatalf("shard %d: self listed as donor", s)
			}
		}
		if !found {
			t.Fatalf("shard %d: donors %v cover no old holder %v", s, donors, oldHolders)
		}
	}
	// First view (old == nil): everything owned is "gained".
	first := Gained(nil, now, 1)
	if len(first) != now.OwnedCount(1) {
		t.Fatalf("first-view gained = %d, want owned count %d", len(first), now.OwnedCount(1))
	}
}

// TestShardOfSpread: register ids spread across shards.
func TestShardOfSpread(t *testing.T) {
	counts := make([]int, 8)
	for reg := core.RegisterID(0); reg < 800; reg++ {
		counts[ShardOf(reg, 8)]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d got no keys of 800", s)
		}
	}
}

// TestValidate rejects bad configs and Build returns nil when disabled.
func TestValidate(t *testing.T) {
	if err := (Config{Shards: -1}).Validate(); err == nil {
		t.Fatal("negative shards accepted")
	}
	if err := (Config{Shards: 4, Replication: 0}).Validate(); err == nil {
		t.Fatal("zero replication accepted")
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("disabled config rejected: %v", err)
	}
	if v := Build(Config{}, ids(1, 2)); v != nil {
		t.Fatal("disabled config built a view")
	}
	if v := Build(Config{Shards: 4, Replication: 2}, nil); v != nil {
		t.Fatal("empty membership built a view")
	}
}
