// Package placement is the deterministic keyspace→replica mapping behind
// sharding: RegisterID → shard → replica group of size R over the current
// membership, via consistent hashing in its rendezvous (highest-random-
// weight) form. Every node computes the same View from the same member
// set with no coordination, and a membership change moves only the shards
// whose top-R scoring changed — the minimal-movement property that keeps
// handoff traffic proportional to churn, not to the keyspace.
//
// The View is immutable: runtimes build a fresh one per membership change
// and swap it in, so protocol code can snapshot a consistent mapping per
// operation. Which processes count as "members" is the runtime's choice
// (the simulator uses present processes; the TCP transport uses its
// identified address book plus itself) — eventual agreement on membership
// yields eventual agreement on placement, and the internal/shard handoff
// machinery covers the disagreement window.
package placement

import (
	"fmt"
	"sort"

	"churnreg/internal/core"
)

// Config enables sharding when Shards > 0.
type Config struct {
	// Shards is S, the fixed number of shards the keyspace hashes onto.
	// 0 disables sharding (every node replicates every key).
	Shards int
	// Replication is R, the replica group size per shard (capped by the
	// member count while the system is smaller than R).
	Replication int
}

// Enabled reports whether the config turns sharding on.
func (c Config) Enabled() bool { return c.Shards > 0 }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Shards < 0 {
		return fmt.Errorf("placement: shards = %d, want >= 0", c.Shards)
	}
	if c.Shards > 0 && c.Replication < 1 {
		return fmt.Errorf("placement: replication = %d, want >= 1 when sharded", c.Replication)
	}
	return nil
}

// mix64 is the splitmix64 finalizer — a cheap, well-distributed 64-bit
// mixer; placement only needs determinism and spread, not cryptography.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardOf maps a register to its shard in [0, shards): the key hashes
// through mix64 so adjacent RegisterIDs land on unrelated shards.
func ShardOf(reg core.RegisterID, shards int) int {
	return int(mix64(uint64(reg)) % uint64(shards))
}

// score is one (member, shard) rendezvous weight: the member with the
// highest score owns the shard as primary, the next R-1 are its replicas.
func score(shard int, id core.ProcessID) uint64 {
	return mix64(mix64(uint64(shard)+0x9e3779b97f4a7c15) ^ mix64(uint64(id)))
}

// View is one immutable placement over a member set. It implements
// core.PlacementView.
type View struct {
	cfg     Config
	members []core.ProcessID       // ascending
	groups  [][]core.ProcessID     // per shard, priority order (primary first)
	owned   map[core.ProcessID]int // shards owned per member (for gauges)
	version uint64
}

var _ core.PlacementView = (*View)(nil)

// Build computes the placement of every shard over members. The member
// slice is copied and sorted; duplicate ids are tolerated (deduped).
// Returns nil when the config disables sharding or members is empty —
// callers treat a nil view as "unsharded".
func Build(cfg Config, members []core.ProcessID) *View {
	if !cfg.Enabled() || len(members) == 0 {
		return nil
	}
	ms := append([]core.ProcessID(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	dedup := ms[:0]
	for i, id := range ms {
		if i == 0 || id != ms[i-1] {
			dedup = append(dedup, id)
		}
	}
	ms = dedup
	v := &View{
		cfg:     cfg,
		members: ms,
		groups:  make([][]core.ProcessID, cfg.Shards),
		owned:   make(map[core.ProcessID]int, len(ms)),
	}
	r := cfg.Replication
	if r > len(ms) {
		r = len(ms)
	}
	type scored struct {
		id core.ProcessID
		w  uint64
	}
	ranked := make([]scored, len(ms))
	for s := 0; s < cfg.Shards; s++ {
		for i, id := range ms {
			ranked[i] = scored{id: id, w: score(s, id)}
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].w != ranked[j].w {
				return ranked[i].w > ranked[j].w
			}
			return ranked[i].id < ranked[j].id
		})
		g := make([]core.ProcessID, r)
		for i := 0; i < r; i++ {
			g[i] = ranked[i].id
			v.owned[ranked[i].id]++
		}
		v.groups[s] = g
	}
	return v
}

// SetVersion stamps the view with a runtime-monotone sequence number,
// letting receivers discard a view delivered out of order (concurrent
// runtimes post views to node loops asynchronously). Call before
// publishing the view; 0 means unversioned.
func (v *View) SetVersion(ver uint64) { v.version = ver }

// ViewVersion returns the stamp set by SetVersion.
func (v *View) ViewVersion() uint64 { return v.version }

// NumShards implements core.PlacementView.
func (v *View) NumShards() int { return v.cfg.Shards }

// Replication returns the configured R (groups are smaller only while
// the membership is).
func (v *View) Replication() int { return v.cfg.Replication }

// ShardOf implements core.PlacementView.
func (v *View) ShardOf(reg core.RegisterID) int { return ShardOf(reg, v.cfg.Shards) }

// GroupFor implements core.PlacementView: the shard's replica group in
// priority order, primary first. Callers must not mutate the slice.
func (v *View) GroupFor(shard int) []core.ProcessID { return v.groups[shard] }

// Group implements core.PlacementView.
func (v *View) Group(reg core.RegisterID) []core.ProcessID {
	return v.groups[v.ShardOf(reg)]
}

// IsReplica implements core.PlacementView.
func (v *View) IsReplica(reg core.RegisterID, id core.ProcessID) bool {
	for _, m := range v.Group(reg) {
		if m == id {
			return true
		}
	}
	return false
}

// Members implements core.PlacementView.
func (v *View) Members() []core.ProcessID { return v.members }

// Primary returns the shard's first-priority replica.
func (v *View) Primary(shard int) core.ProcessID { return v.groups[shard][0] }

// OwnedCount returns how many shards id replicates under this view.
func (v *View) OwnedCount(id core.ProcessID) int { return v.owned[id] }

// OwnedShards returns the shards id replicates, ascending.
func (v *View) OwnedShards(id core.ProcessID) []int {
	var out []int
	for s, g := range v.groups {
		for _, m := range g {
			if m == id {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// Gained returns the shards id replicates under v but did not under old
// (all of id's shards when old is nil). This is the handoff work list a
// view change hands the internal/shard wrapper. Interface-typed so the
// wrapper's production path and these tests share one implementation.
func Gained(old, v core.PlacementView, id core.ProcessID) []int {
	if v == nil {
		return nil
	}
	var out []int
	for s := 0; s < v.NumShards(); s++ {
		if !contains(v.GroupFor(s), id) {
			continue
		}
		if old == nil || !contains(old.GroupFor(s), id) {
			out = append(out, s)
		}
	}
	return out
}

// Donors returns the processes able to seed shard s's state for a node
// that just gained it: the union of the shard's old and new replica
// groups, intersected with the new view's membership, excluding self.
// Ascending, deduped. This is the production donor set the
// internal/shard handoff uses.
func Donors(old, v core.PlacementView, shard int, self core.ProcessID) []core.ProcessID {
	members := v.Members()
	present := make(map[core.ProcessID]bool, len(members))
	for _, id := range members {
		present[id] = true
	}
	seen := make(map[core.ProcessID]bool)
	var out []core.ProcessID
	add := func(ids []core.ProcessID) {
		for _, id := range ids {
			if id != self && present[id] && !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	add(v.GroupFor(shard))
	if old != nil && shard < old.NumShards() {
		add(old.GroupFor(shard))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func contains(ids []core.ProcessID, id core.ProcessID) bool {
	for _, m := range ids {
		if m == id {
			return true
		}
	}
	return false
}
