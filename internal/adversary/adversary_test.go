package adversary_test

import (
	"testing"

	"churnreg/internal/adversary"
	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/esyncreg"
	"churnreg/internal/sim"
	"churnreg/internal/syncreg"
)

func TestTurnoverDelaysExceedTurnover(t *testing.T) {
	m := adversary.TurnoverDelays(0.02, 2) // turnover 50, delay 100
	rng := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		d := m.Delay(rng, 1, 2, 0, core.KindWrite)
		if d != 100 {
			t.Fatalf("delay = %d, want 100", d)
		}
	}
}

func TestTurnoverDelaysClamps(t *testing.T) {
	m := adversary.TurnoverDelays(0.5, 0.1) // slack < 1 clamped to 1 → 2
	if d := m.Delay(sim.NewRNG(1), 1, 2, 0, core.KindAck); d < 1 {
		t.Fatalf("delay = %d, want >= 1", d)
	}
}

func TestBrokenDeltaDelaysStretchOnlyWrites(t *testing.T) {
	m := adversary.BrokenDeltaDelays(5, 10)
	rng := sim.NewRNG(2)
	for i := 0; i < 200; i++ {
		if d := m.Delay(rng, 1, 2, 0, core.KindWrite); d != 50 {
			t.Fatalf("WRITE delay = %d, want 50", d)
		}
		if d := m.Delay(rng, 1, 2, 0, core.KindInquiry); d < 1 || d > 5 {
			t.Fatalf("INQUIRY delay = %d, want within δ", d)
		}
		if d := m.Delay(rng, 1, 2, 0, core.KindReply); d < 1 || d > 5 {
			t.Fatalf("REPLY delay = %d, want within δ", d)
		}
	}
}

func TestTargetedStarvationIsolatesVictim(t *testing.T) {
	m := adversary.TargetedStarvation(7, 5, 1000)
	rng := sim.NewRNG(3)
	if d := m.Delay(rng, 1, 7, 0, core.KindReply); d != 1000 {
		t.Fatalf("victim delay = %d, want 1000", d)
	}
	if d := m.Delay(rng, 1, 8, 0, core.KindReply); d > 5 {
		t.Fatalf("bystander delay = %d, want within δ", d)
	}
}

// TestTargetedStarvationDeniesJoin shows the adversary needs only one
// victim: a joiner whose inbound traffic is delayed indefinitely never
// completes, while the rest of the system runs normally.
func TestTargetedStarvationDeniesJoin(t *testing.T) {
	const delta = 5
	// The victim will be p6 (5 bootstrap processes).
	sys, err := dynsys.New(dynsys.Config{
		N:       5,
		Delta:   delta,
		Model:   adversary.TargetedStarvation(6, delta, 1<<20),
		Factory: esyncreg.Factory(esyncreg.Options{}),
		Seed:    1,
		Initial: core.VersionedValue{Val: 0, SN: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, victim := sys.Spawn() // p6
	_, bystander := sys.Spawn()
	if err := sys.RunFor(200 * delta); err != nil {
		t.Fatal(err)
	}
	if victim.Active() {
		t.Fatal("starved joiner completed its join")
	}
	if !bystander.Active() {
		t.Fatal("bystander join failed; adversary not targeted")
	}
}

// TestBrokenDeltaBreaksSynchronousSafety is the E5 safety face in
// miniature: a single write under stretched WRITE delays followed by a
// join and a read yields a stale result.
func TestBrokenDeltaBreaksSynchronousSafety(t *testing.T) {
	const delta = 5
	sys, err := dynsys.New(dynsys.Config{
		N:       3,
		Delta:   delta,
		Model:   adversary.BrokenDeltaDelays(delta, 20),
		Factory: syncreg.Factory(syncreg.Options{}),
		Seed:    1,
		Initial: core.VersionedValue{Val: 0, SN: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	writer := sys.Node(1).(*syncreg.Node)
	done := false
	if err := writer.Write(1, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(delta); err != nil { // write "returns" at δ
		t.Fatal(err)
	}
	if !done {
		t.Fatal("write did not return after δ")
	}
	// The writer departs; its WRITE messages are still in flight (delay
	// 20δ). A joiner now inquires into an uninformed system.
	sys.KillProcess(1)
	_, joiner := sys.Spawn()
	if err := sys.RunFor(4 * delta); err != nil {
		t.Fatal(err)
	}
	if !joiner.Active() {
		t.Fatal("join did not complete")
	}
	v, err := joiner.(*syncreg.Node).ReadLocal()
	if err != nil {
		t.Fatal(err)
	}
	if v.SN != 0 {
		t.Fatalf("expected the stale read (sn=0) the impossibility predicts, got %v", v)
	}
}
