// Package adversary builds the message schedules behind Theorem 2 (no
// regular register in a fully asynchronous dynamic system) and the other
// negative results the experiments demonstrate.
//
// The impossibility argument is: with churn constantly replacing processes
// and no bound on message delays, every message can be scheduled to arrive
// after its destination (or every informed process) has left the system,
// so the value obtained by any process can always be older than the last
// completed write. These constructors realize that argument as concrete
// delay models for the simulator.
package adversary

import (
	"churnreg/internal/core"
	"churnreg/internal/netsim"
	"churnreg/internal/sim"
)

// TurnoverDelays returns an asynchronous model whose every delay exceeds
// the population turnover time. With churn rate c, the whole population of
// n processes is refreshed every 1/c time units; a message delayed by
// slack/c time units therefore finds its destination departed (and every
// process that knew the written value replaced). slack > 1 adds margin.
//
// Run any of the register protocols under this model with churn c and the
// system starves: joins never assemble replies, quorums never assemble
// ACKs, and the active population decays to nothing — the liveness face of
// Theorem 2.
func TurnoverDelays(c float64, slack float64) netsim.DelayModel {
	if slack < 1 {
		slack = 1
	}
	d := sim.Duration(slack / c)
	if d < 1 {
		d = 1
	}
	return netsim.AsynchronousModel{
		Choose: func(_ *sim.RNG, _, _ core.ProcessID, _ sim.Time, _ core.MsgKind) sim.Duration {
			return d
		},
	}
}

// BrokenDeltaDelays returns a model for running the SYNCHRONOUS protocol
// in an asynchronous world: the protocol trusts the bound δ, but actual
// delays run up to stretch×δ. Writes "complete" after δ while their WRITE
// messages are still in flight, and joins inquire into a system that has
// not heard the news — the safety face of Theorem 2 (a δ-trusting protocol
// cannot be correct without the bound).
//
// Control traffic (INQUIRY/REPLY) keeps honest sub-δ delays so the join
// machinery itself proceeds; only the data path (WRITE) is stretched. This
// is a legal asynchronous schedule: the adversary may delay any message.
func BrokenDeltaDelays(delta sim.Duration, stretch float64) netsim.DelayModel {
	if stretch < 1 {
		stretch = 1
	}
	slow := sim.Duration(float64(delta) * stretch)
	return netsim.ScriptedDelayModel{
		Base: netsim.SynchronousModel{Delta: delta},
		Overrides: map[netsim.Route]sim.Duration{
			{Kind: core.KindWrite}: slow,
		},
	}
}

// TargetedStarvation returns a model that isolates one victim process: all
// messages addressed to it are delayed by delay while the rest of the
// system runs synchronously. Used to show that an asynchronous adversary
// needs to pick on only one process to deny it the register's liveness.
func TargetedStarvation(victim core.ProcessID, delta, delay sim.Duration) netsim.DelayModel {
	return netsim.ScriptedDelayModel{
		Base: netsim.SynchronousModel{Delta: delta},
		Overrides: map[netsim.Route]sim.Duration{
			{To: victim}: delay,
		},
	}
}
