// Package nodeops turns the asynchronous, loop-confined protocol node API
// (core.KeyedReader, core.KeyedWriter, ...) into blocking operations with
// real-time deadlines. It is the one implementation of "invoke an
// operation on a node and wait" shared by every real-time runtime:
// internal/livenet (goroutines + channels) and internal/nettransport (OS
// processes + TCP) both delegate here, so the two runtimes cannot drift in
// how they route reads to local vs. quorum protocols or how they emulate
// batched writes.
//
// The contract mirrors core.Env's: an Invoke function schedules a closure
// on the node's single loop goroutine; every channel the closures send to
// is buffered, so a node completing an operation after its caller timed
// out never blocks the loop.
package nodeops

import (
	"errors"
	"fmt"
	"time"

	"churnreg/internal/core"
)

// ErrTimeout is returned when an operation misses its real-time deadline.
var ErrTimeout = errors.New("nodeops: operation timed out")

// Invoke schedules fn on the node's loop goroutine — the only legal way to
// touch a node — returning without waiting for fn to run. It returns an
// error if the node is gone (left, killed, or the runtime closed).
type Invoke func(fn func(core.Node)) error

// ReadKey runs a read of one register and waits for its result, routing to
// the protocol's local or quorum read as available.
func ReadKey(inv Invoke, reg core.RegisterID, timeout time.Duration) (core.VersionedValue, error) {
	res := make(chan core.VersionedValue, 1)
	errc := make(chan error, 1)
	err := inv(func(n core.Node) {
		switch r := n.(type) {
		case core.KeyedLocalReader:
			v, err := r.ReadLocalKey(reg)
			if err != nil {
				errc <- err
				return
			}
			res <- v
		case core.KeyedReader:
			if err := r.ReadKey(reg, func(v core.VersionedValue) { res <- v }); err != nil {
				errc <- err
			}
		case core.LocalReader:
			if reg != core.DefaultRegister {
				errc <- fmt.Errorf("nodeops: node %T cannot read %v", n, reg)
				return
			}
			v, err := r.ReadLocal()
			if err != nil {
				errc <- err
				return
			}
			res <- v
		case core.Reader:
			if reg != core.DefaultRegister {
				errc <- fmt.Errorf("nodeops: node %T cannot read %v", n, reg)
				return
			}
			if err := r.Read(func(v core.VersionedValue) { res <- v }); err != nil {
				errc <- err
			}
		default:
			errc <- fmt.Errorf("nodeops: node %T cannot read", n)
		}
	})
	if err != nil {
		return core.Bottom(), err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case v := <-res:
		return v, nil
	case err := <-errc:
		return core.Bottom(), err
	case <-timer.C:
		return core.Bottom(), ErrTimeout
	}
}

// WriteKey runs a write of one register and waits for it to return ok.
func WriteKey(inv Invoke, reg core.RegisterID, v core.Value, timeout time.Duration) error {
	done := make(chan struct{}, 1)
	errc := make(chan error, 1)
	err := inv(func(n core.Node) {
		switch w := n.(type) {
		case core.KeyedWriter:
			if err := w.WriteKey(reg, v, func() { done <- struct{}{} }); err != nil {
				errc <- err
			}
		case core.Writer:
			if reg != core.DefaultRegister {
				errc <- fmt.Errorf("nodeops: node %T cannot write %v", n, reg)
				return
			}
			if err := w.Write(v, func() { done <- struct{}{} }); err != nil {
				errc <- err
			}
		default:
			errc <- fmt.Errorf("nodeops: node %T cannot write", n)
		}
	})
	if err != nil {
		return err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case err := <-errc:
		return err
	case <-timer.C:
		return ErrTimeout
	}
}

// WriteBatch stores several keys' values and waits for all of them to
// return ok. Protocols implementing core.BatchWriter get the one-broadcast
// fast path; any other keyed writer is driven with one WriteKey per entry,
// all in flight concurrently (writes to distinct keys may overlap), so the
// caller-facing semantics are uniform across protocols. Entries must be
// sorted by Reg with no duplicates.
func WriteBatch(inv Invoke, entries []core.KeyedWrite, timeout time.Duration) error {
	if len(entries) == 0 {
		return fmt.Errorf("nodeops: empty batch")
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Reg >= entries[i].Reg {
			return fmt.Errorf("nodeops: batch entries not sorted/unique at %v", entries[i].Reg)
		}
	}
	done := make(chan struct{}, 1)
	errc := make(chan error, 1)
	err := inv(func(n core.Node) {
		if bw, ok := n.(core.BatchWriter); ok {
			if err := bw.WriteBatch(entries, func() { done <- struct{}{} }); err != nil {
				errc <- err
			}
			return
		}
		kw, ok := n.(core.KeyedWriter)
		if !ok {
			errc <- fmt.Errorf("nodeops: node %T cannot write batches", n)
			return
		}
		// remaining is only touched by per-key done callbacks, which all run
		// on the node's loop goroutine — no lock needed.
		remaining := len(entries)
		for _, e := range entries {
			if err := kw.WriteKey(e.Reg, e.Val, func() {
				remaining--
				if remaining == 0 {
					done <- struct{}{}
				}
			}); err != nil {
				errc <- err
				return
			}
		}
	})
	if err != nil {
		return err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case err := <-errc:
		return err
	case <-timer.C:
		return ErrTimeout
	}
}

// SnapshotKey returns the node's local copy of one register (for checking
// and metrics; not a protocol read).
func SnapshotKey(inv Invoke, reg core.RegisterID, timeout time.Duration) (core.VersionedValue, error) {
	res := make(chan core.VersionedValue, 1)
	if err := inv(func(n core.Node) {
		if s, ok := n.(core.KeyedSnapshotter); ok {
			res <- s.SnapshotKey(reg)
			return
		}
		if reg == core.DefaultRegister {
			res <- n.Snapshot()
			return
		}
		res <- core.Bottom()
	}); err != nil {
		return core.Bottom(), err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case v := <-res:
		return v, nil
	case <-timer.C:
		return core.Bottom(), ErrTimeout
	}
}

// WaitActive blocks until the node's join has returned, polling on its
// loop goroutine every poll interval, or until timeout.
func WaitActive(inv Invoke, poll, timeout time.Duration) error {
	if poll <= 0 {
		poll = time.Millisecond
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		done := make(chan bool, 1)
		if err := inv(func(n core.Node) { done <- n.Active() }); err != nil {
			return err
		}
		select {
		case active := <-done:
			if active {
				return nil
			}
		case <-deadline.C:
			return ErrTimeout
		}
		select {
		case <-ticker.C:
		case <-deadline.C:
			return ErrTimeout
		}
	}
}
