// Package nodeops turns the asynchronous, loop-confined protocol node API
// (core.KeyedReader, core.KeyedWriter, ...) into blocking operations with
// real-time deadlines. It is the one implementation of "invoke an
// operation on a node and wait" shared by every real-time runtime:
// internal/livenet (goroutines + channels) and internal/nettransport (OS
// processes + TCP) both delegate here, so the two runtimes cannot drift in
// how they route reads to local vs. quorum protocols or how they emulate
// batched writes.
//
// The contract mirrors core.Env's: an Invoke function schedules a closure
// on the node's single loop goroutine; every channel the closures send to
// is buffered, so a node completing an operation after its caller timed
// out never blocks the loop.
//
// Every function here may be called from any number of goroutines at
// once: each call is its own operation with its own completion channel,
// and the protocols pipeline them (one op-table entry per call). A caller
// that times out abandons only its wait; the node-side operation still
// runs to completion and reclaims its table entry.
package nodeops

import (
	"errors"
	"fmt"
	"time"

	"churnreg/internal/core"
)

// ErrTimeout is returned when an operation misses its real-time deadline.
var ErrTimeout = errors.New("nodeops: operation timed out")

// Invoke schedules fn on the node's loop goroutine — the only legal way to
// touch a node — returning without waiting for fn to run. It returns an
// error if the node is gone (left, killed, or the runtime closed).
type Invoke func(fn func(core.Node)) error

// ReadKey runs a read of one register and waits for its result, routing to
// the protocol's local or quorum read as available.
func ReadKey(inv Invoke, reg core.RegisterID, timeout time.Duration) (core.VersionedValue, error) {
	v, _, err := ReadKeyServed(inv, reg, timeout)
	return v, err
}

// ReadKeyServed is ReadKey plus the identity of the process that SERVED
// the read: NoProcess for node-local and quorum reads (the node itself;
// the caller knows its id), the answering replica for reads a sharded
// node forwarded (core.ServedReader). History recorders attribute the
// read to the server, not the relay.
func ReadKeyServed(inv Invoke, reg core.RegisterID, timeout time.Duration) (core.VersionedValue, core.ProcessID, error) {
	type served struct {
		v      core.VersionedValue
		server core.ProcessID
	}
	res := make(chan served, 1)
	errc := make(chan error, 1)
	err := inv(func(n core.Node) {
		switch r := n.(type) {
		case core.ServedReader:
			if err := r.ReadKeyServed(reg, func(v core.VersionedValue, server core.ProcessID, err error) {
				if err != nil {
					errc <- err
					return
				}
				res <- served{v: v, server: server}
			}); err != nil {
				errc <- err
			}
		case core.KeyedLocalReader:
			v, err := r.ReadLocalKey(reg)
			if err != nil {
				errc <- err
				return
			}
			res <- served{v: v}
		case core.KeyedReader:
			if err := r.ReadKey(reg, func(v core.VersionedValue) { res <- served{v: v} }); err != nil {
				errc <- err
			}
		case core.LocalReader:
			if reg != core.DefaultRegister {
				errc <- fmt.Errorf("nodeops: node %T cannot read %v", n, reg)
				return
			}
			v, err := r.ReadLocal()
			if err != nil {
				errc <- err
				return
			}
			res <- served{v: v}
		case core.Reader:
			if reg != core.DefaultRegister {
				errc <- fmt.Errorf("nodeops: node %T cannot read %v", n, reg)
				return
			}
			if err := r.Read(func(v core.VersionedValue) { res <- served{v: v} }); err != nil {
				errc <- err
			}
		default:
			errc <- fmt.Errorf("nodeops: node %T cannot read", n)
		}
	})
	if err != nil {
		return core.Bottom(), core.NoProcess, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case s := <-res:
		return s.v, s.server, nil
	case err := <-errc:
		return core.Bottom(), core.NoProcess, err
	case <-timer.C:
		return core.Bottom(), core.NoProcess, ErrTimeout
	}
}

// WriteKey runs a write of one register, waits for it to return ok, and
// reports the exact versioned value it stored. The value matters to
// pipelined callers: with several writes to one key in flight, a snapshot
// taken after completion may reflect a LATER write, so protocols
// implementing core.SNWriter hand back this write's own ⟨v, sn⟩. For
// legacy writers without it the value is ⊥ (sn unknown — such protocols
// predate pipelining and callers fall back to a snapshot).
func WriteKey(inv Invoke, reg core.RegisterID, v core.Value, timeout time.Duration) (core.VersionedValue, error) {
	done := make(chan core.VersionedValue, 1)
	errc := make(chan error, 1)
	err := inv(func(n core.Node) {
		switch w := n.(type) {
		case core.FallibleSNWriter:
			// Sharded nodes: the write may fail after invocation (a
			// forward refused or unacknowledged), so the callback
			// carries the error channel too.
			if err := w.WriteKeySNErr(reg, v, func(vv core.VersionedValue, werr error) {
				if werr != nil {
					errc <- werr
					return
				}
				done <- vv
			}); err != nil {
				errc <- err
			}
		case core.SNWriter:
			if err := w.WriteKeySN(reg, v, func(vv core.VersionedValue) { done <- vv }); err != nil {
				errc <- err
			}
		case core.KeyedWriter:
			if err := w.WriteKey(reg, v, func() { done <- core.Bottom() }); err != nil {
				errc <- err
			}
		case core.Writer:
			if reg != core.DefaultRegister {
				errc <- fmt.Errorf("nodeops: node %T cannot write %v", n, reg)
				return
			}
			if err := w.Write(v, func() { done <- core.Bottom() }); err != nil {
				errc <- err
			}
		default:
			errc <- fmt.Errorf("nodeops: node %T cannot write", n)
		}
	})
	if err != nil {
		return core.Bottom(), err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case vv := <-done:
		return vv, nil
	case err := <-errc:
		return core.Bottom(), err
	case <-timer.C:
		return core.Bottom(), ErrTimeout
	}
}

// WriteBatch stores several keys' values, waits for all of them to
// return ok, and reports the exact ⟨v, sn⟩ stored per entry (in entry
// order; ⊥ values for protocols predating core.SNBatchWriter/SNWriter).
// Protocols implementing a batch interface get the one-broadcast fast
// path; any other keyed writer is driven with one write per entry, all in
// flight concurrently, so the caller-facing semantics are uniform across
// protocols. Entries must be sorted by Reg with no duplicates.
func WriteBatch(inv Invoke, entries []core.KeyedWrite, timeout time.Duration) ([]core.KeyedValue, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("nodeops: empty batch")
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Reg >= entries[i].Reg {
			return nil, fmt.Errorf("nodeops: batch entries not sorted/unique at %v", entries[i].Reg)
		}
	}
	done := make(chan []core.KeyedValue, 1)
	errc := make(chan error, 1)
	err := inv(func(n core.Node) {
		if bw, ok := n.(core.FallibleSNBatchWriter); ok {
			if err := bw.WriteBatchSNErr(entries, func(kvs []core.KeyedValue, werr error) {
				if werr != nil {
					errc <- werr
					return
				}
				done <- kvs
			}); err != nil {
				errc <- err
			}
			return
		}
		if bw, ok := n.(core.SNBatchWriter); ok {
			if err := bw.WriteBatchSN(entries, func(kvs []core.KeyedValue) { done <- kvs }); err != nil {
				errc <- err
			}
			return
		}
		if bw, ok := n.(core.BatchWriter); ok {
			if err := bw.WriteBatch(entries, func() { done <- nil }); err != nil {
				errc <- err
			}
			return
		}
		// Per-entry fallback. out and remaining are only touched by per-key
		// done callbacks, which all run on the node's loop goroutine — no
		// lock needed.
		out := make([]core.KeyedValue, len(entries))
		remaining := len(entries)
		finishOne := func(i int, vv core.VersionedValue) {
			out[i] = core.KeyedValue{Reg: entries[i].Reg, Value: vv}
			remaining--
			if remaining == 0 {
				done <- out
			}
		}
		switch kw := n.(type) {
		case core.SNWriter:
			for i, e := range entries {
				i := i
				if err := kw.WriteKeySN(e.Reg, e.Val, func(vv core.VersionedValue) { finishOne(i, vv) }); err != nil {
					errc <- err
					return
				}
			}
		case core.KeyedWriter:
			for i, e := range entries {
				i := i
				if err := kw.WriteKey(e.Reg, e.Val, func() { finishOne(i, core.Bottom()) }); err != nil {
					errc <- err
					return
				}
			}
		default:
			errc <- fmt.Errorf("nodeops: node %T cannot write batches", n)
		}
	})
	if err != nil {
		return nil, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case kvs := <-done:
		if kvs == nil {
			// Legacy batch writer: values unknown; report ⊥ per entry.
			kvs = make([]core.KeyedValue, len(entries))
			for i, e := range entries {
				kvs[i] = core.KeyedValue{Reg: e.Reg, Value: core.Bottom()}
			}
		}
		return kvs, nil
	case err := <-errc:
		return nil, err
	case <-timer.C:
		return nil, ErrTimeout
	}
}

// SnapshotKey returns the node's local copy of one register (for checking
// and metrics; not a protocol read).
func SnapshotKey(inv Invoke, reg core.RegisterID, timeout time.Duration) (core.VersionedValue, error) {
	res := make(chan core.VersionedValue, 1)
	if err := inv(func(n core.Node) {
		if s, ok := n.(core.KeyedSnapshotter); ok {
			res <- s.SnapshotKey(reg)
			return
		}
		if reg == core.DefaultRegister {
			res <- n.Snapshot()
			return
		}
		res <- core.Bottom()
	}); err != nil {
		return core.Bottom(), err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case v := <-res:
		return v, nil
	case <-timer.C:
		return core.Bottom(), ErrTimeout
	}
}

// WaitActive blocks until the node's join has returned, polling on its
// loop goroutine every poll interval, or until timeout.
func WaitActive(inv Invoke, poll, timeout time.Duration) error {
	if poll <= 0 {
		poll = time.Millisecond
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		done := make(chan bool, 1)
		if err := inv(func(n core.Node) { done <- n.Active() }); err != nil {
			return err
		}
		select {
		case active := <-done:
			if active {
				return nil
			}
		case <-deadline.C:
			return ErrTimeout
		}
		select {
		case <-ticker.C:
		case <-deadline.C:
			return ErrTimeout
		}
	}
}
