package benchshard

import (
	"testing"
	"time"
)

// TestShardScalingFloor asserts the capacity claim conservatively: with
// per-node client load and replication factor fixed, quadrupling the
// node count must at least double aggregate throughput. (The ideal
// ratio is 4x; CI machines are noisy and the live runtime has shared
// scheduling overhead, so the floor is deliberately lenient — the
// BENCH_shard.json artifact tracks the real ratio per PR.)
func TestShardScalingFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock benchmark; skipped in -short")
	}
	rep, err := Run(Config{
		Sizes:          []int{3, 12},
		Shards:         32,
		Replication:    3,
		Delta:          5,
		Tick:           time.Millisecond,
		WorkersPerNode: 4,
		OpsPerWorker:   25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sizes) != 2 {
		t.Fatalf("sizes = %+v", rep.Sizes)
	}
	small, large := rep.Sizes[0], rep.Sizes[1]
	t.Logf("N=%d: %.1f ops/sec; N=%d: %.1f ops/sec (ratio %.2fx)",
		small.Nodes, small.OpsPerSec, large.Nodes, large.OpsPerSec, large.OpsPerSec/small.OpsPerSec)
	if small.OpsPerSec <= 0 || large.OpsPerSec <= 0 {
		t.Fatalf("degenerate throughput: %+v", rep.Sizes)
	}
	if ratio := large.OpsPerSec / small.OpsPerSec; ratio < 2.0 {
		t.Fatalf("aggregate throughput ratio N=12/N=3 = %.2fx, want >= 2x (sharding buys no capacity?)", ratio)
	}
}

// TestRunAllSizes smoke-tests the default three-point curve quickly.
func TestRunAllSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark; skipped in -short")
	}
	rep, err := Run(Config{
		Sizes:          []int{2, 4},
		Shards:         16,
		Replication:    2,
		Delta:          3,
		Tick:           time.Millisecond,
		WorkersPerNode: 2,
		OpsPerWorker:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sizes) != 2 || rep.Sizes[0].Ops != 2*2*5 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.ScalingRatio) != 1 {
		t.Fatalf("scaling ratio missing: %+v", rep.ScalingRatio)
	}
}
