// Package benchshard measures what sharding buys: AGGREGATE operation
// throughput as a function of node count at a FIXED replication factor.
// It runs the synchronous protocol sharded S ways with R replicas on the
// live (goroutine, wall-clock) runtime, offers every node the same
// per-node client load — a fixed number of writer clients per node, each
// writing a key whose shard that node is primary for (smart client-side
// routing, no forwarding hop) — and reports aggregate ops/sec per
// cluster size.
//
// Unsharded, every write costs n message deliveries and every node
// stores every key, so adding nodes adds no capacity — aggregate
// throughput is flat (or worse) in n. Sharded at fixed R, a write costs
// R deliveries whatever the cluster size and keys spread over the
// membership, so aggregate throughput grows with the node count — the
// BENCH_shard.json artifact (via cmd/benchjson) tracks the measured
// ratio per PR, and this package's own test asserts a conservative
// scaling floor.
package benchshard

import (
	"fmt"
	"sync"
	"time"

	"churnreg/internal/core"
	"churnreg/internal/livenet"
	"churnreg/internal/placement"
	"churnreg/internal/shard"
	"churnreg/internal/sim"
	"churnreg/internal/syncreg"
)

// Config parameterizes one run.
type Config struct {
	// Sizes are the cluster sizes to measure (default 3, 6, 12).
	Sizes []int
	// Shards is S (default 32); Replication is R (default 3) — fixed
	// across every size, which is the point.
	Shards      int
	Replication int
	// Delta is δ in ticks (default 5); Tick its real duration (default
	// 1ms).
	Delta sim.Duration
	Tick  time.Duration
	// WorkersPerNode is the number of writer clients per node (default
	// 4), each owning one key that hashes to a shard the node is primary
	// for.
	WorkersPerNode int
	// OpsPerWorker is how many sequential writes each client issues
	// (default 30).
	OpsPerWorker int
	// OpTimeout bounds one operation (default 30s).
	OpTimeout time.Duration
}

func (c *Config) fillDefaults() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{3, 6, 12}
	}
	if c.Shards <= 0 {
		c.Shards = 32
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.Delta <= 0 {
		c.Delta = 5
	}
	if c.Tick <= 0 {
		c.Tick = time.Millisecond
	}
	if c.WorkersPerNode <= 0 {
		c.WorkersPerNode = 4
	}
	if c.OpsPerWorker <= 0 {
		c.OpsPerWorker = 30
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 30 * time.Second
	}
}

// SizeResult is one cluster size's measurement.
type SizeResult struct {
	Nodes     int     `json:"nodes"`
	Workers   int     `json:"workers"`
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// Report is the machine-readable result (BENCH_shard.json).
type Report struct {
	Name           string       `json:"name"`
	Protocol       string       `json:"protocol"`
	Shards         int          `json:"shards"`
	Replication    int          `json:"replication"`
	DeltaTicks     int64        `json:"delta_ticks"`
	TickNS         int64        `json:"tick_ns"`
	WorkersPerNode int          `json:"workers_per_node"`
	OpsPerWorker   int          `json:"ops_per_worker"`
	Sizes          []SizeResult `json:"sizes"`
	// ScalingRatio maps "N=a vs N=b" to the aggregate ops/sec ratio —
	// the capacity claim in one number (largest vs smallest size).
	ScalingRatio map[string]float64 `json:"scaling_ratio"`
}

// Run executes the benchmark.
func Run(cfg Config) (*Report, error) {
	cfg.fillDefaults()
	rep := &Report{
		Name:           "shard",
		Protocol:       "sync",
		Shards:         cfg.Shards,
		Replication:    cfg.Replication,
		DeltaTicks:     int64(cfg.Delta),
		TickNS:         int64(cfg.Tick),
		WorkersPerNode: cfg.WorkersPerNode,
		OpsPerWorker:   cfg.OpsPerWorker,
		ScalingRatio:   map[string]float64{},
	}
	for _, n := range cfg.Sizes {
		res, err := runSize(cfg, n)
		if err != nil {
			return nil, err
		}
		rep.Sizes = append(rep.Sizes, res)
	}
	if len(rep.Sizes) >= 2 {
		first, last := rep.Sizes[0], rep.Sizes[len(rep.Sizes)-1]
		if first.OpsPerSec > 0 {
			key := fmt.Sprintf("N=%d vs N=%d", last.Nodes, first.Nodes)
			rep.ScalingRatio[key] = last.OpsPerSec / first.OpsPerSec
		}
	}
	return rep, nil
}

func runSize(cfg Config, n int) (SizeResult, error) {
	cl, err := livenet.New(livenet.Config{
		N:       n,
		Delta:   cfg.Delta,
		Tick:    cfg.Tick,
		Factory: shard.Factory(syncreg.Factory(syncreg.Options{})),
		Seed:    uint64(n),
		Placement: placement.Config{
			Shards:      cfg.Shards,
			Replication: cfg.Replication,
		},
	})
	if err != nil {
		return SizeResult{}, err
	}
	defer cl.Close()

	// Smart routing: each worker owns one key whose shard its node is
	// PRIMARY for, and writes it at that node — the single-writer-per-
	// key discipline, spread over the whole membership.
	view := cl.Placement()
	if view == nil {
		return SizeResult{}, fmt.Errorf("benchshard: no placement view")
	}
	type assignment struct {
		node core.ProcessID
		key  core.RegisterID
	}
	// First pass caps each node at WorkersPerNode; a second pass fills
	// any remainder regardless of cap (a node can be primary for zero
	// shards when S is small relative to n — its share of the offered
	// load then lands on the others, which only skews, never blocks).
	total := n * cfg.WorkersPerNode
	var work []assignment
	perNode := make(map[core.ProcessID]int)
	used := make(map[core.RegisterID]bool)
	for key := core.RegisterID(0); len(work) < total && key < core.RegisterID(100000); key++ {
		primary := view.Group(key)[0]
		if perNode[primary] >= cfg.WorkersPerNode {
			continue
		}
		perNode[primary]++
		used[key] = true
		work = append(work, assignment{node: primary, key: key})
	}
	for key := core.RegisterID(0); len(work) < total && key < core.RegisterID(100000); key++ {
		if used[key] {
			continue
		}
		work = append(work, assignment{node: view.Group(key)[0], key: key})
	}
	if len(work) < total {
		return SizeResult{}, fmt.Errorf("benchshard: could not assign %d workers over %d nodes", total, n)
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(work))
	start := time.Now()
	for _, a := range work {
		a := a
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < cfg.OpsPerWorker; i++ {
				if _, err := cl.WriteKey(a.node, a.key, core.Value(i), cfg.OpTimeout); err != nil {
					errs <- fmt.Errorf("benchshard: n=%d write %v at %v: %w", n, a.key, a.node, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return SizeResult{}, err
	default:
	}
	ops := len(work) * cfg.OpsPerWorker
	return SizeResult{
		Nodes:     n,
		Workers:   len(work),
		Ops:       ops,
		Seconds:   elapsed.Seconds(),
		OpsPerSec: float64(ops) / elapsed.Seconds(),
	}, nil
}
