package nettransport

// White-box tests for the coalescing write path: drain is driven directly
// with scripted net.Conns, so batch formation, partial-write failure,
// inflight requeue, and HELLO ordering are all checked deterministically —
// no real sockets, no timing.

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"churnreg/internal/core"
	"churnreg/internal/esyncreg"
	"churnreg/internal/sim"
	"churnreg/internal/wire"
)

// scriptConn is a net.Conn whose Write appends to a buffer until failAfter
// bytes have been accepted in total; the write that crosses the budget
// takes the partial prefix and returns an error, exactly the shape of a
// mid-batch TCP failure. failAfter < 0 never fails.
type scriptConn struct {
	mu        sync.Mutex
	buf       bytes.Buffer
	failAfter int
	closed    bool
}

func (c *scriptConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	if c.failAfter >= 0 {
		room := c.failAfter - c.buf.Len()
		if room < len(p) {
			if room > 0 {
				c.buf.Write(p[:room])
			}
			return max(room, 0), errors.New("scripted connection failure")
		}
	}
	return c.buf.Write(p)
}

func (c *scriptConn) bytesWritten() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...)
}

func (c *scriptConn) Read(p []byte) (int, error) { return 0, net.ErrClosed }
func (c *scriptConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}
func (c *scriptConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *scriptConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *scriptConn) SetDeadline(t time.Time) error      { return nil }
func (c *scriptConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *scriptConn) SetWriteDeadline(t time.Time) error { return nil }

// newDrainHarness builds an inert transport (no Start: no goroutines) plus
// a peer whose queue holds payloads numbered 0..frames-1.
func newDrainHarness(t *testing.T, frames int, cfg func(*Config)) (*Transport, *peer, [][]byte) {
	t.Helper()
	c := Config{
		ID:         1,
		ListenAddr: "127.0.0.1:0",
		N:          3,
		Delta:      5,
		Factory:    esyncreg.Factory(esyncreg.Options{}),
		Bootstrap:  true,
	}
	if cfg != nil {
		cfg(&c)
	}
	tr, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	p := &peer{addr: "test", id: 2, out: make(chan []byte, tr.cfg.QueueLen), quit: make(chan struct{})}
	payloads := make([][]byte, 0, frames)
	for i := 0; i < frames; i++ {
		payload, err := wire.EncodeFrame(wire.Frame{
			Type: wire.FrameMsg,
			From: 1,
			Msg:  core.WriteMsg{From: 1, Value: core.VersionedValue{Val: core.Value(i), SN: core.SeqNum(i + 1)}, Reg: 7, Op: core.OpID(i + 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, payload)
		p.out <- payload
	}
	return tr, p, payloads
}

// drainUntilIdle runs drain against conn, releasing it via the peer's quit
// channel once the queue has been consumed (drain otherwise blocks waiting
// for more frames).
func drainUntilIdle(t *testing.T, tr *Transport, p *peer, conn net.Conn) bool {
	t.Helper()
	done := make(chan bool, 1)
	go func() { done <- p.drain(tr, conn, make(chan struct{})) }()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case redial := <-done:
			return redial
		case <-deadline:
			t.Fatal("drain did not settle")
		case <-time.After(time.Millisecond):
			if len(p.out) == 0 {
				p.stop() // all consumed: ask drain to exit cleanly
			}
		}
	}
}

// scanAll decodes every complete frame in b, tolerating a truncated tail
// (the remains of a partial write).
func scanAll(t *testing.T, b []byte) []wire.Frame {
	t.Helper()
	sc := wire.NewScanner(bytes.NewReader(b))
	var out []wire.Frame
	for {
		f, err := sc.Next()
		if err != nil {
			return out
		}
		out = append(out, f)
	}
}

func TestDrainCoalescesQueueIntoFewWrites(t *testing.T) {
	const frames = 100
	tr, p, _ := newDrainHarness(t, frames, nil)
	conn := &scriptConn{failAfter: -1}
	if redial := drainUntilIdle(t, tr, p, conn); redial {
		t.Fatal("clean drain asked for a redial")
	}
	got := scanAll(t, conn.bytesWritten())
	if len(got) != frames+1 {
		t.Fatalf("scanned %d frames, want %d (HELLO + %d msgs)", len(got), frames+1, frames)
	}
	if got[0].Type != wire.FrameHello {
		t.Fatalf("first frame = %v, want HELLO", got[0].Type)
	}
	// All 100 frames were queued before the connection existed, so the
	// batcher must have amortized aggressively: at most ceil(100/64)+1
	// flushes, hence a coalescing factor well above 1.
	writes := tr.stats.FlushWrites.Load()
	if writes == 0 || writes > 3 {
		t.Fatalf("FlushWrites = %d, want 1..3 for %d pre-queued frames", writes, frames)
	}
	if fpw := tr.stats.FramesPerWrite(); fpw < 2 {
		t.Fatalf("FramesPerWrite = %.1f, want >= 2", fpw)
	}
	if tr.stats.FlushedFrames.Load() != frames {
		t.Fatalf("FlushedFrames = %d, want %d", tr.stats.FlushedFrames.Load(), frames)
	}
	if last := tr.stats.LastBatchFrames.Load(); last == 0 {
		t.Fatal("LastBatchFrames gauge never set")
	}
}

func TestDrainRespectsFrameBudget(t *testing.T) {
	const frames = 10
	tr, p, _ := newDrainHarness(t, frames, func(c *Config) { c.BatchFrames = 4 })
	conn := &scriptConn{failAfter: -1}
	drainUntilIdle(t, tr, p, conn)
	if writes := tr.stats.FlushWrites.Load(); writes != 3 { // 4+4+2
		t.Fatalf("FlushWrites = %d with BatchFrames=4 over %d frames, want 3", writes, frames)
	}
	if last := tr.stats.LastBatchFrames.Load(); last != 2 {
		t.Fatalf("LastBatchFrames = %d, want the final batch of 2", last)
	}
}

func TestDrainPartialWriteRequeuesWholeBatch(t *testing.T) {
	const frames = 8
	// Let the HELLO (small) through, then fail 10 bytes into the first
	// coalesced batch: a partial write of a mid-frame prefix.
	tr, p, payloads := newDrainHarness(t, frames, nil)
	helloLen := 0
	{
		hello, err := wire.EncodeFrame(tr.helloFrame())
		if err != nil {
			t.Fatal(err)
		}
		helloLen = len(wire.FrameBytes(hello))
	}
	conn := &scriptConn{failAfter: helloLen + 10}
	done := make(chan bool, 1)
	go func() { done <- p.drain(tr, conn, make(chan struct{})) }()
	select {
	case redial := <-done:
		if !redial {
			t.Fatal("broken connection should ask for a redial")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not notice the failed write")
	}
	if len(p.inflight) != frames {
		t.Fatalf("inflight holds %d frames after mid-batch death, want the whole batch of %d", len(p.inflight), frames)
	}
	// Reconnect: a fresh conn must carry HELLO first, then every requeued
	// frame, in order, decodable by the canonical scanner.
	conn2 := &scriptConn{failAfter: -1}
	if redial := drainUntilIdle(t, tr, p, conn2); redial {
		t.Fatal("clean drain asked for a redial")
	}
	if len(p.inflight) != 0 {
		t.Fatalf("inflight not cleared after successful retry: %d", len(p.inflight))
	}
	got := scanAll(t, conn2.bytesWritten())
	if len(got) != frames+1 {
		t.Fatalf("retry connection carried %d frames, want %d", len(got), frames+1)
	}
	if got[0].Type != wire.FrameHello {
		t.Fatalf("first frame on reconnect = %v, want HELLO (identity before traffic)", got[0].Type)
	}
	for i, f := range got[1:] {
		want, err := wire.DecodeFrame(payloads[i])
		if err != nil {
			t.Fatal(err)
		}
		if f.Msg.(core.WriteMsg) != want.Msg.(core.WriteMsg) {
			t.Fatalf("requeued frame %d = %+v, want %+v", i, f.Msg, want.Msg)
		}
	}
}

func TestDrainHelloPrecedesRequeuedFrames(t *testing.T) {
	// Even with inflight frames waiting from a dead connection, the new
	// connection's first frame must be HELLO — the remote drops protocol
	// frames from links whose identity it cannot bind.
	tr, p, _ := newDrainHarness(t, 3, nil)
	conn := &scriptConn{} // failAfter 0: every write fails immediately
	done := make(chan bool, 1)
	go func() { done <- p.drain(tr, conn, make(chan struct{})) }()
	if redial := <-done; !redial {
		t.Fatal("want redial after total write failure")
	}
	// The HELLO write itself failed, so nothing reached the wire; the
	// queue still holds the frames. Drain again on a good conn.
	conn2 := &scriptConn{failAfter: -1}
	drainUntilIdle(t, tr, p, conn2)
	got := scanAll(t, conn2.bytesWritten())
	if len(got) == 0 || got[0].Type != wire.FrameHello {
		t.Fatalf("first frame = %+v, want HELLO before batched frames", got)
	}
	if len(got) != 4 {
		t.Fatalf("got %d frames, want HELLO + 3", len(got))
	}
}

func TestMailboxStallCounted(t *testing.T) {
	tr, err := New(Config{
		ID:         1,
		ListenAddr: "127.0.0.1:0",
		N:          3,
		Delta:      5,
		Factory:    esyncreg.Factory(esyncreg.Options{}),
		Bootstrap:  true,
		MailboxLen: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// The loop is not running (no Start), so the first enqueue fills the
	// 1-slot mailbox and the second stalls until Close releases it.
	tr.enqueue(func() {})
	released := make(chan struct{})
	go func() {
		tr.enqueue(func() {})
		close(released)
	}()
	deadline := time.After(5 * time.Second)
	for tr.stats.MailboxStalls.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("mailbox stall never counted")
		case <-time.After(time.Millisecond):
		}
	}
	tr.Close()
	<-released
}

func TestCloseStopsTrackedTimers(t *testing.T) {
	tr, err := New(Config{
		ID:         1,
		ListenAddr: "127.0.0.1:0",
		N:          3,
		Delta:      5,
		Tick:       time.Hour, // timers far in the future: they must be stopped, not awaited
		Factory:    esyncreg.Factory(esyncreg.Options{}),
		Bootstrap:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Send(1, core.TokenMsg{From: 1})    // self-send: one tracked timer
	tr.After(sim.Duration(10), func() {}) // protocol timer: another
	tr.Broadcast(core.TokenMsg{From: 1})  // loopback: a third
	tr.mu.Lock()
	pending := len(tr.timers)
	tr.mu.Unlock()
	if pending != 3 {
		t.Fatalf("tracked timers = %d, want 3", pending)
	}
	tr.Close()
	tr.mu.Lock()
	after := tr.timers
	tr.mu.Unlock()
	if after != nil {
		t.Fatalf("timers not released on Close: %d still tracked", len(after))
	}
	// And scheduling after Close is a no-op, not a leak.
	tr.After(sim.Duration(10), func() {})
	tr.mu.Lock()
	if tr.timers != nil {
		t.Fatal("After on a closed transport tracked a timer")
	}
	tr.mu.Unlock()
}
