// Package nettransport runs one register-protocol process over real TCP.
// It implements the same core.Env contract as internal/livenet and the
// deterministic simulator, so the protocol state machines of
// internal/syncreg, internal/esyncreg, internal/abd and
// internal/multiwriter run over actual sockets unmodified — this is the
// transport behind cmd/regserve and the public NetCluster.
//
// # Topology
//
// Every process listens on one TCP address and dials every peer it knows,
// so a healthy system is a full mesh (two connections per pair — one
// dialed by each side — which keeps connection ownership trivial: a
// process only ever writes protocol traffic to connections it dialed).
// The address book maps core.ProcessID to listen address and is built by
// a handshake-plus-gossip scheme:
//
//   - The first frame on every dialed connection is HELLO(id, listenAddr).
//   - The acceptor replies on the same connection with its own HELLO and a
//     PEERS frame carrying its whole address book, then gossips the
//     newcomer's entry to every peer it already knows.
//   - Receivers of PEERS entries dial any process they did not yet know.
//
// A fresh process therefore joins by dialing any live subset of the
// system ("seeds"): within a round-trip it knows — and is known by —
// every reachable process, exactly the precondition the paper's join
// protocol needs for its INQUIRY broadcast.
//
// # Reliability
//
// Each known peer has a dedicated outbound queue drained by a writer
// goroutine that dials, redials with backoff, and re-sends HELLO after
// every reconnect. Frames enqueued while the link is down wait in the
// queue (bounded; overflow drops the oldest-queued frame and counts it —
// the paper's channels are fair-lossy, and both protocols tolerate loss
// of individual messages). The paper's broadcast primitive guarantees
// delivery to every process present at the broadcast; for the one message
// where late delivery changes correctness — a joiner's INQUIRY — the
// transport replays the broadcast to peers learned while the join is
// still in progress, so discovering the membership and inquiring over it
// are not racy.
//
// # Concurrency
//
// Exactly livenet's discipline: the node's handlers run only on the
// process's single mailbox goroutine; connection readers, timer callbacks
// and client operations enqueue closures onto that mailbox. Everything
// else (address book, connection set) is guarded by one mutex.
package nettransport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"churnreg/internal/core"
	"churnreg/internal/nodeops"
	"churnreg/internal/placement"
	"churnreg/internal/sim"
	"churnreg/internal/wire"
)

// ErrClosed is returned once the transport has been shut down.
var ErrClosed = errors.New("nettransport: transport closed")

// Config assembles one TCP-backed process.
type Config struct {
	// ID is this process's identity. The operator (or NetCluster) must
	// keep IDs unique across the whole system's lifetime — the paper's
	// infinite-arrival model never reuses one.
	ID core.ProcessID
	// ListenAddr is the TCP address to bind ("127.0.0.1:0" for an
	// ephemeral port; Addr() reports the bound address).
	ListenAddr string
	// N is the constant system size every process knows.
	N int
	// Delta is δ in ticks.
	Delta sim.Duration
	// Tick is the real duration of one tick (default 1ms). δ×Tick must
	// comfortably exceed network latency plus scheduling slop for the
	// synchronous protocol.
	Tick time.Duration
	// Factory builds the protocol node.
	Factory core.NodeFactory
	// Bootstrap marks one of the n initial processes (active immediately,
	// holding the initial values).
	Bootstrap bool
	// Initial is register 0's initial value (bootstrap only).
	Initial core.VersionedValue
	// InitialKeys optionally pre-provisions further registers (bootstrap
	// only; ascending Reg order).
	InitialKeys []core.KeyedValue
	// DialTimeout bounds one connection attempt (default 1s).
	DialTimeout time.Duration
	// HandshakeWait bounds how long Start waits for seed handshakes before
	// starting the protocol anyway (default 2s; dead seeds are expected —
	// a replacement process is often handed the address of the process it
	// replaces).
	HandshakeWait time.Duration
	// QueueLen is the per-peer outbound queue capacity (default 512;
	// regserve -queue). Overflow drops the oldest-queued frame (the links
	// are fair-lossy) and counts it in Stats.QueueDrops.
	QueueLen int
	// MailboxLen is the capacity of the process's event-loop mailbox
	// (default 512; regserve -mailbox). A full mailbox makes enqueuers
	// wait and counts a Stats.MailboxStalls.
	MailboxLen int
	// BatchFrames caps how many queued frames one coalesced flush may
	// carry (default 64): peer writers greedily drain their queue into a
	// single buffered write, so a deep queue costs one syscall per batch,
	// not one per frame.
	BatchFrames int
	// BatchBytes caps a coalesced flush's payload bytes (default 64 KiB):
	// the frame budget alone would let a few giant snapshot frames build
	// an unboundedly large write buffer.
	BatchBytes int
	// EvictAfter drops a peer whose dials have failed continuously for
	// this long (default 15s). Graceful departures announce themselves
	// with LEAVE, but that frame is best-effort (the leaver's links may
	// be down at the moment of departure) and crashes announce nothing;
	// under the paper's infinite-arrival model a departed process never
	// returns under the same identity, so persistent unreachability IS
	// departure — eviction keeps survivors from redialing dead addresses
	// forever.
	EvictAfter time.Duration
	// Logf, when set, receives transport-level diagnostics.
	Logf func(format string, args ...any)
	// Placement, when enabled, shards the keyspace: the transport
	// rebuilds the placement view from its identified address book (plus
	// itself) whenever a peer is learned, leaves, or is evicted, exposes
	// it to the protocol via core.Placed, and notifies the node (the
	// internal/shard wrapper) on its loop. Pair with a shard.Factory-
	// wrapped Factory; every process of one system must agree on the
	// Shards/Replication numbers (like N, they are deployment constants).
	Placement placement.Config
}

func (c *Config) fillDefaults() error {
	if c.ID == core.NoProcess {
		return fmt.Errorf("nettransport: ID must be a real process id")
	}
	if c.N <= 0 {
		return fmt.Errorf("nettransport: N = %d, want > 0", c.N)
	}
	if c.Delta < 1 {
		return fmt.Errorf("nettransport: Delta = %d, want >= 1", c.Delta)
	}
	if c.Factory == nil {
		return fmt.Errorf("nettransport: nil factory")
	}
	if c.Tick <= 0 {
		c.Tick = time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
	if c.HandshakeWait <= 0 {
		c.HandshakeWait = 2 * time.Second
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 512
	}
	if c.MailboxLen <= 0 {
		c.MailboxLen = 512
	}
	if c.BatchFrames <= 0 {
		c.BatchFrames = 64
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 64 << 10
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 15 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if err := c.Placement.Validate(); err != nil {
		return fmt.Errorf("nettransport: %w", err)
	}
	return nil
}

// Stats counts transport activity (read under no lock; all fields are
// atomics).
type Stats struct {
	FramesSent     atomic.Uint64
	FramesReceived atomic.Uint64
	QueueDrops     atomic.Uint64 // frames dropped on a full peer queue
	SendUnknown    atomic.Uint64 // sends to ids with no address-book entry
	Reconnects     atomic.Uint64 // successful dials beyond a peer's first
	DecodeErrors   atomic.Uint64
	// FlushWrites counts frame-carrying conn.Write calls issued by peer
	// writers draining their queues; FlushedFrames counts the frames those
	// writes carried. Their ratio (FramesPerWrite) is the coalescing
	// factor: 1.0 means every frame paid its own syscall, higher means the
	// batcher is amortizing.
	FlushWrites   atomic.Uint64
	FlushedFrames atomic.Uint64
	// LastBatchFrames is a gauge: the frame count of the most recently
	// flushed batch.
	LastBatchFrames atomic.Uint64
	// MailboxStalls counts enqueues that found the event-loop mailbox full
	// and had to wait — sustained growth means the loop is the bottleneck
	// (raise -mailbox, or shed load).
	MailboxStalls atomic.Uint64
}

// FramesPerWrite reports the average coalescing factor — frames flushed
// per frame-carrying conn.Write — and 0 before the first flush.
func (s *Stats) FramesPerWrite() float64 {
	w := s.FlushWrites.Load()
	if w == 0 {
		return 0
	}
	return float64(s.FlushedFrames.Load()) / float64(w)
}

// task is one unit of event-loop work: a message delivery carried unboxed
// (msg != nil) so the frame-receive hot path pays no closure allocation,
// or an arbitrary closure (timers, client operations).
type task struct {
	fn   func()
	from core.ProcessID
	msg  core.Message
}

// Transport hosts one protocol process over TCP.
type Transport struct {
	cfg   Config
	ln    net.Listener
	start time.Time

	node    core.Node
	mailbox chan task
	quit    chan struct{}
	stopped sync.Once
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu     sync.Mutex
	byAddr map[string]*peer
	byID   map[core.ProcessID]*peer
	conns  map[net.Conn]struct{}
	// sessions holds the live client sessions (accepted connections whose
	// HELLO declared wire.RoleClient), keyed by the negative pseudo-id the
	// transport minted for each. Client sessions are served, never meshed:
	// they are absent from the address book, the gossip, and the placement.
	sessions map[core.ProcessID]*clientSession
	// sessionSeq mints session pseudo-ids (negated, so they can never
	// collide with real process ids, which are positive by construction).
	sessionSeq int64
	// timers tracks pending time.AfterFunc timers (self-sends, loopbacks,
	// protocol After callbacks) so Close stops them instead of leaking
	// each until it fires — the livenet fix from PR 2, mirrored.
	timers map[*time.Timer]struct{}
	closed bool
	// pendingInquiry is the encoded join INQUIRY to replay to peers
	// learned while this process's join is still running (see package
	// comment); nil once active.
	pendingInquiry []byte
	// viewSeq stamps successive placement views (guarded by mu).
	viewSeq uint64

	// view is the current placement over the identified peers plus self
	// (nil when sharding is disabled). Written under mu, read lock-free
	// by the protocol on the loop goroutine.
	view atomic.Pointer[placement.View]

	active atomic.Bool
	stats  Stats
}

var _ core.Env = (*Transport)(nil)

// New binds the listener and builds the protocol node. The transport is
// inert (no goroutines, no dialing) until Start.
func New(cfg Config) (*Transport, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("nettransport: listen %s: %w", cfg.ListenAddr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t := &Transport{
		cfg:      cfg,
		ln:       ln,
		start:    time.Now(),
		mailbox:  make(chan task, cfg.MailboxLen),
		quit:     make(chan struct{}),
		ctx:      ctx,
		cancel:   cancel,
		byAddr:   make(map[string]*peer),
		byID:     make(map[core.ProcessID]*peer),
		conns:    make(map[net.Conn]struct{}),
		sessions: make(map[core.ProcessID]*clientSession),
		timers:   make(map[*time.Timer]struct{}),
	}
	t.node = cfg.Factory(t, core.SpawnContext{
		Bootstrap:   cfg.Bootstrap,
		Initial:     cfg.Initial,
		InitialKeys: cfg.InitialKeys,
	})
	return t, nil
}

// Addr returns the bound listen address.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// Start launches the event loop and network goroutines, dials the seed
// addresses, and starts the protocol node — for a non-bootstrap process
// that begins its join, which is how a fresh OS process enters the
// system. It returns immediately; use WaitActive to block until the join
// completes.
//
// The protocol node is started only once the seeds' handshakes settle (or
// the handshake window closes — dead seeds must not wedge a join
// forever): a joiner's INQUIRY broadcast then reaches the full discovered
// membership, and peers discovered even later get the replay described in
// the package comment. The wait happens off the caller's goroutine
// because bootstrap processes have nothing to wait for and joiners are
// awaited through WaitActive anyway.
func (t *Transport) Start(seeds []string) {
	t.wg.Add(2)
	go t.loop()
	go t.acceptLoop()
	n := 0
	for _, addr := range seeds {
		if addr == "" || addr == t.Addr() {
			continue
		}
		t.mu.Lock()
		t.ensurePeerLocked(core.NoProcess, addr)
		t.mu.Unlock()
		n++
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		if n > 0 {
			t.awaitHandshakes(n)
		}
		// Publish the placement over whatever membership the handshakes
		// discovered (just self for a seedless bootstrap) before the
		// protocol starts.
		t.refreshPlacement()
		t.enqueue(func() { t.node.Start() })
	}()
}

// awaitHandshakes polls until want peers have announced their identity or
// the handshake window closes.
func (t *Transport) awaitHandshakes(want int) {
	deadline := time.Now().Add(t.cfg.HandshakeWait)
	for time.Now().Before(deadline) {
		t.mu.Lock()
		got := len(t.byID)
		t.mu.Unlock()
		if got >= want {
			return
		}
		select {
		case <-t.quit:
			return
		case <-time.After(2 * time.Millisecond):
		}
	}
	t.cfg.Logf("nettransport %v: handshake window closed with %d/%d seeds", t.cfg.ID, t.PeerCount(), want)
}

// Close shuts the process down abruptly: no LEAVE is sent, mirroring a
// crash. Blocks until every transport goroutine exits.
func (t *Transport) Close() {
	t.stopped.Do(func() {
		close(t.quit)
		t.cancel()
		t.mu.Lock()
		t.closed = true
		t.ln.Close()
		for conn := range t.conns {
			conn.Close()
		}
		for _, p := range t.byAddr {
			p.stop()
		}
		for tm := range t.timers {
			tm.Stop()
		}
		t.timers = nil
		t.mu.Unlock()
	})
	t.wg.Wait()
}

// Leave departs gracefully: a LEAVE frame tells every peer to drop this
// process from its address book (so nobody keeps redialing a gone
// process), queues get a moment to flush, then the transport closes.
func (t *Transport) Leave() {
	payload, err := wire.EncodeFrame(wire.Frame{Type: wire.FrameLeave, From: t.cfg.ID})
	if err == nil {
		t.mu.Lock()
		ps := t.peersLocked()
		t.mu.Unlock()
		for _, p := range ps {
			p.send(t, payload)
		}
		// Bounded flush: wait for the queues to drain (writers re-check
		// every frame) rather than a fixed sleep.
		deadline := time.Now().Add(500 * time.Millisecond)
		for time.Now().Before(deadline) {
			empty := true
			t.mu.Lock()
			for _, p := range t.byAddr {
				if len(p.out) > 0 {
					empty = false
				}
			}
			t.mu.Unlock()
			if empty {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		// One extra tick so flushed bytes clear the kernel buffers before
		// the sockets are torn down.
		time.Sleep(10 * time.Millisecond)
	}
	t.Close()
}

// DropConnections closes every open TCP connection without touching the
// listener or the address book: readers exit, writers redial, queued
// frames survive. This is the chaos hook the transport tests use to
// exercise mid-operation reconnects.
func (t *Transport) DropConnections() {
	t.mu.Lock()
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// PeerCount returns the number of identified peers in the address book.
func (t *Transport) PeerCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byID)
}

// Peers returns the identified address book (for health endpoints).
func (t *Transport) Peers() []wire.Peer {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]wire.Peer, 0, len(t.byID))
	for id, p := range t.byID {
		out = append(out, wire.Peer{ID: id, Addr: p.addr})
	}
	return out
}

// Stats exposes the transport counters.
func (t *Transport) Stats() *Stats { return &t.stats }

// Active reports whether the hosted process completed its join (cheap:
// backed by an atomic fed from MarkActive, not a loop round-trip).
func (t *Transport) Active() bool { return t.active.Load() }

// Invoke runs fn on the process's loop goroutine — the only legal way to
// touch the node. It returns without waiting for fn to run.
func (t *Transport) Invoke(fn func(core.Node)) error {
	select {
	case <-t.quit:
		return ErrClosed
	default:
	}
	if !t.post(task{fn: func() { fn(t.node) }}) {
		return ErrClosed
	}
	return nil
}

func (t *Transport) invoker() nodeops.Invoke { return t.Invoke }

// WaitActive blocks until the join has returned, or until timeout.
func (t *Transport) WaitActive(timeout time.Duration) error {
	return nodeops.WaitActive(t.invoker(), t.cfg.Tick, timeout)
}

// ReadKey runs a read of one register and waits for its result.
func (t *Transport) ReadKey(reg core.RegisterID, timeout time.Duration) (core.VersionedValue, error) {
	return nodeops.ReadKey(t.invoker(), reg, timeout)
}

// ReadKeyServed is ReadKey plus the process that served the read: this
// process for local/quorum serves, the answering replica for forwarded
// reads on a sharded node.
func (t *Transport) ReadKeyServed(reg core.RegisterID, timeout time.Duration) (core.VersionedValue, core.ProcessID, error) {
	v, server, err := nodeops.ReadKeyServed(t.invoker(), reg, timeout)
	if err == nil && server == core.NoProcess {
		server = t.cfg.ID
	}
	return v, server, err
}

// WriteKey runs a write of one register, waits for it to return ok, and
// reports the exact ⟨v, sn⟩ it stored. Safe for concurrent callers: each
// call pipelines as its own operation on the node.
func (t *Transport) WriteKey(reg core.RegisterID, v core.Value, timeout time.Duration) (core.VersionedValue, error) {
	return nodeops.WriteKey(t.invoker(), reg, v, timeout)
}

// WriteBatch stores several keys' values, waits for all of them, and
// reports the stored ⟨v, sn⟩ per entry.
func (t *Transport) WriteBatch(entries []core.KeyedWrite, timeout time.Duration) ([]core.KeyedValue, error) {
	return nodeops.WriteBatch(t.invoker(), entries, timeout)
}

// SnapshotKey returns the node's local copy of one register.
func (t *Transport) SnapshotKey(reg core.RegisterID, timeout time.Duration) (core.VersionedValue, error) {
	return nodeops.SnapshotKey(t.invoker(), reg, timeout)
}

// ---- core.Env ----

// ID implements core.Env.
func (t *Transport) ID() core.ProcessID { return t.cfg.ID }

// Now implements core.Env: ticks elapsed since the transport was built.
func (t *Transport) Now() sim.Time {
	return sim.Time(time.Since(t.start) / t.cfg.Tick)
}

// Send implements core.Env: point-to-point, via the peer's outbound
// queue. A send to self loops back through the mailbox after one tick —
// the quorum protocols count their own replies, exactly as in the
// simulator and livenet.
func (t *Transport) Send(to core.ProcessID, m core.Message) {
	select {
	case <-t.quit:
		return
	default:
	}
	if to == t.cfg.ID {
		t.afterFunc(t.cfg.Tick, func() { t.enqueueDeliver(to, m) })
		return
	}
	payload, err := t.encodeMsg(m)
	if err != nil {
		t.cfg.Logf("nettransport %v: encode %v: %v", t.cfg.ID, m.Kind(), err)
		return
	}
	if to < core.NoProcess {
		// Negative ids are client-session pseudo-ids: the reply rides the
		// session's own connection (a session is never dialed back).
		t.mu.Lock()
		s := t.sessions[to]
		t.mu.Unlock()
		if s == nil {
			t.stats.SendUnknown.Add(1)
			return
		}
		s.send(t, payload)
		return
	}
	t.mu.Lock()
	p := t.byID[to]
	t.mu.Unlock()
	if p == nil {
		t.stats.SendUnknown.Add(1)
		return
	}
	p.send(t, payload)
}

// Broadcast implements core.Env: the frame goes to every process in the
// address book, plus loopback to self after one tick (the simulator's and
// livenet's contract). A join INQUIRY is additionally remembered for
// replay to peers learned while the join is still running.
func (t *Transport) Broadcast(m core.Message) {
	select {
	case <-t.quit:
		return
	default:
	}
	payload, err := t.encodeMsg(m)
	if err != nil {
		t.cfg.Logf("nettransport %v: encode %v: %v", t.cfg.ID, m.Kind(), err)
		return
	}
	if inq, ok := m.(core.InquiryMsg); ok && inq.RSN == core.JoinReadSeq && !t.active.Load() {
		t.mu.Lock()
		t.pendingInquiry = payload
		t.mu.Unlock()
	}
	self := m
	t.afterFunc(t.cfg.Tick, func() { t.enqueueDeliver(t.cfg.ID, self) })
	t.mu.Lock()
	ps := t.peersLocked()
	t.mu.Unlock()
	for _, p := range ps {
		p.send(t, payload)
	}
}

// After implements core.Env: fn runs on the loop goroutine after d ticks,
// suppressed once the process has shut down. The timer is tracked, so a
// Close before it fires stops it rather than leaking it.
func (t *Transport) After(d sim.Duration, fn func()) {
	t.afterFunc(time.Duration(d)*t.cfg.Tick, func() { t.enqueue(fn) })
}

// afterFunc schedules fn on a tracked timer: Close stops every pending
// one, so a torn-down transport holds no timer (or its goroutine, once
// fired) alive until the deadline. No-op once closed.
func (t *Transport) afterFunc(d time.Duration, fn func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	var tm *time.Timer
	tm = time.AfterFunc(d, func() {
		// Untrack first. The map read of tm is ordered after the
		// registration below by t.mu.
		t.mu.Lock()
		delete(t.timers, tm)
		t.mu.Unlock()
		fn()
	})
	t.timers[tm] = struct{}{}
}

// Delta implements core.Env.
func (t *Transport) Delta() sim.Duration { return t.cfg.Delta }

// SystemSize implements core.Env.
func (t *Transport) SystemSize() int { return t.cfg.N }

// MarkActive implements core.Env: records join completion for Health and
// retires the pending-INQUIRY replay.
func (t *Transport) MarkActive() {
	t.active.Store(true)
	t.mu.Lock()
	t.pendingInquiry = nil
	t.mu.Unlock()
}

// Placement implements core.Placed: the current view over the
// identified peers plus self, nil when sharding is disabled.
func (t *Transport) Placement() core.PlacementView {
	if v := t.view.Load(); v != nil {
		return v
	}
	return nil
}

// ShardInfo reports the placement configuration and this node's share of
// it under the current view: total shards (0 when unsharded), shards
// this node replicates, and the configured replication factor.
func (t *Transport) ShardInfo() (shards, owned, replication int) {
	if !t.cfg.Placement.Enabled() {
		return 0, 0, 0
	}
	v := t.view.Load()
	if v == nil {
		return t.cfg.Placement.Shards, 0, t.cfg.Placement.Replication
	}
	return v.NumShards(), v.OwnedCount(t.cfg.ID), t.cfg.Placement.Replication
}

// refreshPlacement rebuilds the placement view from the identified
// address book plus self, publishes it for the protocol's lock-free
// reads, and posts PlacementChanged to the node's loop. Called whenever
// a peer is learned, leaves, or is evicted. Even with sharding disabled
// the membership change is versioned and pushed to the connected client
// sessions, so an SDK client's server list tracks the live system.
func (t *Transport) refreshPlacement() {
	sharded := t.cfg.Placement.Enabled()
	t.mu.Lock()
	if sharded {
		members := make([]core.ProcessID, 0, len(t.byID)+1)
		members = append(members, t.cfg.ID)
		for id := range t.byID {
			members = append(members, id)
		}
		view := placement.Build(t.cfg.Placement, members)
		t.viewSeq++
		if view != nil {
			view.SetVersion(t.viewSeq)
		}
		t.view.Store(view)
	} else {
		t.viewSeq++
	}
	vf := t.viewFrameLocked()
	sessions := make([]*clientSession, 0, len(t.sessions))
	for _, s := range t.sessions {
		sessions = append(sessions, s)
	}
	t.mu.Unlock()
	if len(sessions) > 0 {
		if payload, err := wire.EncodeFrame(vf); err == nil {
			for _, s := range sessions {
				s.send(t, payload)
			}
		}
	}
	if !sharded {
		return
	}
	t.enqueue(func() {
		if pa, ok := t.node.(core.PlacementAware); ok {
			pa.PlacementChanged(t.Placement())
		}
	})
}

// viewFrameLocked snapshots the placement bootstrap a client session
// needs: the current view version, the deployment's placement constants
// (zero when unsharded), and the member address book including self.
// The client rebuilds the same placement.View locally — Build is
// deterministic in the member ids — so the frame need not carry the
// group tables. t.mu held.
func (t *Transport) viewFrameLocked() wire.Frame {
	f := wire.Frame{Type: wire.FrameView, ViewVersion: t.viewSeq}
	if t.cfg.Placement.Enabled() {
		f.Shards = uint32(t.cfg.Placement.Shards)
		f.Replication = uint32(t.cfg.Placement.Replication)
	}
	f.Peers = append(f.Peers, wire.Peer{ID: t.cfg.ID, Addr: t.Addr()})
	for id, p := range t.byID {
		f.Peers = append(f.Peers, wire.Peer{ID: id, Addr: p.addr})
	}
	return f
}

// ---- internals ----

func (t *Transport) encodeMsg(m core.Message) ([]byte, error) {
	return wire.EncodeFrame(wire.Frame{Type: wire.FrameMsg, From: t.cfg.ID, Msg: m})
}

func (t *Transport) loop() {
	defer t.wg.Done()
	for {
		select {
		case tk := <-t.mailbox:
			if tk.msg != nil {
				t.node.Deliver(tk.from, tk.msg)
			} else {
				tk.fn()
			}
		case <-t.quit:
			return
		}
	}
}

// enqueue posts fn to the loop, giving up if the process stops first.
func (t *Transport) enqueue(fn func()) {
	t.post(task{fn: fn})
}

// enqueueDeliver posts one message delivery to the loop without building a
// closure — the per-frame receive path.
func (t *Transport) enqueueDeliver(from core.ProcessID, m core.Message) {
	t.post(task{from: from, msg: m})
}

// post is the one mailbox protocol every producer shares: try without
// blocking, count a stall if the mailbox is full, then wait for a slot
// (backpressure on producers beats dropping loop work). Reports whether
// the task was accepted (false: the transport stopped first).
func (t *Transport) post(tk task) bool {
	select {
	case t.mailbox <- tk:
		return true
	default:
	}
	t.stats.MailboxStalls.Add(1)
	select {
	case t.mailbox <- tk:
		return true
	case <-t.quit:
		return false
	}
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.quit:
				return
			default:
			}
			// Transient accept failure; back off briefly and retry.
			select {
			case <-time.After(10 * time.Millisecond):
				continue
			case <-t.quit:
				return
			}
		}
		if !t.trackConn(conn) {
			conn.Close()
			return
		}
		t.wg.Add(1)
		go t.readConn(conn, nil, true, nil)
	}
}

// trackConn registers an open connection for shutdown/chaos teardown.
func (t *Transport) trackConn(conn net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	t.conns[conn] = struct{}{}
	return true
}

func (t *Transport) untrackConn(conn net.Conn) {
	t.mu.Lock()
	delete(t.conns, conn)
	t.mu.Unlock()
}

// peersLocked snapshots the outbound peers (t.mu held).
func (t *Transport) peersLocked() []*peer {
	out := make([]*peer, 0, len(t.byAddr))
	for _, p := range t.byAddr {
		out = append(out, p)
	}
	return out
}

// helloFrame is the first frame on every dialed connection.
func (t *Transport) helloFrame() wire.Frame {
	return wire.Frame{Type: wire.FrameHello, From: t.cfg.ID, Addr: t.Addr()}
}

// peersFrame snapshots the identified address book, including self.
func (t *Transport) peersFrame() wire.Frame {
	t.mu.Lock()
	defer t.mu.Unlock()
	peers := make([]wire.Peer, 0, len(t.byID)+1)
	peers = append(peers, wire.Peer{ID: t.cfg.ID, Addr: t.Addr()})
	for id, p := range t.byID {
		peers = append(peers, wire.Peer{ID: id, Addr: p.addr})
	}
	return wire.Frame{Type: wire.FramePeers, Peers: peers}
}

// ensurePeerLocked returns the outbound peer for addr, creating (and
// launching) it if absent. id may be NoProcess when unknown. t.mu held.
func (t *Transport) ensurePeerLocked(id core.ProcessID, addr string) *peer {
	if t.closed {
		return nil
	}
	p, ok := t.byAddr[addr]
	if !ok {
		p = &peer{
			addr: addr,
			id:   id,
			out:  make(chan []byte, t.cfg.QueueLen),
			quit: make(chan struct{}),
		}
		t.byAddr[addr] = p
		t.wg.Add(1)
		go p.run(t)
	}
	if id != core.NoProcess && p.id == core.NoProcess {
		p.id = id
	}
	if p.id != core.NoProcess {
		t.byID[p.id] = p
	}
	return p
}

// learnPeer records that process id listens at addr, dialing it and
// gossiping its existence if it is new. Safe from any goroutine.
func (t *Transport) learnPeer(id core.ProcessID, addr string) {
	if id == t.cfg.ID || id == core.NoProcess || addr == "" || addr == t.Addr() {
		return
	}
	t.mu.Lock()
	if _, known := t.byID[id]; known {
		// Possibly the seed peer just got its identity bound; make sure
		// the addr index exists, then nothing to announce.
		t.ensurePeerLocked(id, addr)
		t.mu.Unlock()
		t.refreshPlacement()
		return
	}
	p := t.ensurePeerLocked(id, addr)
	others := make([]*peer, 0, len(t.byAddr))
	for _, q := range t.byAddr {
		if q != p {
			others = append(others, q)
		}
	}
	pending := t.pendingInquiry
	t.mu.Unlock()
	if p == nil {
		return
	}
	t.cfg.Logf("nettransport %v: learned peer %v at %s", t.cfg.ID, id, addr)
	// Gossip the newcomer to everyone already known.
	if payload, err := wire.EncodeFrame(wire.Frame{
		Type:  wire.FramePeers,
		Peers: []wire.Peer{{ID: id, Addr: addr}},
	}); err == nil {
		for _, q := range others {
			q.send(t, payload)
		}
	}
	// Replay our in-flight join INQUIRY so the paper's "broadcast reaches
	// every present process" holds across the discovery race.
	if pending != nil && !t.active.Load() {
		p.send(t, pending)
	}
	t.refreshPlacement()
}

// evictPeer removes a peer its own writer has proven unreachable for
// EvictAfter. Guarded against the address having been re-registered.
func (t *Transport) evictPeer(p *peer) {
	t.mu.Lock()
	if t.byAddr[p.addr] == p {
		delete(t.byAddr, p.addr)
	}
	if p.id != core.NoProcess && t.byID[p.id] == p {
		delete(t.byID, p.id)
	}
	t.mu.Unlock()
	t.cfg.Logf("nettransport %v: evicted unreachable peer %v at %s", t.cfg.ID, p.id, p.addr)
	p.stop()
	t.refreshPlacement()
}

// forgetPeer removes a departed process: its writer stops redialing.
func (t *Transport) forgetPeer(id core.ProcessID) {
	t.mu.Lock()
	p := t.byID[id]
	if p != nil {
		delete(t.byID, id)
		delete(t.byAddr, p.addr)
	}
	t.mu.Unlock()
	if p != nil {
		t.cfg.Logf("nettransport %v: peer %v left", t.cfg.ID, id)
		p.stop()
		t.refreshPlacement()
	}
}

// readConn drains one connection. own is the outbound peer the connection
// belongs to (nil for accepted connections); accepted connections answer
// the remote's HELLO with our HELLO + address book — the only writes ever
// issued on an inbound connection, all from this goroutine. An accepted
// HELLO declaring wire.RoleClient turns the connection into a client
// session instead: all later writes to it flow through the session's own
// writer goroutine, and its operations are delivered under the session's
// pseudo-id (so the shard wrapper's FORWARD machinery serves or refuses
// them exactly as it would a relaying peer's). onDead, when set, runs
// once the connection stops being readable, so an idle writer learns its
// link died without having to write into it.
func (t *Transport) readConn(conn net.Conn, own *peer, accepted bool, onDead func()) {
	defer t.wg.Done()
	defer t.untrackConn(conn)
	defer conn.Close()
	if onDead != nil {
		defer onDead()
	}
	var sess *clientSession
	defer func() {
		if sess != nil {
			t.dropSession(sess)
		}
	}()
	// One buffered scanner per connection: header and payload reads go
	// through bufio (a batched flush from the remote surfaces as one
	// kernel read), and the payload buffer is reused across frames.
	sc := wire.NewScanner(conn)
	for {
		f, err := sc.Next()
		if err != nil {
			if !isClosedErr(err) {
				t.stats.DecodeErrors.Add(1)
				t.cfg.Logf("nettransport %v: read %s: %v", t.cfg.ID, conn.RemoteAddr(), err)
			}
			return
		}
		t.stats.FramesReceived.Add(1)
		switch f.Type {
		case wire.FrameHello:
			if accepted && f.Role == wire.RoleClient {
				if sess == nil {
					if sess = t.newClientSession(conn); sess == nil {
						return
					}
					// The handshake reply — our identity plus the placement
					// bootstrap — rides the session writer like every later
					// frame, so it can never interleave with op replies.
					t.sessionHello(sess)
				}
				continue
			}
			if own != nil && f.From != core.NoProcess {
				// The acceptor's HELLO reply on a connection we dialed:
				// bind the peer's identity.
				t.mu.Lock()
				t.ensurePeerLocked(f.From, own.addr)
				t.mu.Unlock()
			}
			t.learnPeer(f.From, f.Addr)
			if accepted {
				conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
				if err := wire.WriteFrame(conn, t.helloFrame()); err != nil {
					return
				}
				if err := wire.WriteFrame(conn, t.peersFrame()); err != nil {
					return
				}
				conn.SetWriteDeadline(time.Time{})
				t.stats.FramesSent.Add(2)
			}
		case wire.FramePeers:
			for _, p := range f.Peers {
				t.learnPeer(p.ID, p.Addr)
			}
		case wire.FrameMsg:
			if sess != nil {
				// A session may only submit FORWARDs (client operations).
				// Its From is overwritten with the session pseudo-id: the
				// shard wrapper's reply then routes back here via Send's
				// negative-id path, whatever id the client claimed.
				if fm, ok := f.Msg.(core.ForwardMsg); ok {
					fm.From = sess.pid
					t.enqueueDeliver(sess.pid, fm)
				}
				continue
			}
			t.enqueueDeliver(f.From, f.Msg)
		case wire.FrameLeave:
			if sess != nil {
				continue
			}
			t.forgetPeer(f.From)
		case wire.FrameViewReq:
			if sess != nil {
				t.mu.Lock()
				vf := t.viewFrameLocked()
				t.mu.Unlock()
				if payload, err := wire.EncodeFrame(vf); err == nil {
					sess.send(t, payload)
				}
			}
		}
	}
}

// newClientSession registers a client session for an accepted connection,
// minting its pseudo-id and starting its writer. Returns nil when the
// transport is closing.
func (t *Transport) newClientSession(conn net.Conn) *clientSession {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.sessionSeq++
	s := &clientSession{
		pid:  core.ProcessID(-t.sessionSeq),
		conn: conn,
		out:  make(chan []byte, t.cfg.QueueLen),
		quit: make(chan struct{}),
	}
	t.sessions[s.pid] = s
	t.wg.Add(1)
	go s.writer(t)
	return s
}

// sessionHello enqueues the handshake reply for a fresh client session:
// our HELLO (naming the serving process) and the current VIEW.
func (t *Transport) sessionHello(s *clientSession) {
	t.mu.Lock()
	vf := t.viewFrameLocked()
	t.mu.Unlock()
	if payload, err := wire.EncodeFrame(t.helloFrame()); err == nil {
		s.send(t, payload)
	}
	if payload, err := wire.EncodeFrame(vf); err == nil {
		s.send(t, payload)
	}
}

// dropSession unregisters a finished client session and stops its writer.
func (t *Transport) dropSession(s *clientSession) {
	t.mu.Lock()
	if t.sessions[s.pid] == s {
		delete(t.sessions, s.pid)
	}
	t.mu.Unlock()
	s.stop()
}

// isClosedErr reports whether err is the ordinary end of a connection
// (remote closed or crashed, or we tore it down) rather than a protocol
// problem worth logging.
func isClosedErr(err error) bool {
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// clientSession is the serving side of one external SDK connection: a
// bounded reply queue drained by a writer goroutine that coalesces
// frames into batched writes, mirroring the peer writer minus the
// dialing (a session lives exactly as long as its accepted connection —
// reconnecting is the client's job, and a reconnect is a new session).
type clientSession struct {
	// pid is the negative pseudo-id this session's operations are
	// delivered under; replies Sent to it route back here.
	pid     core.ProcessID
	conn    net.Conn
	out     chan []byte
	quit    chan struct{}
	stopped sync.Once
	// scratch and flushBuf are the writer's reusable batch state
	// (writer-goroutine-owned), as in peer.
	scratch  [][]byte
	flushBuf []byte
}

func (s *clientSession) stop() { s.stopped.Do(func() { close(s.quit) }) }

// send enqueues an encoded payload for the session, dropping the oldest
// queued frame when the queue is full — the same fair-lossy discipline
// as peer queues (the client times out and retries; blocking here would
// stall a node-loop reply path on one slow client).
func (s *clientSession) send(t *Transport, payload []byte) {
	select {
	case <-s.quit:
		return
	default:
	}
	select {
	case s.out <- payload:
		t.stats.FramesSent.Add(1)
	default:
		select {
		case <-s.out:
			t.stats.QueueDrops.Add(1)
		default:
		}
		select {
		case s.out <- payload:
			t.stats.FramesSent.Add(1)
		default:
			t.stats.QueueDrops.Add(1)
		}
	}
}

// writer drains the session queue into coalesced writes until the
// session or the transport stops, or the connection breaks. Closing the
// connection on exit also unblocks the session's reader.
func (s *clientSession) writer(t *Transport) {
	defer t.wg.Done()
	maxFrames, maxBytes := t.cfg.BatchFrames, t.cfg.BatchBytes
	for {
		select {
		case <-s.quit:
			return
		case <-t.quit:
			return
		case payload := <-s.out:
			batch := append(s.scratch[:0], payload)
			size := len(payload)
			for len(batch) < maxFrames && size < maxBytes {
				select {
				case more := <-s.out:
					batch = append(batch, more)
					size += len(more)
				default:
					size = maxBytes // queue empty: stop gathering
				}
			}
			s.scratch = batch[:0]
			buf := s.flushBuf[:0]
			for _, p := range batch {
				buf = wire.AppendPayloadBytes(buf, p)
			}
			s.flushBuf = buf
			s.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			if _, err := s.conn.Write(buf); err != nil {
				s.conn.Close()
				return
			}
			t.stats.FlushWrites.Add(1)
			t.stats.FlushedFrames.Add(uint64(len(batch)))
			t.stats.LastBatchFrames.Store(uint64(len(batch)))
		}
	}
}

// peer is one outbound link: a queue drained by a dial/redial writer that
// coalesces queued frames into batched writes.
type peer struct {
	addr string
	// id is the peer's identity once learned (guarded by the transport's
	// mutex; NoProcess until the peer's HELLO arrives).
	id      core.ProcessID
	out     chan []byte
	quit    chan struct{}
	stopped sync.Once
	// inflight holds the payloads of a batch whose write failed when the
	// connection broke; drain retries them first after the reconnect
	// (only the writer goroutine touches it). Frames the remote had not
	// yet read from its kernel buffer are still lost — the link is
	// fair-lossy, not reliable — but requeuing the batch we were holding
	// shrinks the loss window considerably (the protocols tolerate the
	// duplicates a partially-delivered batch implies).
	inflight [][]byte
	// scratch and flushBuf are the writer's reusable batch state: the
	// payload slice gathered per flush and the single buffer the whole
	// batch is rendered into (length prefixes included) for its one
	// conn.Write. Writer-goroutine-owned.
	scratch  [][]byte
	flushBuf []byte
}

func (p *peer) stop() { p.stopped.Do(func() { close(p.quit) }) }

// send enqueues an encoded payload, dropping the oldest queued frame when
// the queue is full (fair-lossy links; blocking would stall the sender's
// protocol loop, which is worse than a lost message).
func (p *peer) send(t *Transport, payload []byte) {
	select {
	case <-p.quit:
		return
	default:
	}
	select {
	case p.out <- payload:
		t.stats.FramesSent.Add(1)
	default:
		select {
		case <-p.out:
			t.stats.QueueDrops.Add(1)
		default:
		}
		select {
		case p.out <- payload:
			t.stats.FramesSent.Add(1)
		default:
			t.stats.QueueDrops.Add(1)
		}
	}
}

// run is the peer's writer goroutine: dial (with backoff), handshake,
// drain the queue, redial on error — until the peer or the transport
// stops, or the peer proves dead (dials failing for EvictAfter).
func (p *peer) run(t *Transport) {
	defer t.wg.Done()
	dialer := net.Dialer{Timeout: t.cfg.DialTimeout}
	backoff := 25 * time.Millisecond
	first := true
	var failingSince time.Time
	for {
		select {
		case <-p.quit:
			return
		case <-t.quit:
			return
		default:
		}
		conn, err := dialer.DialContext(t.ctx, "tcp", p.addr)
		if err != nil {
			if failingSince.IsZero() {
				failingSince = time.Now()
			} else if time.Since(failingSince) > t.cfg.EvictAfter {
				t.evictPeer(p)
				return
			}
			select {
			case <-p.quit:
				return
			case <-t.quit:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > 500*time.Millisecond {
				backoff = 500 * time.Millisecond
			}
			continue
		}
		failingSince = time.Time{}
		backoff = 25 * time.Millisecond
		if !first {
			t.stats.Reconnects.Add(1)
		}
		first = false
		if !t.trackConn(conn) {
			conn.Close()
			return
		}
		// The connection is full duplex: the remote's HELLO reply and any
		// traffic it pushes back arrive on this reader. The reader also
		// watches for the link dying while the writer is idle: connDead
		// unblocks drain so the redial (and eventually eviction) happens
		// even with no frame to send.
		connDead := make(chan struct{})
		t.wg.Add(1)
		go t.readConn(conn, p, false, func() { close(connDead) })
		if !p.drain(t, conn, connDead) {
			return
		}
	}
}

// drain writes HELLO, then coalesces queued frames into batched writes —
// greedily pulling every ready frame up to the configured frame/byte
// budget and flushing the whole batch in ONE conn.Write — until the
// connection breaks (returns true: redial) or the peer stops (returns
// false). HELLO always leads its connection: it is flushed alone, before
// any requeued or freshly queued frame, so the remote binds the link's
// identity before protocol traffic arrives.
func (p *peer) drain(t *Transport, conn net.Conn, connDead <-chan struct{}) bool {
	write := func(b []byte) bool {
		conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Write(b); err != nil {
			conn.Close()
			return false
		}
		return true
	}
	hello, err := wire.EncodeFrame(t.helloFrame())
	if err != nil || !write(wire.FrameBytes(hello)) {
		return err == nil
	}
	t.stats.FramesSent.Add(1)

	// flush renders batch into one buffer — length prefixes included —
	// and writes it with a single syscall. On failure the whole batch is
	// requeued: the kernel may have taken a prefix of it, so the remote
	// can see duplicates after the redial, which the protocols tolerate
	// (quorums dedupe by sender, merges are idempotent).
	flush := func(batch [][]byte) bool {
		buf := p.flushBuf[:0]
		for _, payload := range batch {
			buf = wire.AppendPayloadBytes(buf, payload)
		}
		p.flushBuf = buf
		if !write(buf) {
			p.inflight = append(p.inflight, batch...)
			return false
		}
		t.stats.FlushWrites.Add(1)
		t.stats.FlushedFrames.Add(uint64(len(batch)))
		t.stats.LastBatchFrames.Store(uint64(len(batch)))
		return true
	}

	// Retry the batch the previous connection died holding.
	if len(p.inflight) > 0 {
		batch := p.inflight
		p.inflight = nil
		if !flush(batch) {
			return true
		}
	}
	maxFrames, maxBytes := t.cfg.BatchFrames, t.cfg.BatchBytes
	for {
		select {
		case <-p.quit:
			conn.Close()
			return false
		case <-t.quit:
			conn.Close()
			return false
		case <-connDead:
			conn.Close()
			return true
		case payload := <-p.out:
			// Greedily gather everything already queued, up to budget:
			// under pipelined load the queue refills faster than the
			// kernel takes writes, so most flushes carry many frames.
			batch := append(p.scratch[:0], payload)
			size := len(payload)
			for len(batch) < maxFrames && size < maxBytes {
				select {
				case more := <-p.out:
					batch = append(batch, more)
					size += len(more)
				default:
					size = maxBytes // queue empty: stop gathering
				}
			}
			p.scratch = batch[:0]
			if !flush(batch) {
				return true
			}
		}
	}
}
