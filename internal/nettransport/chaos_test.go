package nettransport

import (
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"churnreg/internal/core"
	"churnreg/internal/esyncreg"
	"churnreg/internal/nodeops"
	"churnreg/internal/syncreg"
)

// grabGoroutineBaseline snapshots the goroutine count before a test and
// returns a check that fails if the count has not returned to (near) the
// baseline after the test's transports close. Timer goroutines and the
// runtime's own background workers come and go, so the check polls with a
// deadline instead of comparing one instant.
func grabGoroutineBaseline(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		var n int
		for time.Now().Before(deadline) {
			n = runtime.NumGoroutine()
			if n <= base+2 {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		stacks := string(buf)
		leaked := 0
		for _, frame := range strings.Split(stacks, "\n\n") {
			if strings.Contains(frame, "nettransport") {
				leaked++
				t.Logf("leaked goroutine:\n%s", frame)
			}
		}
		t.Fatalf("goroutine leak: %d goroutines, baseline %d (%d in nettransport frames)", n, base, leaked)
	}
}

// TestChaosConnectionDropsESync injects connection drops and forced
// reconnects while quorum reads and writes are in flight: every operation
// must either complete with a legal value or time out cleanly, the system
// must recover full service once the chaos stops, and no goroutine may
// outlive the transports.
func TestChaosConnectionDropsESync(t *testing.T) {
	checkLeaks := grabGoroutineBaseline(t)
	duration := 2 * time.Second
	if testing.Short() {
		duration = 400 * time.Millisecond
	}

	ts := startCluster(t, 3, esyncreg.Factory(esyncreg.Options{}), 5)
	for _, tr := range ts {
		waitPeerCount(t, tr, 2)
	}

	var (
		stop     atomic.Bool
		mu       sync.Mutex
		written  = make(map[core.RegisterID][]core.Value) // values ever written per key
		timeouts atomic.Uint64
		oks      atomic.Uint64
	)
	opTO := 1500 * time.Millisecond

	var wg sync.WaitGroup
	// Writer: fresh key per operation so a read or write wedged by a lost
	// quorum round (the paper assumes reliable channels; the transport's
	// links are fair-lossy under chaos) can only ever wedge its own key.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		next := core.RegisterID(1)
		for !stop.Load() {
			k := next
			next++
			v := core.Value(rng.Int63n(1 << 30))
			mu.Lock()
			written[k] = append(written[k], v)
			mu.Unlock()
			_, err := ts[0].WriteKey(k, v, opTO)
			switch {
			case err == nil:
				oks.Add(1)
			case errors.Is(err, nodeops.ErrTimeout):
				timeouts.Add(1)
			default:
				t.Errorf("write %v: unexpected error: %v", k, err)
				return
			}
		}
	}()
	// Readers: read recent keys on random nodes; a returned value must be
	// one actually written to that key (or the implicit initial 0).
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				mu.Lock()
				hi := core.RegisterID(len(written))
				mu.Unlock()
				if hi == 0 {
					time.Sleep(time.Millisecond)
					continue
				}
				k := 1 + core.RegisterID(rng.Int63n(int64(hi)))
				v, err := ts[rng.Intn(len(ts))].ReadKey(k, opTO)
				switch {
				case err == nil:
					oks.Add(1)
					mu.Lock()
					legal := v.Val == 0 // implicit initial
					for _, w := range written[k] {
						if v.Val == w {
							legal = true
							break
						}
					}
					mu.Unlock()
					if !legal {
						t.Errorf("read %v returned %v, never written to that key", k, v)
						return
					}
				case errors.Is(err, nodeops.ErrTimeout), errors.Is(err, core.ErrOpInProgress):
					timeouts.Add(1)
				default:
					t.Errorf("read %v: unexpected error: %v", k, err)
					return
				}
			}
		}(int64(100 + r))
	}
	// Chaos: force drops on random transports; every drop kills the TCP
	// connections mid-frame and the writers redial.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(9))
		for !stop.Load() {
			ts[rng.Intn(len(ts))].DropConnections()
			time.Sleep(time.Duration(20+rng.Intn(40)) * time.Millisecond)
		}
	}()

	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Recovery: with the chaos stopped, full service must return — a
	// write and a cross-node read on a fresh key succeed within one
	// generous timeout.
	k := core.RegisterID(1 << 20)
	if _, err := ts[0].WriteKey(k, 777, 10*time.Second); err != nil {
		t.Fatalf("post-chaos write did not recover: %v", err)
	}
	v, err := ts[2].ReadKey(k, 10*time.Second)
	if err != nil {
		t.Fatalf("post-chaos read did not recover: %v", err)
	}
	if v.Val != 777 {
		t.Fatalf("post-chaos read %v, want 777", v)
	}
	t.Logf("chaos summary: %d ops ok, %d timed out, %d reconnects, %d queue drops",
		oks.Load(), timeouts.Load(), ts[0].Stats().Reconnects.Load(), ts[0].Stats().QueueDrops.Load())
	if oks.Load() == 0 {
		t.Fatal("no operation completed during chaos")
	}

	for _, tr := range ts {
		tr.Close()
	}
	checkLeaks()
}

// TestChaosDropsSync exercises the synchronous protocol's fire-and-forget
// writes under connection drops: writes always return after δ, reads stay
// local, and shutdown leaks nothing.
func TestChaosDropsSync(t *testing.T) {
	checkLeaks := grabGoroutineBaseline(t)
	duration := time.Second
	if testing.Short() {
		duration = 300 * time.Millisecond
	}
	ts := startCluster(t, 3, syncreg.Factory(syncreg.Options{}), 20)
	for _, tr := range ts {
		waitPeerCount(t, tr, 2)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(4))
		for !stop.Load() {
			ts[rng.Intn(len(ts))].DropConnections()
			time.Sleep(time.Duration(10+rng.Intn(30)) * time.Millisecond)
		}
	}()
	var v core.Value
	for end := time.Now().Add(duration); time.Now().Before(end); {
		v++
		if _, err := ts[0].WriteKey(3, v, 5*time.Second); err != nil {
			t.Fatalf("sync write %d: %v", v, err)
		}
		if _, err := ts[0].ReadKey(3, 5*time.Second); err != nil {
			t.Fatalf("sync local read: %v", err)
		}
	}
	stop.Store(true)
	wg.Wait()
	for _, tr := range ts {
		tr.Close()
	}
	checkLeaks()
}

// TestCloseIsIdempotentAndLeakFree closes transports twice, one of them
// mid-handshake, and checks nothing is left running.
func TestCloseIsIdempotentAndLeakFree(t *testing.T) {
	checkLeaks := grabGoroutineBaseline(t)
	tr, err := New(Config{
		ID: 1, ListenAddr: "127.0.0.1:0", N: 3, Delta: 5,
		Factory: esyncreg.Factory(esyncreg.Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seed it with a black-hole address: the dialer must not survive Close.
	tr.Start([]string{"127.0.0.1:1"})
	time.Sleep(20 * time.Millisecond)
	tr.Close()
	tr.Close()
	checkLeaks()
}
