package nettransport

import (
	"testing"
	"time"

	"churnreg/internal/core"
	"churnreg/internal/esyncreg"
	"churnreg/internal/sim"
	"churnreg/internal/syncreg"
)

const opTimeout = 10 * time.Second

// startCluster boots n bootstrap transports on ephemeral localhost ports,
// fully meshed by seeding each with the others' addresses.
func startCluster(t *testing.T, n int, factory core.NodeFactory, delta sim.Duration) []*Transport {
	t.Helper()
	ts := make([]*Transport, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		tr, err := New(Config{
			ID:         core.ProcessID(i + 1),
			ListenAddr: "127.0.0.1:0",
			N:          n,
			Delta:      delta,
			Tick:       time.Millisecond,
			Factory:    factory,
			Bootstrap:  true,
			Initial:    core.VersionedValue{Val: 0, SN: 0},
		})
		if err != nil {
			t.Fatalf("New(%d): %v", i, err)
		}
		ts[i] = tr
		addrs[i] = tr.Addr()
	}
	for i, tr := range ts {
		seeds := make([]string, 0, n-1)
		for j, a := range addrs {
			if j != i {
				seeds = append(seeds, a)
			}
		}
		tr.Start(seeds)
	}
	t.Cleanup(func() {
		for _, tr := range ts {
			tr.Close()
		}
	})
	return ts
}

func waitPeerCount(t *testing.T, tr *Transport, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if tr.PeerCount() >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("transport %v: peer count %d, want >= %d", tr.ID(), tr.PeerCount(), want)
}

func TestSyncWriteReadOverTCP(t *testing.T) {
	ts := startCluster(t, 3, syncreg.Factory(syncreg.Options{}), 40)
	for _, tr := range ts {
		waitPeerCount(t, tr, 2)
	}
	if _, err := ts[0].WriteKey(core.DefaultRegister, 42, opTimeout); err != nil {
		t.Fatalf("write: %v", err)
	}
	// The write returned after δ; every process holds the value.
	for i, tr := range ts {
		v, err := tr.ReadKey(core.DefaultRegister, opTimeout)
		if err != nil {
			t.Fatalf("read at %d: %v", i, err)
		}
		if v.Val != 42 || v.SN != 1 {
			t.Fatalf("read at %d: got %v, want ⟨42,#1⟩", i, v)
		}
	}
}

func TestESyncQuorumOpsOverTCP(t *testing.T) {
	ts := startCluster(t, 3, esyncreg.Factory(esyncreg.Options{}), 5)
	for _, tr := range ts {
		waitPeerCount(t, tr, 2)
	}
	for i := 1; i <= 5; i++ {
		if _, err := ts[0].WriteKey(7, core.Value(100+i), opTimeout); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	v, err := ts[2].ReadKey(7, opTimeout)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if v.Val != 105 || v.SN != 5 {
		t.Fatalf("read got %v, want ⟨105,#5⟩", v)
	}
}

// TestJoinByDialing covers the tentpole's join path: a fresh transport
// given only seed addresses completes the paper's join protocol over TCP
// and then serves reads with the learned state.
func TestJoinByDialing(t *testing.T) {
	for _, proto := range []struct {
		name    string
		factory core.NodeFactory
		delta   sim.Duration
	}{
		{"sync", syncreg.Factory(syncreg.Options{}), 40},
		{"esync", esyncreg.Factory(esyncreg.Options{}), 5},
	} {
		t.Run(proto.name, func(t *testing.T) {
			ts := startCluster(t, 3, proto.factory, proto.delta)
			for _, tr := range ts {
				waitPeerCount(t, tr, 2)
			}
			if _, err := ts[0].WriteKey(core.DefaultRegister, 7, opTimeout); err != nil {
				t.Fatalf("write: %v", err)
			}
			if _, err := ts[0].WriteKey(33, 99, opTimeout); err != nil {
				t.Fatalf("write key 33: %v", err)
			}
			joiner, err := New(Config{
				ID:         4,
				ListenAddr: "127.0.0.1:0",
				N:          3,
				Delta:      proto.delta,
				Tick:       time.Millisecond,
				Factory:    proto.factory,
			})
			if err != nil {
				t.Fatalf("New joiner: %v", err)
			}
			defer joiner.Close()
			joiner.Start([]string{ts[0].Addr(), ts[1].Addr()})
			if err := joiner.WaitActive(opTimeout); err != nil {
				t.Fatalf("joiner never became active: %v", err)
			}
			v, err := joiner.ReadKey(core.DefaultRegister, opTimeout)
			if err != nil {
				t.Fatalf("joiner read: %v", err)
			}
			if v.Val != 7 {
				t.Fatalf("joiner read %v, want value 7", v)
			}
			// The join's one snapshot inquiry covered every key.
			v, err = joiner.ReadKey(33, opTimeout)
			if err != nil {
				t.Fatalf("joiner read key 33: %v", err)
			}
			if v.Val != 99 {
				t.Fatalf("joiner read key 33 = %v, want value 99", v)
			}
			// The joiner is dialable in turn: the gossip taught node 2 its
			// address even though the joiner never dialed it.
			waitPeerCount(t, ts[2], 3)
		})
	}
}

// TestGracefulLeaveRemovesPeer verifies LEAVE prunes the address book so
// nobody redials a departed process.
func TestGracefulLeaveRemovesPeer(t *testing.T) {
	ts := startCluster(t, 3, esyncreg.Factory(esyncreg.Options{}), 5)
	for _, tr := range ts {
		waitPeerCount(t, tr, 2)
	}
	ts[2].Leave()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ts[0].PeerCount() == 1 && ts[1].PeerCount() == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("peer books not pruned after leave: %d, %d", ts[0].PeerCount(), ts[1].PeerCount())
}

// TestCrashedPeerIsEvicted covers the no-LEAVE departure path: a peer
// that crashes (abrupt Close, nothing announced) must eventually fall out
// of survivors' address books instead of being redialed forever.
func TestCrashedPeerIsEvicted(t *testing.T) {
	factory := esyncreg.Factory(esyncreg.Options{})
	mk := func(id core.ProcessID) *Transport {
		tr, err := New(Config{
			ID: id, ListenAddr: "127.0.0.1:0", N: 2, Delta: 5,
			Tick: time.Millisecond, Factory: factory, Bootstrap: true,
			EvictAfter: 300 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := mk(1), mk(2)
	defer a.Close()
	a.Start([]string{b.Addr()})
	b.Start([]string{a.Addr()})
	waitPeerCount(t, a, 1)
	b.Close() // crash: no LEAVE frame
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if a.PeerCount() == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("crashed peer never evicted: %d peers", a.PeerCount())
}

// TestWriteBatchOverTCP drives the batched write path end to end.
func TestWriteBatchOverTCP(t *testing.T) {
	ts := startCluster(t, 3, syncreg.Factory(syncreg.Options{}), 40)
	for _, tr := range ts {
		waitPeerCount(t, tr, 2)
	}
	entries := []core.KeyedWrite{{Reg: 1, Val: 11}, {Reg: 2, Val: 22}, {Reg: 3, Val: 33}}
	if _, err := ts[0].WriteBatch(entries, opTimeout); err != nil {
		t.Fatalf("write batch: %v", err)
	}
	for _, e := range entries {
		v, err := ts[1].ReadKey(e.Reg, opTimeout)
		if err != nil {
			t.Fatalf("read %v: %v", e.Reg, err)
		}
		if v.Val != e.Val {
			t.Fatalf("read %v = %v, want %d", e.Reg, v, e.Val)
		}
	}
}

// TestSendToSelfLoopsBack pins the loopback contract the quorum protocols
// depend on (a node counts its own reply).
func TestSendToSelfLoopsBack(t *testing.T) {
	ts := startCluster(t, 1, esyncreg.Factory(esyncreg.Options{}), 5)
	// n=1: the majority is 1, satisfied purely by the node's own reply —
	// the operation only completes if self-send loops back.
	if _, err := ts[0].WriteKey(0, 5, opTimeout); err != nil {
		t.Fatalf("write: %v", err)
	}
	v, err := ts[0].ReadKey(0, opTimeout)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if v.Val != 5 {
		t.Fatalf("read %v, want 5", v)
	}
}
