package core

import (
	"testing"
	"testing/quick"
)

func TestBottomSentinel(t *testing.T) {
	b := Bottom()
	if !b.IsBottom() {
		t.Fatal("Bottom() is not bottom")
	}
	if b.SN != BottomSN {
		t.Fatalf("Bottom SN = %d, want %d", b.SN, BottomSN)
	}
	v := VersionedValue{Val: 7, SN: 0}
	if v.IsBottom() {
		t.Fatal("initial value (sn=0) must not be bottom")
	}
}

func TestMoreRecent(t *testing.T) {
	cases := []struct {
		name string
		a, b VersionedValue
		want bool
	}{
		{"later beats earlier", VersionedValue{1, 2}, VersionedValue{9, 1}, true},
		{"earlier loses", VersionedValue{9, 1}, VersionedValue{1, 2}, false},
		{"equal sn not more recent", VersionedValue{1, 3}, VersionedValue{2, 3}, false},
		{"anything beats bottom", VersionedValue{0, 0}, Bottom(), true},
		{"bottom beats nothing", Bottom(), VersionedValue{0, 0}, false},
		{"bottom vs bottom", Bottom(), Bottom(), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.MoreRecent(tc.b); got != tc.want {
				t.Fatalf("%v.MoreRecent(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

// Property: MoreRecent is a strict partial order on versioned values:
// irreflexive and asymmetric.
func TestMoreRecentStrictOrderProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va := VersionedValue{SN: SeqNum(a % 100)}
		vb := VersionedValue{SN: SeqNum(b % 100)}
		if va.MoreRecent(va) {
			return false
		}
		if va.MoreRecent(vb) && vb.MoreRecent(va) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVersionedValueString(t *testing.T) {
	if got := Bottom().String(); got != "⟨⊥⟩" {
		t.Fatalf("Bottom.String = %q", got)
	}
	if got := (VersionedValue{Val: 5, SN: 3}).String(); got != "⟨5,#3⟩" {
		t.Fatalf("String = %q", got)
	}
}

func TestProcessIDString(t *testing.T) {
	if got := ProcessID(17).String(); got != "p17" {
		t.Fatalf("ProcessID.String = %q", got)
	}
}

func TestMsgKindStrings(t *testing.T) {
	want := map[MsgKind]string{
		KindInquiry: "INQUIRY",
		KindReply:   "REPLY",
		KindWrite:   "WRITE",
		KindAck:     "ACK",
		KindRead:    "READ",
		KindDLPrev:  "DL_PREV",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if got := MsgKind(99).String(); got != "MsgKind(99)" {
		t.Fatalf("unknown kind String = %q", got)
	}
}

func TestMessageKindsMatchTypes(t *testing.T) {
	cases := []struct {
		m    Message
		kind MsgKind
	}{
		{InquiryMsg{}, KindInquiry},
		{ReplyMsg{}, KindReply},
		{WriteMsg{}, KindWrite},
		{AckMsg{}, KindAck},
		{ReadMsg{}, KindRead},
		{DLPrevMsg{}, KindDLPrev},
	}
	for _, tc := range cases {
		if tc.m.Kind() != tc.kind {
			t.Fatalf("%T.Kind() = %v, want %v", tc.m, tc.m.Kind(), tc.kind)
		}
		if tc.m.WireSize() <= 0 {
			t.Fatalf("%T.WireSize() = %d, want > 0", tc.m, tc.m.WireSize())
		}
	}
}
