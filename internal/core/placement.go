package core

import "errors"

// Sharding errors, surfaced by the placement-aware node wrapper
// (internal/shard) when an operation cannot be routed to — or answered
// by — its key's replica group.
var (
	// ErrUnroutable is returned when no replica of the key's shard is
	// reachable (the placement view is empty, or every forwarding attempt
	// was explicitly refused). The operation was NOT applied.
	ErrUnroutable = errors.New("register: no reachable replica for key's shard")
	// ErrUnacknowledged is returned when a forwarded WRITE got no answer
	// before the forwarding deadline. Unlike ErrUnroutable this is
	// ambiguous: the serving replica may have applied the write and died
	// (or been partitioned) before its FORWARDED reply arrived, so the
	// write MAY OR MAY NOT have taken effect. Reads are never ambiguous —
	// they are idempotent and simply retried against another replica.
	ErrUnacknowledged = errors.New("register: forwarded write unacknowledged (may or may not have been applied)")
)

// HandoffReadSeq is the reserved read sequence number identifying a shard
// handoff inquiry (see internal/shard): a node that GAINED shards under a
// new placement view asks the shards' previous/current replicas for a
// snapshot before serving them. It is negative so it can never collide
// with JoinReadSeq (0) or a real read_sn (positive — OpIDs start at 1).
const HandoffReadSeq ReadSeq = -1

// PlacementView is one consistent snapshot of the keyspace→replica
// mapping: RegisterID → shard → replica group of size ≤ R over the
// current membership. Views are immutable; the runtime swaps in a fresh
// view on every membership change. internal/placement provides the one
// implementation (consistent hashing via rendezvous scores).
type PlacementView interface {
	// NumShards returns S, the fixed shard count.
	NumShards() int
	// ShardOf maps a register to its shard in [0, S).
	ShardOf(reg RegisterID) int
	// GroupFor returns one shard's replica group in priority order — the
	// primary first. Callers must not mutate the slice.
	GroupFor(shard int) []ProcessID
	// Group returns reg's replica group (GroupFor of its shard).
	Group(reg RegisterID) []ProcessID
	// IsReplica reports whether id is in reg's replica group.
	IsReplica(reg RegisterID, id ProcessID) bool
	// Members returns every process the view was built over, ascending.
	Members() []ProcessID
}

// Placed is implemented by Envs whose runtime shards the keyspace. A nil
// view means the runtime is (currently) unsharded and protocols fall back
// to full-membership broadcasts and system-size quorums.
type Placed interface {
	Placement() PlacementView
}

// PlacementAware is implemented by nodes that react to placement changes
// — the internal/shard wrapper, which computes which shards this node
// gained and runs the handoff state exchange for them. Runtimes invoke it
// on the node's event loop after every membership change.
type PlacementAware interface {
	PlacementChanged(view PlacementView)
}

// PlacementOf resolves env's current placement view (nil when the
// runtime is unsharded or does not implement Placed).
func PlacementOf(env Env) PlacementView {
	if p, ok := env.(Placed); ok {
		return p.Placement()
	}
	return nil
}

// OpScope resolves the quorum scope of one operation on reg at
// invocation time: the set of processes whose replies/acks may count
// (nil = everyone) and the quorum size. Unsharded, that is the paper's
// ⌊n/2⌋+1 over the constant system size; sharded, it is a majority of
// the key's replica group — the per-shard quorum whose pairwise
// intersection preserves the Imbs/Mostéfaoui/Perrin/Raynal argument
// register by register. The scope is snapshotted per operation so a view
// change mid-operation cannot make an already-counted quorum retroactively
// inconsistent.
func OpScope(env Env, reg RegisterID) (map[ProcessID]bool, int) {
	v := PlacementOf(env)
	if v == nil {
		return nil, env.SystemSize()/2 + 1
	}
	g := v.Group(reg)
	if len(g) == 0 {
		return nil, env.SystemSize()/2 + 1
	}
	scope := make(map[ProcessID]bool, len(g))
	for _, id := range g {
		scope[id] = true
	}
	return scope, len(g)/2 + 1
}

// InScope reports whether a reply/ack from id may count toward a quorum
// with the given scope (nil scope = unsharded, everyone counts).
func InScope(scope map[ProcessID]bool, id ProcessID) bool {
	return scope == nil || scope[id]
}

// ScopedBroadcast disseminates a per-register message to reg's replica
// group — point-to-point sends to each member, self included via the
// runtime's loopback — or to the full membership when env is unsharded.
// This is what turns "every node replicates every key" into "R nodes
// replicate each shard": WRITE/READ traffic for a key only ever reaches
// its group.
func ScopedBroadcast(env Env, reg RegisterID, m Message) {
	v := PlacementOf(env)
	if v == nil {
		env.Broadcast(m)
		return
	}
	g := v.Group(reg)
	if len(g) == 0 {
		env.Broadcast(m)
		return
	}
	for _, id := range g {
		env.Send(id, m)
	}
}

// ScopedBroadcastMulti disseminates one message addressing several
// registers (a batched write) to the union of their replica groups,
// each member once.
func ScopedBroadcastMulti(env Env, regs []RegisterID, m Message) {
	v := PlacementOf(env)
	if v == nil {
		env.Broadcast(m)
		return
	}
	seen := make(map[ProcessID]bool)
	var order []ProcessID
	for _, reg := range regs {
		for _, id := range v.Group(reg) {
			if !seen[id] {
				seen[id] = true
				order = append(order, id)
			}
		}
	}
	if len(order) == 0 {
		env.Broadcast(m)
		return
	}
	for _, id := range order {
		env.Send(id, m)
	}
}

// ServedReader is the forwarding-aware read interface: done reports the
// value, the process that actually SERVED the read (self for local
// serves; the replica that answered a FORWARD otherwise), and a terminal
// error when every routing attempt failed. History recorders use the
// server identity so per-key attribution names the replica that produced
// the value, not the node that merely relayed the request.
type ServedReader interface {
	ReadKeyServed(reg RegisterID, done func(v VersionedValue, server ProcessID, err error)) error
}

// FallibleSNWriter is the forwarding-aware write interface: unlike
// core.SNWriter, the done callback carries an error, because a forwarded
// write can fail AFTER invocation (ErrUnroutable, ErrUnacknowledged)
// where a node-local write cannot.
type FallibleSNWriter interface {
	WriteKeySNErr(reg RegisterID, v Value, done func(VersionedValue, error)) error
}

// FallibleSNBatchWriter is the forwarding-aware batch write interface:
// done reports the stored ⟨v, sn⟩ per entry (entry order) or the first
// routing error. A sharded batch whose keys span shards decomposes into
// per-key routed writes; a batch local to one primary keeps the inner
// protocol's one-broadcast dividend.
type FallibleSNBatchWriter interface {
	WriteBatchSNErr(entries []KeyedWrite, done func([]KeyedValue, error)) error
}
