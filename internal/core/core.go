// Package core defines the substrate every register protocol in this
// repository is written against: process identities, versioned register
// values, the wire messages of the paper's figures, and the Env/Node
// contracts that decouple protocol logic from the runtime executing it.
//
// Protocols (internal/syncreg, internal/esyncreg, internal/abd) are pure
// event-driven state machines over these interfaces. The deterministic
// simulator (internal/dynsys) and the goroutine live runtime
// (internal/livenet) both implement Env, so identical protocol code runs in
// virtual time and in real time.
package core

import (
	"errors"
	"fmt"

	"churnreg/internal/sim"
)

// Operation invocation errors. The paper assumes a process invokes read or
// write only after its join has returned, and that a process runs one
// operation at a time (processes are sequential). This codebase relaxes the
// second assumption: every protocol keeps an operation table keyed by OpID
// and serves many concurrent client operations — across keys and pipelined
// within a key — so ErrOpInProgress no longer polices sequentiality; it is
// backpressure, returned only when a node's operation table is full.
var (
	// ErrNotActive is returned when read/write is invoked before the
	// process's join operation has returned.
	ErrNotActive = errors.New("register: process has not completed join")
	// ErrOpInProgress is returned when a node cannot admit another
	// in-flight operation: its operation table has MaxInFlightOps entries
	// (backpressure — retry once earlier operations complete). The
	// multi-writer token claim and the atomic read wrapper also return it
	// for their genuinely one-at-a-time operations (claiming, write-back).
	ErrOpInProgress = errors.New("register: operation table full (too many operations in progress)")
)

// ProcessID uniquely identifies a process across the whole run. The paper
// uses the infinite-arrival model: infinitely many processes may join over
// time, each with a fresh identity; a process that re-enters does so under
// a new ID. IDs are allocated by the churn engine and never reused.
type ProcessID int64

// NoProcess is the zero ProcessID, never allocated to a real process.
const NoProcess ProcessID = 0

// String renders the ID in the paper's p_i style.
func (id ProcessID) String() string { return fmt.Sprintf("p%d", int64(id)) }

// RegisterID names one register in the keyed register namespace. The
// paper studies a single register; this codebase multiplexes arbitrarily
// many over one churn-bound membership substrate, so every per-register
// wire message and every per-register piece of node state is keyed by a
// RegisterID. Key allocation is the application's concern (hash a name,
// intern a string — see package strings for the value-side analogue).
type RegisterID int64

// DefaultRegister is key 0: the paper's single register. The legacy
// single-register API (Read/Write, Snapshot) is sugar over this key, and
// the zero value of the Reg field on wire messages addresses it, so
// pre-keyed message constructions remain valid.
const DefaultRegister RegisterID = 0

// String renders the key in a compact r<k> style.
func (r RegisterID) String() string { return fmt.Sprintf("r%d", int64(r)) }

// SeqNum is a register sequence number. The initial value of the register
// carries sequence number 0; each write increments it.
type SeqNum int64

// BottomSN marks the ⊥ (unknown) register state a process holds between
// entering the system and learning a value.
const BottomSN SeqNum = -1

// Value is the register's value domain. The paper leaves the domain
// abstract; int64 keeps simulated runs cheap while the public API layers
// arbitrary payloads on top via an interning table.
type Value int64

// VersionedValue is a register value paired with its sequence number.
// The zero VersionedValue is NOT ⊥; use Bottom for the unknown state.
type VersionedValue struct {
	Val Value
	SN  SeqNum
}

// Bottom returns the ⊥ register state held before a join learns a value.
func Bottom() VersionedValue { return VersionedValue{SN: BottomSN} }

// IsBottom reports whether v is the unknown ⊥ state.
func (v VersionedValue) IsBottom() bool { return v.SN == BottomSN }

// MoreRecent reports whether v supersedes u (strictly larger sequence
// number). Bottom is superseded by everything with SN >= 0.
func (v VersionedValue) MoreRecent(u VersionedValue) bool { return v.SN > u.SN }

// String renders the pair as ⟨val, sn⟩.
func (v VersionedValue) String() string {
	if v.IsBottom() {
		return "⟨⊥⟩"
	}
	return fmt.Sprintf("⟨%d,#%d⟩", int64(v.Val), int64(v.SN))
}

// KeyedValue pairs a versioned value with the register it belongs to —
// the unit of batch dissemination: join snapshot replies and batched
// writes carry one KeyedValue per key.
type KeyedValue struct {
	Reg   RegisterID
	Value VersionedValue
}

// String renders the pair as r<k>=⟨val,#sn⟩.
func (kv KeyedValue) String() string { return fmt.Sprintf("%v=%v", kv.Reg, kv.Value) }

// ImplicitInitial is the virtual initial state of every register other
// than DefaultRegister: value 0 with sequence number 0, written by the
// paper's fictional initial write completing at time 0. Key 0's initial
// value is configured at bootstrap (SpawnContext.Initial); all other keys
// spring into existence already holding this value, so a read of a key
// nobody ever wrote is well-defined and regular.
func ImplicitInitial() VersionedValue { return VersionedValue{} }

// ReadSeq identifies a read request issued by a process. The paper tags
// each read with (i, read_sn); read_sn = 0 identifies the join inquiry.
type ReadSeq int64

// JoinReadSeq is the reserved read sequence number identifying the join
// operation's inquiry in the eventually synchronous protocol.
const JoinReadSeq ReadSeq = 0

// OpID identifies one client operation (a read or a write) at its invoking
// node. Every protocol draws OpIDs from a single per-node counter — the
// generalization of the paper's read_sn to ALL operations — and tags its
// request broadcasts with them, so replies and acknowledgments route to
// the exact in-flight operation they answer even when many operations on
// the same key are pipelined. The pair (ProcessID, OpID) is globally
// unique. For read-type requests the wire also carries the paper's
// read_sn, which is numerically this OpID (one counter feeds both tags).
type OpID uint64

// NoOp is the reserved zero OpID. It identifies the join operation (the
// paper's read_sn = 0 inquiry) on request messages, and marks "no
// originating operation known" on indirectly triggered acknowledgments
// (the Lemma-7 reply-acks, which feed a WRITER's quorum but are sent by a
// READER that cannot know the writer's OpID — those route by the
// ⟨register, sequence number⟩ the ack names instead).
const NoOp OpID = 0

// MaxInFlightOps bounds a node's operation table. An invocation arriving
// with the table full gets ErrOpInProgress — backpressure, not protocol
// state: entries are reclaimed as operations complete, and a departed
// node's whole table is reclaimed with the node.
const MaxInFlightOps = 1024

// String renders the id in an op<n> style.
func (id OpID) String() string { return fmt.Sprintf("op%d", uint64(id)) }

// Env is the runtime surface a protocol node sees. Implementations must
// guarantee single-threaded delivery per node: a node's handlers are never
// invoked concurrently, so protocol state machines need no locks.
type Env interface {
	// ID returns this process's identity.
	ID() ProcessID
	// Now returns the current time in paper time units. In the synchronous
	// model this is the paper's global clock; in the eventually synchronous
	// model protocols must not base decisions on it (it exists for tracing),
	// matching the paper's "time notion inaccessible to the processes".
	Now() sim.Time
	// Send transmits m to process to over the point-to-point network.
	Send(to ProcessID, m Message)
	// Broadcast disseminates m through the broadcast service of §3.2/§5.1.
	Broadcast(m Message)
	// After schedules fn on this node after d time units of the runtime's
	// clock. Implements the protocols' wait(δ) statements. The callback is
	// not invoked once the process has left the system.
	After(d sim.Duration, fn func())
	// Delta returns the system's claimed communication bound δ. Only the
	// synchronous protocol may rely on it; the eventually synchronous
	// protocol never calls it (asserted in tests).
	Delta() sim.Duration
	// SystemSize returns n, the constant number of processes, known to
	// every process in both models.
	SystemSize() int
	// MarkActive records that this node's join operation completed; the
	// membership layer uses it to maintain A(τ) accounting.
	MarkActive()
}

// Node is a register protocol instance bound to one process.
type Node interface {
	// Start is invoked once, when the process enters the system (the
	// beginning of its join, in the paper's "listening mode" sense), or at
	// time 0 for the n initial processes (with Bootstrap set).
	Start()
	// Deliver hands the node a message. from is the sender's identity.
	Deliver(from ProcessID, m Message)
	// Active reports whether the node completed its join.
	Active() bool
	// Snapshot returns the node's current local register copy (for
	// checking and metrics; not part of the protocol).
	Snapshot() VersionedValue
}

// SpawnContext tells a protocol factory how a node comes into existence.
// The paper's system starts with n processes that already hold the initial
// register value and are active; every later process joins empty-handed.
type SpawnContext struct {
	// Bootstrap marks one of the n initial processes.
	Bootstrap bool
	// Initial is register 0's initial value (valid when Bootstrap).
	Initial VersionedValue
	// InitialKeys optionally pre-provisions further registers on bootstrap
	// processes (valid when Bootstrap; must not contain DefaultRegister —
	// that is what Initial is for). Entries must be sorted by Reg and are
	// shared, not copied: treat as immutable.
	InitialKeys []KeyedValue
}

// NodeFactory builds a protocol instance for a freshly spawned process.
type NodeFactory func(env Env, sc SpawnContext) Node

// Reader is implemented by protocols whose read returns asynchronously
// (quorum-based reads). done receives the value the read returns.
type Reader interface {
	Read(done func(VersionedValue)) error
}

// LocalReader is implemented by protocols with fast local reads (§3).
type LocalReader interface {
	ReadLocal() (VersionedValue, error)
}

// Writer is implemented by protocol nodes that can issue writes. done runs
// when the write operation returns ok.
type Writer interface {
	Write(v Value, done func()) error
}

// KeyedReader is the multi-register analogue of Reader: a quorum read of
// one register in the namespace. Reads may be in flight concurrently on
// one node — across keys and pipelined on the same key — each tracked as
// its own operation-table entry; ErrOpInProgress only signals a full
// table.
type KeyedReader interface {
	ReadKey(reg RegisterID, done func(VersionedValue)) error
}

// KeyedLocalReader is the multi-register analogue of LocalReader.
type KeyedLocalReader interface {
	ReadLocalKey(reg RegisterID) (VersionedValue, error)
}

// KeyedWriter is the multi-register analogue of Writer. Writes may be in
// flight concurrently on one node — across keys, and pipelined on one key
// from this node (sequence numbers are assigned in invocation order). The
// paper's no-concurrent-writes discipline still applies per key ACROSS
// nodes: two different nodes must not write one key concurrently.
type KeyedWriter interface {
	WriteKey(reg RegisterID, v Value, done func()) error
}

// SNWriter is implemented by protocols that report the exact versioned
// value a write stored. Pipelined clients need it: with several writes to
// one key in flight, a snapshot taken after completion may reflect a
// LATER write, so the done callback carries this write's own ⟨v, sn⟩.
// WriteKey is sugar over this method in every protocol that has it.
type SNWriter interface {
	WriteKeySN(reg RegisterID, v Value, done func(VersionedValue)) error
}

// SNBatchWriter is the batch analogue of SNWriter: done receives the
// exact ⟨v, sn⟩ stored for each entry, in entry order.
type SNBatchWriter interface {
	WriteBatchSN(entries []KeyedWrite, done func([]KeyedValue)) error
}

// OpAccountant exposes the size of a node's operation table, for leak
// checks and metrics: a quiescent node (no client operation in flight)
// must report 0 — completed, failed, and superseded operations all
// reclaim their entries.
type OpAccountant interface {
	PendingOps() int
}

// ReadPathCounter is implemented by protocols whose quorum reads have a
// one-round fast path (all phase-1 replies agreed, write-back skipped)
// next to the two-round slow path. The counts are cumulative and read on
// the node's loop goroutine; metrics endpoints surface them so operators
// can see what fraction of reads the fast path serves.
type ReadPathCounter interface {
	ReadPathCounts() (fast, slow uint64)
}

// BatchWriter is implemented by protocols that can disseminate updates to
// several registers in one broadcast (the synchronous protocol: a batched
// WRITE costs the same single broadcast plus one δ wait as a lone write).
// Entries must be sorted by Reg and name each key at most once.
type BatchWriter interface {
	WriteBatch(entries []KeyedWrite, done func()) error
}

// KeyedWrite is one entry of a batched write: the key and the raw value
// to store (the protocol assigns the sequence number).
type KeyedWrite struct {
	Reg RegisterID
	Val Value
}

// KeyedSnapshotter exposes per-key local copies for checking and metrics.
type KeyedSnapshotter interface {
	// SnapshotKey returns the node's local copy of one register; for keys
	// the node has never seen it returns the key's initial state (Bottom
	// while joining or for key 0 before its value is learned).
	SnapshotKey(reg RegisterID) VersionedValue
	// Keys returns the registers this node holds explicit state for, in
	// ascending order.
	Keys() []RegisterID
}

// Joiner exposes the completion of the join operation. done runs when join
// returns ok. Implementations invoke it at most once.
type Joiner interface {
	OnJoined(done func())
}
