package core

import "sort"

// OpTable tracks one node's in-flight client operations, keyed by OpID.
// It owns the node's operation counter: Begin allocates the next OpID
// (starting at 1 — 0 is NoOp, the join) and inserts a zero-valued entry;
// Finish reclaims it. Every protocol embeds one, parameterized by its own
// per-operation state struct, so the sequentiality the paper assumes is
// lifted the same way everywhere: many entries may be live at once, across
// keys and pipelined within a key.
//
// The table is deliberately bounded (MaxInFlightOps unless overridden):
// an unreachable quorum must surface as backpressure at the invoking
// node, not as an unbounded map. Like all protocol state it is confined
// to the node's single event loop and needs no locks.
type OpTable[T any] struct {
	last OpID
	ops  map[OpID]*T
	cap  int
}

// NewOpTable builds a table bounded at capacity entries (MaxInFlightOps
// when capacity <= 0).
func NewOpTable[T any](capacity int) *OpTable[T] {
	if capacity <= 0 {
		capacity = MaxInFlightOps
	}
	return &OpTable[T]{ops: make(map[OpID]*T), cap: capacity}
}

// Full reports whether Begin would exceed the table's bound — the
// condition protocols translate into ErrOpInProgress.
func (t *OpTable[T]) Full() bool { return len(t.ops) >= t.cap }

// Begin allocates the next OpID and its zero-valued entry. Callers check
// Full first; Begin itself never refuses (a protocol mid-handshake may
// legitimately add the one entry that crosses the bound).
func (t *OpTable[T]) Begin() (OpID, *T) {
	t.last++
	o := new(T)
	t.ops[t.last] = o
	return t.last, o
}

// Get returns the entry for id, if it is still in flight. A miss means
// the message that prompted the lookup is stale (its operation completed
// or never existed here) and must be ignored.
func (t *OpTable[T]) Get(id OpID) (*T, bool) {
	o, ok := t.ops[id]
	return o, ok
}

// Finish reclaims id's entry. Finishing an absent id is a no-op, so
// completion paths need not guard against double delivery.
func (t *OpTable[T]) Finish(id OpID) { delete(t.ops, id) }

// Len returns the number of in-flight operations.
func (t *OpTable[T]) Len() int { return len(t.ops) }

// LastIssued returns the most recently allocated OpID (0 if none — the
// state in which the join, op 0, is still the node's newest operation).
func (t *OpTable[T]) LastIssued() OpID { return t.last }

// IDs returns the in-flight OpIDs in ascending (allocation) order — the
// deterministic iteration order fan-out paths need.
func (t *OpTable[T]) IDs() []OpID {
	ids := make([]OpID, 0, len(t.ops))
	for id := range t.ops {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
