package core

import "fmt"

// MsgKind discriminates the wire messages used by the paper's protocols.
type MsgKind int

// Message kinds: one per message named in Figures 1–6, plus the write-
// token messages of the multi-writer extension (internal/multiwriter).
const (
	KindInquiry MsgKind = iota + 1
	KindReply
	KindWrite
	KindAck
	KindRead
	KindDLPrev
	KindClaim
	KindBeat
	KindToken
	KindWriteBatch
	KindForward
	KindForwarded
)

// String returns the paper's message name.
func (k MsgKind) String() string {
	switch k {
	case KindInquiry:
		return "INQUIRY"
	case KindReply:
		return "REPLY"
	case KindWrite:
		return "WRITE"
	case KindAck:
		return "ACK"
	case KindRead:
		return "READ"
	case KindDLPrev:
		return "DL_PREV"
	case KindClaim:
		return "CLAIM"
	case KindBeat:
		return "BEAT"
	case KindToken:
		return "TOKEN"
	case KindWriteBatch:
		return "WRITE_BATCH"
	case KindForward:
		return "FORWARD"
	case KindForwarded:
		return "FORWARDED"
	default:
		return fmt.Sprintf("MsgKind(%d)", int(k))
	}
}

// Message is a protocol wire message. Concrete types are small value
// structs; the network layer copies them by value, so nodes can never share
// mutable state through a message. The batch-carrying messages (ReplyMsg,
// WriteBatchMsg) hold a slice whose backing array IS shared between sender
// and receivers: senders build a fresh slice per message and receivers
// must treat it as immutable.
//
// Per-register messages carry a Reg field whose zero value addresses
// DefaultRegister, so single-register constructions predating the keyed
// namespace keep their meaning unchanged.
type Message interface {
	Kind() MsgKind
	// WireSize returns an abstract on-wire size in bytes, used by the
	// metrics layer for bandwidth accounting.
	WireSize() int
}

// InquiryMsg is INQUIRY(i) in the synchronous protocol (Figure 1 line 05)
// and INQUIRY(i, read_sn) in the eventually synchronous one (Figure 4 line
// 03). The synchronous protocol leaves RSN at JoinReadSeq. Op is the
// inquiring operation's id — NoOp for the join, which is the only
// operation that inquires.
type InquiryMsg struct {
	From ProcessID
	RSN  ReadSeq
	Op   OpID
}

// Kind implements Message.
func (InquiryMsg) Kind() MsgKind { return KindInquiry }

// WireSize implements Message.
func (InquiryMsg) WireSize() int { return 24 }

// ReplyMsg is REPLY(⟨i, register, sn⟩) (Figure 1 line 11/14) or
// REPLY(⟨i, register, sn⟩, r_sn) (Figure 4 lines 09/13). RSN identifies
// the request being answered in the eventually synchronous protocol.
//
// In the keyed namespace a reply answers either a per-key READ — Reg and
// Value carry that key's copy, Rest is nil — or a join INQUIRY, in which
// case the reply is a SNAPSHOT of the replier's whole register space:
// (Reg, Value) is the first key and Rest carries the remaining keys in
// ascending Reg order. One unicast thus disseminates every key the
// replier holds, which is what lets a process join ONCE and serve reads
// on any key afterwards.
type ReplyMsg struct {
	From  ProcessID
	Value VersionedValue
	RSN   ReadSeq
	Reg   RegisterID
	// Op echoes the request's OpID, so the requester routes the reply to
	// the exact in-flight operation it answers — the pipelining tag that
	// replaces "the node's one pending read". For read-type requests it is
	// numerically RSN (one counter feeds both); NoOp marks a join reply.
	Op OpID
	// Rest holds the snapshot's remaining keys (join replies only).
	// Receivers must not mutate it.
	Rest []KeyedValue
}

// Kind implements Message.
func (ReplyMsg) Kind() MsgKind { return KindReply }

// WireSize implements Message.
func (m ReplyMsg) WireSize() int { return 48 + 32*len(m.Rest) }

// Entries visits every (reg, value) pair the reply carries, primary entry
// first, without materializing a slice on the single-key fast path.
func (m ReplyMsg) Entries(visit func(RegisterID, VersionedValue)) {
	visit(m.Reg, m.Value)
	for _, kv := range m.Rest {
		visit(kv.Reg, kv.Value)
	}
}

// WriteMsg is WRITE(v, sn) (Figure 2 line 01) or WRITE(i, ⟨v, sn⟩)
// (Figure 6 line 04), addressed to one register of the namespace. Op is
// the writing operation's id at the sender: direct ACKs echo it, so a
// writer with several writes to one key in flight matches each ACK to the
// write it acknowledges. NoOp marks a write-back (atomicreg), which has
// no write operation behind it.
type WriteMsg struct {
	From  ProcessID
	Value VersionedValue
	Reg   RegisterID
	Op    OpID
}

// Kind implements Message.
func (WriteMsg) Kind() MsgKind { return KindWrite }

// WireSize implements Message.
func (WriteMsg) WireSize() int { return 40 }

// WriteBatchMsg disseminates updates to several registers in one
// broadcast (synchronous protocol only): each entry is applied exactly as
// a lone WRITE for its key would be. Entries are in ascending Reg order;
// receivers must not mutate the slice. Op tags the batch operation.
type WriteBatchMsg struct {
	From    ProcessID
	Op      OpID
	Entries []KeyedValue
}

// Kind implements Message.
func (WriteBatchMsg) Kind() MsgKind { return KindWriteBatch }

// WireSize implements Message.
func (m WriteBatchMsg) WireSize() int { return 16 + 32*len(m.Entries) }

// AckMsg is ACK(i, sn) (Figure 6 line 08, Figure 4 line 20). SN carries the
// register sequence number being acknowledged (see the DESIGN.md §2 note on
// why the REPLY-triggered ACK carries the register sn rather than r_sn).
// Reg names the register whose write quorum the ACK feeds. Op echoes the
// WRITE's OpID for acks triggered directly by a WRITE delivery; the
// indirect acks (reply-acks from readers and joiners, Lemma 7) carry NoOp
// — their sender cannot know the writer's OpID — and route at the writer
// by the ⟨Reg, SN⟩ they name instead.
type AckMsg struct {
	From ProcessID
	SN   SeqNum
	Reg  RegisterID
	Op   OpID
}

// Kind implements Message.
func (AckMsg) Kind() MsgKind { return KindAck }

// WireSize implements Message.
func (AckMsg) WireSize() int { return 32 }

// ReadMsg is READ(i, read_sn) (Figure 5 line 03) for one register. Op is
// the reading operation's id — numerically equal to RSN (both are drawn
// from the node's one operation counter); a write's embedded read phase
// carries the WRITE operation's id, so its replies route to the write.
type ReadMsg struct {
	From ProcessID
	RSN  ReadSeq
	Reg  RegisterID
	Op   OpID
}

// Kind implements Message.
func (ReadMsg) Kind() MsgKind { return KindRead }

// WireSize implements Message.
func (ReadMsg) WireSize() int { return 32 }

// DLPrevMsg is DL_PREV(i, r_sn) (Figure 4 lines 14/16): "I saw your
// request while not yet able to answer it; I will answer when active" —
// the sender asks the receiver to remember it in dl_prev. RSN =
// JoinReadSeq marks the pending request as the sender's join (answered
// with a full snapshot reply); any other RSN is a read of register Reg.
// Op is the sender's pending operation id the receiver must echo in its
// eventual REPLY (numerically RSN; NoOp for a join).
type DLPrevMsg struct {
	From ProcessID
	RSN  ReadSeq
	Reg  RegisterID
	Op   OpID
}

// Kind implements Message.
func (DLPrevMsg) Kind() MsgKind { return KindDLPrev }

// WireSize implements Message.
func (DLPrevMsg) WireSize() int { return 32 }

// ClaimMsg is the multi-writer extension's CLAIM(i, stamp): process i bids
// for the write token with its invocation timestamp; lower (stamp, id)
// wins a contention burst.
type ClaimMsg struct {
	From  ProcessID
	Stamp int64
}

// Kind implements Message.
func (ClaimMsg) Kind() MsgKind { return KindClaim }

// WireSize implements Message.
func (ClaimMsg) WireSize() int { return 16 }

// BeatMsg is the token holder's heartbeat. Free announces a voluntary
// release: holders broadcast it so claimants need not wait out the
// staleness timeout. Seq orders beats from one holder — channels are not
// FIFO, so a pre-release beat can overtake the release's free-beat;
// recipients drop beats whose Seq is not beyond the last Free they saw
// from that process.
type BeatMsg struct {
	From ProcessID
	Free bool
	Seq  uint64
}

// Kind implements Message.
func (BeatMsg) Kind() MsgKind { return KindBeat }

// WireSize implements Message.
func (BeatMsg) WireSize() int { return 12 }

// TokenMsg transfers the write token directly to a chosen successor.
type TokenMsg struct {
	From ProcessID
}

// Kind implements Message.
func (TokenMsg) Kind() MsgKind { return KindToken }

// WireSize implements Message.
func (TokenMsg) WireSize() int { return 12 }

// ForwardCode classifies a FORWARDED outcome.
type ForwardCode byte

// Forwarded outcome codes. Retriable codes mean the operation was NOT
// applied at the serving node, so the requester may safely re-route it;
// ForwardOK carries the result.
const (
	// ForwardOK: the operation was served; Value carries the result.
	ForwardOK ForwardCode = 0
	// ForwardNotActive: the serving node's join has not returned yet.
	ForwardNotActive ForwardCode = 1
	// ForwardBusy: the serving node's operation table is full.
	ForwardBusy ForwardCode = 2
	// ForwardWrongReplica: the serving node is not (or no longer) a
	// replica of the key's shard under its current view.
	ForwardWrongReplica ForwardCode = 3
)

// String names the code.
func (c ForwardCode) String() string {
	switch c {
	case ForwardOK:
		return "OK"
	case ForwardNotActive:
		return "NOT_ACTIVE"
	case ForwardBusy:
		return "BUSY"
	case ForwardWrongReplica:
		return "WRONG_REPLICA"
	default:
		return fmt.Sprintf("ForwardCode(%d)", byte(c))
	}
}

// ForwardMsg is FORWARD(i, op, k[, v]): a node that is not a replica of
// key k's shard relays a client operation to a node that is (reads go to
// any group member, writes to the primary so one process keeps assigning
// the key's sequence numbers). Op is the REQUESTER's forwarding-table id
// — a tag in the internal/shard wrapper's own table, disjoint from the
// inner protocol's operation table — which the answering FORWARDED
// echoes, exactly the OpID-routed reply discipline every other
// request/reply pair uses.
type ForwardMsg struct {
	From    ProcessID
	Op      OpID
	Reg     RegisterID
	IsWrite bool
	Val     Value // write payload; ignored for reads
}

// Kind implements Message.
func (ForwardMsg) Kind() MsgKind { return KindForward }

// WireSize implements Message.
func (ForwardMsg) WireSize() int { return 33 }

// ForwardedMsg answers a ForwardMsg: Op echoes the requester's tag,
// Value carries the operation's result (the value read, or the exact
// ⟨v, sn⟩ a write stored), and Code reports refusals. From identifies
// the SERVING replica — history attribution records it.
type ForwardedMsg struct {
	From  ProcessID
	Op    OpID
	Reg   RegisterID
	Value VersionedValue
	Code  ForwardCode
}

// Kind implements Message.
func (ForwardedMsg) Kind() MsgKind { return KindForwarded }

// WireSize implements Message.
func (ForwardedMsg) WireSize() int { return 41 }

// Compile-time interface checks.
var (
	_ Message = InquiryMsg{}
	_ Message = ReplyMsg{}
	_ Message = WriteMsg{}
	_ Message = AckMsg{}
	_ Message = ReadMsg{}
	_ Message = DLPrevMsg{}
	_ Message = ClaimMsg{}
	_ Message = BeatMsg{}
	_ Message = TokenMsg{}
	_ Message = WriteBatchMsg{}
	_ Message = ForwardMsg{}
	_ Message = ForwardedMsg{}
)
