package core

import "sort"

// RegStore is one node's keyed register space: the per-key local copies
// (register_i, sn_i per RegisterID) plus the sorted-key cache that makes
// snapshot replies cheap. Every protocol node embeds one; the protocols
// differ in how operations complete (timed waits vs quorums), not in how
// values are stored, merged, and disseminated, so that part lives here
// once.
//
// Whether an absent key reads as ⊥ or as the implicit initial depends on
// the node's activation state, which only the protocol knows — hence the
// active parameter on Value and Merge.
type RegStore struct {
	vals map[RegisterID]VersionedValue
	// snapKeys caches vals' non-zero keys in ascending order for snapshot
	// replies; a new key's arrival invalidates it. Without it a churning
	// system pays a K·log K sort per inquiry answered.
	snapKeys      []RegisterID
	snapKeysDirty bool
}

// NewRegStore builds the store, pre-provisioning a bootstrap node's
// initial keys (non-bootstrap nodes start empty and learn everything
// through their join and the writes they observe).
func NewRegStore(sc SpawnContext) *RegStore {
	s := &RegStore{vals: make(map[RegisterID]VersionedValue)}
	if sc.Bootstrap {
		s.vals[DefaultRegister] = sc.Initial
		for _, kv := range sc.InitialKeys {
			s.vals[kv.Reg] = kv.Value
			s.snapKeysDirty = true
		}
	}
	return s
}

// Value returns the node's current copy of one key: the learned value if
// any, the implicit initial state for never-written keys other than 0 on
// an active node, and ⊥ otherwise (joining, or key 0 whose configured
// initial value only the bootstrap population knows a priori).
func (s *RegStore) Value(k RegisterID, active bool) VersionedValue {
	if v, ok := s.vals[k]; ok {
		return v
	}
	if k != DefaultRegister && active {
		return ImplicitInitial()
	}
	return Bottom()
}

// Merge adopts v for key k if it supersedes the local copy, reporting
// whether it did.
func (s *RegStore) Merge(k RegisterID, v VersionedValue, active bool) bool {
	if v.MoreRecent(s.Value(k, active)) {
		s.Store(k, v)
		return true
	}
	return false
}

// Store writes a key's local copy unconditionally, tracking new-key
// arrivals for the snapshot cache.
func (s *RegStore) Store(k RegisterID, v VersionedValue) {
	if _, ok := s.vals[k]; !ok && k != DefaultRegister {
		s.snapKeysDirty = true
	}
	s.vals[k] = v
}

// Keys returns every key the store holds explicit state for, ascending.
func (s *RegStore) Keys() []RegisterID {
	ks := make([]RegisterID, 0, len(s.vals))
	for k := range s.vals {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// sortedNonZeroKeys returns the keys other than 0 in ascending order,
// cached between new-key arrivals.
func (s *RegStore) sortedNonZeroKeys() []RegisterID {
	if s.snapKeysDirty || (s.snapKeys == nil && len(s.vals) > 1) {
		ks := s.snapKeys[:0]
		for k := range s.vals {
			if k != DefaultRegister {
				ks = append(ks, k)
			}
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		s.snapKeys = ks
		s.snapKeysDirty = false
	}
	return s.snapKeys
}

// SnapshotKey reads a node's local copy of one key, falling back to the
// single-register Snapshot for nodes predating the keyed interfaces —
// the one dispatch history recorders (SimCluster, workload) share.
func SnapshotKey(node Node, k RegisterID) VersionedValue {
	if s, ok := node.(KeyedSnapshotter); ok {
		return s.SnapshotKey(k)
	}
	return node.Snapshot()
}

// SnapshotReply builds a REPLY carrying the node's entire register space:
// key 0 in the primary slot (⊥ if not yet learned, exactly as the
// original single-register reply), every other key in Rest in ascending
// order. One unicast disseminates every key — the batch dissemination
// that lets a process join once and serve any key.
func (s *RegStore) SnapshotReply(from ProcessID, rsn ReadSeq, active bool) ReplyMsg {
	// Op echoes the request's operation id, which for read-type requests
	// is numerically its read_sn (one counter feeds both tags).
	m := ReplyMsg{From: from, Value: s.Value(DefaultRegister, active), RSN: rsn, Op: OpID(rsn)}
	ks := s.sortedNonZeroKeys()
	if len(ks) == 0 {
		return m
	}
	m.Rest = make([]KeyedValue, len(ks))
	for i, k := range ks {
		m.Rest[i] = KeyedValue{Reg: k, Value: s.vals[k]}
	}
	return m
}
