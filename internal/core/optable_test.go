package core

import "testing"

func TestOpTableAllocatesAscendingIDs(t *testing.T) {
	type op struct{ reg RegisterID }
	tb := NewOpTable[op](0)
	if tb.LastIssued() != NoOp {
		t.Fatalf("fresh table LastIssued = %v, want NoOp", tb.LastIssued())
	}
	id1, o1 := tb.Begin()
	id2, o2 := tb.Begin()
	if id1 != 1 || id2 != 2 {
		t.Fatalf("Begin ids = %v, %v, want 1, 2", id1, id2)
	}
	if o1 == nil || o2 == nil || o1 == o2 {
		t.Fatalf("Begin entries not distinct: %p %p", o1, o2)
	}
	if got, ok := tb.Get(id1); !ok || got != o1 {
		t.Fatalf("Get(%v) = %p, %v", id1, got, ok)
	}
	if tb.Len() != 2 || tb.LastIssued() != id2 {
		t.Fatalf("Len = %d, LastIssued = %v", tb.Len(), tb.LastIssued())
	}
	ids := tb.IDs()
	if len(ids) != 2 || ids[0] != id1 || ids[1] != id2 {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestOpTableFinishReclaims(t *testing.T) {
	type op struct{ n int }
	tb := NewOpTable[op](0)
	id, _ := tb.Begin()
	tb.Finish(id)
	if tb.Len() != 0 {
		t.Fatalf("Len after Finish = %d", tb.Len())
	}
	if _, ok := tb.Get(id); ok {
		t.Fatalf("Get after Finish still finds %v", id)
	}
	tb.Finish(id) // double-finish is a no-op
	// IDs never repeat: the counter is not rewound by Finish.
	next, _ := tb.Begin()
	if next != id+1 {
		t.Fatalf("id after Finish = %v, want %v", next, id+1)
	}
}

func TestOpTableBoundsInFlight(t *testing.T) {
	type op struct{}
	tb := NewOpTable[op](2)
	a, _ := tb.Begin()
	tb.Begin()
	if !tb.Full() {
		t.Fatal("table with cap entries not Full")
	}
	tb.Finish(a)
	if tb.Full() {
		t.Fatal("table Full after reclaim")
	}
	// Zero capacity falls back to the global default.
	big := NewOpTable[op](0)
	if big.Full() {
		t.Fatal("default-capacity table is born full")
	}
}
