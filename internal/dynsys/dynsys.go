// Package dynsys assembles a running dynamic system: the discrete-event
// scheduler, the simulated network, the churn engine, and one protocol node
// per process. It owns the process lifecycle of §2.1 — a process is in
// listening mode from the instant it enters (it can receive and process
// messages while joining), becomes active when its join returns, and on
// leaving neither sends nor receives anything ever again.
package dynsys

import (
	"fmt"
	"sort"

	"churnreg/internal/churn"
	"churnreg/internal/core"
	"churnreg/internal/netsim"
	"churnreg/internal/placement"
	"churnreg/internal/sim"
)

// Config assembles a system.
type Config struct {
	// N is the constant system size n, known to every process.
	N int
	// Delta is the communication bound δ handed to protocol nodes that ask
	// for it (synchronous protocol only).
	Delta sim.Duration
	// Model is the network timing model (synchronous, eventually
	// synchronous, asynchronous, or a scripted scenario model).
	Model netsim.DelayModel
	// Factory builds one protocol node per process.
	Factory core.NodeFactory
	// Seed makes the run reproducible.
	Seed uint64
	// ChurnRate is c, the fraction of n refreshed per time unit.
	ChurnRate float64
	// ChurnRateAt, when non-nil, makes churn time-varying (see
	// churn.Config.RateAt). ChurnRate must still be > 0 to enable the
	// engine.
	ChurnRateAt func(now sim.Time) float64
	// ChurnPolicy selects leavers (default random).
	ChurnPolicy churn.RemovePolicy
	// MinLifetime exempts young processes from removal (see churn.Config).
	MinLifetime sim.Duration
	// Protect exempts processes from removal (see churn.Config).
	Protect func(core.ProcessID) bool
	// Initial is register 0's initial value held by the bootstrap
	// population. The zero value (value 0, sn 0) matches the paper's
	// "register_k contains the initial value, sn_k = 0".
	Initial core.VersionedValue
	// Initials optionally pre-provisions further registers of the keyed
	// namespace on the bootstrap population (ascending Reg order, no
	// DefaultRegister entry — that is what Initial is for). Keys outside
	// this set still work: they spring up lazily on first use with the
	// implicit initial value.
	Initials []core.KeyedValue
	// Placement, when enabled, shards the keyspace: the system rebuilds
	// the placement view over the present processes on every membership
	// change, exposes it to protocol nodes via core.Placed on their Env,
	// and notifies placement-aware nodes (the internal/shard wrapper) so
	// they run shard handoff. The Factory should wrap its protocol with
	// shard.Factory when this is enabled.
	Placement placement.Config
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("dynsys: N = %d, want > 0", c.N)
	}
	if c.Model == nil {
		return fmt.Errorf("dynsys: nil delay model")
	}
	if c.Factory == nil {
		return fmt.Errorf("dynsys: nil node factory")
	}
	if c.ChurnRate < 0 || c.ChurnRate >= 1 {
		return fmt.Errorf("dynsys: churn rate = %v, want [0, 1)", c.ChurnRate)
	}
	for i, kv := range c.Initials {
		if kv.Reg == core.DefaultRegister {
			return fmt.Errorf("dynsys: Initials must not name register 0 (use Initial)")
		}
		if i > 0 && c.Initials[i-1].Reg >= kv.Reg {
			return fmt.Errorf("dynsys: Initials not sorted/unique at %v", kv.Reg)
		}
	}
	if err := c.Placement.Validate(); err != nil {
		return fmt.Errorf("dynsys: %w", err)
	}
	return nil
}

// System is a running dynamic distributed system.
type System struct {
	cfg        Config
	sched      *sim.Scheduler
	net        *netsim.Network
	tracker    *churn.Tracker
	engine     *churn.Engine
	rng        *sim.RNG
	procs      map[core.ProcessID]*process
	onSpawn    []func(core.ProcessID, core.Node)
	onKill     []func(core.ProcessID)
	onActivate []func(core.ProcessID)
	// view is the current placement over the present processes (nil when
	// sharding is disabled); booting suppresses per-spawn rebuilds while
	// the bootstrap population is constructed.
	view    *placement.View
	booting bool
}

// New builds the system and creates the n bootstrap processes, which are
// active at time 0 and hold the initial value — the paper's initialization.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := sim.NewRNG(cfg.Seed)
	sched := sim.NewScheduler()
	s := &System{
		cfg:     cfg,
		sched:   sched,
		net:     netsim.New(sched, root.Fork(), cfg.Model),
		tracker: churn.NewTracker(),
		rng:     root.Fork(),
		procs:   make(map[core.ProcessID]*process),
	}
	if cfg.ChurnRate > 0 {
		eng, err := churn.NewEngine(churn.Config{
			N:           cfg.N,
			Rate:        cfg.ChurnRate,
			RateAt:      cfg.ChurnRateAt,
			Policy:      cfg.ChurnPolicy,
			MinLifetime: cfg.MinLifetime,
			Protect:     cfg.Protect,
		}, sched, root.Fork(), s, s.tracker)
		if err != nil {
			return nil, err
		}
		s.engine = eng
	}
	s.booting = true
	for i := 0; i < cfg.N; i++ {
		s.spawn(core.SpawnContext{Bootstrap: true, Initial: cfg.Initial, InitialKeys: cfg.Initials})
	}
	s.booting = false
	s.refreshPlacement()
	if s.engine != nil {
		s.engine.Start()
	}
	return s, nil
}

// refreshPlacement rebuilds the placement view over the present
// processes and notifies every placement-aware node. Runs after each
// membership change (and once after bootstrap), inside the simulation's
// single thread, so nodes observe a consistent sequence of views.
func (s *System) refreshPlacement() {
	if !s.cfg.Placement.Enabled() || s.booting {
		return
	}
	members := make([]core.ProcessID, 0, len(s.procs))
	for id := range s.procs {
		members = append(members, id)
	}
	s.view = placement.Build(s.cfg.Placement, members)
	s.ForEachNode(func(_ core.ProcessID, n core.Node) {
		if pa, ok := n.(core.PlacementAware); ok {
			pa.PlacementChanged(s.view)
		}
	})
}

// Placement returns the current view (nil when unsharded).
func (s *System) Placement() *placement.View { return s.view }

// Scheduler exposes the event scheduler (experiments schedule workload on
// it directly).
func (s *System) Scheduler() *sim.Scheduler { return s.sched }

// Network exposes the simulated network (for stats, tracing, injection).
func (s *System) Network() *netsim.Network { return s.net }

// Tracker exposes lifecycle accounting.
func (s *System) Tracker() *churn.Tracker { return s.tracker }

// Engine exposes the churn engine (nil when churn rate is 0).
func (s *System) Engine() *churn.Engine { return s.engine }

// Rand exposes the system's workload RNG stream.
func (s *System) Rand() *sim.RNG { return s.rng }

// Now returns the current virtual time.
func (s *System) Now() sim.Time { return s.sched.Now() }

// OnSpawn registers a hook invoked after every spawn (bootstrap included if
// registered before New — not possible — so effectively churn spawns and
// manual Spawn calls). Used by workloads to adopt new processes. Multiple
// hooks run in registration order.
func (s *System) OnSpawn(f func(core.ProcessID, core.Node)) {
	s.onSpawn = append(s.onSpawn, f)
}

// OnKill registers a hook invoked when a process leaves.
func (s *System) OnKill(f func(core.ProcessID)) { s.onKill = append(s.onKill, f) }

// OnActivate registers a hook invoked when a process's join returns.
func (s *System) OnActivate(f func(core.ProcessID)) {
	s.onActivate = append(s.onActivate, f)
}

// SpawnProcess implements churn.Host: a fresh process enters and begins
// its join.
func (s *System) SpawnProcess() core.ProcessID {
	id, _ := s.Spawn()
	return id
}

// Spawn creates a fresh (non-bootstrap) process and returns its identity
// and protocol node. Scenario scripts use the node handle directly.
func (s *System) Spawn() (core.ProcessID, core.Node) {
	p := s.spawn(core.SpawnContext{})
	return p.id, p.node
}

func (s *System) spawn(sc core.SpawnContext) *process {
	id := s.tracker.AllocateID()
	p := &process{sys: s, id: id}
	s.procs[id] = p
	s.tracker.Entered(id, s.sched.Now())
	// The process is in listening mode from the instant it enters: attach
	// before Start so it can receive messages during its own join.
	s.net.Attach(p)
	p.node = s.cfg.Factory(p, sc)
	if sc.Bootstrap {
		// Bootstrap processes are active at time 0 by definition.
		s.tracker.MarkBootstrap(id)
		s.tracker.Activated(id, s.sched.Now())
	}
	p.node.Start()
	s.refreshPlacement()
	for _, f := range s.onSpawn {
		f(id, p.node)
	}
	return p
}

// KillProcess implements churn.Host: the process leaves the system
// immediately and forever.
func (s *System) KillProcess(id core.ProcessID) {
	p, ok := s.procs[id]
	if !ok {
		return
	}
	p.departed = true
	s.net.Detach(id)
	s.tracker.Departed(id, s.sched.Now())
	delete(s.procs, id)
	s.refreshPlacement()
	for _, f := range s.onKill {
		f(id)
	}
}

// Node returns the protocol node for a present process (nil if absent).
func (s *System) Node(id core.ProcessID) core.Node {
	if p, ok := s.procs[id]; ok {
		return p.node
	}
	return nil
}

// ForEachNode visits every present process's node in ascending id order
// (deterministic — safe to drive assertions from).
func (s *System) ForEachNode(f func(core.ProcessID, core.Node)) {
	ids := make([]core.ProcessID, 0, len(s.procs))
	for id := range s.procs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f(id, s.procs[id].node)
	}
}

// Present reports whether id is in the system.
func (s *System) Present(id core.ProcessID) bool {
	_, ok := s.procs[id]
	return ok
}

// ActiveIDs returns the identities of currently active processes.
func (s *System) ActiveIDs() []core.ProcessID { return s.tracker.ActiveIDs() }

// RandomActive returns a uniformly random active process, excluding the
// given identities. ok is false when none qualifies.
func (s *System) RandomActive(exclude ...core.ProcessID) (core.ProcessID, bool) {
	ids := s.tracker.ActiveIDs()
	if len(exclude) > 0 {
		skip := make(map[core.ProcessID]bool, len(exclude))
		for _, e := range exclude {
			skip[e] = true
		}
		kept := ids[:0]
		for _, id := range ids {
			if !skip[id] {
				kept = append(kept, id)
			}
		}
		ids = kept
	}
	if len(ids) == 0 {
		return core.NoProcess, false
	}
	return ids[s.rng.Intn(len(ids))], true
}

// RunFor advances the simulation d time units.
func (s *System) RunFor(d sim.Duration) error { return s.sched.RunFor(d) }

// RunUntil advances the simulation to time t.
func (s *System) RunUntil(t sim.Time) error { return s.sched.RunUntil(t) }

// process binds one protocol node to the system. It implements both
// core.Env (the node's runtime surface) and netsim.Endpoint (delivery).
type process struct {
	sys      *System
	id       core.ProcessID
	node     core.Node
	departed bool
}

var (
	_ core.Env        = (*process)(nil)
	_ core.Placed     = (*process)(nil)
	_ netsim.Endpoint = (*process)(nil)
)

// Placement implements core.Placed: the system's current view, nil when
// sharding is disabled.
func (p *process) Placement() core.PlacementView {
	if v := p.sys.view; v != nil {
		return v
	}
	return nil
}

// ID implements core.Env and netsim.Endpoint.
func (p *process) ID() core.ProcessID { return p.id }

// Now implements core.Env.
func (p *process) Now() sim.Time { return p.sys.sched.Now() }

// Send implements core.Env.
func (p *process) Send(to core.ProcessID, m core.Message) {
	if p.departed {
		return
	}
	p.sys.net.Send(p.id, to, m)
}

// Broadcast implements core.Env.
func (p *process) Broadcast(m core.Message) {
	if p.departed {
		return
	}
	p.sys.net.Broadcast(p.id, m)
}

// After implements core.Env. The callback is suppressed once the process
// has left: a departed process executes nothing.
func (p *process) After(d sim.Duration, fn func()) {
	p.sys.sched.After(d, func() {
		if p.departed {
			return
		}
		fn()
	})
}

// Delta implements core.Env.
func (p *process) Delta() sim.Duration { return p.sys.cfg.Delta }

// SystemSize implements core.Env.
func (p *process) SystemSize() int { return p.sys.cfg.N }

// MarkActive implements core.Env.
func (p *process) MarkActive() {
	if p.departed {
		return
	}
	p.sys.tracker.Activated(p.id, p.sys.sched.Now())
	for _, f := range p.sys.onActivate {
		f(p.id)
	}
}

// Deliver implements netsim.Endpoint.
func (p *process) Deliver(from core.ProcessID, m core.Message) {
	if p.departed {
		return
	}
	p.node.Deliver(from, m)
}
