package dynsys_test

import (
	"testing"
	"testing/quick"

	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/netsim"
	"churnreg/internal/sim"
	"churnreg/internal/syncreg"
)

func config(n int, churnRate float64) dynsys.Config {
	return dynsys.Config{
		N:         n,
		Delta:     5,
		Model:     netsim.SynchronousModel{Delta: 5},
		Factory:   syncreg.Factory(syncreg.Options{}),
		Seed:      1,
		ChurnRate: churnRate,
		Initial:   core.VersionedValue{Val: 0, SN: 0},
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*dynsys.Config)
	}{
		{"zero N", func(c *dynsys.Config) { c.N = 0 }},
		{"nil model", func(c *dynsys.Config) { c.Model = nil }},
		{"nil factory", func(c *dynsys.Config) { c.Factory = nil }},
		{"bad churn", func(c *dynsys.Config) { c.ChurnRate = 1.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := config(5, 0)
			tc.mutate(&cfg)
			if _, err := dynsys.New(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestBootstrapPopulation(t *testing.T) {
	sys, err := dynsys.New(config(7, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Network().Size(); got != 7 {
		t.Fatalf("present = %d, want 7", got)
	}
	if got := len(sys.ActiveIDs()); got != 7 {
		t.Fatalf("active = %d, want 7", got)
	}
	if sys.Now() != 0 {
		t.Fatalf("time = %v, want 0", sys.Now())
	}
}

func TestSpawnAndKillLifecycle(t *testing.T) {
	sys, err := dynsys.New(config(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	id, node := sys.Spawn()
	if node == nil || !sys.Present(id) {
		t.Fatal("spawned process not present")
	}
	if node.Active() {
		t.Fatal("fresh joiner already active")
	}
	rec := sys.Tracker().Record(id)
	if rec == nil || rec.Entered != 0 {
		t.Fatalf("entry not recorded: %+v", rec)
	}
	sys.KillProcess(id)
	if sys.Present(id) {
		t.Fatal("killed process still present")
	}
	if sys.Node(id) != nil {
		t.Fatal("killed process still has a node")
	}
	// Double-kill is a no-op.
	sys.KillProcess(id)
}

func TestDepartedProcessTimersSuppressed(t *testing.T) {
	sys, err := dynsys.New(config(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	// A joiner schedules its join timers at spawn; killing it before they
	// fire must not activate it.
	id, _ := sys.Spawn()
	sys.KillProcess(id)
	if err := sys.RunFor(100); err != nil {
		t.Fatal(err)
	}
	rec := sys.Tracker().Record(id)
	if rec.IsActive() {
		t.Fatal("departed process became active")
	}
}

func TestOnSpawnAndOnKillHooks(t *testing.T) {
	sys, err := dynsys.New(config(4, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	var spawns, kills int
	sys.OnSpawn(func(core.ProcessID, core.Node) { spawns++ })
	sys.OnKill(func(core.ProcessID) { kills++ })
	if err := sys.RunFor(200); err != nil {
		t.Fatal(err)
	}
	if spawns == 0 || kills == 0 {
		t.Fatalf("hooks not invoked: spawns=%d kills=%d", spawns, kills)
	}
	if spawns != kills {
		t.Fatalf("spawns %d != kills %d under constant churn", spawns, kills)
	}
}

func TestRandomActiveExcludes(t *testing.T) {
	sys, err := dynsys.New(config(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	ids := sys.ActiveIDs()
	for i := 0; i < 50; i++ {
		got, ok := sys.RandomActive(ids[0], ids[1])
		if !ok || got != ids[2] {
			t.Fatalf("RandomActive with exclusions = %v, %v", got, ok)
		}
	}
	_, ok := sys.RandomActive(ids[0], ids[1], ids[2])
	if ok {
		t.Fatal("RandomActive found someone in a fully excluded pool")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (uint64, int, sim.Time) {
		sys, err := dynsys.New(config(20, 0.03))
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.RunFor(500); err != nil {
			t.Fatal(err)
		}
		completed, _, _ := sys.Tracker().JoinStats()
		return sys.Network().Stats().Sent, completed, sys.Now()
	}
	s1, c1, t1 := run()
	s2, c2, t2 := run()
	if s1 != s2 || c1 != c2 || t1 != t2 {
		t.Fatalf("same seed diverged: (%d,%d,%v) vs (%d,%d,%v)", s1, c1, t1, s2, c2, t2)
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	sent := make(map[uint64]bool)
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := config(20, 0.03)
		cfg.Seed = seed
		sys, err := dynsys.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.RunFor(500); err != nil {
			t.Fatal(err)
		}
		sent[sys.Network().Stats().Sent] = true
	}
	if len(sent) < 2 {
		t.Fatal("three different seeds produced identical message counts")
	}
}

// Property: under any churn rate in range, the population is exactly N at
// every sampled instant, and active processes never exceed the population.
func TestPopulationAndActiveInvariantProperty(t *testing.T) {
	f := func(seed uint64, rateRaw uint8) bool {
		cfg := config(15, float64(rateRaw%30)/1000.0) // 0 .. 0.029
		cfg.Seed = seed
		sys, err := dynsys.New(cfg)
		if err != nil {
			return false
		}
		for i := 0; i < 30; i++ {
			if err := sys.RunFor(10); err != nil {
				return false
			}
			if sys.Network().Size() != 15 {
				return false
			}
			if len(sys.ActiveIDs()) > 15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMinLifetimeHonoredBySystem(t *testing.T) {
	cfg := config(10, 0.05)
	cfg.MinLifetime = 40
	sys, err := dynsys.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(400); err != nil {
		t.Fatal(err)
	}
	for _, r := range sys.Tracker().Records() {
		if r.Departed == (1<<63-1) || r.Entered == 0 {
			continue // still present, or bootstrap
		}
		if r.Departed.Sub(r.Entered) < 40 {
			t.Fatalf("process %v lived only %d < MinLifetime", r.ID, r.Departed.Sub(r.Entered))
		}
	}
}
