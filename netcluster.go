package churnreg

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"churnreg/internal/core"
	"churnreg/internal/nettransport"
	"churnreg/internal/sim"
)

// NetCluster runs the chosen protocol over REAL TCP sockets: every
// process owns a listener on 127.0.0.1, dials its peers, and speaks the
// internal/wire binary codec — the same transport cmd/regserve deploys
// across machines, here packaged as an in-process cluster so library
// callers and examples can opt into real networking by swapping one
// constructor. The API mirrors LiveCluster; protocol state machines are
// identical across SimCluster, LiveCluster, and NetCluster.
//
// Like LiveCluster there is no churn engine (drive membership with Join,
// Leave, and Kill) and no built-in history checking. The synchronous
// protocol's δ budget must cover genuine TCP round-trips plus scheduler
// slop — keep Delta×Tick at tens of milliseconds.
//
// Concurrency matches LiveCluster: any number of goroutines may issue
// reads and writes at once; every call pipelines as its own operation on
// its node, across keys and on one key. Route one key's writes through
// one node (WriteKey uses the designated writer for exactly this).
type NetCluster struct {
	opts   options
	mu     sync.Mutex
	nodes  map[ProcessID]*nettransport.Transport
	writer ProcessID
	nextID ProcessID
}

// NewNetCluster builds and starts a TCP-backed cluster of n processes on
// loopback ephemeral ports.
func NewNetCluster(opt ...Option) (*NetCluster, error) {
	o := defaults()
	for _, f := range opt {
		f(&o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	c := &NetCluster{opts: o, nodes: make(map[ProcessID]*nettransport.Transport)}
	trs := make([]*nettransport.Transport, 0, o.n)
	addrs := make([]string, 0, o.n)
	for i := 0; i < o.n; i++ {
		id := ProcessID(i + 1)
		tr, err := nettransport.New(c.transportConfig(id, core.SpawnContext{
			Bootstrap:   true,
			Initial:     core.VersionedValue{Val: core.Value(o.initial), SN: 0},
			InitialKeys: o.initialKeys,
		}))
		if err != nil {
			for _, prev := range trs {
				prev.Close()
			}
			return nil, err
		}
		trs = append(trs, tr)
		addrs = append(addrs, tr.Addr())
		c.nodes[id] = tr
	}
	for i, tr := range trs {
		seeds := make([]string, 0, o.n-1)
		for j, a := range addrs {
			if j != i {
				seeds = append(seeds, a)
			}
		}
		tr.Start(seeds)
	}
	c.nextID = ProcessID(o.n)
	c.writer = 1
	return c, nil
}

func (c *NetCluster) transportConfig(id ProcessID, sc core.SpawnContext) nettransport.Config {
	return nettransport.Config{
		ID:          id,
		ListenAddr:  "127.0.0.1:0",
		N:           c.opts.n,
		Delta:       sim.Duration(c.opts.delta),
		Tick:        c.opts.tick,
		Factory:     c.opts.factory(),
		Bootstrap:   sc.Bootstrap,
		Initial:     sc.Initial,
		InitialKeys: sc.InitialKeys,
		Placement:   c.opts.placement,
	}
}

// Close shuts every process down and waits for their goroutines.
func (c *NetCluster) Close() {
	c.mu.Lock()
	trs := make([]*nettransport.Transport, 0, len(c.nodes))
	for id, tr := range c.nodes {
		trs = append(trs, tr)
		delete(c.nodes, id)
	}
	c.mu.Unlock()
	for _, tr := range trs {
		tr.Close()
	}
}

// Size returns the number of present processes.
func (c *NetCluster) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// IDs returns the present processes' identities, ascending.
func (c *NetCluster) IDs() []ProcessID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ProcessID, 0, len(c.nodes))
	for id := range c.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Addrs returns the present processes' TCP listen addresses, keyed by id
// — handy for pointing an external regserve at an in-process cluster.
func (c *NetCluster) Addrs() map[ProcessID]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[ProcessID]string, len(c.nodes))
	for id, tr := range c.nodes {
		out[id] = tr.Addr()
	}
	return out
}

// Join adds a fresh process: it dials the present membership as seeds,
// runs the paper's join protocol over TCP, and blocks until the join
// returns.
func (c *NetCluster) Join() (ProcessID, error) {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	seeds := make([]string, 0, len(c.nodes))
	for _, tr := range c.nodes {
		seeds = append(seeds, tr.Addr())
	}
	c.mu.Unlock()
	if len(seeds) == 0 {
		return NoProcess, ErrNoActiveProcess
	}
	tr, err := nettransport.New(c.transportConfig(id, core.SpawnContext{}))
	if err != nil {
		return NoProcess, err
	}
	c.mu.Lock()
	c.nodes[id] = tr
	c.mu.Unlock()
	tr.Start(seeds)
	if err := tr.WaitActive(c.opts.opTimeout); err != nil {
		c.mu.Lock()
		delete(c.nodes, id)
		c.mu.Unlock()
		tr.Close()
		return id, fmt.Errorf("churnreg: net join %v: %w", id, err)
	}
	return id, nil
}

// NoProcess is the zero ProcessID (re-exported for callers).
const NoProcess = core.NoProcess

// Leave removes the process gracefully: peers learn of the departure and
// stop dialing it.
func (c *NetCluster) Leave(id ProcessID) error {
	tr, err := c.take(id)
	if err != nil {
		return err
	}
	tr.Leave()
	return nil
}

// Kill removes the process abruptly (no LEAVE frame), as a crash would.
func (c *NetCluster) Kill(id ProcessID) error {
	tr, err := c.take(id)
	if err != nil {
		return err
	}
	tr.Close()
	return nil
}

func (c *NetCluster) take(id ProcessID) (*nettransport.Transport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tr, ok := c.nodes[id]
	if !ok {
		return nil, ErrNoActiveProcess
	}
	delete(c.nodes, id)
	return tr, nil
}

func (c *NetCluster) get(id ProcessID) (*nettransport.Transport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tr, ok := c.nodes[id]
	if !ok {
		return nil, ErrNoActiveProcess
	}
	return tr, nil
}

// WriterID returns the currently designated writer process.
func (c *NetCluster) WriterID() ProcessID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writer
}

// Write stores v in register 0 via the designated writer process.
func (c *NetCluster) Write(v int64) error { return c.WriteKey(core.DefaultRegister, v) }

// WriteKey stores v in one register via the designated writer process,
// adopting a successor if the writer departed (same value-continuity wait
// as LiveCluster: the last completed write propagated within δ of the
// departure).
func (c *NetCluster) WriteKey(k RegisterID, v int64) error {
	tr, err := c.writerTransport()
	if err != nil {
		return err
	}
	if _, err := tr.WriteKey(k, core.Value(v), c.opts.opTimeout); err != nil {
		return fmt.Errorf("churnreg: net write %v: %w", k, err)
	}
	return nil
}

// WriteBatch stores several keys' values via the designated writer: one
// broadcast for batching protocols, concurrent per-key writes otherwise.
func (c *NetCluster) WriteBatch(kvs map[RegisterID]int64) error {
	if len(kvs) == 0 {
		return nil
	}
	tr, err := c.writerTransport()
	if err != nil {
		return err
	}
	ks := make([]RegisterID, 0, len(kvs))
	for k := range kvs {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	entries := make([]core.KeyedWrite, len(ks))
	for i, k := range ks {
		entries[i] = core.KeyedWrite{Reg: k, Val: core.Value(kvs[k])}
	}
	if _, err := tr.WriteBatch(entries, c.opts.opTimeout); err != nil {
		return fmt.Errorf("churnreg: net write batch: %w", err)
	}
	return nil
}

// writerTransport resolves the designated writer, adopting the lowest
// present id after a propagation wait if the writer left.
func (c *NetCluster) writerTransport() (*nettransport.Transport, error) {
	c.mu.Lock()
	tr, ok := c.nodes[c.writer]
	c.mu.Unlock()
	if ok {
		return tr, nil
	}
	// The writer departed. Wait out value propagation (see
	// LiveCluster.WriteKey) before a successor writes.
	time.Sleep(5 * time.Duration(c.opts.delta) * c.opts.tick)
	ids := c.IDs()
	if len(ids) == 0 {
		return nil, ErrNoActiveProcess
	}
	c.mu.Lock()
	c.writer = ids[0]
	tr = c.nodes[c.writer]
	c.mu.Unlock()
	if tr == nil {
		return nil, ErrNoActiveProcess
	}
	return tr, nil
}

// WriteAt stores v in register 0 via a specific process.
func (c *NetCluster) WriteAt(id ProcessID, v int64) error {
	return c.WriteKeyAt(id, core.DefaultRegister, v)
}

// WriteKeyAt stores v in one register via a specific process.
func (c *NetCluster) WriteKeyAt(id ProcessID, k RegisterID, v int64) error {
	tr, err := c.get(id)
	if err != nil {
		return err
	}
	if _, err := tr.WriteKey(k, core.Value(v), c.opts.opTimeout); err != nil {
		return fmt.Errorf("churnreg: net write %v at %v: %w", k, id, err)
	}
	return nil
}

// ReadAt reads register 0 via a specific process.
func (c *NetCluster) ReadAt(id ProcessID) (int64, error) {
	return c.ReadKeyAt(id, core.DefaultRegister)
}

// ReadKeyAt reads one register via a specific process.
func (c *NetCluster) ReadKeyAt(id ProcessID, k RegisterID) (int64, error) {
	tr, err := c.get(id)
	if err != nil {
		return 0, err
	}
	v, err := tr.ReadKey(k, c.opts.opTimeout)
	if err != nil {
		return 0, fmt.Errorf("churnreg: net read %v at %v: %w", k, id, err)
	}
	if v.IsBottom() {
		return 0, ErrValueUnavailable
	}
	return int64(v.Val), nil
}

// Read reads register 0 via any present process.
func (c *NetCluster) Read() (int64, error) { return c.ReadKey(core.DefaultRegister) }

// ReadKey reads one register via any present process, preferring one that
// is not the writer.
func (c *NetCluster) ReadKey(k RegisterID) (int64, error) {
	ids := c.IDs()
	if len(ids) == 0 {
		return 0, ErrNoActiveProcess
	}
	writer := c.WriterID()
	for _, id := range ids {
		if id != writer {
			if v, err := c.ReadKeyAt(id, k); err == nil {
				return v, nil
			}
		}
	}
	return c.ReadKeyAt(writer, k)
}
