package churnreg_test

// Runnable godoc examples for the public API.

import (
	"fmt"

	"churnreg"
)

// ExampleNewSimCluster shows the basic write/read/join flow on the
// deterministic simulator.
func ExampleNewSimCluster() {
	c, err := churnreg.NewSimCluster(
		churnreg.WithN(10),
		churnreg.WithDelta(5),
		churnreg.WithChurnRate(0.01),
		churnreg.WithSeed(1),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	_ = c.Write(42)
	v, _ := c.Read()
	fmt.Println("read:", v)

	id, _ := c.Join()
	v2, _ := c.ReadAt(id)
	fmt.Println("joiner read:", v2)
	// Output:
	// read: 42
	// joiner read: 42
}

// ExampleSimCluster_Check verifies a whole recorded execution against the
// regular-register specification.
func ExampleSimCluster_Check() {
	c, _ := churnreg.NewSimCluster(
		churnreg.WithN(8),
		churnreg.WithDelta(5),
		churnreg.WithProtocol(churnreg.EventuallySynchronous),
	)
	for i := int64(1); i <= 3; i++ {
		_ = c.Write(i * 100)
		_, _ = c.Read()
	}
	rep := c.Check()
	fmt.Println("ok:", rep.OK(), "reads:", rep.Reads, "writes:", rep.Writes)
	// Output:
	// ok: true reads: 3 writes: 3
}

// ExampleSyncChurnBound shows the paper's churn bounds for both protocols.
func ExampleSyncChurnBound() {
	delta := int64(5)
	n := 10
	fmt.Printf("sync bound 1/(3δ) = %.4f\n", churnreg.SyncChurnBound(delta))
	fmt.Printf("esync bound 1/(3δn) = %.4f\n", churnreg.ESyncChurnBound(delta, n))
	// Output:
	// sync bound 1/(3δ) = 0.0667
	// esync bound 1/(3δn) = 0.0067
}
