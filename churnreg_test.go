package churnreg_test

import (
	"testing"
	"time"

	"churnreg"
)

func TestSimClusterQuickstartFlow(t *testing.T) {
	for _, p := range []churnreg.Protocol{churnreg.Synchronous, churnreg.EventuallySynchronous} {
		t.Run(p.String(), func(t *testing.T) {
			c, err := churnreg.NewSimCluster(
				churnreg.WithN(10),
				churnreg.WithDelta(5),
				churnreg.WithProtocol(p),
			)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Write(42); err != nil {
				t.Fatalf("Write: %v", err)
			}
			v, err := c.Read()
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if v != 42 {
				t.Fatalf("Read = %d, want 42", v)
			}
			id, err := c.Join()
			if err != nil {
				t.Fatalf("Join: %v", err)
			}
			v2, err := c.ReadAt(id)
			if err != nil {
				t.Fatalf("ReadAt joiner: %v", err)
			}
			if v2 != 42 {
				t.Fatalf("joiner read %d, want 42", v2)
			}
			rep := c.Check()
			if !rep.OK() {
				t.Fatalf("check failed: %s", rep)
			}
			if rep.Reads != 2 || rep.Writes != 1 {
				t.Fatalf("report counts wrong: %s", rep)
			}
		})
	}
}

func TestSimClusterUnderChurn(t *testing.T) {
	c, err := churnreg.NewSimCluster(
		churnreg.WithN(20),
		churnreg.WithDelta(5),
		churnreg.WithChurnRate(0.01), // well under 1/(3δ)=0.0667
		churnreg.WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := c.Write(int64(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		c.Run(30)
		v, err := c.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if v != int64(i) {
			t.Fatalf("read %d after write %d", v, i)
		}
	}
	if rep := c.Check(); !rep.OK() {
		t.Fatalf("violations under churn below the bound: %s", rep)
	}
	if c.Size() != 20 {
		t.Fatalf("population drifted: %d", c.Size())
	}
}

func TestSimClusterInitialValue(t *testing.T) {
	c, err := churnreg.NewSimCluster(churnreg.WithInitialValue(99))
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != 99 {
		t.Fatalf("initial read = %d, want 99", v)
	}
}

func TestSimClusterGST(t *testing.T) {
	c, err := churnreg.NewSimCluster(
		churnreg.WithProtocol(churnreg.EventuallySynchronous),
		churnreg.WithN(6),
		churnreg.WithDelta(5),
		churnreg.WithGST(200, 50),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Operations during the asynchronous period still terminate (delays
	// are finite) and are always safe.
	if err := c.Write(5); err != nil {
		t.Fatalf("pre-GST write: %v", err)
	}
	v, err := c.Read()
	if err != nil {
		t.Fatalf("pre-GST read: %v", err)
	}
	if v != 5 {
		t.Fatalf("read %d, want 5", v)
	}
	if rep := c.Check(); !rep.OK() {
		t.Fatalf("GST run violated regularity: %s", rep)
	}
}

func TestSimClusterLeaveAndContinue(t *testing.T) {
	c, err := churnreg.NewSimCluster(churnreg.WithN(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(1); err != nil {
		t.Fatal(err)
	}
	ids := c.ActiveIDs()
	c.Leave(ids[len(ids)-1])
	c.Run(20)
	if c.ActiveCount() != 4 {
		t.Fatalf("active = %d after leave, want 4", c.ActiveCount())
	}
	v, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("read %d, want 1", v)
	}
}

func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []churnreg.Option
	}{
		{"zero n", []churnreg.Option{churnreg.WithN(0)}},
		{"zero delta", []churnreg.Option{churnreg.WithDelta(0)}},
		{"churn 1.0", []churnreg.Option{churnreg.WithChurnRate(1.0)}},
		{"bad protocol", []churnreg.Option{churnreg.WithProtocol(churnreg.Protocol(99))}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := churnreg.NewSimCluster(tc.opts...); err == nil {
				t.Fatal("invalid options accepted")
			}
			if _, err := churnreg.NewLiveCluster(tc.opts...); err == nil {
				t.Fatal("invalid live options accepted")
			}
		})
	}
}

func TestChurnBoundHelpers(t *testing.T) {
	if churnreg.SyncChurnBound(5) != 1.0/15 {
		t.Fatal("SyncChurnBound wrong")
	}
	if churnreg.ESyncChurnBound(5, 10) != 1.0/150 {
		t.Fatal("ESyncChurnBound wrong")
	}
	if churnreg.Synchronous.String() != "synchronous" ||
		churnreg.EventuallySynchronous.String() != "eventually-synchronous" ||
		churnreg.StaticABD.String() != "static-abd" {
		t.Fatal("protocol names wrong")
	}
}

func TestLiveClusterEndToEnd(t *testing.T) {
	c, err := churnreg.NewLiveCluster(
		churnreg.WithN(5),
		churnreg.WithDelta(20),
		churnreg.WithTick(time.Millisecond),
		churnreg.WithProtocol(churnreg.EventuallySynchronous),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(31); err != nil {
		t.Fatalf("Write: %v", err)
	}
	v, err := c.Read()
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if v != 31 {
		t.Fatalf("Read = %d, want 31", v)
	}
	id, err := c.Join()
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	v2, err := c.ReadAt(id)
	if err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if v2 != 31 {
		t.Fatalf("joiner read %d, want 31", v2)
	}
	if err := c.Leave(id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadAt(id); err == nil {
		t.Fatal("read on departed process succeeded")
	}
}

func TestLiveClusterWriterFailover(t *testing.T) {
	c, err := churnreg.NewLiveCluster(
		churnreg.WithN(5),
		churnreg.WithDelta(20),
		churnreg.WithProtocol(churnreg.Synchronous),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(1); err != nil {
		t.Fatal(err)
	}
	// Kill the current writer; the next Write must fail over to a
	// successor that already holds write #1 (the failover settle wait).
	if err := c.Leave(c.WriterID()); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(2); err != nil {
		t.Fatalf("write after writer loss: %v", err)
	}
	// Under load, real delays can exceed the synchronous protocol's δ
	// budget; the WRITE still arrives eventually — poll for it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := c.Read()
		if err != nil {
			t.Fatal(err)
		}
		if v == 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("read %d, want 2", v)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
