package churnreg_test

import (
	"fmt"
	"testing"

	"churnreg"
)

// TestSimClusterFullyDeterministic pins the public API's reproducibility
// promise: identical options ⇒ identical observable behaviour, including
// op results, timing, and membership.
func TestSimClusterFullyDeterministic(t *testing.T) {
	run := func() string {
		c, err := churnreg.NewSimCluster(
			churnreg.WithN(15),
			churnreg.WithDelta(5),
			churnreg.WithChurnRate(0.02),
			churnreg.WithSeed(77),
			churnreg.WithProtocol(churnreg.Synchronous),
		)
		if err != nil {
			t.Fatal(err)
		}
		var transcript string
		for i := 0; i < 10; i++ {
			if err := c.Write(int64(i)); err != nil {
				t.Fatal(err)
			}
			v, err := c.Read()
			if err != nil {
				t.Fatal(err)
			}
			id, err := c.Join()
			if err != nil {
				t.Fatal(err)
			}
			transcript += fmt.Sprintf("t=%d v=%d join=%v active=%d;", c.Now(), v, id, c.ActiveCount())
			c.Run(25)
		}
		rep := c.Check()
		transcript += fmt.Sprintf("reads=%d writes=%d ok=%v", rep.Reads, rep.Writes, rep.OK())
		return transcript
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same options diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestProtocolsAgreeOnQuietSystem: with no churn and sequential ops, all
// three protocols must produce identical read results (they implement the
// same abstraction).
func TestProtocolsAgreeOnQuietSystem(t *testing.T) {
	values := []int64{5, 17, 4, 99}
	for _, p := range []churnreg.Protocol{churnreg.Synchronous, churnreg.EventuallySynchronous, churnreg.StaticABD} {
		t.Run(p.String(), func(t *testing.T) {
			c, err := churnreg.NewSimCluster(
				churnreg.WithN(9),
				churnreg.WithDelta(5),
				churnreg.WithProtocol(p),
			)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range values {
				if err := c.Write(v); err != nil {
					t.Fatal(err)
				}
				got, err := c.Read()
				if err != nil {
					t.Fatal(err)
				}
				if got != v {
					t.Fatalf("%v: read %d after writing %d", p, got, v)
				}
			}
			if rep := c.Check(); !rep.OK() {
				t.Fatalf("%v: %s", p, rep)
			}
		})
	}
}
