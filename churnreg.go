// Package churnreg implements regular registers for dynamic distributed
// systems with constant churn, reproducing "Implementing a Register in a
// Dynamic Distributed System" (Baldoni, Bonomi, Kermarrec, Raynal —
// ICDCS 2009 / IRISA PI 1913).
//
// A regular register is a shared read/write object whose reads return the
// last value written before the read began, or a value written
// concurrently with it. The package provides the paper's two protocols —
// one for synchronous systems (fast local reads; churn bound c < 1/(3δ))
// and one for eventually synchronous systems (majority quorums; churn
// bound c ≤ 1/(3δn)) — plus a static-membership ABD-style baseline, over
// two runtimes:
//
//   - SimCluster: a deterministic discrete-event simulation with a churn
//     engine and built-in correctness checking. Every run is a pure
//     function of its options; this is what the experiment suite uses.
//   - LiveCluster: a real-time runtime (goroutine per process, channels
//     as links) running the identical protocol state machines.
//
// Beyond the paper's single register, every cluster hosts a KEYED
// NAMESPACE of independent regular registers over one membership
// substrate: ReadKey/WriteKey address any RegisterID (keys spring up on
// first use; Read/Write are key-0 sugar), a process joins ONCE however
// many keys it serves (join replies carry a snapshot of the replier's
// whole register space), and the checker verifies regularity per key.
//
// Quick start:
//
//	c, err := churnreg.NewSimCluster(
//		churnreg.WithN(20),
//		churnreg.WithDelta(5),
//		churnreg.WithChurnRate(0.01),
//	)
//	if err != nil { ... }
//	_ = c.Write(42)
//	v, _ := c.Read()        // 42
//	id, _ := c.Join()       // a new process enters and completes its join
//	v2, _ := c.ReadAt(id)   // 42 — the joiner learned the value
//	report := c.Check()     // regularity verdict over everything recorded
package churnreg

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"churnreg/internal/abd"
	"churnreg/internal/churn"
	"churnreg/internal/core"
	"churnreg/internal/esyncreg"
	"churnreg/internal/netsim"
	"churnreg/internal/placement"
	"churnreg/internal/shard"
	"churnreg/internal/sim"
	"churnreg/internal/syncreg"
)

// Protocol selects a register implementation.
type Protocol int

const (
	// Synchronous is the §3 protocol: reads are local and free; writes
	// take exactly δ; joins take 3δ; requires churn c < 1/(3δ) and a
	// network that really delivers within δ.
	Synchronous Protocol = iota + 1
	// EventuallySynchronous is the §5 protocol: majority-quorum reads,
	// writes, and joins; time-free; requires a majority of the n
	// processes active and churn c ≤ 1/(3δn).
	EventuallySynchronous
	// StaticABD is the static-membership baseline the paper contrasts
	// with: correct without churn, degrades under it (no join protocol).
	StaticABD
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case Synchronous:
		return "synchronous"
	case EventuallySynchronous:
		return "eventually-synchronous"
	case StaticABD:
		return "static-abd"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// ErrNoActiveProcess is returned when an operation finds no active process
// to run on.
var ErrNoActiveProcess = errors.New("churnreg: no active process available")

// ErrValueUnavailable is returned when a read cannot produce a value.
var ErrValueUnavailable = errors.New("churnreg: register value unavailable")

// options collects cluster configuration; adjusted via Option functions.
type options struct {
	n           int
	delta       int64
	churnRate   float64
	seed        uint64
	protocol    Protocol
	initial     int64
	initialKeys []core.KeyedValue
	gst         int64
	preGSTMax   int64
	minLifetime int64
	policy      churn.RemovePolicy
	tick        time.Duration
	opTimeout   time.Duration
	placement   placement.Config
}

func defaults() options {
	return options{
		n:         10,
		delta:     5,
		seed:      1,
		protocol:  Synchronous,
		gst:       -1, // synchronous timing throughout
		policy:    churn.RemoveRandom,
		tick:      time.Millisecond,
		opTimeout: 30 * time.Second,
	}
}

// Option configures a cluster.
type Option func(*options)

// WithN sets the constant system size n (default 10).
func WithN(n int) Option { return func(o *options) { o.n = n } }

// WithDelta sets the communication bound δ in ticks (default 5).
func WithDelta(delta int64) Option { return func(o *options) { o.delta = delta } }

// WithChurnRate sets the churn rate c: the fraction of the n processes
// replaced per tick (default 0; must be in [0, 1)).
func WithChurnRate(c float64) Option { return func(o *options) { o.churnRate = c } }

// WithSeed sets the deterministic seed (default 1).
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithProtocol selects the register implementation (default Synchronous).
func WithProtocol(p Protocol) Option { return func(o *options) { o.protocol = p } }

// WithInitialValue sets register 0's initial value (default 0).
func WithInitialValue(v int64) Option { return func(o *options) { o.initial = v } }

// WithInitialKeys pre-provisions registers beyond key 0 on the bootstrap
// population: each named key starts holding its value with sequence
// number 0, known to every bootstrap process. Keys outside the map (and
// outside key 0) still work — they spring up lazily on first use with
// initial value 0. Must not name DefaultRegister (use WithInitialValue).
func WithInitialKeys(init map[RegisterID]int64) Option {
	return func(o *options) {
		ks := make([]RegisterID, 0, len(init))
		for k := range init {
			ks = append(ks, k)
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		o.initialKeys = make([]core.KeyedValue, len(ks))
		for i, k := range ks {
			o.initialKeys[i] = core.KeyedValue{Reg: k, Value: core.VersionedValue{Val: core.Value(init[k])}}
		}
	}
}

// WithGST makes the simulated network eventually synchronous: before tick
// gst, message delays are unbounded (up to preGSTMax); from gst on they
// respect δ. Only meaningful for SimCluster.
func WithGST(gst, preGSTMax int64) Option {
	return func(o *options) { o.gst, o.preGSTMax = gst, preGSTMax }
}

// WithMinLifetime prevents churn from removing processes younger than d
// ticks (the eventually synchronous analysis assumes joiners stay ≥ 3δ).
func WithMinLifetime(d int64) Option { return func(o *options) { o.minLifetime = d } }

// WithTick sets the real duration of one tick for LiveCluster (default
// 1ms; δ×tick must comfortably exceed OS timer slop for the synchronous
// protocol).
func WithTick(d time.Duration) Option { return func(o *options) { o.tick = d } }

// WithOperationTimeout bounds how long cluster-level operations wait
// (default 30s; SimCluster converts it to a simulated-step budget).
func WithOperationTimeout(d time.Duration) Option { return func(o *options) { o.opTimeout = d } }

// WithShards shards the keyspace: RegisterID → one of s shards (via
// consistent hashing) → a replica group of r processes over the live
// membership. Each process then holds — and each write's broadcast and
// quorum reaches — only the R replicas of the key's shard instead of the
// whole membership, so adding processes adds CAPACITY, not just fault
// tolerance. Operations invoked on a non-replica are forwarded to the
// group (reads to any member, writes to the shard primary), and
// membership changes move exactly the shards whose groups changed
// (snapshot handoff; see internal/shard). With r < n the per-key quorum
// shrinks from ⌊n/2⌋+1 to ⌊r/2⌋+1 — the quorum-intersection argument
// holds per shard. s = 0 (the default) disables sharding: every process
// replicates every key, the pre-sharding behavior, bit for bit.
func WithShards(s, r int) Option {
	return func(o *options) { o.placement = placement.Config{Shards: s, Replication: r} }
}

func (o options) validate() error {
	if o.n <= 0 {
		return fmt.Errorf("churnreg: n = %d, want > 0", o.n)
	}
	if o.delta < 1 {
		return fmt.Errorf("churnreg: delta = %d, want >= 1", o.delta)
	}
	if o.churnRate < 0 || o.churnRate >= 1 {
		return fmt.Errorf("churnreg: churn rate = %v, want [0, 1)", o.churnRate)
	}
	switch o.protocol {
	case Synchronous, EventuallySynchronous, StaticABD:
	default:
		return fmt.Errorf("churnreg: unknown protocol %d", int(o.protocol))
	}
	for _, kv := range o.initialKeys {
		if kv.Reg == core.DefaultRegister {
			return fmt.Errorf("churnreg: WithInitialKeys must not name register 0 (use WithInitialValue)")
		}
	}
	if err := o.placement.Validate(); err != nil {
		return fmt.Errorf("churnreg: %w", err)
	}
	return nil
}

// factory returns the protocol node factory for the options, wrapped in
// the sharding layer when WithShards is in effect.
func (o options) factory() core.NodeFactory {
	var f core.NodeFactory
	switch o.protocol {
	case EventuallySynchronous:
		f = esyncreg.Factory(esyncreg.Options{})
	case StaticABD:
		f = abd.Factory()
	default:
		f = syncreg.Factory(syncreg.Options{})
	}
	if o.placement.Enabled() {
		f = shard.Factory(f)
	}
	return f
}

// model returns the network delay model for the options.
func (o options) model() netsim.DelayModel {
	if o.gst >= 0 {
		return netsim.EventuallySynchronousModel{
			GST:       sim.Time(o.gst),
			Delta:     sim.Duration(o.delta),
			PreGSTMax: sim.Duration(o.preGSTMax),
		}
	}
	return netsim.SynchronousModel{Delta: sim.Duration(o.delta)}
}

// SyncChurnBound returns 1/(3δ), the synchronous protocol's churn bound.
func SyncChurnBound(delta int64) float64 { return 1.0 / (3.0 * float64(delta)) }

// ESyncChurnBound returns 1/(3δn), the eventually synchronous protocol's
// churn bound.
func ESyncChurnBound(delta int64, n int) float64 {
	return 1.0 / (3.0 * float64(delta) * float64(n))
}

// ProcessID identifies a process in a cluster (re-exported for callers).
type ProcessID = core.ProcessID

// RegisterID names one register of a cluster's keyed namespace
// (re-exported for callers). Key 0 is the register the plain Read/Write
// methods address; ReadKey/WriteKey reach the rest. Registers spring into
// existence on first use — there is no create step and no bound on the
// number of keys — while the churn-bound join machinery runs once per
// process regardless of how many keys it touches.
type RegisterID = core.RegisterID
