package churnreg_test

import (
	"testing"

	"churnreg"
)

func TestStringTableInternAndLookup(t *testing.T) {
	tab := churnreg.NewStringTable()
	a := tab.Intern("hello")
	b := tab.Intern("world")
	if a == b {
		t.Fatal("distinct strings interned to the same value")
	}
	if again := tab.Intern("hello"); again != a {
		t.Fatal("re-interning changed the value")
	}
	if s, ok := tab.Lookup(a); !ok || s != "hello" {
		t.Fatalf("Lookup(%d) = %q, %v", a, s, ok)
	}
	if _, ok := tab.Lookup(999); ok {
		t.Fatal("lookup of unknown value succeeded")
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
}

func TestSimClusterStringRoundTrip(t *testing.T) {
	c, err := churnreg.NewSimCluster(churnreg.WithN(8), churnreg.WithDelta(5))
	if err != nil {
		t.Fatal(err)
	}
	tab := churnreg.NewStringTable()
	if err := c.WriteString(tab, "deploying v2"); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadString(tab)
	if err != nil {
		t.Fatal(err)
	}
	if got != "deploying v2" {
		t.Fatalf("ReadString = %q", got)
	}
	// Reading the initial value (never interned) reports a clear error.
	c2, err := churnreg.NewSimCluster(churnreg.WithN(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.ReadString(tab); err == nil {
		t.Fatal("uninterned initial value resolved")
	}
}

func TestLiveClusterStringRoundTrip(t *testing.T) {
	c, err := churnreg.NewLiveCluster(
		churnreg.WithN(5),
		churnreg.WithDelta(20),
		churnreg.WithProtocol(churnreg.EventuallySynchronous),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tab := churnreg.NewStringTable()
	if err := c.WriteString(tab, "online"); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadString(tab)
	if err != nil {
		t.Fatal(err)
	}
	if got != "online" {
		t.Fatalf("ReadString = %q", got)
	}
}
