module churnreg

go 1.24
