package churnreg_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"churnreg"
	"churnreg/internal/core"
)

func TestSimClusterWriterFailoverAfterLeave(t *testing.T) {
	c, err := churnreg.NewSimCluster(churnreg.WithN(6), churnreg.WithDelta(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(1); err != nil {
		t.Fatal(err)
	}
	// Evict every process one at a time except two, writing in between:
	// the cluster must keep electing live writers.
	ids := c.ActiveIDs()
	for i, id := range ids[:4] {
		c.Leave(id)
		c.Run(20)
		if err := c.Write(int64(10 + i)); err != nil {
			t.Fatalf("write after leaving %v: %v", id, err)
		}
	}
	v, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != 13 {
		t.Fatalf("read %d, want 13", v)
	}
	if rep := c.Check(); !rep.OK() {
		t.Fatalf("failover broke regularity: %s", rep)
	}
}

func TestSimClusterReadAtAbsentProcess(t *testing.T) {
	c, err := churnreg.NewSimCluster(churnreg.WithN(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadAt(999); !errors.Is(err, churnreg.ErrNoActiveProcess) {
		t.Fatalf("ReadAt(absent) = %v, want ErrNoActiveProcess", err)
	}
}

func TestSimClusterJoinWithESyncUnderChurn(t *testing.T) {
	const delta = 5
	const n = 12
	c, err := churnreg.NewSimCluster(
		churnreg.WithN(n),
		churnreg.WithDelta(delta),
		churnreg.WithProtocol(churnreg.EventuallySynchronous),
		churnreg.WithChurnRate(churnreg.ESyncChurnBound(delta, n)),
		churnreg.WithMinLifetime(3*delta),
		churnreg.WithSeed(21),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(500); err != nil {
		t.Fatal(err)
	}
	c.Run(400)
	for i := 0; i < 3; i++ {
		id, err := c.Join()
		if err != nil {
			t.Fatalf("join %d under churn: %v", i, err)
		}
		v, err := c.ReadAt(id)
		if err != nil {
			t.Fatalf("read at joiner: %v", err)
		}
		if v != 500 {
			t.Fatalf("joiner read %d, want 500", v)
		}
		c.Run(100)
	}
	if rep := c.Check(); !rep.OK() {
		t.Fatalf("violations: %s", rep)
	}
}

func TestSimClusterNowAdvancesOnlyWhenDriven(t *testing.T) {
	c, err := churnreg.NewSimCluster(churnreg.WithN(4))
	if err != nil {
		t.Fatal(err)
	}
	if c.Now() != 0 {
		t.Fatalf("fresh cluster at t=%d", c.Now())
	}
	c.Run(37)
	if c.Now() != 37 {
		t.Fatalf("Now = %d after Run(37)", c.Now())
	}
	before := c.Now()
	_ = before
	// Operations advance time only as far as needed.
	if err := c.Write(1); err != nil {
		t.Fatal(err)
	}
	if c.Now() < 38 || c.Now() > 37+20 {
		t.Fatalf("write advanced clock to %d", c.Now())
	}
}

func TestLiveClusterConcurrentReaders(t *testing.T) {
	c, err := churnreg.NewLiveCluster(
		churnreg.WithN(5),
		churnreg.WithDelta(20),
		churnreg.WithTick(time.Millisecond),
		churnreg.WithProtocol(churnreg.EventuallySynchronous),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(7); err != nil {
		t.Fatal(err)
	}
	ids := c.IDs()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	var successes int64
	var mu sync.Mutex
	for g := 0; g < 4; g++ {
		for _, id := range ids {
			wg.Add(1)
			go func(id churnreg.ProcessID) {
				defer wg.Done()
				v, err := c.ReadAt(id)
				if err != nil {
					// A process runs one operation at a time: two
					// goroutines racing the same id legitimately collide.
					if errors.Is(err, core.ErrOpInProgress) {
						return
					}
					errs <- err
					return
				}
				if v != 7 {
					errs <- errors.New("stale concurrent read")
					return
				}
				mu.Lock()
				successes++
				mu.Unlock()
			}(id)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if successes < int64(len(ids)) {
		t.Fatalf("only %d successful concurrent reads across %d processes", successes, len(ids))
	}
}
