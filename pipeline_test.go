package churnreg

// Acceptance coverage for the concurrent operation engine in the
// deterministic simulator: N operations in flight on ONE key and across
// keys, through churn, with the spec checker passing per key and every
// node's operation table drained afterwards (no entry leaks after
// completion or invoker departure).

import (
	"errors"
	"testing"

	"churnreg/internal/core"
)

// TestSimPipelinedOpsOneKeyAndAcross drives bursts of pipelined writes
// and reads — eight deep on one key, plus one write per other key —
// under churn, then checks regularity per key and op-table reclamation.
func TestSimPipelinedOpsOneKeyAndAcross(t *testing.T) {
	c, err := NewSimCluster(
		WithN(10),
		WithDelta(5),
		WithProtocol(EventuallySynchronous),
		WithChurnRate(0.004),
		WithMinLifetime(60),
		WithSeed(23),
	)
	if err != nil {
		t.Fatal(err)
	}

	const hotKey = RegisterID(1)
	const depth = 8
	val := int64(0)
	for round := 0; round < 3; round++ {
		// One burst: depth pipelined writes to the hot key + one write to
		// each of 7 other keys, all in flight together.
		burst := make([]*PendingOp, 0, depth+7)
		var hotWrites []*PendingOp
		for i := 0; i < depth; i++ {
			val++
			p := c.StartWriteKey(hotKey, val)
			burst = append(burst, p)
			hotWrites = append(hotWrites, p)
		}
		for k := RegisterID(2); k <= 8; k++ {
			val++
			burst = append(burst, c.StartWriteKey(k, val))
		}
		if err := c.Await(burst...); err != nil {
			t.Fatalf("round %d write burst: %v", round, err)
		}
		// Pipelined writes to one key carry strictly increasing sequence
		// numbers in invocation order — the FIFO assignment contract.
		for i := 1; i < len(hotWrites); i++ {
			if hotWrites[i].SN() <= hotWrites[i-1].SN() {
				t.Fatalf("round %d: pipelined sns out of invocation order: %d then %d",
					round, hotWrites[i-1].SN(), hotWrites[i].SN())
			}
		}

		// Read burst: several nodes each pipeline two reads of the hot key
		// and one of a cold key, all concurrent with each other.
		ids := c.ActiveIDs()
		reads := make([]*PendingOp, 0, 3*len(ids))
		for i, id := range ids {
			if i >= 4 {
				break
			}
			reads = append(reads,
				c.StartReadKeyAt(id, hotKey),
				c.StartReadKeyAt(id, hotKey),
				c.StartReadKeyAt(id, RegisterID(2+i)))
		}
		if err := c.Await(reads...); err != nil {
			t.Fatalf("round %d read burst: %v", round, err)
		}
		c.Run(30) // let churn act between bursts
	}

	rep := c.Check()
	if !rep.OK() {
		t.Fatalf("per-key regularity violated:\n%s", rep)
	}
	if err := c.history.ValidateWrites(); err != nil {
		t.Fatalf("write discipline: %v", err)
	}
	if got := c.PendingOps(); got != 0 {
		t.Fatalf("op tables not reclaimed: %d entries pending after quiescence", got)
	}
	if rep.Writes < 3*(depth+7) || rep.Reads < 12 {
		t.Fatalf("workload too thin: %d writes, %d reads", rep.Writes, rep.Reads)
	}
}

// TestSimPipelinedOpReclaimedOnAbandon kills a reader mid-quorum-read:
// the operation fails (its invoker left — the paper's liveness only
// covers invokers that stay) and no table entry survives anywhere.
func TestSimPipelinedOpReclaimedOnAbandon(t *testing.T) {
	c, err := NewSimCluster(
		WithN(6),
		WithDelta(5),
		WithProtocol(EventuallySynchronous),
		WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	// A write keeps the namespace warm.
	if err := c.WriteKey(1, 42); err != nil {
		t.Fatal(err)
	}
	ids := c.ActiveIDs()
	reader := ids[len(ids)-1]
	p := c.StartReadKeyAt(reader, 1)
	// The invoker leaves before its quorum can assemble.
	c.Leave(reader)
	err = c.Await(p)
	if err == nil || p.Err() == nil {
		t.Fatalf("abandoned read reported success (err=%v)", err)
	}
	if _, verr := p.Value(); verr == nil {
		t.Fatal("abandoned read yielded a value")
	}
	c.Run(50) // drain in-flight traffic
	if got := c.PendingOps(); got != 0 {
		t.Fatalf("op tables leak after abandon: %d entries", got)
	}
	// The history records the op as abandoned, not completed.
	counts := c.history.Counts()
	if counts.ReadsAbandoned != 1 {
		t.Fatalf("abandoned reads = %d, want 1", counts.ReadsAbandoned)
	}
}

// TestSimRunDrivenHandleReleasesShield: a Start* handle may be driven
// with plain Run instead of Await — once it settles, its churn shield is
// released by the next simulation advance, not held for the rest of the
// run.
func TestSimRunDrivenHandleReleasesShield(t *testing.T) {
	c, err := NewSimCluster(
		WithN(6),
		WithDelta(5),
		WithProtocol(EventuallySynchronous),
		WithSeed(9),
	)
	if err != nil {
		t.Fatal(err)
	}
	ids := c.ActiveIDs()
	reader := ids[len(ids)-1]
	p := c.StartReadKeyAt(reader, 1)
	for i := 0; i < 200 && !p.Done(); i++ {
		c.Run(1)
	}
	if !p.Done() {
		t.Fatal("read never settled under Run")
	}
	if _, err := p.Value(); err != nil {
		t.Fatalf("read value: %v", err)
	}
	if len(c.shielded) != 0 {
		t.Fatalf("shields leaked after Run-driven completion: %v", c.shielded)
	}
}

// TestSimPipelineBackpressure fills a node's operation table and checks
// the relaxed ErrOpInProgress contract: rejection means "table full",
// nothing else, and draining reopens the node.
func TestSimPipelineBackpressure(t *testing.T) {
	c, err := NewSimCluster(
		WithN(6),
		WithDelta(5),
		WithProtocol(EventuallySynchronous),
		WithSeed(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	id := c.ActiveIDs()[0]
	node := c.sys.Node(id).(core.KeyedReader)
	issued := 0
	for {
		err := node.ReadKey(1, nil)
		if errors.Is(err, core.ErrOpInProgress) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if issued++; issued > core.MaxInFlightOps {
			t.Fatalf("no backpressure after %d in-flight ops", issued)
		}
	}
	if issued != core.MaxInFlightOps {
		t.Fatalf("backpressure at %d ops, want %d", issued, core.MaxInFlightOps)
	}
	c.Run(200) // quorums assemble, table drains
	if got := c.PendingOps(); got != 0 {
		t.Fatalf("table did not drain: %d pending", got)
	}
	if err := node.ReadKey(1, nil); err != nil {
		t.Fatalf("read after drain = %v, want nil", err)
	}
	c.Run(100)
}
