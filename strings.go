package churnreg

import "fmt"

// The register's wire value domain is int64 (the protocols version and
// compare values; payload bytes are irrelevant to them). StringTable
// interns arbitrary string payloads to register values on the writer side
// and resolves them on the reader side — the pattern the examples use for
// human-readable state. It models an out-of-band content store (in a real
// deployment: a content-addressed blob store); the register holds the
// reference.
type StringTable struct {
	byVal map[int64]string
	byStr map[string]int64
	next  int64
}

// NewStringTable returns an empty interning table.
func NewStringTable() *StringTable {
	return &StringTable{
		byVal: make(map[int64]string),
		byStr: make(map[string]int64),
	}
}

// Intern returns the register value for s, allocating one if new.
func (t *StringTable) Intern(s string) int64 {
	if v, ok := t.byStr[s]; ok {
		return v
	}
	t.next++
	t.byVal[t.next] = s
	t.byStr[s] = t.next
	return t.next
}

// Lookup resolves a register value back to its string.
func (t *StringTable) Lookup(v int64) (string, bool) {
	s, ok := t.byVal[v]
	return s, ok
}

// Len returns the number of interned strings.
func (t *StringTable) Len() int { return len(t.byVal) }

// WriteString writes a string payload through the cluster's register
// using the table for interning.
func (c *SimCluster) WriteString(t *StringTable, s string) error {
	return c.Write(t.Intern(s))
}

// ReadString reads the register and resolves the payload via the table.
func (c *SimCluster) ReadString(t *StringTable) (string, error) {
	v, err := c.Read()
	if err != nil {
		return "", err
	}
	s, ok := t.Lookup(v)
	if !ok {
		return "", fmt.Errorf("churnreg: value %d not in string table (initial value or foreign writer?)", v)
	}
	return s, nil
}

// WriteString writes a string payload through the live cluster's register.
func (c *LiveCluster) WriteString(t *StringTable, s string) error {
	return c.Write(t.Intern(s))
}

// ReadString reads the live register and resolves the payload.
func (c *LiveCluster) ReadString(t *StringTable) (string, error) {
	v, err := c.Read()
	if err != nil {
		return "", err
	}
	s, ok := t.Lookup(v)
	if !ok {
		return "", fmt.Errorf("churnreg: value %d not in string table (initial value or foreign writer?)", v)
	}
	return s, nil
}
