// VANET example: the paper's mobile-node motivation, simulated.
//
// Vehicles drive through a roadside-hazard broadcast zone. The zone's
// hazard state (an accident code) is a regular register maintained by
// whatever vehicles are currently inside; a vehicle "joins" when it enters
// radio range — the paper explicitly models join as entering the
// geographical reception zone — and leaves when it drives out. The
// synchronous protocol fits: radio delivery within the zone has a known
// bound δ, and reads must be instant (a driver alert cannot wait).
//
// Run with: go run ./examples/vanet
package main

import (
	"fmt"
	"log"

	"churnreg"
)

type hazard struct {
	code int64
	desc string
}

func main() {
	const (
		delta = 8 // radio round bound within the zone, in ticks
		n     = 12
	)
	zone, err := churnreg.NewSimCluster(
		churnreg.WithN(n),
		churnreg.WithDelta(delta),
		// Vehicles flow through the zone continuously; keep the flow
		// under the protocol's churn bound 1/(3δ).
		churnreg.WithChurnRate(churnreg.SyncChurnBound(delta)*0.5),
		churnreg.WithProtocol(churnreg.Synchronous),
		churnreg.WithSeed(99),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hazard zone: %d vehicles in range, δ=%d, churn %.4f (bound %.4f)\n\n",
		n, delta, churnreg.SyncChurnBound(delta)*0.5, churnreg.SyncChurnBound(delta))

	hazards := []hazard{
		{1, "obstacle on lane 2"},
		{2, "black ice reported"},
		{3, "accident cleared — all lanes open"},
	}
	for _, h := range hazards {
		// A vehicle that witnesses the event writes the hazard state.
		if err := zone.Write(h.code); err != nil {
			log.Fatalf("hazard write: %v", err)
		}
		fmt.Printf("t=%4d  witness broadcasts: %q\n", zone.Now(), h.desc)

		// Traffic flows: vehicles leave the zone, new ones enter. Each
		// entering vehicle runs the join protocol (δ listen + inquiry).
		zone.Run(100)
		car, err := zone.Join()
		if err != nil {
			log.Fatalf("vehicle entering zone: %v", err)
		}
		// Its dashboard alert is a FAST read: purely local, zero messages
		// — the §3 protocol's design point.
		code, err := zone.ReadAt(car)
		if err != nil {
			log.Fatalf("dashboard read: %v", err)
		}
		fmt.Printf("t=%4d  vehicle %v entered; dashboard shows hazard code %d (want %d)\n",
			zone.Now(), car, code, h.code)
		if code != h.code {
			log.Fatal("entering vehicle read a stale hazard state")
		}
	}

	report := zone.Check()
	fmt.Printf("\ncorrectness over the whole run: %s\n", report)
	if !report.OK() {
		log.Fatal("regularity violated")
	}
	fmt.Println("every dashboard alert showed a legal register state ✓")
}
