// Multi-writer example: the paper's §7 open question — "permit any
// process to write at any time" — answered for the synchronous model with
// the write-token extension.
//
// Several operators of a sensor network take turns publishing calibration
// values. Each acquires the write token (heartbeat lease with
// deterministic claim resolution), writes through the §3 register, and
// releases. The token serializes writers, so the register's one-writer
// discipline — and therefore regularity — is preserved; when a token
// holder dies, the token is reclaimed after the staleness timeout.
//
// Run with: go run ./examples/multiwriter
package main

import (
	"fmt"
	"log"

	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/multiwriter"
	"churnreg/internal/netsim"
	"churnreg/internal/spec"
)

const delta = 5

func main() {
	sys, err := dynsys.New(dynsys.Config{
		N:       6,
		Delta:   delta,
		Model:   netsim.SynchronousModel{Delta: delta},
		Factory: multiwriter.Factory(),
		Seed:    3,
		Initial: core.VersionedValue{Val: 0, SN: 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	history := spec.NewHistory(core.VersionedValue{Val: 0, SN: 0})

	acquire := func(id core.ProcessID) *multiwriter.Node {
		n := sys.Node(id).(*multiwriter.Node)
		won := false
		if err := n.Acquire(func(ok bool) { won = ok }); err != nil {
			log.Fatalf("acquire %v: %v", id, err)
		}
		_ = sys.RunFor(3 * delta)
		if !won {
			log.Fatalf("operator %v failed to win an uncontended token", id)
		}
		return n
	}

	fmt.Println("six operators sharing one calibration register via the write token")
	for round := 0; round < 6; round++ {
		id := core.ProcessID(round + 1)
		op := acquire(id)
		wOp := history.BeginWrite(id, sys.Now())
		val := core.Value(500 + round)
		if err := op.Write(val, func() {
			history.CompleteWrite(wOp, sys.Now(), op.Snapshot())
		}); err != nil {
			log.Fatal(err)
		}
		_ = sys.RunFor(delta)
		fmt.Printf("t=%4d  operator %v published calibration %d\n", sys.Now(), id, val)
		op.Release()
		_ = sys.RunFor(2 * delta)
	}

	// Contention round: two operators claim simultaneously; exactly one
	// may win.
	a := sys.Node(1).(*multiwriter.Node)
	b := sys.Node(2).(*multiwriter.Node)
	var aWon, bWon bool
	_ = a.Acquire(func(ok bool) { aWon = ok })
	_ = b.Acquire(func(ok bool) { bWon = ok })
	_ = sys.RunFor(4 * delta)
	fmt.Printf("contention: operator 1 won=%v, operator 2 won=%v (exactly one must win)\n", aWon, bWon)
	if aWon == bWon {
		log.Fatal("token contention produced two winners or none")
	}

	// Everyone still reads the last calibration — locally and instantly.
	reader := sys.Node(5).(*multiwriter.Node)
	rOp := history.BeginRead(5, sys.Now())
	v, err := reader.ReadLocal()
	if err != nil {
		log.Fatal(err)
	}
	history.CompleteRead(rOp, sys.Now(), v)
	fmt.Printf("operator 5 reads calibration %d (sequence #%d) locally\n", int64(v.Val), int64(v.SN))

	if err := history.ValidateWrites(); err != nil {
		log.Fatalf("write discipline broken: %v", err)
	}
	if viols := history.CheckRegular(); len(viols) != 0 {
		log.Fatalf("regularity violated: %v", viols[0])
	}
	fmt.Println("rotating writers preserved the one-writer discipline and regularity ✓")
}
