// Social-profile example: the paper's motivating "social network" setting
// on the real-time runtime, using the keyed register namespace.
//
// A user's profile is several shared fields — status, location, mood —
// each its own register in the cluster's keyed namespace, replicated
// across whatever peers happen to be online. Peers come and go (churn);
// the eventually synchronous protocol keeps every field readable without
// anyone knowing message delay bounds, and a joining peer recovers the
// WHOLE profile through its single join: each join reply carries a
// snapshot of every register the replier holds, so one INQUIRY broadcast
// suffices no matter how many fields the profile grows. Everything here
// runs on real goroutines and channels (LiveCluster), not the simulator.
//
// Run with: go run ./examples/socialprofile
//
// Pass -transport tcp to run the identical scenario over real TCP
// sockets (NetCluster): every peer owns a loopback listener and the
// profile updates travel through the internal/wire binary codec instead
// of Go channels.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"churnreg"
)

// cluster is the slice of the LiveCluster/NetCluster API this example
// drives — the two are interchangeable here by construction.
type cluster interface {
	WriteKey(k churnreg.RegisterID, v int64) error
	ReadKeyAt(id churnreg.ProcessID, k churnreg.RegisterID) (int64, error)
	Join() (churnreg.ProcessID, error)
	Leave(id churnreg.ProcessID) error
	IDs() []churnreg.ProcessID
	Size() int
	Close()
}

// Profile fields: one register per field. Field keys are just small
// integers here; a production deployment would hash/intern field names.
const (
	fieldStatus   = churnreg.RegisterID(0)
	fieldLocation = churnreg.RegisterID(1)
	fieldMood     = churnreg.RegisterID(2)
)

var fieldNames = map[churnreg.RegisterID]string{
	fieldStatus:   "status",
	fieldLocation: "location",
	fieldMood:     "mood",
}

// Value tables: each register stores an index into its field's table
// (the library's value domain is int64 — richer payloads intern the same
// way).
var (
	statuses = []string{
		"☕ getting coffee",
		"🚲 cycling to work",
		"💻 deep in code review",
		"🍜 lunch break",
		"🎧 focus mode",
	}
	locations = []string{"home", "office", "café", "train", "park"}
	moods     = []string{"🙂", "🤔", "🚀", "😴", "🎉"}
	tables    = map[churnreg.RegisterID][]string{
		fieldStatus:   statuses,
		fieldLocation: locations,
		fieldMood:     moods,
	}
)

func main() {
	transport := flag.String("transport", "live", "runtime: live (goroutines+channels) or tcp (real sockets)")
	flag.Parse()
	opts := []churnreg.Option{
		churnreg.WithN(7),
		churnreg.WithDelta(25), // 25ms δ budget: real timers have slop
		churnreg.WithTick(time.Millisecond),
		churnreg.WithProtocol(churnreg.EventuallySynchronous),
		churnreg.WithOperationTimeout(10 * time.Second),
	}
	var cluster cluster
	var err error
	switch *transport {
	case "live":
		cluster, err = churnreg.NewLiveCluster(opts...)
	case "tcp":
		cluster, err = churnreg.NewNetCluster(opts...)
	default:
		log.Fatalf("unknown -transport %q (want live or tcp)", *transport)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fmt.Printf("7 peers online (%s transport), replicating @gopher's profile — one register per field\n", *transport)

	rng := rand.New(rand.NewSource(7))
	for round := range statuses {
		// The user updates the whole profile, one keyed write per field...
		for _, field := range []churnreg.RegisterID{fieldStatus, fieldLocation, fieldMood} {
			v := int64(round % len(tables[field]))
			if err := cluster.WriteKey(field, v); err != nil {
				log.Fatalf("%s update: %v", fieldNames[field], err)
			}
		}
		// ...while the peer set churns: one peer drops, a new one joins
		// and must learn EVERY field through its single join.
		ids := cluster.IDs()
		victim := ids[rng.Intn(len(ids))]
		if err := cluster.Leave(victim); err == nil {
			fmt.Printf("  peer %v went offline\n", victim)
		}
		joined, err := cluster.Join()
		if err != nil {
			log.Fatalf("peer join: %v", err)
		}
		// The fresh peer reads the full profile it learned while joining.
		fmt.Printf("round %d: fresh peer %v sees", round, joined)
		for _, field := range []churnreg.RegisterID{fieldStatus, fieldLocation, fieldMood} {
			v, err := cluster.ReadKeyAt(joined, field)
			if err != nil {
				log.Fatalf("read %s at fresh peer: %v", fieldNames[field], err)
			}
			want := int64(round % len(tables[field]))
			if v != want {
				log.Fatalf("fresh peer saw stale %s %d, want %d", fieldNames[field], v, want)
			}
			fmt.Printf("  %s=%q", fieldNames[field], tables[field][v])
		}
		fmt.Printf("  (%d peers online)\n", cluster.Size())
	}
	fmt.Println("all fresh peers recovered the full profile from one join despite churn ✓")
}
