// Social-profile example: the paper's motivating "social network" setting
// on the real-time runtime.
//
// A user's profile status is a shared register replicated across whatever
// peers happen to be online. Peers come and go (churn); the eventually
// synchronous protocol keeps the status readable without anyone knowing
// message delay bounds. Everything here runs on real goroutines and
// channels (LiveCluster), not the simulator.
//
// Run with: go run ./examples/socialprofile
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"churnreg"
)

// statuses are the profile states the user cycles through; the register
// stores an index into this table (the library's value domain is int64 —
// a production deployment would intern richer payloads the same way).
var statuses = []string{
	"☕ getting coffee",
	"🚲 cycling to work",
	"💻 deep in code review",
	"🍜 lunch break",
	"🎧 focus mode",
}

func main() {
	cluster, err := churnreg.NewLiveCluster(
		churnreg.WithN(7),
		churnreg.WithDelta(25), // 25ms δ budget: real timers have slop
		churnreg.WithTick(time.Millisecond),
		churnreg.WithProtocol(churnreg.EventuallySynchronous),
		churnreg.WithOperationTimeout(10*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fmt.Println("7 peers online, replicating @gopher's status (quorum protocol, real goroutines)")

	rng := rand.New(rand.NewSource(7))
	for round := range statuses {
		// The user updates their status...
		if err := cluster.Write(int64(round)); err != nil {
			log.Fatalf("status update: %v", err)
		}
		// ...while the peer set churns: one peer drops, a new one joins
		// and must learn the current status through its join protocol.
		ids := cluster.IDs()
		victim := ids[rng.Intn(len(ids))]
		if err := cluster.Leave(victim); err == nil {
			fmt.Printf("  peer %v went offline\n", victim)
		}
		joined, err := cluster.Join()
		if err != nil {
			log.Fatalf("peer join: %v", err)
		}
		// The fresh peer reads the status it learned while joining.
		v, err := cluster.ReadAt(joined)
		if err != nil {
			log.Fatalf("read at fresh peer: %v", err)
		}
		fmt.Printf("round %d: status=%q — fresh peer %v sees %q (%d peers online)\n",
			round, statuses[round], joined, statuses[v], cluster.Size())
		if v != int64(round) {
			log.Fatalf("fresh peer saw stale status %d, want %d", v, round)
		}
	}
	fmt.Println("all fresh peers saw the latest status despite full peer churn ✓")
}
