// New/old inversion: an executable rendition of the paper's introduction
// figure, showing why this register is regular but NOT atomic.
//
// Two readers sit at different distances from the writer. During a write,
// the near reader sees the new value; moments later — but still during the
// same write — the far reader sees the old one. Both reads are legal for a
// regular register; an atomic register would forbid the second (a new/old
// inversion). The example uses the low-level internal packages to script
// exact message timings.
//
// Run with: go run ./examples/newoldinversion
package main

import (
	"fmt"
	"log"

	"churnreg/internal/harness"
)

func main() {
	table := harness.NewOldInversion(1)
	fmt.Println(table.Render())
	// The verdict row must say: regular ✓, one inversion.
	last := table.Rows[len(table.Rows)-1]
	verdict := last[len(last)-1]
	fmt.Println("interpretation:")
	fmt.Println("  - each read alone is a value some write made current;")
	fmt.Println("  - but a later read observed an older value than an earlier read —")
	fmt.Println("    the new/old inversion that separates regular from atomic registers.")
	if verdict != "regular: true, inversions (atomicity failures): 1" {
		log.Fatalf("unexpected verdict: %q", verdict)
	}
}
