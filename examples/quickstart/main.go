// Quickstart: a regular register in a simulated dynamic system.
//
// Builds a 20-process synchronous system with constant churn below the
// paper's bound, writes, reads, joins a fresh process, and verifies the
// whole recorded execution against the regular-register specification.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"churnreg"
)

func main() {
	const delta = 5
	// Stay well below the synchronous churn bound 1/(3δ).
	c, err := churnreg.NewSimCluster(
		churnreg.WithN(20),
		churnreg.WithDelta(delta),
		churnreg.WithChurnRate(churnreg.SyncChurnBound(delta)/4),
		churnreg.WithProtocol(churnreg.Synchronous),
		churnreg.WithSeed(2024),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("system: n=%d, δ=%d, churn=%.4f (bound %.4f)\n",
		20, delta, churnreg.SyncChurnBound(delta)/4, churnreg.SyncChurnBound(delta))

	// Write and read while the population is being refreshed underneath.
	if err := c.Write(42); err != nil {
		log.Fatal(err)
	}
	v, err := c.Read()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%4d  wrote 42, read %d\n", c.Now(), v)

	// Let churn replace a chunk of the population.
	c.Run(500)
	fmt.Printf("t=%4d  after 500 ticks of churn: %d/%d processes active\n",
		c.Now(), c.ActiveCount(), c.Size())

	// A fresh process joins and — thanks to the join protocol — already
	// knows the value.
	id, err := c.Join()
	if err != nil {
		log.Fatal(err)
	}
	v2, err := c.ReadAt(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%4d  process %v joined and reads %d\n", c.Now(), id, v2)

	// More writes; reads stay fresh.
	for i := int64(1); i <= 3; i++ {
		if err := c.Write(100 * i); err != nil {
			log.Fatal(err)
		}
		got, err := c.Read()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%4d  wrote %d, read %d\n", c.Now(), 100*i, got)
	}

	// The cluster recorded every operation; check them all.
	report := c.Check()
	fmt.Printf("\ncorrectness: %s\n", report)
	if !report.OK() {
		log.Fatal("regularity violated — this should be impossible below the churn bound")
	}
	fmt.Println("every read was a legal regular-register result ✓")
}
