package client

import (
	"errors"
	"testing"
	"time"

	"churnreg/internal/core"
	"churnreg/internal/esyncreg"
	"churnreg/internal/nettransport"
	"churnreg/internal/placement"
	"churnreg/internal/shard"
	"churnreg/internal/sim"
)

const opTimeout = 10 * time.Second

// startCluster boots an in-process cluster of nettransport processes —
// sharded (shard.Factory-wrapped esync) when shards > 0, plain esync
// otherwise — and returns the transports, fully meshed and active.
func startCluster(t *testing.T, n, shards, repl int) []*nettransport.Transport {
	t.Helper()
	// Always shard-wrap, even unsharded: client operations arrive as
	// FORWARDs, which only the wrapper understands (regserve wraps
	// unconditionally for the same reason).
	factory := shard.Factory(esyncreg.Factory(esyncreg.Options{}))
	var pcfg placement.Config
	if shards > 0 {
		pcfg = placement.Config{Shards: shards, Replication: repl}
	}
	ts := make([]*nettransport.Transport, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		tr, err := nettransport.New(nettransport.Config{
			ID:         core.ProcessID(i + 1),
			ListenAddr: "127.0.0.1:0",
			N:          n,
			Delta:      sim.Duration(5),
			Tick:       time.Millisecond,
			Factory:    factory,
			Bootstrap:  true,
			Initial:    core.VersionedValue{Val: 0, SN: 0},
			Placement:  pcfg,
		})
		if err != nil {
			t.Fatalf("New(%d): %v", i, err)
		}
		ts[i] = tr
		addrs[i] = tr.Addr()
	}
	for i, tr := range ts {
		seeds := make([]string, 0, n-1)
		for j, a := range addrs {
			if j != i {
				seeds = append(seeds, a)
			}
		}
		tr.Start(seeds)
	}
	t.Cleanup(func() {
		for _, tr := range ts {
			tr.Close()
		}
	})
	deadline := time.Now().Add(5 * time.Second)
	for _, tr := range ts {
		for tr.PeerCount() < n-1 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if tr.PeerCount() < n-1 {
			t.Fatalf("transport %v: peer count %d, want %d", tr.ID(), tr.PeerCount(), n-1)
		}
	}
	return ts
}

func dialClient(t *testing.T, ts []*nettransport.Transport, cfg Config) *Client {
	t.Helper()
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []string{ts[0].Addr()}
	}
	c, err := Dial(cfg)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// shardStats sums the shard wrapper's counters across the cluster.
func shardStats(t *testing.T, ts []*nettransport.Transport) shard.Stats {
	t.Helper()
	var sum shard.Stats
	for _, tr := range ts {
		done := make(chan struct{})
		err := tr.Invoke(func(n core.Node) {
			defer close(done)
			sn, ok := n.(*shard.Node)
			if !ok {
				t.Errorf("node is %T, want *shard.Node", n)
				return
			}
			s := sn.Stats()
			sum.LocalReads += s.LocalReads
			sum.ForwardedReads += s.ForwardedReads
			sum.LocalWrites += s.LocalWrites
			sum.ForwardedWrites += s.ForwardedWrites
			sum.ForwardsServed += s.ForwardsServed
			sum.ForwardsRefused += s.ForwardsRefused
		})
		if err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		// Invoke is fire-and-forget; the counters are only safe to read
		// after the loop has run the closure.
		<-done
	}
	return sum
}

// TestShardedReadWrite is the tentpole's happy path: a client
// bootstrapped from one seed learns the whole membership, writes land at
// shard primaries, and reads come back from the owning replica group.
func TestShardedReadWrite(t *testing.T) {
	ts := startCluster(t, 4, 8, 3)
	c := dialClient(t, ts, Config{})
	if !c.Sharded() {
		t.Fatal("client did not learn a sharded view")
	}
	if got := len(c.Members()); got != 4 {
		t.Fatalf("Members() = %d ids, want 4", got)
	}
	for key := int64(0); key < 16; key++ {
		v, err := c.Write(key, 100+key)
		if err != nil {
			t.Fatalf("write key %d: %v", key, err)
		}
		if v.Val != 100+key || v.SN != 1 {
			t.Fatalf("write key %d returned %+v, want ⟨%d,#1⟩", key, v, 100+key)
		}
	}
	// Reads are served by a member of each key's replica group — checked
	// against an independently built view (placement is deterministic in
	// the member ids, so the client and this test agree by construction).
	view := placement.Build(placement.Config{Shards: 8, Replication: 3},
		[]core.ProcessID{1, 2, 3, 4})
	for key := int64(0); key < 16; key++ {
		v, served, err := c.ReadServed(key)
		if err != nil {
			t.Fatalf("read key %d: %v", key, err)
		}
		if v.Val != 100+key {
			t.Fatalf("read key %d = %+v, want val %d", key, v, 100+key)
		}
		if !view.IsReplica(core.RegisterID(key), core.ProcessID(served)) {
			t.Fatalf("key %d served by %d, not in group %v", key, served,
				view.Group(core.RegisterID(key)))
		}
	}
}

// TestDirectRoutingSkipsForwardHop pins the perf claim behind the whole
// PR: a smart client's operations are all served where they arrive —
// the server-side FORWARD relay count stays zero.
func TestDirectRoutingSkipsForwardHop(t *testing.T) {
	ts := startCluster(t, 4, 8, 3)
	c := dialClient(t, ts, Config{})
	for key := int64(0); key < 32; key++ {
		if _, err := c.Write(key, key); err != nil {
			t.Fatalf("write key %d: %v", key, err)
		}
		if _, err := c.Read(key); err != nil {
			t.Fatalf("read key %d: %v", key, err)
		}
	}
	s := shardStats(t, ts)
	if relayed := s.ForwardedReads + s.ForwardedWrites; relayed != 0 {
		t.Fatalf("smart client caused %d relay hops (reads %d, writes %d), want 0",
			relayed, s.ForwardedReads, s.ForwardedWrites)
	}
	if s.ForwardsServed < 64 {
		t.Fatalf("ForwardsServed = %d, want >= 64 (every client op arrives as a FORWARD)", s.ForwardsServed)
	}
}

// TestUnshardedCluster: with placement disabled every member replicates
// every key, and the VIEW's Shards=0 tells the client to round-robin.
func TestUnshardedCluster(t *testing.T) {
	ts := startCluster(t, 3, 0, 0)
	c := dialClient(t, ts, Config{})
	if c.Sharded() {
		t.Fatal("client believes an unsharded system is sharded")
	}
	for key := int64(0); key < 6; key++ {
		if _, err := c.Write(key, 7*key); err != nil {
			t.Fatalf("write key %d: %v", key, err)
		}
		v, err := c.Read(key)
		if err != nil {
			t.Fatalf("read key %d: %v", key, err)
		}
		if v.Val != 7*key {
			t.Fatalf("read key %d = %+v, want val %d", key, v, 7*key)
		}
	}
}

// TestStaleViewHealsOnDeparture is the deterministic staleness test: the
// client caches a view, a member leaves gracefully, and the next
// operations succeed anyway — served by the shrunken membership — with
// the cache observably refreshed.
func TestStaleViewHealsOnDeparture(t *testing.T) {
	ts := startCluster(t, 4, 8, 3)
	// Seed ONLY through a survivor, so the departed node isn't the
	// client's bootstrap link.
	c := dialClient(t, ts, Config{Seeds: []string{ts[0].Addr()}, OpTimeout: 3 * time.Second})
	for key := int64(0); key < 16; key++ {
		if _, err := c.Write(key, key); err != nil {
			t.Fatalf("seed write key %d: %v", key, err)
		}
	}

	ts[3].Leave()
	// Survivors converge on the 3-member view; the leaver's shards hand
	// off to their successors.
	deadline := time.Now().Add(10 * time.Second)
	for (ts[0].PeerCount() > 2 || ts[1].PeerCount() > 2 || ts[2].PeerCount() > 2) &&
		time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	// Every key must stay writable and readable: keys whose primary left
	// force the client through refusal → view refresh → re-route.
	for key := int64(0); key < 16; key++ {
		v, err := c.Write(key, 1000+key)
		if err != nil {
			t.Fatalf("post-departure write key %d: %v", key, err)
		}
		if v.Val != 1000+key {
			t.Fatalf("post-departure write key %d returned %+v", key, v)
		}
		r, served, err := c.ReadServed(key)
		if err != nil {
			t.Fatalf("post-departure read key %d: %v", key, err)
		}
		if r.Val != 1000+key {
			t.Fatalf("post-departure read key %d = %+v, want %d", key, r, 1000+key)
		}
		if served == 4 {
			t.Fatalf("key %d served by the departed process", key)
		}
	}
	// The healed-cache signal is the member set, not the version stamp:
	// stamps are per-server counters, and the client may adopt the
	// shrunken view from a different (incomparably numbered) server.
	if got := len(c.Members()); got != 3 {
		t.Fatalf("Members() = %d ids after departure, want 3", got)
	}
	if s := c.Stats(); s.Refreshes == 0 {
		t.Fatal("client never refreshed its placement cache")
	}
}

// TestStaleViewHealsOnKill is the harsher variant: the member vanishes
// without a LEAVE (connection drop + eviction), so the client discovers
// staleness only through dead connections and refusals.
func TestStaleViewHealsOnKill(t *testing.T) {
	ts := startCluster(t, 4, 8, 3)
	c := dialClient(t, ts, Config{
		Seeds:     []string{ts[0].Addr()},
		OpTimeout: 2 * time.Second,
	})
	for key := int64(0); key < 8; key++ {
		if _, err := c.Write(key, key); err != nil {
			t.Fatalf("seed write key %d: %v", key, err)
		}
	}
	ts[3].Close() // no goodbye
	deadline := time.Now().Add(20 * time.Second)
	for (ts[0].PeerCount() > 2 || ts[1].PeerCount() > 2 || ts[2].PeerCount() > 2) &&
		time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	for key := int64(0); key < 8; key++ {
		v, err := c.Read(key)
		if err != nil {
			t.Fatalf("post-kill read key %d: %v", key, err)
		}
		if v.Val != key {
			t.Fatalf("post-kill read key %d = %+v, want %d", key, v, key)
		}
	}
	if got := len(c.Members()); got != 3 {
		t.Fatalf("Members() = %d ids after kill+eviction, want 3", got)
	}
}

// TestDialAllSeedsDead: Dial fails cleanly (ErrNoView) when nothing
// answers, rather than hanging.
func TestDialAllSeedsDead(t *testing.T) {
	_, err := Dial(Config{
		Seeds:       []string{"127.0.0.1:1"},
		DialTimeout: 500 * time.Millisecond,
	})
	if !errors.Is(err, ErrNoView) {
		t.Fatalf("Dial to dead seed: err = %v, want ErrNoView", err)
	}
}

// TestConfigRejectsNoSeeds: an empty seed list is a configuration error,
// not a hang.
func TestConfigRejectsNoSeeds(t *testing.T) {
	if _, err := Dial(Config{}); err == nil {
		t.Fatal("Dial accepted an empty seed list")
	}
}
