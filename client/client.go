// Package client is the wire-native SDK for a churnreg register system:
// it speaks the binary wire protocol directly to the regserve processes,
// keeping a cached placement view so every operation goes to a server
// that can serve it locally — reads to any member of the key's replica
// group, writes straight to the shard primary — instead of paying the
// HTTP edge plus a server-side FORWARD relay hop.
//
// # Sessions
//
// A Client pools one pipelined TCP connection per server it talks to.
// The handshake is a HELLO frame carrying wire.RoleClient, which the
// server answers with its own HELLO and a VIEW frame: the placement's
// shard/replication constants plus the member address book. Placement
// assignment is deterministic in the member ids (rendezvous hashing), so
// the client rebuilds the same group tables locally from the member list
// alone. Servers push a fresh VIEW on every membership change; the
// client also re-requests one whenever an operation is refused, so a
// stale cache heals on the next routing miss at the latest.
//
// # Operations and the ambiguity contract
//
// Operations are FORWARD/FORWARDED pairs tagged with client-minted
// operation ids, pipelined freely over each connection. Reads are
// idempotent: a timed-out or refused read retries against the next
// replica. A write is retried only while the client KNOWS it was not
// applied (an explicit refusal — wrong replica, not active, busy). Once
// the write frame has fully left for a server that then goes silent, the
// op may or may not have been applied; the client surfaces that as an
// AmbiguousWriteError wrapping ErrUnacknowledged and never retries
// blindly — re-issuing could store one value under two sequence numbers,
// the exact fault the per-key single-writer discipline exists to
// prevent. The caller decides: re-read to observe, or re-write knowing
// the risk.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"churnreg/internal/core"
	"churnreg/internal/placement"
	"churnreg/internal/wire"
)

// Errors surfaced by Read and Write.
var (
	// ErrUnacknowledged marks an ambiguous write: it may or may not have
	// been applied. Never retried by the client; see AmbiguousWriteError.
	ErrUnacknowledged = errors.New("client: write unacknowledged (may or may not have been applied)")
	// ErrUnroutable marks a clean failure: the operation was not applied
	// anywhere, every routing attempt was refused or unreachable.
	ErrUnroutable = errors.New("client: operation unroutable")
	// ErrClosed is returned once the client has been closed.
	ErrClosed = errors.New("client: closed")
	// ErrNoView is returned when no server delivered a placement view
	// within the dial timeout.
	ErrNoView = errors.New("client: no placement view from any seed")
)

// AmbiguousWriteError is the typed ambiguous-write result: the write's
// fate is unknown (the target went silent after the frame was sent). It
// wraps ErrUnacknowledged, so errors.Is(err, ErrUnacknowledged) selects
// it.
type AmbiguousWriteError struct {
	// Key and Val identify the write whose fate is unknown.
	Key int64
	Val int64
	// Server is the process the final attempt targeted.
	Server int64
}

// Error implements error.
func (e *AmbiguousWriteError) Error() string {
	return fmt.Sprintf("client: write key=%d val=%d to server %d unacknowledged (may or may not have been applied)",
		e.Key, e.Val, e.Server)
}

// Unwrap makes errors.Is(err, ErrUnacknowledged) true.
func (e *AmbiguousWriteError) Unwrap() error { return ErrUnacknowledged }

// Versioned is one register value with its sequence number (SN -1 means
// the register was never written).
type Versioned struct {
	Val int64
	SN  int64
}

// Config assembles a Client.
type Config struct {
	// Seeds are wire (protocol, not HTTP) addresses of one or more
	// servers; the first reachable one bootstraps the placement view and
	// the rest of the membership is learned from it.
	Seeds []string
	// DialTimeout bounds one connection attempt plus the view handshake
	// (default 2s).
	DialTimeout time.Duration
	// OpTimeout bounds one operation attempt end to end (default 5s). A
	// read that times out retries another replica within the same call; a
	// write that times out is ambiguous and fails.
	OpTimeout time.Duration
	// MaxAttempts bounds routing attempts per operation (default 6).
	MaxAttempts int
	// RetryBackoff spaces attempts after an explicit refusal (default
	// 10ms, doubling per attempt up to 250ms).
	RetryBackoff time.Duration
	// Logf, when set, receives client-level diagnostics.
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() error {
	if len(c.Seeds) == 0 {
		return errors.New("client: no seeds")
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 5 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 6
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// Stats counts client activity (snapshot; all counters are cumulative).
type Stats struct {
	// Reads and Writes count completed successful operations.
	Reads, Writes uint64
	// Retries counts extra routing attempts beyond each op's first.
	Retries uint64
	// Refreshes counts adopted placement views beyond the bootstrap.
	Refreshes uint64
	// AmbiguousWrites counts writes that failed ErrUnacknowledged.
	AmbiguousWrites uint64
	// Redials counts connection (re)establishments beyond each address's
	// first.
	Redials uint64
}

// viewState is one adopted placement snapshot. Immutable once built;
// swapped whole under the client mutex.
type viewState struct {
	// source is the server address the snapshot came from, and version
	// its per-server monotone stamp (stamps from different servers are
	// not comparable — each server runs its own counter).
	source  string
	version uint64
	// view is the locally rebuilt placement (nil when the system is
	// unsharded: any member serves any key).
	view *placement.View
	// addrs maps member ids to wire addresses; order fixes an iteration
	// order for unsharded round-robin.
	addrs map[core.ProcessID]string
	order []core.ProcessID
}

// Client is a wire-native handle to a churnreg system. Safe for
// concurrent use; operations pipeline over pooled connections.
type Client struct {
	cfg   Config
	opSeq atomic.Uint64
	rr    atomic.Uint64

	mu     sync.Mutex
	conns  map[string]*serverConn
	view   *viewState
	viewCh chan struct{} // closed and replaced on every view adoption
	closed bool

	pmu     sync.Mutex
	pending map[core.OpID]*pendingOp

	stats struct {
		reads, writes, retries, refreshes, ambiguous, redials atomic.Uint64
	}
}

// pendingOp is one in-flight operation awaiting its FORWARDED reply.
type pendingOp struct {
	ch   chan opOutcome
	conn *serverConn
}

// opOutcome is how a pending op resolves: a real reply, or broken=true
// when the connection died with the op in flight (the frame was sent, no
// answer will come — ambiguous for writes).
type opOutcome struct {
	msg    core.ForwardedMsg
	broken bool
}

// errNotSent marks an attempt whose frame provably never left the
// client: clean for reads AND writes, safe to re-route.
var errNotSent = errors.New("client: frame not sent")

// errMaybeSent marks an attempt whose frame (possibly) reached the
// server but drew no answer: still clean for reads, ambiguous for
// writes.
var errMaybeSent = errors.New("client: frame sent, no reply")

// errConnBroken is the generic broken-connection failure for dials and
// handshakes (nothing operation-bearing was in flight).
var errConnBroken = errors.New("client: connection broken")

// Dial connects to the seeds and returns a ready Client: at least one
// seed must complete the view handshake within DialTimeout.
func Dial(cfg Config) (*Client, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	c := &Client{
		cfg:     cfg,
		conns:   make(map[string]*serverConn),
		viewCh:  make(chan struct{}),
		pending: make(map[core.OpID]*pendingOp),
	}
	deadline := time.Now().Add(cfg.DialTimeout)
	var lastErr error
	for _, seed := range cfg.Seeds {
		if _, err := c.getConn(seed); err != nil {
			lastErr = err
			continue
		}
		if c.waitView(0, deadline) {
			return c, nil
		}
	}
	c.Close()
	if lastErr != nil {
		return nil, fmt.Errorf("%w (last dial error: %v)", ErrNoView, lastErr)
	}
	return nil, ErrNoView
}

// Close tears down every connection. In-flight operations fail.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conns := make([]*serverConn, 0, len(c.conns))
	for _, sc := range c.conns {
		conns = append(conns, sc)
	}
	c.mu.Unlock()
	for _, sc := range conns {
		sc.close()
	}
}

// Stats snapshots the client's counters.
func (c *Client) Stats() Stats {
	return Stats{
		Reads:           c.stats.reads.Load(),
		Writes:          c.stats.writes.Load(),
		Retries:         c.stats.retries.Load(),
		Refreshes:       c.stats.refreshes.Load(),
		AmbiguousWrites: c.stats.ambiguous.Load(),
		Redials:         c.stats.redials.Load(),
	}
}

// ViewVersion reports the adopted placement view's stamp (0 before the
// bootstrap completes). Stamps are monotone per serving source.
func (c *Client) ViewVersion() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.view == nil {
		return 0
	}
	return c.view.version
}

// Members reports the ids of the servers in the adopted view.
func (c *Client) Members() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.view == nil {
		return nil
	}
	out := make([]int64, 0, len(c.view.order))
	for _, id := range c.view.order {
		out = append(out, int64(id))
	}
	return out
}

// Sharded reports whether the system partitions the keyspace (false:
// any server serves any key).
func (c *Client) Sharded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view != nil && c.view.view != nil
}

// Read returns key's current value. The read is served by a member of
// the key's replica group; timed-out or refused attempts retry other
// replicas (reads are idempotent).
func (c *Client) Read(key int64) (Versioned, error) {
	v, _, err := c.ReadServed(key)
	return v, err
}

// ReadServed is Read plus the id of the process whose local state served
// the value — under direct routing, a member of the key's replica group.
func (c *Client) ReadServed(key int64) (Versioned, int64, error) {
	reg := core.RegisterID(key)
	backoff := c.cfg.RetryBackoff
	seed := int(c.rr.Add(1) - 1)
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.stats.retries.Add(1)
		}
		vs := c.currentView()
		if vs == nil {
			return Versioned{}, 0, ErrClosed
		}
		addr, _, ok := c.readTarget(vs, reg, seed+attempt)
		if !ok {
			c.refreshAndWait(vs)
			sleep(backoff)
			backoff = nextBackoff(backoff)
			continue
		}
		sc, err := c.getConn(addr)
		if err != nil {
			// Nothing was sent: clean, re-route (the member may be gone —
			// refresh so the next attempt routes on fresher placement).
			c.refreshAndWait(vs)
			continue
		}
		reply, err := c.roundTrip(sc, core.ForwardMsg{Op: c.nextOp(), Reg: reg})
		if err != nil {
			// Timeout or broken connection: the read is idempotent, try
			// the next replica.
			continue
		}
		if reply.Code == core.ForwardOK {
			c.stats.reads.Add(1)
			return Versioned{Val: int64(reply.Value.Val), SN: int64(reply.Value.SN)}, int64(reply.From), nil
		}
		// Explicit refusal: not served; our placement likely lags the
		// server's. Refresh, back off, re-route.
		c.refreshAndWait(vs)
		sleep(backoff)
		backoff = nextBackoff(backoff)
	}
	return Versioned{}, 0, fmt.Errorf("%w: read key=%d after %d attempts", ErrUnroutable, key, c.cfg.MaxAttempts)
}

// Write stores val under key and returns the stored ⟨val, sn⟩. The write
// runs at the key's shard primary. Explicit refusals (the op was NOT
// applied) re-route after a view refresh; a target that goes silent
// after the frame was sent fails with AmbiguousWriteError — never a
// blind retry.
func (c *Client) Write(key, val int64) (Versioned, error) {
	reg := core.RegisterID(key)
	backoff := c.cfg.RetryBackoff
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.stats.retries.Add(1)
		}
		vs := c.currentView()
		if vs == nil {
			return Versioned{}, ErrClosed
		}
		addr, target, ok := c.writeTarget(vs, reg, attempt)
		if !ok {
			c.refreshAndWait(vs)
			sleep(backoff)
			backoff = nextBackoff(backoff)
			continue
		}
		sc, err := c.getConn(addr)
		if err != nil {
			// Nothing was sent: clean. The primary may be dead; refresh so
			// the next attempt routes to its successor.
			c.refreshAndWait(vs)
			sleep(backoff)
			backoff = nextBackoff(backoff)
			continue
		}
		reply, err := c.roundTrip(sc, core.ForwardMsg{Op: c.nextOp(), Reg: reg, IsWrite: true, Val: core.Value(val)})
		if errors.Is(err, errNotSent) {
			// The frame provably never left: clean, re-route after a
			// refresh (the connection just died — placement likely moved).
			c.refreshAndWait(vs)
			sleep(backoff)
			backoff = nextBackoff(backoff)
			continue
		}
		if err != nil {
			// The frame left for the target and no answer came back: the
			// write may have been applied. Ambiguous, by contract.
			c.stats.ambiguous.Add(1)
			return Versioned{}, &AmbiguousWriteError{Key: key, Val: val, Server: int64(target)}
		}
		if reply.Code == core.ForwardOK {
			c.stats.writes.Add(1)
			return Versioned{Val: int64(reply.Value.Val), SN: int64(reply.Value.SN)}, nil
		}
		// Explicit refusal: the server did NOT apply the write, retrying
		// is safe. Refresh the view first — a refusal usually means the
		// primary moved.
		c.refreshAndWait(vs)
		sleep(backoff)
		backoff = nextBackoff(backoff)
	}
	return Versioned{}, fmt.Errorf("%w: write key=%d after %d attempts", ErrUnroutable, key, c.cfg.MaxAttempts)
}

// nextOp mints a client-unique operation id.
func (c *Client) nextOp() core.OpID { return core.OpID(c.opSeq.Add(1)) }

// currentView snapshots the adopted view (nil once closed).
func (c *Client) currentView() *viewState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	return c.view
}

// readTarget picks the server for one read attempt: a member of the
// key's replica group (rotated by attempt so retries spread and a dead
// member does not blackhole the key), or any member when unsharded.
func (c *Client) readTarget(vs *viewState, reg core.RegisterID, attempt int) (string, core.ProcessID, bool) {
	if vs.view == nil {
		return c.anyMember(vs, attempt)
	}
	g := vs.view.Group(reg)
	if len(g) == 0 {
		return "", 0, false
	}
	id := g[attempt%len(g)]
	addr, ok := vs.addrs[id]
	return addr, id, ok
}

// writeTarget picks the server for one write attempt: always the key's
// shard primary (sequence numbers for a key are minted by one process),
// or any member when unsharded.
func (c *Client) writeTarget(vs *viewState, reg core.RegisterID, attempt int) (string, core.ProcessID, bool) {
	if vs.view == nil {
		return c.anyMember(vs, attempt)
	}
	g := vs.view.Group(reg)
	if len(g) == 0 {
		return "", 0, false
	}
	addr, ok := vs.addrs[g[0]]
	return addr, g[0], ok
}

// anyMember round-robins over the unsharded membership.
func (c *Client) anyMember(vs *viewState, salt int) (string, core.ProcessID, bool) {
	if len(vs.order) == 0 {
		return "", 0, false
	}
	id := vs.order[(int(c.rr.Add(1))+salt)%len(vs.order)]
	return vs.addrs[id], id, true
}

// roundTrip registers the op, sends its FORWARD on sc, and waits for the
// FORWARDED reply. Failures keep the distinction the write ambiguity
// contract turns on: errNotSent (provably never left — clean) versus
// errMaybeSent (sent or partially sent, no answer — ambiguous if it was
// a write).
func (c *Client) roundTrip(sc *serverConn, m core.ForwardMsg) (core.ForwardedMsg, error) {
	op := &pendingOp{ch: make(chan opOutcome, 1), conn: sc}
	c.pmu.Lock()
	c.pending[m.Op] = op
	c.pmu.Unlock()
	defer func() {
		c.pmu.Lock()
		delete(c.pending, m.Op)
		c.pmu.Unlock()
	}()
	if err := sc.writeFrame(wire.Frame{Type: wire.FrameMsg, Msg: m}); err != nil {
		if !err.sent {
			return core.ForwardedMsg{}, errNotSent
		}
		return core.ForwardedMsg{}, errMaybeSent
	}
	timer := time.NewTimer(c.cfg.OpTimeout)
	defer timer.Stop()
	select {
	case out := <-op.ch:
		if out.broken {
			return core.ForwardedMsg{}, errMaybeSent
		}
		return out.msg, nil
	case <-timer.C:
		return core.ForwardedMsg{}, errMaybeSent
	}
}

// refreshAndWait asks for a fresh view and briefly waits for one newer
// than stale (bounded; routing proceeds on whatever is adopted by then).
func (c *Client) refreshAndWait(stale *viewState) {
	c.mu.Lock()
	cur := c.view
	var any *serverConn
	for _, sc := range c.conns {
		if sc.alive() {
			any = sc
			break
		}
	}
	c.mu.Unlock()
	if cur != stale && cur != nil {
		return // already newer than what the caller routed on
	}
	if any != nil {
		any.writeFrame(wire.Frame{Type: wire.FrameViewReq})
	} else {
		// Every pooled connection is dead: re-bootstrap from the seeds
		// (plus the last known membership) — dialing adopts the VIEW the
		// handshake carries.
		addrs := append([]string{}, c.cfg.Seeds...)
		if stale != nil {
			for _, id := range stale.order {
				addrs = append(addrs, stale.addrs[id])
			}
		}
		for _, a := range addrs {
			if _, err := c.getConn(a); err == nil {
				break
			}
		}
	}
	deadline := time.Now().Add(c.cfg.DialTimeout / 4)
	staleVer := uint64(0)
	if stale != nil {
		staleVer = stale.version
	}
	c.waitView(staleVer, deadline)
}

// waitView blocks until a view newer than minVersion is adopted or the
// deadline passes; reports success.
func (c *Client) waitView(minVersion uint64, deadline time.Time) bool {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return false
		}
		if c.view != nil && c.view.version > minVersion {
			c.mu.Unlock()
			return true
		}
		ch := c.viewCh
		c.mu.Unlock()
		wait := time.Until(deadline)
		if wait <= 0 {
			return false
		}
		timer := time.NewTimer(wait)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			return false
		}
	}
}

// adoptView installs a VIEW frame received from source. Versions are
// per-server counters, so ordering is enforced only against pushes from
// the same source; a different server's view is adopted when its member
// set differs (membership news travels regardless of which server
// reports it first).
func (c *Client) adoptView(source string, f wire.Frame) {
	vs := &viewState{
		source:  source,
		version: f.ViewVersion,
		addrs:   make(map[core.ProcessID]string, len(f.Peers)),
	}
	members := make([]core.ProcessID, 0, len(f.Peers))
	for _, p := range f.Peers {
		if _, dup := vs.addrs[p.ID]; dup {
			continue
		}
		vs.addrs[p.ID] = p.Addr
		members = append(members, p.ID)
	}
	vs.order = members
	if f.Shards > 0 {
		cfg := placement.Config{Shards: int(f.Shards), Replication: int(f.Replication)}
		vs.view = placement.Build(cfg, members)
	}
	c.mu.Lock()
	cur := c.view
	adopt := cur == nil ||
		(cur.source == source && f.ViewVersion > cur.version) ||
		(cur.source != source && !sameMembers(cur, vs))
	if adopt {
		if cur != nil {
			c.stats.refreshes.Add(1)
		}
		c.view = vs
		close(c.viewCh)
		c.viewCh = make(chan struct{})
	}
	c.mu.Unlock()
}

// sameMembers reports whether two view states cover the same member ids.
func sameMembers(a, b *viewState) bool {
	if len(a.addrs) != len(b.addrs) {
		return false
	}
	for id := range a.addrs {
		if _, ok := b.addrs[id]; !ok {
			return false
		}
	}
	return true
}

// getConn returns the pooled connection for addr, dialing if absent.
func (c *Client) getConn(addr string) (*serverConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if sc := c.conns[addr]; sc != nil && sc.alive() {
		c.mu.Unlock()
		return sc, nil
	}
	if c.conns[addr] != nil {
		c.stats.redials.Add(1)
	}
	c.mu.Unlock()

	// Dial outside the client lock.
	conn, err := net.DialTimeout("tcp", addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	sc := &serverConn{addr: addr, conn: conn, done: make(chan struct{})}
	if werr := sc.writeFrame(wire.Frame{Type: wire.FrameHello, Role: wire.RoleClient}); werr != nil {
		conn.Close()
		return nil, errConnBroken
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	if cur := c.conns[addr]; cur != nil && cur.alive() {
		// Lost a dial race; use the winner.
		c.mu.Unlock()
		conn.Close()
		return cur, nil
	}
	c.conns[addr] = sc
	c.mu.Unlock()
	go c.readLoop(sc)
	return sc, nil
}

// readLoop drains one connection: op replies resolve pending ops, VIEW
// frames refresh the cache. On exit every pending op that was sent on
// this connection fails errConnBroken.
func (c *Client) readLoop(sc *serverConn) {
	defer sc.close()
	defer c.failPending(sc)
	scn := wire.NewScanner(sc.conn)
	for {
		f, err := scn.Next()
		if err != nil {
			return
		}
		switch f.Type {
		case wire.FrameMsg:
			if fm, ok := f.Msg.(core.ForwardedMsg); ok {
				c.pmu.Lock()
				op := c.pending[fm.Op]
				c.pmu.Unlock()
				if op != nil {
					select {
					case op.ch <- opOutcome{msg: fm}:
					default:
					}
				}
			}
		case wire.FrameView:
			c.adoptView(sc.addr, f)
		case wire.FrameHello:
			// The server naming itself; nothing to record — replies carry
			// the serving id per op.
		}
	}
}

// failPending resolves every op still pending on a dead connection with
// the broken outcome — deliberately NOT a refusal: a refusal promises
// "not applied, safe to retry", which a vanished server cannot promise.
func (c *Client) failPending(sc *serverConn) {
	c.pmu.Lock()
	for _, op := range c.pending {
		if op.conn == sc {
			select {
			case op.ch <- opOutcome{broken: true}:
			default:
			}
		}
	}
	c.pmu.Unlock()
}

// sleep pauses between retries (a plain sleep: retry pacing needs no
// cancellation precision).
func sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

func nextBackoff(d time.Duration) time.Duration {
	if d *= 2; d > 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	return d
}

// writeErr distinguishes "the frame may have (partially or fully) left"
// from "provably never sent" — the bit the write ambiguity contract
// turns on.
type writeErr struct {
	err  error
	sent bool
}

func (e *writeErr) Error() string { return e.err.Error() }

// serverConn is one pooled connection: concurrent op senders serialize
// frame writes under a mutex; one readLoop goroutine owns reads.
type serverConn struct {
	addr string
	conn net.Conn
	wmu  sync.Mutex
	done chan struct{}
	once sync.Once
}

func (s *serverConn) close() {
	s.once.Do(func() {
		close(s.done)
		s.conn.Close()
	})
}

func (s *serverConn) alive() bool {
	select {
	case <-s.done:
		return false
	default:
		return true
	}
}

// writeFrame encodes and writes one frame (length prefix included) in a
// single Write call, using a pooled buffer. Returns nil or a *writeErr
// whose sent flag reports whether any byte may have left.
func (s *serverConn) writeFrame(f wire.Frame) *writeErr {
	if !s.alive() {
		return &writeErr{err: errConnBroken, sent: false}
	}
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	b, err := wire.AppendFrameBytes((*buf)[:0], f)
	if err != nil {
		return &writeErr{err: err, sent: false}
	}
	*buf = b
	s.wmu.Lock()
	s.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	n, werr := s.conn.Write(b)
	s.wmu.Unlock()
	if werr != nil {
		s.close()
		return &writeErr{err: werr, sent: n > 0}
	}
	return nil
}
