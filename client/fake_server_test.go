package client

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"churnreg/internal/core"
	"churnreg/internal/wire"
)

// fakeServer is a scripted wire endpoint: it completes the client
// handshake (HELLO + VIEW naming itself as the single unsharded member)
// and then answers each FORWARD according to the script — or stays
// silent when the script returns nil, which is how the tests manufacture
// the ambiguous-write condition deterministically.
type fakeServer struct {
	ln     net.Listener
	ops    atomic.Uint64
	script func(op core.ForwardMsg, nth uint64) *core.ForwardedMsg

	mu    sync.Mutex
	conns []net.Conn
}

func newFakeServer(t *testing.T, script func(op core.ForwardMsg, nth uint64) *core.ForwardedMsg) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln, script: script}
	t.Cleanup(fs.close)
	go fs.acceptLoop()
	return fs
}

func (fs *fakeServer) addr() string { return fs.ln.Addr().String() }

func (fs *fakeServer) close() {
	fs.ln.Close()
	fs.mu.Lock()
	for _, c := range fs.conns {
		c.Close()
	}
	fs.mu.Unlock()
}

// view is the frame the fake advertises: one unsharded member (itself).
func (fs *fakeServer) view(version uint64) wire.Frame {
	return wire.Frame{Type: wire.FrameView, ViewVersion: version,
		Peers: []wire.Peer{{ID: 1, Addr: fs.addr()}}}
}

func (fs *fakeServer) acceptLoop() {
	for {
		conn, err := fs.ln.Accept()
		if err != nil {
			return
		}
		fs.mu.Lock()
		fs.conns = append(fs.conns, conn)
		fs.mu.Unlock()
		go fs.serve(conn)
	}
}

func (fs *fakeServer) serve(conn net.Conn) {
	var wmu sync.Mutex
	reply := func(f wire.Frame) {
		wmu.Lock()
		wire.WriteFrame(conn, f)
		wmu.Unlock()
	}
	for {
		f, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		switch f.Type {
		case wire.FrameHello:
			reply(wire.Frame{Type: wire.FrameHello, From: 1, Addr: fs.addr()})
			reply(fs.view(1))
		case wire.FrameViewReq:
			reply(fs.view(1))
		case wire.FrameMsg:
			fm, ok := f.Msg.(core.ForwardMsg)
			if !ok {
				continue
			}
			nth := fs.ops.Add(1)
			if out := fs.script(fm, nth); out != nil {
				out.Op = fm.Op
				out.Reg = fm.Reg
				if out.From == 0 {
					out.From = 1
				}
				reply(wire.Frame{Type: wire.FrameMsg, Msg: *out})
			}
		}
	}
}

// push sends an unsolicited frame on every live connection (the server-
// initiated VIEW push path).
func (fs *fakeServer) push(f wire.Frame) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, c := range fs.conns {
		wire.WriteFrame(c, f)
	}
}

// TestAmbiguousWriteNotRetried is the contract the tentpole spec calls
// out by name: a write whose target goes silent after the frame was sent
// fails as a typed AmbiguousWriteError wrapping ErrUnacknowledged — and
// the client must NOT have re-sent it.
func TestAmbiguousWriteNotRetried(t *testing.T) {
	fs := newFakeServer(t, func(core.ForwardMsg, uint64) *core.ForwardedMsg {
		return nil // swallow every op
	})
	c, err := Dial(Config{
		Seeds:       []string{fs.addr()},
		DialTimeout: time.Second,
		OpTimeout:   300 * time.Millisecond,
		MaxAttempts: 5,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	_, err = c.Write(7, 42)
	if !errors.Is(err, ErrUnacknowledged) {
		t.Fatalf("silent write: err = %v, want ErrUnacknowledged", err)
	}
	var amb *AmbiguousWriteError
	if !errors.As(err, &amb) {
		t.Fatalf("silent write: err = %T, want *AmbiguousWriteError", err)
	}
	if amb.Key != 7 || amb.Val != 42 {
		t.Fatalf("ambiguous error names key=%d val=%d, want 7/42", amb.Key, amb.Val)
	}
	if got := fs.ops.Load(); got != 1 {
		t.Fatalf("server saw %d op frames, want exactly 1 (no blind retry)", got)
	}
	if s := c.Stats(); s.AmbiguousWrites != 1 {
		t.Fatalf("Stats().AmbiguousWrites = %d, want 1", s.AmbiguousWrites)
	}
}

// TestRefusedWriteRetries: an explicit refusal promises the op was NOT
// applied, so the client may — must — retry it. First attempt refused,
// second succeeds.
func TestRefusedWriteRetries(t *testing.T) {
	fs := newFakeServer(t, func(m core.ForwardMsg, nth uint64) *core.ForwardedMsg {
		if nth == 1 {
			return &core.ForwardedMsg{Code: core.ForwardWrongReplica}
		}
		return &core.ForwardedMsg{Code: core.ForwardOK,
			Value: core.VersionedValue{Val: m.Val, SN: 1}}
	})
	c, err := Dial(Config{
		Seeds:        []string{fs.addr()},
		DialTimeout:  400 * time.Millisecond,
		OpTimeout:    time.Second,
		RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	v, err := c.Write(3, 99)
	if err != nil {
		t.Fatalf("refused-then-accepted write: %v", err)
	}
	if v.Val != 99 || v.SN != 1 {
		t.Fatalf("write returned %+v, want ⟨99,#1⟩", v)
	}
	if got := fs.ops.Load(); got != 2 {
		t.Fatalf("server saw %d op frames, want 2 (one refusal, one retry)", got)
	}
	if s := c.Stats(); s.Retries < 1 {
		t.Fatalf("Stats().Retries = %d, want >= 1", s.Retries)
	}
}

// TestReadTimeoutRetries: reads are idempotent, so a silent server costs
// a timeout and a retry, never an ambiguous failure.
func TestReadTimeoutRetries(t *testing.T) {
	fs := newFakeServer(t, func(m core.ForwardMsg, nth uint64) *core.ForwardedMsg {
		if nth == 1 {
			return nil // swallow the first read
		}
		return &core.ForwardedMsg{Code: core.ForwardOK,
			Value: core.VersionedValue{Val: 5, SN: 2}}
	})
	c, err := Dial(Config{
		Seeds:       []string{fs.addr()},
		DialTimeout: time.Second,
		OpTimeout:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	v, err := c.Read(11)
	if err != nil {
		t.Fatalf("read after one swallowed attempt: %v", err)
	}
	if v.Val != 5 || v.SN != 2 {
		t.Fatalf("read = %+v, want ⟨5,#2⟩", v)
	}
	if got := fs.ops.Load(); got < 2 {
		t.Fatalf("server saw %d op frames, want >= 2 (timeout then retry)", got)
	}
}

// TestUnsolicitedViewPushAdopted: servers push fresh VIEWs on membership
// changes; the client must adopt a newer push from the same source
// without being asked.
func TestUnsolicitedViewPushAdopted(t *testing.T) {
	fs := newFakeServer(t, func(core.ForwardMsg, uint64) *core.ForwardedMsg { return nil })
	c, err := Dial(Config{Seeds: []string{fs.addr()}, DialTimeout: time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if got := c.ViewVersion(); got != 1 {
		t.Fatalf("bootstrap view version = %d, want 1", got)
	}

	f := fs.view(2)
	f.Peers = append(f.Peers, wire.Peer{ID: 9, Addr: "127.0.0.1:9"})
	fs.push(f)

	deadline := time.Now().Add(2 * time.Second)
	for c.ViewVersion() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.ViewVersion(); got != 2 {
		t.Fatalf("pushed view not adopted: version = %d, want 2", got)
	}
	if got := len(c.Members()); got != 2 {
		t.Fatalf("Members() = %d ids after push, want 2", got)
	}

	// A STALE push (version rewound) must be ignored.
	fs.push(fs.view(1))
	time.Sleep(50 * time.Millisecond)
	if got := c.ViewVersion(); got != 2 {
		t.Fatalf("stale push adopted: version = %d, want 2", got)
	}
}
