package churnreg

import (
	"fmt"
	"sort"
	"strings"

	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/sim"
	"churnreg/internal/spec"
)

// SimCluster is a deterministic simulated dynamic system hosting a keyed
// namespace of regular registers over one membership substrate. All
// methods drive the simulation forward as needed; between calls, virtual
// time stands still. Not safe for concurrent use (the simulation is
// single-threaded by design).
type SimCluster struct {
	opts    options
	sys     *dynsys.System
	history *spec.History
	writer  core.ProcessID
	// shielded processes are exempt from churn while a blocking operation
	// runs on them ("the invoking process does not leave").
	shielded map[core.ProcessID]bool
	// stepBudget bounds how long a single blocking operation may advance
	// virtual time before reporting a liveness failure.
	stepBudget sim.Duration
}

// NewSimCluster builds a simulated cluster: n bootstrap processes holding
// the initial value, churn running at the configured rate, and the chosen
// protocol on every process.
func NewSimCluster(opt ...Option) (*SimCluster, error) {
	o := defaults()
	for _, f := range opt {
		f(&o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	c := &SimCluster{
		opts:       o,
		shielded:   make(map[core.ProcessID]bool),
		stepBudget: sim.Duration(o.opTimeout / o.tick),
	}
	sys, err := dynsys.New(dynsys.Config{
		N:           o.n,
		Delta:       sim.Duration(o.delta),
		Model:       o.model(),
		Factory:     o.factory(),
		Seed:        o.seed,
		ChurnRate:   o.churnRate,
		ChurnPolicy: o.policy,
		MinLifetime: sim.Duration(o.minLifetime),
		Protect:     func(id core.ProcessID) bool { return id == c.writer || c.shielded[id] },
		Initial:     core.VersionedValue{Val: core.Value(o.initial), SN: 0},
		Initials:    o.initialKeys,
	})
	if err != nil {
		return nil, err
	}
	c.sys = sys
	c.history = spec.NewHistory(core.VersionedValue{Val: core.Value(o.initial), SN: 0})
	for _, kv := range o.initialKeys {
		c.history.SetInitialKey(kv.Reg, kv.Value)
	}
	return c, nil
}

// Now returns the current virtual time in ticks.
func (c *SimCluster) Now() int64 { return int64(c.sys.Now()) }

// Run advances the simulation by d ticks (churn and in-flight protocol
// activity proceed; no new operations are issued).
func (c *SimCluster) Run(d int64) {
	_ = c.sys.RunFor(sim.Duration(d))
}

// Size returns the number of processes currently in the system (always n).
func (c *SimCluster) Size() int { return c.sys.Network().Size() }

// ActiveCount returns |A(now)|: processes whose join has returned.
func (c *SimCluster) ActiveCount() int { return len(c.sys.ActiveIDs()) }

// ActiveIDs returns the active processes' identities.
func (c *SimCluster) ActiveIDs() []ProcessID { return c.sys.ActiveIDs() }

// Join makes a fresh process enter the system, then runs the simulation
// until its join operation returns. The paper's liveness theorems say this
// terminates as long as the process stays; the cluster protects it from
// churn while it waits.
func (c *SimCluster) Join() (ProcessID, error) {
	id, node := c.sys.Spawn()
	j, ok := node.(core.Joiner)
	if !ok {
		return id, nil
	}
	// Shield the joiner so "the invoking process does not leave".
	c.shielded[id] = true
	defer delete(c.shielded, id)
	done := false
	j.OnJoined(func() { done = true })
	if err := c.await(&done, func() bool { return !c.sys.Present(id) }); err != nil {
		return id, fmt.Errorf("churnreg: join %v: %w", id, err)
	}
	return id, nil
}

// Leave makes the process leave the system immediately and forever.
func (c *SimCluster) Leave(id ProcessID) { c.sys.KillProcess(id) }

// Write stores v in register 0 — sugar for WriteKey(DefaultRegister, v).
func (c *SimCluster) Write(v int64) error {
	return c.WriteKey(core.DefaultRegister, v)
}

// WriteKey stores v in one register of the namespace via an active
// process (a stable designated writer when available) and runs the
// simulation until the write returns ok. Writes from a SimCluster are
// sequential by construction, matching the paper's one-writer-at-a-time
// discipline (which the keyed protocols require only per key).
func (c *SimCluster) WriteKey(k RegisterID, v int64) error {
	id, err := c.pickWriter()
	if err != nil {
		return err
	}
	node := c.sys.Node(id)
	w, ok := node.(core.KeyedWriter)
	if !ok {
		return fmt.Errorf("churnreg: protocol %v cannot write", c.opts.protocol)
	}
	op := c.history.BeginWriteKey(id, k, c.sys.Now())
	done := false
	if err := w.WriteKey(k, core.Value(v), func() {
		c.history.CompleteWrite(op, c.sys.Now(), core.SnapshotKey(node, k))
		done = true
	}); err != nil {
		c.history.Abandon(op)
		return fmt.Errorf("churnreg: write %v: %w", k, err)
	}
	if err := c.await(&done, func() bool { return !c.sys.Present(id) }); err != nil {
		c.history.Abandon(op)
		return fmt.Errorf("churnreg: write %v: %w", k, err)
	}
	return nil
}

// WriteBatch stores several keys' values with ONE broadcast and one δ
// wait (synchronous protocol only — quorum protocols return an error).
// The batch is recorded as one write per key.
func (c *SimCluster) WriteBatch(kvs map[RegisterID]int64) error {
	if len(kvs) == 0 {
		return nil
	}
	id, err := c.pickWriter()
	if err != nil {
		return err
	}
	node := c.sys.Node(id)
	bw, ok := node.(core.BatchWriter)
	if !ok {
		return fmt.Errorf("churnreg: protocol %v cannot batch-write", c.opts.protocol)
	}
	ks := make([]RegisterID, 0, len(kvs))
	for k := range kvs {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	entries := make([]core.KeyedWrite, len(ks))
	ops := make([]*spec.Op, len(ks))
	for i, k := range ks {
		entries[i] = core.KeyedWrite{Reg: k, Val: core.Value(kvs[k])}
		ops[i] = c.history.BeginWriteKey(id, k, c.sys.Now())
	}
	done := false
	if err := bw.WriteBatch(entries, func() {
		for i, k := range ks {
			c.history.CompleteWrite(ops[i], c.sys.Now(), core.SnapshotKey(node, k))
		}
		done = true
	}); err != nil {
		for _, op := range ops {
			c.history.Abandon(op)
		}
		return fmt.Errorf("churnreg: write batch: %w", err)
	}
	if err := c.await(&done, func() bool { return !c.sys.Present(id) }); err != nil {
		for _, op := range ops {
			c.history.Abandon(op)
		}
		return fmt.Errorf("churnreg: write batch: %w", err)
	}
	return nil
}

// Read returns register 0's value as seen by a random active process,
// running the simulation until the read returns.
func (c *SimCluster) Read() (int64, error) {
	return c.ReadKey(core.DefaultRegister)
}

// ReadKey returns one register's value as seen by a random active
// process.
func (c *SimCluster) ReadKey(k RegisterID) (int64, error) {
	id, ok := c.sys.RandomActive()
	if !ok {
		return 0, ErrNoActiveProcess
	}
	return c.ReadKeyAt(id, k)
}

// ReadAt reads register 0 via a specific active process.
func (c *SimCluster) ReadAt(id ProcessID) (int64, error) {
	return c.ReadKeyAt(id, core.DefaultRegister)
}

// ReadKeyAt reads one register via a specific active process.
func (c *SimCluster) ReadKeyAt(id ProcessID, k RegisterID) (int64, error) {
	node := c.sys.Node(id)
	if node == nil {
		return 0, fmt.Errorf("churnreg: %v: %w", id, ErrNoActiveProcess)
	}
	op := c.history.BeginReadKey(id, k, c.sys.Now())
	switch n := node.(type) {
	case core.KeyedLocalReader:
		v, err := n.ReadLocalKey(k)
		if err != nil {
			c.history.Abandon(op)
			return 0, fmt.Errorf("churnreg: read %v: %w", k, err)
		}
		c.history.CompleteRead(op, c.sys.Now(), v)
		return int64(v.Val), nil
	case core.KeyedReader:
		// Shield the reader while the cluster blocks on its quorum read
		// (the paper's liveness assumes the invoker does not leave).
		c.shielded[id] = true
		defer delete(c.shielded, id)
		var got core.VersionedValue
		done := false
		if err := n.ReadKey(k, func(v core.VersionedValue) {
			got = v
			c.history.CompleteRead(op, c.sys.Now(), v)
			done = true
		}); err != nil {
			c.history.Abandon(op)
			return 0, fmt.Errorf("churnreg: read %v: %w", k, err)
		}
		if err := c.await(&done, func() bool { return !c.sys.Present(id) }); err != nil {
			c.history.Abandon(op)
			return 0, fmt.Errorf("churnreg: read %v: %w", k, err)
		}
		if got.IsBottom() {
			return 0, ErrValueUnavailable
		}
		return int64(got.Val), nil
	default:
		c.history.Abandon(op)
		return 0, fmt.Errorf("churnreg: protocol %v cannot read", c.opts.protocol)
	}
}

// pickWriter returns a stable active writer, electing a new one when the
// previous writer left. The elected writer is protected from churn.
func (c *SimCluster) pickWriter() (core.ProcessID, error) {
	if c.writer != core.NoProcess && c.sys.Present(c.writer) {
		if n := c.sys.Node(c.writer); n != nil && n.Active() {
			return c.writer, nil
		}
	}
	id, ok := c.sys.RandomActive()
	if !ok {
		return core.NoProcess, ErrNoActiveProcess
	}
	c.writer = id
	return id, nil
}

// await advances the simulation until *done, the abort condition, or the
// step budget is exhausted.
func (c *SimCluster) await(done *bool, aborted func() bool) error {
	var spent sim.Duration
	for !*done {
		if aborted != nil && aborted() {
			return fmt.Errorf("invoking process left the system")
		}
		if spent >= c.stepBudget {
			return fmt.Errorf("no progress after %d ticks (liveness lost?)", spent)
		}
		if err := c.sys.RunFor(1); err != nil {
			return err
		}
		spent++
	}
	return nil
}

// CheckReport summarizes correctness over everything the cluster recorded.
type CheckReport struct {
	// Reads / Writes completed.
	Reads, Writes int
	// RegularViolations lists reads no regular register could return.
	RegularViolations []string
	// ViolationsByKey attributes each regularity violation to the
	// register it occurred on (nil when there are none).
	ViolationsByKey map[RegisterID]int
	// Inversions counts new/old inversions — legal for a regular
	// register, but the reason this register is not atomic.
	Inversions int
}

// OK reports whether the execution is a legal regular-register behaviour.
func (r CheckReport) OK() bool { return len(r.RegularViolations) == 0 }

// String renders the report.
func (r CheckReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "reads=%d writes=%d inversions=%d violations=%d",
		r.Reads, r.Writes, r.Inversions, len(r.RegularViolations))
	for _, v := range r.RegularViolations {
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return b.String()
}

// Check verifies every operation issued through this cluster against the
// regular-register specification.
func (c *SimCluster) Check() CheckReport {
	counts := c.history.Counts()
	rep := CheckReport{
		Reads:      counts.ReadsCompleted,
		Writes:     counts.WritesCompleted,
		Inversions: len(c.history.FindInversions()),
	}
	for _, v := range c.history.CheckRegular() {
		rep.RegularViolations = append(rep.RegularViolations, v.String())
		if rep.ViolationsByKey == nil {
			rep.ViolationsByKey = make(map[RegisterID]int)
		}
		rep.ViolationsByKey[v.Reg]++
	}
	return rep
}
