package churnreg

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/sim"
	"churnreg/internal/spec"
)

// SimCluster is a deterministic simulated dynamic system hosting a keyed
// namespace of regular registers over one membership substrate. All
// methods drive the simulation forward as needed; between calls, virtual
// time stands still. Not safe for concurrent use (the simulation is
// single-threaded by design) — but operations still pipeline: the
// Start*/Await API issues any number of operations, across keys and on
// one key, before driving the simulation until they complete, which is
// the deterministic twin of LiveCluster/NetCluster's concurrent callers.
type SimCluster struct {
	opts    options
	sys     *dynsys.System
	history *spec.History
	writer  core.ProcessID
	// shielded counts in-flight operations per invoking process; a process
	// with a positive count is exempt from churn ("the invoking process
	// does not leave" — the paper's liveness precondition).
	shielded map[core.ProcessID]int
	// live tracks outstanding PendingOp handles so settled ops release
	// their shields no matter how the simulation was driven (Await or
	// plain Run) — see sweepSettled.
	live []*PendingOp
	// stepBudget bounds how long a single blocking operation may advance
	// virtual time before reporting a liveness failure.
	stepBudget sim.Duration
	// ambiguous records sharded writes that failed ErrUnacknowledged:
	// the forwarded write MAY have been applied by a primary that died
	// before answering. Their history ops stay pending (a write that
	// never returned is concurrent with everything after it — legal for
	// a regular register) and Check resolves each against the reads the
	// cluster actually served (spec.ResolveValue), mirroring the client
	// contract the e2e chaos suite exercises.
	ambiguous []ambiguousWrite
}

// ambiguousWrite is one unacknowledged sharded write awaiting post-hoc
// resolution at Check time.
type ambiguousWrite struct {
	op  *spec.Op
	key RegisterID
	val int64
}

// NewSimCluster builds a simulated cluster: n bootstrap processes holding
// the initial value, churn running at the configured rate, and the chosen
// protocol on every process.
func NewSimCluster(opt ...Option) (*SimCluster, error) {
	o := defaults()
	for _, f := range opt {
		f(&o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	c := &SimCluster{
		opts:       o,
		shielded:   make(map[core.ProcessID]int),
		stepBudget: sim.Duration(o.opTimeout / o.tick),
	}
	sys, err := dynsys.New(dynsys.Config{
		N:           o.n,
		Delta:       sim.Duration(o.delta),
		Model:       o.model(),
		Factory:     o.factory(),
		Seed:        o.seed,
		ChurnRate:   o.churnRate,
		ChurnPolicy: o.policy,
		MinLifetime: sim.Duration(o.minLifetime),
		Protect:     func(id core.ProcessID) bool { return id == c.writer || c.shielded[id] > 0 },
		Initial:     core.VersionedValue{Val: core.Value(o.initial), SN: 0},
		Initials:    o.initialKeys,
		Placement:   o.placement,
	})
	if err != nil {
		return nil, err
	}
	c.sys = sys
	c.history = spec.NewHistory(core.VersionedValue{Val: core.Value(o.initial), SN: 0})
	for _, kv := range o.initialKeys {
		c.history.SetInitialKey(kv.Reg, kv.Value)
	}
	return c, nil
}

// Now returns the current virtual time in ticks.
func (c *SimCluster) Now() int64 { return int64(c.sys.Now()) }

// Run advances the simulation by d ticks (churn and in-flight protocol
// activity proceed; no new operations are issued). Pending operations
// that settle during the run release their churn shields here, so a
// caller may drive Start* handles with Run alone and poll Done.
func (c *SimCluster) Run(d int64) {
	_ = c.sys.RunFor(sim.Duration(d))
	c.sweepSettled()
}

// sweepSettled releases the churn shields of every settled handle and
// drops them from the live list. Runs after every simulation advance
// (Run, Await), so a shield outlives its operation by at most one
// driving call — never for the rest of the run.
func (c *SimCluster) sweepSettled() {
	kept := c.live[:0]
	for _, p := range c.live {
		if p.done {
			p.release()
		} else {
			kept = append(kept, p)
		}
	}
	for i := len(kept); i < len(c.live); i++ {
		c.live[i] = nil
	}
	c.live = kept
}

// Size returns the number of processes currently in the system (always n).
func (c *SimCluster) Size() int { return c.sys.Network().Size() }

// ActiveCount returns |A(now)|: processes whose join has returned.
func (c *SimCluster) ActiveCount() int { return len(c.sys.ActiveIDs()) }

// ActiveIDs returns the active processes' identities.
func (c *SimCluster) ActiveIDs() []ProcessID { return c.sys.ActiveIDs() }

// Join makes a fresh process enter the system, then runs the simulation
// until its join operation returns. The paper's liveness theorems say this
// terminates as long as the process stays; the cluster protects it from
// churn while it waits.
func (c *SimCluster) Join() (ProcessID, error) {
	id, node := c.sys.Spawn()
	j, ok := node.(core.Joiner)
	if !ok {
		return id, nil
	}
	// Shield the joiner so "the invoking process does not leave".
	c.shield(id)
	defer c.unshield(id)
	done := false
	j.OnJoined(func() { done = true })
	if err := c.await(&done, func() bool { return !c.sys.Present(id) }); err != nil {
		return id, fmt.Errorf("churnreg: join %v: %w", id, err)
	}
	return id, nil
}

// Leave makes the process leave the system immediately and forever.
func (c *SimCluster) Leave(id ProcessID) { c.sys.KillProcess(id) }

// Write stores v in register 0 — sugar for WriteKey(DefaultRegister, v).
func (c *SimCluster) Write(v int64) error {
	return c.WriteKey(core.DefaultRegister, v)
}

// WriteKey stores v in one register of the namespace via an active
// process (a stable designated writer when available) and runs the
// simulation until the write returns ok. One blocking call at a time is
// the paper's sequential-process discipline; use StartWriteKey/Await to
// pipeline several writes — the protocols serve them concurrently and
// assign sequence numbers in invocation order per key.
func (c *SimCluster) WriteKey(k RegisterID, v int64) error {
	p := c.StartWriteKey(k, v)
	return c.Await(p)
}

// PendingOp is the handle to an operation issued without blocking by
// StartWriteKey or StartReadKeyAt. Drive the simulation (Await, Run)
// until Done; then Err/Value report the outcome. Handles are not safe
// for concurrent use — like the cluster itself, they belong to the one
// goroutine driving the simulation.
type PendingOp struct {
	c    *SimCluster
	proc core.ProcessID
	key  RegisterID
	op   *spec.Op
	read bool

	done bool
	err  error
	val  core.VersionedValue
	// shielded marks that this op holds a churn shield on its invoker.
	// The shield is released when Await OBSERVES completion — not inside
	// the completion callback — so the invoker stays protected through
	// the whole tick its operation completes in, exactly as the blocking
	// API always behaved.
	shielded bool
}

// Done reports whether the operation has completed (or failed).
func (p *PendingOp) Done() bool { return p.done }

// Err returns the operation's failure, if any (nil while pending).
func (p *PendingOp) Err() error { return p.err }

// Value returns the value a completed read returned, or the value a
// completed write stored.
func (p *PendingOp) Value() (int64, error) {
	if !p.done {
		return 0, fmt.Errorf("churnreg: operation still pending")
	}
	if p.err != nil {
		return 0, p.err
	}
	if p.read && p.val.IsBottom() {
		return 0, ErrValueUnavailable
	}
	return int64(p.val.Val), nil
}

// SN returns the sequence number attached to the operation's value
// (-1 while pending, failed, or unavailable).
func (p *PendingOp) SN() int64 {
	if !p.done || p.err != nil {
		return -1
	}
	return int64(p.val.SN)
}

// fail settles a pending op with an error, releasing its shield.
func (p *PendingOp) fail(err error) {
	if p.done {
		return
	}
	p.done = true
	p.err = err
	p.c.history.Abandon(p.op)
	p.release()
}

// failPending settles the handle with an error but leaves the HISTORY
// op pending (not abandoned): used for ambiguous sharded writes whose
// effect Check resolves post hoc.
func (p *PendingOp) failPending(err error) {
	if p.done {
		return
	}
	p.done = true
	p.err = err
	p.release()
}

// release drops the op's churn shield (idempotent).
func (p *PendingOp) release() {
	if p.shielded {
		p.shielded = false
		p.c.unshield(p.proc)
	}
}

func (c *SimCluster) shield(id core.ProcessID) { c.shielded[id]++ }
func (c *SimCluster) unshield(id core.ProcessID) {
	if c.shielded[id]--; c.shielded[id] <= 0 {
		delete(c.shielded, id)
	}
}

// StartWriteKey issues a write without driving the simulation and returns
// its handle. Any number of writes may be in flight — across keys and
// pipelined on one key (all flow through the designated writer, so the
// per-key cross-process discipline holds by construction). A failed
// invocation returns an already-settled handle.
func (c *SimCluster) StartWriteKey(k RegisterID, v int64) *PendingOp {
	p := &PendingOp{c: c, key: k}
	id, err := c.pickWriter()
	if err != nil {
		p.op = c.history.BeginWriteKey(core.NoProcess, k, c.sys.Now())
		p.done, p.err = true, err
		c.history.Abandon(p.op)
		return p
	}
	p.proc = id
	node := c.sys.Node(id)
	p.op = c.history.BeginWriteKey(id, k, c.sys.Now())
	complete := func(vv core.VersionedValue) {
		if p.done {
			return
		}
		c.history.CompleteWrite(p.op, c.sys.Now(), vv)
		p.done = true
		p.val = vv
	}
	c.shield(id)
	p.shielded = true
	c.live = append(c.live, p)
	switch w := node.(type) {
	case core.FallibleSNWriter:
		// Sharded node: the write may fail after invocation (forward
		// refused or unacknowledged); the handle settles either way. An
		// UNACKNOWLEDGED write may still have been applied, so its
		// history op stays pending for Check-time resolution instead of
		// being abandoned — abandoning would turn a later read of the
		// actually-applied value into a false violation.
		err = w.WriteKeySNErr(k, core.Value(v), func(vv core.VersionedValue, werr error) {
			if werr != nil {
				if errors.Is(werr, core.ErrUnacknowledged) {
					c.ambiguous = append(c.ambiguous, ambiguousWrite{op: p.op, key: k, val: v})
					p.failPending(fmt.Errorf("churnreg: write %v: %w", k, werr))
					return
				}
				p.fail(fmt.Errorf("churnreg: write %v: %w", k, werr))
				return
			}
			complete(vv)
		})
	case core.SNWriter:
		err = w.WriteKeySN(k, core.Value(v), complete)
	case core.KeyedWriter:
		// Legacy writer: the snapshot right after completion is this
		// write's value only when writes are NOT pipelined on the key.
		err = w.WriteKey(k, core.Value(v), func() { complete(core.SnapshotKey(node, k)) })
	default:
		err = fmt.Errorf("churnreg: protocol %v cannot write", c.opts.protocol)
	}
	if err != nil {
		p.fail(fmt.Errorf("churnreg: write %v: %w", k, err))
	}
	return p
}

// StartReadKeyAt issues a read via a specific active process without
// driving the simulation. Local-read protocols settle immediately; quorum
// reads settle during Await/Run. Any number may be in flight, on any mix
// of keys and processes.
func (c *SimCluster) StartReadKeyAt(id ProcessID, k RegisterID) *PendingOp {
	p := &PendingOp{c: c, proc: id, key: k, read: true}
	node := c.sys.Node(id)
	p.op = c.history.BeginReadKey(id, k, c.sys.Now())
	if node == nil {
		p.done, p.err = true, fmt.Errorf("churnreg: %v: %w", id, ErrNoActiveProcess)
		c.history.Abandon(p.op)
		return p
	}
	complete := func(v core.VersionedValue) {
		if p.done {
			return
		}
		c.history.CompleteRead(p.op, c.sys.Now(), v)
		p.done = true
		p.val = v
	}
	c.shield(id)
	p.shielded = true
	c.live = append(c.live, p)
	var err error
	switch n := node.(type) {
	case core.ServedReader:
		// Sharded node: the read may be forwarded; record the replica
		// that actually served it, so per-key attribution stays sound.
		err = n.ReadKeyServed(k, func(v core.VersionedValue, server core.ProcessID, rerr error) {
			if rerr != nil {
				p.fail(fmt.Errorf("churnreg: read %v: %w", k, rerr))
				return
			}
			c.history.SetServer(p.op, server)
			complete(v)
		})
	case core.KeyedLocalReader:
		v, rerr := n.ReadLocalKey(k)
		if rerr != nil {
			err = rerr
		} else {
			complete(v)
		}
	case core.KeyedReader:
		err = n.ReadKey(k, complete)
	default:
		err = fmt.Errorf("churnreg: protocol %v cannot read", c.opts.protocol)
	}
	if err != nil {
		p.fail(fmt.Errorf("churnreg: read %v: %w", k, err))
	}
	return p
}

// Await drives the simulation until every given operation settles (or its
// invoker leaves, or the cluster's op-timeout step budget runs out). It
// returns the first error among the given handles — individual outcomes
// stay readable per handle, so pipelined callers can await a whole burst
// and then inspect each op.
func (c *SimCluster) Await(pops ...*PendingOp) error {
	var spent sim.Duration
	for {
		pending := 0
		for _, p := range pops {
			if p.done {
				p.release()
				continue
			}
			if !c.sys.Present(p.proc) {
				p.fail(fmt.Errorf("churnreg: %s %v: invoking process left the system", p.opName(), p.key))
				continue
			}
			pending++
		}
		if pending == 0 {
			break
		}
		if spent >= c.stepBudget {
			for _, p := range pops {
				p.fail(fmt.Errorf("churnreg: %s %v: no progress after %d ticks (liveness lost?)", p.opName(), p.key, spent))
			}
			break
		}
		if err := c.sys.RunFor(1); err != nil {
			c.sweepSettled()
			return err
		}
		spent++
	}
	c.sweepSettled()
	for _, p := range pops {
		if p.err != nil {
			return p.err
		}
	}
	return nil
}

func (p *PendingOp) opName() string {
	if p.read {
		return "read"
	}
	return "write"
}

// WriteBatch stores several keys' values with ONE broadcast and one δ
// wait (synchronous protocol only — quorum protocols return an error).
// The batch is recorded as one write per key.
func (c *SimCluster) WriteBatch(kvs map[RegisterID]int64) error {
	if len(kvs) == 0 {
		return nil
	}
	id, err := c.pickWriter()
	if err != nil {
		return err
	}
	node := c.sys.Node(id)
	ks := make([]RegisterID, 0, len(kvs))
	for k := range kvs {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	entries := make([]core.KeyedWrite, len(ks))
	ops := make([]*spec.Op, len(ks))
	for i, k := range ks {
		entries[i] = core.KeyedWrite{Reg: k, Val: core.Value(kvs[k])}
		ops[i] = c.history.BeginWriteKey(id, k, c.sys.Now())
	}
	done := false
	var batchErr error
	record := func(stored []core.KeyedValue) {
		for i := range ks {
			c.history.CompleteWrite(ops[i], c.sys.Now(), stored[i].Value)
		}
		done = true
	}
	switch bw := node.(type) {
	case core.FallibleSNBatchWriter:
		// Sharded node: entries route to their shard primaries, and the
		// batch may fail after invocation — PARTIALLY: entries with a
		// reported ⟨v, sn⟩ were applied and complete normally; the rest
		// stay pending if the failure was ambiguous (the primary may
		// have applied them before dying) or are abandoned on a clean
		// refusal.
		err = bw.WriteBatchSNErr(entries, func(stored []core.KeyedValue, werr error) {
			if werr != nil {
				for i, kv := range stored {
					switch {
					case !kv.Value.IsBottom():
						c.history.CompleteWrite(ops[i], c.sys.Now(), kv.Value)
					case errors.Is(werr, core.ErrUnacknowledged):
						c.ambiguous = append(c.ambiguous, ambiguousWrite{
							op: ops[i], key: entries[i].Reg, val: int64(entries[i].Val),
						})
					default:
						c.history.Abandon(ops[i])
					}
				}
				batchErr = werr
				done = true
				return
			}
			record(stored)
		})
	case core.SNBatchWriter:
		err = bw.WriteBatchSN(entries, record)
	default:
		err = fmt.Errorf("churnreg: protocol %v cannot batch-write", c.opts.protocol)
	}
	if err != nil {
		for _, op := range ops {
			c.history.Abandon(op)
		}
		return fmt.Errorf("churnreg: write batch: %w", err)
	}
	if err := c.await(&done, func() bool { return !c.sys.Present(id) }); err != nil {
		for _, op := range ops {
			c.history.Abandon(op)
		}
		return fmt.Errorf("churnreg: write batch: %w", err)
	}
	if batchErr != nil {
		// Per-entry disposition already happened in the callback.
		return fmt.Errorf("churnreg: write batch: %w", batchErr)
	}
	return nil
}

// Read returns register 0's value as seen by a random active process,
// running the simulation until the read returns.
func (c *SimCluster) Read() (int64, error) {
	return c.ReadKey(core.DefaultRegister)
}

// ReadKey returns one register's value as seen by a random active
// process.
func (c *SimCluster) ReadKey(k RegisterID) (int64, error) {
	id, ok := c.sys.RandomActive()
	if !ok {
		return 0, ErrNoActiveProcess
	}
	return c.ReadKeyAt(id, k)
}

// ReadAt reads register 0 via a specific active process.
func (c *SimCluster) ReadAt(id ProcessID) (int64, error) {
	return c.ReadKeyAt(id, core.DefaultRegister)
}

// ReadKeyAt reads one register via a specific active process, blocking
// until the read returns. Use StartReadKeyAt/Await to pipeline reads.
func (c *SimCluster) ReadKeyAt(id ProcessID, k RegisterID) (int64, error) {
	p := c.StartReadKeyAt(id, k)
	if err := c.Await(p); err != nil {
		return 0, err
	}
	return p.Value()
}

// PendingOps sums the in-flight operation-table entries across every
// present node — 0 at quiescence (leak check; see core.OpAccountant).
func (c *SimCluster) PendingOps() int {
	total := 0
	c.sys.ForEachNode(func(_ core.ProcessID, n core.Node) {
		if a, ok := n.(core.OpAccountant); ok {
			total += a.PendingOps()
		}
	})
	return total
}

// snClaimedByOther reports whether any write op on aw's key other than
// aw's own carries sequence number sn (abandoned writes excluded — they
// never entered the checker's write history).
func (c *SimCluster) snClaimedByOther(aw ambiguousWrite, sn core.SeqNum) bool {
	for _, op := range c.history.Ops() {
		if op.Kind == spec.OpWrite && op != aw.op && !op.Abandoned &&
			op.Reg == aw.key && op.Value.SN == sn {
			return true
		}
	}
	return false
}

// pickWriter returns a stable active writer, electing a new one when the
// previous writer left. The elected writer is protected from churn.
func (c *SimCluster) pickWriter() (core.ProcessID, error) {
	if c.writer != core.NoProcess && c.sys.Present(c.writer) {
		if n := c.sys.Node(c.writer); n != nil && n.Active() {
			return c.writer, nil
		}
	}
	id, ok := c.sys.RandomActive()
	if !ok {
		return core.NoProcess, ErrNoActiveProcess
	}
	c.writer = id
	return id, nil
}

// await advances the simulation until *done, the abort condition, or the
// step budget is exhausted.
func (c *SimCluster) await(done *bool, aborted func() bool) error {
	var spent sim.Duration
	for !*done {
		if aborted != nil && aborted() {
			return fmt.Errorf("invoking process left the system")
		}
		if spent >= c.stepBudget {
			return fmt.Errorf("no progress after %d ticks (liveness lost?)", spent)
		}
		if err := c.sys.RunFor(1); err != nil {
			return err
		}
		spent++
	}
	return nil
}

// CheckReport summarizes correctness over everything the cluster recorded.
type CheckReport struct {
	// Reads / Writes completed.
	Reads, Writes int
	// RegularViolations lists reads no regular register could return.
	RegularViolations []string
	// ViolationsByKey attributes each regularity violation to the
	// register it occurred on (nil when there are none).
	ViolationsByKey map[RegisterID]int
	// Inversions counts new/old inversions — legal for a regular
	// register, but the reason this register is not atomic.
	Inversions int
}

// OK reports whether the execution is a legal regular-register behaviour.
func (r CheckReport) OK() bool { return len(r.RegularViolations) == 0 }

// String renders the report.
func (r CheckReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "reads=%d writes=%d inversions=%d violations=%d",
		r.Reads, r.Writes, r.Inversions, len(r.RegularViolations))
	for _, v := range r.RegularViolations {
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return b.String()
}

// Check verifies every operation issued through this cluster against the
// regular-register specification. Ambiguous sharded writes
// (ErrUnacknowledged — applied-or-not unknowable at the client) are
// first resolved against the reads the cluster served: a value some
// read returned did happen, and its ⟨v, sn⟩ is recorded on the still-
// pending write op; a value no read returned needs no resolution.
func (c *SimCluster) Check() CheckReport {
	for _, aw := range c.ambiguous {
		if !aw.op.Value.IsBottom() {
			continue // resolved by an earlier Check
		}
		for _, op := range c.history.Ops() {
			if op.Kind != spec.OpRead || !op.Completed || op.Reg != aw.key ||
				op.Value.Val != core.Value(aw.val) {
				continue
			}
			// The observed ⟨v, sn⟩ identifies the ambiguous write only
			// if no OTHER write on the key claims that sequence number
			// — with repeated values, a read of an earlier same-valued
			// write must not resolve this one (it is already allowed
			// via that write, so skipping loses nothing).
			if c.snClaimedByOther(aw, op.Value.SN) {
				continue
			}
			c.history.ResolveValue(aw.op, op.Value)
			break
		}
	}
	counts := c.history.Counts()
	rep := CheckReport{
		Reads:      counts.ReadsCompleted,
		Writes:     counts.WritesCompleted,
		Inversions: len(c.history.FindInversions()),
	}
	for _, v := range c.history.CheckRegular() {
		rep.RegularViolations = append(rep.RegularViolations, v.String())
		if rep.ViolationsByKey == nil {
			rep.ViolationsByKey = make(map[RegisterID]int)
		}
		rep.ViolationsByKey[v.Reg]++
	}
	return rep
}
