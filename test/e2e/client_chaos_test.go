package e2e

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"churnreg/client"
	"churnreg/internal/core"
	"churnreg/internal/sim"
	"churnreg/internal/spec"
)

// TestE2EChaosWireClient is the sharded chaos suite rerun through the
// wire-native smart client instead of the HTTP API: every operation
// routes over the binary protocol direct to a member of the owning
// replica group, using the client's cached placement view. The churn
// schedule is kill-and-replace — the hostile case for a placement
// cache, because a crashed owner sends no goodbye: the client keeps
// routing to it until sends fail or the servers' refreshed views
// arrive, and correctness while the cache is stale rests on servers
// refusing what they no longer own, never mis-serving it.
//
// The ambiguity contract is exercised exactly as documented: a write
// the client reports as client.ErrUnacknowledged poisons its key (no
// process writes it again) and is resolved post hoc against observed
// reads; a write that fails any other way was refused — provably not
// applied — so the key stays writable. Per-key regularity over the
// client-observed history is the verdict, as in every other suite here.
func TestE2EChaosWireClient(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs OS processes; skipped in -short")
	}
	cfg := shardedChaosConfig{
		protocol: "esync", delta: 5, tick: "1ms", duration: 4 * time.Second,
		shards: 8, replica: 3, evictAfter: "500ms",
	}
	for _, seed := range seedsToRun() {
		t.Run(fmt.Sprintf("%s/seed=%d", cfg.protocol, seed), func(t *testing.T) {
			runWireClientChaos(t, cfg, seed)
		})
	}
}

func runWireClientChaos(t *testing.T, cfg shardedChaosConfig, seed int64) {
	const nKeys = 6
	start := time.Now()
	now := func() sim.Time { return sim.Time(time.Since(start).Microseconds()) }

	history := spec.NewHistory(core.VersionedValue{Val: 0, SN: 0})
	var hmu sync.Mutex

	const nBoot = 4
	founders := make([]*node, 0, nBoot)
	var peerAddrs []string
	for i := int64(1); i <= nBoot; i++ {
		nd := mustStartNode(t, i, cfg.protocol, nBoot, cfg.delta, cfg.tick, true, peerAddrs, cfg.flags()...)
		founders = append(founders, nd)
		peerAddrs = append(peerAddrs, nd.listen)
	}
	for _, nd := range founders {
		mustHealthy(t, nd, nBoot-1, 10*time.Second)
	}

	// One client, seeded with every founder's wire address; it discovers
	// placement from the handshake view and routes directly from there.
	c, err := client.Dial(client.Config{Seeds: peerAddrs})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Sharded() {
		t.Fatal("client did not learn a sharded placement from the handshake")
	}

	var (
		stop          atomic.Bool
		wg            sync.WaitGroup
		writesDone    atomic.Uint64
		writesRefused atomic.Uint64
		readsDone     atomic.Uint64
		readsFailed   atomic.Uint64
	)

	// Poisoned keys had an ambiguous write; resolved against reads at the
	// end — same discipline as the HTTP sharded chaos suite.
	var poisonMu sync.Mutex
	poisoned := make(map[int64]bool)
	var ambiguous []ambiguousWrite
	isPoisoned := func(k int64) bool {
		poisonMu.Lock()
		defer poisonMu.Unlock()
		return poisoned[k]
	}
	poison := func(op *spec.Op, k, v int64) {
		poisonMu.Lock()
		defer poisonMu.Unlock()
		poisoned[k] = true
		ambiguous = append(ambiguous, ambiguousWrite{op: op, key: k, val: v})
	}

	// One writer through the client. The client itself distinguishes the
	// failure classes: ErrUnacknowledged = fate unknown, poison the key;
	// anything else = the cluster refused after the client's own retries,
	// so the write was not applied and the key stays writable.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed * 1000))
		counter := int64(0)
		for !stop.Load() {
			counter++
			val := seed*100_000_000 + counter
			k := rng.Int63n(nKeys)
			if isPoisoned(k) {
				continue
			}
			hmu.Lock()
			op := history.BeginWriteKey(1, core.RegisterID(k), now())
			hmu.Unlock()
			res, werr := c.Write(k, val)
			end := now()
			hmu.Lock()
			switch {
			case werr == nil:
				history.CompleteWrite(op, end, core.VersionedValue{Val: core.Value(val), SN: core.SeqNum(res.SN)})
				writesDone.Add(1)
			case errors.Is(werr, client.ErrUnacknowledged):
				poison(op, k, val)
			default:
				history.Abandon(op)
				writesRefused.Add(1)
			}
			hmu.Unlock()
			time.Sleep(time.Duration(rng.Intn(30)) * time.Millisecond)
		}
	}()

	// Readers share the client (it is safe for concurrent use); the
	// serving replica it reports attributes each read in the history.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(rdr int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*100 + rdr))
			for !stop.Load() {
				k := rng.Int63n(nKeys)
				hmu.Lock()
				op := history.BeginReadKey(core.ProcessID(100+rdr), core.RegisterID(k), now())
				hmu.Unlock()
				v, served, rerr := c.ReadServed(k)
				end := now()
				hmu.Lock()
				if rerr != nil {
					history.Abandon(op)
					readsFailed.Add(1)
				} else {
					history.SetServer(op, core.ProcessID(served))
					history.CompleteRead(op, end, core.VersionedValue{Val: core.Value(v.Val), SN: core.SeqNum(v.SN)})
					readsDone.Add(1)
				}
				hmu.Unlock()
				time.Sleep(time.Duration(5+rng.Intn(15)) * time.Millisecond)
			}
		}(int64(r))
	}

	// Churn: kill-and-replace, twice the cache insult of the HTTP suite's
	// single crash — founder 4 dies without a goodbye mid-traffic, a
	// replacement joins, and the client must re-learn placement both times.
	scheduleDone := make(chan struct{})
	var phases atomic.Int32
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(scheduleDone)
		d := cfg.duration
		time.Sleep(4 * d / 10)
		n4 := founders[3]
		n4.kill()
		phases.Add(1)
		// Traffic keeps flowing against the stale cache while eviction
		// runs; then the replacement joins and placement reshuffles again.
		time.Sleep(2 * d / 10)
		n5, err := startNode(t, nBoot+1, cfg.protocol, nBoot, cfg.delta, cfg.tick, false,
			[]string{founders[0].listen, founders[1].listen}, cfg.flags()...)
		if err != nil {
			t.Error(err)
			return
		}
		if err := waitHealthy(n5, 2, 15*time.Second); err != nil {
			t.Errorf("replacement: %v", err)
			return
		}
		phases.Add(1)
	}()

	select {
	case <-scheduleDone:
	case <-time.After(cfg.duration + 90*time.Second):
		t.Error("churn schedule wedged")
	}
	time.Sleep(cfg.duration / 4)
	stop.Store(true)
	wg.Wait()
	t.Logf("traffic and churn finished at %v", time.Since(start).Round(time.Millisecond))
	if t.Failed() {
		return
	}
	if phases.Load() != 2 {
		t.Fatalf("churn schedule completed %d/2 phases", phases.Load())
	}

	// Quiesce, then final reads through the client: every key must still
	// be servable, which requires the placement cache to have healed past
	// both the crash and the join (retry briefly while eviction settles).
	time.Sleep(10 * time.Duration(cfg.delta) * time.Millisecond)
	for k := int64(0); k < nKeys; k++ {
		hmu.Lock()
		op := history.BeginReadKey(200, core.RegisterID(k), now())
		hmu.Unlock()
		var v client.Versioned
		var served int64
		deadline := time.Now().Add(15 * time.Second)
		for {
			v, served, err = c.ReadServed(k)
			if err == nil || time.Now().After(deadline) {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		end := now()
		if err != nil {
			t.Errorf("final read key %d: %v", k, err)
			hmu.Lock()
			history.Abandon(op)
			hmu.Unlock()
			continue
		}
		hmu.Lock()
		history.SetServer(op, core.ProcessID(served))
		history.CompleteRead(op, end, core.VersionedValue{Val: core.Value(v.Val), SN: core.SeqNum(v.SN)})
		hmu.Unlock()
		readsDone.Add(1)
	}

	// The dead founder must be gone from the client's adopted view by now
	// — the stale entry was dropped, not retried forever.
	for _, id := range c.Members() {
		if id == founders[3].id {
			t.Errorf("client view still lists killed node %d: members=%v", founders[3].id, c.Members())
		}
	}

	// Resolve ambiguous writes against observed reads, as documented.
	poisonMu.Lock()
	pending := append([]ambiguousWrite(nil), ambiguous...)
	poisonMu.Unlock()
	resolved := 0
	hmu.Lock()
	for _, aw := range pending {
		for _, op := range history.Ops() {
			if op.Kind == spec.OpRead && op.Completed && op.Reg == core.RegisterID(aw.key) &&
				op.Value.Val == core.Value(aw.val) {
				history.ResolveValue(aw.op, op.Value)
				resolved++
				break
			}
		}
	}
	hmu.Unlock()

	if err := history.ValidateWrites(); err != nil {
		t.Fatalf("workload broke the write discipline: %v", err)
	}
	if violations := history.CheckRegular(); len(violations) > 0 {
		for i, viol := range violations {
			if i == 10 {
				t.Errorf("... and %d more", len(violations)-10)
				break
			}
			t.Errorf("regularity violation: %v", viol)
		}
		t.FailNow()
	}

	if writesDone.Load() < 10 || readsDone.Load() < 30 {
		t.Fatalf("too few operations completed: %d writes, %d reads",
			writesDone.Load(), readsDone.Load())
	}
	st := c.Stats()
	t.Logf("%s seed=%d S=%d R=%d: %d writes, %d refused, %d ambiguous (%d resolved), %d reads (%d failed); client stats %+v",
		cfg.protocol, seed, cfg.shards, cfg.replica, writesDone.Load(), writesRefused.Load(),
		len(pending), resolved, readsDone.Load(), readsFailed.Load(), st)
}
