//go:build !race

package e2e

// raceEnabled mirrors whether the test binary was built with -race, so
// TestMain can build the regserve under test with matching
// instrumentation.
const raceEnabled = false
