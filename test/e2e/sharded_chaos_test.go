package e2e

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"churnreg/internal/core"
	"churnreg/internal/sim"
	"churnreg/internal/spec"
)

// shardedChaosConfig parameterizes one sharded chaos run: S shards over
// replica groups of R, with peer eviction tightened so placement heals
// within the run after a crash.
type shardedChaosConfig struct {
	protocol   string
	delta      int64
	tick       string
	duration   time.Duration
	shards     int
	replica    int
	evictAfter string
}

func (c shardedChaosConfig) flags() []string {
	return []string{
		"-shards", fmt.Sprint(c.shards),
		"-replication", fmt.Sprint(c.replica),
		"-evict-after", c.evictAfter,
	}
}

// TestE2EChaosSharded is the sharded acceptance suite: SIX regserve OS
// processes over the run (four bootstrap founders, a joiner, and a
// kill-and-replace replacement) shard the keyspace S=8 ways with R=3 —
// strictly fewer replicas than live processes at every instant — while
// seeded chaos traffic flows: writes forwarded to shard primaries over
// the FORWARD/FORWARDED frames, reads served by replica groups, plus a
// join (shard handoff to the newcomer), a graceful leave, and a
// kill-and-replace mid-traffic. Per-key regularity over the
// client-observed history is the verdict.
//
// A forwarded write whose serving primary dies before acknowledging is
// AMBIGUOUS (HTTP 502): it may or may not have been applied. The client
// then stops writing that key and resolves the outcome post hoc — if any
// read observed the value, the write happened and its ⟨v, sn⟩ enters the
// history as a pending (never-returned) write, which a regular register
// treats as concurrent with everything after it; if no read observed it,
// no read needs it. This is the documented client contract, exercised
// here exactly as a real client would implement it.
func TestE2EChaosSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs OS processes; skipped in -short")
	}
	configs := []shardedChaosConfig{
		{protocol: "sync", delta: 60, tick: "1ms", duration: 4 * time.Second,
			shards: 8, replica: 3, evictAfter: "500ms"},
		{protocol: "esync", delta: 5, tick: "1ms", duration: 4 * time.Second,
			shards: 8, replica: 3, evictAfter: "500ms"},
	}
	for _, cfg := range configs {
		for _, seed := range seedsToRun() {
			t.Run(fmt.Sprintf("%s/seed=%d", cfg.protocol, seed), func(t *testing.T) {
				runShardedChaos(t, cfg, seed)
			})
		}
	}
}

// ambiguousWrite is a write whose forwarded outcome the client never
// learned; resolved against observed reads after traffic stops.
type ambiguousWrite struct {
	op  *spec.Op
	key int64
	val int64
}

func runShardedChaos(t *testing.T, cfg shardedChaosConfig, seed int64) {
	const nKeys = 6
	start := time.Now()
	now := func() sim.Time { return sim.Time(time.Since(start).Microseconds()) }

	history := spec.NewHistory(core.VersionedValue{Val: 0, SN: 0})
	var hmu sync.Mutex

	// Four bootstrap founders: R=3 stays strictly below the live process
	// count through every phase (5 after the join, 4 after the leave, 4
	// again after kill-and-replace).
	const nBoot = 4
	founders := make([]*node, 0, nBoot)
	var peerAddrs []string
	for i := int64(1); i <= nBoot; i++ {
		nd := mustStartNode(t, i, cfg.protocol, nBoot, cfg.delta, cfg.tick, true, peerAddrs, cfg.flags()...)
		founders = append(founders, nd)
		peerAddrs = append(peerAddrs, nd.listen)
	}
	for _, nd := range founders {
		mustHealthy(t, nd, nBoot-1, 10*time.Second)
	}
	n1 := founders[0]
	alive := &aliveSet{}
	for _, nd := range founders {
		alive.add(nd)
	}

	var (
		stop           atomic.Bool
		wg             sync.WaitGroup
		writesDone     atomic.Uint64
		writesRefused  atomic.Uint64 // clean refusals (not applied), retried or skipped
		readsDone      atomic.Uint64
		readsAbandoned atomic.Uint64
		batchesDone    atomic.Uint64
	)

	// poisoned keys had an ambiguous write; no process writes them again
	// (re-issuing could store one value under two sequence numbers).
	var poisonMu sync.Mutex
	poisoned := make(map[int64]bool)
	var ambiguous []ambiguousWrite
	isPoisoned := func(k int64) bool {
		poisonMu.Lock()
		defer poisonMu.Unlock()
		return poisoned[k]
	}
	poison := func(op *spec.Op, k, v int64) {
		poisonMu.Lock()
		defer poisonMu.Unlock()
		poisoned[k] = true
		ambiguous = append(ambiguous, ambiguousWrite{op: op, key: k, val: v})
	}

	// ambiguousErr classifies a write failure: true = the write MAY have
	// been applied (unacknowledged forward, upstream deadline); false =
	// it definitely was not (unroutable, not active, table full).
	ambiguousErr := func(err error) bool {
		var apiErr *apiError
		if errors.As(err, &apiErr) {
			switch apiErr.status {
			case 502, 504:
				return true
			case 503, 409:
				return false
			}
		}
		return true // unknown failure: assume the worst
	}

	// One writer client: every write flows through n1 (never removed),
	// which forwards each key to its shard primary. One writer keeps the
	// per-key cross-process discipline trivially true while forwarding
	// moves the actual sequence-number assignment around the cluster.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed * 1000))
		counter := int64(0)
		for !stop.Load() {
			counter++
			val := seed*100_000_000 + counter
			if rng.Intn(5) == 0 {
				// Multi-key batch: decomposed per shard primary by the
				// sharding layer; an error leaves every entry ambiguous.
				// Bounded draw: with most keys poisoned a full batch may
				// not exist, so fall through to a lone write instead.
				kvs := map[int64]int64{}
				want := 2 + rng.Intn(2)
				for tries := 0; len(kvs) < want && tries < 4*nKeys; tries++ {
					k := rng.Int63n(nKeys)
					if !isPoisoned(k) {
						kvs[k] = val + int64(len(kvs))*1000
					}
				}
				if len(kvs) < 2 {
					continue
				}
				ops := map[int64]*spec.Op{}
				hmu.Lock()
				for k := range kvs {
					ops[k] = history.BeginWriteKey(1, core.RegisterID(k), now())
				}
				hmu.Unlock()
				res, err := n1.writeBatch(kvs)
				end := now()
				hmu.Lock()
				switch {
				case err == nil:
					for k, op := range ops {
						sn := res.SNs[fmt.Sprint(k)]
						history.CompleteWrite(op, end, core.VersionedValue{Val: core.Value(kvs[k]), SN: core.SeqNum(sn)})
					}
					batchesDone.Add(1)
				case ambiguousErr(err):
					for k, op := range ops {
						poison(op, k, kvs[k])
					}
				default:
					for _, op := range ops {
						history.Abandon(op)
					}
					writesRefused.Add(1)
				}
				hmu.Unlock()
			} else {
				k := rng.Int63n(nKeys)
				if isPoisoned(k) {
					continue
				}
				hmu.Lock()
				op := history.BeginWriteKey(1, core.RegisterID(k), now())
				hmu.Unlock()
				res, err := n1.write(k, val)
				end := now()
				hmu.Lock()
				switch {
				case err == nil:
					history.CompleteWrite(op, end, core.VersionedValue{Val: core.Value(val), SN: core.SeqNum(res.SN)})
					writesDone.Add(1)
				case ambiguousErr(err):
					poison(op, k, val)
				default:
					// Clean refusal: the write was NOT applied. Abandon
					// and move on (the key stays writable).
					history.Abandon(op)
					writesRefused.Add(1)
				}
				hmu.Unlock()
			}
			time.Sleep(time.Duration(rng.Intn(30)) * time.Millisecond)
		}
	}()

	// Readers: any alive node except the writer's ingress; the serving
	// replica reported by the API is recorded so history attribution
	// survives forwarding.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(rdr int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*100 + rdr))
			for !stop.Load() {
				nd := alive.pickNot(rng, n1)
				if nd == nil {
					time.Sleep(10 * time.Millisecond)
					continue
				}
				k := rng.Int63n(nKeys)
				hmu.Lock()
				op := history.BeginReadKey(core.ProcessID(nd.id), core.RegisterID(k), now())
				hmu.Unlock()
				res, err := nd.read(k)
				end := now()
				hmu.Lock()
				if err != nil {
					history.Abandon(op)
					readsAbandoned.Add(1)
				} else {
					history.SetServer(op, core.ProcessID(res.ServedBy))
					history.CompleteRead(op, end, core.VersionedValue{Val: core.Value(res.Val), SN: core.SeqNum(res.SN)})
					readsDone.Add(1)
				}
				hmu.Unlock()
				time.Sleep(time.Duration(5+rng.Intn(15)) * time.Millisecond)
			}
		}(int64(r))
	}

	// Churn schedule: join (handoff to the newcomer), graceful leave,
	// kill-and-replace — each reshuffling shard placement mid-traffic.
	var phases atomic.Int32
	scheduleDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(scheduleDone)
		d := cfg.duration
		// Phase 1: a fresh process joins and gains shards via handoff.
		time.Sleep(3 * d / 10)
		n5, err := startNode(t, nBoot+1, cfg.protocol, nBoot, cfg.delta, cfg.tick, false,
			peerAddrs, cfg.flags()...)
		if err != nil {
			t.Error(err)
			return
		}
		if err := waitHealthy(n5, nBoot-1, 15*time.Second); err != nil {
			t.Errorf("joiner: %v", err)
			return
		}
		alive.add(n5)
		phases.Add(1)
		// Phase 2: founder 3 departs gracefully; survivors gain its
		// shards (donors still include it until the LEAVE propagates).
		time.Sleep(2 * d / 10)
		n3 := founders[2]
		alive.remove(n3)
		time.Sleep(50 * time.Millisecond)
		if err := n3.leave(); err != nil {
			t.Errorf("node 3 leave: %v", err)
			return
		}
		n3.awaitExit(t, 15*time.Second)
		phases.Add(1)
		// Phase 3: founder 2 crashes (SIGKILL) mid-traffic — in-flight
		// forwards to it become ambiguous — and a replacement joins.
		time.Sleep(2 * d / 10)
		n2 := founders[1]
		alive.remove(n2)
		time.Sleep(50 * time.Millisecond)
		n2.kill()
		n6, err := startNode(t, nBoot+2, cfg.protocol, nBoot, cfg.delta, cfg.tick, false,
			[]string{n1.listen, n5.listen}, cfg.flags()...)
		if err != nil {
			t.Error(err)
			return
		}
		if err := waitHealthy(n6, 2, 15*time.Second); err != nil {
			t.Errorf("replacement: %v", err)
			return
		}
		alive.add(n6)
		phases.Add(1)
	}()

	select {
	case <-scheduleDone:
	case <-time.After(cfg.duration + 90*time.Second):
		t.Error("churn schedule wedged")
	}
	time.Sleep(cfg.duration / 10)
	stop.Store(true)
	wg.Wait()
	t.Logf("traffic and churn schedule finished at %v", time.Since(start).Round(time.Millisecond))
	if t.Failed() {
		return
	}
	if phases.Load() != 3 {
		t.Fatalf("churn schedule completed %d/3 phases", phases.Load())
	}

	// Quiesce, then final reads on every surviving node: every key
	// converges across the cluster (forwarded reads included). A read
	// may still bounce (503) while the crashed peer's eviction heals the
	// placement view, so each final read retries briefly before failing.
	time.Sleep(10 * time.Duration(cfg.delta) * time.Millisecond)
	for _, nd := range alive.snapshot() {
		for k := int64(0); k < nKeys; k++ {
			hmu.Lock()
			op := history.BeginReadKey(core.ProcessID(nd.id), core.RegisterID(k), now())
			hmu.Unlock()
			var res readResult
			var err error
			deadline := time.Now().Add(10 * time.Second)
			for {
				res, err = nd.read(k)
				if err == nil || time.Now().After(deadline) {
					break
				}
				time.Sleep(100 * time.Millisecond)
			}
			end := now()
			if err != nil {
				t.Errorf("final read key %d at node %d: %v", k, nd.id, err)
				hmu.Lock()
				history.Abandon(op)
				hmu.Unlock()
				continue
			}
			hmu.Lock()
			history.SetServer(op, core.ProcessID(res.ServedBy))
			history.CompleteRead(op, end, core.VersionedValue{Val: core.Value(res.Val), SN: core.SeqNum(res.SN)})
			hmu.Unlock()
			readsDone.Add(1)
		}
	}

	// Resolve ambiguous writes against everything the cluster was
	// observed to return: a value some read saw DID happen — record its
	// ⟨v, sn⟩ on the still-pending op; a value no read saw needs nothing.
	resolved := 0
	poisonMu.Lock()
	pending := append([]ambiguousWrite(nil), ambiguous...)
	poisonMu.Unlock()
	hmu.Lock()
	for _, aw := range pending {
		for _, op := range history.Ops() {
			if op.Kind == spec.OpRead && op.Completed && op.Reg == core.RegisterID(aw.key) &&
				op.Value.Val == core.Value(aw.val) {
				history.ResolveValue(aw.op, op.Value)
				resolved++
				break
			}
		}
	}
	nAmbiguous := len(pending)
	hmu.Unlock()

	if err := history.ValidateWrites(); err != nil {
		t.Fatalf("workload broke the write discipline: %v", err)
	}
	if violations := history.CheckRegular(); len(violations) > 0 {
		for i, v := range violations {
			if i == 10 {
				t.Errorf("... and %d more", len(violations)-10)
				break
			}
			t.Errorf("regularity violation: %v", v)
		}
		t.FailNow()
	}

	if writesDone.Load() < 10 || readsDone.Load() < 30 {
		t.Fatalf("too few operations completed: %d writes, %d batches, %d reads",
			writesDone.Load(), batchesDone.Load(), readsDone.Load())
	}
	t.Logf("%s seed=%d S=%d R=%d: %d writes, %d batches, %d refused, %d ambiguous (%d resolved), %d reads (%d abandoned), %d keys, join+leave+kill done",
		cfg.protocol, seed, cfg.shards, cfg.replica, writesDone.Load(), batchesDone.Load(),
		writesRefused.Load(), nAmbiguous, resolved, readsDone.Load(), readsAbandoned.Load(), len(history.Keys()))
}
