package e2e

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"churnreg/internal/core"
	"churnreg/internal/sim"
	"churnreg/internal/spec"
)

// TestE2EBasic is the fast sanity path: a three-process cluster over real
// sockets serves writes, batched writes, and reads from every node.
func TestE2EBasic(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs OS processes; skipped in -short")
	}
	n1 := mustStartNode(t, 1, "sync", 3, 60, "1ms", true, nil)
	n2 := mustStartNode(t, 2, "sync", 3, 60, "1ms", true, []string{n1.listen})
	n3 := mustStartNode(t, 3, "sync", 3, 60, "1ms", true, []string{n1.listen, n2.listen})
	for _, nd := range []*node{n1, n2, n3} {
		mustHealthy(t, nd, 2, 10*time.Second)
	}
	if _, err := n1.write(0, 42); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := n1.writeBatch(map[int64]int64{1: 10, 2: 20}); err != nil {
		t.Fatalf("writebatch: %v", err)
	}
	time.Sleep(200 * time.Millisecond) // > δ: the broadcast has settled
	for _, nd := range []*node{n1, n2, n3} {
		for key, want := range map[int64]int64{0: 42, 1: 10, 2: 20} {
			r, err := nd.read(key)
			if err != nil {
				t.Fatalf("read key %d at node %d: %v", key, nd.id, err)
			}
			if r.Val != want {
				t.Fatalf("read key %d at node %d = %d, want %d", key, nd.id, r.Val, want)
			}
		}
	}
}

// chaosConfig parameterizes one chaos run.
type chaosConfig struct {
	protocol string
	delta    int64
	tick     string
	duration time.Duration
	// inflight is the number of concurrent writer clients (0 or 1 = the
	// historical sequential writer). All of them write through node 1, so
	// the per-key cross-process discipline holds while the node itself
	// pipelines their operations — including several on one key at once.
	inflight int
}

// TestE2EChaosPipelined is the inflight=8 regression: eight concurrent
// writer clients pipeline through node 1 (multiple in-flight writes on
// one key included) under the full churn schedule, and per-key
// regularity must still hold from the client-observed history.
func TestE2EChaosPipelined(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs OS processes; skipped in -short")
	}
	cfg := chaosConfig{protocol: "esync", delta: 5, tick: "1ms", duration: 4 * time.Second, inflight: 8}
	runChaos(t, cfg, 7) // pinned regression seed
}

// TestE2EChaosCoalesced is the deep-pipeline regression for the frame-
// coalescing write path: 128 concurrent writer clients keep node 1's
// per-peer queues persistently deep, so nearly every quorum broadcast
// leaves in a multi-frame batched write — while the schedule still kills,
// replaces and reconnects processes mid-traffic (batches dying with their
// connections, inflight requeues, HELLO-before-batch ordering all
// exercised over real sockets, under -race in CI). Per-key regularity
// from the client-observed history is the verdict, as everywhere.
func TestE2EChaosCoalesced(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs OS processes; skipped in -short")
	}
	cfg := chaosConfig{protocol: "esync", delta: 5, tick: "1ms", duration: 4 * time.Second, inflight: 128}
	runChaos(t, cfg, 7) // pinned regression seed
}

// TestE2EChaos is the acceptance suite: ≥3 regserve OS processes on
// random ports run a seeded chaos schedule — concurrent reads, writes and
// multi-key batches, plus a process join, a graceful departure, and a
// kill-and-replace, all mid-traffic — and the client-observed histories
// must be regular on every key. -chaos.inflight raises the writer
// concurrency (default 1 keeps the historical seeds' schedules stable);
// TestE2EChaosPipelined pins the inflight=8 regression.
func TestE2EChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs OS processes; skipped in -short")
	}
	configs := []chaosConfig{
		{protocol: "sync", delta: 60, tick: "1ms", duration: 4 * time.Second, inflight: *chaosInflight},
		{protocol: "esync", delta: 5, tick: "1ms", duration: 4 * time.Second, inflight: *chaosInflight},
	}
	for _, cfg := range configs {
		for _, seed := range seedsToRun() {
			t.Run(fmt.Sprintf("%s/seed=%d", cfg.protocol, seed), func(t *testing.T) {
				runChaos(t, cfg, seed)
			})
		}
	}
}

// aliveSet tracks which nodes traffic may target.
type aliveSet struct {
	mu    sync.Mutex
	nodes []*node
}

func (a *aliveSet) add(n *node) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nodes = append(a.nodes, n)
}

func (a *aliveSet) remove(n *node) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, x := range a.nodes {
		if x == n {
			a.nodes = append(a.nodes[:i], a.nodes[i+1:]...)
			return
		}
	}
}

// pickNot draws a random alive node other than excl (nil if none).
func (a *aliveSet) pickNot(rng *rand.Rand, excl *node) *node {
	a.mu.Lock()
	defer a.mu.Unlock()
	candidates := make([]*node, 0, len(a.nodes))
	for _, n := range a.nodes {
		if n != excl {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[rng.Intn(len(candidates))]
}

func (a *aliveSet) snapshot() []*node {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]*node(nil), a.nodes...)
}

func runChaos(t *testing.T, cfg chaosConfig, seed int64) {
	const nKeys = 5
	start := time.Now()
	now := func() sim.Time { return sim.Time(time.Since(start).Microseconds()) }

	// History of client-observed operations; the checker's verdict is the
	// test's verdict. Client intervals enclose the true operation
	// intervals, so widening only ADDS allowed values — the check is
	// sound (no false violations), just slightly lenient at the edges.
	history := spec.NewHistory(core.VersionedValue{Val: 0, SN: 0})
	var hmu sync.Mutex

	// Three bootstrap processes; node 1 is the designated writer for the
	// whole run (the paper's single-writer discipline, per key), so the
	// schedule may remove nodes 2 and 3 but never node 1.
	n1 := mustStartNode(t, 1, cfg.protocol, 3, cfg.delta, cfg.tick, true, nil)
	n2 := mustStartNode(t, 2, cfg.protocol, 3, cfg.delta, cfg.tick, true, []string{n1.listen})
	n3 := mustStartNode(t, 3, cfg.protocol, 3, cfg.delta, cfg.tick, true, []string{n1.listen, n2.listen})
	for _, nd := range []*node{n1, n2, n3} {
		mustHealthy(t, nd, 2, 10*time.Second)
	}
	alive := &aliveSet{}
	for _, nd := range []*node{n1, n2, n3} {
		alive.add(nd)
	}

	var (
		stop           atomic.Bool
		wg             sync.WaitGroup
		writesDone     atomic.Uint64
		readsDone      atomic.Uint64
		readsAbandoned atomic.Uint64
		batchesDone    atomic.Uint64
	)

	// Writers: all writes flow through node 1 — the paper's per-key
	// discipline across processes holds by construction — while the node
	// pipelines however many of them are in flight (cfg.inflight workers;
	// with one worker no key ever has concurrent writes, the historical
	// schedule). Values are unique per operation across workers, and the
	// server reports each write's own assigned sn, so the history stays
	// exact under pipelining.
	writers := cfg.inflight
	if writers < 1 {
		writers = 1
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(worker int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1000 + worker))
			counter := int64(0)
			for !stop.Load() {
				counter++
				val := seed*100_000_000 + worker*1_000_000 + counter
				if worker == 0 && rng.Intn(5) == 0 {
					// Multi-key batch: 2-3 distinct keys, one client call.
					kvs := map[int64]int64{}
					for len(kvs) < 2+rng.Intn(2) {
						kvs[rng.Int63n(nKeys)] = val + int64(len(kvs))*1000
					}
					ops := map[int64]*spec.Op{}
					hmu.Lock()
					for k := range kvs {
						ops[k] = history.BeginWriteKey(1, core.RegisterID(k), now())
					}
					hmu.Unlock()
					res, err := n1.writeBatch(kvs)
					end := now()
					hmu.Lock()
					if err != nil {
						for _, op := range ops {
							history.Abandon(op)
						}
					} else {
						for k, op := range ops {
							sn := res.SNs[fmt.Sprint(k)]
							history.CompleteWrite(op, end, core.VersionedValue{Val: core.Value(kvs[k]), SN: core.SeqNum(sn)})
						}
					}
					hmu.Unlock()
					if err != nil {
						t.Errorf("batch write via node 1 failed: %v", err)
						return
					}
					batchesDone.Add(1)
				} else {
					k := rng.Int63n(nKeys)
					hmu.Lock()
					op := history.BeginWriteKey(1, core.RegisterID(k), now())
					hmu.Unlock()
					res, err := n1.write(k, val)
					end := now()
					hmu.Lock()
					if err != nil {
						history.Abandon(op)
					} else {
						history.CompleteWrite(op, end, core.VersionedValue{Val: core.Value(val), SN: core.SeqNum(res.SN)})
					}
					hmu.Unlock()
					if err != nil {
						t.Errorf("write via node 1 failed: %v", err)
						return
					}
					writesDone.Add(1)
				}
				time.Sleep(time.Duration(rng.Intn(30)) * time.Millisecond)
			}
		}(int64(w))
	}

	// Readers: random alive node EXCEPT the writer (the quorum protocols
	// serve one operation per key per node at a time, so a client
	// load-balances reads away from the writing node — LiveCluster.ReadKey
	// encodes the same policy), random key. A read that fails (its node
	// was killed under it) is abandoned — the spec only constrains reads
	// that returned.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(rdr int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*100 + rdr))
			for !stop.Load() {
				nd := alive.pickNot(rng, n1)
				if nd == nil {
					time.Sleep(10 * time.Millisecond)
					continue
				}
				k := rng.Int63n(nKeys)
				hmu.Lock()
				op := history.BeginReadKey(core.ProcessID(nd.id), core.RegisterID(k), now())
				hmu.Unlock()
				res, err := nd.read(k)
				end := now()
				hmu.Lock()
				if err != nil {
					history.Abandon(op)
					readsAbandoned.Add(1)
				} else {
					history.CompleteRead(op, end, core.VersionedValue{Val: core.Value(res.Val), SN: core.SeqNum(res.SN)})
					readsDone.Add(1)
				}
				hmu.Unlock()
				time.Sleep(time.Duration(5+rng.Intn(15)) * time.Millisecond)
			}
		}(int64(r))
	}

	// The churn schedule: join, graceful leave, then kill-and-replace —
	// the paper's constant-size churn in miniature. Traffic keeps flowing
	// until the LAST phase finishes (stop is set only after the schedule
	// barrier), so every membership event is mid-traffic by construction;
	// a phase that cannot complete fails the test rather than being
	// silently skipped.
	var phases atomic.Int32
	scheduleDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(scheduleDone)
		d := cfg.duration
		// Phase 1: a fresh process joins by dialing the founders.
		time.Sleep(3 * d / 10)
		n4, err := startNode(t, 4, cfg.protocol, 3, cfg.delta, cfg.tick, false,
			[]string{n1.listen, n2.listen, n3.listen})
		if err != nil {
			t.Error(err)
			return
		}
		if err := waitHealthy(n4, 2, 15*time.Second); err != nil {
			t.Errorf("joiner: %v", err)
			return
		}
		alive.add(n4)
		phases.Add(1)
		// Phase 2: node 3 departs gracefully (announced LEAVE, clean exit).
		time.Sleep(2 * d / 10)
		alive.remove(n3)
		time.Sleep(50 * time.Millisecond) // let in-flight reads against it settle
		if err := n3.leave(); err != nil {
			t.Errorf("node 3 leave: %v", err)
			return
		}
		n3.awaitExit(t, 15*time.Second)
		phases.Add(1)
		// Phase 3: node 2 crashes (SIGKILL) and a replacement joins using
		// only the survivors it would plausibly know about.
		time.Sleep(2 * d / 10)
		alive.remove(n2)
		time.Sleep(50 * time.Millisecond)
		n2.kill()
		n5, err := startNode(t, 5, cfg.protocol, 3, cfg.delta, cfg.tick, false,
			[]string{n1.listen, n4.listen})
		if err != nil {
			t.Error(err)
			return
		}
		if err := waitHealthy(n5, 2, 15*time.Second); err != nil {
			t.Errorf("replacement: %v", err)
			return
		}
		alive.add(n5)
		phases.Add(1)
	}()

	select {
	case <-scheduleDone:
	case <-time.After(cfg.duration + 90*time.Second):
		t.Error("churn schedule wedged")
	}
	// Keep traffic flowing past the last membership event, then stop.
	time.Sleep(cfg.duration / 10)
	stop.Store(true)
	wg.Wait()
	t.Logf("traffic and churn schedule finished at %v", time.Since(start).Round(time.Millisecond))
	if t.Failed() {
		return
	}
	if phases.Load() != 3 {
		t.Fatalf("churn schedule completed %d/3 phases — join/leave/kill must all happen mid-traffic", phases.Load())
	}

	// Quiesce (δ plus slop), then final reads on every surviving node:
	// with no concurrent writes left, regularity pins every key to its
	// last written value — cross-process convergence, checked through the
	// same history as everything else.
	time.Sleep(5 * time.Duration(cfg.delta) * time.Millisecond)
	for _, nd := range alive.snapshot() {
		for k := int64(0); k < nKeys; k++ {
			hmu.Lock()
			op := history.BeginReadKey(core.ProcessID(nd.id), core.RegisterID(k), now())
			hmu.Unlock()
			res, err := nd.read(k)
			end := now()
			if err != nil {
				t.Errorf("final read key %d at node %d: %v", k, nd.id, err)
				continue
			}
			hmu.Lock()
			history.CompleteRead(op, end, core.VersionedValue{Val: core.Value(res.Val), SN: core.SeqNum(res.SN)})
			hmu.Unlock()
			readsDone.Add(1)
		}
	}

	// The verdict: the workload respected the write discipline, and every
	// completed read is regular on its key.
	if err := history.ValidateWrites(); err != nil {
		t.Fatalf("workload broke the write discipline: %v", err)
	}
	if violations := history.CheckRegular(); len(violations) > 0 {
		for i, v := range violations {
			if i == 10 {
				t.Errorf("... and %d more", len(violations)-10)
				break
			}
			t.Errorf("regularity violation: %v", v)
		}
		t.FailNow()
	}
	inversions := history.FindInversions()

	// Liveness floor: chaos must not have starved the run.
	if writesDone.Load() < 10 || readsDone.Load() < 30 {
		t.Fatalf("too few operations completed: %d writes, %d batches, %d reads",
			writesDone.Load(), batchesDone.Load(), readsDone.Load())
	}
	if batchesDone.Load() == 0 {
		t.Fatalf("schedule completed no multi-key batches")
	}
	t.Logf("%s seed=%d: %d writes, %d batches, %d reads (%d abandoned), %d keys, %d new/old inversions, join+leave+kill done",
		cfg.protocol, seed, writesDone.Load(), batchesDone.Load(), readsDone.Load(),
		readsAbandoned.Load(), len(history.Keys()), len(inversions))
}
