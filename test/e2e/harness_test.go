// Package e2e black-box tests the deployable system: it builds the real
// cmd/regserve binary, runs clusters of separate OS processes wired over
// real TCP sockets, and talks to them only through their HTTP client API
// — nothing here imports the transport or the protocols. The register
// semantics are judged from the outside, by recording every operation's
// client-observed invocation/response interval into a spec.History and
// checking per-key regularity post hoc (client intervals enclose the true
// operation intervals, so the checker errs lenient, never strict: a
// reported violation is a real one).
package e2e

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var chaosSeed = flag.Int64("chaos.seed", 0,
	"run the chaos schedule with this single seed (0 = the regression seed list)")

var chaosInflight = flag.Int("chaos.inflight", 1,
	"concurrent writer clients per chaos run (1 = the historical sequential writer, keeping the regression seeds' schedules stable; >1 pipelines writes through the writer node)")

// regressionSeeds pins schedules that exercised distinct interleavings;
// add a seed here whenever a chaos failure is found and fixed.
var regressionSeeds = []int64{1, 7}

// seedsToRun resolves the -chaos.seed flag.
func seedsToRun() []int64 {
	if *chaosSeed != 0 {
		return []int64{*chaosSeed}
	}
	return regressionSeeds
}

// binPath is the regserve binary TestMain builds once for every test.
var binPath string

func TestMain(m *testing.M) {
	flag.Parse()
	if testing.Short() {
		// Nothing in this package runs under -short; skip the build too.
		os.Exit(m.Run())
	}
	dir, err := os.MkdirTemp("", "regserve-e2e-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "e2e:", err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "regserve")
	args := []string{"build"}
	if raceEnabled {
		// The test binary runs with -race; give the daemon under test the
		// same instrumentation so data races in it fail the suite (an
		// instrumented daemon crashes with a race report and non-zero
		// exit, which the process checks surface).
		args = append(args, "-race")
	}
	args = append(args, "-o", binPath, "./cmd/regserve")
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleRoot()
	if out, err := cmd.CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		fmt.Fprintf(os.Stderr, "e2e: building regserve: %v\n%s", err, out)
		os.Exit(1)
	}
	// os.Exit skips defers, so clean up explicitly before exiting.
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// moduleRoot walks up from the package directory to the go.mod.
func moduleRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "../.."
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "../.."
		}
		dir = parent
	}
}

// node is one regserve OS process under test.
type node struct {
	id      int64
	cmd     *exec.Cmd
	listen  string // protocol TCP address
	api     string // HTTP API address
	logs    *logBuffer
	exited  chan struct{} // closed once the process exited
	waitErr error         // cmd.Wait's result; read only after exited
}

// logBuffer accumulates a process's combined output for post-mortems.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (l *logBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

func (l *logBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.String()
}

// startNode launches a regserve with ephemeral ports and waits for its
// REGSERVE line announcing the bound addresses. It returns an error
// rather than failing the test, so non-test goroutines (the chaos churn
// schedule) can call it too; t is used only for cleanup and log capture,
// both of which are safe off the test goroutine while the test runs.
func startNode(t *testing.T, id int64, protocol string, n int, delta int64, tick string, bootstrap bool, peers []string, extraArgs ...string) (*node, error) {
	args := []string{
		"-id", fmt.Sprint(id),
		"-listen", "127.0.0.1:0",
		"-api", "127.0.0.1:0",
		"-protocol", protocol,
		"-n", fmt.Sprint(n),
		"-delta", fmt.Sprint(delta),
		"-tick", tick,
	}
	if bootstrap {
		args = append(args, "-bootstrap")
	}
	if len(peers) > 0 {
		args = append(args, "-peers", strings.Join(peers, ","))
	}
	args = append(args, extraArgs...)
	cmd := exec.Command(binPath, args...)
	logs := &logBuffer{}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("node %d: stdout pipe: %w", id, err)
	}
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("node %d: start: %w", id, err)
	}
	nd := &node{id: id, cmd: cmd, logs: logs, exited: make(chan struct{})}
	t.Cleanup(func() {
		nd.kill()
		if t.Failed() {
			t.Logf("node %d logs:\n%s", id, logs.String())
		}
	})

	// Scan stdout for the announce line, then keep draining into logs.
	lineCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		announced := false
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(logs, line)
			if !announced && strings.HasPrefix(line, "REGSERVE ") {
				announced = true
				lineCh <- line
			}
		}
	}()
	go func() {
		nd.waitErr = cmd.Wait()
		close(nd.exited)
	}()

	select {
	case line := <-lineCh:
		for _, field := range strings.Fields(line) {
			if v, ok := strings.CutPrefix(field, "listen="); ok {
				nd.listen = v
			}
			if v, ok := strings.CutPrefix(field, "api="); ok {
				nd.api = v
			}
		}
		if nd.listen == "" || nd.api == "" {
			return nil, fmt.Errorf("node %d: bad announce line %q", id, line)
		}
	case <-nd.exited:
		return nil, fmt.Errorf("node %d exited before announcing: %v\n%s", id, nd.waitErr, logs.String())
	case <-time.After(15 * time.Second):
		return nil, fmt.Errorf("node %d never announced its addresses\n%s", id, logs.String())
	}
	return nd, nil
}

// mustStartNode is startNode for the test goroutine: failures are fatal.
func mustStartNode(t *testing.T, id int64, protocol string, n int, delta int64, tick string, bootstrap bool, peers []string, extraArgs ...string) *node {
	t.Helper()
	nd, err := startNode(t, id, protocol, n, delta, tick, bootstrap, peers, extraArgs...)
	if err != nil {
		t.Fatal(err)
	}
	return nd
}

// kill force-terminates the process (SIGKILL), as a crash would.
// Idempotent: killing an already-exited process is a no-op.
func (n *node) kill() {
	select {
	case <-n.exited:
		return
	default:
	}
	if n.cmd.Process != nil {
		n.cmd.Process.Kill()
	}
	select {
	case <-n.exited:
	case <-time.After(10 * time.Second):
	}
}

// awaitExit waits for a voluntary exit (after /leave) and reports whether
// it was clean.
func (n *node) awaitExit(t *testing.T, timeout time.Duration) {
	t.Helper()
	select {
	case <-n.exited:
		if n.waitErr != nil {
			t.Errorf("node %d: unclean exit after leave: %v\n%s", n.id, n.waitErr, n.logs.String())
		}
	case <-time.After(timeout):
		t.Errorf("node %d: did not exit after leave", n.id)
		n.kill()
	}
}

var httpClient = &http.Client{Timeout: 30 * time.Second}

// apiError is a non-2xx API response.
type apiError struct {
	status int
	body   string
}

func (e *apiError) Error() string { return fmt.Sprintf("http %d: %s", e.status, e.body) }

func apiCall(method, rawURL string, out any) error {
	req, err := http.NewRequest(method, rawURL, nil)
	if err != nil {
		return err
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode/100 != 2 {
		return &apiError{status: resp.StatusCode, body: strings.TrimSpace(string(body))}
	}
	if out != nil {
		return json.Unmarshal(body, out)
	}
	return nil
}

type readResult struct {
	Key int64 `json:"key"`
	Val int64 `json:"val"`
	SN  int64 `json:"sn"`
	// ServedBy names the replica whose local copy produced the value —
	// under sharding, not necessarily the node that was asked.
	ServedBy int64 `json:"served_by"`
}

type writeResult struct {
	OK  bool  `json:"ok"`
	SN  int64 `json:"sn"`
	Val int64 `json:"val"`
}

type batchResult struct {
	OK   bool             `json:"ok"`
	Keys int              `json:"keys"`
	SNs  map[string]int64 `json:"sns"`
}

type healthResult struct {
	ID     int64 `json:"id"`
	Active bool  `json:"active"`
	Peers  int   `json:"peers"`
}

func (n *node) read(key int64) (readResult, error) {
	var r readResult
	err := apiCall("GET", fmt.Sprintf("http://%s/read?key=%d", n.api, key), &r)
	return r, err
}

func (n *node) write(key, val int64) (writeResult, error) {
	var r writeResult
	err := apiCall("POST", fmt.Sprintf("http://%s/write?key=%d&val=%d", n.api, key, val), &r)
	return r, err
}

func (n *node) writeBatch(kvs map[int64]int64) (batchResult, error) {
	parts := make([]string, 0, len(kvs))
	for k, v := range kvs {
		parts = append(parts, fmt.Sprintf("%d=%d", k, v))
	}
	var r batchResult
	err := apiCall("POST", fmt.Sprintf("http://%s/writebatch?b=%s",
		n.api, url.QueryEscape(strings.Join(parts, ","))), &r)
	return r, err
}

func (n *node) health() (healthResult, error) {
	var r healthResult
	err := apiCall("GET", fmt.Sprintf("http://%s/health", n.api), &r)
	return r, err
}

func (n *node) leave() error {
	return apiCall("POST", fmt.Sprintf("http://%s/leave", n.api), nil)
}

// waitHealthy polls /health until the node is active with at least
// wantPeers identified peers. Error-returning so non-test goroutines can
// call it; test-goroutine callers use mustHealthy.
func waitHealthy(nd *node, wantPeers int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last string
	for time.Now().Before(deadline) {
		h, err := nd.health()
		if err == nil && h.Active && h.Peers >= wantPeers {
			return nil
		}
		last = fmt.Sprintf("health=%+v err=%v", h, err)
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("node %d never became healthy (want >= %d peers): %s\n%s",
		nd.id, wantPeers, last, nd.logs.String())
}

func mustHealthy(t *testing.T, nd *node, wantPeers int, timeout time.Duration) {
	t.Helper()
	if err := waitHealthy(nd, wantPeers, timeout); err != nil {
		t.Fatal(err)
	}
}
