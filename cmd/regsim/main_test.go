package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSyncProtocol(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-protocol", "sync", "-n", "10", "-duration", "300", "-churn", "0.01"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"REGULAR VIOLATIONS", "joins completed", "messages sent"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "REGULAR VIOLATIONS                     0") {
		t.Fatalf("violations below the bound:\n%s", out)
	}
}

func TestRunESyncWithGST(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-protocol", "esync", "-n", "8", "-duration", "500",
		"-churn", "0.001", "-gst", "100", "-min-lifetime", "15"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "esync") {
		t.Fatalf("header missing protocol:\n%s", buf.String())
	}
}

func TestRunABDBaseline(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-protocol", "abd", "-n", "8", "-duration", "300", "-churn", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTrace(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "5", "-duration", "100", "-trace", "10"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== timeline ==") || !strings.Contains(out, "send") {
		t.Fatalf("trace output missing:\n%s", out)
	}
}

func TestUnknownProtocolErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-protocol", "paxos"}, &buf); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}
