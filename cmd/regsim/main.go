// Command regsim runs one configured simulation of a regular register in
// a dynamic system and reports liveness, safety, latency, and message-cost
// metrics.
//
// Usage:
//
//	regsim -protocol sync -n 30 -delta 5 -churn 0.02 -duration 2000
//	regsim -protocol esync -n 10 -delta 5 -churn 0.002 -gst 500
//	regsim -protocol abd -n 10 -churn 0.02     # watch the baseline erode
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"churnreg/internal/abd"
	"churnreg/internal/core"
	"churnreg/internal/dynsys"
	"churnreg/internal/esyncreg"
	"churnreg/internal/harness"
	"churnreg/internal/metrics"
	"churnreg/internal/netsim"
	"churnreg/internal/sim"
	"churnreg/internal/syncreg"
	"churnreg/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "regsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("regsim", flag.ContinueOnError)
	var (
		protocol   = fs.String("protocol", "sync", "protocol: sync, esync, or abd")
		n          = fs.Int("n", 20, "constant system size")
		delta      = fs.Int64("delta", 5, "communication bound δ (ticks)")
		churnRate  = fs.Float64("churn", 0.01, "churn rate c (fraction of n per tick)")
		duration   = fs.Int64("duration", 2000, "simulated run length (ticks)")
		seed       = fs.Uint64("seed", 1, "deterministic seed")
		writeEvery = fs.Int64("write-every", 20, "write period (0 = no writes)")
		readEvery  = fs.Int64("read-every", 5, "read period (0 = no reads)")
		fanout     = fs.Int("fanout", 2, "readers per read round")
		joinProbe  = fs.Bool("join-probe", true, "read on every completed join")
		gst        = fs.Int64("gst", -1, "eventually synchronous: global stabilization time (-1 = synchronous)")
		preGSTMax  = fs.Int64("pre-gst-max", 0, "max pre-GST delay (0 = 100δ)")
		minLife    = fs.Int64("min-lifetime", 0, "churn cannot remove processes younger than this")
		traceCap   = fs.Int("trace", 0, "print the first N timeline events (0 = no trace)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var factory core.NodeFactory
	switch *protocol {
	case "sync":
		factory = syncreg.Factory(syncreg.Options{})
	case "esync":
		factory = esyncreg.Factory(esyncreg.Options{})
	case "abd":
		factory = abd.Factory()
	default:
		return fmt.Errorf("unknown protocol %q (want sync, esync, or abd)", *protocol)
	}
	var model netsim.DelayModel
	if *gst >= 0 {
		model = netsim.EventuallySynchronousModel{
			GST:       sim.Time(*gst),
			Delta:     sim.Duration(*delta),
			PreGSTMax: sim.Duration(*preGSTMax),
		}
	}

	var timeline *trace.Log
	var configure func(*dynsys.System)
	if *traceCap > 0 {
		timeline = trace.New(*traceCap)
		configure = func(sys *dynsys.System) { trace.Attach(sys, timeline) }
	}
	res, err := harness.Run(harness.Trial{
		N:           *n,
		Delta:       sim.Duration(*delta),
		Churn:       *churnRate,
		MinLifetime: sim.Duration(*minLife),
		Model:       model,
		Factory:     factory,
		Duration:    sim.Duration(*duration),
		Seed:        *seed,
		Workload: harness.WorkloadMix(
			sim.Duration(*writeEvery), sim.Duration(*readEvery), *fanout, *joinProbe),
		Configure: configure,
	})
	if err != nil {
		return err
	}
	if timeline != nil {
		fmt.Fprintln(w, "== timeline ==")
		if err := timeline.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	t := metrics.NewTable(fmt.Sprintf("regsim: %s n=%d δ=%d c=%g seed=%d (%d ticks)",
		*protocol, *n, *delta, *churnRate, *seed, *duration),
		"metric", "value")
	t.AddRow("churn bound 1/(3δ)", metrics.F(harness.SyncChurnBound(sim.Duration(*delta)), 4))
	t.AddRow("churn bound 1/(3δn)", metrics.F(harness.ESyncChurnBound(sim.Duration(*delta), *n), 5))
	t.AddRow("joins completed / pending / abandoned",
		fmt.Sprintf("%d / %d / %d", res.JoinCompleted, res.JoinPending, res.JoinAbandoned))
	t.AddRow("join latency p50 / p99",
		fmt.Sprintf("%.0f / %.0f", res.JoinLatency.Quantile(0.5), res.JoinLatency.Quantile(0.99)))
	t.AddRow("writes completed / begun",
		fmt.Sprintf("%d / %d", res.Counts.WritesCompleted, res.Counts.WritesBegun))
	t.AddRow("write latency mean / max",
		fmt.Sprintf("%.1f / %.0f", res.WriteLatency.Mean(), res.WriteLatency.Max()))
	t.AddRow("reads completed / begun",
		fmt.Sprintf("%d / %d", res.Counts.ReadsCompleted, res.Counts.ReadsBegun))
	t.AddRow("read latency mean / max",
		fmt.Sprintf("%.1f / %.0f", res.ReadLatency.Mean(), res.ReadLatency.Max()))
	t.AddRow("REGULAR VIOLATIONS", metrics.D(int64(len(res.Violations))))
	t.AddRow("new/old inversions (atomicity misses)", metrics.D(int64(len(res.Inversions))))
	t.AddRow("min / max active", fmt.Sprintf("%d / %d", res.MinActive, res.MaxActive))
	t.AddRow("min |A(τ,τ+3δ)|", metrics.D(int64(res.MinActiveWindow)))
	t.AddRow("messages sent / delivered",
		fmt.Sprintf("%d / %d", res.Net.Sent, res.Net.Delivered))
	t.AddRow("messages lost to departures", metrics.D(int64(res.Net.DroppedDeparted)))
	t.AddRow("bytes on wire", metrics.D(int64(res.Net.BytesSent)))
	fmt.Fprintln(w, t.Render())

	for i, v := range res.Violations {
		if i == 5 {
			fmt.Fprintf(w, "... and %d more violations\n", len(res.Violations)-5)
			break
		}
		fmt.Fprintln(w, "violation:", v)
	}
	return nil
}
