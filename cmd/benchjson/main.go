// Command benchjson runs the repository's machine-readable benchmark
// suite and writes one BENCH_<name>.json per benchmark into -out. CI
// uploads the files as artifacts on every PR, so the performance
// trajectory accumulates next to the test signal; checked-in copies pin
// the numbers a PR claims.
//
//	go run ./cmd/benchjson -out .
//
// Current suite:
//
//   - pipeline (internal/benchpipe): single-node ops/sec on the live
//     runtime at in-flight depth 1 vs 16 vs 128 — the concurrent
//     operation engine's scaling curve. See README "Reading BENCH_*.json".
//   - shard (internal/benchshard): AGGREGATE ops/sec at cluster sizes
//     3/6/12 with the keyspace sharded at fixed replication R=3 — the
//     capacity-scaling curve (per-node client load constant, so growth
//     with node count is capacity, not just concurrency).
//   - net (internal/benchnet): the wire hot path — frames/sec coalesced
//     vs per-frame-syscall over real TCP, codec allocations/op, the ABD
//     read fast/slow split, and macro regserve throughput from 6 OS
//     processes at 128 in-flight HTTP clients (-skip-macro to omit; the
//     macro leg builds cmd/regserve with the go toolchain).
//   - client (internal/benchclient): naive single-node HTTP entry vs the
//     wire-native smart client routing direct to shard owners, bracketed
//     by regserve_forward_total scrapes so the relay hop is visible, plus
//     open-loop latency percentiles per op mix (-skip-client to omit;
//     like the macro leg it builds and spawns regserve).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"churnreg/internal/benchclient"
	"churnreg/internal/benchnet"
	"churnreg/internal/benchpipe"
	"churnreg/internal/benchshard"
	"churnreg/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		out        = fs.String("out", ".", "directory to write BENCH_<name>.json files into")
		depths     = fs.String("depths", "1,16,128", "comma-separated in-flight depths for the pipeline benchmark")
		ops        = fs.Int("ops", 25, "operations per worker per depth")
		n          = fs.Int("n", 5, "cluster size")
		delta      = fs.Int64("delta", 5, "δ in ticks")
		tick       = fs.Duration("tick", time.Millisecond, "real duration of one tick")
		skipMacro  = fs.Bool("skip-macro", false, "skip the net benchmark's OS-process macro leg (needs the go toolchain to build regserve)")
		skipClient = fs.Bool("skip-client", false, "skip the client benchmark (spawns an OS-process regserve cluster like the macro leg)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ds []int
	for _, p := range strings.Split(*depths, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || d <= 0 {
			return fmt.Errorf("bad depth %q", p)
		}
		ds = append(ds, d)
	}

	rep, err := benchpipe.Run(benchpipe.Config{
		N:            *n,
		Delta:        sim.Duration(*delta),
		Tick:         *tick,
		Depths:       ds,
		OpsPerWorker: *ops,
	})
	if err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(*out, "BENCH_pipeline.json"), rep); err != nil {
		return err
	}
	for _, d := range rep.Depths {
		fmt.Printf("pipeline depth %3d: %7.1f ops/sec (%d ops in %.2fs)\n",
			d.Depth, d.OpsPerSec, d.Ops, d.Seconds)
	}
	for depth, s := range rep.Speedup {
		fmt.Printf("pipeline speedup depth %s vs 1: %.1fx\n", depth, s)
	}

	srep, err := benchshard.Run(benchshard.Config{
		Delta: sim.Duration(*delta),
		Tick:  *tick,
	})
	if err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(*out, "BENCH_shard.json"), srep); err != nil {
		return err
	}
	for _, s := range srep.Sizes {
		fmt.Printf("shard N=%-3d (S=%d R=%d): %8.1f aggregate ops/sec (%d ops in %.2fs)\n",
			s.Nodes, srep.Shards, srep.Replication, s.OpsPerSec, s.Ops, s.Seconds)
	}
	for k, r := range srep.ScalingRatio {
		fmt.Printf("shard aggregate scaling %s: %.2fx\n", k, r)
	}

	nrep, err := benchnet.Run(benchnet.Config{SkipMacro: *skipMacro})
	if err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(*out, "BENCH_net.json"), nrep); err != nil {
		return err
	}
	fmt.Printf("net micro %-17s: %10.0f frames/sec\n", nrep.Baseline.Mode, nrep.Baseline.FramesPerSec)
	fmt.Printf("net micro %-17s: %10.0f frames/sec (%.1fx)\n", nrep.Coalesced.Mode, nrep.Coalesced.FramesPerSec, nrep.CoalescingSpeedup)
	fmt.Printf("net codec allocs/op: encode %.2f, decode machinery %.2f, decode message %.2f\n",
		nrep.EncodeAllocsPerOp, nrep.DecodeCodecAllocsPerOp, nrep.DecodeMsgAllocsPerOp)
	fmt.Printf("net abd read paths : fast %d, slow %d\n", nrep.ABDFastReads, nrep.ABDSlowReads)
	if nrep.Macro != nil {
		fmt.Printf("net macro N=%d inflight=%d: %8.1f ops/sec (%d ops in %.2fs)\n",
			nrep.Macro.Nodes, nrep.Macro.Inflight, nrep.Macro.OpsPerSec, nrep.Macro.Ops, nrep.Macro.Seconds)
	}

	if !*skipClient {
		crep, err := benchclient.Run(benchclient.Config{})
		if err != nil {
			return err
		}
		if err := writeJSON(filepath.Join(*out, "BENCH_client.json"), crep); err != nil {
			return err
		}
		fmt.Printf("client %-11s: %8.1f ops/sec (%d ops, %d forward relays)\n",
			crep.HTTPNaive.Mode, crep.HTTPNaive.OpsPerSec, crep.HTTPNaive.Ops, crep.HTTPNaive.ForwardRelays)
		fmt.Printf("client %-11s: %8.1f ops/sec (%d ops, %d forward relays) — %.1fx direct-routing speedup\n",
			crep.WireDirect.Mode, crep.WireDirect.OpsPerSec, crep.WireDirect.Ops, crep.WireDirect.ForwardRelays, crep.DirectSpeedup)
		for _, ol := range crep.OpenLoop {
			fmt.Printf("client open-loop %s (%.0f%% writes) @ %.0f/s: read p50/p95/p99 %.1f/%.1f/%.1f ms, write %.1f/%.1f/%.1f ms\n",
				ol.Mix.Name, ol.Mix.WriteFraction*100, ol.RateOpsPerSec,
				ol.ReadP50Ms, ol.ReadP95Ms, ol.ReadP99Ms,
				ol.WriteP50Ms, ol.WriteP95Ms, ol.WriteP99Ms)
		}
	}
	return nil
}

func writeJSON(path string, v any) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}
