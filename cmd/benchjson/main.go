// Command benchjson runs the repository's machine-readable benchmark
// suite and writes one BENCH_<name>.json per benchmark into -out. CI
// uploads the files as artifacts on every PR, so the performance
// trajectory accumulates next to the test signal; checked-in copies pin
// the numbers a PR claims.
//
//	go run ./cmd/benchjson -out .
//
// Current suite:
//
//   - pipeline (internal/benchpipe): single-node ops/sec on the live
//     runtime at in-flight depth 1 vs 16 vs 128 — the concurrent
//     operation engine's scaling curve. See README "Reading BENCH_*.json".
//   - shard (internal/benchshard): AGGREGATE ops/sec at cluster sizes
//     3/6/12 with the keyspace sharded at fixed replication R=3 — the
//     capacity-scaling curve (per-node client load constant, so growth
//     with node count is capacity, not just concurrency).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"churnreg/internal/benchpipe"
	"churnreg/internal/benchshard"
	"churnreg/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		out    = fs.String("out", ".", "directory to write BENCH_<name>.json files into")
		depths = fs.String("depths", "1,16,128", "comma-separated in-flight depths for the pipeline benchmark")
		ops    = fs.Int("ops", 25, "operations per worker per depth")
		n      = fs.Int("n", 5, "cluster size")
		delta  = fs.Int64("delta", 5, "δ in ticks")
		tick   = fs.Duration("tick", time.Millisecond, "real duration of one tick")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ds []int
	for _, p := range strings.Split(*depths, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || d <= 0 {
			return fmt.Errorf("bad depth %q", p)
		}
		ds = append(ds, d)
	}

	rep, err := benchpipe.Run(benchpipe.Config{
		N:            *n,
		Delta:        sim.Duration(*delta),
		Tick:         *tick,
		Depths:       ds,
		OpsPerWorker: *ops,
	})
	if err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(*out, "BENCH_pipeline.json"), rep); err != nil {
		return err
	}
	for _, d := range rep.Depths {
		fmt.Printf("pipeline depth %3d: %7.1f ops/sec (%d ops in %.2fs)\n",
			d.Depth, d.OpsPerSec, d.Ops, d.Seconds)
	}
	for depth, s := range rep.Speedup {
		fmt.Printf("pipeline speedup depth %s vs 1: %.1fx\n", depth, s)
	}

	srep, err := benchshard.Run(benchshard.Config{
		Delta: sim.Duration(*delta),
		Tick:  *tick,
	})
	if err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(*out, "BENCH_shard.json"), srep); err != nil {
		return err
	}
	for _, s := range srep.Sizes {
		fmt.Printf("shard N=%-3d (S=%d R=%d): %8.1f aggregate ops/sec (%d ops in %.2fs)\n",
			s.Nodes, srep.Shards, srep.Replication, s.OpsPerSec, s.Ops, s.Seconds)
	}
	for k, r := range srep.ScalingRatio {
		fmt.Printf("shard aggregate scaling %s: %.2fx\n", k, r)
	}
	return nil
}

func writeJSON(path string, v any) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}
