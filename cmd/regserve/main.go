// Command regserve hosts ONE process of a register protocol as an OS
// daemon speaking real TCP: the deployable form of the paper's system.
// Each regserve is one p_i; a cluster is several regserve processes (on
// one machine or many) whose -peers flags point at each other. A fresh
// daemon with no -bootstrap flag enters the system exactly as the paper
// prescribes: it dials its seeds, discovers the membership, and runs the
// protocol's join operation — it serves no operation until the join
// returns.
//
// Start a three-process synchronous cluster:
//
//	regserve -id 1 -bootstrap -listen 127.0.0.1:7001 -api 127.0.0.1:8001 -n 3
//	regserve -id 2 -bootstrap -listen 127.0.0.1:7002 -api 127.0.0.1:8002 -n 3 -peers 127.0.0.1:7001
//	regserve -id 3 -bootstrap -listen 127.0.0.1:7003 -api 127.0.0.1:8003 -n 3 -peers 127.0.0.1:7001,127.0.0.1:7002
//
// then talk to any node's HTTP API:
//
//	curl -X POST 'localhost:8001/write?key=0&val=42'
//	curl 'localhost:8002/read?key=0'
//	curl -X POST 'localhost:8001/writebatch?b=1=10,2=20,3=30'
//	curl 'localhost:8003/health'
//
// and grow the system under churn:
//
//	regserve -id 4 -listen 127.0.0.1:7004 -api 127.0.0.1:8004 -n 3 -peers 127.0.0.1:7001
//	curl -X POST 'localhost:8002/leave'    # graceful departure
//
// The HTTP handlers are genuinely concurrent: every request is its own
// pipelined operation on the node (the protocols run an operation table,
// not a single pending slot), so one regserve serves many in-flight
// reads and writes at once — across keys and on the same key. The write
// discipline that remains is the paper's, per key ACROSS nodes: do not
// write one key through two different nodes concurrently (one writing
// client per key, coordination above the API, or -protocol multiwriter,
// which serializes writers with the §7 token). Operational visibility
// lives on /metrics (Prometheus text): per-key in-flight gauges and
// read/write latency histograms.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"churnreg/internal/abd"
	"churnreg/internal/core"
	"churnreg/internal/esyncreg"
	"churnreg/internal/metrics"
	"churnreg/internal/multiwriter"
	"churnreg/internal/nettransport"
	"churnreg/internal/nodeops"
	"churnreg/internal/placement"
	"churnreg/internal/shard"
	"churnreg/internal/sim"
	"churnreg/internal/syncreg"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "regserve:", err)
		os.Exit(1)
	}
}

// serverConfig is the parsed command line.
type serverConfig struct {
	id          int64
	listen      string
	api         string
	protocol    string
	n           int
	delta       int64
	tick        time.Duration
	bootstrap   bool
	initial     int64
	peers       []string
	opTimeout   time.Duration
	verbose     bool
	shards      int
	replication int
	evictAfter  time.Duration
	queueLen    int
	mailboxLen  int
	pprof       bool
}

func parseFlags(args []string, errW io.Writer) (*serverConfig, error) {
	fs := flag.NewFlagSet("regserve", flag.ContinueOnError)
	fs.SetOutput(errW)
	var (
		id          = fs.Int64("id", 0, "unique process id (> 0; never reuse an id)")
		listen      = fs.String("listen", "127.0.0.1:0", "TCP address for protocol traffic")
		api         = fs.String("api", "127.0.0.1:0", "HTTP address for the client API")
		protocol    = fs.String("protocol", "sync", "protocol: sync, esync, abd, or multiwriter")
		n           = fs.Int("n", 3, "constant system size n known to every process")
		delta       = fs.Int64("delta", 50, "communication bound δ (ticks)")
		tick        = fs.Duration("tick", time.Millisecond, "real duration of one tick (δ×tick must exceed network+scheduler slop)")
		bootstrap   = fs.Bool("bootstrap", false, "one of the n initial processes (active at once, holds the initial value)")
		initial     = fs.Int64("initial", 0, "register 0's initial value (bootstrap only)")
		peers       = fs.String("peers", "", "comma-separated seed addresses to dial")
		opTimeout   = fs.Duration("op-timeout", 10*time.Second, "client API operation deadline")
		verbose     = fs.Bool("v", false, "log transport events to stderr")
		shards      = fs.Int("shards", 0, "shard the keyspace into this many shards (0 = every node replicates every key); must match across the whole system")
		replication = fs.Int("replication", 3, "replica group size per shard (with -shards; must match across the whole system)")
		evictAfter  = fs.Duration("evict-after", 15*time.Second, "drop a peer whose dials have failed continuously for this long (sharded clusters under churn want this low — placement heals only after eviction)")
		queueLen    = fs.Int("queue", 0, "per-peer outbound frame queue capacity (0 = transport default of 512); overflow drops the oldest frame")
		mailboxLen  = fs.Int("mailbox", 0, "event-loop mailbox capacity (0 = transport default of 512); a full mailbox stalls producers (see regserve_transport_mailbox_stalls_total)")
		pprofFlag   = fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof on the API address (profiling a live cluster)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *id <= 0 {
		return nil, fmt.Errorf("-id must be > 0 (got %d): ids identify processes for the whole system lifetime", *id)
	}
	if *n <= 0 {
		return nil, fmt.Errorf("-n must be > 0 (got %d)", *n)
	}
	if *delta < 1 {
		return nil, fmt.Errorf("-delta must be >= 1 (got %d)", *delta)
	}
	if *shards < 0 {
		return nil, fmt.Errorf("-shards must be >= 0 (got %d)", *shards)
	}
	if *shards > 0 && *replication < 1 {
		return nil, fmt.Errorf("-replication must be >= 1 (got %d)", *replication)
	}
	if *shards > 0 && *protocol == "multiwriter" {
		// The §7 token makes ONE process the writer for every key at a
		// time; sharding routes each key's writes to its own shard
		// primary. The two write-authority models contradict each other.
		return nil, fmt.Errorf("-shards is not supported with -protocol multiwriter (the global write token and per-shard primaries are competing write authorities)")
	}
	cfg := &serverConfig{
		id: *id, listen: *listen, api: *api, protocol: *protocol,
		n: *n, delta: *delta, tick: *tick, bootstrap: *bootstrap,
		initial: *initial, opTimeout: *opTimeout, verbose: *verbose,
		shards: *shards, replication: *replication, evictAfter: *evictAfter,
		queueLen: *queueLen, mailboxLen: *mailboxLen, pprof: *pprofFlag,
	}
	if cfg.queueLen < 0 || cfg.mailboxLen < 0 {
		return nil, fmt.Errorf("-queue and -mailbox must be >= 0 (got %d, %d)", cfg.queueLen, cfg.mailboxLen)
	}
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			cfg.peers = append(cfg.peers, p)
		}
	}
	if _, err := factoryFor(cfg.protocol); err != nil {
		return nil, err
	}
	return cfg, nil
}

// factoryFor resolves the protocol factory, always wrapped in the
// sharding layer: the wrapper is what understands FORWARD operations, and
// wire clients submit every operation as a FORWARD — so even an unsharded
// node needs it (with no placement the wrapper serves every key locally,
// adding nothing but the client-serving path).
func factoryFor(protocol string) (core.NodeFactory, error) {
	var f core.NodeFactory
	switch protocol {
	case "sync":
		f = syncreg.Factory(syncreg.Options{})
	case "esync":
		f = esyncreg.Factory(esyncreg.Options{})
	case "abd":
		f = abd.Factory()
	case "multiwriter":
		f = multiwriter.Factory()
	default:
		return nil, fmt.Errorf("unknown protocol %q (want sync, esync, abd, or multiwriter)", protocol)
	}
	return shard.Factory(f), nil
}

func run(args []string, out, errW io.Writer) error {
	cfg, err := parseFlags(args, errW)
	if err != nil {
		return err
	}
	factory, err := factoryFor(cfg.protocol)
	if err != nil {
		return err
	}
	logf := func(string, ...any) {}
	if cfg.verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(errW, format+"\n", a...) }
	}
	tr, err := nettransport.New(nettransport.Config{
		ID:         core.ProcessID(cfg.id),
		ListenAddr: cfg.listen,
		N:          cfg.n,
		Delta:      sim.Duration(cfg.delta),
		Tick:       cfg.tick,
		Factory:    factory,
		Bootstrap:  cfg.bootstrap,
		Initial:    core.VersionedValue{Val: core.Value(cfg.initial), SN: 0},
		EvictAfter: cfg.evictAfter,
		QueueLen:   cfg.queueLen,
		MailboxLen: cfg.mailboxLen,
		Placement:  placement.Config{Shards: cfg.shards, Replication: cfg.replication},
		Logf:       logf,
	})
	if err != nil {
		return err
	}
	apiLn, err := net.Listen("tcp", cfg.api)
	if err != nil {
		tr.Close()
		return fmt.Errorf("api listen %s: %w", cfg.api, err)
	}

	// The one parseable line scripts and the e2e suite wait for: the
	// actually-bound addresses (the flags may have asked for :0).
	fmt.Fprintf(out, "REGSERVE id=%d listen=%s api=%s protocol=%s bootstrap=%v\n",
		cfg.id, tr.Addr(), apiLn.Addr(), cfg.protocol, cfg.bootstrap)

	tr.Start(cfg.peers)

	leavec := make(chan struct{}, 1)
	srv := &http.Server{Handler: newAPI(cfg, tr, leavec)}
	httpDone := make(chan error, 1)
	go func() { httpDone <- srv.Serve(apiLn) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case sig := <-sigc:
		fmt.Fprintf(errW, "regserve %d: %v, leaving gracefully\n", cfg.id, sig)
	case <-leavec:
		fmt.Fprintf(errW, "regserve %d: leave requested via API\n", cfg.id)
	case err := <-httpDone:
		tr.Close()
		return fmt.Errorf("http server: %w", err)
	}
	tr.Leave()
	srv.Close()
	return nil
}

// backend is the slice of the transport the HTTP layer drives — an
// interface so handler tests exercise the API against a fake without
// binding sockets. *nettransport.Transport is the production
// implementation.
type backend interface {
	ReadKey(reg core.RegisterID, timeout time.Duration) (core.VersionedValue, error)
	// ReadKeyServed also names the process that served the read (this
	// one, or the replica a sharded node forwarded to).
	ReadKeyServed(reg core.RegisterID, timeout time.Duration) (core.VersionedValue, core.ProcessID, error)
	WriteKey(reg core.RegisterID, v core.Value, timeout time.Duration) (core.VersionedValue, error)
	WriteBatch(entries []core.KeyedWrite, timeout time.Duration) ([]core.KeyedValue, error)
	Invoke(fn func(core.Node)) error
	Active() bool
	PeerCount() int
	Addr() string
	// ShardInfo reports (total shards, shards this node replicates,
	// replication factor); total is 0 when the keyspace is unsharded.
	ShardInfo() (shards, owned, replication int)
	// Stats exposes the transport's wire-level counters (coalescing
	// factor, batch gauge, queue drops, mailbox stalls) for /metrics.
	Stats() *nettransport.Stats
}

var _ backend = (*nettransport.Transport)(nil)

// api serves the client operations over HTTP. Handlers run concurrently
// (net/http gives each request a goroutine) and the backend pipelines
// every call as its own node operation; the api itself keeps no
// operation state beyond metrics.
type api struct {
	cfg    *serverConfig
	tr     backend
	ops    *metrics.OpMetrics
	leavec chan<- struct{}
}

func newAPI(cfg *serverConfig, tr backend, leavec chan<- struct{}) http.Handler {
	a := &api{cfg: cfg, tr: tr, ops: metrics.NewOpMetrics(), leavec: leavec}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /health", a.health)
	mux.HandleFunc("GET /read", a.read)
	mux.HandleFunc("POST /write", a.write)
	mux.HandleFunc("POST /writebatch", a.writeBatch)
	mux.HandleFunc("POST /leave", a.leave)
	mux.HandleFunc("GET /metrics", a.metrics)
	if cfg.pprof {
		// Explicit registration: the API uses its own mux, so the
		// net/http/pprof package's DefaultServeMux handlers never apply.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// metrics serves the Prometheus text exposition: per-key in-flight
// gauges, per-operation latency histograms, and — when the keyspace is
// sharded — the placement gauges (total shards, shards this node
// replicates, configured replication factor).
func (a *api) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	a.ops.WritePrometheus(w)
	a.writeTransportMetrics(w)
	a.writeReadPathMetrics(w)
	a.writeForwardMetrics(w)
	shards, owned, repl := a.tr.ShardInfo()
	if shards == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP regserve_shards_total Total shards the keyspace hashes onto.\n")
	fmt.Fprintf(w, "# TYPE regserve_shards_total gauge\n")
	fmt.Fprintf(w, "regserve_shards_total %d\n", shards)
	fmt.Fprintf(w, "# HELP regserve_shards_owned Shards this node currently replicates.\n")
	fmt.Fprintf(w, "# TYPE regserve_shards_owned gauge\n")
	fmt.Fprintf(w, "regserve_shards_owned %d\n", owned)
	fmt.Fprintf(w, "# HELP regserve_shard_replication Configured replica group size per shard.\n")
	fmt.Fprintf(w, "# TYPE regserve_shard_replication gauge\n")
	fmt.Fprintf(w, "regserve_shard_replication %d\n", repl)
}

// writeTransportMetrics renders the wire-level hot-path counters: the
// coalescing factor (frames per frame-carrying write syscall), the latest
// batch size, and the backpressure counters.
func (a *api) writeTransportMetrics(w http.ResponseWriter) {
	st := a.tr.Stats()
	if st == nil {
		return
	}
	fmt.Fprintf(w, "# HELP regserve_transport_frames_per_write Average frames coalesced into one frame-carrying write syscall.\n")
	fmt.Fprintf(w, "# TYPE regserve_transport_frames_per_write gauge\n")
	fmt.Fprintf(w, "regserve_transport_frames_per_write %g\n", st.FramesPerWrite())
	fmt.Fprintf(w, "# HELP regserve_transport_last_batch_frames Frame count of the most recently flushed batch.\n")
	fmt.Fprintf(w, "# TYPE regserve_transport_last_batch_frames gauge\n")
	fmt.Fprintf(w, "regserve_transport_last_batch_frames %d\n", st.LastBatchFrames.Load())
	fmt.Fprintf(w, "# HELP regserve_transport_flushed_frames_total Frames written to peers by coalesced flushes.\n")
	fmt.Fprintf(w, "# TYPE regserve_transport_flushed_frames_total counter\n")
	fmt.Fprintf(w, "regserve_transport_flushed_frames_total %d\n", st.FlushedFrames.Load())
	fmt.Fprintf(w, "# HELP regserve_transport_mailbox_stalls_total Enqueues that found the event-loop mailbox full and waited.\n")
	fmt.Fprintf(w, "# TYPE regserve_transport_mailbox_stalls_total counter\n")
	fmt.Fprintf(w, "regserve_transport_mailbox_stalls_total %d\n", st.MailboxStalls.Load())
	fmt.Fprintf(w, "# HELP regserve_transport_queue_drops_total Frames dropped on full per-peer queues (fair-lossy links).\n")
	fmt.Fprintf(w, "# TYPE regserve_transport_queue_drops_total counter\n")
	fmt.Fprintf(w, "regserve_transport_queue_drops_total %d\n", st.QueueDrops.Load())
}

// writeReadPathMetrics renders the quorum-read fast/slow split for
// protocols that track it (abd's one-round fast path). The counts live on
// the node, so they are fetched through one loop round-trip; a node too
// busy to answer promptly just omits the series this scrape.
func (a *api) writeReadPathMetrics(w http.ResponseWriter) {
	type counts struct {
		fast, slow uint64
		tracked    bool
	}
	done := make(chan counts, 1)
	// The timeout must bound the WHOLE fetch, including the Invoke
	// enqueue itself (a full mailbox blocks it), so Invoke runs on its
	// own goroutine; its channel send is buffered and its wait ends when
	// the transport stops, so the goroutine never outlives a slow loop
	// by more than that.
	go func() {
		err := a.tr.Invoke(func(n core.Node) {
			c, ok := n.(core.ReadPathCounter)
			if !ok {
				done <- counts{}
				return
			}
			fast, slow := c.ReadPathCounts()
			done <- counts{fast: fast, slow: slow, tracked: true}
		})
		if err != nil {
			done <- counts{}
		}
	}()
	timer := time.NewTimer(2 * time.Second)
	defer timer.Stop()
	select {
	case c := <-done:
		if !c.tracked {
			return
		}
		fmt.Fprintf(w, "# HELP regserve_read_path_total Completed quorum reads by path: fast is the one-round path (all phase-1 replies agreed, write-back skipped).\n")
		fmt.Fprintf(w, "# TYPE regserve_read_path_total counter\n")
		fmt.Fprintf(w, "regserve_read_path_total{path=\"fast\"} %d\n", c.fast)
		fmt.Fprintf(w, "regserve_read_path_total{path=\"slow\"} %d\n", c.slow)
	case <-timer.C:
	}
}

// forwardCounter is the slice of the shard wrapper the forward-relay
// series needs. *shard.Node implements it; handler tests stub it.
type forwardCounter interface {
	Stats() shard.Stats
}

// writeForwardMetrics renders the relay-hop counters: operations this
// node could not serve locally and forwarded to a replica (the cost a
// placement-aware client avoids by routing direct — under a smart client
// regserve_forward_total stays ≈0), plus the receiving side (forwards
// this node served or refused). Fetched through one loop round-trip like
// the read-path series.
func (a *api) writeForwardMetrics(w http.ResponseWriter) {
	done := make(chan *shard.Stats, 1)
	go func() {
		err := a.tr.Invoke(func(n core.Node) {
			if fc, ok := n.(forwardCounter); ok {
				s := fc.Stats()
				done <- &s
				return
			}
			done <- nil
		})
		if err != nil {
			done <- nil
		}
	}()
	timer := time.NewTimer(2 * time.Second)
	defer timer.Stop()
	select {
	case s := <-done:
		if s == nil {
			return
		}
		fmt.Fprintf(w, "# HELP regserve_forward_total Operations relayed to a replica instead of served from this node's local state.\n")
		fmt.Fprintf(w, "# TYPE regserve_forward_total counter\n")
		fmt.Fprintf(w, "regserve_forward_total{op=\"read\"} %d\n", s.ForwardedReads)
		fmt.Fprintf(w, "regserve_forward_total{op=\"write\"} %d\n", s.ForwardedWrites)
		fmt.Fprintf(w, "# HELP regserve_forward_served_total Forwarded operations this node served from local state (relayed by a peer or submitted by a wire client).\n")
		fmt.Fprintf(w, "# TYPE regserve_forward_served_total counter\n")
		fmt.Fprintf(w, "regserve_forward_served_total %d\n", s.ForwardsServed)
		fmt.Fprintf(w, "# HELP regserve_forward_refused_total Forwarded operations this node refused (wrong replica, not active, or busy).\n")
		fmt.Fprintf(w, "# TYPE regserve_forward_refused_total counter\n")
		fmt.Fprintf(w, "regserve_forward_refused_total %d\n", s.ForwardsRefused)
	case <-timer.C:
	}
}

func (a *api) reply(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// replyErr maps operation errors onto HTTP statuses: not-yet-joined and
// per-key op-in-progress are client-visible protocol states, a deadline
// miss is an upstream timeout.
func (a *api) replyErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, core.ErrNotActive):
		status = http.StatusServiceUnavailable
	case errors.Is(err, core.ErrOpInProgress):
		status = http.StatusConflict
	case errors.Is(err, nodeops.ErrTimeout):
		status = http.StatusGatewayTimeout
	case errors.Is(err, multiwriter.ErrNotHolder):
		status = http.StatusServiceUnavailable
	case errors.Is(err, core.ErrUnroutable):
		// No replica of the key's shard reachable right now; the
		// operation was NOT applied — clients may retry.
		status = http.StatusServiceUnavailable
	case errors.Is(err, core.ErrUnacknowledged):
		// A forwarded write went unanswered: it MAY have been applied.
		// 502 (not 504): the upstream replica, not this node, went dark,
		// and the ambiguity is the client's to resolve.
		status = http.StatusBadGateway
	}
	a.reply(w, status, map[string]string{"error": err.Error()})
}

func (a *api) health(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{
		"id":       a.cfg.id,
		"protocol": a.cfg.protocol,
		"active":   a.tr.Active(),
		"peers":    a.tr.PeerCount(),
		"addr":     a.tr.Addr(),
	}
	if shards, owned, repl := a.tr.ShardInfo(); shards > 0 {
		out["shards"] = shards
		out["shards_owned"] = owned
		out["replication"] = repl
	}
	a.reply(w, http.StatusOK, out)
}

func (a *api) read(w http.ResponseWriter, r *http.Request) {
	key, err := keyParam(r)
	if err != nil {
		a.reply(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	done := a.ops.Begin("read", int64(key))
	v, server, err := a.tr.ReadKeyServed(key, a.cfg.opTimeout)
	done()
	if err != nil {
		a.replyErr(w, err)
		return
	}
	// served_by names the replica whose local copy produced the value —
	// this node, or the group member a sharded node forwarded to. Chaos
	// clients record it so history attribution survives forwarding.
	a.reply(w, http.StatusOK, map[string]any{
		"key": int64(key), "val": int64(v.Val), "sn": int64(v.SN), "served_by": int64(server),
	})
}

func (a *api) write(w http.ResponseWriter, r *http.Request) {
	key, err := keyParam(r)
	if err != nil {
		a.reply(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	val, err := strconv.ParseInt(r.URL.Query().Get("val"), 10, 64)
	if err != nil {
		a.reply(w, http.StatusBadRequest, map[string]string{"error": "val must be an integer"})
		return
	}
	if err := a.ensureToken(); err != nil {
		a.replyErr(w, err)
		return
	}
	done := a.ops.Begin("write", int64(key))
	vv, err := a.tr.WriteKey(key, core.Value(val), a.cfg.opTimeout)
	done()
	if err != nil {
		a.replyErr(w, err)
		return
	}
	// Report the sequence number the protocol assigned TO THIS WRITE —
	// carried back through the operation table, so it is exact even with
	// several writes to this key in flight (a snapshot here could reflect
	// a later pipelined write).
	a.reply(w, http.StatusOK, map[string]any{"ok": true, "key": int64(key), "val": val, "sn": int64(vv.SN)})
}

func (a *api) writeBatch(w http.ResponseWriter, r *http.Request) {
	entries, err := parseBatch(r.URL.Query().Get("b"))
	if err != nil {
		a.reply(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if err := a.ensureToken(); err != nil {
		a.replyErr(w, err)
		return
	}
	dones := make([]func(), len(entries))
	for i, e := range entries {
		dones[i] = a.ops.Begin("write", int64(e.Reg))
	}
	kvs, err := a.tr.WriteBatch(entries, a.cfg.opTimeout)
	for _, done := range dones {
		done()
	}
	if err != nil {
		a.replyErr(w, err)
		return
	}
	sns := make(map[string]int64, len(kvs))
	for _, kv := range kvs {
		sns[strconv.FormatInt(int64(kv.Reg), 10)] = int64(kv.Value.SN)
	}
	a.reply(w, http.StatusOK, map[string]any{"ok": true, "keys": len(entries), "sns": sns})
}

func (a *api) leave(w http.ResponseWriter, r *http.Request) {
	a.reply(w, http.StatusOK, map[string]any{"ok": true, "leaving": true})
	select {
	case a.leavec <- struct{}{}:
	default:
	}
}

// ensureToken acquires the §7 write token when the hosted protocol is the
// multi-writer one (other protocols write token-free). Contention is
// resolved by retrying the claim until the deadline.
func (a *api) ensureToken() error {
	if a.cfg.protocol != "multiwriter" {
		return nil
	}
	deadline := time.Now().Add(a.cfg.opTimeout)
	for {
		won := make(chan bool, 1)
		errc := make(chan error, 1)
		err := a.tr.Invoke(func(n core.Node) {
			// Every protocol node rides inside the shard wrapper; the token
			// lives on the inner multiwriter.
			if sn, ok := n.(*shard.Node); ok {
				n = sn.Inner()
			}
			mw, ok := n.(*multiwriter.Node)
			if !ok {
				errc <- fmt.Errorf("node %T is not a multiwriter", n)
				return
			}
			if mw.Holder() {
				won <- true
				return
			}
			if err := mw.Acquire(func(ok bool) { won <- ok }); err != nil {
				errc <- err
			}
		})
		if err != nil {
			return err
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case ok := <-won:
			timer.Stop()
			if ok {
				return nil
			}
			// Lost the claim (another holder is alive); back off a beat
			// and retry until the deadline.
			time.Sleep(50 * time.Millisecond)
		case err := <-errc:
			timer.Stop()
			if errors.Is(err, core.ErrOpInProgress) {
				time.Sleep(50 * time.Millisecond)
			} else {
				return err
			}
		case <-timer.C:
			return nodeops.ErrTimeout
		}
		if time.Now().After(deadline) {
			return nodeops.ErrTimeout
		}
	}
}

func keyParam(r *http.Request) (core.RegisterID, error) {
	q := r.URL.Query().Get("key")
	if q == "" {
		return core.DefaultRegister, nil
	}
	k, err := strconv.ParseInt(q, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("key must be an integer")
	}
	return core.RegisterID(k), nil
}

// parseBatch parses "k1=v1,k2=v2" into sorted, deduplicated batch entries.
func parseBatch(s string) ([]core.KeyedWrite, error) {
	if s == "" {
		return nil, fmt.Errorf("writebatch needs b=k1=v1,k2=v2,...")
	}
	seen := make(map[core.RegisterID]bool)
	var entries []core.KeyedWrite
	for _, pair := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bad batch entry %q (want key=val)", pair)
		}
		key, err := strconv.ParseInt(strings.TrimSpace(k), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad batch key %q", k)
		}
		val, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad batch value %q", v)
		}
		reg := core.RegisterID(key)
		if seen[reg] {
			return nil, fmt.Errorf("batch names key %d twice", key)
		}
		seen[reg] = true
		entries = append(entries, core.KeyedWrite{Reg: reg, Val: core.Value(val)})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Reg < entries[j].Reg })
	return entries, nil
}
