package main

import (
	"io"
	"strings"
	"testing"

	"churnreg/internal/core"
)

func TestParseFlagsValidates(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the expected error ("" = ok)
	}{
		{"missing id", []string{"-listen", ":0"}, "-id must be > 0"},
		{"negative id", []string{"-id", "-3"}, "-id must be > 0"},
		{"bad protocol", []string{"-id", "1", "-protocol", "paxos"}, "unknown protocol"},
		{"bad n", []string{"-id", "1", "-n", "0"}, "-n must be > 0"},
		{"bad delta", []string{"-id", "1", "-delta", "0"}, "-delta must be >= 1"},
		{"ok sync", []string{"-id", "1", "-bootstrap"}, ""},
		{"ok multiwriter", []string{"-id", "2", "-protocol", "multiwriter"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := parseFlags(tc.args, io.Discard)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("parsed %v into %+v, want error containing %q", tc.args, cfg, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestParseFlagsPeersList(t *testing.T) {
	cfg, err := parseFlags([]string{"-id", "1", "-peers", "a:1, b:2 ,,c:3"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.peers) != 3 || cfg.peers[0] != "a:1" || cfg.peers[1] != "b:2" || cfg.peers[2] != "c:3" {
		t.Fatalf("peers = %q", cfg.peers)
	}
}

func TestFactoryForCoversEveryProtocol(t *testing.T) {
	for _, p := range []string{"sync", "esync", "abd", "multiwriter"} {
		f, err := factoryFor(p)
		if err != nil || f == nil {
			t.Fatalf("factoryFor(%q): %v", p, err)
		}
	}
	if _, err := factoryFor("nope"); err == nil {
		t.Fatal("factoryFor accepted unknown protocol")
	}
}

func TestParseBatch(t *testing.T) {
	entries, err := parseBatch("3=30,1=10, 2=20")
	if err != nil {
		t.Fatal(err)
	}
	want := []core.KeyedWrite{{Reg: 1, Val: 10}, {Reg: 2, Val: 20}, {Reg: 3, Val: 30}}
	if len(entries) != len(want) {
		t.Fatalf("entries = %v", entries)
	}
	for i := range want {
		if entries[i] != want[i] {
			t.Fatalf("entries[%d] = %v, want %v", i, entries[i], want[i])
		}
	}
	for _, bad := range []string{"", "x", "a=1", "1=b", "1=1,1=2"} {
		if _, err := parseBatch(bad); err == nil {
			t.Fatalf("parseBatch(%q) accepted", bad)
		}
	}
}
